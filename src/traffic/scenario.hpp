// Named scenario library over the traffic engine (DESIGN.md §17).
//
// Every bench accepts --scenario=NAME and resolves it here, so one string
// selects the same generative workload across scale_throughput,
// fig_saturation, fig_scenarios and chaos_campaign. Scenarios map the
// paper's §6.1 workloads and arXiv 2212.13248's measured structure onto
// EngineConfig presets:
//
//   legacy-uniform            the paper's uniform Poisson mix (via
//                             UniformWorkload; compatibility baseline)
//   legacy-bursty             the paper's synchronized attach burst (via
//                             BurstyWorkload; compatibility baseline)
//   commuter-morning          smartphones through a rising AM ramp;
//                             service-request-heavy chain with mobility
//   stadium-egress            flat load, then a 3x mobility/TAU spike as
//                             the crowd leaves
//   iot-firmware-push         80% duty-cycled IoT reporting in
//                             synchronized wakeup slots + a mid-run push
//                             wave, 20% smartphones
//   region-blackout-reconnect power cut (zero arrivals), then the whole
//                             population re-registers in a decaying wave
//   commuter-crossing         commute wave of moving UEs whose boundary
//                             crossings emit inter-region handovers
//                             (mobility engine, DESIGN.md §18)
//   edge-pingpong             UEs oscillating across cell edges under
//                             handover hysteresis (ping-pong pairs)
//
// Any of the six stationary scenarios also takes a mobility overlay
// (ScenarioRequest::mobility_overlay): a 20%-moving slice of the
// population rides on top of the base arrival stream.
//
// An unknown name is a hard error: benches print unknown_scenario_error()
// (which lists every valid name) and exit non-zero, rather than silently
// running the default workload.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "traffic/engine.hpp"
#include "traffic/mobility.hpp"

namespace neutrino::traffic {

/// The knobs a bench supplies; everything else is the scenario's identity.
struct ScenarioRequest {
  double target_pps = 1000.0;
  SimTime duration = SimTime::seconds(10);
  std::uint64_t population = 10'000;
  int regions = 1;
  bool allow_inter_region = false;
  std::uint64_t seed = 1;
  /// Shard count the replay will run under: mobility trajectories are
  /// confined to their home shard's region block so every emitted
  /// handover target stays shard-legal (DESIGN.md §18).
  std::uint32_t shard_blocks = 1;
  /// Ride a mobility stream (20% of the population moving, 10% of those
  /// edge oscillators) on top of any named scenario. Requires a 4^k-region
  /// grid (k >= 1); other topologies keep the base scenario unchanged.
  bool mobility_overlay = false;
};

struct ScenarioInfo {
  std::string_view name;
  std::string_view summary;
  /// Whether benches should preattach the UE population before replay
  /// (false for scenarios whose story begins with registration).
  bool preattach = true;
};

inline const std::vector<ScenarioInfo>& scenarios() {
  static const std::vector<ScenarioInfo> kScenarios = {
      {"legacy-uniform",
       "uniform Poisson mix (paper §6.1 compatibility baseline)", true},
      {"legacy-bursty",
       "synchronized attach burst (paper §6.1 compatibility baseline)",
       false},
      {"commuter-morning",
       "smartphone population through a rising commute ramp", true},
      {"stadium-egress", "flat load, then a 3x mobility spike", true},
      {"iot-firmware-push",
       "duty-cycled IoT wakeup slots + a firmware-push wave", true},
      {"region-blackout-reconnect",
       "power cut, then a synchronized re-registration wave", false},
      {"commuter-crossing",
       "commute wave of moving UEs crossing region boundaries "
       "(inter-region FastHandover; needs a 4^k-region grid)",
       true},
      {"edge-pingpong",
       "UEs oscillating across cell edges: ping-pong handovers under "
       "hysteresis (needs a 4^k-region grid)",
       true},
  };
  return kScenarios;
}

inline const ScenarioInfo* find_scenario(std::string_view name) {
  for (const ScenarioInfo& s : scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

inline std::string scenario_names_csv() {
  std::string out;
  for (const ScenarioInfo& s : scenarios()) {
    if (!out.empty()) out += ", ";
    out += s.name;
  }
  return out;
}

/// The hard-error message for an unrecognized --scenario= value.
inline std::string unknown_scenario_error(std::string_view name) {
  return "unknown scenario '" + std::string{name} +
         "'; valid scenarios: " + scenario_names_csv();
}

namespace detail {

inline MarkovChain smartphone_chain() {
  // attach, service, handover, intra, tau — rows normalized by next().
  MarkovChain c;
  c.set_row(ProcState::kAttach, 0.02, 0.68, 0.05, 0.15, 0.10);
  c.set_row(ProcState::kServiceRequest, 0.03, 0.52, 0.08, 0.22, 0.15);
  c.set_row(ProcState::kHandover, 0.02, 0.58, 0.10, 0.20, 0.10);
  c.set_row(ProcState::kIntraHandover, 0.02, 0.56, 0.08, 0.24, 0.10);
  c.set_row(ProcState::kTau, 0.03, 0.62, 0.05, 0.15, 0.15);
  return c;
}

inline MarkovChain mobility_heavy_chain() {
  MarkovChain c;
  c.set_row(ProcState::kAttach, 0.02, 0.38, 0.10, 0.35, 0.15);
  c.set_row(ProcState::kServiceRequest, 0.02, 0.28, 0.12, 0.38, 0.20);
  c.set_row(ProcState::kHandover, 0.02, 0.26, 0.14, 0.40, 0.18);
  c.set_row(ProcState::kIntraHandover, 0.02, 0.26, 0.12, 0.42, 0.18);
  c.set_row(ProcState::kTau, 0.02, 0.30, 0.10, 0.36, 0.22);
  return c;
}

inline MarkovChain iot_chain() {
  // Wake, (re-)register if needed, push the report, update location.
  MarkovChain c;
  c.set_row(ProcState::kAttach, 0.10, 0.78, 0.00, 0.02, 0.10);
  c.set_row(ProcState::kServiceRequest, 0.14, 0.70, 0.00, 0.02, 0.14);
  c.set_row(ProcState::kHandover, 0.10, 0.78, 0.00, 0.02, 0.10);
  c.set_row(ProcState::kIntraHandover, 0.10, 0.78, 0.00, 0.02, 0.10);
  c.set_row(ProcState::kTau, 0.12, 0.74, 0.00, 0.02, 0.12);
  return c;
}

inline MarkovChain reconnect_chain() {
  // Post-blackout: register, then resume normal smartphone behaviour
  // with an elevated re-attach fraction (flapping power/coverage).
  MarkovChain c;
  c.set_row(ProcState::kAttach, 0.12, 0.60, 0.03, 0.12, 0.13);
  c.set_row(ProcState::kServiceRequest, 0.08, 0.54, 0.05, 0.18, 0.15);
  c.set_row(ProcState::kHandover, 0.08, 0.56, 0.05, 0.16, 0.15);
  c.set_row(ProcState::kIntraHandover, 0.08, 0.56, 0.05, 0.16, 0.15);
  c.set_row(ProcState::kTau, 0.10, 0.58, 0.04, 0.14, 0.14);
  return c;
}

inline GeneratedTraffic legacy_uniform(const ScenarioRequest& req) {
  trace::ProcedureMix mix;
  mix.service_request = 0.5;
  mix.intra_handover = 0.1;  // attach gets the remaining 0.4
  trace::UniformWorkload workload(req.target_pps, req.duration, mix,
                                  req.seed);
  GeneratedTraffic out;
  out.records = workload.generate(req.population, req.regions);
  trace::sort_records(out.records);
  ClassArrivals acct;
  acct.name = "uniform";
  acct.ue_base = 0;
  acct.ue_count = req.population;
  acct.count = out.records.size();
  out.per_class.push_back(std::move(acct));
  return out;
}

inline GeneratedTraffic legacy_bursty(const ScenarioRequest& req) {
  const auto wanted = static_cast<std::uint64_t>(
      req.target_pps * req.duration.sec() + 0.5);
  const std::uint64_t n_users =
      std::max<std::uint64_t>(1, std::min(req.population, wanted));
  trace::BurstyWorkload workload(n_users, req.duration, req.seed);
  GeneratedTraffic out;
  out.records = workload.generate();
  trace::sort_records(out.records);
  ClassArrivals acct;
  acct.name = "bursty-attach";
  acct.ue_base = 0;
  acct.ue_count = n_users;
  acct.count = out.records.size();
  out.per_class.push_back(std::move(acct));
  return out;
}

inline EngineConfig base_engine(const ScenarioRequest& req) {
  EngineConfig cfg;
  cfg.target_pps = req.target_pps;
  cfg.duration = req.duration;
  cfg.population = req.population;
  cfg.regions = req.regions;
  cfg.allow_inter_region = req.allow_inter_region;
  cfg.seed = req.seed;
  cfg.classes.clear();
  return cfg;
}

inline GeneratedTraffic commuter_morning(const ScenarioRequest& req) {
  EngineConfig cfg = base_engine(req);
  cfg.envelope.points = {{0.0, 0.3}, {0.7, 1.7}, {1.0, 1.5}};
  DeviceClassConfig phones;
  phones.name = "smartphone";
  phones.think.sigma = 1.2;
  phones.chain = smartphone_chain();
  phones.initial = ProcState::kServiceRequest;  // population preattached
  cfg.classes.push_back(std::move(phones));
  return generate(cfg);
}

inline GeneratedTraffic stadium_egress(const ScenarioRequest& req) {
  EngineConfig cfg = base_engine(req);
  cfg.envelope.points = {
      {0.0, 0.5}, {0.55, 0.5}, {0.62, 3.0}, {0.78, 1.2}, {1.0, 0.5}};
  DeviceClassConfig crowd;
  crowd.name = "smartphone";
  crowd.think.sigma = 1.0;
  crowd.chain = mobility_heavy_chain();
  crowd.initial = ProcState::kServiceRequest;
  cfg.classes.push_back(std::move(crowd));
  return generate(cfg);
}

inline GeneratedTraffic iot_firmware_push(const ScenarioRequest& req) {
  EngineConfig cfg = base_engine(req);
  cfg.envelope.points = {
      {0.0, 0.8}, {0.45, 0.8}, {0.5, 2.6}, {0.65, 0.9}, {1.0, 0.8}};
  DeviceClassConfig phones;
  phones.name = "smartphone";
  phones.population_share = 0.2;
  phones.rate_share = 0.35;
  phones.think.sigma = 1.2;
  phones.chain = smartphone_chain();
  phones.initial = ProcState::kServiceRequest;
  cfg.classes.push_back(std::move(phones));
  DeviceClassConfig iot;
  iot.name = "massive-iot";
  iot.population_share = 0.8;
  iot.rate_share = 0.65;
  iot.think.sigma = 0.6;          // metronomic reporters...
  iot.think.tail_weight = 0.02;   // ...with rare long sleeps
  iot.chain = iot_chain();
  iot.initial = ProcState::kServiceRequest;
  // Eight synchronized wakeup slots over the run: every IoT arrival
  // snaps to the class-wide grid, so the spikes are visible in any
  // windowed arrival series wider than one slot.
  iot.duty_period = SimTime::nanoseconds(req.duration.ns() / 8);
  iot.duty_phase = SimTime::nanoseconds(req.duration.ns() / 16);
  cfg.classes.push_back(std::move(iot));
  return generate(cfg);
}

inline GeneratedTraffic region_blackout_reconnect(const ScenarioRequest& req) {
  EngineConfig cfg = base_engine(req);
  // Zero arrivals for the first 35% (the outage), then the backlog of
  // device activity re-emerges over a short ramp and decays to normal.
  cfg.envelope.points = {
      {0.0, 0.0}, {0.35, 0.0}, {0.40, 4.0}, {0.60, 1.3}, {1.0, 0.8}};
  DeviceClassConfig devices;
  devices.name = "reconnecting";
  devices.think.sigma = 1.0;
  devices.chain = reconnect_chain();
  devices.initial = ProcState::kAttach;  // cold population: register first
  cfg.classes.push_back(std::move(devices));
  return generate(cfg);
}

/// Mobility preset shared by the mobility scenarios and the overlay. The
/// grid only engages when the request's region count is an exact 4^k
/// (k >= 1) — a trajectory's home cell must be the preattach home
/// (ue % regions), so a partial grid would desynchronize the two.
inline MobilityConfig scenario_mobility(const ScenarioRequest& req) {
  MobilityConfig m;
  m.seed = req.seed;
  m.regions = req.regions > 0 ? static_cast<std::uint32_t>(req.regions) : 0;
  m.shard_blocks = req.shard_blocks;
  m.population = req.population;
  m.duration = req.duration;
  return m;
}

/// Generate the mobility stream for `m`, record its accounting, and merge
/// it into `base` under the (at, ue, type) total order.
inline GeneratedTraffic merge_mobility(GeneratedTraffic base,
                                       const MobilityConfig& m,
                                       MobilityStats* stats) {
  MobilityTraffic mob = generate_mobility(m);
  if (stats) *stats = mob.stats;
  if (mob.records.empty()) return base;
  ClassArrivals acct;
  acct.name = "mobility";
  acct.ue_base = 0;
  acct.ue_count = mob.stats.moving_ues;
  acct.count = mob.records.size();
  base.per_class.push_back(std::move(acct));
  std::vector<std::vector<trace::TraceRecord>> streams;
  streams.push_back(std::move(base.records));
  streams.push_back(std::move(mob.records));
  base.records = trace::merge_sorted_records(std::move(streams));
  return base;
}

inline GeneratedTraffic commuter_crossing(const ScenarioRequest& req,
                                          MobilityStats* stats) {
  // Background: smartphone chatter through the same AM ramp the commute
  // wave rides. Inter-region handovers come from *movement* only, so the
  // engine keeps its dice away from kHandover.
  EngineConfig cfg = base_engine(req);
  cfg.allow_inter_region = false;
  cfg.envelope.points = {{0.0, 0.6}, {0.25, 1.6}, {0.6, 1.1}, {1.0, 0.9}};
  DeviceClassConfig phones;
  phones.name = "smartphone";
  phones.think.sigma = 1.2;
  phones.chain = smartphone_chain();
  phones.initial = ProcState::kServiceRequest;
  cfg.classes.push_back(std::move(phones));
  GeneratedTraffic out = generate(cfg);

  MobilityConfig m = scenario_mobility(req);
  m.oscillator_fraction = 0.0;  // pure commute flows
  m.wave_center_frac = 0.25;
  m.wave_sigma_frac = 0.10;
  return merge_mobility(std::move(out), m, stats);
}

inline GeneratedTraffic edge_pingpong(const ScenarioRequest& req,
                                      MobilityStats* stats) {
  // Light flat background; the story is the oscillator population working
  // the hysteresis band at cell edges.
  EngineConfig cfg = base_engine(req);
  cfg.allow_inter_region = false;
  DeviceClassConfig phones;
  phones.name = "smartphone";
  phones.think.sigma = 1.0;
  phones.chain = smartphone_chain();
  phones.initial = ProcState::kServiceRequest;
  cfg.classes.push_back(std::move(phones));
  GeneratedTraffic out = generate(cfg);

  MobilityConfig m = scenario_mobility(req);
  m.oscillator_fraction = 1.0;
  return merge_mobility(std::move(out), m, stats);
}

}  // namespace detail

/// Generate a named scenario; std::nullopt for an unknown name (callers
/// should then report unknown_scenario_error(name) and fail hard). When
/// `mobility` is non-null it receives the mobility-stream accounting
/// (zeroed when the scenario has no mobility component).
inline std::optional<GeneratedTraffic> generate_scenario(
    std::string_view name, const ScenarioRequest& req,
    MobilityStats* mobility = nullptr) {
  if (mobility) *mobility = MobilityStats{};
  if (name == "commuter-crossing") {
    return detail::commuter_crossing(req, mobility);
  }
  if (name == "edge-pingpong") return detail::edge_pingpong(req, mobility);

  std::optional<GeneratedTraffic> out;
  if (name == "legacy-uniform") {
    out = detail::legacy_uniform(req);
  } else if (name == "legacy-bursty") {
    out = detail::legacy_bursty(req);
  } else if (name == "commuter-morning") {
    out = detail::commuter_morning(req);
  } else if (name == "stadium-egress") {
    out = detail::stadium_egress(req);
  } else if (name == "iot-firmware-push") {
    out = detail::iot_firmware_push(req);
  } else if (name == "region-blackout-reconnect") {
    out = detail::region_blackout_reconnect(req);
  } else {
    return std::nullopt;
  }
  if (req.mobility_overlay) {
    MobilityConfig m = detail::scenario_mobility(req);
    m.moving_fraction = 0.2;
    m.oscillator_fraction = 0.1;
    *out = detail::merge_mobility(std::move(*out), m, mobility);
  }
  return out;
}

}  // namespace neutrino::traffic
