// Empirically-grounded generative traffic engine (DESIGN.md §17).
//
// The synthetic workloads in trace/workload.hpp reproduce the paper's §6.1
// evaluation inputs (uniform Poisson, synchronized bursts). Real cellular
// control-plane traffic looks different — *Characterizing and Modeling
// Control-Plane Traffic for Mobile Core Network* (arXiv 2212.13248) measures
// three structural properties this engine reproduces:
//
//  * Heavy-tailed per-device inter-arrivals: device "think times" are a
//    log-normal body with a Pareto tail mixed in, not exponential — a few
//    devices produce long silences and clustered flurries.
//  * A diurnal aggregate envelope: the population-level rate follows a
//    piecewise-linear daily curve (commute ramps, event spikes, outage
//    gaps), applied by warping each device's activity clock through the
//    envelope's cumulative integral.
//  * Procedure dependency chains: each device walks a Markov chain over
//    procedure types (attach → service-request → handover ...), replacing
//    the i.i.d. mix dice of UniformWorkload.
//
// Device classes (smartphone vs massive-IoT) differ in think-time shape,
// chain, and duty cycling: an IoT class with a duty period snaps every
// arrival to the next shared wakeup slot, producing the synchronized
// report/firmware-push spikes of §6.1's bursty workload — but grounded in
// a per-device process instead of one global uniform window.
//
// Determinism: every device draws from its own Rng seeded by a SplitMix64
// hash of (seed, class, device), so generation order is irrelevant and a
// fixed EngineConfig always yields a byte-identical record stream. Class
// streams are merged with trace::merge_sorted_records under the documented
// (at, ue, type) total order. Generation is single-threaded and up front;
// replay determinism across shard/thread counts is the runtime's existing
// guarantee (DESIGN.md §11).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "trace/workload.hpp"

namespace neutrino::traffic {

/// SplitMix64-style hash for per-device independent streams: the stream
/// identity is (experiment seed, class index, device index), so devices
/// can be generated in any order — or in parallel — without changing a
/// single draw.
inline std::uint64_t device_seed(std::uint64_t seed, std::uint64_t cls,
                                 std::uint64_t device) {
  std::uint64_t x = seed;
  x ^= cls * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  x ^= device * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Heavy-tailed think-time distribution: a log-normal body (shape `sigma`,
/// median calibrated by the engine from the class's target rate) mixed
/// with a Pareto tail of exponent `tail_alpha` starting at
/// `tail_xm_mult`× the body median. tail_alpha must be > 1 so the mean is
/// finite and the per-class rate calibration below is well-defined.
struct ThinkTimeConfig {
  double sigma = 1.0;
  double tail_weight = 0.05;
  double tail_alpha = 1.5;
  double tail_xm_mult = 4.0;
};

/// E[think] / median: the calibration constant that turns a target mean
/// gap into the body median. Mixture mean = (1-w)·m·e^{σ²/2} +
/// w·(xm_mult·m)·α/(α-1) for Pareto(xm, α) and log-normal(median m, σ).
inline double think_mean_multiplier(const ThinkTimeConfig& c) {
  return (1.0 - c.tail_weight) * std::exp(0.5 * c.sigma * c.sigma) +
         c.tail_weight * c.tail_xm_mult * c.tail_alpha / (c.tail_alpha - 1.0);
}

/// Draw one think time (seconds) with body median `median`.
inline double sample_think(const ThinkTimeConfig& c, double median, Rng& rng) {
  if (rng.next_double() < c.tail_weight) {
    double v;
    do {
      v = rng.next_double();
    } while (v <= 0.0);
    return median * c.tail_xm_mult * std::pow(v, -1.0 / c.tail_alpha);
  }
  // Box-Muller for the log-normal body; both uniforms are always drawn so
  // the stream position is a pure function of the draw count.
  double u1;
  do {
    u1 = rng.next_double();
  } while (u1 <= 0.0);
  const double u2 = rng.next_double();
  constexpr double kTwoPi = 6.283185307179586;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  return median * std::exp(c.sigma * z);
}

/// The procedure states a device's Markov chain walks over. kHandover is
/// demoted to kIntraHandover at emission time when the topology has one
/// region or inter-region mobility is disallowed (sharded runs partition
/// one region per shard; cross-shard handover targets are not legal
/// there — see parallel_determinism_test).
enum class ProcState : std::uint8_t {
  kAttach = 0,
  kServiceRequest,
  kHandover,
  kIntraHandover,
  kTau,
};
inline constexpr std::size_t kProcStates = 5;

/// Row-stochastic transition matrix over ProcState. Rows that sum to zero
/// are treated as absorbing self-loops; otherwise each row is normalized
/// by its own sum, so literals like {0.6, 0.2, 0.1, 0.1} read naturally.
struct MarkovChain {
  double p[kProcStates][kProcStates] = {};

  void set_row(ProcState from, double attach, double service, double handover,
               double intra, double tau) {
    const auto i = static_cast<std::size_t>(from);
    p[i][0] = attach;
    p[i][1] = service;
    p[i][2] = handover;
    p[i][3] = intra;
    p[i][4] = tau;
  }

  /// Same transition distribution out of every state (an i.i.d. mix as a
  /// degenerate chain) — the compatibility construction.
  static MarkovChain uniform_rows(double attach, double service,
                                  double handover, double intra, double tau) {
    MarkovChain c;
    for (std::size_t i = 0; i < kProcStates; ++i) {
      c.p[i][0] = attach;
      c.p[i][1] = service;
      c.p[i][2] = handover;
      c.p[i][3] = intra;
      c.p[i][4] = tau;
    }
    return c;
  }

  [[nodiscard]] ProcState next(ProcState from, Rng& rng) const {
    const auto i = static_cast<std::size_t>(from);
    double total = 0.0;
    for (const double v : p[i]) total += v;
    if (total <= 0.0) return from;
    double dice = rng.next_double() * total;
    for (std::size_t j = 0; j < kProcStates; ++j) {
      dice -= p[i][j];
      if (dice < 0.0) return static_cast<ProcState>(j);
    }
    return static_cast<ProcState>(kProcStates - 1);
  }
};

/// Aggregate rate envelope over the run: control points (fraction of the
/// run in [0, 1], relative level >= 0), piecewise-linear between points,
/// normalized by the engine so the mean level is 1 (the envelope shapes
/// *when* the configured volume arrives, not how much). Level-0 segments
/// are legal: no device activity maps there, and the backlog of activity
/// time re-emerges as a synchronized wave when the level recovers — the
/// region-blackout-reconnect construction.
struct DiurnalEnvelope {
  std::vector<std::pair<double, double>> points;  // (frac, level)

  /// Flat unit envelope (empty points behaves the same).
  static DiurnalEnvelope flat() { return DiurnalEnvelope{}; }

  /// Unnormalized level at `frac` in [0, 1].
  [[nodiscard]] double level_at(double frac) const {
    if (points.empty()) return 1.0;
    if (frac <= points.front().first) return points.front().second;
    for (std::size_t i = 1; i < points.size(); ++i) {
      if (frac <= points[i].first) {
        const auto& [f0, l0] = points[i - 1];
        const auto& [f1, l1] = points[i];
        const double span = f1 - f0;
        if (span <= 0.0) return l1;
        return l0 + (l1 - l0) * (frac - f0) / span;
      }
    }
    return points.back().second;
  }
};

namespace detail {

/// The envelope baked onto a fixed grid: per-cell normalized rates and
/// their cumulative integral, inverted to warp device activity time
/// (s, in seconds of unit-rate progress) into sim time.
class BakedEnvelope {
 public:
  BakedEnvelope(const DiurnalEnvelope& env, double duration_sec,
                std::size_t cells = 1024)
      : duration_(duration_sec), dt_(duration_sec / static_cast<double>(cells)) {
    rate_.resize(cells);
    double sum = 0.0;
    for (std::size_t i = 0; i < cells; ++i) {
      const double frac =
          (static_cast<double>(i) + 0.5) / static_cast<double>(cells);
      rate_[i] = std::max(0.0, env.level_at(frac));
      sum += rate_[i];
    }
    const double mean = sum / static_cast<double>(cells);
    cum_.resize(cells + 1, 0.0);
    for (std::size_t i = 0; i < cells; ++i) {
      rate_[i] = mean > 0.0 ? rate_[i] / mean : 1.0;
      cum_[i + 1] = cum_[i] + rate_[i] * dt_;
    }
    // Guard float drift: the warp's "past the end" test is exact.
    cum_.back() = duration_;
  }

  [[nodiscard]] double total() const { return duration_; }

  /// Earliest sim time t with cumulative activity >= s. Zero-rate cells
  /// contribute nothing to cum_, so s values on a flat stretch all map to
  /// the first positive-rate instant after it (the synchronized wave).
  [[nodiscard]] double warp(double s) const {
    if (s >= duration_) return duration_;
    const auto it = std::upper_bound(cum_.begin(), cum_.end(), s);
    const auto idx =
        static_cast<std::size_t>(std::distance(cum_.begin(), it)) - 1;
    const std::size_t cell = std::min(idx, rate_.size() - 1);
    const double r = rate_[cell];
    const double within = r > 0.0 ? (s - cum_[cell]) / r : 0.0;
    return static_cast<double>(cell) * dt_ + std::min(within, dt_);
  }

 private:
  double duration_;
  double dt_;
  std::vector<double> rate_;   // normalized: mean 1
  std::vector<double> cum_;    // activity time at cell boundaries
};

}  // namespace detail

/// One device population sharing think-time shape, procedure chain and
/// (optionally) a duty cycle.
struct DeviceClassConfig {
  std::string name = "default";
  /// Fraction of EngineConfig::population (normalized over all classes).
  double population_share = 1.0;
  /// Fraction of EngineConfig::target_pps (normalized over all classes).
  double rate_share = 1.0;
  ThinkTimeConfig think;
  MarkovChain chain =
      MarkovChain::uniform_rows(0.4, 0.5, 0.0, 0.1, 0.0);
  /// First procedure a device issues (kAttach for cold populations so a
  /// fresh UE registers before anything else reaches it).
  ProcState initial = ProcState::kAttach;
  /// Massive-IoT duty cycling: when period > 0, every arrival snaps
  /// forward to the class-wide wakeup grid phase + k·period (at most one
  /// arrival per device per slot), so the whole class reports in
  /// synchronized spikes.
  SimTime duty_period{};
  SimTime duty_phase{};
};

struct EngineConfig {
  double target_pps = 1000.0;
  SimTime duration = SimTime::seconds(10);
  std::uint64_t population = 10'000;
  int regions = 1;
  /// Emit kHandover (target (home+1) % regions) instead of demoting to
  /// kIntraHandover. Only legal when every region lives on one shard —
  /// keep false for partitioned topologies.
  bool allow_inter_region = false;
  std::uint64_t seed = 1;
  DiurnalEnvelope envelope;
  std::vector<DeviceClassConfig> classes = {DeviceClassConfig{}};
};

/// Per-class accounting of the generated stream (report "arrivals"
/// sections; the validator checks the counts sum to the total).
struct ClassArrivals {
  std::string name;
  std::uint64_t ue_base = 0;   // class owns UEs [ue_base, ue_base + ue_count)
  std::uint64_t ue_count = 0;
  std::uint64_t count = 0;     // records emitted
};

struct GeneratedTraffic {
  std::vector<trace::TraceRecord> records;  // (at, ue, type)-sorted
  std::vector<ClassArrivals> per_class;

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const ClassArrivals& c : per_class) n += c.count;
    return n;
  }
};

/// Generate the full record stream for one EngineConfig. Pure function of
/// the config (bitwise-deterministic); see the file comment.
inline GeneratedTraffic generate(const EngineConfig& cfg) {
  GeneratedTraffic out;
  if (cfg.classes.empty() || cfg.population == 0 ||
      cfg.duration.ns() <= 0 || cfg.target_pps <= 0.0) {
    return out;
  }
  const double duration_sec = cfg.duration.sec();
  const detail::BakedEnvelope baked(cfg.envelope, duration_sec);

  double pop_total = 0.0;
  double rate_total = 0.0;
  for (const DeviceClassConfig& c : cfg.classes) {
    pop_total += std::max(0.0, c.population_share);
    rate_total += std::max(0.0, c.rate_share);
  }
  if (pop_total <= 0.0 || rate_total <= 0.0) return out;

  const auto regions = static_cast<std::uint32_t>(std::max(1, cfg.regions));
  std::vector<std::vector<trace::TraceRecord>> streams;
  streams.reserve(cfg.classes.size());
  std::uint64_t ue_base = 0;
  for (std::size_t ci = 0; ci < cfg.classes.size(); ++ci) {
    const DeviceClassConfig& cls = cfg.classes[ci];
    // Last class absorbs the rounding remainder so ue ranges tile the
    // population exactly.
    const std::uint64_t n_devices =
        ci + 1 == cfg.classes.size()
            ? cfg.population - ue_base
            : std::min<std::uint64_t>(
                  cfg.population - ue_base,
                  static_cast<std::uint64_t>(
                      static_cast<double>(cfg.population) *
                          std::max(0.0, cls.population_share) / pop_total +
                      0.5));
    ClassArrivals acct;
    acct.name = cls.name;
    acct.ue_base = ue_base;
    acct.ue_count = n_devices;
    std::vector<trace::TraceRecord> stream;
    if (n_devices > 0) {
      const double class_pps =
          cfg.target_pps * std::max(0.0, cls.rate_share) / rate_total;
      // Mean think gap per device, in activity-time seconds; the envelope
      // warp preserves total volume (mean level 1), so the aggregate rate
      // averages class_pps over the run.
      const double mean_gap = class_pps > 0.0
                                  ? static_cast<double>(n_devices) / class_pps
                                  : 0.0;
      if (mean_gap > 0.0) {
        const double median = mean_gap / think_mean_multiplier(cls.think);
        stream.reserve(static_cast<std::size_t>(
            class_pps * duration_sec * 1.2 + 16.0));
        const double period_sec = cls.duty_period.sec();
        const double phase_sec = cls.duty_phase.sec();
        for (std::uint64_t d = 0; d < n_devices; ++d) {
          Rng rng(device_seed(cfg.seed, ci, d));
          const UeId ue{ue_base + d};
          const auto home = static_cast<std::uint32_t>(ue.value() % regions);
          ProcState state = cls.initial;
          // Random-phase start: the first arrival lands uniformly inside
          // one mean gap of activity time, so a window much shorter than
          // the gap still sees the class's configured aggregate rate
          // (a cold start at a full think() draw would underdeliver —
          // heavy-tailed think times have near-zero density at 0).
          double s = rng.next_double() * mean_gap;
          std::int64_t last_slot = -1;
          while (true) {
            const double t = baked.warp(s);
            if (t >= duration_sec) break;
            SimTime at = SimTime::nanoseconds(
                static_cast<std::int64_t>(t * 1e9) + 1);
            if (period_sec > 0.0) {
              // Snap forward to the class wakeup grid; one arrival per
              // device per slot (sleep until the next window otherwise).
              auto slot = static_cast<std::int64_t>(
                  std::ceil((t - phase_sec) / period_sec));
              if (slot <= last_slot) slot = last_slot + 1;
              last_slot = slot;
              const double snapped =
                  phase_sec + static_cast<double>(slot) * period_sec;
              if (snapped >= duration_sec) break;
              at = SimTime::nanoseconds(
                  static_cast<std::int64_t>(snapped * 1e9) + 1);
            }
            trace::TraceRecord rec;
            rec.at = at;
            rec.ue = ue;
            switch (state) {
              case ProcState::kAttach:
                rec.type = core::ProcedureType::kAttach;
                break;
              case ProcState::kServiceRequest:
                rec.type = core::ProcedureType::kServiceRequest;
                break;
              case ProcState::kHandover:
                if (cfg.allow_inter_region && regions > 1) {
                  rec.type = core::ProcedureType::kHandover;
                  rec.target_region = (home + 1) % regions;
                } else {
                  rec.type = core::ProcedureType::kIntraHandover;
                  rec.target_region = home;
                }
                break;
              case ProcState::kIntraHandover:
                rec.type = core::ProcedureType::kIntraHandover;
                rec.target_region = home;
                break;
              case ProcState::kTau:
                rec.type = core::ProcedureType::kTau;
                break;
            }
            stream.push_back(rec);
            state = cls.chain.next(state, rng);
            s += sample_think(cls.think, median, rng);
          }
        }
      }
    }
    trace::sort_records(stream);
    acct.count = stream.size();
    out.per_class.push_back(std::move(acct));
    streams.push_back(std::move(stream));
    ue_base += n_devices;
  }
  out.records = trace::merge_sorted_records(std::move(streams));
  return out;
}

}  // namespace neutrino::traffic
