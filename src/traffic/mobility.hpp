// City-scale UE mobility over the multi-region geohash grid (DESIGN.md §18).
//
// The scenario library (§17) shapes *when* procedures arrive; nothing in it
// models *movement* — fig11's handovers come from a stationary mix, so the
// FastHandover tail behavior the paper claims (§4.3, 7x median PCT) was
// never stressed by the workload that actually produces handovers. This
// engine closes that gap with deterministic per-UE trajectories:
//
//  * The service area is a Morton-ordered 2^k x 2^k grid of square level-1
//    cells (pitch L meters). Region index == the numeric value of the
//    2-bit-per-char geohash within the area, so lexicographic RegionPlan
//    order, TopologyConfig::l2_of(i) == i/4 and the sharded runtime's
//    contiguous region blocks all agree with the geography (geo_test
//    pins the equivalence against RegionPlan::from_area).
//  * Commuters shuttle between a home anchor (inside their preattach home
//    cell, home = ue % regions) and a work anchor drawn anywhere in their
//    shard block, walking straight legs at a speed class (pedestrian
//    1.4 m/s, vehicular 13.9 m/s) and dwelling at each anchor with the
//    §17 heavy-tailed think-time draw. First departures cluster in a
//    commute wave (gaussian around wave_center_frac of the run).
//  * Edge oscillators sit a few hysteresis-widths from an interior cell
//    boundary and make perpendicular excursions across it; excursions
//    deeper than the hysteresis band emit a handover out and a handover
//    back (a ping-pong pair), shallower ones are absorbed (counted as
//    suppressed_excursions).
//
// A trajectory emits trace::TraceRecord{at, ue, kHandover, target} exactly
// when it exits the serving cell's hysteresis-expanded rectangle — the
// point is then >= hysteresis_m inside the neighbor, the standard A3-offset
// construction. Records are (at, ue, type)-sorted, so the stream merges
// deterministically with any engine-generated background traffic.
//
// Validation (the arXiv 1607.06439 C/U-split mobility analysis): for speed
// v over square cells of side L (BS density lambda = 1/L^2), the boundary
// crossing rate of an isotropically moving UE in an *unbounded* network is
//
//     H = (4/pi) * v * sqrt(lambda) = (4/pi) * v / L.
//
// A finite shard block departs from that in three exactly-computable ways,
// which the engine folds into MobilityStats::block_correction (kappa):
//
//  1. Boundary truncation. An n-cell-wide axis has only n-1 interior
//     boundaries; for endpoints uniform on [0, n] cells the expected
//     crossings per leg are (n^2-1)/(3n) instead of the unbounded E|dx|/L
//     = n/3 — a factor (1 - 1/n^2) per axis (0.9375 at n=4, 0.75 at n=2).
//     The engine computes the exact sum 2F(1-F) over the block's interior
//     grid lines, which also absorbs the anchor-margin shrink.
//  2. Direction mix. The closed form assumes isotropic headings, i.e.
//     E[|dx|+|dy|] / E[len] = 4/pi. Uniform endpoint pairs in a W x H
//     rectangle give E[manhattan] = (W+H)/3 and E[len] from the classical
//     rectangle mean-distance formula (Ghosh 1951) — within 0.5% of 4/pi
//     for a square, ~-2.4% for a 2:1 block.
//  3. Hysteresis absorption. Each leg start pays ~h per active axis to
//     exit the expanded serving rectangle: ~2h/L expected crossings lost
//     per leg (~2.6% at h=25 m over a 2x4 km block).
//
// Measured / (predicted * kappa) lands within ~2% at converged durations;
// the documented tolerance is 10% (mobility_test pins it, fig_mobility
// re-checks it at city scale). Edge oscillators are excluded — their legs
// are shorter than a cell, outside the model's regime.
//
// Determinism: every UE draws from Rng(device_seed(seed, class, ue)) and
// trajectories are generated independently, so generation order is
// irrelevant and a fixed MobilityConfig yields a byte-identical stream.
// Confinement: anchors stay >= max(2*hysteresis, 8) m inside the UE's
// shard-block bounding box, so no trajectory — and therefore no handover
// target — ever leaves the block, keeping the stream legal on sharded
// runtimes with `shard_blocks` shards.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "traffic/engine.hpp"
#include "trace/workload.hpp"

namespace neutrino::traffic {

/// Morton-ordered square grid of level-1 cells. Row 0 is the southern
/// edge, column 0 the western; index bit 2i+1 is column bit i (the
/// longitude bit of geohash char k-1-i), index bit 2i is row bit i.
struct MobilityGrid {
  std::uint32_t dim = 0;     // cells per side (power of two)
  double pitch_m = 1000.0;   // cell side L

  /// Grid for `regions` = 4^k cells; dim 0 (empty grid) when regions is
  /// not a power of four or is < 4 — callers treat that as "no mobility".
  static MobilityGrid make(std::uint32_t regions, double pitch_m) {
    MobilityGrid g;
    g.pitch_m = pitch_m;
    std::uint32_t dim = 1;
    while (dim * dim < regions && dim < (1u << 15)) dim *= 2;
    if (regions >= 4 && dim * dim == regions) g.dim = dim;
    return g;
  }

  [[nodiscard]] std::uint32_t regions() const { return dim * dim; }

  [[nodiscard]] std::uint32_t index_of(std::uint32_t row,
                                       std::uint32_t col) const {
    std::uint32_t idx = 0;
    for (std::uint32_t bit = 0; (1u << bit) < dim; ++bit) {
      idx |= ((row >> bit) & 1u) << (2 * bit);
      idx |= ((col >> bit) & 1u) << (2 * bit + 1);
    }
    return idx;
  }

  void cell_of(std::uint32_t index, std::uint32_t& row,
               std::uint32_t& col) const {
    row = col = 0;
    for (std::uint32_t bit = 0; (1u << bit) < dim; ++bit) {
      row |= ((index >> (2 * bit)) & 1u) << bit;
      col |= ((index >> (2 * bit + 1)) & 1u) << bit;
    }
  }

  /// Cell containing a point (meters from the SW corner), clamped to the
  /// grid so confinement rounding error cannot index out of range.
  void cell_at(double x, double y, std::uint32_t& row,
               std::uint32_t& col) const {
    const auto clamp = [this](double v) {
      const double c = std::floor(v / pitch_m);
      return static_cast<std::uint32_t>(std::clamp(
          c, 0.0, static_cast<double>(dim - 1)));
    };
    col = clamp(x);
    row = clamp(y);
  }

  [[nodiscard]] std::uint32_t region_at(double x, double y) const {
    std::uint32_t row = 0, col = 0;
    cell_at(x, y, row, col);
    return index_of(row, col);
  }
};

/// Axis-aligned box in grid meters.
struct MobilityBox {
  double x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
};

struct MobilityConfig {
  std::uint64_t seed = 1;
  /// Level-1 regions; mobility requires a 4^k grid (k >= 1). Other values
  /// yield an empty stream (callers keep their background traffic).
  std::uint32_t regions = 16;
  /// Trajectories are confined to their home region's contiguous Morton
  /// block of regions/shard_blocks cells — the sharded runtime's region
  /// partition — so every emitted handover target is shard-legal.
  std::uint32_t shard_blocks = 1;
  std::uint64_t population = 10'000;
  /// UEs [0, moving_fraction * population) move; the rest are stationary
  /// (overlay mode keeps most of a scenario's population still).
  double moving_fraction = 1.0;
  SimTime duration = SimTime::seconds(10);
  double cell_pitch_m = 1000.0;
  double hysteresis_m = 25.0;
  /// A crossing that returns to the previous cell within this window is a
  /// ping-pong pair (3GPP time-of-stay construction).
  SimTime pingpong_window = SimTime::seconds(20);
  /// Share of moving UEs that are edge oscillators instead of commuters.
  double oscillator_fraction = 0.1;
  /// Share of commuters that are vehicular (the rest walk).
  double vehicular_fraction = 0.5;
  double pedestrian_mps = 1.4;
  double vehicular_mps = 13.9;
  /// Heavy-tailed dwell at home/work anchors (§17 machinery).
  ThinkTimeConfig dwell;
  double dwell_median_s = 40.0;
  /// Commute wave: first departures ~ N(center, sigma) in run fractions.
  double wave_center_frac = 0.25;
  double wave_sigma_frac = 0.10;
};

struct MobilityClassStats {
  std::string name;
  std::uint64_t ues = 0;
  std::uint64_t crossings = 0;
  std::uint64_t legs = 0;  // legs actually walked (at least partially)
  double moving_s = 0.0;
  double distance_m = 0.0;
  /// (4/pi) v / L; 0 for classes outside the closed form's regime.
  double predicted_rate_hz = 0.0;
  /// Whether this class participates in the rate-vs-density check: set by
  /// the engine when the run is inside the closed form's regime — legs
  /// long relative to the hysteresis band (mean walked leg >= 20x h, so
  /// the per-leg-start absorption costs < ~5%), converged (mean walked
  /// leg >= 60% of the uniform-pair expectation, so horizon truncation
  /// and the home-cell first-leg bias have washed out), and enough
  /// crossings for the measurement to be statistical (>= 200).
  bool validate_rate = false;

  [[nodiscard]] double measured_rate_hz() const {
    return moving_s > 0.0 ? static_cast<double>(crossings) / moving_s : 0.0;
  }

  [[nodiscard]] double mean_leg_m() const {
    return legs > 0 ? distance_m / static_cast<double>(legs) : 0.0;
  }
};

struct MobilityStats {
  std::vector<MobilityClassStats> classes;
  std::uint64_t moving_ues = 0;
  std::uint64_t crossings = 0;          // records emitted
  std::uint64_t pingpong_pairs = 0;     // A->B then B->A inside the window
  std::uint64_t suppressed_excursions = 0;  // absorbed by the hysteresis band
  double cell_pitch_m = 0.0;
  double hysteresis_m = 0.0;
  double pingpong_window_s = 0.0;
  /// Analytic finite-block correction to the infinite-network closed form
  /// (see block_correction() in the implementation): the expected ratio
  /// measured/predicted for this block geometry. 1.0 would mean the
  /// closed form applies uncorrected.
  double block_correction = 0.0;
  /// Expected commuter leg length (rectangle mean distance over the
  /// anchor box); classes only validate once their mean walked leg is a
  /// reasonable fraction of this.
  double expected_leg_m = 0.0;

  /// Worst relative deviation |measured / (predicted * correction) - 1|
  /// over validating classes (0 when nothing validates — tiny smoke
  /// runs). The documented tolerance is 10% (DESIGN.md §18); observed
  /// deviations sit near 1-2%.
  [[nodiscard]] double worst_rate_deviation() const {
    double worst = 0.0;
    for (const MobilityClassStats& c : classes) {
      if (!c.validate_rate || c.predicted_rate_hz <= 0.0 ||
          c.moving_s <= 0.0 || block_correction <= 0.0)
        continue;
      worst = std::max(
          worst, std::abs(c.measured_rate_hz() /
                              (c.predicted_rate_hz * block_correction) -
                          1.0));
    }
    return worst;
  }
};

struct MobilityTraffic {
  std::vector<trace::TraceRecord> records;  // (at, ue, type)-sorted
  MobilityStats stats;
};

namespace detail {

// Distinct device_seed class ids so mobility draws never collide with the
// traffic engine's class-index streams (0, 1, ...) under the same seed.
inline constexpr std::uint64_t kMobilityRoleStream = 0x4d6f6200;  // "Mob"
inline constexpr std::uint64_t kMobilityWalkStream = 0x4d6f6210;

/// Per-UE trajectory walker: tracks the serving cell, emits a handover
/// record whenever a straight leg exits the hysteresis-expanded serving
/// rectangle, and folds ping-pong accounting as it goes.
class MobilityWalker {
 public:
  MobilityWalker(const MobilityGrid& grid, double hysteresis_m,
                 double duration_s, double pingpong_s, UeId ue,
                 std::vector<trace::TraceRecord>& out)
      : grid_(grid),
        h_(hysteresis_m),
        duration_s_(duration_s),
        pingpong_s_(pingpong_s),
        ue_(ue),
        out_(out) {}

  void start_at(double x, double y) {
    x_ = x;
    y_ = y;
    grid_.cell_at(x, y, srow_, scol_);
  }

  [[nodiscard]] std::uint64_t crossings() const { return crossings_; }
  [[nodiscard]] std::uint64_t pingpongs() const { return pingpongs_; }
  [[nodiscard]] std::uint64_t legs() const { return legs_; }
  [[nodiscard]] double moving_s() const { return moving_s_; }
  [[nodiscard]] double distance_m() const { return distance_m_; }

  /// Walk to (x1, y1) at `v` m/s starting at `t0` seconds; returns the
  /// arrival time. Legs begun at or past the horizon still advance the
  /// position (cheaply) but emit nothing and count no moving time.
  double leg_to(double x1, double y1, double v, double t0) {
    const double dx = x1 - x_;
    const double dy = y1 - y_;
    const double len = std::hypot(dx, dy);
    if (len <= 0.0 || v <= 0.0) return t0;
    const double t_arrive = t0 + len / v;
    if (t0 < duration_s_) {
      ++legs_;
      moving_s_ += std::min(t_arrive, duration_s_) - t0;
      distance_m_ += std::min(len, (duration_s_ - t0) * v);
    }
    const double ux = dx / len;
    const double uy = dy / len;
    double s = 0.0;  // distance travelled along the leg
    // A leg of length len crosses at most len/L + 1 lines per axis; the
    // bound is a backstop against float-pathological corner loops.
    const double pitch = grid_.pitch_m;
    int guard = static_cast<int>(2.0 * len / pitch) + 8;
    while (guard-- > 0) {
      // Hysteresis-expanded serving rectangle.
      const double rx_lo = static_cast<double>(scol_) * pitch - h_;
      const double rx_hi = static_cast<double>(scol_ + 1) * pitch + h_;
      const double ry_lo = static_cast<double>(srow_) * pitch - h_;
      const double ry_hi = static_cast<double>(srow_ + 1) * pitch + h_;
      const double px = x_ + ux * s;
      const double py = y_ + uy * s;
      double exit = len - s;  // stay inside: finish the leg
      if (ux > 0.0) exit = std::min(exit, (rx_hi - px) / ux);
      if (ux < 0.0) exit = std::min(exit, (rx_lo - px) / ux);
      if (uy > 0.0) exit = std::min(exit, (ry_hi - py) / uy);
      if (uy < 0.0) exit = std::min(exit, (ry_lo - py) / uy);
      const double s_cross = s + std::max(exit, 0.0);
      if (s_cross >= len) break;
      // Step a hair past the crossing to classify the entered cell.
      s = s_cross + kStepEps;
      std::uint32_t nrow = 0, ncol = 0;
      grid_.cell_at(x_ + ux * s, y_ + uy * s, nrow, ncol);
      if (nrow == srow_ && ncol == scol_) {
        // Only reachable when confinement clamped at the grid edge;
        // skip ahead so the loop cannot stall on the boundary.
        s += h_ + kStepEps;
        continue;
      }
      const double t_cross = t0 + s_cross / v;
      const std::uint32_t from = grid_.index_of(srow_, scol_);
      const std::uint32_t target = grid_.index_of(nrow, ncol);
      if (t_cross < duration_s_) {
        trace::TraceRecord rec;
        rec.at = SimTime::nanoseconds(
            static_cast<std::int64_t>(t_cross * 1e9) + 1);
        rec.ue = ue_;
        rec.type = core::ProcedureType::kHandover;
        rec.target_region = target;
        out_.push_back(rec);
        ++crossings_;
        if (target == prev_region_ && t_cross - last_cross_s_ <= pingpong_s_) {
          ++pingpongs_;
        }
        prev_region_ = from;
        last_cross_s_ = t_cross;
      }
      srow_ = nrow;
      scol_ = ncol;
    }
    x_ = x1;
    y_ = y1;
    return t_arrive;
  }

 private:
  static constexpr double kStepEps = 1e-6;  // meters

  const MobilityGrid& grid_;
  double h_;
  double duration_s_;
  double pingpong_s_;
  UeId ue_;
  std::vector<trace::TraceRecord>& out_;
  double x_ = 0.0, y_ = 0.0;
  std::uint32_t srow_ = 0, scol_ = 0;
  std::uint32_t prev_region_ = 0xffffffffu;
  double last_cross_s_ = -1e18;
  std::uint64_t crossings_ = 0;
  std::uint64_t pingpongs_ = 0;
  std::uint64_t legs_ = 0;
  double moving_s_ = 0.0;
  double distance_m_ = 0.0;
};

/// One gaussian via Box-Muller; both uniforms always drawn (fixed stream
/// position per draw, the §17 discipline).
inline double sample_gaussian(Rng& rng) {
  double u1;
  do {
    u1 = rng.next_double();
  } while (u1 <= 0.0);
  const double u2 = rng.next_double();
  constexpr double kTwoPi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

inline double uniform_in(Rng& rng, double lo, double hi) {
  return lo + rng.next_double() * (hi - lo);
}

/// Mean distance between two independent uniform points in an a x b
/// rectangle (Ghosh 1951); reproduces the classical 0.5214 constant for
/// the unit square.
inline double rect_mean_dist(double a, double b) {
  if (a > b) std::swap(a, b);
  if (a <= 0.0 || b <= 0.0) return 0.0;
  const double d = std::hypot(a, b);
  const double a2 = a * a, b2 = b * b;
  return (a2 * a / b2 + b2 * b / a2 + d * (3.0 - a2 / b2 - b2 / a2)) / 15.0 +
         (b2 / a * std::log((a + d) / b) + a2 / b * std::log((b + d) / a)) /
             6.0;
}

/// Finite-block correction kappa (file comment, "Validation"): expected
/// measured/predicted crossing-rate ratio for commuter legs whose
/// endpoints are uniform in the block's margin-shrunk interior. Per leg,
/// the expected interior-boundary crossings are sum 2F(1-F) over grid
/// lines (F = the line's position within the anchor span), minus ~2h/L of
/// hysteresis absorption; dividing by the unbounded-isotropic expectation
/// E[len] * (4/pi) / L gives kappa. Same for every class — it depends
/// only on geometry, not speed.
inline double block_correction(const MobilityBox& box, double pitch_m,
                               double margin_m, double hysteresis_m) {
  const double ew = box.x_hi - box.x_lo - 2.0 * margin_m;  // anchor spans
  const double eh = box.y_hi - box.y_lo - 2.0 * margin_m;
  if (ew <= 0.0 || eh <= 0.0 || pitch_m <= 0.0) return 0.0;
  double cross = 0.0;
  const auto axis = [&](double lo, double hi, double span) {
    for (double g = std::ceil(lo / pitch_m) * pitch_m; g < hi; g += pitch_m) {
      if (g <= lo + margin_m || g >= hi - margin_m) continue;
      const double f = (g - (lo + margin_m)) / span;
      cross += 2.0 * f * (1.0 - f);
    }
  };
  axis(box.x_lo, box.x_hi, ew);
  axis(box.y_lo, box.y_hi, eh);
  cross -= 2.0 * hysteresis_m / pitch_m;
  const double e_len = rect_mean_dist(ew, eh);
  if (e_len <= 0.0 || cross <= 0.0) return 0.0;
  constexpr double kFourOverPi = 4.0 / 3.14159265358979323846;
  return cross * pitch_m / (e_len * kFourOverPi);
}

}  // namespace detail

/// Generate the full mobility stream for one config. Pure function of the
/// config (bitwise-deterministic); see the file comment.
inline MobilityTraffic generate_mobility(const MobilityConfig& cfg) {
  MobilityTraffic out;
  MobilityStats& stats = out.stats;
  stats.cell_pitch_m = cfg.cell_pitch_m;
  stats.hysteresis_m = cfg.hysteresis_m;
  stats.pingpong_window_s = cfg.pingpong_window.sec();

  const MobilityGrid grid = MobilityGrid::make(cfg.regions, cfg.cell_pitch_m);
  const auto moving = static_cast<std::uint64_t>(
      std::clamp(cfg.moving_fraction, 0.0, 1.0) *
      static_cast<double>(cfg.population));
  stats.classes = {
      {"pedestrian", 0, 0, 0, 0.0, 0.0,
       4.0 / 3.14159265358979323846 * cfg.pedestrian_mps / cfg.cell_pitch_m,
       false},
      {"vehicular", 0, 0, 0, 0.0, 0.0,
       4.0 / 3.14159265358979323846 * cfg.vehicular_mps / cfg.cell_pitch_m,
       false},
      {"edge-oscillator", 0, 0, 0, 0.0, 0.0, 0.0, false},
  };
  if (grid.dim == 0 || moving == 0 || cfg.duration.ns() <= 0) return out;

  const std::uint32_t regions = grid.regions();
  const std::uint32_t blocks =
      std::max(1u, std::min(cfg.shard_blocks, regions));
  const std::uint32_t block_size = regions / blocks;
  if (block_size == 0 || regions % blocks != 0) return out;

  // Per-block bounding boxes (Morton ranges of size 4^j or 2*4^j are
  // rectangles; anything else would leave holes, so reject it).
  std::vector<MobilityBox> block_box(blocks);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    MobilityBox& box = block_box[b];
    box.x_lo = box.y_lo = 1e18;
    box.x_hi = box.y_hi = -1e18;
    for (std::uint32_t r = b * block_size; r < (b + 1) * block_size; ++r) {
      std::uint32_t row = 0, col = 0;
      grid.cell_of(r, row, col);
      box.x_lo = std::min(box.x_lo, static_cast<double>(col) * grid.pitch_m);
      box.x_hi = std::max(box.x_hi,
                          static_cast<double>(col + 1) * grid.pitch_m);
      box.y_lo = std::min(box.y_lo, static_cast<double>(row) * grid.pitch_m);
      box.y_hi = std::max(box.y_hi,
                          static_cast<double>(row + 1) * grid.pitch_m);
    }
    const double cells = (box.x_hi - box.x_lo) * (box.y_hi - box.y_lo) /
                         (grid.pitch_m * grid.pitch_m);
    if (static_cast<std::uint32_t>(cells + 0.5) != block_size) return out;
  }

  const double duration_s = cfg.duration.sec();
  const double margin = std::max(2.0 * cfg.hysteresis_m, 8.0);
  const double h = cfg.hysteresis_m;
  // Equal-size contiguous Morton ranges over a square grid are congruent
  // rectangles, so block 0's geometry stands for all of them.
  stats.block_correction =
      detail::block_correction(block_box[0], grid.pitch_m, margin, h);
  stats.expected_leg_m = detail::rect_mean_dist(
      block_box[0].x_hi - block_box[0].x_lo - 2.0 * margin,
      block_box[0].y_hi - block_box[0].y_lo - 2.0 * margin);
  std::vector<trace::TraceRecord> records;
  records.reserve(static_cast<std::size_t>(moving) * 4);

  for (std::uint64_t u = 0; u < moving; ++u) {
    const UeId ue{u};
    const std::uint32_t home = static_cast<std::uint32_t>(u % regions);
    const std::uint32_t block = home / block_size;
    const MobilityBox& bb = block_box[block];
    // Block interior the anchors may use; a degenerate box (single-cell
    // block narrower than two margins) produces a stationary UE.
    const MobilityBox in{bb.x_lo + margin, bb.x_hi - margin,
                         bb.y_lo + margin, bb.y_hi - margin};
    std::uint32_t hrow = 0, hcol = 0;
    grid.cell_of(home, hrow, hcol);

    // Role draw comes from its own stream so adding roles later cannot
    // shift any walk stream.
    Rng role_rng(device_seed(cfg.seed, detail::kMobilityRoleStream, u));
    const double role = role_rng.next_double();
    const bool oscillator = role < cfg.oscillator_fraction;
    const bool vehicular =
        !oscillator && role_rng.next_double() < cfg.vehicular_fraction;
    MobilityClassStats& cls =
        stats.classes[oscillator ? 2 : (vehicular ? 1 : 0)];

    Rng rng(device_seed(cfg.seed, detail::kMobilityWalkStream +
                                      (oscillator ? 2 : (vehicular ? 1 : 0)),
                        u));
    detail::MobilityWalker walker(grid, h, duration_s,
                                  stats.pingpong_window_s, ue, records);
    ++stats.moving_ues;
    ++cls.ues;

    if (!oscillator) {
      // Commuter: home anchor inside the home cell (clipped to the block
      // interior), work anchor anywhere in the block interior.
      const double hx_lo =
          std::max(static_cast<double>(hcol) * grid.pitch_m, in.x_lo);
      const double hx_hi =
          std::min(static_cast<double>(hcol + 1) * grid.pitch_m, in.x_hi);
      const double hy_lo =
          std::max(static_cast<double>(hrow) * grid.pitch_m, in.y_lo);
      const double hy_hi =
          std::min(static_cast<double>(hrow + 1) * grid.pitch_m, in.y_hi);
      if (hx_lo >= hx_hi || hy_lo >= hy_hi || in.x_lo >= in.x_hi ||
          in.y_lo >= in.y_hi) {
        continue;  // block too small to move in
      }
      const double home_x = detail::uniform_in(rng, hx_lo, hx_hi);
      const double home_y = detail::uniform_in(rng, hy_lo, hy_hi);
      const double v = vehicular ? cfg.vehicular_mps : cfg.pedestrian_mps;
      walker.start_at(home_x, home_y);
      double t = std::clamp(
          duration_s * (cfg.wave_center_frac +
                        cfg.wave_sigma_frac * detail::sample_gaussian(rng)),
          0.0, duration_s);
      // Home-based tours: workplace first, then errands — a *fresh*
      // destination every cycle. Reusing one fixed pair would weight each
      // UE's direction by how many legs it fits into the run (short pairs
      // repeat more), biasing the population's direction mix off
      // isotropic; fresh pairs keep the measured crossing rate on the
      // 1607.06439 closed form.
      while (t < duration_s) {
        const double dest_x = detail::uniform_in(rng, in.x_lo, in.x_hi);
        const double dest_y = detail::uniform_in(rng, in.y_lo, in.y_hi);
        t = walker.leg_to(dest_x, dest_y, v, t);
        t += sample_think(cfg.dwell, cfg.dwell_median_s, rng);
        if (t >= duration_s) break;
        t = walker.leg_to(home_x, home_y, v, t);
        t += sample_think(cfg.dwell, cfg.dwell_median_s, rng);
      }
    } else {
      // Edge oscillator: anchored at an interior boundary of the home
      // cell (interior to the shard block), excursions perpendicular.
      struct Dir {
        int drow, dcol;
      };
      const Dir dirs[4] = {{0, 1}, {0, -1}, {1, 0}, {-1, 0}};
      std::vector<Dir> valid;
      for (const Dir& d : dirs) {
        const auto nrow = static_cast<std::int64_t>(hrow) + d.drow;
        const auto ncol = static_cast<std::int64_t>(hcol) + d.dcol;
        if (nrow < 0 || ncol < 0 || nrow >= grid.dim || ncol >= grid.dim)
          continue;
        const std::uint32_t nidx =
            grid.index_of(static_cast<std::uint32_t>(nrow),
                          static_cast<std::uint32_t>(ncol));
        if (nidx / block_size == block) valid.push_back(d);
      }
      if (valid.empty()) continue;  // single-cell block: nowhere to ping
      const Dir d = valid[rng.next_u64() % valid.size()];
      // Boundary point at fraction f along the shared edge, away from
      // corners; base pulled back 3 hysteresis widths into the home cell.
      const double f = 0.25 + 0.5 * rng.next_double();
      const double cx0 = static_cast<double>(hcol) * grid.pitch_m;
      const double cy0 = static_cast<double>(hrow) * grid.pitch_m;
      double ax, ay, nx, ny;  // anchor on boundary, outward normal
      if (d.dcol != 0) {
        ax = d.dcol > 0 ? cx0 + grid.pitch_m : cx0;
        ay = cy0 + f * grid.pitch_m;
        nx = static_cast<double>(d.dcol);
        ny = 0.0;
      } else {
        ax = cx0 + f * grid.pitch_m;
        ay = d.drow > 0 ? cy0 + grid.pitch_m : cy0;
        nx = 0.0;
        ny = static_cast<double>(d.drow);
      }
      const double base_off = 3.0 * std::max(h, 1.0);
      const double bx = ax - nx * base_off;
      const double by = ay - ny * base_off;
      const double v = cfg.vehicular_mps;
      walker.start_at(bx, by);
      // Random phase so the population's excursions are unsynchronized.
      double t = rng.next_double() * 30.0;
      while (t < duration_s) {
        // Amplitude beyond the boundary: ~32% of draws stay inside the
        // hysteresis band and are absorbed.
        const double amp = std::max(h, 1.0) * (0.3 + 2.2 * rng.next_double());
        if (amp <= h && t < duration_s) ++stats.suppressed_excursions;
        t = walker.leg_to(ax + nx * amp, ay + ny * amp, v, t);
        t = walker.leg_to(bx, by, v, t);
        t += detail::uniform_in(rng, 1.0, 5.0);
      }
    }
    cls.crossings += walker.crossings();
    cls.legs += walker.legs();
    cls.moving_s += walker.moving_s();
    cls.distance_m += walker.distance_m();
    stats.crossings += walker.crossings();
    stats.pingpong_pairs += walker.pingpongs();
  }

  // Rate-check eligibility (see MobilityClassStats::validate_rate): the
  // oscillator class never validates — its legs are shorter than a cell.
  for (MobilityClassStats& c : stats.classes) {
    c.validate_rate = c.predicted_rate_hz > 0.0 && c.crossings >= 200 &&
                      c.mean_leg_m() >= 20.0 * std::max(h, 1.0) &&
                      c.mean_leg_m() >= 0.6 * stats.expected_leg_m;
  }

  trace::sort_records(records);
  out.records = std::move(records);
  return out;
}

}  // namespace neutrino::traffic
