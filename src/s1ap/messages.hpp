// S1AP / NAS / GTP-C control messages used by the control procedures.
//
// Message shapes follow 3GPP TS 36.413 (S1AP), TS 24.301 (NAS) and
// TS 29.274 (GTP-C), simplified to the IEs our procedures exercise. The
// five messages benchmarked in the paper's Figs. 19-20 are all here:
// InitialContextSetup{,Response}, ERABSetup{Request,Response} and
// InitialUEMessage.
#pragma once

#include "s1ap/ies.hpp"

namespace neutrino::s1ap {

// ---------------------------------------------------------------------------
// NAS messages (carried opaquely inside S1AP NAS-PDUs).
// ---------------------------------------------------------------------------

/// CHOICE of EPS mobile identity presented at attach.
using EpsMobileIdentity = TaggedUnion<Guti, Bytes /*IMSI digits*/>;

struct AttachRequest {
  static constexpr std::string_view kTypeName = "AttachRequest";
  std::uint8_t eps_attach_type = 1;  // 1 = EPS attach
  std::uint8_t nas_key_set_id = 7;
  EpsMobileIdentity identity;
  Bytes ue_network_capability;
  std::optional<Tai> last_visited_tai;
  std::optional<Bytes> esm_container;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "eps_attach_type", eps_attach_type, IntBounds{0, 7});
    v(1, "nas_key_set_id", nas_key_set_id, IntBounds{0, 7});
    v(2, "identity", identity);
    v(3, "ue_network_capability", ue_network_capability);
    v(4, "last_visited_tai", last_visited_tai);
    v(5, "esm_container", esm_container);
  }
  friend bool operator==(const AttachRequest&, const AttachRequest&) = default;
};

struct AttachAccept {
  static constexpr std::string_view kTypeName = "AttachAccept";
  std::uint8_t eps_attach_result = 1;
  Guti guti;
  std::vector<Tai> tai_list;
  std::optional<std::uint16_t> t3412_value;
  Bytes esm_container;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "eps_attach_result", eps_attach_result, IntBounds{0, 7});
    v(1, "guti", guti);
    v(2, "tai_list", tai_list);
    v(3, "t3412_value", t3412_value, IntBounds{0, 65535});
    v(4, "esm_container", esm_container);
  }
  friend bool operator==(const AttachAccept&, const AttachAccept&) = default;
};

struct AttachComplete {
  static constexpr std::string_view kTypeName = "AttachComplete";
  Bytes esm_container;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "esm_container", esm_container);
  }
  friend bool operator==(const AttachComplete&, const AttachComplete&) = default;
};

struct AuthenticationRequest {
  static constexpr std::string_view kTypeName = "AuthenticationRequest";
  std::uint8_t nas_key_set_id = 0;
  Bytes rand;  // 16 bytes
  Bytes autn;  // 16 bytes

  template <class V>
  void visit_fields(V&& v) {
    v(0, "nas_key_set_id", nas_key_set_id, IntBounds{0, 7});
    v(1, "rand", rand);
    v(2, "autn", autn);
  }
  friend bool operator==(const AuthenticationRequest&,
                         const AuthenticationRequest&) = default;
};

struct AuthenticationResponse {
  static constexpr std::string_view kTypeName = "AuthenticationResponse";
  Bytes res;  // 8 bytes

  template <class V>
  void visit_fields(V&& v) {
    v(0, "res", res);
  }
  friend bool operator==(const AuthenticationResponse&,
                         const AuthenticationResponse&) = default;
};

struct SecurityModeCommand {
  static constexpr std::string_view kTypeName = "SecurityModeCommand";
  std::uint8_t selected_algorithms = 0;
  std::uint8_t nas_key_set_id = 0;
  SecurityCapabilities replayed_capabilities;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "selected_algorithms", selected_algorithms, IntBounds{0, 255});
    v(1, "nas_key_set_id", nas_key_set_id, IntBounds{0, 7});
    v(2, "replayed_capabilities", replayed_capabilities);
  }
  friend bool operator==(const SecurityModeCommand&,
                         const SecurityModeCommand&) = default;
};

struct SecurityModeComplete {
  static constexpr std::string_view kTypeName = "SecurityModeComplete";
  std::optional<Bytes> imeisv;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "imeisv", imeisv);
  }
  friend bool operator==(const SecurityModeComplete&,
                         const SecurityModeComplete&) = default;
};

/// NAS service request: tiny by design (it rides in RRC connection setup).
struct ServiceRequest {
  static constexpr std::string_view kTypeName = "ServiceRequest";
  std::uint8_t ksi_sequence = 0;
  std::uint16_t short_mac = 0;
  STmsi s_tmsi;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "ksi_sequence", ksi_sequence, IntBounds{0, 255});
    v(1, "short_mac", short_mac, IntBounds{0, 65535});
    v(2, "s_tmsi", s_tmsi);
  }
  friend bool operator==(const ServiceRequest&, const ServiceRequest&) = default;
};

/// Tracking Area Update request (issued on idle mobility across TAs).
struct TrackingAreaUpdateRequest {
  static constexpr std::string_view kTypeName = "TrackingAreaUpdateRequest";
  std::uint8_t update_type = 0;
  Guti old_guti;
  std::optional<Tai> last_visited_tai;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "update_type", update_type, IntBounds{0, 7});
    v(1, "old_guti", old_guti);
    v(2, "last_visited_tai", last_visited_tai);
  }
  friend bool operator==(const TrackingAreaUpdateRequest&,
                         const TrackingAreaUpdateRequest&) = default;
};

// ---------------------------------------------------------------------------
// S1AP messages (BS <-> CTA <-> CPF).
// ---------------------------------------------------------------------------

struct InitialUeMessage {
  static constexpr std::string_view kTypeName = "InitialUEMessage";
  std::uint32_t enb_ue_s1ap_id = 0;
  Bytes nas_pdu;
  Tai tai;
  EutranCgi cgi;
  std::uint8_t rrc_establishment_cause = 0;
  std::optional<STmsi> s_tmsi;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(1, "nas_pdu", nas_pdu);
    v(2, "tai", tai);
    v(3, "cgi", cgi);
    v(4, "rrc_establishment_cause", rrc_establishment_cause, IntBounds{0, 7});
    v(5, "s_tmsi", s_tmsi);
  }
  friend bool operator==(const InitialUeMessage&,
                         const InitialUeMessage&) = default;
};

struct DownlinkNasTransport {
  static constexpr std::string_view kTypeName = "DownlinkNASTransport";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  Bytes nas_pdu;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "nas_pdu", nas_pdu);
  }
  friend bool operator==(const DownlinkNasTransport&,
                         const DownlinkNasTransport&) = default;
};

struct UplinkNasTransport {
  static constexpr std::string_view kTypeName = "UplinkNASTransport";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  Bytes nas_pdu;
  EutranCgi cgi;
  Tai tai;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "nas_pdu", nas_pdu);
    v(3, "cgi", cgi);
    v(4, "tai", tai);
  }
  friend bool operator==(const UplinkNasTransport&,
                         const UplinkNasTransport&) = default;
};

struct InitialContextSetupRequest {
  static constexpr std::string_view kTypeName = "InitialContextSetup";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  UeAggregateMaximumBitrate ambr;
  std::vector<ErabToBeSetupItem> erabs;
  SecurityCapabilities security_capabilities;
  Bytes security_key;  // 32 bytes K_eNB
  std::optional<Bytes> ue_radio_capability;
  std::optional<std::uint8_t> csg_membership_status;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "ambr", ambr);
    v(3, "erabs", erabs);
    v(4, "security_capabilities", security_capabilities);
    v(5, "security_key", security_key);
    v(6, "ue_radio_capability", ue_radio_capability);
    v(7, "csg_membership_status", csg_membership_status, IntBounds{0, 1});
  }
  friend bool operator==(const InitialContextSetupRequest&,
                         const InitialContextSetupRequest&) = default;
};

struct InitialContextSetupResponse {
  static constexpr std::string_view kTypeName = "InitialContextSetupResponse";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  std::vector<ErabSetupItem> erabs_setup;
  std::optional<std::vector<ErabFailedItem>> erabs_failed;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "erabs_setup", erabs_setup);
    v(3, "erabs_failed", erabs_failed);
  }
  friend bool operator==(const InitialContextSetupResponse&,
                         const InitialContextSetupResponse&) = default;
};

struct ErabSetupRequest {
  static constexpr std::string_view kTypeName = "ERABSetupRequest";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  std::optional<UeAggregateMaximumBitrate> ambr;
  std::vector<ErabToBeSetupItem> erabs;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "ambr", ambr);
    v(3, "erabs", erabs);
  }
  friend bool operator==(const ErabSetupRequest&,
                         const ErabSetupRequest&) = default;
};

struct ErabSetupResponse {
  static constexpr std::string_view kTypeName = "ERABSetupResponse";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  std::vector<ErabSetupItem> erabs_setup;
  std::optional<std::vector<ErabFailedItem>> erabs_failed;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "erabs_setup", erabs_setup);
    v(3, "erabs_failed", erabs_failed);
  }
  friend bool operator==(const ErabSetupResponse&,
                         const ErabSetupResponse&) = default;
};

struct UeContextReleaseCommand {
  static constexpr std::string_view kTypeName = "UEContextReleaseCommand";
  UeS1apIds ids;
  Cause cause;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "ids", ids);
    v(1, "cause", cause);
  }
  friend bool operator==(const UeContextReleaseCommand&,
                         const UeContextReleaseCommand&) = default;
};

struct UeContextReleaseComplete {
  static constexpr std::string_view kTypeName = "UEContextReleaseComplete";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
  }
  friend bool operator==(const UeContextReleaseComplete&,
                         const UeContextReleaseComplete&) = default;
};

struct Paging {
  static constexpr std::string_view kTypeName = "Paging";
  std::uint16_t ue_identity_index = 0;
  UePagingIdentity paging_identity;
  std::uint8_t cn_domain = 0;
  std::vector<Tai> tai_list;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "ue_identity_index", ue_identity_index, IntBounds{0, 1023});
    v(1, "paging_identity", paging_identity);
    v(2, "cn_domain", cn_domain, IntBounds{0, 1});
    v(3, "tai_list", tai_list);
  }
  friend bool operator==(const Paging&, const Paging&) = default;
};

// ---- handover family ------------------------------------------------------

struct HandoverRequired {
  static constexpr std::string_view kTypeName = "HandoverRequired";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint8_t handover_type = 0;  // 0 = intra-LTE
  Cause cause;
  TargetEnbId target;
  Bytes source_to_target_container;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "handover_type", handover_type, IntBounds{0, 4});
    v(3, "cause", cause);
    v(4, "target", target);
    v(5, "source_to_target_container", source_to_target_container);
  }
  friend bool operator==(const HandoverRequired&,
                         const HandoverRequired&) = default;
};

struct HandoverRequest {
  static constexpr std::string_view kTypeName = "HandoverRequest";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint8_t handover_type = 0;
  Cause cause;
  UeAggregateMaximumBitrate ambr;
  std::vector<ErabToBeSetupItem> erabs;
  Bytes source_to_target_container;
  SecurityCapabilities security_capabilities;
  Bytes security_context;  // NH + NCC

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "handover_type", handover_type, IntBounds{0, 4});
    v(2, "cause", cause);
    v(3, "ambr", ambr);
    v(4, "erabs", erabs);
    v(5, "source_to_target_container", source_to_target_container);
    v(6, "security_capabilities", security_capabilities);
    v(7, "security_context", security_context);
  }
  friend bool operator==(const HandoverRequest&,
                         const HandoverRequest&) = default;
};

struct ErabAdmittedItem {
  static constexpr std::string_view kTypeName = "E-RABAdmittedItem";
  std::uint8_t erab_id = 0;
  GtpTunnel dl_transport;
  std::optional<GtpTunnel> ul_transport;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "erab_id", erab_id, IntBounds{0, 15});
    v(1, "dl_transport", dl_transport);
    v(2, "ul_transport", ul_transport);
  }
  friend bool operator==(const ErabAdmittedItem&,
                         const ErabAdmittedItem&) = default;
};

struct HandoverRequestAcknowledge {
  static constexpr std::string_view kTypeName = "HandoverRequestAcknowledge";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  std::vector<ErabAdmittedItem> erabs_admitted;
  Bytes target_to_source_container;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "erabs_admitted", erabs_admitted);
    v(3, "target_to_source_container", target_to_source_container);
  }
  friend bool operator==(const HandoverRequestAcknowledge&,
                         const HandoverRequestAcknowledge&) = default;
};

struct HandoverCommand {
  static constexpr std::string_view kTypeName = "HandoverCommand";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  std::uint8_t handover_type = 0;
  Bytes target_to_source_container;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "handover_type", handover_type, IntBounds{0, 4});
    v(3, "target_to_source_container", target_to_source_container);
  }
  friend bool operator==(const HandoverCommand&, const HandoverCommand&) = default;
};

struct HandoverNotify {
  static constexpr std::string_view kTypeName = "HandoverNotify";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;
  EutranCgi cgi;
  Tai tai;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
    v(2, "cgi", cgi);
    v(3, "tai", tai);
  }
  friend bool operator==(const HandoverNotify&, const HandoverNotify&) = default;
};

// ---------------------------------------------------------------------------
// Neutrino-specific: the replicated UE context (§4.2.2) as a wire message.
// This is the per-procedure checkpoint the primary CPF ships to backups and
// the migration payload for HandoverMode::kMigrate.
// ---------------------------------------------------------------------------

struct UeContextCheckpoint {
  static constexpr std::string_view kTypeName = "UEContextCheckpoint";
  std::uint64_t imsi = 0;
  Guti guti;
  EutranCgi serving_cell;
  std::vector<Tai> tai_list;
  std::vector<ErabSetupItem> bearers;  // data-plane endpoint identifiers
  SecurityCapabilities security_capabilities;
  Bytes security_context;  // K_ASME-derived material
  std::uint64_t last_completed_procedure = 0;
  std::uint64_t last_logical_clock = 0;  // end-of-procedure marker (§4.2.3)

  template <class V>
  void visit_fields(V&& v) {
    v(0, "imsi", imsi, IntBounds{0, 999'999'999'999'999LL});
    v(1, "guti", guti);
    v(2, "serving_cell", serving_cell);
    v(3, "tai_list", tai_list);
    v(4, "bearers", bearers);
    v(5, "security_capabilities", security_capabilities);
    v(6, "security_context", security_context);
    v(7, "last_completed_procedure", last_completed_procedure,
      IntBounds{0, 1LL << 40});
    v(8, "last_logical_clock", last_logical_clock, IntBounds{0, 1LL << 48});
  }
  friend bool operator==(const UeContextCheckpoint&,
                         const UeContextCheckpoint&) = default;
};

// ---------------------------------------------------------------------------
// GTP-C (S11) messages: CPF <-> UPF session management.
// ---------------------------------------------------------------------------

struct CreateSessionRequest {
  static constexpr std::string_view kTypeName = "CreateSessionRequest";
  std::uint64_t imsi = 0;
  std::uint32_t sender_teid = 0;
  GtpTunnel control_tunnel;
  std::vector<ErabToBeSetupItem> bearers;
  Tai uli_tai;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "imsi", imsi, IntBounds{0, 999'999'999'999'999LL});
    v(1, "sender_teid", sender_teid, IntBounds{0, 0xffffffffLL});
    v(2, "control_tunnel", control_tunnel);
    v(3, "bearers", bearers);
    v(4, "uli_tai", uli_tai);
  }
  friend bool operator==(const CreateSessionRequest&,
                         const CreateSessionRequest&) = default;
};

struct CreateSessionResponse {
  static constexpr std::string_view kTypeName = "CreateSessionResponse";
  std::uint8_t cause = 0;  // 0 = accepted
  std::uint32_t upf_teid = 0;
  std::vector<ErabSetupItem> bearers;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "cause", cause, IntBounds{0, 255});
    v(1, "upf_teid", upf_teid, IntBounds{0, 0xffffffffLL});
    v(2, "bearers", bearers);
  }
  friend bool operator==(const CreateSessionResponse&,
                         const CreateSessionResponse&) = default;
};

struct ModifyBearerRequest {
  static constexpr std::string_view kTypeName = "ModifyBearerRequest";
  std::uint32_t upf_teid = 0;
  std::vector<ErabSetupItem> bearers;  // new downlink endpoints

  template <class V>
  void visit_fields(V&& v) {
    v(0, "upf_teid", upf_teid, IntBounds{0, 0xffffffffLL});
    v(1, "bearers", bearers);
  }
  friend bool operator==(const ModifyBearerRequest&,
                         const ModifyBearerRequest&) = default;
};

struct ModifyBearerResponse {
  static constexpr std::string_view kTypeName = "ModifyBearerResponse";
  std::uint8_t cause = 0;
  std::vector<ErabSetupItem> bearers;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "cause", cause, IntBounds{0, 255});
    v(1, "bearers", bearers);
  }
  friend bool operator==(const ModifyBearerResponse&,
                         const ModifyBearerResponse&) = default;
};

struct DeleteSessionRequest {
  static constexpr std::string_view kTypeName = "DeleteSessionRequest";
  std::uint32_t upf_teid = 0;
  std::uint8_t cause = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "upf_teid", upf_teid, IntBounds{0, 0xffffffffLL});
    v(1, "cause", cause, IntBounds{0, 255});
  }
  friend bool operator==(const DeleteSessionRequest&,
                         const DeleteSessionRequest&) = default;
};

struct DeleteSessionResponse {
  static constexpr std::string_view kTypeName = "DeleteSessionResponse";
  std::uint8_t cause = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "cause", cause, IntBounds{0, 255});
  }
  friend bool operator==(const DeleteSessionResponse&,
                         const DeleteSessionResponse&) = default;
};

}  // namespace neutrino::s1ap
