// Top-level PDU envelope: one CHOICE over every control message, so any
// message can be carried, logged and serialized uniformly.
#pragma once

#include "s1ap/messages.hpp"

namespace neutrino::s1ap {

using MessageBody = TaggedUnion<
    // NAS
    AttachRequest, AttachAccept, AttachComplete, AuthenticationRequest,
    AuthenticationResponse, SecurityModeCommand, SecurityModeComplete,
    ServiceRequest, TrackingAreaUpdateRequest,
    // S1AP
    InitialUeMessage, DownlinkNasTransport, UplinkNasTransport,
    InitialContextSetupRequest, InitialContextSetupResponse, ErabSetupRequest,
    ErabSetupResponse, UeContextReleaseCommand, UeContextReleaseComplete,
    Paging, HandoverRequired, HandoverRequest, HandoverRequestAcknowledge,
    HandoverCommand, HandoverNotify,
    // GTP-C
    CreateSessionRequest, CreateSessionResponse, ModifyBearerRequest,
    ModifyBearerResponse, DeleteSessionRequest, DeleteSessionResponse,
    // Neutrino replication
    UeContextCheckpoint>;

struct S1apPdu {
  static constexpr std::string_view kTypeName = "S1AP-PDU";
  MessageBody body;

  S1apPdu() = default;
  template <typename M>
    requires(!std::is_same_v<std::decay_t<M>, S1apPdu>)
  explicit S1apPdu(M&& msg) : body(std::forward<M>(msg)) {}

  template <class V>
  void visit_fields(V&& v) {
    v(0, "body", body);
  }

  template <typename M>
  [[nodiscard]] bool is() const {
    return body.holds<M>();
  }
  template <typename M>
  [[nodiscard]] const M& get() const {
    return body.get<M>();
  }

  friend bool operator==(const S1apPdu&, const S1apPdu&) = default;
};

/// Human-readable name of the active message (diagnostics, trace dumps).
inline std::string_view message_name(const S1apPdu& pdu) {
  std::string_view name = "empty";
  const_cast<S1apPdu&>(pdu).body.visit_active([&](auto& msg) {
    name = std::decay_t<decltype(msg)>::kTypeName;
  });
  return name;
}

}  // namespace neutrino::s1ap
