// S1AP information elements (3GPP TS 36.413, simplified but structurally
// faithful: hierarchical IEs, CHOICEs, optional fields, octet strings).
//
// Every IE declares visit_fields(v) with stable field ids and the 3GPP
// value constraints, which the ASN.1 PER codec uses for bit-packing.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "serialize/schema.hpp"

namespace neutrino::s1ap {

using ser::IntBounds;
using ser::TaggedUnion;

/// PLMN = Mobile Country Code + Mobile Network Code (3 digits each).
struct PlmnIdentity {
  static constexpr std::string_view kTypeName = "PLMN-Identity";
  std::uint16_t mcc = 0;
  std::uint16_t mnc = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mcc", mcc, IntBounds{0, 999});
    v(1, "mnc", mnc, IntBounds{0, 999});
  }
  friend bool operator==(const PlmnIdentity&, const PlmnIdentity&) = default;
};

/// Tracking Area Identity.
struct Tai {
  static constexpr std::string_view kTypeName = "TAI";
  PlmnIdentity plmn;
  std::uint16_t tac = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "plmn", plmn);
    v(1, "tac", tac, IntBounds{0, 65535});
  }
  friend bool operator==(const Tai&, const Tai&) = default;
};

/// E-UTRAN Cell Global Identifier (28-bit cell identity).
struct EutranCgi {
  static constexpr std::string_view kTypeName = "EUTRAN-CGI";
  PlmnIdentity plmn;
  std::uint32_t cell_identity = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "plmn", plmn);
    v(1, "cell_identity", cell_identity, IntBounds{0, (1 << 28) - 1});
  }
  friend bool operator==(const EutranCgi&, const EutranCgi&) = default;
};

/// Globally Unique Temporary Identity.
struct Guti {
  static constexpr std::string_view kTypeName = "GUTI";
  PlmnIdentity plmn;
  std::uint16_t mme_group_id = 0;
  std::uint8_t mme_code = 0;
  std::uint32_t m_tmsi = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "plmn", plmn);
    v(1, "mme_group_id", mme_group_id, IntBounds{0, 65535});
    v(2, "mme_code", mme_code, IntBounds{0, 255});
    v(3, "m_tmsi", m_tmsi, IntBounds{0, 0xffffffffLL});
  }
  friend bool operator==(const Guti&, const Guti&) = default;
};

/// S-TMSI: the short temporary identity used for paging and service request.
struct STmsi {
  static constexpr std::string_view kTypeName = "S-TMSI";
  std::uint8_t mme_code = 0;
  std::uint32_t m_tmsi = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_code", mme_code, IntBounds{0, 255});
    v(1, "m_tmsi", m_tmsi, IntBounds{0, 0xffffffffLL});
  }
  friend bool operator==(const STmsi&, const STmsi&) = default;
};

/// CHOICE over an IPv4 word or an IPv6 byte string: a single-data-element
/// union, the exact pattern Neutrino's svtable optimizes (§4.4).
using TransportLayerAddress = TaggedUnion<std::uint32_t, Bytes>;

/// GTP user-plane tunnel endpoint.
struct GtpTunnel {
  static constexpr std::string_view kTypeName = "GTP-Tunnel";
  TransportLayerAddress address = std::uint32_t{0};
  std::uint32_t teid = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "address", address);
    v(1, "teid", teid, IntBounds{0, 0xffffffffLL});
  }
  friend bool operator==(const GtpTunnel&, const GtpTunnel&) = default;
};

/// S1AP Cause: CHOICE of five enumerated cause families, each a single
/// scalar — another svtable beneficiary.
struct CauseRadioNetwork {
  static constexpr std::string_view kTypeName = "CauseRadioNetwork";
  std::uint8_t value = 0;
  template <class V>
  void visit_fields(V&& v) {
    v(0, "value", value, IntBounds{0, 45});
  }
  friend bool operator==(const CauseRadioNetwork&,
                         const CauseRadioNetwork&) = default;
};

using Cause = TaggedUnion<std::uint8_t /*radio_network*/,
                          std::uint16_t /*transport*/, std::uint32_t /*nas*/,
                          std::uint64_t /*protocol*/, std::string /*misc*/>;

struct UeAggregateMaximumBitrate {
  static constexpr std::string_view kTypeName = "UEAggregateMaximumBitrate";
  std::uint64_t dl_bps = 0;
  std::uint64_t ul_bps = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "dl_bps", dl_bps, IntBounds{0, 10'000'000'000LL});
    v(1, "ul_bps", ul_bps, IntBounds{0, 10'000'000'000LL});
  }
  friend bool operator==(const UeAggregateMaximumBitrate&,
                         const UeAggregateMaximumBitrate&) = default;
};

struct SecurityCapabilities {
  static constexpr std::string_view kTypeName = "UESecurityCapabilities";
  std::uint16_t encryption_algorithms = 0;
  std::uint16_t integrity_algorithms = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "encryption_algorithms", encryption_algorithms, IntBounds{0, 65535});
    v(1, "integrity_algorithms", integrity_algorithms, IntBounds{0, 65535});
  }
  friend bool operator==(const SecurityCapabilities&,
                         const SecurityCapabilities&) = default;
};

/// E-RAB level QoS parameters.
struct ErabQos {
  static constexpr std::string_view kTypeName = "E-RABLevelQoSParameters";
  std::uint8_t qci = 9;
  std::uint8_t priority_level = 0;
  bool preemption_capability = false;
  bool preemption_vulnerability = false;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "qci", qci, IntBounds{0, 255});
    v(1, "priority_level", priority_level, IntBounds{0, 15});
    v(2, "preemption_capability", preemption_capability);
    v(3, "preemption_vulnerability", preemption_vulnerability);
  }
  friend bool operator==(const ErabQos&, const ErabQos&) = default;
};

/// One E-RAB to be set up (nested: QoS + tunnel + optional NAS PDU).
struct ErabToBeSetupItem {
  static constexpr std::string_view kTypeName = "E-RABToBeSetupItem";
  std::uint8_t erab_id = 0;
  ErabQos qos;
  GtpTunnel transport;
  std::optional<Bytes> nas_pdu;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "erab_id", erab_id, IntBounds{0, 15});
    v(1, "qos", qos);
    v(2, "transport", transport);
    v(3, "nas_pdu", nas_pdu);
  }
  friend bool operator==(const ErabToBeSetupItem&,
                         const ErabToBeSetupItem&) = default;
};

/// One successfully established E-RAB.
struct ErabSetupItem {
  static constexpr std::string_view kTypeName = "E-RABSetupItem";
  std::uint8_t erab_id = 0;
  GtpTunnel transport;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "erab_id", erab_id, IntBounds{0, 15});
    v(1, "transport", transport);
  }
  friend bool operator==(const ErabSetupItem&, const ErabSetupItem&) = default;
};

/// One E-RAB that failed to establish.
struct ErabFailedItem {
  static constexpr std::string_view kTypeName = "E-RABFailedItem";
  std::uint8_t erab_id = 0;
  Cause cause;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "erab_id", erab_id, IntBounds{0, 15});
    v(1, "cause", cause);
  }
  friend bool operator==(const ErabFailedItem&, const ErabFailedItem&) = default;
};

/// CHOICE over the UE identity used in paging: S-TMSI or IMSI digits.
using UePagingIdentity = TaggedUnion<STmsi, Bytes>;

/// CHOICE over UE-associated S1AP ids (both ids / MME id only).
struct UeS1apIdPair {
  static constexpr std::string_view kTypeName = "UE-S1AP-ID-pair";
  std::uint32_t mme_ue_s1ap_id = 0;
  std::uint32_t enb_ue_s1ap_id = 0;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "mme_ue_s1ap_id", mme_ue_s1ap_id, IntBounds{0, 0xffffffffLL});
    v(1, "enb_ue_s1ap_id", enb_ue_s1ap_id, IntBounds{0, 0xffffffLL});
  }
  friend bool operator==(const UeS1apIdPair&, const UeS1apIdPair&) = default;
};

using UeS1apIds = TaggedUnion<UeS1apIdPair, std::uint32_t /*mme id only*/>;

/// Target for a handover: eNB with cell, identified inside the PLMN.
struct TargetEnbId {
  static constexpr std::string_view kTypeName = "TargetID";
  PlmnIdentity plmn;
  std::uint32_t macro_enb_id = 0;  // 20 bits
  Tai selected_tai;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "plmn", plmn);
    v(1, "macro_enb_id", macro_enb_id, IntBounds{0, (1 << 20) - 1});
    v(2, "selected_tai", selected_tai);
  }
  friend bool operator==(const TargetEnbId&, const TargetEnbId&) = default;
};

}  // namespace neutrino::s1ap
