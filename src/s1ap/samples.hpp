// Realistic sample instances of the control messages, shared by tests,
// benches and the simulator's cost calibration.
//
// Sizes and cardinalities follow what a real attach/service-request flow
// carries: 16-byte RAND/AUTN, 32-byte K_eNB, 1-2 E-RABs, a TAI list of a
// few entries, and a UE radio capability container of ~100 bytes.
#pragma once

#include "common/rng.hpp"
#include "s1ap/pdu.hpp"

namespace neutrino::s1ap::samples {

inline Bytes pattern_bytes(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<Byte>(seed + i * 37);
  }
  return b;
}

inline PlmnIdentity plmn() { return {.mcc = 410, .mnc = 1}; }

inline Tai tai(std::uint16_t tac = 0x1234) {
  return {.plmn = plmn(), .tac = tac};
}

inline EutranCgi cgi(std::uint32_t cell = 0x00abcde) {
  return {.plmn = plmn(), .cell_identity = cell};
}

inline Guti guti(std::uint32_t m_tmsi = 0xdeadbeef) {
  return {.plmn = plmn(), .mme_group_id = 0x8001, .mme_code = 2,
          .m_tmsi = m_tmsi};
}

inline GtpTunnel tunnel(std::uint32_t teid) {
  GtpTunnel t;
  t.address = std::uint32_t{0x0a000001 + teid % 16};  // 10.0.0.x
  t.teid = teid;
  return t;
}

inline ErabToBeSetupItem erab_to_setup(std::uint8_t id) {
  ErabToBeSetupItem item;
  item.erab_id = id;
  item.qos = {.qci = 9, .priority_level = 8,
              .preemption_capability = false,
              .preemption_vulnerability = true};
  item.transport = tunnel(0x1000u + id);
  item.nas_pdu = pattern_bytes(48, id);  // activate-default-bearer request
  return item;
}

inline InitialUeMessage initial_ue_message(std::uint32_t enb_id = 77) {
  InitialUeMessage m;
  m.enb_ue_s1ap_id = enb_id;
  m.nas_pdu = pattern_bytes(60, 0x11);  // encoded AttachRequest
  m.tai = tai();
  m.cgi = cgi();
  m.rrc_establishment_cause = 3;  // mo-Signalling
  m.s_tmsi = STmsi{.mme_code = 2, .m_tmsi = 0xdeadbeef};
  return m;
}

inline InitialContextSetupRequest initial_context_setup(
    std::uint32_t mme_id = 901, std::uint32_t enb_id = 77) {
  InitialContextSetupRequest m;
  m.mme_ue_s1ap_id = mme_id;
  m.enb_ue_s1ap_id = enb_id;
  m.ambr = {.dl_bps = 100'000'000, .ul_bps = 50'000'000};
  m.erabs = {erab_to_setup(5), erab_to_setup(6)};
  m.security_capabilities = {.encryption_algorithms = 0xe0,
                             .integrity_algorithms = 0xc0};
  m.security_key = pattern_bytes(32, 0x22);
  m.ue_radio_capability = pattern_bytes(96, 0x33);
  m.csg_membership_status = std::uint8_t{1};
  return m;
}

inline InitialContextSetupResponse initial_context_setup_response(
    std::uint32_t mme_id = 901, std::uint32_t enb_id = 77) {
  InitialContextSetupResponse m;
  m.mme_ue_s1ap_id = mme_id;
  m.enb_ue_s1ap_id = enb_id;
  m.erabs_setup = {{.erab_id = 5, .transport = tunnel(0x2005)},
                   {.erab_id = 6, .transport = tunnel(0x2006)}};
  return m;
}

inline ErabSetupRequest erab_setup_request(std::uint32_t mme_id = 901,
                                           std::uint32_t enb_id = 77) {
  ErabSetupRequest m;
  m.mme_ue_s1ap_id = mme_id;
  m.enb_ue_s1ap_id = enb_id;
  m.ambr = UeAggregateMaximumBitrate{.dl_bps = 100'000'000,
                                     .ul_bps = 50'000'000};
  m.erabs = {erab_to_setup(7)};
  return m;
}

inline ErabSetupResponse erab_setup_response(std::uint32_t mme_id = 901,
                                             std::uint32_t enb_id = 77) {
  ErabSetupResponse m;
  m.mme_ue_s1ap_id = mme_id;
  m.enb_ue_s1ap_id = enb_id;
  m.erabs_setup = {{.erab_id = 7, .transport = tunnel(0x2007)}};
  ErabFailedItem failed;
  failed.erab_id = 8;
  failed.cause = std::uint8_t{21};  // radio-network: unknown E-RAB id
  m.erabs_failed = std::vector<ErabFailedItem>{failed};
  return m;
}

inline AttachRequest attach_request(std::uint64_t imsi = 410012345678901ULL) {
  AttachRequest m;
  m.eps_attach_type = 1;
  m.nas_key_set_id = 7;
  m.identity = guti(static_cast<std::uint32_t>(imsi));
  m.ue_network_capability = pattern_bytes(8, 0x44);
  m.last_visited_tai = tai(0x1200);
  m.esm_container = pattern_bytes(24, 0x55);
  return m;
}

inline AttachAccept attach_accept() {
  AttachAccept m;
  m.eps_attach_result = 1;
  m.guti = guti();
  m.tai_list = {tai(0x1234), tai(0x1235), tai(0x1236)};
  m.t3412_value = std::uint16_t{5400};
  m.esm_container = pattern_bytes(40, 0x66);
  return m;
}

inline ServiceRequest service_request(std::uint32_t m_tmsi = 0xdeadbeef) {
  ServiceRequest m;
  m.ksi_sequence = 0x35;
  m.short_mac = 0xbeef;
  m.s_tmsi = {.mme_code = 2, .m_tmsi = m_tmsi};
  return m;
}

inline HandoverRequired handover_required(std::uint32_t mme_id = 901) {
  HandoverRequired m;
  m.mme_ue_s1ap_id = mme_id;
  m.enb_ue_s1ap_id = 77;
  m.handover_type = 0;
  m.cause = std::uint8_t{2};  // radio-network: handover-desirable
  m.target = {.plmn = plmn(), .macro_enb_id = 0x5432,
              .selected_tai = tai(0x1300)};
  m.source_to_target_container = pattern_bytes(120, 0x77);
  return m;
}

inline HandoverRequest handover_request(std::uint32_t mme_id = 901) {
  HandoverRequest m;
  m.mme_ue_s1ap_id = mme_id;
  m.handover_type = 0;
  m.cause = std::uint8_t{2};
  m.ambr = {.dl_bps = 100'000'000, .ul_bps = 50'000'000};
  m.erabs = {erab_to_setup(5)};
  m.source_to_target_container = pattern_bytes(120, 0x77);
  m.security_capabilities = {.encryption_algorithms = 0xe0,
                             .integrity_algorithms = 0xc0};
  m.security_context = pattern_bytes(33, 0x88);
  return m;
}

inline Paging paging() {
  Paging m;
  m.ue_identity_index = 0x2a1;
  m.paging_identity = STmsi{.mme_code = 2, .m_tmsi = 0xdeadbeef};
  m.cn_domain = 1;
  m.tai_list = {tai(0x1234), tai(0x1235)};
  return m;
}

inline CreateSessionRequest create_session_request() {
  CreateSessionRequest m;
  m.imsi = 410012345678901ULL;
  m.sender_teid = 0x31415;
  m.control_tunnel = tunnel(0x31415);
  m.bearers = {erab_to_setup(5)};
  m.uli_tai = tai();
  return m;
}

inline DownlinkNasTransport downlink_nas(std::size_t nas_bytes = 24) {
  DownlinkNasTransport m;
  m.mme_ue_s1ap_id = 901;
  m.enb_ue_s1ap_id = 77;
  m.nas_pdu = pattern_bytes(nas_bytes, 0xaa);
  return m;
}

inline UplinkNasTransport uplink_nas(std::size_t nas_bytes = 16) {
  UplinkNasTransport m;
  m.mme_ue_s1ap_id = 901;
  m.enb_ue_s1ap_id = 77;
  m.nas_pdu = pattern_bytes(nas_bytes, 0xbb);
  m.cgi = cgi();
  m.tai = tai();
  return m;
}

inline HandoverRequestAcknowledge handover_request_ack() {
  HandoverRequestAcknowledge m;
  m.mme_ue_s1ap_id = 901;
  m.enb_ue_s1ap_id = 78;
  m.erabs_admitted = {{.erab_id = 5, .dl_transport = tunnel(0x3005),
                       .ul_transport = tunnel(0x3006)}};
  m.target_to_source_container = pattern_bytes(80, 0xcc);
  return m;
}

inline HandoverCommand handover_command() {
  HandoverCommand m;
  m.mme_ue_s1ap_id = 901;
  m.enb_ue_s1ap_id = 77;
  m.handover_type = 0;
  m.target_to_source_container = pattern_bytes(80, 0xcc);
  return m;
}

inline HandoverNotify handover_notify() {
  HandoverNotify m;
  m.mme_ue_s1ap_id = 901;
  m.enb_ue_s1ap_id = 78;
  m.cgi = cgi(0x00abcdf);
  m.tai = tai(0x1300);
  return m;
}

inline UeContextReleaseCommand ue_context_release_command() {
  UeContextReleaseCommand m;
  m.ids = UeS1apIdPair{.mme_ue_s1ap_id = 901, .enb_ue_s1ap_id = 77};
  m.cause = std::uint8_t{20};  // radio-network
  return m;
}

inline UeContextReleaseComplete ue_context_release_complete() {
  return {.mme_ue_s1ap_id = 901, .enb_ue_s1ap_id = 77};
}

inline CreateSessionResponse create_session_response() {
  CreateSessionResponse m;
  m.cause = 0;
  m.upf_teid = 0x27182;
  m.bearers = {{.erab_id = 5, .transport = tunnel(0x2005)}};
  return m;
}

inline ModifyBearerRequest modify_bearer_request() {
  ModifyBearerRequest m;
  m.upf_teid = 0x27182;
  m.bearers = {{.erab_id = 5, .transport = tunnel(0x2008)}};
  return m;
}

inline ModifyBearerResponse modify_bearer_response() {
  ModifyBearerResponse m;
  m.cause = 0;
  m.bearers = {{.erab_id = 5, .transport = tunnel(0x2008)}};
  return m;
}

inline TrackingAreaUpdateRequest tracking_area_update() {
  TrackingAreaUpdateRequest m;
  m.update_type = 0;
  m.old_guti = guti();
  m.last_visited_tai = tai(0x1200);
  return m;
}

inline UeContextCheckpoint ue_context_checkpoint() {
  UeContextCheckpoint m;
  m.imsi = 410012345678901ULL;
  m.guti = guti();
  m.serving_cell = cgi();
  m.tai_list = {tai(0x1234), tai(0x1235), tai(0x1236)};
  m.bearers = {{.erab_id = 5, .transport = tunnel(0x2005)},
               {.erab_id = 6, .transport = tunnel(0x2006)}};
  m.security_capabilities = {.encryption_algorithms = 0xe0,
                             .integrity_algorithms = 0xc0};
  m.security_context = pattern_bytes(32, 0xdd);
  m.last_completed_procedure = 17;
  m.last_logical_clock = 93;
  return m;
}

/// The five messages measured in the paper's Figs. 19-20, in x-axis order.
struct NamedPdu {
  std::string_view name;
  S1apPdu pdu;
};

inline std::vector<NamedPdu> figure19_messages() {
  return {
      {"InitialContextSetup", S1apPdu(initial_context_setup())},
      {"InitialContextSetupResponse",
       S1apPdu(initial_context_setup_response())},
      {"ERABSetupRequest", S1apPdu(erab_setup_request())},
      {"ERABSetupResponse", S1apPdu(erab_setup_response())},
      {"InitialUEMessage", S1apPdu(initial_ue_message())},
  };
}

}  // namespace neutrino::s1ap::samples
