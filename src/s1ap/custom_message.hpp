// The Fig. 18 micro-benchmark message: a synthetic control message with a
// configurable number of information elements.
//
// The paper constructs "a custom message with varying number of data
// elements/fields" to locate the crossover where FlatBuffers overtakes
// Fast-CDR/LCM (~7 elements). S1AP carries every IE inside a ProtocolIE
// container ({ id, criticality, value }) — "the data in these messages is
// organized hierarchically, with potentially multiple nested elements"
// (§3.2) — so each element here is such a wrapped IE. Value types cycle
// through u32 / u64 / short string / u16, resembling real IEs (ids,
// bitrates, opaque containers, codes).
#pragma once

#include <array>

#include "serialize/schema.hpp"

namespace neutrino::s1ap {

namespace custom_detail {

inline constexpr std::array<std::string_view, 36> kFieldNames = {
    "f0",  "f1",  "f2",  "f3",  "f4",  "f5",  "f6",  "f7",  "f8",
    "f9",  "f10", "f11", "f12", "f13", "f14", "f15", "f16", "f17",
    "f18", "f19", "f20", "f21", "f22", "f23", "f24", "f25", "f26",
    "f27", "f28", "f29", "f30", "f31", "f32", "f33", "f34", "f35"};

constexpr std::size_t count_of_kind(std::size_t n, std::size_t kind) {
  // Fields cycle kinds 0,1,2,3; how many of `kind` occur among n fields.
  return n / 4 + (n % 4 > kind ? 1 : 0);
}

/// An S1AP IE value is an open type: a CHOICE over the possible payloads —
/// precisely the "unions containing single data elements" pattern the
/// svtable optimization targets (§4.4).
using IeValue =
    ser::TaggedUnion<std::uint32_t, std::uint64_t, std::string, std::uint16_t>;

/// S1AP ProtocolIE container around one value (TS 36.413 §9.1).
struct ProtocolIe {
  static constexpr std::string_view kTypeName = "ProtocolIE";
  std::uint16_t ie_id = 0;
  std::uint8_t criticality = 0;  // reject / ignore / notify
  IeValue value;

  template <class V>
  void visit_fields(V&& v) {
    v(0, "ie_id", ie_id, ser::IntBounds{0, 65535});
    v(1, "criticality", criticality, ser::IntBounds{0, 2});
    v(2, "value", value);
  }
  friend bool operator==(const ProtocolIe&, const ProtocolIe&) = default;
};

}  // namespace custom_detail

template <std::size_t N>
struct CustomMessage {
  static_assert(N >= 1 && N <= 35);
  static constexpr std::string_view kTypeName = "CustomMessage";

  using Ie = custom_detail::ProtocolIe;

  std::array<Ie, N> ies{};

  template <class V>
  void visit_fields(V&& v) {
    [&]<std::size_t... Is>(std::index_sequence<Is...>) {
      (visit_one<Is>(v), ...);
    }(std::make_index_sequence<N>{});
  }

  /// Deterministic non-trivial content for benches and round-trip tests.
  /// IE payload kinds cycle u32 / u64 / string / u16.
  void fill(std::uint64_t seed) {
    for (std::size_t i = 0; i < N; ++i) {
      ies[i].ie_id = static_cast<std::uint16_t>((seed + i) % 300);
      ies[i].criticality = static_cast<std::uint8_t>(i % 3);
      switch (i % 4) {
        case 0:
          ies[i].value = static_cast<std::uint32_t>(
              (seed * 2654435761u + i) & 0xffffff);
          break;
        case 1:
          ies[i].value = (seed << 20) + i * 977;
          break;
        case 2:
          ies[i].value = "ie-" + std::to_string(seed % 1000) + "-" +
                         std::to_string(i);
          break;
        default:
          ies[i].value = static_cast<std::uint16_t>(seed + 31 * i);
          break;
      }
    }
  }

  friend bool operator==(const CustomMessage&, const CustomMessage&) = default;

 private:
  template <std::size_t I, class V>
  void visit_one(V&& v) {
    v(static_cast<int>(I), custom_detail::kFieldNames[I], ies[I]);
  }
};

}  // namespace neutrino::s1ap
