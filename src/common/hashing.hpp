// Stable 64-bit hashing for consistent-hash rings and UE→CPF mapping.
//
// std::hash is not stable across implementations; ring placement must be, or
// the same trace replays differently on different standard libraries.
#pragma once

#include <cstdint>
#include <string_view>

namespace neutrino {

/// FNV-1a, 64-bit.
constexpr std::uint64_t fnv1a64(std::string_view data,
                                std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Stafford's mix13 finalizer: turns correlated integer keys (sequential UE
/// ids) into well-distributed ring positions.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combine two hashes (for (node, replica-index) virtual-node keys).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace neutrino
