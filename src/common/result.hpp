// Minimal Status / Result<T> error-propagation types.
//
// Codecs and protocol handlers return these instead of throwing: a decode
// failure on attacker- or fuzzer-supplied bytes is an expected outcome, not
// an exceptional one (CppCoreGuidelines E.3).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace neutrino {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kOutOfRange,
  kMalformed,      // wire bytes violate the format
  kUnsupported,    // schema feature the codec cannot express
  kNotFound,
  kFailedPrecondition,
  kUnavailable,    // peer down / failed over
};

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  explicit operator bool() const { return is_ok(); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status make_error(StatusCode code, std::string message) {
  return Status(code, std::move(message));
}

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result(Status) requires an error status");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const Status& status() const { return status_; }

  T& value() & {
    assert(is_ok());
    return *value_;
  }
  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagate an error Status from an expression that yields Status.
#define NEUTRINO_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::neutrino::Status status_macro_tmp = (expr); \
    if (!status_macro_tmp.is_ok()) return status_macro_tmp; \
  } while (false)

}  // namespace neutrino
