// Simulated time and the CTA's logical clock.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace neutrino {

/// Simulation time in nanoseconds since experiment start.
///
/// A plain strong type (not std::chrono) because events need a totally
/// ordered integral key and benches do arithmetic on it constantly.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime nanoseconds(std::int64_t v) { return SimTime(v); }
  static constexpr SimTime microseconds(std::int64_t v) {
    return SimTime(v * 1'000);
  }
  static constexpr SimTime milliseconds(std::int64_t v) {
    return SimTime(v * 1'000'000);
  }
  static constexpr SimTime seconds(std::int64_t v) {
    return SimTime(v * 1'000'000'000);
  }
  static constexpr SimTime max() {
    return SimTime(INT64_MAX);
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  constexpr SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ * k);
  }
  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.ns_ << "ns";
  }

 private:
  std::int64_t ns_ = 0;
};

/// The CTA stamps every logged control message with a LogicalClock value;
/// procedure-completion checkpoints carry the clock of the procedure's last
/// message so replicas and the log agree on where a procedure ends (§4.2.3).
class LogicalClock {
 public:
  using Value = std::uint64_t;

  /// Returns the next strictly-increasing tick.
  Value tick() { return ++last_; }
  [[nodiscard]] Value last() const { return last_; }

 private:
  Value last_ = 0;
};

}  // namespace neutrino
