// Strongly-typed identifiers used across the control plane.
//
// Each identifier is a distinct type so a TEID can never be passed where an
// M-TMSI is expected (CppCoreGuidelines I.4: make interfaces precisely and
// strongly typed).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace neutrino {

/// CRTP-free strong integer wrapper. Tag makes each instantiation unique.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr auto operator<=>(StrongId a, StrongId b) {
    return a.value_ <=> b.value_;
  }
  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_ = 0;
};

/// International Mobile Subscriber Identity (permanent subscriber id).
using Imsi = StrongId<struct ImsiTag>;
/// MME-Temporary Mobile Subscriber Identity; the CTA keys the UE by this
/// when idle. Per §4.3 fn15, the CTA assigns the M-TMSI and the S1AP UE id
/// the same value at initial attach, so one key serves both states.
using Tmsi = StrongId<struct TmsiTag, std::uint32_t>;
/// GTP Tunnel Endpoint Identifier (data-plane session endpoint).
using Teid = StrongId<struct TeidTag, std::uint32_t>;
/// E-RAB (radio access bearer) identity.
using ErabId = StrongId<struct ErabTag, std::uint8_t>;

/// Simulator-scoped node identities.
using NodeId = StrongId<struct NodeTag, std::uint32_t>;
using BsId = StrongId<struct BsTag, std::uint32_t>;
using CtaId = StrongId<struct CtaTag, std::uint32_t>;
using CpfId = StrongId<struct CpfTag, std::uint32_t>;
using UpfId = StrongId<struct UpfTag, std::uint32_t>;
using UeId = StrongId<struct UeTag>;

/// Tracking Area Code: the location-domain granule the core pages within.
using Tac = StrongId<struct TacTag, std::uint16_t>;

}  // namespace neutrino

namespace std {
template <typename Tag, typename Rep>
struct hash<neutrino::StrongId<Tag, Rep>> {
  size_t operator()(neutrino::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
