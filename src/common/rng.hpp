// Deterministic fast RNG (xoshiro256**) for workload generation.
//
// std::mt19937_64 would also do, but xoshiro is faster and its tiny state
// makes per-UE independent streams cheap; determinism across platforms is
// required for reproducible benches.
#pragma once

#include <cmath>
#include <cstdint>

namespace neutrino {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free-in-practice reduction.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean (inter-arrival times).
  double next_exponential(double mean) {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Advance the state by 2^128 steps (xoshiro256** reference polynomial)
  /// without generating the intermediate outputs. Seeding one Rng and
  /// calling jump() once per shard yields streams whose next 2^128 outputs
  /// provably never overlap — the basis for per-shard determinism in the
  /// parallel runtime. The state transition is linear, so jump() commutes
  /// with next_u64() stepping (tested in rng_stream_test).
  void jump() {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    apply_jump(kJump);
  }

  /// Advance by 2^192 steps: separates *groups* of jump()-spaced streams
  /// (e.g. one long_jump per experiment, jumps per shard within it).
  void long_jump() {
    static constexpr std::uint64_t kLongJump[] = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
        0x39109bb02acbe635ULL};
    apply_jump(kLongJump);
  }

 private:
  void apply_jump(const std::uint64_t (&poly)[4]) {
    std::uint64_t s[4] = {};
    for (const std::uint64_t word : poly) {
      for (int b = 0; b < 64; ++b) {
        if (word & (1ULL << b)) {
          s[0] ^= state_[0];
          s[1] ^= state_[1];
          s[2] ^= state_[2];
          s[3] ^= state_[3];
        }
        next_u64();
      }
    }
    state_[0] = s[0];
    state_[1] = s[1];
    state_[2] = s[2];
    state_[3] = s[3];
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace neutrino
