// Deterministic fast RNG (xoshiro256**) for workload generation.
//
// std::mt19937_64 would also do, but xoshiro is faster and its tiny state
// makes per-UE independent streams cheap; determinism across platforms is
// required for reproducible benches.
#pragma once

#include <cmath>
#include <cstdint>

namespace neutrino {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free-in-practice reduction.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean (inter-arrival times).
  double next_exponential(double mean) {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace neutrino
