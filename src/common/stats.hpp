// Streaming statistics used by the benches: Welford mean/variance and an
// exact-percentile sample collector for latency distributions.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace neutrino {

/// Welford's online mean / variance; O(1) memory.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Fold another accumulator in (Chan et al. parallel combine).
  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects samples and answers percentile queries exactly.
///
/// Benches collect at most a few million doubles per experiment point, so
/// exact collection is affordable and avoids sketch error in the plots.
class LatencyRecorder {
 public:
  /// Constant-memory mode for storm-scale benches: only count/mean/min/max
  /// are tracked (Welford), nothing is retained per sample. Percentile
  /// queries are invalid in this mode — summary() reports zeros for them.
  /// Must be selected before the first add().
  void use_streaming_only() {
    assert(samples_.empty());
    streaming_only_ = true;
  }
  [[nodiscard]] bool streaming_only() const { return streaming_only_; }

  void add(double value) {
    if (streaming_only_) {
      stream_.add(value);
      return;
    }
    samples_.push_back(value);
    sorted_ = false;
  }

  void merge(const LatencyRecorder& other) {
    // Merging an empty recorder — either direction — is identity: the
    // sharded join folds shards in sequence, and a shard that crashed (or
    // never recorded) must not flip the survivor's mode or statistics.
    if (other.empty()) return;
    if (empty()) {
      *this = other;  // fresh target adopts the source's mode and data
      return;
    }
    if (other.streaming_only_) {
      if (!streaming_only_) {
        // A populated exact-mode target must not drop its retained
        // samples when adopting constant-memory mode: fold them into the
        // stream first (in sorted order, so the result is independent of
        // insertion/merge order — see mean()).
        sort_if_needed();
        for (const double v : samples_) stream_.add(v);
        samples_.clear();
        sorted_ = true;
        streaming_only_ = true;
      }
      stream_.merge(other.stream_);
      return;
    }
    if (streaming_only_) {
      other.sort_if_needed();
      for (const double v : other.samples_) stream_.add(v);
      return;
    }
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const {
    return streaming_only_ ? static_cast<std::size_t>(stream_.count())
                           : samples_.size();
  }
  [[nodiscard]] bool empty() const { return count() == 0; }

  /// q in [0,1]; linearly interpolated between the two nearest order
  /// statistics (numpy's default "linear" method), so small samples give
  /// smooth percentile curves instead of step functions.
  [[nodiscard]] double percentile(double q) const {
    assert(!streaming_only_);
    assert(!samples_.empty());
    sort_if_needed();
    const double rank = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double p25() const { return percentile(0.25); }
  [[nodiscard]] double p75() const { return percentile(0.75); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] double min() const {
    if (streaming_only_) return stream_.min();
    sort_if_needed();
    return samples_.front();
  }
  [[nodiscard]] double max() const {
    if (streaming_only_) return stream_.max();
    sort_if_needed();
    return samples_.back();
  }
  [[nodiscard]] double mean() const {
    if (streaming_only_) return stream_.mean();
    if (samples_.empty()) return 0.0;
    // Sum in sorted order so the result does not depend on insertion /
    // merge order or on whether a percentile query sorted the vector
    // first — summaries must be bit-identical across shard merges.
    sort_if_needed();
    double sum = 0.0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }

  /// The fixed set of summary statistics every exporter row carries.
  struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double max = 0.0;
  };

  [[nodiscard]] Summary summary() const {
    if (empty()) return {};
    if (streaming_only_) {
      // No order statistics in constant-memory mode; exporters writing a
      // streaming summary should emit only count/mean/max.
      return {count(), mean(), 0.0, 0.0, 0.0, 0.0, max()};
    }
    return {count(),           mean(),           percentile(0.5),
            percentile(0.9),   percentile(0.99), percentile(0.999),
            max()};
  }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  bool streaming_only_ = false;
  OnlineStats stream_;
};

}  // namespace neutrino
