// Open-addressing hash map for the simulator's per-UE lookup tables.
//
// std::unordered_map costs one allocation per node and a pointer chase per
// probe; at millions of UEs those dominate the control-plane hot path. This
// map stores slots contiguously (linear probing, power-of-two capacity,
// max load 7/8) with a separate one-byte control array, so lookups touch
// one cache line of metadata before the slot itself. Deletion uses
// tombstones: erasing never moves surviving elements, which keeps
// erase-during-iteration (CTA log scans, failure sweeps) valid and returns
// the next live slot, mirroring the std::unordered_map idiom the core code
// already uses.
//
// The API is the subset of std::unordered_map the core actually calls —
// find/end, operator[], try_emplace, erase(key), erase(iterator),
// contains, clear, size, range-for — plus an iterator-free `lookup()`
// returning V* for hot paths that don't want iterator plumbing.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hashing.hpp"

namespace neutrino {

/// Default hasher: std::hash then a full-avalanche finalizer. Identity
/// hashes (integers, StrongIds) would alias badly under the power-of-two
/// index mask without the mix.
template <typename K>
struct FlatHash {
  std::size_t operator()(const K& key) const {
    return static_cast<std::size_t>(
        mix64(static_cast<std::uint64_t>(std::hash<K>{}(key))));
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatHashMap {
  enum Ctrl : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };
  using Slot = std::pair<K, V>;

  template <bool Const>
  class Iter {
    using MapPtr = std::conditional_t<Const, const FlatHashMap*, FlatHashMap*>;
    using Ref = std::conditional_t<Const, const Slot&, Slot&>;

   public:
    Iter() = default;
    Iter(MapPtr map, std::size_t idx) : map_(map), idx_(idx) { skip(); }

    Ref operator*() const { return map_->slots_[idx_]; }
    auto* operator->() const { return &map_->slots_[idx_]; }

    Iter& operator++() {
      ++idx_;
      skip();
      return *this;
    }

    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.idx_ != b.idx_;
    }

   private:
    friend class FlatHashMap;
    void skip() {
      while (idx_ < map_->ctrl_.size() && map_->ctrl_[idx_] != kFull) ++idx_;
    }
    MapPtr map_ = nullptr;
    std::size_t idx_ = 0;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return ctrl_.size(); }

  iterator begin() { return {this, 0}; }
  iterator end() { return {this, ctrl_.size()}; }
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, ctrl_.size()}; }

  /// Iterator-free lookup: pointer to the mapped value, or nullptr.
  [[nodiscard]] V* lookup(const K& key) {
    const std::size_t i = find_index(key);
    return i == npos ? nullptr : &slots_[i].second;
  }
  [[nodiscard]] const V* lookup(const K& key) const {
    const std::size_t i = find_index(key);
    return i == npos ? nullptr : &slots_[i].second;
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find_index(key) != npos;
  }

  iterator find(const K& key) {
    const std::size_t i = find_index(key);
    return i == npos ? end() : iterator{this, i};
  }
  const_iterator find(const K& key) const {
    const std::size_t i = find_index(key);
    return i == npos ? end() : const_iterator{this, i};
  }

  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    grow_if_needed();
    const auto [idx, inserted] = insert_slot(key);
    if (inserted) slots_[idx].second = V(std::forward<Args>(args)...);
    return {iterator{this, idx}, inserted};
  }

  V& operator[](const K& key) {
    grow_if_needed();
    return slots_[insert_slot(key).first].second;
  }

  bool erase(const K& key) {
    const std::size_t i = find_index(key);
    if (i == npos) return false;
    erase_at(i);
    return true;
  }

  /// Tombstone the slot; surviving elements never move, so the returned
  /// next-live-slot iterator stays valid (erase-during-iteration).
  iterator erase(iterator it) {
    assert(it.map_ == this && ctrl_[it.idx_] == kFull);
    erase_at(it.idx_);
    ++it.idx_;
    it.skip();
    return it;
  }

  /// Drop all elements but keep the allocation (crash/reset paths cycle
  /// through clear() repeatedly).
  void clear() {
    for (std::size_t i = 0; i < ctrl_.size() && size_ > 0; ++i) {
      if (ctrl_[i] == kFull) {
        slots_[i] = Slot{};
        --size_;
      }
    }
    std::fill(ctrl_.begin(), ctrl_.end(), static_cast<std::uint8_t>(kEmpty));
    size_ = 0;
    used_ = 0;
  }

  /// Diagnostic: longest probe chain over all live keys — the distance
  /// from a key's home slot to where it resides, plus one. Tombstone
  /// buildup shows up here long before the load-factor ceiling trips.
  [[nodiscard]] std::size_t max_probe_length() const {
    std::size_t worst = 0;
    if (ctrl_.empty()) return worst;
    const std::size_t mask = ctrl_.size() - 1;
    for (std::size_t i = 0; i < ctrl_.size(); ++i) {
      if (ctrl_[i] != kFull) continue;
      const std::size_t home = Hash{}(slots_[i].first) & mask;
      worst = std::max(worst, ((i - home) & mask) + 1);
    }
    return worst;
  }

  /// Pre-size so that `n` elements fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = ctrl_.empty() ? kMinCapacity : ctrl_.size();
    while (n * 8 > cap * 7) cap *= 2;
    if (cap > ctrl_.size()) rehash(cap);
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  [[nodiscard]] std::size_t find_index(const K& key) const {
    if (ctrl_.empty()) return npos;
    const std::size_t mask = ctrl_.size() - 1;
    const std::uint8_t* ctrl = ctrl_.data();
    std::size_t i = Hash{}(key)&mask;
    for (;;) {
      // One control-byte load per probe step; the byte array is the only
      // memory touched until the key slot itself is inspected.
      const std::uint8_t c = ctrl[i];
      if (c == kEmpty) return npos;
      if (c == kFull && slots_[i].first == key) return i;
      i = (i + 1) & mask;
    }
  }

  /// Find `key` or claim a slot for it. Returns (index, inserted).
  /// Caller must have ensured spare capacity (grow_if_needed).
  std::pair<std::size_t, bool> insert_slot(const K& key) {
    const std::size_t mask = ctrl_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    std::size_t first_tomb = npos;
    for (;;) {
      const std::uint8_t c = ctrl_[i];
      if (c == kEmpty) {
        const std::size_t dst = first_tomb != npos ? first_tomb : i;
        if (dst == i) ++used_;  // tombstone reuse doesn't raise occupancy
        ctrl_[dst] = kFull;
        slots_[dst].first = key;
        ++size_;
        return {dst, true};
      }
      if (c == kFull && slots_[i].first == key) return {i, false};
      if (c == kTomb && first_tomb == npos) first_tomb = i;
      i = (i + 1) & mask;
    }
  }

  void erase_at(std::size_t i) {
    slots_[i] = Slot{};  // release held resources (shared_ptrs, tasks)
    --size_;
    const std::size_t mask = ctrl_.size() - 1;
    if (ctrl_[(i + 1) & mask] != kEmpty) {
      // A probe chain may continue past this slot: the tombstone must
      // stay as a bridge.
      ctrl_[i] = kTomb;
      return;
    }
    // No probe chain extends past this slot, so neither it nor the run of
    // tombstones ending at it can be mid-chain: reclaim them. Without
    // this, erase/insert churn at a steady working set keeps growing
    // `used_` (every erase leaves a tombstone, every insert of a new key
    // may claim a fresh slot) until grow_if_needed rehashes — probe
    // chains lengthen toward the load-factor ceiling in between.
    std::size_t j = i;
    do {
      ctrl_[j] = kEmpty;
      --used_;
      j = (j + ctrl_.size() - 1) & mask;
    } while (ctrl_[j] == kTomb);
  }

  void grow_if_needed() {
    if (ctrl_.empty()) {
      rehash(kMinCapacity);
    } else if ((used_ + 1) * 8 > ctrl_.size() * 7) {
      // Rehash drops tombstones; double only when live elements actually
      // need the room, otherwise same-size to purge tombstone buildup.
      rehash(size_ * 8 > ctrl_.size() * 4 ? ctrl_.size() * 2 : ctrl_.size());
    }
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint8_t> old_ctrl(new_cap, kEmpty);
    std::vector<Slot> old_slots(new_cap);
    old_ctrl.swap(ctrl_);
    old_slots.swap(slots_);
    size_ = 0;
    used_ = 0;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      const auto [idx, inserted] = insert_slot(old_slots[i].first);
      assert(inserted);
      slots_[idx].second = std::move(old_slots[i].second);
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;  // live elements
  std::size_t used_ = 0;  // live + tombstoned (probe-chain occupancy)
};

}  // namespace neutrino
