// Byte-buffer aliases and small helpers shared by every wire codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace neutrino {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using BytesView = std::span<const Byte>;
using MutableBytesView = std::span<Byte>;

/// Render a buffer as lowercase hex, for diagnostics and golden tests.
inline std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (Byte b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace neutrino
