// Bump-pointer arena for window-scoped scratch (DESIGN.md §16).
//
// The sharded runtime's window boundaries produce short-lived batches —
// cross-shard envelopes gathered from SPSC rings, per-window bookkeeping —
// whose lifetimes all end when the boundary completes. A bump allocator
// fits exactly: allocation is a pointer increment into a reused chunk,
// and reset() rewinds everything at once instead of churning the global
// allocator once per window (300k windows in the scale storm).
//
// Lifetime rules (enforced by convention, documented in DESIGN.md §16):
//   * every pointer obtained between two reset() calls dies at the next
//     reset() — no cross-window pointers, ever;
//   * alloc_uninit<T>() returns *raw* storage: the caller placement-news
//     and destroys; the arena never runs constructors or destructors;
//   * not thread-safe — window boundaries are coordinator-only territory.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace neutrino {

class Arena {
 public:
  /// `chunk_bytes` is the size of the first chunk; later chunks double so
  /// a mis-sized initial guess costs O(log) allocations, not O(windows).
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : next_chunk_bytes_(chunk_bytes == 0 ? 64 * 1024 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Raw storage, aligned to `align` — a power of two up to
  /// alignof(max_align_t); chunks come from operator new[], so their base
  /// address honors exactly that bound.
  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    assert(align != 0 && (align & (align - 1)) == 0);
    assert(align <= alignof(std::max_align_t));
    const std::size_t aligned =
        (offset_ + (align - 1)) & ~(align - 1);
    if (cur_ < chunks_.size() && aligned + bytes <= chunks_[cur_].size) {
      offset_ = aligned + bytes;
      bytes_served_ += bytes;
      return chunks_[cur_].data.get() + aligned;
    }
    return alloc_slow(bytes, align);
  }

  /// Uninitialized storage for `n` objects of T. The caller owns
  /// construction and destruction; the arena only owns the bytes.
  template <class T>
  [[nodiscard]] T* alloc_uninit(std::size_t n) {
    return static_cast<T*>(alloc_bytes(n * sizeof(T), alignof(T)));
  }

  /// Rewind: every outstanding pointer is dead, all chunks are retained
  /// for reuse. O(1) — this runs once per conservative window.
  void reset() {
    cur_ = 0;
    offset_ = 0;
    bytes_served_ = 0;
  }

  /// Bytes handed out since the last reset() (stats hook).
  [[nodiscard]] std::size_t bytes_allocated() const { return bytes_served_; }
  /// Total bytes held across chunks (high-water footprint).
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* alloc_slow(std::size_t bytes, std::size_t align) {
    // Advance to the next retained chunk that fits, or mint a new one
    // (doubling) at the end. Skipped chunk tails are wasted until reset —
    // acceptable: chunks double, so waste is bounded by half.
    while (cur_ + 1 < chunks_.size()) {
      ++cur_;
      offset_ = 0;
      const std::size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
      if (aligned + bytes <= chunks_[cur_].size) {
        offset_ = aligned + bytes;
        bytes_served_ += bytes;
        return chunks_[cur_].data.get() + aligned;
      }
    }
    std::size_t size = chunks_.empty() ? next_chunk_bytes_
                                       : chunks_.back().size * 2;
    while (size < bytes) size *= 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    cur_ = chunks_.size() - 1;
    offset_ = bytes;
    bytes_served_ += bytes;
    return chunks_[cur_].data.get();
  }

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;     // chunk currently bumped into
  std::size_t offset_ = 0;  // bump cursor within chunks_[cur_]
  std::size_t bytes_served_ = 0;
  std::size_t next_chunk_bytes_;
};

}  // namespace neutrino
