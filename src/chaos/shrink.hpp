// Schedule shrinker: delta-debugging over a failing schedule's event
// list.
//
// Given a schedule whose run violates an invariant, repeatedly try to
// delete chunks of events (halving the chunk size down to single events)
// and keep any deletion that still fails. The result is a (1-)minimal
// reproducer: removing any single remaining event makes the failure
// disappear. The predicate re-runs the whole simulation, so shrinking is
// bounded by `max_runs` predicate evaluations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

#include "chaos/schedule.hpp"

namespace neutrino::chaos {

struct ShrinkStats {
  std::size_t runs = 0;      // predicate evaluations spent
  std::size_t removed = 0;   // events deleted from the original
};

/// `fails(const Schedule&) -> bool` must be deterministic and return true
/// for `s` itself (the caller verifies that before shrinking).
template <class Fails>
Schedule shrink_schedule(Schedule s, Fails&& fails, std::size_t max_runs = 400,
                         ShrinkStats* stats = nullptr) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  std::size_t chunk = std::max<std::size_t>(1, s.events.size() / 2);
  for (;;) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < s.events.size() && st.runs < max_runs;) {
      Schedule trial = s;
      const std::size_t end = std::min(start + chunk, trial.events.size());
      trial.events.erase(trial.events.begin() + static_cast<std::ptrdiff_t>(start),
                         trial.events.begin() + static_cast<std::ptrdiff_t>(end));
      ++st.runs;
      if (!trial.events.empty() && fails(trial)) {
        st.removed += end - start;
        s = std::move(trial);
        removed_any = true;
        // Don't advance: the next chunk shifted into this position.
      } else {
        start += chunk;
      }
    }
    if (st.runs >= max_runs) break;
    if (chunk == 1) {
      if (!removed_any) break;  // 1-minimal: no single event removable
    } else {
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }
  return s;
}

}  // namespace neutrino::chaos
