// Minimal recursive-descent JSON reader for chaos reproducer artifacts.
//
// obs::Json is deliberately build-only (reports are write-once); replaying
// a shrunken failure schedule needs the other direction. This parser
// covers exactly the JSON the schedule dumper emits — objects, arrays,
// strings with the dumper's escapes, numbers, booleans, null — and keeps
// integers exact (64-bit) so nanosecond timestamps round-trip.
#pragma once

#include <cctype>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace neutrino::chaos {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;
  bool is_integer = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] std::int64_t int_or(std::int64_t fallback) const {
    if (type != Type::kNumber) return fallback;
    return is_integer ? integer : static_cast<std::int64_t>(number);
  }
  [[nodiscard]] double number_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
  [[nodiscard]] std::string_view string_or(std::string_view fallback) const {
    return type == Type::kString ? std::string_view{string} : fallback;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    std::optional<JsonValue> v = value();
    skip_ws();
    if (!v || pos_ != text_.size()) return std::nullopt;  // trailing junk
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!literal("true")) return std::nullopt;
        return make_bool(true);
      case 'f':
        if (!literal("false")) return std::nullopt;
        return make_bool(false);
      case 'n':
        if (!literal("null")) return std::nullopt;
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = b;
    return v;
  }

  std::optional<JsonValue> object() {
    if (!consume('{')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::optional<std::string> key = raw_string();
      if (!key || !consume(':')) return std::nullopt;
      std::optional<JsonValue> member = value();
      if (!member) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*member));
      if (consume(',')) continue;
      if (consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> array() {
    if (!consume('[')) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (consume(']')) return v;
    for (;;) {
      std::optional<JsonValue> elem = value();
      if (!elem) return std::nullopt;
      v.array.push_back(std::move(*elem));
      if (consume(',')) continue;
      if (consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> string_value() {
    std::optional<std::string> s = raw_string();
    if (!s) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.string = std::move(*s);
    return v;
  }

  std::optional<std::string> raw_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // The dumper only emits \u00XX control escapes; decode the
          // low byte and reject anything beyond Latin-1.
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          if (code > 0xff) return std::nullopt;
          out += static_cast<char>(code);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return std::nullopt;
    const std::string token{text_.substr(start, pos_ - start)};
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      if (!fractional) {
        v.integer = std::stoll(token);
        v.is_integer = true;
        v.number = static_cast<double>(v.integer);
      } else {
        v.number = std::stod(token);
      }
    } catch (...) {
      return std::nullopt;
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse a complete JSON document; nullopt on any syntax error.
inline std::optional<JsonValue> parse_json(std::string_view text) {
  return detail::JsonParser{text}.parse();
}

}  // namespace neutrino::chaos
