// Chaos schedule runner: executes one Schedule against either the legacy
// single-threaded System or a ShardedSystem, with an InvariantChecker
// riding along, and folds the run into a RunOutcome (violations,
// recovery-outcome histogram, lost UEs, quiescence).
//
// The same Schedule must produce the same protocol behavior on every
// runtime configuration; the campaign exploits that by running each seed
// on legacy, 1-shard and multi-shard runtimes and comparing outcomes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/checker.hpp"
#include "chaos/schedule.hpp"
#include "core/cost_model.hpp"
#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "core/sharded_system.hpp"
#include "core/system.hpp"
#include "core/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/event_loop.hpp"

namespace neutrino::chaos {

struct RunConfig {
  /// false → legacy System (no runtime layer at all); true → ShardedSystem
  /// with `shards` × `threads` (1×1 is the runtime-layer determinism
  /// reference).
  bool use_sharded = false;
  std::uint32_t shards = 1;
  std::uint32_t threads = 1;
  /// Per-destination adaptive windows (core::ShardedSystem::Config).
  /// Deterministic for a fixed shard count, but the schedule change can
  /// reorder exact-nanosecond ties vs the legacy loop — only the
  /// adaptive-determinism tests (thread-count sweeps) enable it; the
  /// legacy-equivalence corpus replays stay on static windows.
  bool adaptive_lookahead = false;
  std::size_t drain_batch = 64;
  core::FaultInjection faults;
  SimTime audit_interval = SimTime::milliseconds(50);
  /// Ride a flight recorder along (one per shard) and put the merged dump
  /// in RunOutcome::flight_json. The campaign arms this so an invariant
  /// violation ships the last-events timeline next to the repro artifact.
  bool record_flight = false;
  std::size_t flight_capacity = 256;
};

struct RunOutcome {
  std::uint64_t violation_count = 0;
  std::vector<std::string> violations;  // capped per checker
  /// All loops fully drained at the horizon (pool conservation was
  /// checkable). Reported, not a violation by itself.
  bool quiesced = true;
  std::uint64_t lost = 0;  // UEs still mid-procedure at the horizon
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  /// The frontend's own RYW counter — must agree with the checker.
  std::uint64_t ryw_metric = 0;
  // Overload-control accounting (zero unless the schedule has kOverload
  // events, which arm bounded queues + NAS retransmission).
  std::uint64_t attach_sheds = 0;
  std::uint64_t overload_drops = 0;
  std::uint64_t nas_retransmissions = 0;
  std::uint64_t retx_exhausted = 0;
  /// FastHandover path split (§4.3): arrivals served from the local
  /// replica vs arrivals that had to park in pending_handover_ and fetch
  /// state (the slow path the crash-collision regressions aim at).
  std::uint64_t fast_handovers = 0;
  std::uint64_t state_fetches = 0;
  /// Fig. 5 recovery-outcome histogram: scenario label → count
  /// ("failover" / "replay" / "reattach" / "hole").
  std::map<std::string, std::uint64_t> recoveries;
  /// Merged flight-recorder dump (obs::merge_flight JSON); empty unless
  /// RunConfig::record_flight. Deterministic for a fixed shard count.
  std::string flight_json;
  /// Events retained across all recorders (ring size bounds this).
  std::uint64_t flight_events = 0;
};

/// Topology slice a Schedule runs on: one level-2 region so every
/// inter-region link is the 400µs intra-l2 class (which also keeps the
/// sharded lookahead large).
inline core::TopologyConfig make_topology(const Schedule& s) {
  core::TopologyConfig topo;
  topo.l2_regions = 1;
  topo.l1_per_l2 = static_cast<int>(s.regions);
  topo.cpfs_per_region = static_cast<int>(s.cpfs_per_region);
  return topo;
}

/// Campaign protocol knobs: paper semantics, shortened timers so a 3s
/// window exercises ACK-timeout pruning, fetch give-ups and idle
/// releases many times over, and the drain tail actually quiesces.
inline core::ProtocolConfig chaos_proto() {
  core::ProtocolConfig proto;
  proto.ack_timeout = SimTime::milliseconds(500);
  proto.log_scan_interval = SimTime::milliseconds(100);
  proto.ho_coverage_grace = SimTime::milliseconds(200);
  proto.fetch_timeout = SimTime::milliseconds(300);
  return proto;
}

/// A schedule containing kOverload events runs with the overload-control
/// machinery armed (DESIGN.md §13): queues small enough that a one-region
/// storm (ues/regions simultaneous procedures) overflows them, plus NAS
/// retransmission to re-drive the shed work. Knob values live here, not in
/// the artifact, so a repro JSON stays a pure schedule.
inline bool schedule_has_overload(const Schedule& s) {
  return std::any_of(s.events.begin(), s.events.end(), [](const Event& e) {
    return e.kind == EventKind::kOverload;
  });
}

inline core::ProtocolConfig overload_proto() {
  core::ProtocolConfig proto = chaos_proto();
  proto.cta_queue_capacity = 4;
  proto.cpf_queue_capacity = 4;
  proto.attach_admission_fraction = 0.5;
  proto.nas_retx_timeout = SimTime::milliseconds(10);
  proto.nas_retx_budget = 4;
  return proto;
}

namespace detail {

inline void apply_ue_event(core::System& system, const Event& e,
                           std::uint32_t ues, std::uint32_t regions) {
  switch (e.kind) {
    case EventKind::kProcedure:
      system.frontend().start_procedure(UeId(e.ue), e.proc, e.target_region);
      break;
    case EventKind::kIdleMove:
      system.frontend().idle_move(UeId(e.ue), e.target_region);
      system.frontend().start_procedure(UeId(e.ue), core::ProcedureType::kTau,
                                        e.target_region);
      break;
    case EventKind::kTriggerDownlink:
      system.trigger_downlink(UeId(e.ue));
      break;
    case EventKind::kOverload:
      // Signaling storm: every idle UE homed in the stormed region fires
      // at once, in UE order (deterministic on every runtime — the whole
      // population lives on the region's home shard).
      for (std::uint64_t u = e.region; u < ues; u += regions) {
        const UeId ue{u};
        if (system.frontend().in_flight(ue)) continue;
        system.frontend().start_procedure(
            ue, system.frontend().is_attached(ue)
                    ? core::ProcedureType::kServiceRequest
                    : core::ProcedureType::kAttach);
      }
      break;
    default:
      break;  // failure injections are routed separately
  }
}

/// Periodic audits stop shortly after the last scheduled event plus the
/// longest protocol timer, so the audit chain never outlives the drain.
inline SimTime audit_until(const Schedule& s, const core::ProtocolConfig& p) {
  SimTime last;
  for (const Event& e : s.events) last = std::max(last, e.at);
  const SimTime tail = p.ack_timeout + p.ack_timeout;
  return std::min(last + tail, s.horizon);
}

inline void harvest(const core::Metrics& metrics, RunOutcome& out) {
  out.started += metrics.procedures_started;
  out.completed += metrics.procedures_completed;
  out.ryw_metric += metrics.ryw_violations;
  out.fast_handovers += metrics.fast_handovers;
  out.state_fetches += metrics.state_fetches;
  out.attach_sheds += metrics.attach_sheds;
  out.overload_drops += metrics.overload_drops;
  out.nas_retransmissions += metrics.nas_retransmissions;
  out.retx_exhausted += metrics.retx_exhausted;
  metrics.registry.for_each_counter(
      [&out](const std::string& key, const obs::Counter& c) {
        constexpr std::string_view kPrefix = "cta.recoveries{";
        if (key.rfind(kPrefix.data(), 0) != 0) return;
        const std::size_t tag = key.find("scenario=");
        if (tag == std::string::npos) return;
        const std::size_t begin = tag + 9;
        std::size_t end = key.find_first_of(",}", begin);
        if (end == std::string::npos) end = key.size();
        out.recoveries[key.substr(begin, end - begin)] += c.value();
      });
}

inline void harvest_checker(const InvariantChecker& checker, RunOutcome& out) {
  out.violation_count += checker.violation_count();
  for (const std::string& v : checker.violations()) {
    if (out.violations.size() < 64) out.violations.push_back(v);
  }
  out.quiesced = out.quiesced && checker.quiesced();
}

}  // namespace detail

inline RunOutcome run_schedule(const Schedule& s, const RunConfig& rc,
                               const core::CostModel& costs) {
  const core::CorePolicy policy = core::neutrino_policy();
  const core::TopologyConfig topo = make_topology(s);
  const core::ProtocolConfig proto =
      schedule_has_overload(s) ? overload_proto() : chaos_proto();
  const SimTime until = detail::audit_until(s, proto);
  RunOutcome out;

  if (!rc.use_sharded) {
    sim::EventLoop loop;
    core::Metrics metrics;
    core::System system(loop, policy, topo, proto, costs, metrics);
    system.faults() = rc.faults;
    obs::FlightRecorder flight(rc.flight_capacity);
    if (rc.record_flight) system.attach_flight_recorder(flight);
    InvariantChecker checker(system, rc.audit_interval, until);
    checker.arm();
    for (std::uint32_t u = 0; u < s.ues; ++u) {
      const UeId ue{u};
      system.frontend().preattach(ue, u % s.regions);
      checker.note_preattach(ue);
    }
    for (const Event& e : s.events) {
      loop.schedule_at(e.at, [&system, e, ues = s.ues, regions = s.regions] {
        switch (e.kind) {
          case EventKind::kCrashCpf: system.crash_cpf(CpfId(e.cpf)); break;
          case EventKind::kRestoreCpf: system.restore_cpf(CpfId(e.cpf)); break;
          case EventKind::kCrashCta: system.crash_cta(e.region); break;
          default: detail::apply_ue_event(system, e, ues, regions); break;
        }
      });
    }
    loop.run_until(s.horizon);
    checker.final_check();
    detail::harvest_checker(checker, out);
    detail::harvest(metrics, out);
    for (std::uint32_t u = 0; u < s.ues; ++u) {
      if (system.frontend().in_flight(UeId{u})) ++out.lost;
    }
    system.detach_invariant_observer();
    if (rc.record_flight) {
      out.flight_events = flight.size();
      out.flight_json = obs::FlightRecorder::merge_flight({&flight}).dump(2);
    }
    return out;
  }

  core::ShardedSystem::Config scfg;
  scfg.policy = policy;
  scfg.topo = topo;
  scfg.proto = proto;
  scfg.shards = rc.shards;
  scfg.threads = rc.threads;
  scfg.adaptive_lookahead = rc.adaptive_lookahead;
  scfg.drain_batch = rc.drain_batch;
  core::ShardedSystem sys(scfg, costs);
  std::vector<obs::FlightRecorder> flights;
  if (rc.record_flight) {
    flights.reserve(rc.shards);
    for (std::uint32_t i = 0; i < rc.shards; ++i) {
      flights.emplace_back(rc.flight_capacity);
      sys.attach_flight_recorder(i, flights.back());
    }
  }
  std::vector<std::unique_ptr<InvariantChecker>> checkers;
  checkers.reserve(rc.shards);
  for (std::uint32_t i = 0; i < rc.shards; ++i) {
    checkers.push_back(std::make_unique<InvariantChecker>(
        sys.system(i), rc.audit_interval, until));
    checkers.back()->arm();
    sys.system(i).faults() = rc.faults;
  }
  for (std::uint32_t u = 0; u < s.ues; ++u) {
    const UeId ue{u};
    sys.preattach(ue, u % s.regions);
    checkers[sys.shard_of_ue(ue)]->note_preattach(ue);
  }
  for (const Event& e : s.events) {
    switch (e.kind) {
      case EventKind::kCrashCpf:
        sys.schedule_crash(e.at, CpfId(e.cpf));
        break;
      case EventKind::kRestoreCpf:
        sys.schedule_restore(e.at, CpfId(e.cpf));
        break;
      case EventKind::kCrashCta:
        sys.schedule_cta_crash(e.at, e.region);
        break;
      default: {
        core::System& home = sys.system(sys.shard_of_ue(UeId(e.ue)));
        home.loop().schedule_at(
            e.at, [&home, e, ues = s.ues, regions = s.regions] {
              detail::apply_ue_event(home, e, ues, regions);
            });
        break;
      }
    }
  }
  sys.run_until(s.horizon);
  for (auto& checker : checkers) {
    checker->final_check();
    detail::harvest_checker(*checker, out);
  }
  const core::Metrics merged = sys.merged_metrics();
  detail::harvest(merged, out);
  for (std::uint32_t u = 0; u < s.ues; ++u) {
    const UeId ue{u};
    if (sys.system(sys.shard_of_ue(ue)).frontend().in_flight(ue)) ++out.lost;
  }
  for (std::uint32_t i = 0; i < rc.shards; ++i) {
    sys.system(i).detach_invariant_observer();
  }
  if (rc.record_flight) {
    std::vector<const obs::FlightRecorder*> ptrs;
    ptrs.reserve(flights.size());
    for (const obs::FlightRecorder& f : flights) {
      out.flight_events += f.size();
      ptrs.push_back(&f);
    }
    out.flight_json = obs::FlightRecorder::merge_flight(ptrs).dump(2);
  }
  return out;
}

}  // namespace neutrino::chaos
