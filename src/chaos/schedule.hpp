// Chaos schedule grammar: the replayable unit of a chaos campaign run.
//
// A Schedule is a sorted list of timestamped events over a fixed topology
// slice (regions × cpfs_per_region, a preattached UE population): UE
// workload (procedures, idle moves, downlink triggers) interleaved with
// failure injections (CPF crash/restore, CTA crash). The same Schedule
// drives the legacy System and any ShardedRuntime configuration, which is
// what makes cross-runtime differential checks and shrinking possible.
//
// Serialization: schema "neutrino.chaos-repro" v1, dumped via obs::Json
// and read back with the chaos JsonValue parser, so a failing seed's
// shrunken reproducer is a self-contained artifact:
//
//   { "schema": "neutrino.chaos-repro", "version": 1,
//     "seed": 7, "regions": 4, "cpfs_per_region": 5, "ues": 24,
//     "horizon_ns": 8000000000,
//     "faults": {"cpf_stale_serves": 0, "cta_unaccounted_prunes": 0},
//     "events": [ {"at_ns": 12000, "kind": "procedure", "ue": 3,
//                  "proc": "service_request", "target": 0}, ... ] }
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/json_reader.hpp"
#include "common/clock.hpp"
#include "common/ids.hpp"
#include "core/invariants.hpp"
#include "core/msg.hpp"
#include "obs/json.hpp"

namespace neutrino::chaos {

enum class EventKind : std::uint8_t {
  kProcedure,        // frontend().start_procedure(ue, proc, target)
  kIdleMove,         // frontend().idle_move(ue, target) + a TAU
  kTriggerDownlink,  // network-originated data for an idle UE (paging)
  kCrashCpf,         // crash_cpf (notifying: CTAs learn immediately)
  kRestoreCpf,       // restore_cpf (empty store, bumped epoch)
  kCrashCta,         // crash_cta: permanent, UEs reroute to (r+1)%regions
  kOverload,         // signaling storm: every idle UE homed in `region`
                     // issues a procedure at once (attached -> service
                     // request, detached -> attach). Presence of this kind
                     // switches the run onto bounded queues + NAS
                     // retransmission (see overload_proto in runner.hpp),
                     // so the schedule exercises shed/retry/reattach and
                     // crash-during-retransmit interleavings.
};

constexpr std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kProcedure: return "procedure";
    case EventKind::kIdleMove: return "idle_move";
    case EventKind::kTriggerDownlink: return "downlink";
    case EventKind::kCrashCpf: return "crash_cpf";
    case EventKind::kRestoreCpf: return "restore_cpf";
    case EventKind::kCrashCta: return "crash_cta";
    case EventKind::kOverload: return "overload";
  }
  return "?";
}

inline std::optional<EventKind> parse_event_kind(std::string_view s) {
  for (const EventKind k :
       {EventKind::kProcedure, EventKind::kIdleMove, EventKind::kTriggerDownlink,
        EventKind::kCrashCpf, EventKind::kRestoreCpf, EventKind::kCrashCta,
        EventKind::kOverload}) {
    if (s == to_string(k)) return k;
  }
  return std::nullopt;
}

inline std::optional<core::ProcedureType> parse_procedure_type(
    std::string_view s) {
  using core::ProcedureType;
  for (const ProcedureType p :
       {ProcedureType::kAttach, ProcedureType::kServiceRequest,
        ProcedureType::kHandover, ProcedureType::kIntraHandover,
        ProcedureType::kReattach, ProcedureType::kDetach, ProcedureType::kTau}) {
    if (s == core::to_string(p)) return p;
  }
  return std::nullopt;
}

/// One timestamped action. Field use depends on `kind`:
///   kProcedure       — ue, proc, target_region (handover destination)
///   kIdleMove        — ue, target_region (new serving region, then TAU)
///   kTriggerDownlink — ue
///   kCrashCpf / kRestoreCpf — cpf
///   kCrashCta        — region
///   kOverload        — region (stormed region); ue mirrors it so the
///                      sharded runner routes the event to that region's
///                      home shard
struct Event {
  SimTime at;
  EventKind kind = EventKind::kProcedure;
  std::uint64_t ue = 0;
  core::ProcedureType proc = core::ProcedureType::kServiceRequest;
  std::uint32_t target_region = 0;
  std::uint32_t cpf = 0;
  std::uint32_t region = 0;
};

struct Schedule {
  std::uint64_t seed = 0;
  std::uint32_t regions = 4;
  std::uint32_t cpfs_per_region = 5;
  std::uint32_t ues = 24;
  /// Run the loops to here; generous drain past the last event so every
  /// timeout fires and the pool-conservation audit is meaningful.
  SimTime horizon = SimTime::seconds(8);
  std::vector<Event> events;
};

/// A schedule plus the deliberate-bug knobs active when it failed — the
/// complete recipe for reproducing a run.
struct ScheduleArtifact {
  Schedule schedule;
  core::FaultInjection faults;
};

inline obs::Json to_json(const Event& e) {
  obs::Json j;
  j["at_ns"] = static_cast<std::int64_t>(e.at.ns());
  j["kind"] = to_string(e.kind);
  switch (e.kind) {
    case EventKind::kProcedure:
      j["ue"] = e.ue;
      j["proc"] = core::to_string(e.proc);
      j["target"] = e.target_region;
      break;
    case EventKind::kIdleMove:
      j["ue"] = e.ue;
      j["target"] = e.target_region;
      break;
    case EventKind::kTriggerDownlink:
      j["ue"] = e.ue;
      break;
    case EventKind::kCrashCpf:
    case EventKind::kRestoreCpf:
      j["cpf"] = e.cpf;
      break;
    case EventKind::kCrashCta:
      j["region"] = e.region;
      break;
    case EventKind::kOverload:
      j["region"] = e.region;
      j["ue"] = e.ue;
      break;
  }
  return j;
}

inline obs::Json to_json(const ScheduleArtifact& art) {
  const Schedule& s = art.schedule;
  obs::Json j;
  j["schema"] = "neutrino.chaos-repro";
  j["version"] = 1;
  j["seed"] = s.seed;
  j["regions"] = s.regions;
  j["cpfs_per_region"] = s.cpfs_per_region;
  j["ues"] = s.ues;
  j["horizon_ns"] = static_cast<std::int64_t>(s.horizon.ns());
  j["faults"]["cpf_stale_serves"] = art.faults.cpf_stale_serves;
  j["faults"]["cta_unaccounted_prunes"] = art.faults.cta_unaccounted_prunes;
  obs::Json& events = j["events"];
  events.make_array();
  for (const Event& e : s.events) events.push_back(to_json(e));
  return j;
}

inline std::optional<Event> event_from_json(const JsonValue& j) {
  const JsonValue* kind = j.find("kind");
  const JsonValue* at = j.find("at_ns");
  if (!kind || !at) return std::nullopt;
  const std::optional<EventKind> k = parse_event_kind(kind->string_or(""));
  if (!k) return std::nullopt;
  Event e;
  e.at = SimTime::nanoseconds(at->int_or(0));
  e.kind = *k;
  if (const JsonValue* v = j.find("ue")) {
    e.ue = static_cast<std::uint64_t>(v->int_or(0));
  }
  if (const JsonValue* v = j.find("target")) {
    e.target_region = static_cast<std::uint32_t>(v->int_or(0));
  }
  if (const JsonValue* v = j.find("cpf")) {
    e.cpf = static_cast<std::uint32_t>(v->int_or(0));
  }
  if (const JsonValue* v = j.find("region")) {
    e.region = static_cast<std::uint32_t>(v->int_or(0));
  }
  if (e.kind == EventKind::kProcedure) {
    const JsonValue* proc = j.find("proc");
    if (!proc) return std::nullopt;
    const std::optional<core::ProcedureType> p =
        parse_procedure_type(proc->string_or(""));
    if (!p) return std::nullopt;
    e.proc = *p;
  }
  return e;
}

inline std::optional<ScheduleArtifact> artifact_from_json(const JsonValue& j) {
  const JsonValue* schema = j.find("schema");
  if (!schema || schema->string_or("") != "neutrino.chaos-repro") {
    return std::nullopt;
  }
  ScheduleArtifact art;
  Schedule& s = art.schedule;
  if (const JsonValue* v = j.find("seed")) {
    s.seed = static_cast<std::uint64_t>(v->int_or(0));
  }
  if (const JsonValue* v = j.find("regions")) {
    s.regions = static_cast<std::uint32_t>(v->int_or(s.regions));
  }
  if (const JsonValue* v = j.find("cpfs_per_region")) {
    s.cpfs_per_region = static_cast<std::uint32_t>(v->int_or(s.cpfs_per_region));
  }
  if (const JsonValue* v = j.find("ues")) {
    s.ues = static_cast<std::uint32_t>(v->int_or(s.ues));
  }
  if (const JsonValue* v = j.find("horizon_ns")) {
    s.horizon = SimTime::nanoseconds(v->int_or(s.horizon.ns()));
  }
  if (const JsonValue* faults = j.find("faults")) {
    if (const JsonValue* v = faults->find("cpf_stale_serves")) {
      art.faults.cpf_stale_serves = static_cast<std::uint32_t>(v->int_or(0));
    }
    if (const JsonValue* v = faults->find("cta_unaccounted_prunes")) {
      art.faults.cta_unaccounted_prunes =
          static_cast<std::uint32_t>(v->int_or(0));
    }
  }
  const JsonValue* events = j.find("events");
  if (!events || events->type != JsonValue::Type::kArray) return std::nullopt;
  s.events.reserve(events->array.size());
  for (const JsonValue& ej : events->array) {
    std::optional<Event> e = event_from_json(ej);
    if (!e) return std::nullopt;
    s.events.push_back(*e);
  }
  return art;
}

inline std::optional<ScheduleArtifact> artifact_from_string(
    std::string_view text) {
  const std::optional<JsonValue> doc = parse_json(text);
  if (!doc) return std::nullopt;
  return artifact_from_json(*doc);
}

}  // namespace neutrino::chaos
