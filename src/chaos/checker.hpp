// Online invariant checker: a sim observer that rides along with a chaos
// run and independently re-derives the properties the protocol is
// supposed to preserve across failures.
//
// Checked invariants:
//  * Read-your-Writes (§4.2.1): every read-carrying final response must
//    serve state reflecting all procedures this UE completed. The checker
//    keeps its own per-UE watermark (advanced only by completion events),
//    so it does not trust the frontend's bookkeeping it is auditing.
//  * Completion monotonicity: per-UE procedure sequence numbers complete
//    strictly increasing — a repeat means a procedure completed twice
//    (e.g. once live and once from a replayed log).
//  * CTA log well-formedness (audited periodically and at the end, via
//    Cta::audit_log_invariants): no un-pruned entries below the pruning
//    watermark, no fully-ACKed retained procedures, byte/message
//    accounting matches the live log.
//  * Msg pool conservation: once the loop fully drains, every pooled Msg
//    must be back on the free list — a leak means some crash/recovery
//    path dropped an in-flight handle.
//
// One checker per System instance: under the sharded runtime each shard
// gets its own (UEs partition by home shard, and observer callbacks must
// stay on the owning shard's thread).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/system.hpp"

namespace neutrino::chaos {

class InvariantChecker final : public core::InvariantObserver {
 public:
  /// Audit CTA logs every `interval` until `audit_until` (bounded so the
  /// self-rescheduling audit event cannot keep the loop alive forever).
  InvariantChecker(core::System& system, SimTime interval, SimTime audit_until)
      : system_(&system), interval_(interval), until_(audit_until) {}

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Attach to the system and start the periodic audit. Call before the
  /// run; the checker must outlive it.
  void arm() {
    system_->attach_invariant_observer(*this);
    schedule_audit();
  }

  /// Seed the RYW watermark for a preattached UE (preattach_context sets
  /// last_completed_seq = 1 without a completion event).
  void note_preattach(UeId ue) { watermark_[ue.value()] = 1; }

  void on_final_response(UeId ue, core::ProcedureType type,
                         std::uint64_t served_proc) override {
    // Attach and Re-Attach rebuild state from scratch — they are the
    // baseline-resetting writes, not reads (same rule as check_ryw).
    if (type == core::ProcedureType::kAttach ||
        type == core::ProcedureType::kReattach) {
      return;
    }
    const auto it = watermark_.find(ue.value());
    if (it == watermark_.end()) return;  // no baseline for this UE
    if (served_proc != it->second) {
      record("ryw: ue=" + std::to_string(ue.value()) +
             " served_proc=" + std::to_string(served_proc) +
             " expected=" + std::to_string(it->second) + " (" +
             std::string{core::to_string(type)} + ")",
             "ryw", static_cast<std::int64_t>(ue.value()));
    }
  }

  void on_procedure_complete(UeId ue, std::uint64_t proc_seq,
                             core::ProcedureType /*type*/) override {
    std::uint64_t& last = completed_[ue.value()];
    if (proc_seq <= last) {
      record("double completion: ue=" + std::to_string(ue.value()) +
             " seq=" + std::to_string(proc_seq) +
             " already completed through " + std::to_string(last),
             "double_completion", static_cast<std::int64_t>(ue.value()));
    } else {
      last = proc_seq;
    }
    watermark_[ue.value()] = proc_seq;
  }

  /// Post-run audit: final CTA log scan, plus pool conservation when the
  /// loop actually drained (pending timers legitimately hold no pooled
  /// messages, but an undelivered in-flight message does).
  void final_check() {
    audit_ctas();
    quiesced_ = system_->loop().empty();
    if (quiesced_ && system_->msg_pool().outstanding() != 0) {
      record("msg pool conservation: " +
             std::to_string(system_->msg_pool().outstanding()) +
             " pooled messages never returned after drain",
             "msg_pool");
    }
  }

  [[nodiscard]] std::uint64_t violation_count() const { return count_; }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return descriptions_;
  }
  [[nodiscard]] bool quiesced() const { return quiesced_; }

 private:
  static constexpr std::size_t kMaxDescriptions = 32;

  void schedule_audit() {
    if (system_->loop().now() >= until_) return;
    system_->loop().schedule_after(interval_, [this] {
      audit_ctas();
      schedule_audit();
    });
  }

  void audit_ctas() {
    const auto regions =
        static_cast<std::uint32_t>(system_->topo().total_regions());
    std::vector<std::string> found;
    for (std::uint32_t r = 0; r < regions; ++r) {
      if (!system_->owns_region(r) || !system_->cta_alive(r)) continue;
      system_->cta(r).audit_log_invariants(found);
    }
    for (std::string& v : found) record(std::move(v), "cta_log");
  }

  /// `tag` must be a string literal: it rides into the flight recorder,
  /// whose Event::detail is never owned. Violations land in the flight
  /// ring too (at current sim-time), so a teeth reproducer whose minimal
  /// schedule triggers no crash/shed/retx still ships a non-empty dump.
  void record(std::string v, const char* tag, std::int64_t a = -1) {
    ++count_;
    if (obs::FlightRecorder* f = system_->flight()) {
      f->record(system_->loop().now(), obs::FlightRecorder::Kind::kViolation,
                a, -1, tag);
    }
    if (descriptions_.size() < kMaxDescriptions) {
      descriptions_.push_back(std::move(v));
    }
  }

  core::System* system_;
  SimTime interval_;
  SimTime until_;
  std::unordered_map<std::uint64_t, std::uint64_t> watermark_;
  std::unordered_map<std::uint64_t, std::uint64_t> completed_;
  std::vector<std::string> descriptions_;
  std::uint64_t count_ = 0;
  bool quiesced_ = false;
};

}  // namespace neutrino::chaos
