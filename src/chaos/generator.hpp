// Seeded random failure-schedule generator.
//
// Produces Schedules that compose all four recovery scenarios of the
// paper's Fig. 5 — backup failover, mid-procedure log replay, whole
// replica-set loss (Re-Attach), and CTA failure — on top of a mixed
// procedure workload, under two structural constraints:
//
//  * Liveness: every region keeps at least one live CPF at all times
//    (crash/restore intervals are tracked and a victim is rejected if it
//    would leave its region empty), so recovery always has somewhere to
//    promote or rebuild. Whole-set wipes still exercise the Re-Attach
//    path because the *replica set* dies even though the region doesn't.
//  * Shard blocks: mobility targets and CTA-crash reroutes stay inside
//    the UE's home shard block (regions are block-partitioned across
//    `shards`), so the identical schedule is valid on the legacy System
//    and on any ShardedRuntime configuration up to that shard count.
//
// Generation is a pure function of (config, seed): the same pair always
// yields byte-identical schedules, which the shrinker and the replay
// artifacts rely on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "chaos/schedule.hpp"
#include "common/rng.hpp"
#include "core/system.hpp"

namespace neutrino::chaos {

struct GeneratorConfig {
  std::uint32_t regions = 4;
  std::uint32_t cpfs_per_region = 5;
  std::uint32_t ues = 24;
  /// Shard-count the schedule must stay valid for (1 = no constraint
  /// beyond the legacy System). Mobility and CTA crashes are confined to
  /// per-shard region blocks of ceil(regions/shards).
  std::uint32_t shards = 1;
  std::uint32_t actions = 120;
  std::uint32_t failure_bursts = 6;
  /// Max CPFs crashed per burst (cascading failures).
  std::uint32_t max_cascade = 3;
  double cta_crash_prob = 0.25;
  /// Signaling storms (kOverload events): each hits one random region.
  /// Any value > 0 also flips the runner onto bounded queues + NAS
  /// retransmission for the whole run (see overload_proto). 0 keeps
  /// generation byte-identical to pre-overload schedules for a seed.
  std::uint32_t overload_bursts = 0;
  /// Probability of one targeted burst killing a sampled UE's entire
  /// replica set (primary + all backups) — the deterministic way to reach
  /// Fig. 5's "no usable replica" Re-Attach scenario.
  double targeted_wipe_prob = 0.5;
  SimTime window = SimTime::seconds(3);
  SimTime drain = SimTime::seconds(5);
  SimTime restore_delay_mean = SimTime::milliseconds(250);
};

namespace detail {

/// Crash/restore bookkeeping for the liveness constraint.
class DownIntervals {
 public:
  DownIntervals(std::uint32_t cpfs, std::uint32_t cpfs_per_region)
      : per_cpf_(cpfs), cpfs_per_region_(cpfs_per_region) {}

  [[nodiscard]] bool victim_free(std::uint32_t cpf, SimTime from,
                                 SimTime to) const {
    for (const auto& [a, b] : per_cpf_[cpf]) {
      if (a < to && from < b) return false;
    }
    return true;
  }

  /// Conservative region-liveness test: counts same-region CPFs whose
  /// down interval overlaps [from, to) at all (as if concurrent).
  [[nodiscard]] bool region_keeps_one(std::uint32_t cpf, SimTime from,
                                      SimTime to) const {
    const std::uint32_t region = cpf / cpfs_per_region_;
    std::uint32_t down = 0;
    for (std::uint32_t c = region * cpfs_per_region_;
         c < (region + 1) * cpfs_per_region_; ++c) {
      if (!victim_free(c, from, to)) ++down;
    }
    return down + 1 < cpfs_per_region_;
  }

  void add(std::uint32_t cpf, SimTime from, SimTime to) {
    per_cpf_[cpf].emplace_back(from, to);
  }

 private:
  std::vector<std::vector<std::pair<SimTime, SimTime>>> per_cpf_;
  std::uint32_t cpfs_per_region_;
};

}  // namespace detail

/// Generate a schedule. `oracle` (any System over the same topology) is
/// only consulted for replica placement when emitting a targeted
/// whole-set wipe; pass nullptr to disable targeted wipes.
inline Schedule generate(const GeneratorConfig& cfg, std::uint64_t seed,
                         const core::System* oracle = nullptr) {
  Schedule s;
  s.seed = seed;
  s.regions = cfg.regions;
  s.cpfs_per_region = cfg.cpfs_per_region;
  s.ues = cfg.ues;
  s.horizon = cfg.window + cfg.drain;

  Rng rng(seed);
  const std::uint32_t regions = cfg.regions;
  const std::uint32_t shards = std::max<std::uint32_t>(1, cfg.shards);
  const std::uint32_t per_shard = (regions + shards - 1) / shards;
  const auto block_of = [per_shard](std::uint32_t r) { return r / per_shard; };
  const auto uniform_in_window = [&rng, &cfg] {
    return SimTime::nanoseconds(
        1 + static_cast<std::int64_t>(
                rng.next_below(static_cast<std::uint64_t>(cfg.window.ns()))));
  };

  // Regions a UE homed in `home` may move to (same shard block, != home).
  const auto move_targets = [&](std::uint32_t home) {
    std::vector<std::uint32_t> out;
    for (std::uint32_t r = 0; r < regions; ++r) {
      if (r != home && block_of(r) == block_of(home)) out.push_back(r);
    }
    return out;
  };

  // --- UE workload -------------------------------------------------------
  // `nominal` optimistically tracks where each UE ends up after the moves
  // we emit; it only steers target choice (any in-block target is valid
  // protocol-wise even if a crash diverted the UE meanwhile).
  std::vector<std::uint32_t> nominal(cfg.ues);
  for (std::uint32_t u = 0; u < cfg.ues; ++u) nominal[u] = u % regions;

  for (std::uint32_t i = 0; i < cfg.actions; ++i) {
    Event e;
    e.at = uniform_in_window();
    const auto ue = rng.next_below(cfg.ues);
    e.ue = ue;
    const std::uint32_t home = static_cast<std::uint32_t>(ue) % regions;
    const std::vector<std::uint32_t> targets = move_targets(home);
    const double roll = rng.next_double();
    if (roll < 0.40) {
      e.kind = EventKind::kProcedure;
      e.proc = core::ProcedureType::kServiceRequest;
    } else if (roll < 0.55) {
      e.kind = EventKind::kProcedure;
      if (!targets.empty()) {
        std::uint32_t t = targets[rng.next_below(targets.size())];
        if (t == nominal[ue] && targets.size() > 1) {
          t = targets[(std::find(targets.begin(), targets.end(), t) -
                       targets.begin() + 1) %
                      targets.size()];
        }
        e.proc = core::ProcedureType::kHandover;
        e.target_region = t;
        nominal[ue] = t;
      } else {
        e.proc = core::ProcedureType::kIntraHandover;
        e.target_region = home;
      }
    } else if (roll < 0.67) {
      if (!targets.empty()) {
        e.kind = EventKind::kIdleMove;
        const std::uint32_t t = targets[rng.next_below(targets.size())];
        e.target_region = t;
        nominal[ue] = t;
      } else {
        e.kind = EventKind::kProcedure;
        e.proc = core::ProcedureType::kTau;
      }
    } else if (roll < 0.74) {
      e.kind = EventKind::kProcedure;
      e.proc = core::ProcedureType::kDetach;
    } else if (roll < 0.82) {
      e.kind = EventKind::kProcedure;
      e.proc = core::ProcedureType::kAttach;
    } else {
      e.kind = EventKind::kTriggerDownlink;
    }
    s.events.push_back(e);
  }

  // --- CPF failure bursts ------------------------------------------------
  const std::uint32_t total_cpfs = regions * cfg.cpfs_per_region;
  detail::DownIntervals down(total_cpfs, cfg.cpfs_per_region);
  const auto restore_delay = [&rng, &cfg] {
    const double mean = static_cast<double>(cfg.restore_delay_mean.ns());
    const double d = rng.next_exponential(mean);
    return SimTime::nanoseconds(std::max<std::int64_t>(
        SimTime::milliseconds(50).ns(), static_cast<std::int64_t>(d)));
  };
  const auto try_crash = [&](std::uint32_t cpf, SimTime at) {
    const SimTime back_at = at + restore_delay();
    if (!down.victim_free(cpf, at, back_at)) return false;
    if (!down.region_keeps_one(cpf, at, back_at)) return false;
    down.add(cpf, at, back_at);
    Event crash;
    crash.at = at;
    crash.kind = EventKind::kCrashCpf;
    crash.cpf = cpf;
    s.events.push_back(crash);
    Event restore;
    restore.at = back_at;
    restore.kind = EventKind::kRestoreCpf;
    restore.cpf = cpf;
    s.events.push_back(restore);
    return true;
  };

  for (std::uint32_t b = 0; b < cfg.failure_bursts; ++b) {
    const SimTime at = uniform_in_window();
    const std::uint32_t cascade =
        1 + static_cast<std::uint32_t>(rng.next_below(cfg.max_cascade));
    std::uint32_t placed = 0;
    for (std::uint32_t attempt = 0;
         attempt < cascade * 4 && placed < cascade; ++attempt) {
      const auto cpf = static_cast<std::uint32_t>(rng.next_below(total_cpfs));
      const SimTime stagger =
          at + SimTime::microseconds(static_cast<std::int64_t>(placed) * 50);
      if (try_crash(cpf, stagger)) ++placed;
    }
  }

  // --- Targeted whole-replica-set wipe (Fig. 5 scenario 3) ---------------
  if (oracle != nullptr && rng.next_bool(cfg.targeted_wipe_prob)) {
    const auto ue = UeId(rng.next_below(cfg.ues));
    const std::uint32_t home =
        static_cast<std::uint32_t>(ue.value()) % regions;
    const SimTime at = uniform_in_window();
    std::vector<std::uint32_t> victims;
    victims.push_back(oracle->primary_cpf_for(ue, home).value());
    for (const CpfId b : oracle->backups_for(ue, home)) {
      if (std::find(victims.begin(), victims.end(), b.value()) ==
          victims.end()) {
        victims.push_back(b.value());
      }
    }
    // All-or-nothing: the scenario needs the whole set down together.
    bool ok = true;
    const SimTime hold = at + SimTime::milliseconds(100);
    for (const std::uint32_t v : victims) {
      if (!down.victim_free(v, at, hold) || !down.region_keeps_one(v, at, hold)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const std::uint32_t v : victims) try_crash(v, at);
    }
  }

  // --- CTA crash (Fig. 5 scenario 4; permanent, at most one) -------------
  if (regions > 1 && rng.next_bool(cfg.cta_crash_prob)) {
    std::vector<std::uint32_t> eligible;
    for (std::uint32_t r = 0; r < regions; ++r) {
      // The reroute target (r+1)%regions must share r's shard block, or
      // the sharded runtimes could not run this schedule.
      if (block_of((r + 1) % regions) == block_of(r)) eligible.push_back(r);
    }
    if (!eligible.empty()) {
      Event e;
      e.at = uniform_in_window();
      e.kind = EventKind::kCrashCta;
      e.region = eligible[rng.next_below(eligible.size())];
      s.events.push_back(e);
    }
  }

  // --- Signaling storms (overload control, DESIGN.md §13) ----------------
  // Drawn last so overload_bursts == 0 reproduces pre-overload schedules
  // byte-for-byte. Storms land anywhere in the window, so some overlap
  // crash intervals — that is the crash-during-retransmit coverage.
  for (std::uint32_t b = 0; b < cfg.overload_bursts; ++b) {
    Event e;
    e.at = uniform_in_window();
    e.kind = EventKind::kOverload;
    e.region = static_cast<std::uint32_t>(rng.next_below(regions));
    e.ue = e.region;  // storm population is homed here -> home-shard routing
    s.events.push_back(e);
  }

  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  return s;
}

}  // namespace neutrino::chaos
