// Bounds-checked byte/bit cursors shared by all wire codecs.
//
// The scalar paths are the per-message hot spots (every codec funnels
// through put_le/get_le or the PER bit cursor), so they are written
// branchless where the byte order allows: little-endian hosts memcpy
// whole scalars instead of shifting byte-by-byte, big-endian writes swap
// in a register first, and the bit cursor moves whole bytes once the
// partial byte is filled. Byte-identical to the portable loops — the 35
// golden vectors and the codec fuzzers hold both shut (DESIGN.md §16).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace neutrino::wire {

namespace detail {

/// Reverse the bytes of an unsigned integer (constexpr-friendly; the
/// compilers reduce it to a single bswap).
template <typename U>
constexpr U byte_reverse(U v) {
  static_assert(std::is_unsigned_v<U>);
  if constexpr (sizeof(U) == 1) {
    return v;
  } else {
    U out = 0;
    for (std::size_t i = 0; i < sizeof(U); ++i) {
      out = static_cast<U>(out << 8) | static_cast<U>((v >> (8 * i)) & 0xFF);
    }
    return out;
  }
}

}  // namespace detail

/// Append-only byte writer, little- and big-endian primitives.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  template <typename T>
  void put_le(T v) {
    static_assert(std::is_integral_v<T>);
    auto u = static_cast<std::make_unsigned_t<T>>(v);
    if constexpr (std::endian::native == std::endian::big) {
      u = detail::byte_reverse(u);
    }
    append_raw(&u, sizeof(u));
  }

  template <typename T>
  void put_be(T v) {
    static_assert(std::is_integral_v<T>);
    auto u = static_cast<std::make_unsigned_t<T>>(v);
    if constexpr (std::endian::native == std::endian::little) {
      u = detail::byte_reverse(u);
    }
    append_raw(&u, sizeof(u));
  }

  void put_bytes(BytesView data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void put_zeros(std::size_t n) { buf_.insert(buf_.end(), n, Byte{0}); }

  /// Pad with zero bytes until size() is a multiple of `alignment`.
  void align_to(std::size_t alignment) {
    while (buf_.size() % alignment != 0) buf_.push_back(0);
  }

  /// Overwrite previously written bytes (e.g. a length placeholder).
  void patch_le32(std::size_t offset, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
      buf_[offset + i] = static_cast<Byte>(v >> (8 * i));
    }
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  void append_raw(const void* src, std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    std::memcpy(buf_.data() + at, src, n);
  }

  Bytes buf_;
};

/// Bounds-checked sequential reader.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  Result<std::uint8_t> get_u8() {
    if (remaining() < 1) return truncated();
    return data_[pos_++];
  }

  template <typename T>
  Result<T> get_le() {
    if (remaining() < sizeof(T)) return truncated();
    std::make_unsigned_t<T> v;
    std::memcpy(&v, data_.data() + pos_, sizeof(v));
    if constexpr (std::endian::native == std::endian::big) {
      v = detail::byte_reverse(v);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  template <typename T>
  Result<T> get_be() {
    if (remaining() < sizeof(T)) return truncated();
    std::make_unsigned_t<T> v;
    std::memcpy(&v, data_.data() + pos_, sizeof(v));
    if constexpr (std::endian::native == std::endian::little) {
      v = detail::byte_reverse(v);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  Result<BytesView> get_bytes(std::size_t n) {
    if (remaining() < n) return truncated();
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  Status skip(std::size_t n) {
    if (remaining() < n) return truncated_status();
    pos_ += n;
    return Status::ok();
  }

  Status align_to(std::size_t alignment) {
    while (pos_ % alignment != 0) {
      if (remaining() < 1) return truncated_status();
      ++pos_;
    }
    return Status::ok();
  }

 private:
  static Status truncated_status() {
    return make_error(StatusCode::kMalformed, "truncated buffer");
  }
  static Status truncated() { return truncated_status(); }

  BytesView data_;
  std::size_t pos_ = 0;
};

/// MSB-first bit writer used by the ASN.1 PER codec.
class BitWriter {
 public:
  void put_bit(bool bit) {
    if (bit_pos_ == 0) buf_.push_back(0);
    if (bit) buf_.back() |= static_cast<Byte>(1u << (7 - bit_pos_));
    bit_pos_ = (bit_pos_ + 1) % 8;
  }

  /// Write the low `nbits` bits of v, MSB first. Fills the current
  /// partial byte bit-by-bit (≤7 steps), then moves whole bytes — the PER
  /// interpreter emits mostly 8/16/32-bit fields, which hit the byte loop
  /// directly. Output is bit-identical to the naive per-bit loop.
  void put_bits(std::uint64_t v, unsigned nbits) {
    if (nbits < 64) v &= (std::uint64_t{1} << nbits) - 1;
    while (nbits > 0 && bit_pos_ != 0) {
      --nbits;
      put_bit(((v >> nbits) & 1u) != 0);
    }
    while (nbits >= 8) {
      nbits -= 8;
      buf_.push_back(static_cast<Byte>((v >> nbits) & 0xFF));
    }
    if (nbits > 0) {
      buf_.push_back(static_cast<Byte>((v << (8 - nbits)) & 0xFF));
      bit_pos_ = nbits;
    }
  }

  /// PER octet alignment: pad the current byte with zero bits.
  void align() { bit_pos_ = 0; }

  void put_aligned_bytes(BytesView data) {
    align();
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void put_aligned_u8(std::uint8_t v) {
    align();
    buf_.push_back(v);
  }

  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size_bytes() const { return buf_.size(); }

 private:
  Bytes buf_;
  unsigned bit_pos_ = 0;  // next free bit within the last byte
};

/// MSB-first bit reader (ASN.1 PER decode).
class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  Result<bool> get_bit() {
    if (byte_pos_ >= data_.size()) return truncated();
    const bool bit =
        ((data_[byte_pos_] >> (7 - bit_pos_)) & 1u) != 0;
    if (++bit_pos_ == 8) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
    return bit;
  }

  /// Word-wise mirror of BitWriter::put_bits: drains the current partial
  /// byte, then consumes whole bytes. Same values and cursor positions as
  /// the per-bit loop on every successful read.
  Result<std::uint64_t> get_bits(unsigned nbits) {
    std::uint64_t v = 0;
    while (nbits > 0 && bit_pos_ != 0) {
      auto bit = get_bit();
      if (!bit) return bit.status();
      v = (v << 1) | (*bit ? 1u : 0u);
      --nbits;
    }
    while (nbits >= 8) {
      if (byte_pos_ >= data_.size()) return truncated();
      nbits -= 8;
      v = (v << 8) | static_cast<std::uint64_t>(data_[byte_pos_++]);
    }
    for (; nbits > 0; --nbits) {
      auto bit = get_bit();
      if (!bit) return bit.status();
      v = (v << 1) | (*bit ? 1u : 0u);
    }
    return v;
  }

  Status align() {
    if (bit_pos_ != 0) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
    return Status::ok();
  }

  Result<BytesView> get_aligned_bytes(std::size_t n) {
    NEUTRINO_RETURN_IF_ERROR(align());
    if (data_.size() - byte_pos_ < n) return truncated();
    BytesView out = data_.subspan(byte_pos_, n);
    byte_pos_ += n;
    return out;
  }

  Result<std::uint8_t> get_aligned_u8() {
    auto bytes = get_aligned_bytes(1);
    if (!bytes) return bytes.status();
    return (*bytes)[0];
  }

 private:
  static Status truncated() {
    return make_error(StatusCode::kMalformed, "truncated PER buffer");
  }

  BytesView data_;
  std::size_t byte_pos_ = 0;
  unsigned bit_pos_ = 0;
};

}  // namespace neutrino::wire
