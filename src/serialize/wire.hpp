// Bounds-checked byte/bit cursors shared by all wire codecs.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace neutrino::wire {

/// Append-only byte writer, little- and big-endian primitives.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  template <typename T>
  void put_le(T v) {
    static_assert(std::is_integral_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<Byte>(static_cast<std::make_unsigned_t<T>>(v) >>
                                       (8 * i)));
    }
  }

  template <typename T>
  void put_be(T v) {
    static_assert(std::is_integral_v<T>);
    for (std::size_t i = sizeof(T); i-- > 0;) {
      buf_.push_back(static_cast<Byte>(static_cast<std::make_unsigned_t<T>>(v) >>
                                       (8 * i)));
    }
  }

  void put_bytes(BytesView data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void put_zeros(std::size_t n) { buf_.insert(buf_.end(), n, Byte{0}); }

  /// Pad with zero bytes until size() is a multiple of `alignment`.
  void align_to(std::size_t alignment) {
    while (buf_.size() % alignment != 0) buf_.push_back(0);
  }

  /// Overwrite previously written bytes (e.g. a length placeholder).
  void patch_le32(std::size_t offset, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
      buf_[offset + i] = static_cast<Byte>(v >> (8 * i));
    }
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked sequential reader.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  Result<std::uint8_t> get_u8() {
    if (remaining() < 1) return truncated();
    return data_[pos_++];
  }

  template <typename T>
  Result<T> get_le() {
    if (remaining() < sizeof(T)) return truncated();
    std::make_unsigned_t<T> v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::make_unsigned_t<T>>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  template <typename T>
  Result<T> get_be() {
    if (remaining() < sizeof(T)) return truncated();
    std::make_unsigned_t<T> v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<std::make_unsigned_t<T>>(v << 8) | data_[pos_ + i];
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  Result<BytesView> get_bytes(std::size_t n) {
    if (remaining() < n) return truncated();
    BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  Status skip(std::size_t n) {
    if (remaining() < n) return truncated_status();
    pos_ += n;
    return Status::ok();
  }

  Status align_to(std::size_t alignment) {
    while (pos_ % alignment != 0) {
      if (remaining() < 1) return truncated_status();
      ++pos_;
    }
    return Status::ok();
  }

 private:
  static Status truncated_status() {
    return make_error(StatusCode::kMalformed, "truncated buffer");
  }
  static Status truncated() { return truncated_status(); }

  BytesView data_;
  std::size_t pos_ = 0;
};

/// MSB-first bit writer used by the ASN.1 PER codec.
class BitWriter {
 public:
  void put_bit(bool bit) {
    if (bit_pos_ == 0) buf_.push_back(0);
    if (bit) buf_.back() |= static_cast<Byte>(1u << (7 - bit_pos_));
    bit_pos_ = (bit_pos_ + 1) % 8;
  }

  /// Write the low `nbits` bits of v, MSB first.
  void put_bits(std::uint64_t v, unsigned nbits) {
    for (unsigned i = nbits; i-- > 0;) put_bit(((v >> i) & 1u) != 0);
  }

  /// PER octet alignment: pad the current byte with zero bits.
  void align() { bit_pos_ = 0; }

  void put_aligned_bytes(BytesView data) {
    align();
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void put_aligned_u8(std::uint8_t v) {
    align();
    buf_.push_back(v);
  }

  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size_bytes() const { return buf_.size(); }

 private:
  Bytes buf_;
  unsigned bit_pos_ = 0;  // next free bit within the last byte
};

/// MSB-first bit reader (ASN.1 PER decode).
class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  Result<bool> get_bit() {
    if (byte_pos_ >= data_.size()) return truncated();
    const bool bit =
        ((data_[byte_pos_] >> (7 - bit_pos_)) & 1u) != 0;
    if (++bit_pos_ == 8) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
    return bit;
  }

  Result<std::uint64_t> get_bits(unsigned nbits) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) {
      auto bit = get_bit();
      if (!bit) return bit.status();
      v = (v << 1) | (*bit ? 1u : 0u);
    }
    return v;
  }

  Status align() {
    if (bit_pos_ != 0) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
    return Status::ok();
  }

  Result<BytesView> get_aligned_bytes(std::size_t n) {
    NEUTRINO_RETURN_IF_ERROR(align());
    if (data_.size() - byte_pos_ < n) return truncated();
    BytesView out = data_.subspan(byte_pos_, n);
    byte_pos_ += n;
    return out;
  }

  Result<std::uint8_t> get_aligned_u8() {
    auto bytes = get_aligned_bytes(1);
    if (!bytes) return bytes.status();
    return (*bytes)[0];
  }

 private:
  static Status truncated() {
    return make_error(StatusCode::kMalformed, "truncated PER buffer");
  }

  BytesView data_;
  std::size_t byte_pos_ = 0;
  unsigned bit_pos_ = 0;
};

}  // namespace neutrino::wire
