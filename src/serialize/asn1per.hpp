// ASN.1 aligned-PER codec (subset), asn1c-architecture.
//
// Implements the Packed Encoding Rules behaviours that matter for the
// paper's argument (§3.2): SEQUENCE optional-presence preamble bits,
// bit-packed constrained integers, octet-aligned length determinants, and
// strictly sequential decoding — reaching field k requires decoding fields
// 1..k-1.
//
// Architecture matters as much as format here: the paper's baseline is
// asn1c (via OpenAirInterface), whose generated artifacts are runtime
// descriptor *tables* interpreted by a support library, with heap-allocated
// decode intermediates. This codec therefore delegates to the descriptor
// interpreter in asn1_interp.hpp instead of compiling the message walk
// inline — see that header for the faithfulness argument.
//
// Not the full X.691 grammar (no extension markers, no unbounded lengths
// beyond 16K); it is the encoding used by our S1AP message set.
#pragma once

#include "serialize/asn1_interp.hpp"

namespace neutrino::ser {

class Asn1Encoder {
 public:
  template <FieldStruct M>
  static Bytes encode(const M& msg) {
    // An asn1c application cannot encode its internal representation
    // directly: it first builds the generated asn1c struct tree (one deep
    // copy with per-node allocation), encodes it, then frees the tree.
    auto staged = std::make_unique<M>(msg);
    wire::BitWriter writer;
    asn1i::Interp::encode(asn1i::rt_type<M>(), staged.get(), writer);
    return std::move(writer).take();
  }
};

class Asn1Decoder {
 public:
  template <FieldStruct M>
  static Result<M> decode(BytesView data) {
    // Decode lands in a heap-allocated asn1c tree; the application copies
    // the fields out and ASN_STRUCT_FREE releases the tree.
    wire::BitReader reader(data);
    auto tree = std::make_unique<M>();
    if (Status st =
            asn1i::Interp::decode(asn1i::rt_type<M>(), tree.get(), reader);
        !st.is_ok()) {
      return st;
    }
    return M(*tree);
  }
};

}  // namespace neutrino::ser
