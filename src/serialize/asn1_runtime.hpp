// asn1c-style runtime support layer for the PER codec.
//
// The paper's ASN.1 baseline is the asn1c compiler used by OpenAirInterface.
// asn1c-generated code is *table-interpreted*: every primitive runs through
// an asn_TYPE_operation_s function-pointer table in the support library, and
// decoding materializes each field in a freshly calloc'd intermediate before
// the application copies it out — the paper names exactly these behaviours
// ("traverse all the previous bytes", "additional memory allocations during
// decoding", §3.2) as the reason ASN.1 is slow.
//
// To keep our from-scratch PER codec faithful to that baseline rather than
// to an idealized inlined PER, all primitive operations are routed through
// this indirection table (definitions live in asn1_runtime.cpp and are not
// inlinable across the TU boundary), and the decode paths allocate the same
// intermediates asn1c would.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "serialize/schema.hpp"
#include "serialize/wire.hpp"

namespace neutrino::ser::asn1rt {

/// Function-pointer table mirroring asn1c's asn_TYPE_operation_s.
struct PerPrimitiveOps {
  std::int64_t (*decode_constrained_int)(wire::BitReader&, IntBounds,
                                         Status&);
  void (*encode_constrained_int)(wire::BitWriter&, IntBounds, std::int64_t);

  /// Returns a heap-allocated buffer (asn1c OCTET_STRING_t analog); the
  /// caller copies out and frees, as application code must with asn1c.
  Bytes* (*decode_octet_string)(wire::BitReader&, Status&);
  void (*encode_octet_string)(wire::BitWriter&, const Byte*, std::size_t);

  bool (*decode_bool)(wire::BitReader&, Status&);
  void (*encode_bool)(wire::BitWriter&, bool);

  std::size_t (*decode_length)(wire::BitReader&, Status&);
  void (*encode_length)(wire::BitWriter&, std::size_t);
};

/// The live operation table (never null).
const PerPrimitiveOps& per_ops();

}  // namespace neutrino::ser::asn1rt
