// Runtime-schema interpreter backing the ASN.1 PER codec.
//
// asn1c — the compiler behind the paper's ASN.1 baseline (OpenAirInterface)
// — does not generate inline en/decoders. It generates *data*: a tree of
// asn_TYPE_descriptor_t / asn_TYPE_member_t records, and a small support
// library interprets that tree at run time, dispatching every member
// through function pointers and materializing every decoded primitive in a
// freshly allocated intermediate. That interpretation is the dominant cost
// the paper measures against (§3.2).
//
// This header reproduces the same architecture: visit_fields() is used
// exactly once per message type to *build* a runtime descriptor
// (RtType/RtField, the asn_TYPE_descriptor_t analog, cached in a static);
// encoding and decoding then walk the descriptor tree with type-erased
// accessors — no compile-time knowledge of the message reaches the hot
// path, matching asn1c's cost profile rather than an idealized inlined PER.
#pragma once

#include <cassert>
#include <functional>
#include <memory>

#include "serialize/asn1_runtime.hpp"
#include "serialize/schema.hpp"
#include "serialize/wire.hpp"

namespace neutrino::ser::asn1i {

enum class Kind : std::uint8_t {
  kBool,
  kInt,
  kString,  // std::string
  kBytes,   // neutrino::Bytes
  kStruct,
  kOptional,
  kVector,
  kChoice,
};

struct RtType;

/// One member descriptor (asn_TYPE_member_t analog). Offsets are relative
/// to the enclosing object; wrapper kinds (optional/vector/choice) reach
/// their payloads through type-erased accessor closures, as asn1c reaches
/// members through per-type function tables.
struct RtField {
  std::string_view name;
  Kind kind = Kind::kInt;
  IntBounds bounds;
  std::size_t offset = 0;

  // kInt / kBool: width-erased load/store.
  std::int64_t (*load_int)(const void*) = nullptr;
  void (*store_int)(void*, std::int64_t) = nullptr;

  // kStruct: nested descriptor, plus the constructed-type lifecycle asn1c
  // imposes: nested SEQUENCEs are individually heap-allocated on decode and
  // the application copies them out before ASN_STRUCT_FREE walks the tree.
  const RtType* nested = nullptr;
  void* (*st_new)() = nullptr;
  void (*st_assign)(void* dst, const void* src) = nullptr;
  void (*st_delete)(void*) = nullptr;

  // kOptional: element descriptor (offset 0 relative to the engaged value).
  std::unique_ptr<RtField> element;
  bool (*opt_has)(const void*) = nullptr;
  void* (*opt_emplace)(void*) = nullptr;
  const void* (*opt_get)(const void*) = nullptr;
  void (*opt_reset)(void*) = nullptr;

  // kVector: `element` doubles as the element descriptor.
  std::size_t (*vec_size)(const void*) = nullptr;
  void (*vec_clear_reserve)(void*, std::size_t) = nullptr;
  void* (*vec_append)(void*) = nullptr;
  const void* (*vec_at)(const void*, std::size_t) = nullptr;

  // kChoice: one descriptor per alternative (offset 0 in the alternative).
  std::vector<RtField> alternatives;
  std::size_t (*uni_index)(const void*) = nullptr;
  void* (*uni_emplace)(void*, std::size_t) = nullptr;
  const void* (*uni_active)(const void*) = nullptr;
};

/// Type descriptor (asn_TYPE_descriptor_t analog).
struct RtType {
  std::string_view name;
  std::vector<RtField> fields;
};

// ---------------------------------------------------------------------------
// Descriptor construction (one-time, per message type).
// ---------------------------------------------------------------------------

template <FieldStruct M>
const RtType& rt_type();

namespace detail {

template <typename T>
RtField make_field(std::string_view name, IntBounds bounds,
                   std::size_t offset);

template <typename... Alts>
void make_alternatives(RtField& f, TaggedUnion<Alts...>*) {
  (f.alternatives.push_back(
       make_field<Alts>(f.name, natural_bounds<Alts>(), 0)),
   ...);
}

template <typename T>
RtField make_field(std::string_view name, IntBounds bounds,
                   std::size_t offset) {
  RtField f;
  f.name = name;
  f.bounds = bounds;
  f.offset = offset;
  if constexpr (std::is_same_v<T, bool>) {
    f.kind = Kind::kBool;
    f.load_int = [](const void* p) -> std::int64_t {
      return *static_cast<const bool*>(p) ? 1 : 0;
    };
    f.store_int = [](void* p, std::int64_t v) {
      *static_cast<bool*>(p) = (v != 0);
    };
  } else if constexpr (ScalarField<T>) {
    f.kind = Kind::kInt;
    f.load_int = [](const void* p) -> std::int64_t {
      return static_cast<std::int64_t>(*static_cast<const T*>(p));
    };
    f.store_int = [](void* p, std::int64_t v) {
      *static_cast<T*>(p) = static_cast<T>(v);
    };
  } else if constexpr (StringField<T>) {
    f.kind = Kind::kString;
  } else if constexpr (BytesField<T>) {
    f.kind = Kind::kBytes;
  } else if constexpr (is_optional<T>::value) {
    using Inner = typename T::value_type;
    f.kind = Kind::kOptional;
    f.element = std::make_unique<RtField>(
        make_field<Inner>(name, bounds, 0));
    f.opt_has = [](const void* p) {
      return static_cast<const T*>(p)->has_value();
    };
    f.opt_emplace = [](void* p) -> void* {
      return &static_cast<T*>(p)->emplace();
    };
    f.opt_get = [](const void* p) -> const void* {
      return &**static_cast<const T*>(p);
    };
    f.opt_reset = [](void* p) { static_cast<T*>(p)->reset(); };
  } else if constexpr (is_tagged_union<T>::value) {
    f.kind = Kind::kChoice;
    make_alternatives(f, static_cast<T*>(nullptr));
    f.uni_index = [](const void* p) {
      return static_cast<const T*>(p)->index();
    };
    f.uni_emplace = [](void* p, std::size_t i) -> void* {
      void* out = nullptr;
      static_cast<T*>(p)->emplace_by_index(
          i, [&](auto& alt) { out = &alt; });
      return out;
    };
    f.uni_active = [](const void* p) -> const void* {
      const void* out = nullptr;
      static_cast<const T*>(p)->visit_active(
          [&](const auto& alt) { out = &alt; });
      return out;
    };
  } else if constexpr (is_std_vector<T>::value) {
    using Element = typename T::value_type;
    f.kind = Kind::kVector;
    f.element = std::make_unique<RtField>(
        make_field<Element>(name, bounds, 0));
    f.vec_size = [](const void* p) {
      return static_cast<const T*>(p)->size();
    };
    f.vec_clear_reserve = [](void* p, std::size_t n) {
      auto* v = static_cast<T*>(p);
      v->clear();
      v->reserve(n);
    };
    f.vec_append = [](void* p) -> void* {
      return &static_cast<T*>(p)->emplace_back();
    };
    f.vec_at = [](const void* p, std::size_t i) -> const void* {
      return &(*static_cast<const T*>(p))[i];
    };
  } else {
    static_assert(FieldStruct<T>, "unsupported field type");
    f.kind = Kind::kStruct;
    f.nested = &rt_type<T>();
    f.st_new = []() -> void* { return new T{}; };
    f.st_assign = [](void* dst, const void* src) {
      *static_cast<T*>(dst) = *static_cast<const T*>(src);
    };
    f.st_delete = [](void* p) { delete static_cast<T*>(p); };
  }
  return f;
}

}  // namespace detail

/// Build (once) and return the runtime descriptor for M.
template <FieldStruct M>
const RtType& rt_type() {
  static const RtType type = [] {
    RtType t;
    t.name = M::kTypeName;
    M probe{};
    const char* base = reinterpret_cast<const char*>(&probe);
    probe.visit_fields([&](int /*id*/, std::string_view name, auto& member,
                           IntBounds bounds = {}) {
      using T = std::decay_t<decltype(member)>;
      const auto offset = static_cast<std::size_t>(
          reinterpret_cast<const char*>(&member) - base);
      t.fields.push_back(detail::make_field<T>(name, bounds, offset));
    });
    return t;
  }();
  return type;
}

// ---------------------------------------------------------------------------
// Interpreter.
// ---------------------------------------------------------------------------

class Interp {
 public:
  static void encode(const RtType& type, const void* obj,
                     wire::BitWriter& writer) {
    const auto& ops = asn1rt::per_ops();
    // SEQUENCE preamble: presence bit per OPTIONAL member.
    for (const auto& f : type.fields) {
      if (f.kind == Kind::kOptional) {
        ops.encode_bool(writer, f.opt_has(at(obj, f.offset)));
      }
    }
    for (const auto& f : type.fields) {
      encode_field(f, at(obj, f.offset), writer, ops);
    }
  }

  static Status decode(const RtType& type, void* obj,
                       wire::BitReader& reader) {
    const auto& ops = asn1rt::per_ops();
    Status status;
    // Preamble first (as PER requires): collect presence bits.
    // asn1c keeps these in a stack-local map; bounded by max OPTIONALs.
    bool presence[kMaxOptionalFields];
    std::size_t n_optional = 0;
    for (const auto& f : type.fields) {
      if (f.kind == Kind::kOptional) {
        assert(n_optional < kMaxOptionalFields);
        presence[n_optional++] = ops.decode_bool(reader, status);
        if (!status.is_ok()) return status;
      }
    }
    std::size_t opt_cursor = 0;
    for (const auto& f : type.fields) {
      const bool present =
          f.kind != Kind::kOptional || presence[opt_cursor++];
      status = decode_field(f, at_mut(obj, f.offset), present, reader, ops);
      if (!status.is_ok()) return status;
    }
    return status;
  }

 private:
  static constexpr std::size_t kMaxOptionalFields = 64;

  static const void* at(const void* base, std::size_t offset) {
    return static_cast<const char*>(base) + offset;
  }
  static void* at_mut(void* base, std::size_t offset) {
    return static_cast<char*>(base) + offset;
  }

  static void encode_field(const RtField& f, const void* p,
                           wire::BitWriter& w,
                           const asn1rt::PerPrimitiveOps& ops) {
    switch (f.kind) {
      case Kind::kBool:
        ops.encode_bool(w, f.load_int(p) != 0);
        break;
      case Kind::kInt:
        ops.encode_constrained_int(w, f.bounds, f.load_int(p));
        break;
      case Kind::kString: {
        const auto& s = *static_cast<const std::string*>(p);
        ops.encode_octet_string(
            w, reinterpret_cast<const Byte*>(s.data()), s.size());
        break;
      }
      case Kind::kBytes: {
        const auto& b = *static_cast<const Bytes*>(p);
        ops.encode_octet_string(w, b.data(), b.size());
        break;
      }
      case Kind::kStruct:
        encode(*f.nested, p, w);
        break;
      case Kind::kOptional:
        if (f.opt_has(p)) encode_field(*f.element, f.opt_get(p), w, ops);
        break;
      case Kind::kVector: {
        const std::size_t n = f.vec_size(p);
        ops.encode_length(w, n);
        for (std::size_t i = 0; i < n; ++i) {
          encode_field(*f.element, f.vec_at(p, i), w, ops);
        }
        break;
      }
      case Kind::kChoice: {
        ops.encode_constrained_int(
            w,
            IntBounds{0,
                      static_cast<std::int64_t>(f.alternatives.size() - 1)},
            static_cast<std::int64_t>(f.uni_index(p)));
        const std::size_t index = f.uni_index(p);
        encode_field(f.alternatives[index], f.uni_active(p), w, ops);
        break;
      }
    }
  }

  static Status decode_field(const RtField& f, void* p, bool present,
                             wire::BitReader& r,
                             const asn1rt::PerPrimitiveOps& ops) {
    Status status;
    switch (f.kind) {
      case Kind::kBool:
        f.store_int(p, ops.decode_bool(r, status) ? 1 : 0);
        return status;
      case Kind::kInt:
        f.store_int(p, ops.decode_constrained_int(r, f.bounds, status));
        return status;
      case Kind::kString: {
        std::unique_ptr<Bytes> octets(ops.decode_octet_string(r, status));
        if (!status.is_ok()) return status;
        static_cast<std::string*>(p)->assign(
            reinterpret_cast<const char*>(octets->data()), octets->size());
        return status;
      }
      case Kind::kBytes: {
        std::unique_ptr<Bytes> octets(ops.decode_octet_string(r, status));
        if (!status.is_ok()) return status;
        *static_cast<Bytes*>(p) = std::move(*octets);
        return status;
      }
      case Kind::kStruct: {
        // asn1c materializes each constructed type in its own calloc'd
        // node; the application copies the value out and the free walk
        // releases the node. Reproduce that allocate / decode / copy-out /
        // free cycle per nested SEQUENCE.
        void* temp = f.st_new();
        status = decode(*f.nested, temp, r);
        if (status.is_ok()) f.st_assign(p, temp);
        f.st_delete(temp);
        return status;
      }
      case Kind::kOptional:
        if (present) {
          return decode_field(*f.element, f.opt_emplace(p), true, r, ops);
        }
        f.opt_reset(p);
        return status;
      case Kind::kVector: {
        const std::size_t n = ops.decode_length(r, status);
        if (!status.is_ok()) return status;
        f.vec_clear_reserve(p, n);
        for (std::size_t i = 0; i < n; ++i) {
          status = decode_field(*f.element, f.vec_append(p), true, r, ops);
          if (!status.is_ok()) return status;
        }
        return status;
      }
      case Kind::kChoice: {
        const auto index = ops.decode_constrained_int(
            r,
            IntBounds{0,
                      static_cast<std::int64_t>(f.alternatives.size() - 1)},
            status);
        if (!status.is_ok()) return status;
        void* alt = f.uni_emplace(p, static_cast<std::size_t>(index));
        if (alt == nullptr) {
          return make_error(StatusCode::kMalformed, "bad CHOICE index");
        }
        return decode_field(f.alternatives[index], alt, true, r, ops);
      }
    }
    return status;
  }
};

}  // namespace neutrino::ser::asn1i
