// FlexBuffers-style codec: schemaless, self-describing encoding.
//
// The defining cost sources of the real format are reproduced: every value
// carries a type tag, structs are maps whose *string keys* travel on the
// wire, and a reader locates a field by key comparison rather than by a
// schema-known offset. That per-field key traffic is why FlexBuffers sits
// near the bottom of the Fig. 18 speedup ranking despite being binary.
#pragma once

#include "serialize/schema.hpp"
#include "serialize/wire.hpp"

namespace neutrino::ser {

namespace flex_detail {

enum class Tag : std::uint8_t {
  kNull = 0,
  kBool = 1,
  kUInt = 2,    // u64 little-endian
  kString = 3,  // u32 length + bytes
  kBytes = 4,
  kMap = 5,     // u16 entry count + (key, value)*
  kVector = 6,  // u32 count + values
  kUnion = 7,   // u8 discriminant + value
};

inline void put_key(wire::ByteWriter& w, std::string_view key) {
  w.put_u8(static_cast<std::uint8_t>(key.size()));
  w.put_bytes(BytesView(reinterpret_cast<const Byte*>(key.data()),
                        key.size()));
}

inline Result<std::string_view> get_key(wire::ByteReader& r) {
  auto len = r.get_u8();
  if (!len) return len.status();
  auto bytes = r.get_bytes(*len);
  if (!bytes) return bytes.status();
  return std::string_view(reinterpret_cast<const char*>(bytes->data()),
                          bytes->size());
}

}  // namespace flex_detail

class FlexBufEncoder {
 public:
  template <FieldStruct M>
  static Bytes encode(const M& msg) {
    FlexBufEncoder enc;
    enc.encode_struct(const_cast<M&>(msg));
    return std::move(enc.writer_).take();
  }

  template <typename T>
  void field(int /*id*/, std::string_view name, T& value,
             IntBounds /*bounds*/ = {}) {
    flex_detail::put_key(writer_, name);
    encode_value(value);
  }

 private:
  using Tag = flex_detail::Tag;

  void put_tag(Tag t) { writer_.put_u8(static_cast<std::uint8_t>(t)); }

  template <FieldStruct M>
  void encode_struct(M& msg) {
    put_tag(Tag::kMap);
    const std::size_t count = field_count(msg);
    writer_.put_le<std::uint16_t>(static_cast<std::uint16_t>(count));
    msg.visit_fields([this](auto&&... args) { this->field(args...); });
  }

  template <typename T>
  void encode_value(T& value) {
    if constexpr (std::is_same_v<T, bool>) {
      put_tag(Tag::kBool);
      writer_.put_u8(value ? 1 : 0);
    } else if constexpr (ScalarField<T>) {
      put_tag(Tag::kUInt);
      writer_.put_le<std::uint64_t>(static_cast<std::uint64_t>(
          static_cast<std::make_unsigned_t<T>>(value)));
    } else if constexpr (StringField<T> || BytesField<T>) {
      put_tag(StringField<T> ? Tag::kString : Tag::kBytes);
      writer_.put_le<std::uint32_t>(static_cast<std::uint32_t>(value.size()));
      writer_.put_bytes(BytesView(
          reinterpret_cast<const Byte*>(value.data()), value.size()));
    } else if constexpr (is_optional<T>::value) {
      if (value.has_value()) {
        encode_value(*value);
      } else {
        put_tag(Tag::kNull);
      }
    } else if constexpr (is_tagged_union<T>::value) {
      put_tag(Tag::kUnion);
      writer_.put_u8(value.has_value()
                         ? static_cast<std::uint8_t>(value.index() + 1)
                         : 0);
      value.visit_active([&](auto& alt) { encode_value(alt); });
    } else if constexpr (is_std_vector<T>::value) {
      put_tag(Tag::kVector);
      writer_.put_le<std::uint32_t>(static_cast<std::uint32_t>(value.size()));
      for (auto& element : value) encode_value(element);
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      encode_struct(value);
    }
  }

  wire::ByteWriter writer_;
};

class FlexBufDecoder {
 public:
  template <FieldStruct M>
  static Result<M> decode(BytesView data) {
    M msg{};
    FlexBufDecoder dec(data);
    dec.decode_value(msg);
    if (!dec.status_.is_ok()) return dec.status_;
    return msg;
  }

 private:
  using Tag = flex_detail::Tag;

  explicit FlexBufDecoder(BytesView data) : reader_(data) {}

  void fail(Status st) {
    if (status_.is_ok()) status_ = std::move(st);
  }

  /// Read the leading tag, then dispatch.
  template <typename T>
  void decode_value(T& value) {
    if (!status_.is_ok()) return;
    auto tag = reader_.get_u8();
    if (!tag) {
      fail(tag.status());
      return;
    }
    decode_with_tag(static_cast<Tag>(*tag), value);
  }

  template <typename T>
  void decode_with_tag(Tag tag, T& value) {
    if (!status_.is_ok()) return;
    if constexpr (std::is_same_v<T, bool>) {
      if (tag != Tag::kBool) return fail(tag_mismatch());
      if (auto b = reader_.get_u8()) {
        value = (*b != 0);
      } else {
        fail(b.status());
      }
    } else if constexpr (ScalarField<T>) {
      if (tag != Tag::kUInt) return fail(tag_mismatch());
      if (auto v = reader_.get_le<std::uint64_t>()) {
        value = static_cast<T>(*v);
      } else {
        fail(v.status());
      }
    } else if constexpr (StringField<T> || BytesField<T>) {
      if (tag != (StringField<T> ? Tag::kString : Tag::kBytes)) {
        return fail(tag_mismatch());
      }
      auto len = reader_.get_le<std::uint32_t>();
      if (!len) return fail(len.status());
      auto bytes = reader_.get_bytes(*len);
      if (!bytes) return fail(bytes.status());
      if constexpr (StringField<T>) {
        value.assign(reinterpret_cast<const char*>(bytes->data()),
                     bytes->size());
      } else {
        value.assign(bytes->begin(), bytes->end());
      }
    } else if constexpr (is_optional<T>::value) {
      if (tag == Tag::kNull) {
        value.reset();
      } else {
        decode_with_tag(tag, value.emplace());
      }
    } else if constexpr (is_tagged_union<T>::value) {
      if (tag != Tag::kUnion) return fail(tag_mismatch());
      auto disc = reader_.get_u8();
      if (!disc) return fail(disc.status());
      if (*disc == 0) return;
      const bool ok = value.emplace_by_index(
          *disc - 1, [&](auto& alt) { decode_value(alt); });
      if (!ok) fail(make_error(StatusCode::kMalformed, "bad flex union"));
    } else if constexpr (is_std_vector<T>::value) {
      if (tag != Tag::kVector) return fail(tag_mismatch());
      auto count = reader_.get_le<std::uint32_t>();
      if (!count) return fail(count.status());
      value.clear();
      // A corrupted count must not drive allocation beyond the input size.
      value.reserve(std::min<std::size_t>(*count, reader_.remaining() + 1));
      for (std::uint32_t i = 0; i < *count && status_.is_ok(); ++i) {
        decode_value(value.emplace_back());
      }
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      if (tag != Tag::kMap) return fail(tag_mismatch());
      auto count = reader_.get_le<std::uint16_t>();
      if (!count) return fail(count.status());
      value.visit_fields([this](int /*id*/, std::string_view name,
                                auto& member, IntBounds /*bounds*/ = {}) {
        this->decode_field(name, member);
      });
    }
  }

  template <typename T>
  void decode_field(std::string_view expected_key, T& value) {
    if (!status_.is_ok()) return;
    // Self-describing maps are located by key: read and compare, as a real
    // FlexBuffers reader's key lookup does.
    auto key = flex_detail::get_key(reader_);
    if (!key) return fail(key.status());
    if (*key != expected_key) {
      return fail(make_error(StatusCode::kMalformed, "flexbuf key mismatch"));
    }
    decode_value(value);
  }

  static Status tag_mismatch() {
    return make_error(StatusCode::kMalformed, "flexbuf tag mismatch");
  }

  wire::ByteReader reader_;
  Status status_;
};

}  // namespace neutrino::ser
