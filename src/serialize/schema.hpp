// Field-visitor schema layer.
//
// Every control message is a plain struct that exposes its fields through
//
//   template <class V> void visit_fields(V&& v) [const];
//
// calling v.field(id, name, member [, IntBounds]) once per field in a fixed
// order. Each wire codec is a pair of visitors (encoder / decoder), so a new
// message definition automatically works with all seven formats and a new
// format automatically covers every message — mirroring what a schema
// compiler (flatc, asn1c, protoc) would generate.
//
// Field value categories a codec must handle:
//   * integral scalars (incl. bool), with optional IntBounds for PER
//   * std::string (character string)
//   * Bytes (opaque octet string)
//   * nested FieldStruct (table / SEQUENCE)
//   * std::optional<T> of any of the above
//   * std::vector<T> of scalars or FieldStructs
//   * TaggedUnion<Alts...> (CHOICE / flatbuffers union)
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/bytes.hpp"

namespace neutrino::ser {

/// PER integer constraint; also documents the 3GPP value range of a field.
struct IntBounds {
  std::int64_t lo = 0;
  std::int64_t hi = std::int64_t{1} << 62;

  [[nodiscard]] constexpr std::uint64_t range() const {
    return static_cast<std::uint64_t>(hi - lo) + 1;
  }
};

template <typename T>
concept FieldStruct = requires(T& t) {
  { t.visit_fields([](auto&&...) {}) };
  { T::kTypeName } -> std::convertible_to<std::string_view>;
};

/// CHOICE / union over a fixed set of alternatives.
///
/// Alternatives may be integral scalars, std::string, or nested
/// FieldStructs. Scalar/string alternatives are exactly the
/// "single data element in a union" case that Neutrino's svtable
/// optimization targets (§4.4).
template <typename... Alts>
class TaggedUnion {
 public:
  static constexpr std::size_t kAlternativeCount = sizeof...(Alts);

  TaggedUnion() = default;

  template <typename T>
    requires(std::disjunction_v<std::is_same<std::decay_t<T>, Alts>...>)
  TaggedUnion(T&& value) : storage_(std::forward<T>(value)) {}  // NOLINT

  /// 0-based index of the active alternative; npos when unset.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t index() const {
    return storage_.index() == 0 ? npos : storage_.index() - 1;
  }
  [[nodiscard]] bool has_value() const { return storage_.index() != 0; }

  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(storage_);
  }
  template <typename T>
  [[nodiscard]] const T& get() const {
    return std::get<T>(storage_);
  }
  template <typename T>
  T& emplace() {
    return storage_.template emplace<T>();
  }

  /// Invoke f on the active alternative. Precondition: has_value().
  template <typename F>
  decltype(auto) visit_active(F&& f) {
    return std::visit(
        [&](auto& alt) -> void {
          if constexpr (!std::is_same_v<std::decay_t<decltype(alt)>,
                                        std::monostate>) {
            f(alt);
          }
        },
        storage_);
  }
  template <typename F>
  decltype(auto) visit_active(F&& f) const {
    return std::visit(
        [&](const auto& alt) -> void {
          if constexpr (!std::is_same_v<std::decay_t<decltype(alt)>,
                                        std::monostate>) {
            f(alt);
          }
        },
        storage_);
  }

  /// Default-construct the alternative with the given index and pass it to
  /// f (decoder path). Returns false for an out-of-range index.
  template <typename F>
  bool emplace_by_index(std::size_t index, F&& f) {
    return emplace_impl(index, std::forward<F>(f),
                        std::index_sequence_for<Alts...>{});
  }

  friend bool operator==(const TaggedUnion& a, const TaggedUnion& b) {
    return a.storage_ == b.storage_;
  }

 private:
  template <typename F, std::size_t... Is>
  bool emplace_impl(std::size_t index, F&& f, std::index_sequence<Is...>) {
    bool matched = false;
    (void)((Is == index
                ? (f(storage_.template emplace<Is + 1>()), matched = true, true)
                : false) ||
           ...);
    return matched;
  }

  std::variant<std::monostate, Alts...> storage_;
};

// ---- type-category traits used by codec visitors -------------------------

template <typename T>
struct is_tagged_union : std::false_type {};
template <typename... Alts>
struct is_tagged_union<TaggedUnion<Alts...>> : std::true_type {};

template <typename T>
struct is_optional : std::false_type {};
template <typename T>
struct is_optional<std::optional<T>> : std::true_type {};

template <typename T>
struct is_std_vector : std::false_type {};
template <typename T>
struct is_std_vector<std::vector<T>> : std::true_type {};
template <>
struct is_std_vector<Bytes> : std::false_type {};  // Bytes is opaque, not a list

template <typename T>
concept ScalarField = std::is_integral_v<T> || std::is_enum_v<T>;

template <typename T>
concept StringField = std::is_same_v<T, std::string>;

template <typename T>
concept BytesField = std::is_same_v<T, Bytes>;

/// Natural value range of a scalar type, used when no explicit IntBounds is
/// given (e.g. for CHOICE members): lets width-aware formats like PER encode
/// a u8 alternative in one byte instead of eight.
template <typename T>
constexpr IntBounds natural_bounds() {
  if constexpr (std::is_integral_v<T> && !std::is_same_v<T, bool>) {
    using U = std::make_unsigned_t<T>;
    constexpr std::uint64_t umax = std::numeric_limits<U>::max();
    constexpr std::uint64_t imax =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    return IntBounds{0,
                     static_cast<std::int64_t>(umax < imax ? umax : imax)};
  } else {
    return IntBounds{};
  }
}

/// Count the fields a struct declares (used for vtable sizing).
template <FieldStruct M>
std::size_t field_count(const M& m) {
  std::size_t n = 0;
  const_cast<M&>(m).visit_fields([&](auto&&...) { ++n; });
  return n;
}

}  // namespace neutrino::ser
