// Protocol-Buffers-style codec: tag/varint wire format.
//
// Defining cost sources reproduced from the real format: per-field tag
// bytes, varint en/decoding, and length-delimited nested messages (which
// force the encoder to serialize children into temporary buffers to learn
// their size — protoc-generated code does a sizing pass instead, with the
// same asymptotic cost). Unions map to oneof: each alternative gets its own
// field number.
#pragma once

#include "serialize/schema.hpp"
#include "serialize/wire.hpp"

namespace neutrino::ser {

namespace pb_detail {

enum WireType : std::uint8_t { kVarint = 0, kLenDelimited = 2 };

inline void put_varint(wire::ByteWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.put_u8(static_cast<std::uint8_t>(v));
}

inline Result<std::uint64_t> get_varint(wire::ByteReader& r) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    auto b = r.get_u8();
    if (!b) return b.status();
    v |= static_cast<std::uint64_t>(*b & 0x7f) << shift;
    if ((*b & 0x80) == 0) return v;
  }
  return make_error(StatusCode::kMalformed, "varint too long");
}

inline void put_tag(wire::ByteWriter& w, std::uint32_t field_number,
                    WireType type) {
  put_varint(w, (static_cast<std::uint64_t>(field_number) << 3) | type);
}

/// One parsed tag/value record from the pre-scan pass.
struct Record {
  std::uint32_t field_number = 0;
  WireType type = kVarint;
  std::uint64_t varint = 0;  // valid when type == kVarint
  BytesView payload;         // valid when type == kLenDelimited
};

inline Status scan(BytesView data, std::vector<Record>& out) {
  wire::ByteReader r(data);
  while (r.remaining() > 0) {
    auto tag = get_varint(r);
    if (!tag) return tag.status();
    Record rec;
    rec.field_number = static_cast<std::uint32_t>(*tag >> 3);
    rec.type = static_cast<WireType>(*tag & 0x7);
    if (rec.type == kVarint) {
      auto v = get_varint(r);
      if (!v) return v.status();
      rec.varint = *v;
    } else if (rec.type == kLenDelimited) {
      auto len = get_varint(r);
      if (!len) return len.status();
      auto bytes = r.get_bytes(static_cast<std::size_t>(*len));
      if (!bytes) return bytes.status();
      rec.payload = *bytes;
    } else {
      return make_error(StatusCode::kMalformed, "unsupported wire type");
    }
    out.push_back(rec);
  }
  return Status::ok();
}

}  // namespace pb_detail

class ProtobufEncoder {
 public:
  template <FieldStruct M>
  static Bytes encode(const M& msg) {
    ProtobufEncoder enc;
    enc.encode_struct(const_cast<M&>(msg));
    return std::move(enc.writer_).take();
  }

  template <typename T>
  void field(int /*id*/, std::string_view /*name*/, T& value,
             IntBounds /*bounds*/ = {}) {
    if constexpr (ScalarField<T> || std::is_same_v<T, bool>) {
      emit_scalar(next_number_++, value);
    } else if constexpr (StringField<T> || BytesField<T>) {
      emit_bytes(next_number_++, value.data(), value.size());
    } else if constexpr (is_optional<T>::value) {
      const std::uint32_t number = next_number_++;
      if (value.has_value()) emit_any(number, *value);
    } else if constexpr (is_tagged_union<T>::value) {
      // oneof: one field number per alternative; absent = nothing emitted.
      const std::uint32_t base = next_number_;
      next_number_ += std::decay_t<T>::kAlternativeCount;
      if (value.has_value()) {
        const auto number =
            base + static_cast<std::uint32_t>(value.index());
        value.visit_active([&](auto& alt) { emit_any(number, alt); });
      }
    } else if constexpr (is_std_vector<T>::value) {
      const std::uint32_t number = next_number_++;
      for (auto& element : value) emit_any(number, element);
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      emit_message(next_number_++, value);
    }
  }

 private:
  template <typename T>
  void emit_any(std::uint32_t number, T& value) {
    if constexpr (ScalarField<T> || std::is_same_v<T, bool>) {
      emit_scalar(number, value);
    } else if constexpr (StringField<T> || BytesField<T>) {
      emit_bytes(number, value.data(), value.size());
    } else if constexpr (is_std_vector<T>::value) {
      // optional<repeated> has no native protobuf form; model the idiomatic
      // workaround: a wrapper message holding the repeated field (number 1).
      ProtobufEncoder wrapper;
      for (auto& element : value) wrapper.emit_any(1, element);
      const Bytes body = std::move(wrapper.writer_).take();
      emit_bytes(number, body.data(), body.size());
    } else {
      static_assert(FieldStruct<T>, "unsupported payload type");
      emit_message(number, value);
    }
  }

  template <typename T>
  void emit_scalar(std::uint32_t number, T value) {
    pb_detail::put_tag(writer_, number, pb_detail::kVarint);
    pb_detail::put_varint(
        writer_, static_cast<std::uint64_t>(
                     static_cast<std::make_unsigned_t<
                         std::conditional_t<std::is_same_v<T, bool>, std::uint8_t,
                                            T>>>(value)));
  }

  void emit_bytes(std::uint32_t number, const void* data, std::size_t n) {
    pb_detail::put_tag(writer_, number, pb_detail::kLenDelimited);
    pb_detail::put_varint(writer_, n);
    writer_.put_bytes(BytesView(static_cast<const Byte*>(data), n));
  }

  template <FieldStruct M>
  void emit_message(std::uint32_t number, M& msg) {
    // Length prefix requires the child's size first: serialize to a
    // temporary, as hand-written protobuf code does.
    ProtobufEncoder child;
    child.encode_struct(msg);
    const Bytes body = std::move(child.writer_).take();
    emit_bytes(number, body.data(), body.size());
  }

  template <FieldStruct M>
  void encode_struct(M& msg) {
    msg.visit_fields([this](auto&&... args) { this->field(args...); });
  }

  wire::ByteWriter writer_;
  std::uint32_t next_number_ = 1;
};

class ProtobufDecoder {
 public:
  template <FieldStruct M>
  static Result<M> decode(BytesView data) {
    M msg{};
    ProtobufDecoder dec;
    dec.decode_struct(data, msg);
    if (!dec.status_.is_ok()) return dec.status_;
    return msg;
  }

 private:
  template <FieldStruct M>
  void decode_struct(BytesView data, M& msg) {
    std::vector<pb_detail::Record> records;
    if (auto st = pb_detail::scan(data, records); !st.is_ok()) {
      status_ = st;
      return;
    }
    std::uint32_t next_number = 1;
    std::size_t cursor = 0;  // records arrive in schema order
    msg.visit_fields([&](int /*id*/, std::string_view /*name*/, auto& value,
                         IntBounds /*bounds*/ = {}) {
      this->decode_field(records, cursor, next_number, value);
    });
  }

  /// Find the next record for `number` at or after the cursor.
  static const pb_detail::Record* find(
      const std::vector<pb_detail::Record>& records, std::size_t& cursor,
      std::uint32_t number) {
    for (std::size_t i = cursor; i < records.size(); ++i) {
      if (records[i].field_number == number) {
        cursor = i + 1;
        return &records[i];
      }
    }
    return nullptr;
  }

  template <typename T>
  void decode_field(const std::vector<pb_detail::Record>& records,
                    std::size_t& cursor, std::uint32_t& next_number,
                    T& value) {
    if (!status_.is_ok()) return;
    if constexpr (ScalarField<T> || std::is_same_v<T, bool>) {
      const std::uint32_t number = next_number++;
      if (const auto* rec = find(records, cursor, number)) {
        value = static_cast<T>(rec->varint);
      }
    } else if constexpr (StringField<T>) {
      const std::uint32_t number = next_number++;
      if (const auto* rec = find(records, cursor, number)) {
        value.assign(reinterpret_cast<const char*>(rec->payload.data()),
                     rec->payload.size());
      }
    } else if constexpr (BytesField<T>) {
      const std::uint32_t number = next_number++;
      if (const auto* rec = find(records, cursor, number)) {
        value.assign(rec->payload.begin(), rec->payload.end());
      }
    } else if constexpr (is_optional<T>::value) {
      const std::uint32_t number = next_number++;
      std::size_t probe = cursor;
      if (const auto* rec = find(records, probe, number)) {
        cursor = probe;
        assign_payload(*rec, value.emplace());
      } else {
        value.reset();
      }
    } else if constexpr (is_tagged_union<T>::value) {
      const std::uint32_t base = next_number;
      next_number += std::decay_t<T>::kAlternativeCount;
      for (std::size_t alt = 0; alt < std::decay_t<T>::kAlternativeCount;
           ++alt) {
        std::size_t probe = cursor;
        if (const auto* rec =
                find(records, probe, base + static_cast<std::uint32_t>(alt))) {
          cursor = probe;
          value.emplace_by_index(
              alt, [&](auto& member) { assign_payload(*rec, member); });
          break;
        }
      }
    } else if constexpr (is_std_vector<T>::value) {
      const std::uint32_t number = next_number++;
      value.clear();
      std::size_t probe = cursor;
      while (const auto* rec = find(records, probe, number)) {
        assign_payload(*rec, value.emplace_back());
        cursor = probe;
      }
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      const std::uint32_t number = next_number++;
      if (const auto* rec = find(records, cursor, number)) {
        decode_struct(rec->payload, value);
      }
    }
  }

  template <typename T>
  void assign_payload(const pb_detail::Record& rec, T& out) {
    if constexpr (ScalarField<T> || std::is_same_v<T, bool>) {
      out = static_cast<T>(rec.varint);
    } else if constexpr (StringField<T>) {
      out.assign(reinterpret_cast<const char*>(rec.payload.data()),
                 rec.payload.size());
    } else if constexpr (BytesField<T>) {
      out.assign(rec.payload.begin(), rec.payload.end());
    } else if constexpr (is_std_vector<T>::value) {
      // Unwrap the optional<repeated> wrapper message (see emit_any).
      std::vector<pb_detail::Record> records;
      if (auto st = pb_detail::scan(rec.payload, records); !st.is_ok()) {
        status_ = st;
        return;
      }
      out.clear();
      for (const auto& element_rec : records) {
        if (element_rec.field_number == 1) {
          assign_payload(element_rec, out.emplace_back());
        }
      }
    } else {
      static_assert(FieldStruct<T>, "unsupported payload type");
      decode_struct(rec.payload, out);
    }
  }

  Status status_;
};

}  // namespace neutrino::ser
