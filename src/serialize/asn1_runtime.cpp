#include "serialize/asn1_runtime.hpp"

#include <bit>
#include <memory>

namespace neutrino::ser::asn1rt {
namespace {

constexpr unsigned bits_for_range(std::uint64_t range) {
  return range <= 1 ? 0 : static_cast<unsigned>(std::bit_width(range - 1));
}

// ---- length determinant (aligned PER, 1- and 2-byte forms) ---------------

void encode_length_impl(wire::BitWriter& w, std::size_t n) {
  w.align();
  if (n < 128) {
    w.put_aligned_u8(static_cast<std::uint8_t>(n));
  } else {
    w.put_aligned_u8(static_cast<std::uint8_t>(0x80 | (n >> 8)));
    w.put_aligned_u8(static_cast<std::uint8_t>(n & 0xff));
  }
}

std::size_t decode_length_impl(wire::BitReader& r, Status& status) {
  auto first = r.get_aligned_u8();
  if (!first) {
    status = first.status();
    return 0;
  }
  if ((*first & 0x80) == 0) return *first;
  auto second = r.get_aligned_u8();
  if (!second) {
    status = second.status();
    return 0;
  }
  return (static_cast<std::size_t>(*first & 0x3f) << 8) | *second;
}

// ---- constrained whole number ---------------------------------------------

void encode_int_impl(wire::BitWriter& w, IntBounds bounds, std::int64_t v) {
  const auto offset = static_cast<std::uint64_t>(v - bounds.lo);
  const unsigned nbits = bits_for_range(bounds.range());
  if (nbits == 0) return;  // single-valued range encodes to nothing
  if (nbits <= 8) {
    w.put_bits(offset, nbits);
  } else {
    const unsigned nbytes = (nbits + 7) / 8;
    w.align();
    for (unsigned i = nbytes; i-- > 0;) {
      w.put_aligned_u8(static_cast<std::uint8_t>(offset >> (8 * i)));
    }
  }
}

std::int64_t decode_int_impl(wire::BitReader& r, IntBounds bounds,
                             Status& status) {
  const unsigned nbits = bits_for_range(bounds.range());
  if (nbits == 0) return bounds.lo;
  // asn1c's NativeInteger decoder callocs an intermediate long and frees it
  // after the caller copies the value out; reproduce that allocation.
  auto intermediate = std::make_unique<std::int64_t>();
  std::uint64_t offset = 0;
  if (nbits <= 8) {
    auto v = r.get_bits(nbits);
    if (!v) {
      status = v.status();
      return 0;
    }
    offset = *v;
  } else {
    const unsigned nbytes = (nbits + 7) / 8;
    if (auto st = r.align(); !st.is_ok()) {
      status = st;
      return 0;
    }
    for (unsigned i = 0; i < nbytes; ++i) {
      auto b = r.get_aligned_u8();
      if (!b) {
        status = b.status();
        return 0;
      }
      offset = (offset << 8) | *b;
    }
  }
  *intermediate = bounds.lo + static_cast<std::int64_t>(offset);
  return *intermediate;
}

// ---- octet string ----------------------------------------------------------

void encode_octets_impl(wire::BitWriter& w, const Byte* data, std::size_t n) {
  encode_length_impl(w, n);
  w.put_aligned_bytes(BytesView(data, n));
}

Bytes* decode_octets_impl(wire::BitReader& r, Status& status) {
  const std::size_t n = decode_length_impl(r, status);
  if (!status.is_ok()) return nullptr;
  auto bytes = r.get_aligned_bytes(n);
  if (!bytes) {
    status = bytes.status();
    return nullptr;
  }
  // asn1c hands back an OCTET_STRING_t with its own heap buffer which the
  // application then copies into its structures; model both steps.
  return new Bytes(bytes->begin(), bytes->end());
}

// ---- boolean ----------------------------------------------------------------

void encode_bool_impl(wire::BitWriter& w, bool v) { w.put_bit(v); }

bool decode_bool_impl(wire::BitReader& r, Status& status) {
  auto bit = r.get_bit();
  if (!bit) {
    status = bit.status();
    return false;
  }
  return *bit;
}

constexpr PerPrimitiveOps kOps = {
    .decode_constrained_int = decode_int_impl,
    .encode_constrained_int = encode_int_impl,
    .decode_octet_string = decode_octets_impl,
    .encode_octet_string = encode_octets_impl,
    .decode_bool = decode_bool_impl,
    .encode_bool = encode_bool_impl,
    .decode_length = decode_length_impl,
    .encode_length = encode_length_impl,
};

}  // namespace

const PerPrimitiveOps& per_ops() { return kOps; }

}  // namespace neutrino::ser::asn1rt
