// FlatBuffers-compatible codec, built from scratch, plus Neutrino's
// "Optimized FlatBuffers" (§4.4).
//
// Faithful wire-format mechanics:
//   * buffer built back-to-front; root uoffset32 at the front
//   * tables: leading soffset32 to a vtable; scalars inline; strings,
//     vectors, sub-tables and unions referenced by forward uoffset32
//   * vtables: [u16 vtable_bytes][u16 table_bytes][u16 slot...]; deduplicated
//   * scalars aligned to their size; buffer end-padded so alignment holds
//
// Standard-mode unions follow flatc semantics: a scalar or string union
// member must be wrapped in a synthetic single-field table, costing a
// 6-byte vtable + 4-byte soffset (scalar) or +4-byte uoffset (string).
// Optimized mode implements the paper's svtable type: the union value slot
// points directly at the bare scalar / string, saving exactly the 10 / 14
// bytes the paper reports, and skipping one indirection on decode.
#pragma once

#include <cassert>
#include <cstring>
#include <span>
#include <string>
#include <unordered_map>

#include "serialize/schema.hpp"
#include "serialize/wire.hpp"

namespace neutrino::ser {

enum class FlatBufMode {
  kStandard,
  kOptimized,  // svtable single-field unions
};

namespace fb_detail {

// Offset-from-buffer-end coordinates ("eoff"): the first byte pushed has the
// largest position, so uoffset = pos_target - pos_field = eoff_field -
// eoff_target, matching the standard forward-uoffset semantics.
class BackwardBuffer {
 public:
  BackwardBuffer() : buf_(kInitialCapacity), head_(kInitialCapacity) {}

  [[nodiscard]] std::size_t written() const { return buf_.size() - head_; }

  void push_bytes(const void* data, std::size_t n) {
    if (n == 0) return;  // empty payloads may carry a null pointer (UB to memcpy)
    make_room(n);
    head_ -= n;
    std::memcpy(buf_.data() + head_, data, n);
  }

  void push_zeros(std::size_t n) {
    make_room(n);
    head_ -= n;
    std::memset(buf_.data() + head_, 0, n);
  }

  template <typename T>
  void push_scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    push_bytes(&v, sizeof(T));  // host order; we only target little-endian
  }

  /// Pad so that after pushing `len` more bytes the write head sits at an
  /// eoff multiple of `alignment`.
  void pre_align(std::size_t len, std::size_t alignment) {
    minalign_ = std::max(minalign_, alignment);
    const std::size_t rem = (written() + len) % alignment;
    if (rem != 0) push_zeros(alignment - rem);
  }

  [[nodiscard]] std::size_t minalign() const { return minalign_; }

  /// Mutable view of `n` bytes just pushed, starting at the given eoff.
  [[nodiscard]] Byte* data_at(std::size_t eoff) {
    return buf_.data() + (buf_.size() - eoff);
  }
  [[nodiscard]] const Byte* data_at(std::size_t eoff) const {
    return buf_.data() + (buf_.size() - eoff);
  }

  Bytes finish() && {
    // Pad the total size to minalign so pos = N - eoff keeps every
    // eoff-aligned item position-aligned as well.
    while (written() % minalign_ != 0) push_zeros(1);
    return Bytes(buf_.begin() + static_cast<std::ptrdiff_t>(head_),
                 buf_.end());
  }

 private:
  static constexpr std::size_t kInitialCapacity = 512;

  void make_room(std::size_t n) {
    if (head_ >= n) return;
    const std::size_t old_size = buf_.size();
    const std::size_t grow = std::max(old_size, n);
    Bytes bigger(old_size + grow);
    std::memcpy(bigger.data() + head_ + grow, buf_.data() + head_,
                old_size - head_);
    buf_ = std::move(bigger);
    head_ += grow;
  }

  Bytes buf_;
  std::size_t head_;
  std::size_t minalign_ = 1;
};

/// A field pending placement in the current table.
struct PendingField {
  std::uint16_t slot = 0;             // vtable slot index
  std::uint8_t size = 0;              // inline size in bytes
  std::uint8_t align = 1;             // inline alignment
  bool is_ref = false;                // true: `ref_eoff` target, else raw value
  std::uint16_t inline_off = 0;       // assigned at table layout time
  std::uint64_t scalar_bits = 0;      // raw little-endian scalar payload
  std::uint32_t ref_eoff = 0;         // eoff of referenced child
};

}  // namespace fb_detail

class FlatBufEncoder {
 public:
  template <FieldStruct M>
  static Bytes encode(const M& msg, FlatBufMode mode) {
    FlatBufEncoder enc(mode);
    const std::uint32_t root = enc.encode_table(const_cast<M&>(msg));
    // Align so the root uoffset lands at position 0 of the final buffer
    // with no front padding needed afterwards (pos = N - eoff stays valid).
    enc.buf_.pre_align(4, std::max<std::size_t>(4, enc.buf_.minalign()));
    enc.buf_.push_scalar<std::uint32_t>(
        static_cast<std::uint32_t>(enc.buf_.written() + 4 - root));
    return std::move(enc.buf_).finish();
  }

  // Visitor entry point.
  template <typename T>
  void field(int /*id*/, std::string_view /*name*/, T& value,
             IntBounds /*bounds*/ = {}) {
    if constexpr (ScalarField<T> || std::is_same_v<T, bool>) {
      add_scalar(next_slot_++, value);
    } else if constexpr (StringField<T> || BytesField<T>) {
      add_ref(next_slot_++, encode_string_like(value));
    } else if constexpr (is_optional<T>::value) {
      const std::uint16_t slot = next_slot_++;
      if (value.has_value()) encode_optional_payload(slot, *value);
    } else if constexpr (is_tagged_union<T>::value) {
      encode_union(value);
    } else if constexpr (is_std_vector<T>::value) {
      add_ref(next_slot_++, encode_vector(value));
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      add_ref(next_slot_++, encode_table(value));
    }
  }

 private:
  explicit FlatBufEncoder(FlatBufMode mode) : mode_(mode) {}

  template <typename T>
  void encode_optional_payload(std::uint16_t slot, T& inner) {
    if constexpr (ScalarField<T> || std::is_same_v<T, bool>) {
      add_scalar(slot, inner);
    } else if constexpr (StringField<T> || BytesField<T>) {
      add_ref(slot, encode_string_like(inner));
    } else if constexpr (is_std_vector<T>::value) {
      add_ref(slot, encode_vector(inner));
    } else {
      static_assert(FieldStruct<T>, "unsupported optional payload");
      add_ref(slot, encode_table(inner));
    }
  }

  template <typename T>
  void add_scalar(std::uint16_t slot, T value) {
    fb_detail::PendingField f;
    f.slot = slot;
    f.size = static_cast<std::uint8_t>(
        std::is_same_v<T, bool> ? 1 : sizeof(T));
    f.align = f.size;
    std::uint64_t bits = 0;
    if constexpr (std::is_same_v<T, bool>) {
      bits = value ? 1 : 0;
    } else {
      std::memcpy(&bits, &value, sizeof(T));
    }
    f.scalar_bits = bits;
    fields_.push_back(f);
  }

  void add_ref(std::uint16_t slot, std::uint32_t target_eoff) {
    fb_detail::PendingField f;
    f.slot = slot;
    f.size = 4;
    f.align = 4;
    f.is_ref = true;
    f.ref_eoff = target_eoff;
    fields_.push_back(f);
  }

  template <typename S>
  std::uint32_t encode_string_like(const S& s) {
    // Alignment padding must precede the payload in a back-to-front
    // builder, or it would land between the length field and the data.
    buf_.pre_align(s.size() + 1 + 4, 4);
    buf_.push_zeros(1);  // NUL terminator
    buf_.push_bytes(s.data(), s.size());
    buf_.push_scalar<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    return static_cast<std::uint32_t>(buf_.written());
  }

  template <typename T>
  std::uint32_t encode_vector(std::vector<T>& vec) {
    // Pad before the elements so the 4-byte count can sit immediately
    // below them; aligning element 0 to its size also 4-aligns the count.
    if constexpr (ScalarField<T>) {
      buf_.pre_align(vec.size() * sizeof(T),
                     std::max<std::size_t>(4, sizeof(T)));
      for (std::size_t i = vec.size(); i-- > 0;) buf_.push_scalar<T>(vec[i]);
    } else {
      static_assert(FieldStruct<T>, "unsupported vector element");
      std::vector<std::uint32_t> child_eoffs(vec.size());
      for (std::size_t i = 0; i < vec.size(); ++i) {
        child_eoffs[i] = encode_table(vec[i]);
      }
      buf_.pre_align(vec.size() * 4, 4);
      for (std::size_t i = vec.size(); i-- > 0;) {
        const auto slot_eoff =
            static_cast<std::uint32_t>(buf_.written() + 4);
        buf_.push_scalar<std::uint32_t>(slot_eoff - child_eoffs[i]);
      }
    }
    buf_.push_scalar<std::uint32_t>(static_cast<std::uint32_t>(vec.size()));
    return static_cast<std::uint32_t>(buf_.written());
  }

  template <typename U>
  void encode_union(U& u) {
    const std::uint16_t type_slot = next_slot_++;
    const std::uint16_t value_slot = next_slot_++;
    if (!u.has_value()) return;
    add_scalar(type_slot,
               static_cast<std::uint8_t>(u.index() + 1));  // 0 = NONE
    std::uint32_t target = 0;
    u.visit_active([&](auto& alt) {
      using Alt = std::decay_t<decltype(alt)>;
      if constexpr (FieldStruct<Alt>) {
        target = encode_table(alt);
      } else if (mode_ == FlatBufMode::kOptimized) {
        // svtable: point straight at the bare value.
        if constexpr (StringField<Alt> || BytesField<Alt>) {
          target = encode_string_like(alt);
        } else {
          buf_.pre_align(sizeof(Alt), sizeof(Alt));
          buf_.push_scalar<Alt>(alt);
          target = static_cast<std::uint32_t>(buf_.written());
        }
      } else {
        // Standard flatc: wrap the single value in a synthetic table.
        target = encode_wrapper_table(alt);
      }
    });
    add_ref(value_slot, target);
  }

  template <typename Alt>
  std::uint32_t encode_wrapper_table(Alt& alt) {
    const Frame frame = push_frame();
    if constexpr (StringField<Alt> || BytesField<Alt>) {
      add_ref(0, encode_string_like(alt));
    } else {
      add_scalar(0, alt);
    }
    return end_table(frame);
  }

  template <FieldStruct M>
  std::uint32_t encode_table(M& msg) {
    const Frame frame = push_frame();
    msg.visit_fields([this](auto&&... args) { this->field(args...); });
    return end_table(frame);
  }

  /// Nested tables reuse one pending-field vector with frame bases instead
  /// of per-table vector allocations (the builder is on the hot path of
  /// every simulated control message).
  struct Frame {
    std::size_t base;
    std::uint16_t saved_slot;
  };

  Frame push_frame() {
    const Frame frame{fields_.size(), next_slot_};
    next_slot_ = 0;
    return frame;
  }

  std::uint32_t end_table(Frame frame) {
    const std::span<fb_detail::PendingField> fields(
        fields_.data() + frame.base, fields_.size() - frame.base);

    // Layout the inline area: 4-byte soffset, then fields in declaration
    // order, each aligned. The vtable records the resulting byte offsets.
    std::uint32_t cursor = 4;
    std::uint32_t max_align = 4;
    std::uint16_t max_slot = 0;
    for (auto& f : fields) {
      cursor = align_up(cursor, f.align);
      f.inline_off = static_cast<std::uint16_t>(cursor);
      cursor += f.size;
      max_align = std::max<std::uint32_t>(max_align, f.align);
      max_slot = std::max(max_slot, f.slot);
    }
    const std::uint32_t table_size = align_up(cursor, 4);
    const std::uint16_t slot_count =
        fields.empty() ? 0 : static_cast<std::uint16_t>(max_slot + 1);

    // Serialize the vtable into a stack buffer, then deduplicate it the
    // way the real FlatBufferBuilder does: memcmp against the vtables
    // already written into the buffer (few unique shapes per message).
    assert(slot_count <= kMaxSlots);
    const std::uint16_t vtable_bytes =
        static_cast<std::uint16_t>(4 + 2 * slot_count);
    Byte vt[4 + 2 * kMaxSlots] = {};
    write_u16(vt, 0, vtable_bytes);
    write_u16(vt, 2, static_cast<std::uint16_t>(table_size));
    for (const auto& f : fields) {
      write_u16(vt, 4 + 2u * f.slot, f.inline_off);
    }
    std::uint32_t vt_eoff = 0;
    for (const std::uint32_t candidate : written_vtables_) {
      if (candidate < vtable_bytes) continue;  // would read past buffer end
      if (std::memcmp(buf_.data_at(candidate), vt, vtable_bytes) == 0) {
        vt_eoff = candidate;
        break;
      }
    }
    if (vt_eoff == 0) {
      buf_.pre_align(vtable_bytes, 2);
      buf_.push_bytes(vt, vtable_bytes);
      vt_eoff = static_cast<std::uint32_t>(buf_.written());
      written_vtables_.push_back(vt_eoff);
    }

    // Emit the table inline area directly into the buffer.
    buf_.pre_align(table_size, max_align);
    buf_.push_zeros(table_size);
    const auto table_eoff = static_cast<std::uint32_t>(buf_.written());
    Byte* area = buf_.data_at(table_eoff);
    const std::int32_t soffset = static_cast<std::int32_t>(vt_eoff) -
                                 static_cast<std::int32_t>(table_eoff);
    std::memcpy(area, &soffset, 4);
    for (const auto& f : fields) {
      if (f.is_ref) {
        const std::uint32_t field_eoff = table_eoff - f.inline_off;
        const std::uint32_t uoffset = field_eoff - f.ref_eoff;
        std::memcpy(area + f.inline_off, &uoffset, 4);
      } else {
        std::memcpy(area + f.inline_off, &f.scalar_bits, f.size);
      }
    }

    fields_.resize(frame.base);
    next_slot_ = frame.saved_slot;
    return table_eoff;
  }

  static constexpr std::size_t kMaxSlots = 72;  // >= widest message (2/union)

  static constexpr std::uint32_t align_up(std::uint32_t v, std::uint32_t a) {
    return (v + a - 1) / a * a;
  }
  static void write_u16(Byte* s, std::size_t off, std::uint16_t v) {
    s[off] = static_cast<Byte>(v & 0xff);
    s[off + 1] = static_cast<Byte>(v >> 8);
  }

  fb_detail::BackwardBuffer buf_;
  std::vector<fb_detail::PendingField> fields_;
  std::uint16_t next_slot_ = 0;
  FlatBufMode mode_;
  std::vector<std::uint32_t> written_vtables_;
};

/// Random-access view of one encoded table (the flatc accessor model:
/// every read is a vtable slot lookup plus a direct load, no parse pass).
class FlatTableRef {
 public:
  FlatTableRef(BytesView buf, std::uint32_t pos) : buf_(buf), pos_(pos) {}

  static Result<FlatTableRef> root(BytesView buf) {
    if (buf.size() < 4) {
      return make_error(StatusCode::kMalformed, "flatbuffer too small");
    }
    const std::uint32_t uoffset = read_scalar<std::uint32_t>(buf, 0);
    if (uoffset >= buf.size()) {
      return make_error(StatusCode::kMalformed, "bad root offset");
    }
    return FlatTableRef(buf, uoffset);
  }

  /// Byte position of a field, or 0 when absent.
  [[nodiscard]] std::uint32_t field_pos(std::uint16_t slot) const {
    const auto soffset = read_scalar<std::int32_t>(buf_, pos_);
    const auto vt_pos =
        static_cast<std::uint32_t>(static_cast<std::int64_t>(pos_) - soffset);
    const std::uint16_t vt_bytes = read_scalar<std::uint16_t>(buf_, vt_pos);
    const std::uint16_t slot_count =
        static_cast<std::uint16_t>((vt_bytes - 4) / 2);
    if (slot >= slot_count) return 0;
    const std::uint16_t off =
        read_scalar<std::uint16_t>(buf_, vt_pos + 4 + 2u * slot);
    return off == 0 ? 0 : pos_ + off;
  }

  template <typename T>
  [[nodiscard]] T scalar(std::uint16_t slot, T default_value = T{}) const {
    const std::uint32_t p = field_pos(slot);
    if (p == 0) return default_value;
    if constexpr (std::is_same_v<T, bool>) {
      return buf_[p] != 0;
    } else {
      return read_scalar<T>(buf_, p);
    }
  }

  [[nodiscard]] bool has_field(std::uint16_t slot) const {
    return field_pos(slot) != 0;
  }

  [[nodiscard]] std::uint32_t indirect(std::uint32_t field_position) const {
    return field_position + read_scalar<std::uint32_t>(buf_, field_position);
  }

  [[nodiscard]] std::string_view string_at(std::uint32_t string_pos) const {
    const auto len = read_scalar<std::uint32_t>(buf_, string_pos);
    return {reinterpret_cast<const char*>(buf_.data()) + string_pos + 4, len};
  }

  [[nodiscard]] FlatTableRef table_at(std::uint32_t table_pos) const {
    return FlatTableRef(buf_, table_pos);
  }

  [[nodiscard]] BytesView buffer() const { return buf_; }

  template <typename T>
  static T read_scalar(BytesView buf, std::uint32_t pos) {
    T v;
    std::memcpy(&v, buf.data() + pos, sizeof(T));
    return v;
  }

 private:
  BytesView buf_;
  std::uint32_t pos_;
};

/// Accessor-style consumption of an encoded buffer: visit every field *in
/// place* — vtable lookup + direct load, string/vector payloads read as
/// views — without materializing a C++ struct. This is how FlatBuffers is
/// actually used (flatc generates accessors, not parsers), and it is what
/// the paper's decode measurements compare against sequential formats that
/// must parse-and-allocate. Returns a checksum so the compiler cannot
/// discard the reads.
class FlatBufAccessor {
 public:
  template <FieldStruct M>
  static Result<std::uint64_t> access_all(BytesView data, FlatBufMode mode) {
    auto root = FlatTableRef::root(data);
    if (!root) return root.status();
    FlatBufAccessor acc(mode);
    static thread_local M schema_probe{};  // drives the field walk; not read
    acc.walk_table(*root, schema_probe);
    return acc.checksum_;
  }

 private:
  explicit FlatBufAccessor(FlatBufMode mode) : mode_(mode) {}

  template <FieldStruct M>
  void walk_table(const FlatTableRef& table, M& probe) {
    std::uint16_t slot = 0;
    probe.visit_fields([&](int /*id*/, std::string_view /*name*/,
                           auto& member, IntBounds /*bounds*/ = {}) {
      this->walk_field(table, slot, member);
    });
  }

  void consume(std::string_view payload) {
    std::uint64_t sum = 0;
    for (const char c : payload) sum += static_cast<unsigned char>(c);
    checksum_ += sum + payload.size();
  }

  template <typename T>
  void walk_field(const FlatTableRef& table, std::uint16_t& slot, T& probe) {
    if constexpr (ScalarField<T> || std::is_same_v<T, bool>) {
      checksum_ += static_cast<std::uint64_t>(table.scalar<T>(slot++));
    } else if constexpr (StringField<T> || BytesField<T>) {
      const std::uint32_t p = table.field_pos(slot++);
      if (p != 0) consume(table.string_at(table.indirect(p)));
    } else if constexpr (is_optional<T>::value) {
      using Inner = typename T::value_type;
      const std::uint16_t my_slot = slot++;
      const std::uint32_t p = table.field_pos(my_slot);
      if (p == 0) return;
      if constexpr (ScalarField<Inner> || std::is_same_v<Inner, bool>) {
        checksum_ += static_cast<std::uint64_t>(table.scalar<Inner>(my_slot));
      } else if constexpr (StringField<Inner> || BytesField<Inner>) {
        consume(table.string_at(table.indirect(p)));
      } else if constexpr (is_std_vector<Inner>::value) {
        static thread_local Inner vec_probe{};
        walk_vector_at(table, table.indirect(p), vec_probe);
      } else {
        static thread_local Inner probe_inner{};
        walk_table(table.table_at(table.indirect(p)), probe_inner);
      }
    } else if constexpr (is_tagged_union<T>::value) {
      walk_union(table, slot, probe);
    } else if constexpr (is_std_vector<T>::value) {
      const std::uint32_t p = table.field_pos(slot++);
      if (p != 0) walk_vector_at(table, table.indirect(p), probe);
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      const std::uint32_t p = table.field_pos(slot++);
      if (p != 0) walk_table(table.table_at(table.indirect(p)), probe);
    }
  }

  template <typename U>
  void walk_union(const FlatTableRef& table, std::uint16_t& slot, U& probe) {
    const std::uint16_t type_slot = slot++;
    const std::uint16_t value_slot = slot++;
    const auto type = table.scalar<std::uint8_t>(type_slot);
    if (type == 0) return;
    const std::uint32_t p = table.field_pos(value_slot);
    if (p == 0) return;
    const std::uint32_t target = table.indirect(p);
    probe.emplace_by_index(type - 1, [&](auto& alt) {
      using Alt = std::decay_t<decltype(alt)>;
      if constexpr (FieldStruct<Alt>) {
        walk_table(table.table_at(target), alt);
      } else if (mode_ == FlatBufMode::kOptimized) {
        if constexpr (StringField<Alt> || BytesField<Alt>) {
          consume(table.string_at(target));
        } else {
          checksum_ += static_cast<std::uint64_t>(
              FlatTableRef::read_scalar<Alt>(table.buffer(), target));
        }
      } else {
        const FlatTableRef wrapper = table.table_at(target);
        if constexpr (StringField<Alt> || BytesField<Alt>) {
          const std::uint32_t wp = wrapper.field_pos(0);
          if (wp != 0) consume(wrapper.string_at(wrapper.indirect(wp)));
        } else {
          checksum_ += static_cast<std::uint64_t>(wrapper.scalar<Alt>(0));
        }
      }
    });
  }

  template <typename Vec>
  void walk_vector_at(const FlatTableRef& table, std::uint32_t vec_pos,
                      Vec& /*probe*/) {
    using Element = typename Vec::value_type;
    const auto count =
        FlatTableRef::read_scalar<std::uint32_t>(table.buffer(), vec_pos);
    for (std::uint32_t i = 0; i < count; ++i) {
      if constexpr (ScalarField<Element>) {
        checksum_ += static_cast<std::uint64_t>(
            FlatTableRef::read_scalar<Element>(
                table.buffer(),
                vec_pos + 4 +
                    i * static_cast<std::uint32_t>(sizeof(Element))));
      } else {
        static_assert(FieldStruct<Element>, "unsupported vector element");
        static thread_local Element element_probe{};
        const std::uint32_t slot_pos = vec_pos + 4 + i * 4;
        walk_table(table.table_at(table.indirect(slot_pos)), element_probe);
      }
    }
  }

  std::uint64_t checksum_ = 0;
  FlatBufMode mode_;
};

class FlatBufDecoder {
 public:
  template <FieldStruct M>
  static Result<M> decode(BytesView data, FlatBufMode mode) {
    auto root = FlatTableRef::root(data);
    if (!root) return root.status();
    M msg{};
    FlatBufDecoder dec(mode);
    dec.decode_table(*root, msg);
    if (!dec.status_.is_ok()) return dec.status_;
    return msg;
  }

 private:
  explicit FlatBufDecoder(FlatBufMode mode) : mode_(mode) {}

  template <FieldStruct M>
  void decode_table(const FlatTableRef& table, M& msg) {
    std::uint16_t slot = 0;
    msg.visit_fields([&](int /*id*/, std::string_view /*name*/, auto& value,
                         IntBounds /*bounds*/ = {}) {
      this->decode_field(table, slot, value);
    });
  }

  template <typename T>
  void decode_field(const FlatTableRef& table, std::uint16_t& slot, T& value) {
    if (!status_.is_ok()) return;
    if constexpr (ScalarField<T> || std::is_same_v<T, bool>) {
      value = table.scalar<T>(slot++);
    } else if constexpr (StringField<T>) {
      const std::uint32_t p = table.field_pos(slot++);
      if (p != 0) value = std::string(table.string_at(table.indirect(p)));
    } else if constexpr (BytesField<T>) {
      const std::uint32_t p = table.field_pos(slot++);
      if (p != 0) {
        const auto sv = table.string_at(table.indirect(p));
        value.assign(sv.begin(), sv.end());
      }
    } else if constexpr (is_optional<T>::value) {
      decode_optional(table, slot, value);
    } else if constexpr (is_tagged_union<T>::value) {
      decode_union(table, slot, value);
    } else if constexpr (is_std_vector<T>::value) {
      decode_vector(table, slot, value);
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      const std::uint32_t p = table.field_pos(slot++);
      if (p != 0) decode_table(table.table_at(table.indirect(p)), value);
    }
  }

  template <typename Opt>
  void decode_optional(const FlatTableRef& table, std::uint16_t& slot,
                       Opt& value) {
    using Inner = typename Opt::value_type;
    const std::uint16_t my_slot = slot++;
    const std::uint32_t p = table.field_pos(my_slot);
    if (p == 0) {
      value.reset();
      return;
    }
    if constexpr (ScalarField<Inner> || std::is_same_v<Inner, bool>) {
      value = table.scalar<Inner>(my_slot);
    } else if constexpr (StringField<Inner>) {
      value = std::string(table.string_at(table.indirect(p)));
    } else if constexpr (BytesField<Inner>) {
      const auto sv = table.string_at(table.indirect(p));
      value.emplace(sv.begin(), sv.end());
    } else if constexpr (is_std_vector<Inner>::value) {
      decode_vector_at(table, table.indirect(p), value.emplace());
    } else {
      static_assert(FieldStruct<Inner>, "unsupported optional payload");
      decode_table(table.table_at(table.indirect(p)), value.emplace());
    }
  }

  template <typename U>
  void decode_union(const FlatTableRef& table, std::uint16_t& slot, U& u) {
    const std::uint16_t type_slot = slot++;
    const std::uint16_t value_slot = slot++;
    const auto type = table.scalar<std::uint8_t>(type_slot);
    if (type == 0) return;  // NONE
    const std::uint32_t p = table.field_pos(value_slot);
    if (p == 0) {
      status_ = make_error(StatusCode::kMalformed, "union type without value");
      return;
    }
    const std::uint32_t target = table.indirect(p);
    const bool ok = u.emplace_by_index(type - 1, [&](auto& alt) {
      using Alt = std::decay_t<decltype(alt)>;
      if constexpr (FieldStruct<Alt>) {
        decode_table(table.table_at(target), alt);
      } else if (mode_ == FlatBufMode::kOptimized) {
        if constexpr (StringField<Alt>) {
          alt = std::string(table.string_at(target));
        } else if constexpr (BytesField<Alt>) {
          const auto sv = table.string_at(target);
          alt.assign(sv.begin(), sv.end());
        } else {
          alt = FlatTableRef::read_scalar<Alt>(table.buffer(), target);
        }
      } else {
        // Standard mode: unwrap the synthetic single-field table.
        const FlatTableRef wrapper = table.table_at(target);
        if constexpr (StringField<Alt>) {
          const std::uint32_t wp = wrapper.field_pos(0);
          if (wp != 0) alt = std::string(wrapper.string_at(wrapper.indirect(wp)));
        } else if constexpr (BytesField<Alt>) {
          const std::uint32_t wp = wrapper.field_pos(0);
          if (wp != 0) {
            const auto sv = wrapper.string_at(wrapper.indirect(wp));
            alt.assign(sv.begin(), sv.end());
          }
        } else {
          alt = wrapper.scalar<Alt>(0);
        }
      }
    });
    if (!ok) {
      status_ = make_error(StatusCode::kMalformed, "bad union type");
    }
  }

  template <typename Vec>
  void decode_vector(const FlatTableRef& table, std::uint16_t& slot,
                     Vec& value) {
    const std::uint32_t p = table.field_pos(slot++);
    value.clear();
    if (p == 0) return;
    decode_vector_at(table, table.indirect(p), value);
  }

  template <typename Vec>
  void decode_vector_at(const FlatTableRef& table, std::uint32_t vec_pos,
                        Vec& value) {
    using Element = typename Vec::value_type;
    const auto count =
        FlatTableRef::read_scalar<std::uint32_t>(table.buffer(), vec_pos);
    value.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      if constexpr (ScalarField<Element>) {
        value.push_back(FlatTableRef::read_scalar<Element>(
            table.buffer(),
            vec_pos + 4 + i * static_cast<std::uint32_t>(sizeof(Element))));
      } else {
        static_assert(FieldStruct<Element>, "unsupported vector element");
        const std::uint32_t slot_pos = vec_pos + 4 + i * 4;
        decode_table(table.table_at(table.indirect(slot_pos)),
                     value.emplace_back());
      }
    }
  }

  Status status_;
  FlatBufMode mode_;
};

}  // namespace neutrino::ser
