// LCM-style codec: big-endian sequential encoding, no alignment.
//
// Lightweight Communications and Marshalling has no native unions or
// unsigned integers (the paper cites exactly this as the reason it cannot
// express cellular control messages, §4.1/§4.4). We emulate what an LCM
// user must hand-roll: an int8 presence flag for optionals, an int32
// discriminant plus the active member for unions, and unsigned fields
// carried in the same-width signed type (wire-identical). Strings are
// int32 length including NUL, characters, NUL.
#pragma once

#include "serialize/schema.hpp"
#include "serialize/wire.hpp"

namespace neutrino::ser {

class LcmEncoder {
 public:
  template <FieldStruct M>
  static Bytes encode(const M& msg) {
    LcmEncoder enc;
    enc.encode_struct(const_cast<M&>(msg));
    return std::move(enc.writer_).take();
  }

  template <typename T>
  void field(int /*id*/, std::string_view /*name*/, T& value,
             IntBounds /*bounds*/ = {}) {
    encode_value(value);
  }

 private:
  template <FieldStruct M>
  void encode_struct(M& msg) {
    msg.visit_fields([this](auto&&... args) { this->field(args...); });
  }

  template <typename T>
  void encode_value(T& value) {
    if constexpr (std::is_same_v<T, bool>) {
      writer_.put_u8(value ? 1 : 0);
    } else if constexpr (ScalarField<T>) {
      writer_.put_be(static_cast<std::make_unsigned_t<T>>(value));
    } else if constexpr (StringField<T> || BytesField<T>) {
      writer_.put_be<std::uint32_t>(static_cast<std::uint32_t>(value.size() + 1));
      writer_.put_bytes(BytesView(
          reinterpret_cast<const Byte*>(value.data()), value.size()));
      writer_.put_u8(0);
    } else if constexpr (is_optional<T>::value) {
      writer_.put_u8(value.has_value() ? 1 : 0);
      if (value.has_value()) encode_value(*value);
    } else if constexpr (is_tagged_union<T>::value) {
      writer_.put_be<std::int32_t>(
          value.has_value() ? static_cast<std::int32_t>(value.index() + 1)
                            : 0);
      value.visit_active([&](auto& alt) { encode_value(alt); });
    } else if constexpr (is_std_vector<T>::value) {
      writer_.put_be<std::int32_t>(static_cast<std::int32_t>(value.size()));
      for (auto& element : value) encode_value(element);
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      encode_struct(value);
    }
  }

  wire::ByteWriter writer_;
};

class LcmDecoder {
 public:
  template <FieldStruct M>
  static Result<M> decode(BytesView data) {
    M msg{};
    LcmDecoder dec(data);
    dec.decode_struct(msg);
    if (!dec.status_.is_ok()) return dec.status_;
    return msg;
  }

 private:
  explicit LcmDecoder(BytesView data) : reader_(data) {}

  template <FieldStruct M>
  void decode_struct(M& msg) {
    msg.visit_fields([this](int /*id*/, std::string_view /*name*/,
                            auto& value, IntBounds /*bounds*/ = {}) {
      this->decode_value(value);
    });
  }

  template <typename T>
  void decode_value(T& value) {
    if (!status_.is_ok()) return;
    if constexpr (std::is_same_v<T, bool>) {
      if (auto b = reader_.get_u8()) {
        value = (*b != 0);
      } else {
        status_ = b.status();
      }
    } else if constexpr (ScalarField<T>) {
      if (auto v = reader_.get_be<std::make_unsigned_t<T>>()) {
        value = static_cast<T>(*v);
      } else {
        status_ = v.status();
      }
    } else if constexpr (StringField<T> || BytesField<T>) {
      auto len = reader_.get_be<std::uint32_t>();
      if (!len) {
        status_ = len.status();
        return;
      }
      if (*len == 0) {
        status_ = make_error(StatusCode::kMalformed, "LCM string len 0");
        return;
      }
      auto bytes = reader_.get_bytes(*len - 1);
      if (!bytes) {
        status_ = bytes.status();
        return;
      }
      if constexpr (StringField<T>) {
        value.assign(reinterpret_cast<const char*>(bytes->data()),
                     bytes->size());
      } else {
        value.assign(bytes->begin(), bytes->end());
      }
      if (auto st = reader_.skip(1); !st.is_ok()) status_ = st;  // NUL
    } else if constexpr (is_optional<T>::value) {
      auto flag = reader_.get_u8();
      if (!flag) {
        status_ = flag.status();
        return;
      }
      if (*flag != 0) {
        decode_value(value.emplace());
      } else {
        value.reset();
      }
    } else if constexpr (is_tagged_union<T>::value) {
      auto disc = reader_.get_be<std::int32_t>();
      if (!disc) {
        status_ = disc.status();
        return;
      }
      if (*disc == 0) return;
      const bool ok = value.emplace_by_index(
          static_cast<std::size_t>(*disc - 1),
          [&](auto& alt) { decode_value(alt); });
      if (!ok) status_ = make_error(StatusCode::kMalformed, "bad LCM union");
    } else if constexpr (is_std_vector<T>::value) {
      auto count = reader_.get_be<std::int32_t>();
      if (!count || *count < 0) {
        status_ = count ? make_error(StatusCode::kMalformed, "bad LCM count")
                        : count.status();
        return;
      }
      value.clear();
      // A corrupted count must not drive allocation beyond the input size.
      value.reserve(std::min<std::size_t>(static_cast<std::size_t>(*count),
                                          reader_.remaining() + 1));
      for (std::int32_t i = 0; i < *count && status_.is_ok(); ++i) {
        decode_value(value.emplace_back());
      }
    } else {
      static_assert(FieldStruct<T>, "unsupported field type");
      decode_struct(value);
    }
  }

  wire::ByteReader reader_;
  Status status_;
};

}  // namespace neutrino::ser
