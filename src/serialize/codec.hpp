// Uniform entry point over all wire formats.
#pragma once

#include <array>
#include <string_view>

#include "serialize/asn1per.hpp"
#include "serialize/cdr.hpp"
#include "serialize/flatbuf.hpp"
#include "serialize/flexbuf.hpp"
#include "serialize/lcm.hpp"
#include "serialize/protobuf.hpp"

namespace neutrino::ser {

enum class WireFormat {
  kAsn1Per,
  kFlatBuffers,
  kOptimizedFlatBuffers,  // Neutrino's svtable variant (§4.4)
  kProtobuf,
  kFastCdr,
  kLcm,
  kFlexBuffers,
};

inline constexpr std::array kAllWireFormats = {
    WireFormat::kAsn1Per,      WireFormat::kFlatBuffers,
    WireFormat::kOptimizedFlatBuffers, WireFormat::kProtobuf,
    WireFormat::kFastCdr,      WireFormat::kLcm,
    WireFormat::kFlexBuffers,
};

constexpr std::string_view to_string(WireFormat f) {
  switch (f) {
    case WireFormat::kAsn1Per: return "ASN.1-PER";
    case WireFormat::kFlatBuffers: return "FlatBuffers";
    case WireFormat::kOptimizedFlatBuffers: return "OptimizedFlatBuffers";
    case WireFormat::kProtobuf: return "ProtocolBuffers";
    case WireFormat::kFastCdr: return "Fast-CDR";
    case WireFormat::kLcm: return "LCM";
    case WireFormat::kFlexBuffers: return "FlexBuffers";
  }
  return "?";
}

template <FieldStruct M>
Bytes encode(WireFormat format, const M& msg) {
  switch (format) {
    case WireFormat::kAsn1Per:
      return Asn1Encoder::encode(msg);
    case WireFormat::kFlatBuffers:
      return FlatBufEncoder::encode(msg, FlatBufMode::kStandard);
    case WireFormat::kOptimizedFlatBuffers:
      return FlatBufEncoder::encode(msg, FlatBufMode::kOptimized);
    case WireFormat::kProtobuf:
      return ProtobufEncoder::encode(msg);
    case WireFormat::kFastCdr:
      return CdrEncoder::encode(msg);
    case WireFormat::kLcm:
      return LcmEncoder::encode(msg);
    case WireFormat::kFlexBuffers:
      return FlexBufEncoder::encode(msg);
  }
  return {};
}

template <FieldStruct M>
Result<M> decode(WireFormat format, BytesView data) {
  switch (format) {
    case WireFormat::kAsn1Per:
      return Asn1Decoder::decode<M>(data);
    case WireFormat::kFlatBuffers:
      return FlatBufDecoder::decode<M>(data, FlatBufMode::kStandard);
    case WireFormat::kOptimizedFlatBuffers:
      return FlatBufDecoder::decode<M>(data, FlatBufMode::kOptimized);
    case WireFormat::kProtobuf:
      return ProtobufDecoder::decode<M>(data);
    case WireFormat::kFastCdr:
      return CdrDecoder::decode<M>(data);
    case WireFormat::kLcm:
      return LcmDecoder::decode<M>(data);
    case WireFormat::kFlexBuffers:
      return FlexBufDecoder::decode<M>(data);
  }
  return make_error(StatusCode::kInvalidArgument, "unknown format");
}

}  // namespace neutrino::ser
