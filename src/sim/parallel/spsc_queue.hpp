// Bounded single-producer/single-consumer channel for cross-shard messages.
//
// One channel exists per ordered shard pair (src → dst). During a
// conservative time window only the producer shard touches it (lock-free,
// allocation-free pushes into a fixed ring); the consumer drains it only at
// window barriers, when the producer is quiesced. The barrier's
// acquire/release handshake is the synchronization edge that makes the
// spill vector and ring contents visible to the drainer — the channel
// itself only needs acquire/release on head/tail for the ring fast path.
//
// Overflow policy: once the ring fills mid-window, subsequent pushes go to
// a producer-local spill vector (amortized allocation). drain() replays
// ring first, then spill — exactly FIFO, because after the first spill no
// push re-enters the ring until the next barrier empties both. Bursty
// cross-shard storms therefore degrade to vector pushes instead of
// dropping or blocking, and determinism is unaffected.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace neutrino::sim::parallel {

template <class T>
class SpscChannel {
 public:
  /// `capacity` must be a power of two (ring slots reserved up front).
  /// The spill vector is also reserved ahead to the ring's capacity: the
  /// first overflow window then degrades to plain stores instead of a
  /// reallocation storm, and because drain() clears without shrinking,
  /// the buffer is reused across every subsequent window boundary.
  explicit SpscChannel(std::size_t capacity = 1024)
      : mask_(capacity - 1), slots_(capacity) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    spill_.reserve(capacity);
  }

  SpscChannel(SpscChannel&& other) noexcept
      : mask_(other.mask_),
        slots_(std::move(other.slots_)),
        spill_(std::move(other.spill_)) {
    head_.store(other.head_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    tail_.store(other.tail_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  /// Producer-only. Never blocks, never drops.
  void push(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (spill_.empty() &&
        tail - head_.load(std::memory_order_acquire) <= mask_) {
      slots_[static_cast<std::size_t>(tail) & mask_] = std::move(value);
      tail_.store(tail + 1, std::memory_order_release);
      return;
    }
    spill_.push_back(std::move(value));
  }

  /// Consumer-only, and only while the producer is quiesced at a barrier.
  /// Invokes `fn(T&&)` for every queued entry in push order and leaves the
  /// channel empty. Returns the number drained.
  template <class Fn>
  std::size_t drain(Fn&& fn) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::size_t n = 0;
    for (; head != tail; ++head, ++n) {
      fn(std::move(slots_[static_cast<std::size_t>(head) & mask_]));
    }
    head_.store(head, std::memory_order_release);
    // The producer is parked: spill_ is safe to touch (barrier edge).
    for (T& v : spill_) {
      fn(std::move(v));
      ++n;
    }
    spill_.clear();
    return n;
  }

  /// Consumer-side emptiness probe (same quiescence requirement as drain).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
               tail_.load(std::memory_order_acquire) &&
           spill_.empty();
  }

 private:
  // head_ and tail_ on separate cache lines so producer stores don't
  // false-share with consumer drains.
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  std::uint64_t mask_;
  std::vector<T> slots_;
  std::vector<T> spill_;  // producer-local overflow, FIFO after the ring
};

}  // namespace neutrino::sim::parallel
