// Sharded discrete-event runtime: conservative time windows over N shards.
//
// Each shard owns a full EventLoop (and, at the core layer, its slice of
// the topology, a MsgPool, an RNG stream, and per-shard metrics). Shards
// advance in lock-step windows
//
//     [W, W + lookahead]   where W = min over shards of next_time()
//
// with `lookahead` strictly smaller than the minimum latency of any
// cross-shard link. An event executing at time t during the window sends
// across shards with arrival = t + link; t ≥ W and link > lookahead give
// arrival > W + lookahead, i.e. strictly after the window end (asserted
// in post()). No shard can receive a message for a time it has already
// executed past, so intra-window execution needs no
// synchronization at all: plain single-threaded EventLoop runs, lock-free
// SPSC pushes for cross-shard sends, and two barriers per window.
//
// Adaptive lookahead (Config::adaptive_lookahead, DESIGN.md §16) keeps
// that invariant but sizes each shard's horizon individually from the
// earliest *possible* cross-shard arrival instead of the worst case:
//
//     end(dst) = min over src≠dst of (next_time(src) + link_floor(src,dst))
//                − 1ns
//
// A message from src reaches dst no earlier than src's first pending
// event plus the cheapest src→dst link, so dst executing to end(dst)
// can never be overtaken. Because next_time(src) ≥ W and link_floor ≥
// lookahead + 1ns, end(dst) is never narrower than the static window —
// and when the other shards are quiet (their next events far away), dst's
// horizon widens to match, collapsing entire idle stretches into one
// window. The bound is computed by the coordinator from sim state alone
// (no wall clock, no thread identity), so schedules — and therefore all
// results — remain bit-identical across runs and worker-thread counts.
//
// Determinism (the hard requirement, see DESIGN.md §11): for a fixed
// shard count the results are bit-identical across runs *and across
// worker-thread counts* because (a) each shard's intra-window execution
// is sequential on one thread with the same (when, seq) order regardless
// of which thread claimed it, (b) cross-shard messages are drained only
// at barriers, by the coordinating thread alone, in fixed
// (dst shard, src shard, FIFO) order — so the destination loop assigns
// them the same seq numbers no matter how threads interleaved, and (c)
// per-shard RNG streams are fixed 2^128-jumps of one seed. With one
// shard there are no windows to split on (lookahead = ∞ ⇒ one window to
// the horizon), so the run is the legacy single-threaded loop, exactly.
//
// Thread model: run_until() spawns (threads − 1) workers; the calling
// thread participates, so threads=1 spawns nothing and never touches a
// barrier. Shards are claimed from an atomic counter (work-stealing over
// uneven shards) — claiming order affects wall-clock only, never results.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "obs/profiler.hpp"
#include "sim/event_loop.hpp"
#include "sim/parallel/barrier.hpp"
#include "sim/parallel/spsc_queue.hpp"

namespace neutrino::sim::parallel {

template <class Payload>
class ShardedRuntime {
 public:
  struct Config {
    std::size_t shards = 1;
    std::size_t threads = 1;
    /// Maximum window length. Must be strictly less than the minimum
    /// cross-shard link latency (callers pass min_link − 1ns). max()
    /// means "no cross-shard traffic allowed": one window to the horizon.
    SimTime lookahead = SimTime::max();
    /// Widen each shard's window to the earliest possible cross-shard
    /// arrival (see header). Never narrower than the static window, and
    /// deterministic; off by default so bare-runtime tests keep the
    /// classic fixed-width window schedule.
    bool adaptive_lookahead = false;
    /// Minimum src→dst message latency, indexed [src * shards + dst]
    /// (diagonal unused). Empty means "uniform": every pair floors at
    /// lookahead + 1ns, which is the tightest bound consistent with the
    /// static-lookahead contract. Only read when adaptive_lookahead.
    std::vector<SimTime> link_floor;
    /// Entries gathered per arena batch at window boundaries before the
    /// delivery pass runs over them (cache-friendly split of ring reads
    /// from destination-loop pushes). 0 = deliver straight from the ring.
    std::size_t drain_batch = 64;
    EventLoop::Config loop;
    std::uint64_t rng_seed = 1;
    std::size_t channel_capacity = 1024;
    int spin_budget = -1;  ///< −1: auto (parks immediately if oversubscribed)
  };

  struct Stats {
    std::uint64_t windows = 0;          ///< barrier-bounded windows executed
    std::uint64_t cross_messages = 0;   ///< envelopes drained at barriers
    /// Shard-windows whose adaptive horizon exceeded the static bound.
    std::uint64_t adaptive_extensions = 0;
    /// Shard-windows skipped entirely (no event before the shard's end).
    std::uint64_t dispatches_skipped = 0;
  };

  /// One conservative window as seen by the coordinator (sim-time bounds,
  /// cross-shard traffic, and per-shard events executed). Deterministic —
  /// derived purely from sim state — so it is safe to export (the Perfetto
  /// shard tracks in obs/trace_export.hpp) and to compare across thread
  /// counts. Collected only after enable_window_log().
  struct WindowRecord {
    SimTime start;
    SimTime end;
    std::uint64_t cross_messages = 0;       ///< drained at this boundary
    std::vector<std::uint64_t> executed;    ///< per-shard events this window
  };

  explicit ShardedRuntime(const Config& config)
      : n_(config.shards),
        threads_(config.threads == 0 ? 1 : config.threads),
        lookahead_(config.lookahead),
        adaptive_(config.adaptive_lookahead),
        drain_batch_(config.drain_batch),
        link_floor_(config.link_floor),
        start_(threads_, config.spin_budget >= 0
                             ? config.spin_budget
                             : PhaseBarrier::default_spin_budget(threads_)),
        done_(threads_, config.spin_budget >= 0
                            ? config.spin_budget
                            : PhaseBarrier::default_spin_budget(threads_)) {
    assert(n_ >= 1);
    assert(lookahead_.ns() > 0);
    assert(link_floor_.empty() || link_floor_.size() == n_ * n_);
    next_times_.assign(n_, SimTime{});
    shard_ends_.assign(n_, SimTime{});
    loops_.reserve(n_);
    rngs_.reserve(n_);
    channels_.reserve(n_ * n_);
    Rng stream(config.rng_seed);
    for (std::size_t i = 0; i < n_; ++i) {
      loops_.emplace_back(config.loop);
      rngs_.push_back(stream);  // shard i = seed jumped i times
      stream.jump();
    }
    for (std::size_t i = 0; i < n_ * n_; ++i) {
      channels_.emplace_back(config.channel_capacity);
    }
    // One cache line (8 words = up to 512 dst bits) per source shard, so
    // concurrent producers never false-share a dirty row.
    dirty_stride_ = ((n_ + 63) / 64 + 7) / 8 * 8;
    dirty_.assign(n_ * dirty_stride_, 0);
  }

  [[nodiscard]] std::size_t shards() const { return n_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  EventLoop& loop(std::size_t shard) { return loops_[shard]; }
  Rng& rng(std::size_t shard) { return rngs_[shard]; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Attach a wall-clock phase profiler (null detaches). Lanes: dispatch
  /// and drain are attributed per shard / to lane 0; barrier waits per
  /// thread (coordinator = 0, workers = 1..threads−1). The profiler must
  /// have ≥ max(shards, threads) lanes and outlive run_until(). Wall-clock
  /// only — never feeds any deterministic output (DESIGN.md §15).
  void set_profiler(obs::PhaseProfiler* profiler) { profiler_ = profiler; }

  /// Start recording per-window activity (bounded: recording stops after
  /// `max_windows`; window_log_truncated() tells).
  void enable_window_log(std::size_t max_windows = 2048) {
    window_log_max_ = max_windows;
    window_log_.clear();
    window_log_.reserve(max_windows < 256 ? max_windows : 256);
    prev_executed_.assign(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) prev_executed_[i] = loops_[i].executed();
    prev_cross_ = stats_.cross_messages;
  }
  [[nodiscard]] const std::vector<WindowRecord>& window_log() const {
    return window_log_;
  }
  [[nodiscard]] bool window_log_truncated() const {
    return window_log_max_ > 0 && stats_.windows > window_log_.size();
  }

  /// Total events dispatched across all shard loops.
  [[nodiscard]] std::uint64_t events_executed() const {
    std::uint64_t total = 0;
    for (const EventLoop& l : loops_) total += l.executed();
    return total;
  }

  /// Producer-side cross-shard send; called from shard `from`'s events
  /// during a window. `arrival` must land strictly after the current
  /// window (guaranteed when the link latency exceeds the lookahead).
  void post(std::size_t from, std::size_t to, SimTime arrival,
            Payload payload) {
    assert(from < n_ && to < n_ && from != to);
    // The destination's own horizon is the safety line: with adaptive
    // windows a shard may run far past other shards' ends, but nothing may
    // arrive at `to` at or before the point `to` executes to this window.
    assert(!in_window_ || arrival > shard_ends_[to]);
    channels_[from * n_ + to].push(Entry{arrival, std::move(payload)});
    // Mark the channel non-empty for the boundary drain. Plain store: the
    // row has a single writer (whichever thread claimed shard `from`) and
    // the done-barrier publishes it to the coordinator.
    dirty_[from * dirty_stride_ + (to >> 6)] |= std::uint64_t{1} << (to & 63);
  }

  /// Run all shards to `horizon` (events at exactly `horizon` still run).
  /// `deliver(dst_shard, arrival, Payload&&)` is invoked on the calling
  /// thread at window boundaries for every cross-shard message, in
  /// deterministic order; it must schedule the payload onto
  /// loop(dst_shard) at `arrival`.
  template <class Deliver>
  void run_until(SimTime horizon, Deliver&& deliver) {
    const std::size_t n_workers = threads_ - 1;
    std::vector<std::thread> workers;
    workers.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) {
      workers.emplace_back([this, i] { worker_loop(i + 1); });
    }

    for (;;) {
      SimTime window_start = SimTime::max();
      {
        auto sched = obs::PhaseProfiler::scoped(profiler_, 0,
                                                obs::Phase::kSchedule);
        for (std::size_t i = 0; i < n_; ++i) {
          next_times_[i] = loops_[i].next_time();
          window_start = std::min(window_start, next_times_[i]);
        }
      }
      if (window_start == SimTime::max() || window_start > horizon) break;
      const SimTime static_end = window_end_for(window_start, horizon);
      window_end_ = static_end;
      if (adaptive_ && lookahead_ != SimTime::max()) {
        for (std::size_t dst = 0; dst < n_; ++dst) {
          // Earliest instant a cross-shard message could reach dst: some
          // other shard's first pending event plus the cheapest link in.
          SimTime bound = SimTime::max();
          for (std::size_t src = 0; src < n_; ++src) {
            if (src == dst) continue;
            bound = std::min(bound, arrival_floor(src, dst));
          }
          SimTime end =
              bound == SimTime::max()
                  ? horizon
                  : std::min(horizon, bound - SimTime::nanoseconds(1));
          // Provably ≥ static_end (next_time ≥ W, floor ≥ lookahead+1ns);
          // the max() guards against a caller-supplied floor below the
          // static lookahead contract.
          end = std::max(end, static_end);
          shard_ends_[dst] = end;
          if (end > static_end) ++stats_.adaptive_extensions;
          if (next_times_[dst] > end) ++stats_.dispatches_skipped;
          window_end_ = std::max(window_end_, end);
        }
      } else {
        for (std::size_t dst = 0; dst < n_; ++dst) {
          shard_ends_[dst] = static_end;
          if (next_times_[dst] > static_end) ++stats_.dispatches_skipped;
        }
      }
      in_window_ = true;
      ++stats_.windows;
      claim_.store(0, std::memory_order_relaxed);
      if (n_workers > 0) {
        auto wait = obs::PhaseProfiler::scoped(profiler_, 0,
                                               obs::Phase::kBarrierWait);
        start_.arrive_and_wait();
      }
      work();
      if (n_workers > 0) {
        auto wait = obs::PhaseProfiler::scoped(profiler_, 0,
                                               obs::Phase::kBarrierWait);
        done_.arrive_and_wait();
      }
      in_window_ = false;
      // Workers are parked between barriers: the coordinating thread owns
      // every channel and destination loop here. Fixed (dst, src, FIFO)
      // drain order ⇒ thread-count-independent seq assignment. Entries are
      // gathered into arena-backed batches first (tight ring reads), then
      // delivered (destination-heap pushes) — splitting the two access
      // patterns instead of interleaving them per message. Batching is
      // pure staging: delivery order is identical to the direct path.
      {
        auto drain = obs::PhaseProfiler::scoped(profiler_, 0,
                                                obs::Phase::kChannelDrain);
        static_assert(alignof(Entry) <= alignof(std::max_align_t));
        const std::size_t batch = drain_batch_;
        Entry* scratch =
            batch > 0 ? arena_.template alloc_uninit<Entry>(batch) : nullptr;
        for (std::size_t dst = 0; dst < n_; ++dst) {
          const std::size_t word = dst >> 6;
          const std::uint64_t bit = std::uint64_t{1} << (dst & 63);
          std::size_t fill = 0;
          const auto flush = [&] {
            for (std::size_t k = 0; k < fill; ++k) {
              deliver(dst, scratch[k].arrival, std::move(scratch[k].payload));
              scratch[k].~Entry();
            }
            fill = 0;
          };
          for (std::size_t src = 0; src < n_; ++src) {
            if (src == dst) continue;
            // Skip channels nobody pushed into this window: most window
            // boundaries cross few (often zero) messages, and touching
            // all n² head/tail cache-line pairs dominated the drain.
            if ((dirty_[src * dirty_stride_ + word] & bit) == 0) continue;
            auto& chan = channels_[src * n_ + dst];
            if (batch == 0) {
              stats_.cross_messages += chan.drain([&](Entry&& e) {
                deliver(dst, e.arrival, std::move(e.payload));
              });
              continue;
            }
            stats_.cross_messages += chan.drain([&](Entry&& e) {
              ::new (static_cast<void*>(scratch + fill)) Entry(std::move(e));
              if (++fill == batch) flush();
            });
          }
          if (batch > 0) flush();
        }
        std::fill(dirty_.begin(), dirty_.end(), 0);
        arena_.reset();
      }
      if (window_log_max_ > 0 && window_log_.size() < window_log_max_) {
        WindowRecord rec;
        rec.start = window_start;
        rec.end = window_end_;
        rec.cross_messages = stats_.cross_messages - prev_cross_;
        prev_cross_ = stats_.cross_messages;
        rec.executed.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          const std::uint64_t now_exec = loops_[i].executed();
          rec.executed[i] = now_exec - prev_executed_[i];
          prev_executed_[i] = now_exec;
        }
        window_log_.push_back(std::move(rec));
      }
    }

    if (n_workers > 0) {
      stop_.store(true, std::memory_order_relaxed);
      start_.arrive_and_wait();
      for (std::thread& w : workers) w.join();
      stop_.store(false, std::memory_order_relaxed);
    }
    // Clock parity with a plain run_until on a single loop: every shard's
    // now() advances to the horizon (events beyond it stay pending).
    for (EventLoop& l : loops_) l.run_until(horizon);
  }

 private:
  struct Entry {
    SimTime arrival;
    Payload payload;
  };

  [[nodiscard]] SimTime window_end_for(SimTime start, SimTime horizon) const {
    if (lookahead_ == SimTime::max()) return horizon;
    if (start.ns() > SimTime::max().ns() - lookahead_.ns()) return horizon;
    return std::min(start + lookahead_, horizon);
  }

  /// Earliest sim time a message from `src` could arrive at `dst` given
  /// src's current next_time — saturating, so quiet shards (next_time at
  /// or near max()) impose no bound instead of wrapping.
  [[nodiscard]] SimTime arrival_floor(std::size_t src, std::size_t dst) const {
    const SimTime floor = link_floor_.empty()
                              ? lookahead_ + SimTime::nanoseconds(1)
                              : link_floor_[src * n_ + dst];
    const SimTime t = next_times_[src];
    if (t.ns() > SimTime::max().ns() - floor.ns()) return SimTime::max();
    return t + floor;
  }

  void work() {
    for (std::size_t i = claim_.fetch_add(1, std::memory_order_relaxed);
         i < n_; i = claim_.fetch_add(1, std::memory_order_relaxed)) {
      // Idle skip: nothing to run before this shard's horizon (counted by
      // the coordinator pre-barrier, so the claim loop stays write-free).
      if (next_times_[i] > shard_ends_[i]) continue;
      auto dispatch = obs::PhaseProfiler::scoped(profiler_, i,
                                                 obs::Phase::kDispatch);
      loops_[i].run_until(shard_ends_[i]);
    }
  }

  void worker_loop(std::size_t lane) {
    for (;;) {
      {
        auto wait = obs::PhaseProfiler::scoped(profiler_, lane,
                                               obs::Phase::kBarrierWait);
        start_.arrive_and_wait();
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      work();
      {
        auto wait = obs::PhaseProfiler::scoped(profiler_, lane,
                                               obs::Phase::kBarrierWait);
        done_.arrive_and_wait();
      }
    }
  }

  const std::size_t n_;
  const std::size_t threads_;
  const SimTime lookahead_;
  const bool adaptive_;
  const std::size_t drain_batch_;
  const std::vector<SimTime> link_floor_;  // [src * n_ + dst], may be empty
  std::vector<EventLoop> loops_;
  std::vector<Rng> rngs_;
  std::vector<SpscChannel<Entry>> channels_;  // [src * n_ + dst]
  Arena arena_;  // window-boundary scratch (coordinator-only)
  // Per-source bitmask of destinations pushed to since the last boundary;
  // row stride is a whole cache line (single writer per row mid-window).
  std::vector<std::uint64_t> dirty_;
  std::size_t dirty_stride_ = 0;

  PhaseBarrier start_;
  PhaseBarrier done_;
  std::atomic<std::size_t> claim_{0};
  std::atomic<bool> stop_{false};
  // Written by the coordinator strictly between barriers; the start
  // barrier's release/acquire edge publishes them to workers.
  SimTime window_end_;             // max over shard_ends_ (window log bound)
  std::vector<SimTime> next_times_;   // per-shard next event, from the scan
  std::vector<SimTime> shard_ends_;   // per-shard inclusive run horizon
  bool in_window_ = false;

  Stats stats_;

  // Observability (coordinator-only state; workers touch only profiler_,
  // whose cells are atomic).
  obs::PhaseProfiler* profiler_ = nullptr;
  std::size_t window_log_max_ = 0;
  std::vector<WindowRecord> window_log_;
  std::vector<std::uint64_t> prev_executed_;
  std::uint64_t prev_cross_ = 0;
};

}  // namespace neutrino::sim::parallel
