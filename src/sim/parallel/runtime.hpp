// Sharded discrete-event runtime: conservative time windows over N shards.
//
// Each shard owns a full EventLoop (and, at the core layer, its slice of
// the topology, a MsgPool, an RNG stream, and per-shard metrics). Shards
// advance in lock-step windows
//
//     [W, W + lookahead]   where W = min over shards of next_time()
//
// with `lookahead` strictly smaller than the minimum latency of any
// cross-shard link. An event executing at time t during the window sends
// across shards with arrival = t + link; t ≥ W and link > lookahead give
// arrival > W + lookahead, i.e. strictly after the window end (asserted
// in post()). No shard can receive a message for a time it has already
// executed past, so intra-window execution needs no
// synchronization at all: plain single-threaded EventLoop runs, lock-free
// SPSC pushes for cross-shard sends, and two barriers per window.
//
// Determinism (the hard requirement, see DESIGN.md §11): for a fixed
// shard count the results are bit-identical across runs *and across
// worker-thread counts* because (a) each shard's intra-window execution
// is sequential on one thread with the same (when, seq) order regardless
// of which thread claimed it, (b) cross-shard messages are drained only
// at barriers, by the coordinating thread alone, in fixed
// (dst shard, src shard, FIFO) order — so the destination loop assigns
// them the same seq numbers no matter how threads interleaved, and (c)
// per-shard RNG streams are fixed 2^128-jumps of one seed. With one
// shard there are no windows to split on (lookahead = ∞ ⇒ one window to
// the horizon), so the run is the legacy single-threaded loop, exactly.
//
// Thread model: run_until() spawns (threads − 1) workers; the calling
// thread participates, so threads=1 spawns nothing and never touches a
// barrier. Shards are claimed from an atomic counter (work-stealing over
// uneven shards) — claiming order affects wall-clock only, never results.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "obs/profiler.hpp"
#include "sim/event_loop.hpp"
#include "sim/parallel/barrier.hpp"
#include "sim/parallel/spsc_queue.hpp"

namespace neutrino::sim::parallel {

template <class Payload>
class ShardedRuntime {
 public:
  struct Config {
    std::size_t shards = 1;
    std::size_t threads = 1;
    /// Maximum window length. Must be strictly less than the minimum
    /// cross-shard link latency (callers pass min_link − 1ns). max()
    /// means "no cross-shard traffic allowed": one window to the horizon.
    SimTime lookahead = SimTime::max();
    EventLoop::Config loop;
    std::uint64_t rng_seed = 1;
    std::size_t channel_capacity = 1024;
    int spin_budget = -1;  ///< −1: auto (parks immediately if oversubscribed)
  };

  struct Stats {
    std::uint64_t windows = 0;          ///< barrier-bounded windows executed
    std::uint64_t cross_messages = 0;   ///< envelopes drained at barriers
  };

  /// One conservative window as seen by the coordinator (sim-time bounds,
  /// cross-shard traffic, and per-shard events executed). Deterministic —
  /// derived purely from sim state — so it is safe to export (the Perfetto
  /// shard tracks in obs/trace_export.hpp) and to compare across thread
  /// counts. Collected only after enable_window_log().
  struct WindowRecord {
    SimTime start;
    SimTime end;
    std::uint64_t cross_messages = 0;       ///< drained at this boundary
    std::vector<std::uint64_t> executed;    ///< per-shard events this window
  };

  explicit ShardedRuntime(const Config& config)
      : n_(config.shards),
        threads_(config.threads == 0 ? 1 : config.threads),
        lookahead_(config.lookahead),
        start_(threads_, config.spin_budget >= 0
                             ? config.spin_budget
                             : PhaseBarrier::default_spin_budget(threads_)),
        done_(threads_, config.spin_budget >= 0
                            ? config.spin_budget
                            : PhaseBarrier::default_spin_budget(threads_)) {
    assert(n_ >= 1);
    assert(lookahead_.ns() > 0);
    loops_.reserve(n_);
    rngs_.reserve(n_);
    channels_.reserve(n_ * n_);
    Rng stream(config.rng_seed);
    for (std::size_t i = 0; i < n_; ++i) {
      loops_.emplace_back(config.loop);
      rngs_.push_back(stream);  // shard i = seed jumped i times
      stream.jump();
    }
    for (std::size_t i = 0; i < n_ * n_; ++i) {
      channels_.emplace_back(config.channel_capacity);
    }
  }

  [[nodiscard]] std::size_t shards() const { return n_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  EventLoop& loop(std::size_t shard) { return loops_[shard]; }
  Rng& rng(std::size_t shard) { return rngs_[shard]; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Attach a wall-clock phase profiler (null detaches). Lanes: dispatch
  /// and drain are attributed per shard / to lane 0; barrier waits per
  /// thread (coordinator = 0, workers = 1..threads−1). The profiler must
  /// have ≥ max(shards, threads) lanes and outlive run_until(). Wall-clock
  /// only — never feeds any deterministic output (DESIGN.md §15).
  void set_profiler(obs::PhaseProfiler* profiler) { profiler_ = profiler; }

  /// Start recording per-window activity (bounded: recording stops after
  /// `max_windows`; window_log_truncated() tells).
  void enable_window_log(std::size_t max_windows = 2048) {
    window_log_max_ = max_windows;
    window_log_.clear();
    window_log_.reserve(max_windows < 256 ? max_windows : 256);
    prev_executed_.assign(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) prev_executed_[i] = loops_[i].executed();
    prev_cross_ = stats_.cross_messages;
  }
  [[nodiscard]] const std::vector<WindowRecord>& window_log() const {
    return window_log_;
  }
  [[nodiscard]] bool window_log_truncated() const {
    return window_log_max_ > 0 && stats_.windows > window_log_.size();
  }

  /// Total events dispatched across all shard loops.
  [[nodiscard]] std::uint64_t events_executed() const {
    std::uint64_t total = 0;
    for (const EventLoop& l : loops_) total += l.executed();
    return total;
  }

  /// Producer-side cross-shard send; called from shard `from`'s events
  /// during a window. `arrival` must land strictly after the current
  /// window (guaranteed when the link latency exceeds the lookahead).
  void post(std::size_t from, std::size_t to, SimTime arrival,
            Payload payload) {
    assert(from < n_ && to < n_ && from != to);
    assert(!in_window_ || arrival > window_end_);
    channels_[from * n_ + to].push(Entry{arrival, std::move(payload)});
  }

  /// Run all shards to `horizon` (events at exactly `horizon` still run).
  /// `deliver(dst_shard, arrival, Payload&&)` is invoked on the calling
  /// thread at window boundaries for every cross-shard message, in
  /// deterministic order; it must schedule the payload onto
  /// loop(dst_shard) at `arrival`.
  template <class Deliver>
  void run_until(SimTime horizon, Deliver&& deliver) {
    const std::size_t n_workers = threads_ - 1;
    std::vector<std::thread> workers;
    workers.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) {
      workers.emplace_back([this, i] { worker_loop(i + 1); });
    }

    for (;;) {
      SimTime window_start = SimTime::max();
      {
        auto sched = obs::PhaseProfiler::scoped(profiler_, 0,
                                                obs::Phase::kSchedule);
        for (EventLoop& l : loops_) {
          window_start = std::min(window_start, l.next_time());
        }
      }
      if (window_start == SimTime::max() || window_start > horizon) break;
      window_end_ = window_end_for(window_start, horizon);
      in_window_ = true;
      ++stats_.windows;
      claim_.store(0, std::memory_order_relaxed);
      if (n_workers > 0) {
        auto wait = obs::PhaseProfiler::scoped(profiler_, 0,
                                               obs::Phase::kBarrierWait);
        start_.arrive_and_wait();
      }
      work();
      if (n_workers > 0) {
        auto wait = obs::PhaseProfiler::scoped(profiler_, 0,
                                               obs::Phase::kBarrierWait);
        done_.arrive_and_wait();
      }
      in_window_ = false;
      // Workers are parked between barriers: the coordinating thread owns
      // every channel and destination loop here. Fixed (dst, src, FIFO)
      // drain order ⇒ thread-count-independent seq assignment.
      {
        auto drain = obs::PhaseProfiler::scoped(profiler_, 0,
                                                obs::Phase::kChannelDrain);
        for (std::size_t dst = 0; dst < n_; ++dst) {
          for (std::size_t src = 0; src < n_; ++src) {
            if (src == dst) continue;
            stats_.cross_messages +=
                channels_[src * n_ + dst].drain([&](Entry&& e) {
                  deliver(dst, e.arrival, std::move(e.payload));
                });
          }
        }
      }
      if (window_log_max_ > 0 && window_log_.size() < window_log_max_) {
        WindowRecord rec;
        rec.start = window_start;
        rec.end = window_end_;
        rec.cross_messages = stats_.cross_messages - prev_cross_;
        prev_cross_ = stats_.cross_messages;
        rec.executed.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
          const std::uint64_t now_exec = loops_[i].executed();
          rec.executed[i] = now_exec - prev_executed_[i];
          prev_executed_[i] = now_exec;
        }
        window_log_.push_back(std::move(rec));
      }
    }

    if (n_workers > 0) {
      stop_.store(true, std::memory_order_relaxed);
      start_.arrive_and_wait();
      for (std::thread& w : workers) w.join();
      stop_.store(false, std::memory_order_relaxed);
    }
    // Clock parity with a plain run_until on a single loop: every shard's
    // now() advances to the horizon (events beyond it stay pending).
    for (EventLoop& l : loops_) l.run_until(horizon);
  }

 private:
  struct Entry {
    SimTime arrival;
    Payload payload;
  };

  [[nodiscard]] SimTime window_end_for(SimTime start, SimTime horizon) const {
    if (lookahead_ == SimTime::max()) return horizon;
    if (start.ns() > SimTime::max().ns() - lookahead_.ns()) return horizon;
    return std::min(start + lookahead_, horizon);
  }

  void work() {
    const SimTime end = window_end_;
    for (std::size_t i = claim_.fetch_add(1, std::memory_order_relaxed);
         i < n_; i = claim_.fetch_add(1, std::memory_order_relaxed)) {
      auto dispatch = obs::PhaseProfiler::scoped(profiler_, i,
                                                 obs::Phase::kDispatch);
      loops_[i].run_until(end);
    }
  }

  void worker_loop(std::size_t lane) {
    for (;;) {
      {
        auto wait = obs::PhaseProfiler::scoped(profiler_, lane,
                                               obs::Phase::kBarrierWait);
        start_.arrive_and_wait();
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      work();
      {
        auto wait = obs::PhaseProfiler::scoped(profiler_, lane,
                                               obs::Phase::kBarrierWait);
        done_.arrive_and_wait();
      }
    }
  }

  const std::size_t n_;
  const std::size_t threads_;
  const SimTime lookahead_;
  std::vector<EventLoop> loops_;
  std::vector<Rng> rngs_;
  std::vector<SpscChannel<Entry>> channels_;  // [src * n_ + dst]

  PhaseBarrier start_;
  PhaseBarrier done_;
  std::atomic<std::size_t> claim_{0};
  std::atomic<bool> stop_{false};
  // Written by the coordinator strictly between barriers; the start
  // barrier's release/acquire edge publishes it to workers.
  SimTime window_end_;
  bool in_window_ = false;

  Stats stats_;

  // Observability (coordinator-only state; workers touch only profiler_,
  // whose cells are atomic).
  obs::PhaseProfiler* profiler_ = nullptr;
  std::size_t window_log_max_ = 0;
  std::vector<WindowRecord> window_log_;
  std::vector<std::uint64_t> prev_executed_;
  std::uint64_t prev_cross_ = 0;
};

}  // namespace neutrino::sim::parallel
