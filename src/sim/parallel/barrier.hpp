// Reusable phase barrier for the sharded runtime's lock-step windows.
//
// std::barrier would work, but its completion-function machinery and
// libstdc++'s futex path are heavier than needed for two barriers per
// window, and we want explicit control over spinning: on a machine with
// fewer cores than worker threads (CI containers are often 1-core),
// spinning burns the very timeslice the other thread needs, so the spin
// budget is a constructor knob the runtime sets from
// hardware_concurrency(). Waiters spin briefly, then park on a condvar.
//
// The generation handshake also carries the memory-ordering obligation of
// the whole design: every write a worker made during a window (events
// executed, channel pushes, spill vectors) happens-before the main
// thread's post-barrier drain, because each arrival is an acq_rel RMW on
// count_ and departure requires an acquire load of gen_ that observes the
// leader's release store.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>

namespace neutrino::sim::parallel {

class PhaseBarrier {
 public:
  PhaseBarrier(std::size_t participants, int spin_budget)
      : n_(participants), spins_(spin_budget) {}

  /// Block until all `participants` threads have arrived, then release
  /// everyone. Reusable: the generation counter disambiguates phases.
  void arrive_and_wait() {
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      // Last arriver: reset the count *before* bumping the generation, so
      // a thread released by the bump can immediately arrive at the next
      // phase without racing the reset.
      count_.store(0, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        gen_.store(gen + 1, std::memory_order_release);
      }
      cv_.notify_all();
      return;
    }
    for (int i = 0; i < spins_; ++i) {
      if (gen_.load(std::memory_order_acquire) != gen) return;
      cpu_relax();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return gen_.load(std::memory_order_acquire) != gen;
    });
  }

  /// Spin budget that parks immediately when the machine cannot actually
  /// run all participants concurrently (oversubscribed: spinning would
  /// steal the peer's timeslice).
  static int default_spin_budget(std::size_t participants) {
    const unsigned hw = std::thread::hardware_concurrency();
    return (hw != 0 && participants > hw) ? 0 : 4096;
  }

 private:
  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

  const std::size_t n_;
  const int spins_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> gen_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace neutrino::sim::parallel
