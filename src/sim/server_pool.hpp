// Multi-core FIFO processing resource.
//
// Models one network function's worker cores (a CPF request core, a CTA
// consumer thread): jobs are served in arrival order by the earliest-free
// core; queueing delay emerges when the offered load exceeds capacity —
// this is what produces the paper's "saturation regions" (§6.3).
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/clock.hpp"
#include "sim/event_loop.hpp"

namespace neutrino::sim {

class ServerPool {
 public:
  ServerPool(EventLoop& loop, int cores)
      : loop_(&loop), core_free_(static_cast<std::size_t>(cores)) {
    assert(cores > 0);
  }

  /// Enqueue a job taking `service` time; `done` fires at completion.
  /// Returns the completion time.
  SimTime submit(SimTime service, EventLoop::Callback done) {
    // Earliest-free core serves the job (FIFO across the pool).
    auto it = std::min_element(core_free_.begin(), core_free_.end());
    const SimTime start = std::max(*it, loop_->now());
    const SimTime finish = start + service;
    *it = finish;
    const std::uint64_t my_generation = generation_;
    ++inflight_;
    loop_->schedule_at(finish, [this, my_generation, cb = std::move(done)] {
      // Jobs in flight when the node crashed are discarded.
      if (my_generation != generation_) return;
      --inflight_;
      cb();
    });
    busy_accum_ += service;
    ++jobs_;
    max_backlog_ = std::max(max_backlog_, finish - loop_->now());
    return finish;
  }

  /// Current queueing delay a newly arriving job would see.
  [[nodiscard]] SimTime backlog() const {
    const SimTime earliest =
        *std::min_element(core_free_.begin(), core_free_.end());
    return std::max(SimTime{}, earliest - loop_->now());
  }

  /// Jobs submitted but not yet completed (queued + in service).
  [[nodiscard]] std::size_t queue_depth() const { return inflight_; }

  /// Snapshot for occupancy samplers (obs time series).
  struct Occupancy {
    std::size_t depth = 0;  // jobs queued or in service
    SimTime backlog;        // delay a new arrival would see
  };
  [[nodiscard]] Occupancy occupancy() const { return {inflight_, backlog()}; }

  /// Drop all queued work and invalidate in-flight completions (crash).
  void reset() {
    ++generation_;
    inflight_ = 0;
    std::fill(core_free_.begin(), core_free_.end(), SimTime{});
  }

  [[nodiscard]] int cores() const {
    return static_cast<int>(core_free_.size());
  }
  [[nodiscard]] std::uint64_t jobs_served() const { return jobs_; }
  [[nodiscard]] SimTime busy_time() const { return busy_accum_; }
  [[nodiscard]] SimTime max_backlog() const { return max_backlog_; }

 private:
  EventLoop* loop_;
  std::vector<SimTime> core_free_;
  std::uint64_t generation_ = 0;
  std::size_t inflight_ = 0;
  std::uint64_t jobs_ = 0;
  SimTime busy_accum_;
  SimTime max_backlog_;
};

}  // namespace neutrino::sim
