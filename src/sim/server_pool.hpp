// Multi-core FIFO processing resource.
//
// Models one network function's worker cores (a CPF request core, a CTA
// consumer thread): jobs are served in arrival order by the earliest-free
// core; queueing delay emerges when the offered load exceeds capacity —
// this is what produces the paper's "saturation regions" (§6.3).
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/clock.hpp"
#include "common/flat_hash_map.hpp"
#include "sim/event_loop.hpp"

namespace neutrino::sim {

class ServerPool {
 public:
  ServerPool(EventLoop& loop, int cores)
      : loop_(&loop), core_free_(static_cast<std::size_t>(cores)) {
    assert(cores > 0);
  }

  /// Enqueue a job taking `service` time; `done` fires at completion.
  /// Returns the completion time.
  SimTime submit(SimTime service, EventLoop::Callback done) {
    // Earliest-free core serves the job (FIFO across the pool).
    auto it = std::min_element(core_free_.begin(), core_free_.end());
    const SimTime start = std::max(*it, loop_->now());
    const SimTime finish = start + service;
    *it = finish;
    const std::uint64_t my_generation = generation_;
    ++inflight_;
    // The callback parks in a slot map so the scheduled event captures
    // only {this, id, generation} (24 bytes — inline in the event loop).
    // Capturing the InlineTask itself would nest one task inside another
    // and overflow the inline buffer.
    const std::uint64_t id = next_job_id_++;
    tasks_.try_emplace(id, std::move(done));
    loop_->schedule_at(finish, [this, id, my_generation] {
      // Jobs in flight when the node crashed are discarded (reset()
      // already dropped their callbacks from the slot map).
      if (my_generation != generation_) return;
      --inflight_;
      const auto it = tasks_.find(id);
      assert(it != tasks_.end());
      EventLoop::Callback cb = std::move(it->second);
      tasks_.erase(it);
      cb();
    });
    busy_accum_ += service;
    ++jobs_;
    max_backlog_ = std::max(max_backlog_, finish - loop_->now());
    return finish;
  }

  /// Current queueing delay a newly arriving job would see.
  [[nodiscard]] SimTime backlog() const {
    const SimTime earliest =
        *std::min_element(core_free_.begin(), core_free_.end());
    return std::max(SimTime{}, earliest - loop_->now());
  }

  /// Jobs submitted but not yet completed (queued + in service).
  [[nodiscard]] std::size_t queue_depth() const { return inflight_; }

  /// Snapshot for occupancy samplers (obs time series).
  struct Occupancy {
    std::size_t depth = 0;  // jobs queued or in service
    SimTime backlog;        // delay a new arrival would see
  };
  [[nodiscard]] Occupancy occupancy() const { return {inflight_, backlog()}; }

  /// Drop all queued work and invalidate in-flight completions (crash).
  void reset() {
    ++generation_;
    inflight_ = 0;
    tasks_.clear();
    std::fill(core_free_.begin(), core_free_.end(), SimTime{});
  }

  [[nodiscard]] int cores() const {
    return static_cast<int>(core_free_.size());
  }
  [[nodiscard]] std::uint64_t jobs_served() const { return jobs_; }
  [[nodiscard]] SimTime busy_time() const { return busy_accum_; }
  [[nodiscard]] SimTime max_backlog() const { return max_backlog_; }

 private:
  EventLoop* loop_;
  std::vector<SimTime> core_free_;
  FlatHashMap<std::uint64_t, EventLoop::Callback> tasks_;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t inflight_ = 0;
  std::uint64_t jobs_ = 0;
  SimTime busy_accum_;
  SimTime max_backlog_;
};

}  // namespace neutrino::sim
