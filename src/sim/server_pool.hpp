// Multi-core FIFO processing resource.
//
// Models one network function's worker cores (a CPF request core, a CTA
// consumer thread): jobs are served in arrival order by the earliest-free
// core; queueing delay emerges when the offered load exceeds capacity —
// this is what produces the paper's "saturation regions" (§6.3).
//
// Past the saturation knee a real node does not queue forever: its ingress
// queue is bounded and excess work is dropped at admission. set_capacity()
// turns that on (DESIGN.md §13): try_submit() then rejects jobs once the
// pool holds `capacity` jobs — and rejects *new attaches* earlier, at
// `attach_limit`, so the outage-sensitive classes (handover, service
// request, in-flight procedure traffic) keep headroom the way §3's
// sensitivity ordering demands. submit() stays unconditional for work that
// must never be shed (responses, replication).
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <vector>

#include "common/clock.hpp"
#include "common/flat_hash_map.hpp"
#include "sim/event_loop.hpp"

namespace neutrino::sim {

/// Admission class of a job offered to a bounded pool. Ordering mirrors
/// the paper's §3 outage sensitivity: handovers and service requests ride
/// the full queue; new attaches are shed first (they have no state to
/// lose and the UE retries with backoff).
enum class JobClass : std::uint8_t {
  kControl = 0,   // in-flight procedure traffic — full capacity
  kHandover = 1,  // full capacity (an expiring coverage grace behind it)
  kService = 2,   // full capacity (paging responses, app traffic)
  kAttach = 3,    // new attach — admitted only below attach_limit
};
inline constexpr std::size_t kJobClasses = 4;

class ServerPool {
 public:
  ServerPool(EventLoop& loop, int cores)
      : loop_(&loop), core_free_(static_cast<std::size_t>(cores)) {
    assert(cores > 0);
  }

  /// Bound the queue: at most `capacity` jobs queued + in service, with
  /// kAttach admitted only while the pool holds fewer than `attach_limit`
  /// jobs. capacity == 0 restores the unbounded legacy model.
  void set_capacity(std::size_t capacity, std::size_t attach_limit) {
    capacity_ = capacity;
    attach_limit_ = std::min(attach_limit, capacity);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Would a job of this class be admitted right now?
  [[nodiscard]] bool admits(JobClass cls) const {
    if (capacity_ == 0) return true;
    const std::size_t limit =
        cls == JobClass::kAttach ? attach_limit_ : capacity_;
    return inflight_ < limit;
  }

  /// Bounded admission: enqueue like submit() if the class is admitted,
  /// otherwise count the drop and destroy `done` (releasing whatever it
  /// owns — e.g. a MsgPool handle). Returns whether the job was accepted.
  bool try_submit(SimTime service, JobClass cls, EventLoop::Callback done) {
    if (!admits(cls)) {
      count_drop(cls);
      return false;
    }
    submit(service, std::move(done));
    return true;
  }

  /// Record a rejection decided by the caller (admits() checked first so
  /// the job — and its tracing — is never materialized).
  void count_drop(JobClass cls) { ++drops_[static_cast<std::size_t>(cls)]; }

  /// Enqueue a job taking `service` time; `done` fires at completion.
  /// Returns the completion time. Never rejects — use try_submit for
  /// load-sheddable work.
  SimTime submit(SimTime service, EventLoop::Callback done) {
    // Earliest-free core serves the job (FIFO across the pool).
    auto it = std::min_element(core_free_.begin(), core_free_.end());
    const SimTime start = std::max(*it, loop_->now());
    const SimTime finish = start + service;
    *it = finish;
    const std::uint64_t my_generation = generation_;
    ++inflight_;
    peak_depth_ = std::max(peak_depth_, inflight_);
    // The callback parks in a slot map so the scheduled event captures
    // only {this, id, generation} (24 bytes — inline in the event loop).
    // Capturing the InlineTask itself would nest one task inside another
    // and overflow the inline buffer.
    const std::uint64_t id = next_job_id_++;
    tasks_.try_emplace(id, std::move(done));
    loop_->schedule_at(finish, [this, id, my_generation] {
      // Generation fence: reset() (crash) bumps generation_ and drops all
      // parked callbacks, so a completion scheduled before the crash must
      // no-op here. Work lost this way is NOT redelivered by the pool —
      // redriving is the caller's job (the overload path retransmits
      // dropped/timed-out procedures from the UE side), and a re-driven
      // job is a fresh submission under the new generation with its own
      // slot id, so it delivers exactly once regardless of how many stale
      // completions from the old incarnation still sit in the event loop.
      if (my_generation != generation_) return;
      --inflight_;
      const auto it = tasks_.find(id);
      assert(it != tasks_.end());
      EventLoop::Callback cb = std::move(it->second);
      tasks_.erase(it);
      cb();
    });
    busy_accum_ += service;
    ++jobs_;
    max_backlog_ = std::max(max_backlog_, finish - loop_->now());
    return finish;
  }

  /// Current queueing delay a newly arriving job would see.
  [[nodiscard]] SimTime backlog() const {
    const SimTime earliest =
        *std::min_element(core_free_.begin(), core_free_.end());
    return std::max(SimTime{}, earliest - loop_->now());
  }

  /// Jobs submitted but not yet completed (queued + in service).
  [[nodiscard]] std::size_t queue_depth() const { return inflight_; }
  /// High-watermark of queue_depth() over the pool's lifetime (survives
  /// reset(): the crash does not erase that the depth was reached).
  [[nodiscard]] std::size_t peak_depth() const { return peak_depth_; }

  /// Jobs rejected at admission, per class / total (bounded pools only).
  [[nodiscard]] std::uint64_t drops(JobClass cls) const {
    return drops_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t dropped_total() const {
    std::uint64_t total = 0;
    for (const std::uint64_t d : drops_) total += d;
    return total;
  }

  /// Snapshot for occupancy samplers (obs time series).
  struct Occupancy {
    std::size_t depth = 0;  // jobs queued or in service
    SimTime backlog;        // delay a new arrival would see
  };
  [[nodiscard]] Occupancy occupancy() const { return {inflight_, backlog()}; }

  /// Drop all queued work and invalidate in-flight completions (crash).
  /// Capacity limits and drop/peak statistics survive — only the work
  /// dies. See the generation-fence comment in submit() for how post-reset
  /// retries of the lost jobs interact with stale completions.
  void reset() {
    ++generation_;
    inflight_ = 0;
    tasks_.clear();
    std::fill(core_free_.begin(), core_free_.end(), SimTime{});
  }

  [[nodiscard]] int cores() const {
    return static_cast<int>(core_free_.size());
  }
  [[nodiscard]] std::uint64_t jobs_served() const { return jobs_; }
  [[nodiscard]] SimTime busy_time() const { return busy_accum_; }
  [[nodiscard]] SimTime max_backlog() const { return max_backlog_; }

 private:
  EventLoop* loop_;
  std::vector<SimTime> core_free_;
  FlatHashMap<std::uint64_t, EventLoop::Callback> tasks_;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t inflight_ = 0;
  std::size_t peak_depth_ = 0;
  std::size_t capacity_ = 0;      // 0 = unbounded
  std::size_t attach_limit_ = 0;  // kAttach threshold when bounded
  std::array<std::uint64_t, kJobClasses> drops_{};
  std::uint64_t jobs_ = 0;
  SimTime busy_accum_;
  SimTime max_backlog_;
};

}  // namespace neutrino::sim
