// Deterministic discrete-event loop, nanosecond resolution.
//
// Replaces the paper's DPDK testbed as the execution substrate (see
// DESIGN.md §2): all latency figures in the PCT experiments emerge from
// events scheduled here — propagation delays, per-message service times,
// failure timers. Determinism (stable tie-break by insertion sequence)
// makes every experiment and test exactly reproducible.
//
// Internals are built for million-UE storms: a 4-ary implicit heap over
// small-buffer-optimized InlineTask callbacks (no per-event allocation for
// captures ≤ 48 bytes), fronted by an optional hashed timer wheel that
// absorbs the dominant near-future fixed-delay schedules. Ordering is
// bit-for-bit identical to a (when, seq) priority queue regardless of
// which structure an event lands in: the wheel drains one granularity
// tick at a time into a sorted buffer that is merged against the heap
// strictly by (when, seq).
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "sim/inline_task.hpp"

namespace neutrino::sim {

// Cache-line aligned: sharded runs keep one loop per shard in a dense
// vector, and the hot scalar block (now_/pending_/drain cursor) of one
// shard must not false-share with its neighbor's.
class alignas(64) EventLoop {
 public:
  using Callback = InlineTask;

  struct Config {
    /// Bucket near-future events by time tick instead of pushing them
    /// through the heap. Pure optimization: ordering is unaffected.
    bool use_timer_wheel = true;
    /// Width of one wheel tick. Events within the same tick are sorted
    /// on drain, so granularity only trades bucket count vs sort size.
    std::int64_t wheel_granularity_ns = 1'000;
    /// Number of ticks the wheel spans (must be a power of two). Events
    /// beyond `granularity * slots` from the cursor go to the heap.
    std::size_t wheel_slots = 4096;
  };

  EventLoop() : EventLoop(Config{}) {}

  explicit EventLoop(const Config& config)
      : wheel_enabled_(config.use_timer_wheel),
        granule_(config.wheel_granularity_ns),
        slots_(config.wheel_slots) {
    assert(granule_ > 0);
    assert(slots_ >= 2 && (slots_ & (slots_ - 1)) == 0);
    if (wheel_enabled_) {
      buckets_.resize(slots_);
      occupancy_.assign((slots_ + 63) / 64, 0);
    }
  }

  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_at(SimTime when, Callback cb) {
    Event ev{when, next_seq_++, std::move(cb)};
    ++pending_;
    if (wheel_enabled_) {
      if (wheel_count_ == 0 && drain_pos_ >= drain_.size()) {
        // Wheel idle: snap the cursor forward so the window covers the
        // near future again (it can never move backwards — events below
        // the cursor would desync from the drained-tick invariant).
        cursor_tick_ = std::max(cursor_tick_, tick_of(now_));
      }
      const std::int64_t tick = tick_of(when);
      if (tick >= cursor_tick_ &&
          static_cast<std::uint64_t>(tick - cursor_tick_) < slots_) {
        const std::size_t slot = static_cast<std::size_t>(tick) & (slots_ - 1);
        buckets_[slot].push_back(std::move(ev));
        occupancy_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
        ++wheel_count_;
        return;
      }
    }
    heap_push(std::move(ev));
  }

  void schedule_after(SimTime delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Run events until the queue drains or the horizon passes. Events at
  /// exactly `horizon` still run. Fused peek+pop: the (drain, heap) front
  /// comparison runs once per event instead of once in next_when() and
  /// again in pop_next() — this is the sharded-dispatch hot loop.
  void run_until(SimTime horizon) {
    while (pending_ > 0) {
      maybe_refill();
      if (drain_pos_ < drain_.size() &&
          (heap_.empty() || before(drain_[drain_pos_], heap_[0]))) {
        Event& front = drain_[drain_pos_];
        if (front.when > horizon) break;
        ++drain_pos_;
        now_ = front.when;
        --pending_;
        ++executed_;
        InlineTask task = std::move(front.task);
        task();
      } else {
        if (heap_[0].when > horizon) break;
        Event ev = heap_pop();
        now_ = ev.when;
        --pending_;
        ++executed_;
        ev.task();
      }
    }
    if (now_ < horizon) now_ = horizon;
  }

  /// Run until no events remain.
  void run() {
    while (pending_ > 0) step();
  }

  /// Timestamp of the earliest pending event, or SimTime::max() when the
  /// queue is empty. The conservative-window scheduler in sim/parallel
  /// keys its fast-forward off this (drain-until probe); may sort a wheel
  /// tick into the drain buffer, hence non-const.
  [[nodiscard]] SimTime next_time() {
    return pending_ == 0 ? SimTime::max() : next_when();
  }

  [[nodiscard]] bool empty() const { return pending_ == 0; }
  [[nodiscard]] std::size_t pending() const { return pending_; }
  /// Total events dispatched over the loop's lifetime (throughput counter).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // deterministic FIFO tie-break at equal times
    InlineTask task;
  };

  static bool before(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  [[nodiscard]] std::int64_t tick_of(SimTime t) const {
    // Floor division; negative times (never scheduled in practice) would
    // round toward zero, so route them through the < cursor heap path.
    return t.ns() / granule_;
  }

  void step() {
    Event ev = pop_next();
    now_ = ev.when;
    --pending_;
    ++executed_;
    ev.task();
  }

  /// Timestamp of the next event; only valid when pending_ > 0.
  SimTime next_when() {
    maybe_refill();
    const bool have_drain = drain_pos_ < drain_.size();
    if (!have_drain) return heap_[0].when;
    if (heap_.empty() || before(drain_[drain_pos_], heap_[0]))
      return drain_[drain_pos_].when;
    return heap_[0].when;
  }

  Event pop_next() {
    maybe_refill();
    if (drain_pos_ < drain_.size() &&
        (heap_.empty() || before(drain_[drain_pos_], heap_[0]))) {
      return std::move(drain_[drain_pos_++]);
    }
    return heap_pop();
  }

  /// Lazy wheel drain: refill only when the wheel's next occupied tick
  /// can actually precede the heap front. Draining eagerly would advance
  /// the cursor across empty ticks while earlier heap events still run,
  /// and their near-future successors would then land below the cursor
  /// and be exiled to the heap for good — the wheel starves. Acute in
  /// sharded runs, whose per-shard wheels are ~N× sparser (the cursor
  /// used to overshoot now_ by ~66 ticks on the 8-shard storm).
  void maybe_refill() {
    if (drain_pos_ < drain_.size() || wheel_count_ == 0) return;
    if (!heap_.empty() && tick_of(heap_[0].when) < wheel_next_tick()) {
      return;  // heap front strictly precedes any wheel event
    }
    refill_drain();
  }

  /// Tick of the earliest occupied wheel slot (wheel_count_ > 0 only);
  /// does not move the cursor.
  [[nodiscard]] std::int64_t wheel_next_tick() const {
    const std::size_t start =
        static_cast<std::size_t>(cursor_tick_) & (slots_ - 1);
    return cursor_tick_ + static_cast<std::int64_t>(next_occupied_offset(start));
  }

  /// Advance the cursor to the next non-empty bucket and sort its events
  /// into the drain buffer. New inserts for the drained tick fail the
  /// `tick >= cursor` window check and go to the heap, so the (when, seq)
  /// merge in pop_next() keeps global ordering exact.
  /// The wheel keeps a one-bit-per-slot occupancy bitmap so this is a
  /// ctz word scan, not a walk over empty bucket vectors — sharded runs
  /// leave each shard's wheel ~N× sparser than the legacy loop's, and the
  /// walk used to dominate per-event dispatch cost there.
  void refill_drain() {
    assert(wheel_count_ > 0);
    drain_.clear();
    drain_pos_ = 0;
    const std::size_t start =
        static_cast<std::size_t>(cursor_tick_) & (slots_ - 1);
    cursor_tick_ += static_cast<std::int64_t>(next_occupied_offset(start));
    const std::size_t slot =
        static_cast<std::size_t>(cursor_tick_) & (slots_ - 1);
    ++cursor_tick_;
    occupancy_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    drain_.swap(buckets_[slot]);
    wheel_count_ -= drain_.size();
    std::sort(drain_.begin(), drain_.end(), before);
  }

  /// Distance (in slots, circular) from `start` to the first occupied
  /// slot. Only called when wheel_count_ > 0, so a set bit exists; the
  /// wheel invariant (every live tick within [cursor, cursor + slots))
  /// makes slot order equal tick order, so the first set bit from the
  /// cursor is the next non-empty tick.
  [[nodiscard]] std::size_t next_occupied_offset(std::size_t start) const {
    std::size_t word = start >> 6;
    std::uint64_t bits =
        occupancy_[word] & (~std::uint64_t{0} << (start & 63));
    for (;;) {
      if (bits != 0) {
        const std::size_t slot =
            (word << 6) | static_cast<std::size_t>(std::countr_zero(bits));
        return (slot + slots_ - start) & (slots_ - 1);
      }
      word = word + 1 == occupancy_.size() ? 0 : word + 1;
      bits = occupancy_[word];
    }
  }

  void heap_push(Event ev) {
    std::size_t i = heap_.size();
    heap_.push_back(std::move(ev));
    Event tmp = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(tmp, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(tmp);
  }

  Event heap_pop() {
    assert(!heap_.empty());
    Event top = std::move(heap_[0]);
    Event last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      std::size_t i = 0;
      const std::size_t n = heap_.size();
      for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < end; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], last)) break;
        heap_[i] = std::move(heap_[best]);
        i = best;
      }
      heap_[i] = std::move(last);
    }
    return top;
  }

  // Hot scalar block first: the per-event loop touches now_/pending_/
  // executed_/drain_pos_/wheel_count_ on every step, so they share the
  // object's first cache line (the class itself is 64-aligned).
  SimTime now_;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t drain_pos_ = 0;  // consumed prefix of drain_
  std::size_t wheel_count_ = 0;
  std::int64_t cursor_tick_ = 0;

  std::vector<Event> drain_;  // current tick, sorted by (when, seq)

  // 4-ary implicit heap: shallower than binary (better for the sift-down
  // on pop) and the 4 children share cache lines at 80-byte events.
  std::vector<Event> heap_;

  // Timer wheel state. Invariant: every bucket holds events of at most one
  // tick value, and that tick is in [cursor_tick_, cursor_tick_ + slots_);
  // occupancy_ bit s is set iff buckets_[s] is non-empty.
  bool wheel_enabled_;
  std::int64_t granule_;
  std::size_t slots_;
  std::vector<std::vector<Event>> buckets_;
  std::vector<std::uint64_t> occupancy_;
};

}  // namespace neutrino::sim
