// Deterministic discrete-event loop, nanosecond resolution.
//
// Replaces the paper's DPDK testbed as the execution substrate (see
// DESIGN.md §2): all latency figures in the PCT experiments emerge from
// events scheduled here — propagation delays, per-message service times,
// failure timers. Determinism (stable tie-break by insertion sequence)
// makes every experiment and test exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"

namespace neutrino::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_at(SimTime when, Callback cb) {
    queue_.push(Event{when, next_seq_++, std::move(cb)});
  }

  void schedule_after(SimTime delay, Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  /// Run events until the queue drains or the horizon passes. Events at
  /// exactly `horizon` still run.
  void run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.top().when <= horizon) {
      Event ev = pop();
      now_ = ev.when;
      ev.callback();
    }
    if (now_ < horizon) now_ = horizon;
  }

  /// Run until no events remain.
  void run() {
    while (!queue_.empty()) {
      Event ev = pop();
      now_ = ev.when;
      ev.callback();
    }
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // deterministic FIFO tie-break at equal times
    Callback callback;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  Event pop() {
    // priority_queue::top() is const&; const_cast to move the callback out
    // before popping (the element is removed immediately after).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    return ev;
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace neutrino::sim
