// Small-buffer-optimized move-only callable for the event loop hot path.
//
// Every scheduled event used to be a std::function<void()>; with the
// message pool in place the typical capture is `this` plus a pooled-message
// handle (≤ 32 bytes), so a 48-byte inline buffer makes event scheduling
// allocation-free. Oversized or over-aligned callables fall back to a
// single heap allocation, preserving std::function's generality.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace neutrino::sim {

class InlineTask {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineCapacity = 48;

  InlineTask() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineTask> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineTask(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                       // the old `std::function<void()>` callback type.
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ptr_slot() = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineTask(InlineTask&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }
  /// True when the callable lives in the inline buffer (test hook for the
  /// zero-allocation guarantee).
  [[nodiscard]] bool stores_inline() const { return ops_ && !ops_->heap; }

  void reset() {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-construct into dst's storage from src's storage, then destroy
    /// the source. dst storage is raw (no live object).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*static_cast<D*>(self))(); },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* self) { static_cast<D*>(self)->~D(); },
      /*heap=*/false,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**static_cast<D**>(self))(); },
      [](void* dst, void* src) { std::memcpy(dst, src, sizeof(D*)); },
      [](void* self) { delete *static_cast<D**>(self); },
      /*heap=*/true,
  };

  void*& ptr_slot() { return *reinterpret_cast<void**>(storage_); }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(InlineTask) <= 64, "event hot-path size budget");

}  // namespace neutrino::sim
