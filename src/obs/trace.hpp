// Per-procedure trace recorder.
//
// A Span covers one UE control procedure from the frontend's start to its
// completion, including any Re-Attach continuation spawned by failure
// recovery. The core reports hop events against sim-time — propagation on
// each link, queueing and service at every pool (CTA, CPF request core,
// UPF), serialization where it sits on the critical path — and the tracer
// folds them into a latency decomposition whose components tile the
// procedure completion time exactly:
//
//   * every hop interval is clamped to the span's not-yet-accounted window
//     (a watermark), so overlapping or off-critical-path work never double
//     counts;
//   * whatever remains unattributed when the span ends is charged to
//     HopClass::kOther, so the components sum to the PCT by construction.
//
// Cost model: the core holds a `ProcTracer*` that is null by default;
// every instrumentation site is a pointer test and nothing else when
// tracing is off. With tracing on, event recording (the full hop list) is
// separately switchable from decomposition folding, so large bench runs
// can decompose millions of procedures without retaining timelines.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "core/msg.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace neutrino::obs {

/// Where a slice of procedure time was spent.
enum class HopClass : std::uint8_t {
  kPropagation,    // on the wire between nodes
  kQueueing,       // waiting for a pool core
  kService,        // being processed (includes CTA log append)
  kSerialization,  // state encode/decode on the critical path
  kOther,          // unattributed remainder (UE think time, model gaps)
};
inline constexpr std::size_t kHopClasses = 5;

constexpr std::string_view to_string(HopClass c) {
  switch (c) {
    case HopClass::kPropagation: return "propagation";
    case HopClass::kQueueing: return "queueing";
    case HopClass::kService: return "service";
    case HopClass::kSerialization: return "serialization";
    case HopClass::kOther: return "other";
  }
  return "?";
}

/// One recorded hop. `node` is a short static label ("cta", "cpf",
/// "upf", "ue->cta", ...) and `node_id` the instance (region / CPF id).
struct HopEvent {
  SimTime start;
  SimTime end;
  HopClass cls = HopClass::kOther;
  const char* node = "";
  std::uint32_t node_id = 0;
  core::MsgKind msg = core::MsgKind::kAttachRequest;
};

/// One procedure's trace.
struct Span {
  UeId ue;
  core::ProcedureType type = core::ProcedureType::kAttach;
  std::uint64_t first_seq = 0;  // proc_seq at begin()
  std::uint64_t last_seq = 0;   // grows when recovery re-attaches
  SimTime start;
  SimTime end;
  bool completed = false;
  bool under_failure = false;   // touched a recovery path
  bool reattached = false;      // continued via Re-Attach
  bool ryw_violation = false;
  std::vector<HopEvent> events;           // empty unless record_events
  std::array<std::int64_t, kHopClasses> decomp_ns{};
  SimTime accounted_until;                // decomposition watermark

  /// One non-overlapping slice of attributed time. Hops are charged when
  /// they are *scheduled*, so a slice can reach past the completion the
  /// frontend later observes; decomp_ns is settled from these at end(),
  /// clamped to [start, end], and the vector is then released.
  struct Charge {
    SimTime from;
    SimTime to;
    HopClass cls = HopClass::kOther;
  };
  std::vector<Charge> charges;

  [[nodiscard]] SimTime duration() const { return end - start; }
  [[nodiscard]] double duration_ms() const { return duration().ms(); }
  [[nodiscard]] std::int64_t attributed_ns() const {
    std::int64_t sum = 0;
    for (const std::int64_t v : decomp_ns) sum += v;
    return sum;
  }

  [[nodiscard]] Json to_json() const {
    Json j;
    j["ue"] = ue.value();
    j["proc"] = core::to_string(type);
    j["seq_first"] = first_seq;
    j["seq_last"] = last_seq;
    j["start_ms"] = start.ms();
    j["end_ms"] = end.ms();
    j["pct_ms"] = duration_ms();
    j["completed"] = completed;
    j["under_failure"] = under_failure;
    j["reattached"] = reattached;
    j["ryw_violation"] = ryw_violation;
    Json& decomp = j["decomposition_ms"];
    for (std::size_t c = 0; c < kHopClasses; ++c) {
      decomp[to_string(static_cast<HopClass>(c))] =
          static_cast<double>(decomp_ns[c]) / 1e6;
    }
    Json& hops = j["hops"];
    hops.make_array();
    for (const HopEvent& e : events) {
      Json h;
      h["t_ms"] = e.start.ms();
      h["dur_us"] = static_cast<double>((e.end - e.start).ns()) / 1e3;
      h["class"] = to_string(e.cls);
      h["node"] = std::string{e.node} + std::to_string(e.node_id);
      h["msg"] = core::to_string(e.msg);
      hops.push_back(std::move(h));
    }
    return j;
  }
};

struct TracerConfig {
  /// Retain per-span hop timelines (needed for dumps; costs memory).
  bool record_events = true;
  /// Keep every completed span (tests, small demos). Off: only the
  /// slowest / failed retention buffers below survive completion.
  bool keep_all = false;
  std::size_t keep_slowest = 16;
  std::size_t keep_failed = 64;
};

/// Records spans for in-flight procedures and retains the interesting
/// completed ones. Optionally folds decompositions into a Registry as
/// "core.pct_decomp_ms{component=...,proc=...}" histograms (components
/// plus "total", so mean components sum to mean total per proc type).
class ProcTracer {
 public:
  explicit ProcTracer(TracerConfig cfg = {}, Registry* registry = nullptr)
      : cfg_(cfg), registry_(registry) {}

  // ---- span lifecycle (called by the frontend) ----

  void begin(UeId ue, std::uint64_t seq, core::ProcedureType type,
             SimTime now) {
    Span& s = active_[ue.value()];
    s = Span{};
    s.ue = ue;
    s.type = type;
    s.first_seq = s.last_seq = seq;
    s.start = now;
    s.accounted_until = now;
  }

  /// Recovery continued this procedure under a new proc_seq (Re-Attach);
  /// the span keeps covering it.
  void annex(UeId ue, std::uint64_t new_seq) {
    if (Span* s = find(ue)) {
      s->last_seq = std::max(s->last_seq, new_seq);
      s->reattached = true;
      s->under_failure = true;
    }
  }

  void mark_under_failure(UeId ue) {
    if (Span* s = find(ue)) s->under_failure = true;
  }

  void mark_violation(UeId ue) {
    if (Span* s = find(ue)) s->ryw_violation = true;
  }

  void end(UeId ue, std::uint64_t seq, SimTime now) {
    const auto it = active_.find(ue.value());
    if (it == active_.end()) return;
    Span s = std::move(it->second);
    active_.erase(it);
    if (seq < s.first_seq || seq > s.last_seq) return;  // stale completion
    s.end = now;
    s.completed = true;
    // Settle the decomposition: charges are disjoint and start-ordered by
    // construction; clamp each to [start, end] (a hop scheduled just
    // before completion can reach past it) and charge the unattributed
    // remainder to kOther — components now tile [start, end] exactly.
    for (const Span::Charge& c : s.charges) {
      const SimTime to = std::min(c.to, s.end);
      if (to > c.from) {
        s.decomp_ns[static_cast<std::size_t>(c.cls)] += (to - c.from).ns();
      }
    }
    s.charges.clear();
    s.charges.shrink_to_fit();
    const std::int64_t gap = s.duration().ns() - s.attributed_ns();
    if (gap > 0) {
      s.decomp_ns[static_cast<std::size_t>(HopClass::kOther)] += gap;
    }
    fold(s);
    retain(std::move(s));
  }

  /// Drop an in-flight span without completing it (UE detached from the
  /// trace's point of view, e.g. tests resetting between phases).
  void abandon(UeId ue) { active_.erase(ue.value()); }

  // ---- hop recording (called by System / Cta / Cpf / Upf) ----

  void hop(const core::Msg& msg, HopClass cls, const char* node,
           std::uint32_t node_id, SimTime t0, SimTime t1) {
    Span* s = find(msg.ue);
    if (!s) return;
    if (msg.proc_seq < s->first_seq || msg.proc_seq > s->last_seq) return;
    // Replication chatter (checkpoint broadcast, its ACKs, outdated
    // notifies) races the response off the critical path; it shows up in
    // the event timeline but must not claim decomposition time. State
    // fetches stay accounted: a FastHandover's slow path waits on them.
    const bool off_path = msg.kind == core::MsgKind::kStateCheckpoint ||
                          msg.kind == core::MsgKind::kCheckpointAck ||
                          msg.kind == core::MsgKind::kOutdatedNotify;
    if (!off_path && t1 > t0) {
      // Clamp to the unaccounted window so overlapping hops (replays,
      // off-path work racing the reply) never double count.
      const SimTime lo = std::max(t0, s->accounted_until);
      if (t1 > lo) {
        s->charges.push_back({lo, t1, cls});
        s->accounted_until = t1;
      }
    }
    if (cfg_.record_events) {
      s->events.push_back({t0, t1, cls, node, node_id, msg.kind});
    }
  }

  // ---- retrieval ----

  [[nodiscard]] std::size_t active_spans() const { return active_.size(); }
  [[nodiscard]] std::uint64_t spans_completed() const { return completed_n_; }

  /// Every completed span, in completion order (keep_all only).
  [[nodiscard]] const std::vector<Span>& all() const { return all_; }
  /// Completed spans that hit a failure path or violated RYW.
  [[nodiscard]] const std::vector<Span>& failed() const { return failed_; }
  /// The retained slowest spans, slowest first.
  [[nodiscard]] std::vector<Span> slowest() const {
    std::vector<Span> out = slowest_;
    std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
      return a.duration() > b.duration();
    });
    return out;
  }

  /// JSON document with the N slowest and all retained failed spans.
  [[nodiscard]] Json dump_json(std::size_t max_slowest = 8) const {
    Json j;
    j["schema"] = "neutrino.trace-dump";
    j["version"] = 1;
    j["spans_completed"] = completed_n_;
    j["spans_in_flight"] = active_.size();
    Json& slow = j["slowest"];
    slow.make_array();
    const auto sorted = slowest();
    for (std::size_t i = 0; i < sorted.size() && i < max_slowest; ++i) {
      slow.push_back(sorted[i].to_json());
    }
    Json& fail = j["failed"];
    fail.make_array();
    for (const Span& s : failed_) fail.push_back(s.to_json());
    return j;
  }

 private:
  Span* find(UeId ue) {
    const auto it = active_.find(ue.value());
    return it == active_.end() ? nullptr : &it->second;
  }

  /// Push this span's decomposition into the registry histograms. All
  /// components are pushed (zeros included) so per-component means sum to
  /// the "total" mean exactly.
  void fold(const Span& s) {
    if (!registry_) return;
    const std::string proc{core::to_string(s.type)};
    for (std::size_t c = 0; c < kHopClasses; ++c) {
      registry_
          ->histogram("core.pct_decomp_ms",
                      {{"proc", proc},
                       {"component",
                        std::string{to_string(static_cast<HopClass>(c))}}})
          .add(static_cast<double>(s.decomp_ns[c]) / 1e6);
    }
    registry_
        ->histogram("core.pct_decomp_ms",
                    {{"proc", proc}, {"component", "total"}})
        .add(static_cast<double>(s.duration().ns()) / 1e6);
  }

  void retain(Span&& s) {
    ++completed_n_;
    if ((s.under_failure || s.ryw_violation) &&
        failed_.size() < cfg_.keep_failed) {
      failed_.push_back(s);
    }
    if (cfg_.keep_slowest > 0) {
      const auto faster = [](const Span& a, const Span& b) {
        return a.duration() > b.duration();  // min-heap on duration
      };
      if (slowest_.size() < cfg_.keep_slowest) {
        slowest_.push_back(s);
        std::push_heap(slowest_.begin(), slowest_.end(), faster);
      } else if (s.duration() > slowest_.front().duration()) {
        std::pop_heap(slowest_.begin(), slowest_.end(), faster);
        slowest_.back() = s;
        std::push_heap(slowest_.begin(), slowest_.end(), faster);
      }
    }
    if (cfg_.keep_all) all_.push_back(std::move(s));
  }

  TracerConfig cfg_;
  Registry* registry_;
  std::unordered_map<std::uint64_t, Span> active_;
  std::vector<Span> slowest_;  // min-heap by duration
  std::vector<Span> failed_;
  std::vector<Span> all_;
  std::uint64_t completed_n_ = 0;
};

}  // namespace neutrino::obs
