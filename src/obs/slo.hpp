// Per-procedure latency SLOs with windowed burn-rate tracking.
//
// A target says "p99 of attach PCT stays under 60 ms". Rather than wait
// for an end-of-run percentile, the tracker scores every completed
// procedure against its targets as it lands: a sample above the p99
// target spends error budget. The burn rate over a window is
//
//     burn = (violations / count) / (1 − quantile)
//
// i.e. how many times faster than "exactly on target" the budget is being
// spent — burn 1.0 means the run is tracking precisely at its p99 target,
// burn > 1 means the tail is worse than the target allows. This is the
// standard SRE multi-window burn-rate formulation, applied to sim-time
// windows so it is deterministic and mergeable across shards.
//
// All state is keyed by sim-time and procedure index: byte-identical
// across worker-thread counts, merged on join like every other windowed
// instrument (DESIGN.md §15).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "obs/json.hpp"
#include "obs/timeseries.hpp"

namespace neutrino::obs {

struct SloTarget {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  [[nodiscard]] bool enabled() const { return p99_ms > 0.0; }
};

class SloTracker {
 public:
  static constexpr std::size_t kQuantiles = 3;  // p50, p95, p99

  explicit SloTracker(SimTime window) : window_(window) {
    assert(window.ns() > 0);
  }

  /// Register a procedure's targets. `index` is the caller's procedure
  /// type index (core::ProcedureType); `name` labels the report section.
  void set_target(std::size_t index, std::string name, SloTarget target) {
    if (index >= procs_.size()) procs_.resize(index + 1);
    procs_[index].name = std::move(name);
    procs_[index].target = target;
  }

  [[nodiscard]] SimTime window() const { return window_; }

  /// Score one completed procedure. No-op for indices without a target.
  void record(SimTime at, std::size_t index, double pct_ms) {
    if (index >= procs_.size()) return;
    Proc& p = procs_[index];
    if (!p.target.enabled()) return;
    const std::int64_t idx = at.ns() / window_.ns();
    if (p.windows.empty() || p.windows.back().index != idx) {
      p.windows.push_back({idx, {}, {}});
    }
    Window& w = p.windows.back();
    ++w.count;
    ++p.count;
    const std::array<double, kQuantiles> bounds{
        p.target.p50_ms, p.target.p95_ms, p.target.p99_ms};
    for (std::size_t q = 0; q < kQuantiles; ++q) {
      if (pct_ms > bounds[q]) {
        ++w.violations[q];
        ++p.violations[q];
      }
    }
  }

  /// Merge another shard's tracker (same window, same target table).
  void merge(const SloTracker& other) {
    assert(window_ == other.window_);
    if (procs_.size() < other.procs_.size()) {
      procs_.resize(other.procs_.size());
    }
    for (std::size_t i = 0; i < other.procs_.size(); ++i) {
      const Proc& src = other.procs_[i];
      Proc& dst = procs_[i];
      if (dst.name.empty()) dst.name = src.name;
      if (!dst.target.enabled()) dst.target = src.target;
      dst.count += src.count;
      for (std::size_t q = 0; q < kQuantiles; ++q) {
        dst.violations[q] += src.violations[q];
      }
      // Two sorted-by-index window lists merge like WindowedSeries.
      std::vector<Window> merged;
      merged.reserve(dst.windows.size() + src.windows.size());
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < dst.windows.size() && b < src.windows.size()) {
        if (dst.windows[a].index < src.windows[b].index) {
          merged.push_back(dst.windows[a++]);
        } else if (src.windows[b].index < dst.windows[a].index) {
          merged.push_back(src.windows[b++]);
        } else {
          Window w = dst.windows[a++];
          const Window& o = src.windows[b++];
          w.count += o.count;
          for (std::size_t q = 0; q < kQuantiles; ++q) {
            w.violations[q] += o.violations[q];
          }
          merged.push_back(w);
        }
      }
      while (a < dst.windows.size()) merged.push_back(dst.windows[a++]);
      while (b < src.windows.size()) merged.push_back(src.windows[b++]);
      dst.windows = std::move(merged);
    }
  }

  /// burn = (violations/count) / (1 − q); 0 when no samples landed.
  static double burn_rate(std::uint64_t violations, std::uint64_t count,
                          double quantile) {
    if (count == 0) return 0.0;
    return (static_cast<double>(violations) / static_cast<double>(count)) /
           (1.0 - quantile);
  }

  /// {window_ms, procs: {name: {targets, count, violations, burn,
  ///  windows: [[t_ms, count, p99_violations, p99_burn], ...]}}}.
  [[nodiscard]] Json json() const {
    static constexpr std::array<double, kQuantiles> kQ{0.50, 0.95, 0.99};
    static constexpr std::array<const char*, kQuantiles> kQName{"p50", "p95",
                                                                "p99"};
    Json j;
    j["window_ms"] = window_.ms();
    Json& procs = j["procs"];
    procs.make_object();
    for (const Proc& p : procs_) {
      if (!p.target.enabled() || p.count == 0) continue;
      Json& entry = procs[p.name];
      Json& targets = entry["targets_ms"];
      targets["p50"] = p.target.p50_ms;
      targets["p95"] = p.target.p95_ms;
      targets["p99"] = p.target.p99_ms;
      entry["count"] = p.count;
      Json& viol = entry["violations"];
      Json& burn = entry["burn"];
      for (std::size_t q = 0; q < kQuantiles; ++q) {
        viol[kQName[q]] = p.violations[q];
        burn[kQName[q]] = burn_rate(p.violations[q], p.count, kQ[q]);
      }
      Json& windows = entry["windows"];
      windows.make_array();
      for (const Window& w : p.windows) {
        Json row;
        row.push_back(
            SimTime::nanoseconds(w.index * window_.ns()).ms());
        row.push_back(w.count);
        row.push_back(w.violations[kQuantiles - 1]);
        row.push_back(burn_rate(w.violations[kQuantiles - 1], w.count,
                                kQ[kQuantiles - 1]));
        windows.push_back(std::move(row));
      }
    }
    return j;
  }

  [[nodiscard]] bool any_samples() const {
    for (const Proc& p : procs_) {
      if (p.count > 0) return true;
    }
    return false;
  }

 private:
  struct Window {
    std::int64_t index = 0;
    std::uint64_t count = 0;
    std::array<std::uint64_t, kQuantiles> violations{};
  };
  struct Proc {
    std::string name;
    SloTarget target;
    std::uint64_t count = 0;
    std::array<std::uint64_t, kQuantiles> violations{};
    std::vector<Window> windows;  ///< sorted by index
  };

  SimTime window_;
  std::vector<Proc> procs_;
};

}  // namespace neutrino::obs
