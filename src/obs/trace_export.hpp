// Chrome/Perfetto trace-event JSON export (`--trace-out=`).
//
// Renders the telemetry the aggregates can't show spatially:
//   * procedure hop timelines — each retained span (slowest + failed)
//     becomes its own track under the "procedures" process, every hop an
//     "X" complete event, so PCT decomposition is visually inspectable
//     hop by hop;
//   * shard windows — each shard a track under the "sharded runtime"
//     process, one slice per conservative window plus a per-window
//     "events" counter, so barrier-bounded sync stalls are visible as
//     gaps between slices.
//
// Timestamps are *sim-time* microseconds (the trace-event format's native
// unit). Load the file at https://ui.perfetto.dev or chrome://tracing.
// Format reference: the Chromium "Trace Event Format" doc; only "M"
// (metadata), "X" (complete) and "C" (counter) events are emitted.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace neutrino::obs {

/// One conservative window as logged by the sharded runtime: bounds,
/// cross-shard messages drained at its barrier, per-shard events executed.
struct ShardWindowRecord {
  SimTime start;
  SimTime end;
  std::uint64_t cross_messages = 0;
  std::vector<std::uint64_t> executed;  ///< per shard, this window
};

namespace detail {

inline constexpr int kProcPid = 1;
inline constexpr int kShardPid = 2;

inline double us(SimTime t) { return static_cast<double>(t.ns()) / 1e3; }

inline Json meta_event(int pid, int tid, const char* what, std::string name) {
  Json j;
  j["name"] = what;
  j["ph"] = "M";
  j["pid"] = pid;
  j["tid"] = tid;
  j["args"]["name"] = std::move(name);
  return j;
}

inline Json complete_event(int pid, int tid, std::string name,
                           std::string_view cat, SimTime start, SimTime end) {
  Json j;
  j["name"] = std::move(name);
  j["cat"] = cat;
  j["ph"] = "X";
  j["ts"] = us(start);
  j["dur"] = us(end < start ? SimTime{} : end - start);
  j["pid"] = pid;
  j["tid"] = tid;
  return j;
}

}  // namespace detail

/// Build a trace-event document from a tracer's retained spans (slowest
/// first, then retained failed spans not already included) and, when a
/// sharded run logged them, per-shard window tracks. Either input may be
/// empty; the result is always a well-formed trace.
inline Json perfetto_trace(const ProcTracer* tracer,
                           const std::vector<ShardWindowRecord>& windows = {},
                           std::size_t max_spans = 64) {
  Json doc;
  doc["displayTimeUnit"] = "ms";
  Json& events = doc["traceEvents"];
  events.make_array();

  // --- procedure tracks ---
  std::vector<Span> spans;
  if (tracer != nullptr) {
    spans = tracer->slowest();
    for (const Span& f : tracer->failed()) {
      bool seen = false;
      for (const Span& s : spans) {
        if (s.ue == f.ue && s.first_seq == f.first_seq) {
          seen = true;
          break;
        }
      }
      if (!seen) spans.push_back(f);
    }
    if (spans.size() > max_spans) spans.resize(max_spans);
  }
  if (!spans.empty()) {
    events.push_back(detail::meta_event(detail::kProcPid, 0, "process_name",
                                        "procedures"));
  }
  int tid = 0;
  for (const Span& s : spans) {
    ++tid;
    char label[96];
    std::snprintf(label, sizeof label, "%s ue=%llu (%.2f ms)%s",
                  std::string{core::to_string(s.type)}.c_str(),
                  static_cast<unsigned long long>(s.ue.value()),
                  s.duration_ms(), s.under_failure ? " [failure]" : "");
    events.push_back(detail::meta_event(detail::kProcPid, tid, "thread_name",
                                        label));
    Json span_ev = detail::complete_event(
        detail::kProcPid, tid, std::string{core::to_string(s.type)},
        "procedure", s.start, s.end);
    span_ev["args"]["ue"] = s.ue.value();
    span_ev["args"]["pct_ms"] = s.duration_ms();
    span_ev["args"]["under_failure"] = s.under_failure;
    events.push_back(std::move(span_ev));
    for (const HopEvent& h : s.events) {
      // Clamp to the span so hops scheduled past completion still nest.
      const SimTime h_end = h.end < s.end ? h.end : s.end;
      std::string name = std::string{core::to_string(h.msg)} + "@" + h.node +
                         std::to_string(h.node_id);
      Json hop_ev = detail::complete_event(detail::kProcPid, tid,
                                           std::move(name), to_string(h.cls),
                                           h.start, h_end);
      hop_ev["args"]["class"] = to_string(h.cls);
      events.push_back(std::move(hop_ev));
    }
  }

  // --- shard window tracks ---
  if (!windows.empty()) {
    events.push_back(detail::meta_event(detail::kShardPid, 0, "process_name",
                                        "sharded runtime"));
    const std::size_t shards = windows.front().executed.size();
    for (std::size_t sh = 0; sh < shards; ++sh) {
      events.push_back(detail::meta_event(detail::kShardPid,
                                          static_cast<int>(sh) + 1,
                                          "thread_name",
                                          "shard " + std::to_string(sh)));
    }
    std::uint64_t n = 0;
    for (const ShardWindowRecord& w : windows) {
      ++n;
      for (std::size_t sh = 0; sh < shards && sh < w.executed.size(); ++sh) {
        if (w.executed[sh] == 0) continue;  // shard idle this window
        Json ev = detail::complete_event(detail::kShardPid,
                                         static_cast<int>(sh) + 1,
                                         "window " + std::to_string(n),
                                         "window", w.start, w.end);
        ev["args"]["events"] = w.executed[sh];
        events.push_back(std::move(ev));
        Json ctr;
        ctr["name"] = "events/window";
        ctr["ph"] = "C";
        ctr["ts"] = detail::us(w.start);
        ctr["pid"] = detail::kShardPid;
        ctr["tid"] = static_cast<int>(sh) + 1;
        ctr["args"]["events"] = w.executed[sh];
        events.push_back(std::move(ctr));
      }
      if (w.cross_messages > 0) {
        Json ctr;
        ctr["name"] = "cross-shard messages";
        ctr["ph"] = "C";
        ctr["ts"] = detail::us(w.end);
        ctr["pid"] = detail::kShardPid;
        ctr["tid"] = 0;
        ctr["args"]["messages"] = w.cross_messages;
        events.push_back(std::move(ctr));
      }
    }
  }
  return doc;
}

}  // namespace neutrino::obs
