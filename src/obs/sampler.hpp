// Bounded periodic sampling against the event loop.
//
// The loop's run() drains the queue to empty, so an unbounded
// self-rescheduling sampler would keep a simulation alive forever. This
// one schedules a finite chain: it stops after `until`, and the caller
// decides what each tick observes (queue depths, log occupancy, ...).
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "common/clock.hpp"
#include "sim/event_loop.hpp"

namespace neutrino::obs {

class PeriodicSampler {
 public:
  /// Calls `fn()` every `interval` from `interval` until `until`
  /// (inclusive). All ticks are scheduled up front; the object may be
  /// destroyed after construction ends — the closure owns the callback.
  static void schedule(sim::EventLoop& loop, SimTime interval, SimTime until,
                       std::function<void()> fn) {
    const auto shared = std::make_shared<std::function<void()>>(std::move(fn));
    for (SimTime at = loop.now() + interval; at <= until; at = at + interval) {
      loop.schedule_at(at, [shared] { (*shared)(); });
    }
  }
};

}  // namespace neutrino::obs
