// Flight recorder: a bounded ring of recent structured events.
//
// Answers "what led up to it": node crashes/restores, overload sheds and
// drops, NAS retransmissions and budget exhaustions, reattaches. Each
// System (one per shard in a sharded run) carries its own recorder; the
// chaos harness dumps the merged ring next to the `.chaos-repro` artifact
// when an invariant trips, so every reproducer ships with the seconds of
// history before the violation.
//
// Determinism: events are stamped with sim-time and a per-recorder
// sequence number assigned in execution order, which for a single shard is
// thread-count independent (a shard's intra-window execution is
// sequential). merge_flight() orders the union by (time, shard, seq), so
// the merged dump is byte-identical across worker-thread counts too.
// Wall-clock never enters a flight record.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "obs/json.hpp"

namespace neutrino::obs {

class FlightRecorder {
 public:
  enum class Kind : std::uint8_t {
    kCrashCpf = 0,
    kCrashCta,
    kRestoreCpf,
    kAttachShed,      ///< new attach rejected at a bounded queue
    kOverloadDrop,    ///< non-attach job rejected at a bounded queue
    kNasRetx,         ///< frontend retransmission timer fired
    kRetxExhausted,   ///< retry budget spent; UE falls back to re-attach
    kReattach,        ///< recovery re-attach started
    kViolation,       ///< invariant observer flagged this run
  };

  struct Event {
    SimTime at;
    std::uint64_t seq = 0;  ///< per-recorder, execution order
    Kind kind = Kind::kCrashCpf;
    std::int64_t a = -1;  ///< primary id (cpf, cta, ue — kind-dependent)
    std::int64_t b = -1;  ///< secondary id (region, class — kind-dependent)
    const char* detail = "";  ///< static string; never owned
  };

  explicit FlightRecorder(std::size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.reserve(capacity_);
  }

  static const char* kind_name(Kind k) {
    switch (k) {
      case Kind::kCrashCpf:
        return "crash_cpf";
      case Kind::kCrashCta:
        return "crash_cta";
      case Kind::kRestoreCpf:
        return "restore_cpf";
      case Kind::kAttachShed:
        return "attach_shed";
      case Kind::kOverloadDrop:
        return "overload_drop";
      case Kind::kNasRetx:
        return "nas_retx";
      case Kind::kRetxExhausted:
        return "retx_exhausted";
      case Kind::kReattach:
        return "reattach";
      case Kind::kViolation:
        return "violation";
    }
    return "?";
  }

  void record(SimTime at, Kind kind, std::int64_t a = -1, std::int64_t b = -1,
              const char* detail = "") {
    Event e{at, total_++, kind, a, b, detail};
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
      return;
    }
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Events recorded over the recorder's lifetime (retained + evicted).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Events pushed out of the ring by later ones.
  [[nodiscard]] std::uint64_t dropped() const { return total_ - ring_.size(); }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> recent() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  [[nodiscard]] Json dump_json() const {
    return events_json(recent(), /*with_shard=*/false);
  }

  /// Merge several shards' rings into one chronological dump. Events sort
  /// by (sim-time, shard, per-recorder seq) — a total order independent of
  /// worker-thread scheduling. `recorders[i]` may be null (skipped).
  static Json merge_flight(const std::vector<const FlightRecorder*>& recorders) {
    struct Tagged {
      Event e;
      std::size_t shard;
    };
    std::vector<Tagged> all;
    std::uint64_t dropped = 0;
    for (std::size_t s = 0; s < recorders.size(); ++s) {
      if (recorders[s] == nullptr) continue;
      dropped += recorders[s]->dropped();
      for (const Event& e : recorders[s]->recent()) all.push_back({e, s});
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Tagged& x, const Tagged& y) {
                       if (x.e.at.ns() != y.e.at.ns())
                         return x.e.at.ns() < y.e.at.ns();
                       if (x.shard != y.shard) return x.shard < y.shard;
                       return x.e.seq < y.e.seq;
                     });
    Json doc;
    doc["schema"] = "neutrino.flight-recorder";
    doc["version"] = std::int64_t{1};
    doc["dropped"] = static_cast<std::int64_t>(dropped);
    Json& events = doc["events"];
    events.make_array();
    for (const Tagged& t : all) {
      events.push_back(event_json(t.e, static_cast<std::int64_t>(t.shard)));
    }
    return doc;
  }

 private:
  static Json event_json(const Event& e, std::int64_t shard) {
    Json j;
    j["t_ms"] = e.at.ms();
    if (shard >= 0) j["shard"] = shard;
    j["seq"] = static_cast<std::int64_t>(e.seq);
    j["kind"] = kind_name(e.kind);
    if (e.a >= 0) j["a"] = e.a;
    if (e.b >= 0) j["b"] = e.b;
    if (e.detail != nullptr && e.detail[0] != '\0') j["detail"] = e.detail;
    return j;
  }

  static Json events_json(const std::vector<Event>& events, bool with_shard) {
    (void)with_shard;
    Json doc;
    doc["schema"] = "neutrino.flight-recorder";
    doc["version"] = std::int64_t{1};
    Json& arr = doc["events"];
    arr.make_array();
    for (const Event& e : events) arr.push_back(event_json(e, -1));
    return doc;
  }

  const std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< index of the oldest retained event once full
  std::uint64_t total_ = 0;
};

}  // namespace neutrino::obs
