// Wall-clock and memory instrumentation for throughput benches.
//
// The simulator's own clock measures *simulated* time; throughput numbers
// (events/sec, procedures/sec) need real elapsed time and the process's
// peak resident set, which this header wraps portably enough for the
// bench targets (Linux is the primary platform; ru_maxrss units differ
// on macOS and are handled).
#pragma once

#include <chrono>
#include <cstddef>

#if defined(_WIN32)
// No getrusage; peak_rss_bytes() reports 0 rather than failing the build.
#else
#include <sys/resource.h>
#endif

namespace neutrino::obs {

/// Monotonic wall-clock stopwatch (steady_clock).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Peak resident set size of this process, in bytes (0 if unavailable).
inline std::size_t peak_rss_bytes() {
#if defined(_WIN32)
  return 0;
#else
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#endif
}

/// Ordering-independent RSS accounting for multi-run benches.
///
/// ru_maxrss is a process-lifetime watermark: once any run has touched N
/// bytes, every later sample reads ≥ N, so reporting the raw value made
/// row order matter (PR 5's fig_saturation had to run its unbounded
/// baseline last). RssMeter reports each run as a *delta of the
/// watermark*: how much this run pushed the peak beyond everything before
/// it. A run that stays under an earlier peak reports 0 — accurate ("did
/// not raise the peak") and the same in any order that keeps the largest
/// run largest.
class RssMeter {
 public:
  /// Capture the bench-start baseline (record it in the report config).
  RssMeter() : baseline_(peak_rss_bytes()), mark_(baseline_) {}

  [[nodiscard]] std::size_t baseline_bytes() const { return baseline_; }

  /// Call before a run: remembers the current watermark.
  void begin_run() { mark_ = peak_rss_bytes(); }

  /// Call after the run: watermark growth attributable to it (0 if the
  /// run stayed under a previously reached peak).
  [[nodiscard]] std::size_t run_delta_bytes() const {
    const std::size_t now = peak_rss_bytes();
    return now > mark_ ? now - mark_ : 0;
  }

 private:
  std::size_t baseline_;
  std::size_t mark_;
};

}  // namespace neutrino::obs
