// Wall-clock and memory instrumentation for throughput benches.
//
// The simulator's own clock measures *simulated* time; throughput numbers
// (events/sec, procedures/sec) need real elapsed time and the process's
// peak resident set, which this header wraps portably enough for the
// bench targets (Linux is the primary platform; ru_maxrss units differ
// on macOS and are handled).
#pragma once

#include <chrono>
#include <cstddef>

#if defined(_WIN32)
// No getrusage; peak_rss_bytes() reports 0 rather than failing the build.
#else
#include <sys/resource.h>
#endif

namespace neutrino::obs {

/// Monotonic wall-clock stopwatch (steady_clock).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Peak resident set size of this process, in bytes (0 if unavailable).
inline std::size_t peak_rss_bytes() {
#if defined(_WIN32)
  return 0;
#else
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#endif
}

}  // namespace neutrino::obs
