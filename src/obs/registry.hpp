// Named, labeled metric instruments backing core::Metrics and the benches.
//
// The registry owns every instrument; handles returned from counter() /
// gauge() / histogram() / time_series() are stable for the registry's
// lifetime (std::map nodes never move), so hot paths look a metric up once
// and keep the reference. Keys are `name` plus a sorted label set — the
// same (name, labels) pair always yields the same instrument.
//
// Naming convention (see DESIGN.md §10): dotted lowercase path whose first
// segment is the owning component — "core.procedures_completed",
// "cta.log_bytes", "cpf.request_backlog_us", "frontend.completions".
// Units are spelled in the name suffix when not obvious (_ms, _us, _bytes).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "obs/timeseries.hpp"

namespace neutrino::obs {

/// Label set attached to an instrument, e.g. {{"proc","attach"},{"region","0"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count. Implicitly converts to its value so legacy
/// `std::uint64_t` counter fields can become `Counter&` without touching
/// call sites (`++m.replays`, `m.replays += n`, `EXPECT_EQ(m.replays, 2u)`).
class Counter {
 public:
  Counter& operator++() {
    ++value_;
    return *this;
  }
  Counter operator++(int) {
    Counter old = *this;
    ++value_;
    return old;
  }
  Counter& operator+=(std::uint64_t n) {
    value_ += n;
    return *this;
  }
  void reset() { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  operator std::uint64_t() const { return value_; }  // NOLINT(google-explicit-constructor)

  friend std::ostream& operator<<(std::ostream& os, const Counter& c) {
    return os << c.value_;
  }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written scalar, with a convenience high-watermark update.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  /// Keep the maximum of the current and the offered value.
  void high_watermark(double v) { value_ = value_ > v ? value_ : v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Timestamped samples (queue depth, log occupancy) pushed by a sampler.
class TimeSeries {
 public:
  struct Point {
    SimTime at;
    double value = 0.0;
  };

  void push(SimTime at, double value) { points_.push_back({at, value}); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] double max() const {
    double m = 0.0;
    for (const Point& p : points_) m = p.value > m ? p.value : m;
    return m;
  }

 private:
  std::vector<Point> points_;
};

/// Owns all instruments. Lookup creates on first use; instruments live as
/// long as the registry (moving the registry moves map ownership, not the
/// nodes, so outstanding references stay valid — core::Metrics relies on
/// this when an ExperimentResult is moved out of run_experiment).
class Registry {
 public:
  Counter& counter(std::string_view name, const Labels& labels = {}) {
    return counters_[key(name, labels)].instrument;
  }
  Gauge& gauge(std::string_view name, const Labels& labels = {}) {
    return gauges_[key(name, labels)].instrument;
  }
  LatencyRecorder& histogram(std::string_view name, const Labels& labels = {}) {
    return histograms_[key(name, labels)].instrument;
  }
  TimeSeries& time_series(std::string_view name, const Labels& labels = {}) {
    return series_[key(name, labels)].instrument;
  }
  /// Fixed-interval windowed series (DESIGN.md §15). `window`/`agg` apply
  /// on first use; later lookups must pass the same parameters.
  WindowedSeries& windowed(std::string_view name, SimTime window,
                           WindowAgg agg, const Labels& labels = {}) {
    WindowedSeries& w = windowed_[key(name, labels)].instrument;
    w.configure(window, agg);
    return w;
  }

  /// Lookup without creation; nullptr if the instrument was never touched.
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            const Labels& labels = {}) const {
    return find(counters_, name, labels);
  }
  [[nodiscard]] const LatencyRecorder* find_histogram(
      std::string_view name, const Labels& labels = {}) const {
    return find(histograms_, name, labels);
  }
  [[nodiscard]] const TimeSeries* find_time_series(
      std::string_view name, const Labels& labels = {}) const {
    return find(series_, name, labels);
  }
  [[nodiscard]] const WindowedSeries* find_windowed(
      std::string_view name, const Labels& labels = {}) const {
    return find(windowed_, name, labels);
  }

  /// Visitors iterate in key order (name, then labels) — deterministic
  /// export. `f(key, instrument)` where key is "name{k=v,...}" or "name".
  template <class F>
  void for_each_counter(F&& f) const {
    for (const auto& [k, cell] : counters_) f(k, cell.instrument);
  }
  template <class F>
  void for_each_gauge(F&& f) const {
    for (const auto& [k, cell] : gauges_) f(k, cell.instrument);
  }
  template <class F>
  void for_each_histogram(F&& f) const {
    for (const auto& [k, cell] : histograms_) f(k, cell.instrument);
  }
  template <class F>
  void for_each_time_series(F&& f) const {
    for (const auto& [k, cell] : series_) f(k, cell.instrument);
  }
  template <class F>
  void for_each_windowed(F&& f) const {
    for (const auto& [k, cell] : windowed_) f(k, cell.instrument);
  }

  /// Fold another registry in (per-shard instruments joining at the end
  /// of a sharded run): counters add, gauges keep the high watermark,
  /// histograms merge distributions, time series concatenate, windowed
  /// series combine same-index buckets by their aggregation kind. Each
  /// label set is owned by exactly one shard (System::sample_occupancy
  /// and sample_telemetry skip shadow nodes), so concatenation preserves
  /// per-series time order.
  void merge(const Registry& other) {
    for (const auto& [k, cell] : other.counters_) {
      counters_[k].instrument += cell.instrument.value();
    }
    for (const auto& [k, cell] : other.gauges_) {
      gauges_[k].instrument.high_watermark(cell.instrument.value());
    }
    for (const auto& [k, cell] : other.histograms_) {
      histograms_[k].instrument.merge(cell.instrument);
    }
    for (const auto& [k, cell] : other.series_) {
      TimeSeries& dst = series_[k].instrument;
      for (const TimeSeries::Point& p : cell.instrument.points()) {
        dst.push(p.at, p.value);
      }
    }
    for (const auto& [k, cell] : other.windowed_) {
      windowed_[k].instrument.merge(cell.instrument);
    }
  }

  /// Canonical flat key: name, then "{k=v,...}" with labels sorted by key.
  static std::string key(std::string_view name, const Labels& labels) {
    std::string k{name};
    if (!labels.empty()) {
      Labels sorted = labels;
      std::sort(sorted.begin(), sorted.end());
      k += '{';
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i) k += ',';
        k += sorted[i].first;
        k += '=';
        k += sorted[i].second;
      }
      k += '}';
    }
    return k;
  }

 private:
  template <class T>
  struct Cell {
    T instrument;
  };

  template <class T>
  static const T* find(const std::map<std::string, Cell<T>>& m,
                       std::string_view name, const Labels& labels) {
    const auto it = m.find(key(name, labels));
    return it == m.end() ? nullptr : &it->second.instrument;
  }

  std::map<std::string, Cell<Counter>> counters_;
  std::map<std::string, Cell<Gauge>> gauges_;
  std::map<std::string, Cell<LatencyRecorder>> histograms_;
  std::map<std::string, Cell<TimeSeries>> series_;
  std::map<std::string, Cell<WindowedSeries>> windowed_;
};

}  // namespace neutrino::obs
