// A minimal JSON document builder + writer for trace dumps and bench
// reports. Build-side only: no parser, no third-party dependency, output
// is deterministic (object keys keep insertion order) so report diffs are
// meaningful across runs.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace neutrino::obs {

/// One JSON value. Objects preserve insertion order; `operator[]` on an
/// object creates the key on first use (and turns a null into an object),
/// so documents read like assignments:
///
///   Json doc;
///   doc["schema"] = "neutrino.bench-report";
///   doc["rows"].push_back(row);
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}  // NOLINT
  Json(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : type_(Type::kNumber), num_(static_cast<double>(i)), int_(i),
        is_int_(true) {}
  Json(std::uint64_t u)  // NOLINT(google-explicit-constructor)
      : Json(static_cast<std::int64_t>(u)) {}
  Json(std::uint32_t u) : Json(static_cast<std::int64_t>(u)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : type_(Type::kString), str_(s) {}  // NOLINT

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  /// Object access; creates the member on first use.
  Json& operator[](std::string_view k) {
    become(Type::kObject);
    for (auto& [key, v] : members_) {
      if (key == k) return *v;
    }
    members_.emplace_back(std::string{k}, std::make_unique<Json>());
    return *members_.back().second;
  }

  /// Array append.
  Json& push_back(Json v) {
    become(Type::kArray);
    elems_.push_back(std::make_unique<Json>(std::move(v)));
    return *elems_.back();
  }
  /// Force array type even while empty (so "[]" is emitted, not "null").
  void make_array() { become(Type::kArray); }
  void make_object() { become(Type::kObject); }

  [[nodiscard]] std::size_t size() const {
    return type_ == Type::kArray ? elems_.size() : members_.size();
  }

  /// Serialize. `indent` = 2 pretty-prints; 0 emits one line.
  [[nodiscard]] std::string dump(int indent = 2) const {
    std::string out;
    write(out, indent, 0);
    if (indent > 0) out += '\n';
    return out;
  }

  static void escape(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

 private:
  void become(Type t) {
    if (type_ == Type::kNull) type_ = t;
  }

  void write(std::string& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
    const char* nl = indent > 0 ? "\n" : "";
    switch (type_) {
      case Type::kNull: out += "null"; break;
      case Type::kBool: out += bool_ ? "true" : "false"; break;
      case Type::kNumber: {
        char buf[48];
        if (is_int_) {
          std::snprintf(buf, sizeof buf, "%" PRId64, int_);
        } else if (!std::isfinite(num_)) {
          std::snprintf(buf, sizeof buf, "null");  // JSON has no inf/nan
        } else {
          std::snprintf(buf, sizeof buf, "%.9g", num_);
        }
        out += buf;
        break;
      }
      case Type::kString: escape(out, str_); break;
      case Type::kArray: {
        if (elems_.empty()) {
          out += "[]";
          break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < elems_.size(); ++i) {
          if (indent > 0) out += pad;
          elems_[i]->write(out, indent, depth + 1);
          if (i + 1 < elems_.size()) out += ',';
          out += nl;
        }
        if (indent > 0) out += close_pad;
        out += ']';
        break;
      }
      case Type::kObject: {
        if (members_.empty()) {
          out += "{}";
          break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (indent > 0) out += pad;
          escape(out, members_[i].first);
          out += indent > 0 ? ": " : ":";
          members_[i].second->write(out, indent, depth + 1);
          if (i + 1 < members_.size()) out += ',';
          out += nl;
        }
        if (indent > 0) out += close_pad;
        out += '}';
        break;
      }
    }
  }

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<std::unique_ptr<Json>> elems_;
  std::vector<std::pair<std::string, std::unique_ptr<Json>>> members_;
};

}  // namespace neutrino::obs
