// JSON fragments shared by the structured exporter: recorder summaries,
// registry dumps, and the versioned bench-report envelope (schema
// documented in DESIGN.md §10).
#pragma once

#include <string_view>

#include "common/stats.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace neutrino::obs {

inline constexpr std::string_view kBenchReportSchema = "neutrino.bench-report";
// Version history:
//   1 — initial envelope: figure/title/config + rows with counters,
//       gauges, decomposition and time series.
//   2 — every row carries "mode" ("single-thread" | "sharded"); sharded
//       rows add shards/threads/windows/cross_shard_messages/shard_events
//       (the sharded-runtime scaling figures, DESIGN.md §11).
inline constexpr int kBenchReportVersion = 2;

/// count/mean/p50/p90/p99/p999/max of a recorder, as a JSON object.
inline Json summary_json(const LatencyRecorder& r) {
  const LatencyRecorder::Summary s = r.summary();
  Json j;
  j["count"] = s.count;
  j["mean"] = s.mean;
  j["p50"] = s.p50;
  j["p90"] = s.p90;
  j["p99"] = s.p99;
  j["p999"] = s.p999;
  j["max"] = s.max;
  return j;
}

/// All counters as a flat {key: value} object.
inline Json counters_json(const Registry& reg) {
  Json j;
  j.make_object();
  reg.for_each_counter([&j](const std::string& key, const Counter& c) {
    j[key] = c.value();
  });
  return j;
}

/// All gauges as a flat {key: value} object.
inline Json gauges_json(const Registry& reg) {
  Json j;
  j.make_object();
  reg.for_each_gauge(
      [&j](const std::string& key, const Gauge& g) { j[key] = g.value(); });
  return j;
}

/// All histograms as {key: summary} (includes the PCT decomposition
/// "core.pct_decomp_ms{component=...,proc=...}" entries when a
/// decomposing tracer ran).
inline Json histograms_json(const Registry& reg) {
  Json j;
  j.make_object();
  reg.for_each_histogram(
      [&j](const std::string& key, const LatencyRecorder& h) {
        j[key] = summary_json(h);
      });
  return j;
}

/// Time series as {key: {max, n, points: [[t_ms, v], ...]}}, downsampled
/// to at most `max_points` evenly spaced samples per series.
inline Json time_series_json(const Registry& reg,
                             std::size_t max_points = 256) {
  Json j;
  j.make_object();
  reg.for_each_time_series([&](const std::string& key, const TimeSeries& ts) {
    Json& entry = j[key];
    entry["n"] = ts.points().size();
    entry["max"] = ts.max();
    Json& pts = entry["points"];
    pts.make_array();
    const std::size_t n = ts.points().size();
    const std::size_t stride = n > max_points ? (n + max_points - 1) / max_points : 1;
    for (std::size_t i = 0; i < n; i += stride) {
      const TimeSeries::Point& p = ts.points()[i];
      Json pair;
      pair.push_back(p.at.ms());
      pair.push_back(p.value);
      pts.push_back(std::move(pair));
    }
  });
  return j;
}

}  // namespace neutrino::obs
