// JSON fragments shared by the structured exporter: recorder summaries,
// registry dumps, and the versioned bench-report envelope (schema
// documented in DESIGN.md §10).
#pragma once

#include <string_view>

#include "common/stats.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"

namespace neutrino::obs {

inline constexpr std::string_view kBenchReportSchema = "neutrino.bench-report";
// Version history:
//   1 — initial envelope: figure/title/config + rows with counters,
//       gauges, decomposition and time series.
//   2 — every row carries "mode" ("single-thread" | "sharded"); sharded
//       rows add shards/threads/windows/cross_shard_messages/shard_events
//       (the sharded-runtime scaling figures, DESIGN.md §11).
//   3 — telemetry sections (DESIGN.md §15): rows may add "timeseries"
//       (fixed-interval windowed series), "slo" (per-procedure targets +
//       windowed burn rates) and "profiler" (wall-clock phase shares —
//       nondeterministic by design, never compared byte-for-byte).
//   4 — traffic scenarios (DESIGN.md §17): benches run with --scenario=
//       echo a config "scenario" object (name + generation parameters);
//       scenario-driven rows carry "scenario", an "arrivals" section
//       (total + per-class counts summing to it) and an "arrival_series"
//       (windowed offered-arrival counts summing to the total).
//   5 — mobility (DESIGN.md §18): fig_mobility echoes a config "mobility"
//       object (grid geometry, ping-pong accounting, and per-class
//       crossing-rate validation against the corrected (4/pi)v/L closed
//       form with its tolerance); its rows carry "handover_pct_ms"
//       summaries, and edge-pingpong rows add pingpong_pairs /
//       suppressed_excursions.
inline constexpr int kBenchReportVersion = 5;

/// count/mean/p50/p90/p99/p999/max of a recorder, as a JSON object.
inline Json summary_json(const LatencyRecorder& r) {
  const LatencyRecorder::Summary s = r.summary();
  Json j;
  j["count"] = s.count;
  j["mean"] = s.mean;
  j["p50"] = s.p50;
  j["p90"] = s.p90;
  j["p99"] = s.p99;
  j["p999"] = s.p999;
  j["max"] = s.max;
  return j;
}

/// All counters as a flat {key: value} object.
inline Json counters_json(const Registry& reg) {
  Json j;
  j.make_object();
  reg.for_each_counter([&j](const std::string& key, const Counter& c) {
    j[key] = c.value();
  });
  return j;
}

/// All gauges as a flat {key: value} object.
inline Json gauges_json(const Registry& reg) {
  Json j;
  j.make_object();
  reg.for_each_gauge(
      [&j](const std::string& key, const Gauge& g) { j[key] = g.value(); });
  return j;
}

/// All histograms as {key: summary} (includes the PCT decomposition
/// "core.pct_decomp_ms{component=...,proc=...}" entries when a
/// decomposing tracer ran).
inline Json histograms_json(const Registry& reg) {
  Json j;
  j.make_object();
  reg.for_each_histogram(
      [&j](const std::string& key, const LatencyRecorder& h) {
        j[key] = summary_json(h);
      });
  return j;
}

/// Time series as {key: {max, n, points: [[t_ms, v], ...]}}, downsampled
/// to at most `max_points` evenly spaced samples per series.
inline Json time_series_json(const Registry& reg,
                             std::size_t max_points = 256) {
  Json j;
  j.make_object();
  reg.for_each_time_series([&](const std::string& key, const TimeSeries& ts) {
    Json& entry = j[key];
    entry["n"] = ts.points().size();
    entry["max"] = ts.max();
    Json& pts = entry["points"];
    pts.make_array();
    const std::size_t n = ts.points().size();
    const std::size_t stride = n > max_points ? (n + max_points - 1) / max_points : 1;
    for (std::size_t i = 0; i < n; i += stride) {
      const TimeSeries::Point& p = ts.points()[i];
      Json pair;
      pair.push_back(p.at.ms());
      pair.push_back(p.value);
      pts.push_back(std::move(pair));
    }
  });
  return j;
}

/// Windowed telemetry (schema v3 "timeseries" section):
/// {window_ms, series: {key: {agg, n, max, points: [[t_ms, v], ...]}}}
/// where t_ms is the window's *start*. Every series ticks every window
/// (zeros included), so all series in one run share the same length; the
/// downsampling stride is computed once from that common length, keeping
/// exported lengths equal too (validate_report.py checks this).
inline Json windowed_series_json(const Registry& reg,
                                 std::size_t max_points = 256) {
  Json j;
  double window_ms = 0.0;
  std::size_t longest = 0;
  reg.for_each_windowed([&](const std::string&, const WindowedSeries& ws) {
    if (ws.configured()) window_ms = ws.window().ms();
    longest = ws.buckets().size() > longest ? ws.buckets().size() : longest;
  });
  j["window_ms"] = window_ms;
  const std::size_t stride =
      longest > max_points ? (longest + max_points - 1) / max_points : 1;
  Json& series = j["series"];
  series.make_object();
  reg.for_each_windowed([&](const std::string& key, const WindowedSeries& ws) {
    if (ws.empty()) return;
    Json& entry = series[key];
    entry["agg"] = window_agg_name(ws.agg());
    entry["n"] = ws.buckets().size();
    entry["max"] = ws.max();
    Json& pts = entry["points"];
    pts.make_array();
    for (std::size_t i = 0; i < ws.buckets().size(); i += stride) {
      const WindowedSeries::Bucket& b = ws.buckets()[i];
      Json pair;
      pair.push_back(ws.bucket_start(b).ms());
      pair.push_back(b.value);
      pts.push_back(std::move(pair));
    }
  });
  return j;
}

}  // namespace neutrino::obs
