// In-process phase profiler for the sharded runtime (DESIGN.md §15).
//
// Attributes *wall-clock* time to runtime phases — window scheduling,
// per-shard event dispatch, barrier waits, cross-shard channel drain,
// codec/export work — answering "where does the sharded sync overhead
// go?" (ROADMAP item 3). Lanes are shards for dispatch/drain and threads
// for barrier waits; lane 0 is the coordinating thread.
//
// DETERMINISM RULE: everything here is wall-clock and therefore
// nondeterministic by nature. Profiler output must only ever appear in
// the report's "profiler" section (attach via bench_util), never in
// counters/time-series/SLO sections that determinism tests compare
// byte-for-byte. The simulation itself never reads a profiler value.
//
// Overhead: a scope is two steady_clock reads and two relaxed atomic adds;
// a null profiler pointer costs one branch. Slots are cache-line padded
// per lane so concurrent shards don't false-share.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/json.hpp"

namespace neutrino::obs {

enum class Phase : std::uint8_t {
  kSchedule = 0,     ///< window-start scan + trace replay scheduling
  kDispatch = 1,     ///< per-shard EventLoop::run_until inside a window
  kBarrierWait = 2,  ///< start/done barrier arrive_and_wait
  kChannelDrain = 3, ///< coordinator draining cross-shard channels
  kCodec = 4,        ///< encode/export work (trace JSON, golden vectors)
  kOther = 5,
};
inline constexpr std::size_t kPhases = 6;

inline const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSchedule:
      return "schedule";
    case Phase::kDispatch:
      return "dispatch";
    case Phase::kBarrierWait:
      return "barrier_wait";
    case Phase::kChannelDrain:
      return "channel_drain";
    case Phase::kCodec:
      return "codec";
    case Phase::kOther:
      return "other";
  }
  return "?";
}

class PhaseProfiler {
 public:
  /// `lanes` ≥ max(shards, threads): dispatch/drain index by shard,
  /// barrier waits by thread id.
  explicit PhaseProfiler(std::size_t lanes) : lanes_(lanes == 0 ? 1 : lanes) {
    slots_ = std::vector<Lane>(lanes_);
  }

  class Scope {
   public:
    Scope(PhaseProfiler* p, std::size_t lane, Phase phase)
        : p_(p), lane_(lane), phase_(phase) {
      if (p_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (p_ == nullptr) return;
      const auto end = std::chrono::steady_clock::now();
      p_->add(lane_, phase_,
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      end - start_)
                      .count()));
    }

   private:
    PhaseProfiler* p_;
    std::size_t lane_;
    Phase phase_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Null-safe scope helper: `auto s = PhaseProfiler::scoped(p, lane, ph);`
  /// is a no-op (one branch) when `p` is null.
  static Scope scoped(PhaseProfiler* p, std::size_t lane, Phase phase) {
    return Scope{p, lane, phase};
  }

  void add(std::size_t lane, Phase phase, std::uint64_t ns) {
    Cell& c = slots_[lane % lanes_].cells[static_cast<std::size_t>(phase)];
    c.ns.fetch_add(ns, std::memory_order_relaxed);
    c.calls.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  [[nodiscard]] std::uint64_t total_ns(Phase phase) const {
    std::uint64_t total = 0;
    for (const Lane& lane : slots_) {
      total += lane.cells[static_cast<std::size_t>(phase)].ns.load(
          std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] std::uint64_t lane_ns(std::size_t lane, Phase phase) const {
    return slots_[lane % lanes_]
        .cells[static_cast<std::size_t>(phase)]
        .ns.load(std::memory_order_relaxed);
  }

  /// {phases: {name: {ns, calls, share}}, lanes: [[ns per phase], ...]}.
  /// share = phase ns / total ns across all phases (0 when nothing ran).
  [[nodiscard]] Json json() const {
    std::uint64_t grand = 0;
    for (std::size_t p = 0; p < kPhases; ++p) {
      grand += total_ns(static_cast<Phase>(p));
    }
    Json j;
    Json& phases = j["phases"];
    phases.make_object();
    for (std::size_t p = 0; p < kPhases; ++p) {
      const Phase phase = static_cast<Phase>(p);
      std::uint64_t ns = 0;
      std::uint64_t calls = 0;
      for (const Lane& lane : slots_) {
        ns += lane.cells[p].ns.load(std::memory_order_relaxed);
        calls += lane.cells[p].calls.load(std::memory_order_relaxed);
      }
      if (calls == 0) continue;
      Json& entry = phases[phase_name(phase)];
      entry["ns"] = ns;
      entry["calls"] = calls;
      entry["share"] = grand > 0 ? static_cast<double>(ns) /
                                       static_cast<double>(grand)
                                 : 0.0;
    }
    Json& lanes = j["lane_ns"];
    lanes.make_array();
    for (const Lane& lane : slots_) {
      Json row;
      row.make_array();
      for (std::size_t p = 0; p < kPhases; ++p) {
        row.push_back(lane.cells[p].ns.load(std::memory_order_relaxed));
      }
      lanes.push_back(std::move(row));
    }
    return j;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
  };
  struct alignas(64) Lane {
    std::array<Cell, kPhases> cells;
  };

  std::size_t lanes_;
  std::vector<Lane> slots_;
};

}  // namespace neutrino::obs
