// Fixed-interval sim-time windowed series (DESIGN.md §15).
//
// A WindowedSeries buckets recordings into consecutive windows of a fixed
// sim-time width: bucket index = at.ns() / window.ns(). Unlike the raw
// TimeSeries (arbitrary timestamped points), windowed series from
// different shards can be *merged deterministically*: two buckets with
// the same index combine by the series' aggregation kind, so the merged
// result is a pure function of sim-time data — byte-identical across
// worker-thread counts and across runs.
//
// Aggregation kinds:
//   kSum  — per-window deltas (sheds, retransmissions, events executed,
//           cross-shard posts); merge adds same-index buckets.
//   kMax  — per-window high watermarks; merge takes the max.
//   kLast — point samples (queue depth, busy fraction); a later recording
//           in the same window replaces the earlier one. On merge the
//           folded-in bucket wins — well-defined because every sampled
//           series is owned by exactly one shard (labels carry the
//           region/shard), so merge never actually combines two kLast
//           buckets of the same index.
//
// Recording is append-mostly: samplers tick in nondecreasing sim-time, so
// the bucket vector stays sorted by index without searching.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/clock.hpp"

namespace neutrino::obs {

enum class WindowAgg : std::uint8_t {
  kSum = 0,
  kMax = 1,
  kLast = 2,
};

inline const char* window_agg_name(WindowAgg agg) {
  switch (agg) {
    case WindowAgg::kSum:
      return "sum";
    case WindowAgg::kMax:
      return "max";
    case WindowAgg::kLast:
      return "last";
  }
  return "?";
}

class WindowedSeries {
 public:
  struct Bucket {
    std::int64_t index = 0;  ///< window index: at.ns() / window.ns()
    double value = 0.0;
  };

  WindowedSeries() = default;
  WindowedSeries(SimTime window, WindowAgg agg) : window_(window), agg_(agg) {}

  /// Set window width and aggregation. Safe to call repeatedly with the
  /// same parameters (the registry's lookup-create path does); changing
  /// them on a non-empty series is a programming error.
  void configure(SimTime window, WindowAgg agg) {
    assert(buckets_.empty() || (window_ == window && agg_ == agg));
    window_ = window;
    agg_ = agg;
  }

  [[nodiscard]] bool configured() const { return window_.ns() > 0; }
  [[nodiscard]] SimTime window() const { return window_; }
  [[nodiscard]] WindowAgg agg() const { return agg_; }
  [[nodiscard]] const std::vector<Bucket>& buckets() const { return buckets_; }
  [[nodiscard]] bool empty() const { return buckets_.empty(); }

  /// Window-start sim-time of a bucket.
  [[nodiscard]] SimTime bucket_start(const Bucket& b) const {
    return SimTime::nanoseconds(b.index * window_.ns());
  }

  [[nodiscard]] double max() const {
    double m = 0.0;
    for (const Bucket& b : buckets_) m = b.value > m ? b.value : m;
    return m;
  }

  /// Record a value at sim-time `at`. Recordings must arrive in
  /// nondecreasing window order (samplers tick forward in sim-time).
  void record(SimTime at, double value) {
    assert(configured());
    const std::int64_t idx = at.ns() / window_.ns();
    if (!buckets_.empty() && buckets_.back().index == idx) {
      combine(buckets_.back().value, value);
      return;
    }
    assert(buckets_.empty() || buckets_.back().index < idx);
    buckets_.push_back({idx, value});
  }

  /// Deterministic merge-on-join: same-index buckets combine by the
  /// aggregation kind; distinct indices interleave in index order. The
  /// result depends only on the two series' contents, never on thread
  /// scheduling.
  void merge(const WindowedSeries& other) {
    if (other.buckets_.empty()) return;
    if (!configured()) configure(other.window_, other.agg_);
    assert(window_ == other.window_ && agg_ == other.agg_);
    std::vector<Bucket> merged;
    merged.reserve(buckets_.size() + other.buckets_.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < buckets_.size() && b < other.buckets_.size()) {
      if (buckets_[a].index < other.buckets_[b].index) {
        merged.push_back(buckets_[a++]);
      } else if (other.buckets_[b].index < buckets_[a].index) {
        merged.push_back(other.buckets_[b++]);
      } else {
        Bucket combined = buckets_[a++];
        combine(combined.value, other.buckets_[b++].value);
        merged.push_back(combined);
      }
    }
    while (a < buckets_.size()) merged.push_back(buckets_[a++]);
    while (b < other.buckets_.size()) merged.push_back(other.buckets_[b++]);
    buckets_ = std::move(merged);
  }

 private:
  void combine(double& into, double value) const {
    switch (agg_) {
      case WindowAgg::kSum:
        into += value;
        break;
      case WindowAgg::kMax:
        into = into > value ? into : value;
        break;
      case WindowAgg::kLast:
        into = value;
        break;
    }
  }

  SimTime window_;  ///< zero until configured
  WindowAgg agg_ = WindowAgg::kLast;
  std::vector<Bucket> buckets_;  ///< sorted by index, unique indices
};

}  // namespace neutrino::obs
