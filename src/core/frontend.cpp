// Trace-driven UE + BS emulator: drives control procedures, measures PCT,
// tracks data-path outages, and asserts Read-your-Writes on every response.
#include "core/system.hpp"

namespace neutrino::core {

Frontend::Frontend(System& system) : system_(&system) {}

void Frontend::start_procedure(UeId ue, ProcedureType type,
                               std::uint32_t target_region) {
  auto [it, inserted] = ues_.try_emplace(ue);
  UeCtx& ctx = it->second;
  if (inserted) {
    // Fresh UE: home it deterministically across regions.
    ctx.region = static_cast<std::uint32_t>(
        ue.value() % static_cast<std::uint64_t>(
                         system_->topo().total_regions()));
    ctx.prev_region = ctx.region;
  }
  if (ctx.in_flight) return;  // one control procedure at a time per UE
  ctx.in_flight = true;
  ctx.proc_type = type;
  ctx.reported_type = type;
  ctx.proc_seq = ctx.next_proc_seq++;
  ctx.start_time = system_->loop().now();
  ctx.under_failure = false;
  ctx.ho_target = target_region;
  ctx.retx_attempt = 0;  // fresh procedure, fresh NAS timers
  ++system_->metrics().procedures_started;
  if (obs::ProcTracer* tr = system_->tracer()) {
    tr->begin(ue, ctx.proc_seq, type, ctx.start_time);
  }

  switch (type) {
    case ProcedureType::kAttach:
    case ProcedureType::kReattach:
      ctx.awaiting = system_->policy().dpcm_device_state
                         ? MsgKind::kAttachAccept
                         : MsgKind::kAuthRequest;
      begin_outage(ctx);
      send_uplink(ctx, ue, MsgKind::kAttachRequest);
      break;
    case ProcedureType::kServiceRequest:
      ctx.awaiting = MsgKind::kServiceAccept;
      send_uplink(ctx, ue, MsgKind::kServiceRequest);
      break;
    case ProcedureType::kHandover: {
      ctx.awaiting = MsgKind::kHandoverCommand;
      send_uplink(ctx, ue, MsgKind::kHandoverRequired);
      // The UE is leaving the source cell's coverage: if the control plane
      // has not commanded the handover within the grace window, the radio
      // link breaks and the outage starts early.
      const std::uint64_t seq = ctx.proc_seq;
      system_->loop().schedule_after(
          system_->proto().ho_coverage_grace, [this, ue, seq] {
            const auto it = ues_.find(ue);
            if (it == ues_.end()) return;
            UeCtx& late = it->second;
            if (late.in_flight && late.proc_seq == seq) begin_outage(late);
          });
      break;
    }
    case ProcedureType::kIntraHandover:
      ctx.awaiting = MsgKind::kHandoverComplete;
      begin_outage(ctx);
      send_uplink(ctx, ue, MsgKind::kHandoverRequired);
      break;
    case ProcedureType::kDetach:
      ctx.awaiting = MsgKind::kDetachAccept;
      send_uplink(ctx, ue, MsgKind::kDetachRequest);
      break;
    case ProcedureType::kTau:
      ctx.awaiting = MsgKind::kTauAccept;
      send_uplink(ctx, ue, MsgKind::kTrackingAreaUpdate);
      break;
  }
}

void Frontend::idle_move(UeId ue, std::uint32_t new_region) {
  const auto it = ues_.find(ue);
  if (it == ues_.end()) return;
  it->second.prev_region = it->second.region;
  it->second.region = new_region;
}

void Frontend::send_uplink(UeCtx& ctx, UeId ue, MsgKind kind) {
  std::uint32_t via_region =
      kind == MsgKind::kHandoverNotify ? ctx.ho_target : ctx.region;
  if (!system_->cta_alive(via_region)) {
    // Failure scenario 4: the CTA is gone — re-attach through another CTA
    // (the sibling region's) and rebuild state there (§4.2.5).
    const auto regions =
        static_cast<std::uint32_t>(system_->topo().total_regions());
    ctx.region = (via_region + 1) % regions;
    ctx.under_failure = true;
    begin_reattach(ctx, ue);
    return;
  }
  Msg msg;
  msg.kind = kind;
  msg.ue = ue;
  msg.proc_type = ctx.proc_type;
  msg.proc_seq = ctx.proc_seq;
  msg.region = via_region;
  msg.target_region = ctx.ho_target;
  msg.prev_region = ctx.prev_region;
  msg.expected_proc = ctx.last_completed_seq;
  system_->ue_to_cta(via_region, std::move(msg));
  // A different uplink kind means the flow advanced: its retransmission
  // ladder starts over. A re-send of the same kind keeps climbing it.
  if (kind != ctx.last_uplink) ctx.retx_attempt = 0;
  ctx.last_uplink = kind;
  arm_retx(ctx, ue, kind);
}

void Frontend::arm_retx(UeCtx& ctx, UeId ue, MsgKind kind) {
  const SimTime base = system_->proto().nas_retx_timeout;
  if (base == SimTime{}) return;
  // Procedure-final uplinks (the CTA's fire-and-forget set) produce no
  // response a timer could wait for.
  if (kind == MsgKind::kAttachComplete || kind == MsgKind::kIcsResponse) {
    return;
  }
  const std::uint64_t seq = ctx.proc_seq;
  const std::uint32_t attempt = ctx.retx_attempt;
  // Exponential backoff, clamped well below the shift width.
  const SimTime delay = base * (std::int64_t{1} << std::min(attempt, 20u));
  system_->loop().schedule_after(delay, [this, ue, seq, kind, attempt] {
    const auto it = ues_.find(ue);
    if (it == ues_.end()) return;
    UeCtx& ctx = it->second;
    // Stale timer: the procedure completed or was superseded, the flow
    // advanced past this uplink, or a newer (re-)transmission took over.
    if (!ctx.in_flight || ctx.proc_seq != seq || ctx.last_uplink != kind ||
        ctx.retx_attempt != attempt) {
      return;
    }
    if (attempt >= static_cast<std::uint32_t>(
                       system_->proto().nas_retx_budget)) {
      // NAS retry budget exhausted: like an expired 3GPP registration
      // timer, the UE abandons the exchange and rebuilds state from
      // scratch — liveness over latency.
      ++system_->metrics().retx_exhausted;
      if (obs::FlightRecorder* fl = system_->flight()) {
        fl->record(system_->loop().now(),
                   obs::FlightRecorder::Kind::kRetxExhausted,
                   static_cast<std::int64_t>(ue.value()), attempt);
      }
      begin_reattach(ctx, ue);
      return;
    }
    ++ctx.retx_attempt;
    ++system_->metrics().nas_retransmissions;
    if (obs::FlightRecorder* fl = system_->flight()) {
      fl->record(system_->loop().now(), obs::FlightRecorder::Kind::kNasRetx,
                 static_cast<std::int64_t>(ue.value()), attempt + 1);
    }
    send_uplink(ctx, ue, kind);
  });
}

void Frontend::deliver(Msg msg) {
  const auto it = ues_.find(msg.ue);
  if (it == ues_.end()) return;
  UeCtx& ctx = it->second;

  if (msg.kind == MsgKind::kPaging) {
    // Unsolicited: downlink data is waiting. An idle attached UE answers
    // with a service request (the paging response).
    if (!ctx.in_flight && ctx.attached) {
      start_procedure(msg.ue, ProcedureType::kServiceRequest);
      ues_[msg.ue].paging_response = true;
    }
    return;
  }

  if (!ctx.in_flight || msg.proc_seq != ctx.proc_seq) return;  // stale

  // Responses regenerated from the CTA's replayed log (or recovery
  // resends) mean this procedure lived through a failure: its PCT belongs
  // in the under-failure distribution (§6.4).
  if (msg.is_replay) ctx.under_failure = true;

  if (msg.kind == MsgKind::kReattachCommand) {
    // Only recovery-origin Re-Attach commands mark the procedure as
    // failure-affected; a Re-Attach demanded by a CPF that simply has no
    // state for us (post-crash steady state) is ordinary signalling.
    if (msg.is_replay) ctx.under_failure = true;
    ++system_->metrics().reattaches;
    begin_reattach(ctx, msg.ue);
    return;
  }
  // A 4G-style relocation re-establishes NAS security on the target side
  // mid-handover; accept it even though the UE ultimately awaits the
  // handover completion.
  const bool ho_security = ctx.proc_type == ProcedureType::kHandover &&
                           msg.kind == MsgKind::kSecurityModeCommand;
  if (msg.kind != ctx.awaiting && !ho_security) return;  // replay duplicate

  switch (msg.kind) {
    case MsgKind::kAuthRequest:
      ctx.awaiting = MsgKind::kSecurityModeCommand;
      send_uplink(ctx, msg.ue, MsgKind::kAuthResponse);
      break;
    case MsgKind::kSecurityModeCommand:
      if (!ho_security) ctx.awaiting = MsgKind::kAttachAccept;
      send_uplink(ctx, msg.ue, MsgKind::kSecurityModeComplete);
      break;
    case MsgKind::kAttachAccept:
      check_ryw(ctx, msg);
      ctx.attached = true;
      end_outage(ctx);
      // The UE considers the attach done once accepted; the completion
      // message is fire-and-forget from its perspective.
      send_uplink(ctx, msg.ue, MsgKind::kAttachComplete);
      complete(ctx, msg.ue, msg);
      break;
    case MsgKind::kServiceAccept:
      check_ryw(ctx, msg);
      send_uplink(ctx, msg.ue, MsgKind::kIcsResponse);
      complete(ctx, msg.ue, msg);
      break;
    case MsgKind::kHandoverCommand:
      // The UE detaches from the source cell: the data path is down until
      // the target side switches the bearer (§6.6's outage window).
      begin_outage(ctx);
      ctx.awaiting = MsgKind::kHandoverComplete;
      // Switch cells before notifying: the notify must name the region the
      // UE is leaving (prev_region drives the target's replica lookup).
      ctx.prev_region = ctx.region;
      ctx.region = ctx.ho_target;
      send_uplink(ctx, msg.ue, MsgKind::kHandoverNotify);
      break;
    case MsgKind::kHandoverComplete:
      check_ryw(ctx, msg);
      end_outage(ctx);
      complete(ctx, msg.ue, msg);
      break;
    case MsgKind::kDetachAccept:
      check_ryw(ctx, msg);
      ctx.attached = false;
      complete(ctx, msg.ue, msg);
      break;
    case MsgKind::kTauAccept:
      check_ryw(ctx, msg);
      complete(ctx, msg.ue, msg);
      break;
    default:
      break;
  }
}

void Frontend::complete(UeCtx& ctx, UeId ue, const Msg& /*final_msg*/) {
  const double pct_ms =
      (system_->loop().now() - ctx.start_time).ms();
  Metrics& metrics = system_->metrics();
  metrics.pct_for(ctx.reported_type).add(pct_ms);
  if (ctx.under_failure) {
    metrics.pct_failure_for(ctx.reported_type).add(pct_ms);
  }
  ++metrics.procedures_completed;
  // Per-type completion counter; the handle is looked up once per type and
  // cached — this is the hot path.
  const auto type_idx = static_cast<std::size_t>(ctx.reported_type);
  if (completion_counters_[type_idx] == nullptr) {
    completion_counters_[type_idx] = &metrics.registry.counter(
        "frontend.completions",
        {{"proc", std::string{to_string(ctx.reported_type)}}});
  }
  ++*completion_counters_[type_idx];
  if (obs::SloTracker* slo = metrics.slo()) {
    slo->record(system_->loop().now(), type_idx, pct_ms);
  }
  if (obs::ProcTracer* tr = system_->tracer()) {
    if (ctx.under_failure) tr->mark_under_failure(ue);
    tr->end(ue, ctx.proc_seq, system_->loop().now());
  }
  if (ctx.paging_response) {
    ++metrics.downlink_delivered;  // the paged data can now flow
    ctx.paging_response = false;
  }
  ctx.in_flight = false;
  ctx.last_completed_seq = ctx.proc_seq;
  ++ctx.completed_procs;
  if (InvariantObserver* iobs = system_->invariant_observer()) {
    iobs->on_procedure_complete(ue, ctx.proc_seq, ctx.proc_type);
  }
}

void Frontend::begin_reattach(UeCtx& ctx, UeId ue) {
  // The interrupted procedure never completes; a Re-Attach (tracked under
  // the original procedure type, with the original start time, per §6.4's
  // PCT-under-failure accounting) rebuilds consistent state.
  ctx.attached = false;
  ctx.proc_type = ProcedureType::kReattach;
  ctx.proc_seq = ctx.next_proc_seq++;
  ctx.retx_attempt = 0;  // fresh procedure, fresh NAS timers
  if (obs::FlightRecorder* fl = system_->flight()) {
    fl->record(system_->loop().now(), obs::FlightRecorder::Kind::kReattach,
               static_cast<std::int64_t>(ue.value()));
  }
  if (obs::ProcTracer* tr = system_->tracer()) {
    // The span keeps covering the procedure under its recovery seq.
    tr->annex(ue, ctx.proc_seq);
  }
  ctx.awaiting = system_->policy().dpcm_device_state
                     ? MsgKind::kAttachAccept
                     : MsgKind::kAuthRequest;
  begin_outage(ctx);
  send_uplink(ctx, ue, MsgKind::kAttachRequest);
}

void Frontend::begin_outage(UeCtx& ctx) {
  if (ctx.in_outage) return;
  ctx.in_outage = true;
  ctx.outage_start = system_->loop().now();
}

void Frontend::end_outage(UeCtx& ctx) {
  if (!ctx.in_outage) return;
  ctx.in_outage = false;
  ctx.outages.push_back({ctx.outage_start, system_->loop().now()});
}

void Frontend::check_ryw(UeCtx& ctx, const Msg& msg) {
  if (InvariantObserver* iobs = system_->invariant_observer()) {
    // Fires before the attach-type filter and before complete() advances
    // the watermark: the checker applies its own RYW rule to its own
    // independently-tracked last-completed value.
    iobs->on_final_response(msg.ue, ctx.proc_type, msg.served_proc);
  }
  // Read-your-Writes (§4.2.1): the state a CPF serves must reflect every
  // procedure this UE has completed. Attach and Re-Attach are themselves
  // the baseline-resetting writes (they rebuild state from scratch), so
  // only read-carrying procedures are checked.
  if (ctx.proc_type == ProcedureType::kAttach ||
      ctx.proc_type == ProcedureType::kReattach) {
    return;
  }
  if (msg.served_proc != ctx.last_completed_seq) {
    ++system_->metrics().ryw_violations;
    if (obs::ProcTracer* tr = system_->tracer()) {
      tr->mark_violation(msg.ue);
    }
#ifdef NEUTRINO_RYW_DEBUG
    fprintf(stderr,
            "[RYW] t=%ld ue=%lu kind=%d proc_type=%d seq=%lu served=%lu "
            "expected=%lu\n",
            system_->loop().now().ns(), msg.ue.value(), (int)msg.kind,
            (int)ctx.proc_type, ctx.proc_seq, msg.served_proc,
            ctx.last_completed_seq);
#endif
  }
}

void Frontend::preattach_context(UeId ue, std::uint32_t region) {
  UeCtx& ctx = ues_[ue];
  ctx.region = region;
  ctx.prev_region = region;
  ctx.attached = true;
  ctx.completed_procs = 1;
  ctx.last_completed_seq = 1;
  ctx.next_proc_seq = 2;
}

std::shared_ptr<UeState> Frontend::make_preattached_state(
    UeId ue, std::uint32_t region) {
  auto state = std::make_shared<UeState>();
  state->ue = ue;
  state->imsi = 410'010'000'000'000ULL + ue.value();
  state->m_tmsi = static_cast<std::uint32_t>(ue.value());
  state->attached = true;
  state->session_active = true;
  state->serving_region = region;
  state->upf = UpfId(region);
  state->last_completed_proc = 1;
  state->last_lclock = 0;
  return state;
}

void Frontend::preattach(UeId ue, std::uint32_t region) {
  preattach_context(ue, region);
  auto state = make_preattached_state(ue, region);
  system_->cpf(system_->primary_cpf_for(ue, region))
      .preinstall(state, /*as_primary=*/true);
  for (const CpfId b : system_->backups_for(ue, region)) {
    system_->cpf(b).preinstall(state, /*as_primary=*/false);
  }
  system_->upf(region).preinstall(ue);
}

void Frontend::on_cta_failure(std::uint32_t region) {
  const auto regions =
      static_cast<std::uint32_t>(system_->topo().total_regions());
  for (auto& [ue, ctx] : ues_) {
    if (ctx.region != region || !ctx.in_flight) continue;
    ctx.region = (region + 1) % regions;
    ctx.under_failure = true;
    ++system_->metrics().reattaches;
    begin_reattach(ctx, ue);
  }
}

std::uint64_t Frontend::completed(UeId ue) const {
  const auto it = ues_.find(ue);
  return it == ues_.end() ? 0 : it->second.completed_procs;
}

bool Frontend::is_attached(UeId ue) const {
  const auto it = ues_.find(ue);
  return it != ues_.end() && it->second.attached;
}

bool Frontend::in_flight(UeId ue) const {
  const auto it = ues_.find(ue);
  return it != ues_.end() && it->second.in_flight;
}

std::uint32_t Frontend::region_of(UeId ue) const {
  const auto it = ues_.find(ue);
  return it == ues_.end() ? 0 : it->second.region;
}

const std::vector<Frontend::Outage>& Frontend::outages(UeId ue) const {
  const auto it = ues_.find(ue);
  return it == ues_.end() ? no_outages_ : it->second.outages;
}

}  // namespace neutrino::core
