// N core::System instances — one per shard — glued to the conservative
// sharded runtime (sim/parallel/runtime.hpp).
//
// Partitioning: level-1 regions are block-partitioned across shards
// (System::shard_of_region); a UE belongs to the shard owning its home
// region (ue % total_regions, matching Frontend's fresh-UE homing and the
// bench preattach round-robin). Every shard constructs the full topology
// but executes only its own regions' node logic; the rest are liveness
// shadows kept consistent by mirroring failure injections on all shards
// at the same simulated time (schedule_crash/schedule_restore).
//
// The lookahead window is derived from the topology: the minimum
// cpf_link() latency over region pairs owned by different shards, minus
// 1ns so cross-shard arrivals land strictly after the window end (the
// runtime asserts this). Block partitioning is what keeps this large:
// contiguous regions share a shard, so the 5µs intra-region links never
// cross, and the window is bounded by the ≥400µs inter-region links.
//
// Determinism: fixed shard count ⇒ bit-identical counters, PCT
// distributions and traces across runs and worker-thread counts; one
// shard ⇒ no sink, no windows — exactly the legacy single-threaded loop
// (tests/parallel_determinism_test.cpp proves both differentially).
//
// Unsupported under >1 shard (UE↔CTA links sit below any cross-shard
// lookahead, so UEs cannot re-home across a shard boundary): inter-shard
// kHandover targets and CTA crashes whose reroute would cross shards.
// System::ue_to_cta asserts on violations; see DESIGN.md §11.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "core/shard_link.hpp"
#include "core/system.hpp"
#include "core/topology.hpp"
#include "obs/profiler.hpp"
#include "sim/parallel/runtime.hpp"

namespace neutrino::core {

class ShardedSystem {
 public:
  using Runtime = sim::parallel::ShardedRuntime<ShardEnvelope>;

  struct Config {
    CorePolicy policy;
    TopologyConfig topo;
    ProtocolConfig proto;
    std::uint32_t shards = 1;
    std::uint32_t threads = 1;
    /// Per-destination adaptive windows (DESIGN.md §16): each shard runs
    /// to the earliest possible cross-shard arrival instead of the static
    /// min-link bound, collapsing thousands of quiet-phase windows into
    /// one. Fully deterministic for a fixed shard count — identical
    /// outcomes across runs and worker-thread counts — but the *window
    /// schedule* differs from the static one, so events that share an
    /// exact nanosecond may tie-break in a different (still
    /// deterministic) order than the legacy single-loop run. The repro
    /// corpus pins legacy ≡ sharded equality, hence opt-in.
    bool adaptive_lookahead = false;
    /// Cross-shard entries staged per arena batch at window boundaries
    /// (0 = deliver straight from the ring). Perf knob only.
    std::size_t drain_batch = 64;
    sim::EventLoop::Config loop;
    std::uint64_t rng_seed = 1;
    bool streaming_pct = false;
    std::size_t channel_capacity = 1024;
  };

  ShardedSystem(const Config& config, const CostModel& costs);

  [[nodiscard]] std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t shard_of_region(std::uint32_t region) const {
    return shards_[0].system->shard_of_region(region);
  }
  [[nodiscard]] std::uint32_t shard_of_ue(UeId ue) const {
    return shard_of_region(home_region(ue));
  }
  [[nodiscard]] std::uint32_t home_region(UeId ue) const {
    return static_cast<std::uint32_t>(
        ue.value() % static_cast<std::uint64_t>(topo_.total_regions()));
  }
  [[nodiscard]] System& system(std::uint32_t shard) {
    return *shards_[shard].system;
  }
  [[nodiscard]] Metrics& metrics(std::uint32_t shard) {
    return *shards_[shard].metrics;
  }
  [[nodiscard]] Runtime& runtime() { return runtime_; }
  [[nodiscard]] SimTime lookahead() const { return runtime_.lookahead(); }

  /// Derived window length for a hypothetical (topo, shards) pair:
  /// min cross-shard cpf_link − 1ns, or SimTime::max() for one shard.
  [[nodiscard]] static SimTime lookahead_for(const TopologyConfig& topo,
                                             std::uint32_t shards);

  /// Per-ordered-pair minimum cross-shard link latency, [src*shards+dst]
  /// (diagonal = max(), unused): the adaptive-lookahead floor matrix.
  /// Empty for one shard. Uses the same block partition as
  /// System::shard_of_region, so every entry is exact, not conservative.
  [[nodiscard]] static std::vector<SimTime> link_floor_for(
      const TopologyConfig& topo, std::uint32_t shards);

  /// Sharded preattach: UE context on the home shard, replica state on
  /// each replica's owning shard (same placement as Frontend::preattach).
  void preattach(UeId ue, std::uint32_t region);

  /// Partition a trace across shards by UE home region. Templated on the
  /// record type (trace::TraceRecord-shaped) to keep core below trace in
  /// the layering.
  template <class Record>
  void replay(const std::vector<Record>& trace) {
    for (const Record& rec : trace) {
      System& home = *shards_[shard_of_ue(rec.ue)].system;
      home.loop().schedule_at(rec.at, [&home, rec] {
        home.frontend().start_procedure(rec.ue, rec.type, rec.target_region);
      });
    }
  }

  /// Failure injections, mirrored on every shard at the same simulated
  /// time so shadow liveness/epoch state never diverges from the owner's.
  void schedule_crash(SimTime at, CpfId id);
  void schedule_restore(SimTime at, CpfId id);
  /// CTA crash, mirrored like the CPF injections (each shard's Frontend
  /// only holds its own UEs, so the shadow crashes just flip liveness).
  /// Callers must keep the reroute region — (region+1) % regions — on the
  /// same shard; System::ue_to_cta asserts if a reroute crosses shards.
  void schedule_cta_crash(SimTime at, std::uint32_t region);

  /// Per-shard tracer for differential tests (must outlive the run).
  void attach_tracer(std::uint32_t shard, obs::ProcTracer& tracer) {
    shards_[shard].system->attach_tracer(tracer);
  }

  /// Per-shard flight recorder (must outlive the run). Each shard records
  /// only events for regions it owns, so FlightRecorder::merge_flight()
  /// over the
  /// recorders yields one duplicate-free, deterministic timeline.
  void attach_flight_recorder(std::uint32_t shard, obs::FlightRecorder& f) {
    shards_[shard].system->attach_flight_recorder(f);
  }

  /// Arm windowed telemetry on every shard (DESIGN.md §15). Each shard
  /// samples its own loop at the same sim-time cadence, so the merged
  /// series are independent of shard claiming order and thread count.
  void arm_telemetry(SimTime window, SimTime until) {
    for (Shard& shard : shards_) shard.system->arm_telemetry(window, until);
  }

  /// Arm per-procedure SLO burn tracking on every shard's Metrics; the
  /// trackers fold together in merged_metrics().
  void arm_slo(SimTime window,
               const std::vector<std::pair<ProcedureType, obs::SloTarget>>&
                   targets) {
    for (Shard& shard : shards_) shard.metrics->arm_slo(window, targets);
  }

  /// Wall-clock phase profiler for the runtime's coordinator/worker loops
  /// (never mixed into deterministic outputs; see obs/profiler.hpp).
  void set_profiler(obs::PhaseProfiler* profiler) {
    runtime_.set_profiler(profiler);
  }

  /// Record per-window shard activity for Perfetto export (bounded).
  void enable_window_log(std::size_t max_windows = 2048) {
    runtime_.enable_window_log(max_windows);
  }
  [[nodiscard]] const std::vector<Runtime::WindowRecord>& window_log() const {
    return runtime_.window_log();
  }

  /// Drive all shards to the horizon (spawns threads−1 workers; the
  /// calling thread participates).
  void run_until(SimTime horizon);

  /// Fold every shard's metrics into one aggregate (merge-on-join).
  [[nodiscard]] Metrics merged_metrics() const;

  [[nodiscard]] std::uint64_t events_executed() const {
    return runtime_.events_executed();
  }
  [[nodiscard]] const Runtime::Stats& stats() const {
    return runtime_.stats();
  }
  [[nodiscard]] std::vector<std::uint64_t> shard_events() {
    std::vector<std::uint64_t> out;
    out.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      out.push_back(runtime_.loop(i).executed());
    }
    return out;
  }

 private:
  struct Sink final : CrossShardSink {
    Runtime* runtime = nullptr;
    std::uint32_t src = 0;
    void post(std::uint32_t dest_shard, SimTime arrival,
              ShardEnvelope&& envelope) override {
      runtime->post(src, dest_shard, arrival, std::move(envelope));
    }
  };
  struct Shard {
    std::unique_ptr<Metrics> metrics;  // stable address for System's ref
    std::unique_ptr<System> system;
  };

  [[nodiscard]] static Runtime::Config runtime_config(const Config& config);

  TopologyConfig topo_;
  Runtime runtime_;
  std::vector<Sink> sinks_;  // sized once in the ctor; addresses stable
  std::vector<Shard> shards_;
};

}  // namespace neutrino::core
