// Control Plane Function: UE state store, procedure state machines,
// per-procedure checkpointing (§4.2.2) and replica-side protocol (§4.2.4).
#include "core/system.hpp"

namespace neutrino::core {

Cpf::Cpf(System& system, CpfId id, std::uint32_t region)
    : system_(&system),
      id_(id),
      region_(region),
      request_pool_(system.loop(), system.topo().cpf_request_cores),
      sync_pool_(system.loop(), system.topo().cpf_sync_cores) {
  if (const std::size_t cap = system.proto().cpf_queue_capacity; cap > 0) {
    request_pool_.set_capacity(
        cap, static_cast<std::size_t>(
                 static_cast<double>(cap) *
                 system.proto().attach_admission_fraction));
  }
}

void Cpf::deliver(Msg msg) {
  if (!alive_) return;
  SimTime cost = system_->costs().processing_time(
      system_->policy().wire_format, msg.kind);
  // SkyCore-style per-message replication locks and serializes the UE
  // state synchronously with every control message — on the request core,
  // which is exactly the overhead Fig. 15 charges it for.
  SimTime serialize;  // per-message sync share, traced as its own hop
  if (system_->policy().sync_mode == SyncMode::kPerMessage &&
      is_ue_control_message(msg.kind)) {
    serialize = system_->costs().state_serialize_time(
        system_->policy().wire_format);
    cost += serialize;
  }
  const auto trace_pool = [&](const sim::ServerPool& pool) {
    obs::ProcTracer* tr = system_->tracer();
    if (!tr) return;
    const SimTime now = system_->loop().now();
    const SimTime queued = pool.backlog();
    tr->hop(msg, obs::HopClass::kQueueing, "cpf", id_.value(), now,
            now + queued);
    tr->hop(msg, obs::HopClass::kService, "cpf", id_.value(), now + queued,
            now + queued + (cost - serialize));
    if (serialize > SimTime{}) {
      tr->hop(msg, obs::HopClass::kSerialization, "cpf", id_.value(),
              now + queued + (cost - serialize), now + queued + cost);
    }
  };
  switch (msg.kind) {
    // Replication traffic runs on the dedicated sync core (§5: "one for
    // processing requests and the second one for state synchronization"),
    // keeping it off the critical path.
    case MsgKind::kStateCheckpoint:
    case MsgKind::kOutdatedNotify:
      trace_pool(sync_pool_);
      sync_pool_.submit(
          cost, [this, h = system_->msg_pool().acquire(std::move(msg))]() mutable {
            Msg m = h.take();
            handle_replication(m);
          });
      return;
    case MsgKind::kStateFetch:
      // A fetch serves a live procedure (FastHandover/TAU arrival) — it
      // belongs on the request core, not behind bulk checkpoint traffic.
      trace_pool(request_pool_);
      request_pool_.submit(
          cost, [this, h = system_->msg_pool().acquire(std::move(msg))]() mutable {
            Msg m = h.take();
            handle_replication(m);
          });
      return;
    default:
      // Bounded request queue (DESIGN.md §13): only UE-origin ingress is
      // sheddable — UPF responses, relocation traffic and fetch replies
      // complete procedures the system already admitted and paid for.
      if (is_ue_control_message(msg.kind)) {
        const sim::JobClass cls = job_class_of(msg);
        if (!request_pool_.admits(cls)) {
          request_pool_.count_drop(cls);
          if (obs::FlightRecorder* fl = system_->flight()) {
            fl->record(system_->loop().now(),
                       cls == sim::JobClass::kAttach
                           ? obs::FlightRecorder::Kind::kAttachShed
                           : obs::FlightRecorder::Kind::kOverloadDrop,
                       static_cast<std::int64_t>(msg.ue.value()), region_,
                       "cpf");
          }
          if (cls == sim::JobClass::kAttach) {
            ++system_->metrics().attach_sheds;
          } else {
            ++system_->metrics().overload_drops;
          }
          return;
        }
      }
      trace_pool(request_pool_);
      request_pool_.submit(
          cost, [this, h = system_->msg_pool().acquire(std::move(msg))]() mutable {
            handle(h.take());
          });
      return;
  }
}

void Cpf::handle(Msg msg) {
  if (!alive_) return;
  switch (msg.kind) {
    case MsgKind::kCreateSessionResponse:
    case MsgKind::kModifyBearerResponse:
    case MsgKind::kDeleteSessionResponse:
      handle_upf_response(msg);
      break;
    case MsgKind::kDownlinkDataNotification:
      handle_downlink_notification(msg);
      break;
    case MsgKind::kHandoverRequest:
      handle_handover_target(msg);
      break;
    case MsgKind::kHandoverRequestAck:
      handle_handover_source(msg);
      break;
    case MsgKind::kStateFetchResponse:
      handle_replication(msg);
      break;
    default:
      handle_ue_message(msg);
      break;
  }
  // Per-message mode broadcasts the freshly-locked state after every
  // control message (the serialization cost was charged in deliver()).
  if (system_->policy().sync_mode == SyncMode::kPerMessage &&
      is_ue_control_message(msg.kind) && store_.contains(msg.ue)) {
    send_checkpoint(msg.ue);
  }
}

void Cpf::handle_ue_message(Msg& msg) {
  ProcCtx& ctx = procs_[msg.ue];
  if (msg.proc_seq != ctx.proc_seq) {
    ctx = ProcCtx{};
    ctx.type = msg.proc_type;
    ctx.proc_seq = msg.proc_seq;
    ctx.source_region = msg.region;
    ctx.target_region = msg.target_region;
  }
  ctx.last_lclock = std::max(ctx.last_lclock, msg.lclock);

  // Monotonicity guard: a message whose procedure is already reflected in
  // the stored state is a log replay or a late duplicate; re-executing it
  // would regress the state (and with it, Read-your-Writes).
  if (const auto it = store_.find(msg.ue);
      it != store_.end() && it->second.state &&
      it->second.state->last_completed_proc >= msg.proc_seq) {
    return;
  }

  const bool starts_fresh_state =
      msg.kind == MsgKind::kAttachRequest ||  // attach rebuilds from scratch
      msg.kind == MsgKind::kHandoverNotify || // arrival fetches its own state
      msg.kind == MsgKind::kTrackingAreaUpdate;  // idle arrival: ditto
  if (!starts_fresh_state) {
    // §4.2.4(3): a request for a UE without up-to-date state forces
    // Re-Attach — never serve stale data (RYW).
    const auto it = store_.find(msg.ue);
    if (it == store_.end() || !it->second.up_to_date) {
      ask_reattach(msg);
      return;
    }
  }

  switch (ctx.type) {
    case ProcedureType::kAttach:
    case ProcedureType::kReattach:
      handle_attach_flow(msg);
      break;
    case ProcedureType::kServiceRequest:
      handle_service_flow(msg);
      break;
    case ProcedureType::kHandover:
    case ProcedureType::kIntraHandover:
      handle_handover_source(msg);
      break;
    case ProcedureType::kDetach:
      handle_detach_flow(msg);
      break;
    case ProcedureType::kTau:
      handle_tau(msg);
      break;
  }
}

void Cpf::handle_detach_flow(Msg& msg) {
  switch (msg.kind) {
    case MsgKind::kDetachRequest:
      if (!context_matches(msg)) {
        // Even a detach must not run on a stale context (the session
        // endpoints to tear down would be wrong).
        ask_reattach(msg);
        return;
      }
      send_to_upf(msg, MsgKind::kDeleteSession);
      break;
    default:
      break;
  }
}

void Cpf::handle_tau(Msg& msg) {
  if (msg.kind != MsgKind::kTrackingAreaUpdate) return;
  // Idle-mode mobility: the UE silently moved here. With proactive
  // geo-replication the new region's primary often already holds the
  // context (same mechanism as FastHandover, §4.3).
  if (context_matches(msg)) {
    UeState& state = mutable_state(msg.ue);
    state.serving_region = region_;
    state.tracking_area = static_cast<std::uint16_t>(region_);
    reply_to_ue(msg, MsgKind::kTauAccept);
    state.last_completed_proc = msg.proc_seq;
    state.last_lclock = msg.lclock;
    complete_procedure(msg);
    return;
  }
  // Fetch from a replica of the UE's previous placement; Re-Attach if the
  // state is unreachable (§4.2.4 rule 3).
  CpfId holder = id_;
  for (const CpfId b : system_->backups_for(msg.ue, msg.prev_region)) {
    if (b != id_ && system_->cpf_alive(b)) {
      holder = b;
      break;
    }
  }
  if (holder == id_) {
    ask_reattach(msg);
    return;
  }
  ++system_->metrics().state_fetches;
  park_pending_fetch(msg);
  Msg fetch = msg;
  fetch.kind = MsgKind::kStateFetch;
  fetch.state.reset();
  fetch.src_cpf = id_;
  system_->cpf_to_cpf(id_, holder, std::move(fetch));
}

void Cpf::handle_downlink_notification(Msg& msg) {
  // Fig. 2: downlink data for an idle UE. Pageable only when this CPF
  // holds a current, attached context for it.
  const auto it = store_.find(msg.ue);
  if (it == store_.end() || !it->second.up_to_date || !it->second.state ||
      !it->second.state->attached) {
    // The §3.1 disruption: the core believes the UE is not attached and
    // cannot deliver. Connectivity returns only when the UE next contacts
    // the network (Re-Attach / location update).
    ++system_->metrics().downlink_undeliverable;
    return;
  }
  ++system_->metrics().pagings_sent;
  Msg page = msg;
  page.kind = MsgKind::kPaging;
  page.src_cpf = id_;
  page.served_proc = it->second.state->last_completed_proc;
  system_->cpf_to_cta(id_, msg.region, std::move(page));
}

void Cpf::handle_attach_flow(Msg& msg) {
  switch (msg.kind) {
    case MsgKind::kAttachRequest: {
      auto fresh = std::make_shared<UeState>();
      fresh->ue = msg.ue;
      fresh->imsi = 410'010'000'000'000ULL + msg.ue.value();
      fresh->m_tmsi = static_cast<std::uint32_t>(msg.ue.value());
      fresh->serving_region = region_;
      fresh->last_completed_proc = 0;
      store_[msg.ue] = Entry{std::move(fresh), true};
      if (system_->policy().dpcm_device_state) {
        // DPCM [61]: the device supplies cached security state, so the
        // authentication and security-mode round trips are elided.
        send_to_upf(msg, MsgKind::kCreateSession);
      } else {
        reply_to_ue(msg, MsgKind::kAuthRequest);
      }
      break;
    }
    case MsgKind::kAuthResponse:
      reply_to_ue(msg, MsgKind::kSecurityModeCommand);
      break;
    case MsgKind::kSecurityModeComplete:
      send_to_upf(msg, MsgKind::kCreateSession);
      break;
    case MsgKind::kAttachComplete: {
      UeState& state = mutable_state(msg.ue);
      state.attached = true;
      state.last_completed_proc = msg.proc_seq;
      state.last_lclock = msg.lclock;
      complete_procedure(msg);
      break;
    }
    default:
      break;  // stray/duplicate message for this flow
  }
}

void Cpf::handle_service_flow(Msg& msg) {
  switch (msg.kind) {
    case MsgKind::kServiceRequest:
      if (!context_matches(msg)) {
        ask_reattach(msg);
        return;
      }
      if (system_->policy().dpcm_device_state) {
        // DPCM [61] executes control operations in parallel using the
        // device-side state: accept immediately while the bearer update
        // runs concurrently.
        reply_to_ue(msg, MsgKind::kServiceAccept);
      }
      send_to_upf(msg, MsgKind::kModifyBearer);
      break;
    case MsgKind::kIcsResponse: {
      UeState& state = mutable_state(msg.ue);
      state.last_completed_proc = msg.proc_seq;
      state.last_lclock = msg.lclock;
      complete_procedure(msg);
      break;
    }
    default:
      break;
  }
}

void Cpf::handle_handover_source(Msg& msg) {
  ProcCtx& ctx = procs_[msg.ue];
  switch (msg.kind) {
    case MsgKind::kHandoverRequired: {
      if (!context_matches(msg)) {
        ask_reattach(msg);
        return;
      }
      if (ctx.type == ProcedureType::kIntraHandover) {
        // BS change within the region: no CPF change, just a path switch.
        UeState& state = mutable_state(msg.ue);
        state.serving_bs = BsId(msg.target_region);
        send_to_upf(msg, MsgKind::kModifyBearer);
        return;
      }
      if (system_->policy().handover == HandoverMode::kMigrate) {
        // 4G/LTE-style relocation: the full UE context must reach the
        // target and a session must exist there *before* the UE can be
        // commanded to move. Serialize on the critical path and ship it.
        const CpfId target =
            system_->primary_cpf_for(msg.ue, msg.target_region);
        Msg request = msg;
        request.kind = MsgKind::kHandoverRequest;
        request.src_cpf = id_;
        request.served_proc = store_[msg.ue].state->last_completed_proc;
        request.state = store_[msg.ue].state;
        ++system_->metrics().migrations;
        const SimTime serialize = system_->costs().state_serialize_time(
            system_->policy().wire_format);
        if (obs::ProcTracer* tr = system_->tracer()) {
          const SimTime now = system_->loop().now();
          const SimTime queued = request_pool_.backlog();
          tr->hop(request, obs::HopClass::kSerialization, "cpf", id_.value(),
                  now + queued, now + queued + serialize);
        }
        request_pool_.submit(
            serialize,
            [this, target,
             h = system_->msg_pool().acquire(std::move(request))]() mutable {
              system_->cpf_to_cpf(id_, target, h.take());
            });
      } else {
        // FastHandover (§4.3): the state already lives on a level-2
        // replica, so no pre-handover exchange with the target is needed
        // at all — command the move immediately. This elides the WAN
        // round trip that dominates 4G inter-CPF handovers.
        reply_to_ue(msg, MsgKind::kHandoverCommand);
      }
      break;
    }
    case MsgKind::kHandoverRequestAck:
      // Relocation finished at the target: the UE may move now.
      reply_to_ue(msg, MsgKind::kHandoverCommand);
      break;
    case MsgKind::kHandoverNotify:
      handle_handover_notify(msg);
      break;
    case MsgKind::kSecurityModeComplete:
      // Relocation epilogue: NAS security re-established on the target;
      // now switch the data path.
      send_to_upf(msg, MsgKind::kModifyBearer);
      break;
    default:
      break;
  }
}

void Cpf::handle_handover_notify(Msg& msg) {
  // Runs at the target CPF when the UE arrives on its new cell.
  ProcCtx& ctx = procs_[msg.ue];
#ifdef NEUTRINO_RYW_DEBUG
  fprintf(stderr, "[NOTIFY] t=%ld cpf=%u ue=%lu seq=%lu prev=%u exp=%lu\n",
          system_->loop().now().ns(), id_.value(), msg.ue.value(),
          msg.proc_seq, msg.prev_region, msg.expected_proc);
#endif
  ctx.target_region = msg.target_region;
  if (system_->policy().handover == HandoverMode::kMigrate) {
    // Relocated context: re-establish NAS security before the path switch
    // (the target core has never talked to this UE).
    reply_to_ue(msg, MsgKind::kSecurityModeCommand);
    return;
  }
  // Proactive mode: serve from the local replica when its version matches
  // the UE's context exactly.
  if (context_matches(msg)) {
    ++system_->metrics().fast_handovers;
    send_to_upf(msg, MsgKind::kModifyBearer);
    return;
  }
  // Slow path: fetch from a replica of the UE's *source* region placement,
  // falling back to the source-side serving CPF (alive during a handover).
  CpfId holder = id_;
  for (const CpfId b : system_->backups_for(msg.ue, msg.prev_region)) {
    if (b != id_ && system_->cpf_alive(b)) {
      holder = b;
      break;
    }
  }
  if (holder == id_) {
    const CpfId source = system_->primary_cpf_for(msg.ue, msg.prev_region);
    if (source != id_ && system_->cpf_alive(source)) holder = source;
  }
  if (holder == id_) {
    // No live replica to ask: the state is unreachable.
    ask_reattach(msg);
    return;
  }
  ++system_->metrics().state_fetches;
  park_pending_fetch(msg);
#ifdef NEUTRINO_RYW_DEBUG
  fprintf(stderr, "[FETCH] t=%ld cpf=%u ue=%lu -> holder=%u\n",
          system_->loop().now().ns(), id_.value(), msg.ue.value(),
          holder.value());
#endif
  Msg fetch = msg;
  fetch.kind = MsgKind::kStateFetch;
  fetch.state.reset();
  fetch.src_cpf = id_;
  system_->cpf_to_cpf(id_, holder, std::move(fetch));
}

void Cpf::handle_handover_target(Msg& msg) {
  // Runs at the target CPF on kHandoverRequest (4G-style relocation: the
  // migrated context arrives with the request; a local data session must
  // be created before the source may command the UE over).
  ProcCtx& ctx = procs_[msg.ue];
  ctx.type = ProcedureType::kHandover;
  ctx.proc_seq = msg.proc_seq;
  ctx.source_region = msg.region;
  ctx.target_region = msg.target_region;
  ctx.last_lclock = std::max(ctx.last_lclock, msg.lclock);
  ctx.source_cpf = msg.src_cpf;

  if (!msg.state) {
    return;  // malformed relocation (proactive mode never sends these)
  }
  store_[msg.ue] = Entry{msg.state, true};
  ctx.relocating = true;
  send_to_upf(msg, MsgKind::kCreateSession);
}

void Cpf::handle_upf_response(Msg& msg) {
  const auto proc_it = procs_.find(msg.ue);
  if (proc_it == procs_.end()) return;  // procedure superseded
  ProcCtx& ctx = proc_it->second;
  if (ctx.proc_seq != msg.proc_seq) return;

  switch (ctx.type) {
    case ProcedureType::kAttach:
    case ProcedureType::kReattach: {
      UeState& state = mutable_state(msg.ue);
      state.session_active = true;
      state.upf = UpfId(region_);
      reply_to_ue(msg, MsgKind::kAttachAccept);
      break;
    }
    case ProcedureType::kServiceRequest:
      // Under DPCM the accept already went out in parallel (§6.2).
      if (!system_->policy().dpcm_device_state) {
        reply_to_ue(msg, MsgKind::kServiceAccept);
      }
      break;
    case ProcedureType::kDetach: {
      // Session torn down at the UPF: tombstone the context so replicas
      // learn the UE is gone, then confirm to the UE.
      UeState& state = mutable_state(msg.ue);
      reply_to_ue(msg, MsgKind::kDetachAccept);
      state.attached = false;
      state.session_active = false;
      state.last_completed_proc = msg.proc_seq;
      state.last_lclock = ctx.last_lclock;
      complete_procedure(msg);
      break;
    }
    case ProcedureType::kTau:
      break;  // TAU completes without a UPF exchange
    case ProcedureType::kHandover:
      if (ctx.relocating && msg.kind == MsgKind::kCreateSessionResponse) {
        // Relocation session established: tell the source the UE may move.
        ctx.relocating = false;
        Msg ack;
        ack.kind = MsgKind::kHandoverRequestAck;
        ack.ue = msg.ue;
        ack.proc_type = ProcedureType::kHandover;
        ack.proc_seq = msg.proc_seq;
        ack.region = ctx.source_region;
        ack.target_region = ctx.target_region;
        ack.src_cpf = id_;
        system_->cpf_to_cpf(id_, ctx.source_cpf, std::move(ack));
        return;
      }
      [[fallthrough]];
    case ProcedureType::kIntraHandover: {
      UeState& state = mutable_state(msg.ue);
      reply_to_ue(msg, MsgKind::kHandoverComplete);
      state.serving_region = region_;
      state.session_active = true;
      state.last_completed_proc = msg.proc_seq;
      state.last_lclock = ctx.last_lclock;
      complete_procedure(msg);
      break;
    }
  }
}

void Cpf::handle_replication(Msg& msg) {
  switch (msg.kind) {
    case MsgKind::kStateCheckpoint: {
      Entry& entry = store_[msg.ue];
#ifdef NEUTRINO_RYW_DEBUG
      fprintf(stderr, "[CKP] t=%ld cpf=%u ue=%lu proc=%lu lclk=%lu req=%lu\n",
              system_->loop().now().ns(), id_.value(), msg.ue.value(),
              msg.proc_seq, msg.lclock, entry.required_lclock);
#endif
      // §4.2.4: a state update at or beyond the outdated-marker clock
      // makes the replica current again; older updates are ignored.
      if (msg.lclock >= entry.required_lclock) {
        entry.state = msg.state;
        entry.up_to_date = true;
      } else if (!entry.state ||
                 msg.state->last_lclock > entry.state->last_lclock) {
        entry.state = msg.state;  // newer data, still short of the marker
      }
      Msg ack;
      ack.kind = MsgKind::kCheckpointAck;
      ack.ue = msg.ue;
      ack.proc_seq = msg.proc_seq;
      ack.lclock = msg.lclock;
      ack.src_cpf = id_;
      ack.sender_epoch = epoch_;
      system_->cpf_to_cta(id_, msg.region, std::move(ack));
      break;
    }
    case MsgKind::kStateFetch: {
      Msg resp = msg;
      resp.kind = MsgKind::kStateFetchResponse;
      const CpfId requester = msg.src_cpf;
      resp.src_cpf = id_;
      if (const auto it = store_.find(msg.ue);
          it != store_.end() && it->second.up_to_date) {
        resp.state = it->second.state;
        resp.lclock = it->second.state->last_lclock;
      }
      system_->cpf_to_cpf(id_, requester, std::move(resp));
      break;
    }
    case MsgKind::kStateFetchResponse: {
      // Resume a parked FastHandover arrival waiting on this state (§4.3
      // slow path): the UE is on our cell; its context version must match
      // exactly or the UE has to Re-Attach.
      if (const auto pending = pending_handover_.find(msg.ue);
          pending != pending_handover_.end()) {
        Msg original = pending->second;
        // A checkpoint may have landed locally while the fetch was in
        // flight; the local copy wins if it already matches.
        if (context_matches(original)) {
          pending_handover_.erase(msg.ue);
          if (original.kind == MsgKind::kTrackingAreaUpdate) {
            handle_tau(original);
          } else {
            send_to_upf(original, MsgKind::kModifyBearer);
          }
          return;
        }
        const bool version_matches =
            msg.state &&
            msg.state->last_completed_proc == original.expected_proc;
        if (!version_matches) {
          // A lagging replica (async checkpoints under load): the serving
          // source CPF always has the current version — ask it before
          // falling back to a Re-Attach.
          const CpfId source =
              system_->primary_cpf_for(msg.ue, original.prev_region);
          if (msg.src_cpf != source && source != id_ &&
              system_->cpf_alive(source)) {
            Msg fetch = original;
            fetch.kind = MsgKind::kStateFetch;
            fetch.state.reset();
            fetch.src_cpf = id_;
            system_->cpf_to_cpf(id_, source, std::move(fetch));
            return;  // stays parked
          }
          pending_handover_.erase(msg.ue);
          ask_reattach(original);
          return;
        }
        pending_handover_.erase(msg.ue);
        store_[msg.ue] = Entry{msg.state, true};
        if (original.kind == MsgKind::kTrackingAreaUpdate) {
          handle_tau(original);  // context now matches: completes the TAU
        } else {
          send_to_upf(original, MsgKind::kModifyBearer);
        }
        return;
      }
      // §4.2.4(1c): a replica refreshing itself after an outdated marking.
      if (msg.state) {
        Entry& entry = store_[msg.ue];
        if (msg.lclock >= entry.required_lclock) {
          entry.state = msg.state;
          entry.up_to_date = true;
        }
      }
      break;
    }
    case MsgKind::kOutdatedNotify: {
      // Ignore stale markings: if this CPF is already executing a *newer*
      // procedure for the UE (it became the serving primary, e.g. through
      // a Re-Attach), its state will supersede the missed checkpoint.
      if (const auto proc = procs_.find(msg.ue);
          proc != procs_.end() && proc->second.proc_seq > msg.proc_seq) {
        break;
      }
      // Likewise if the stored state already covers the procedure whose
      // checkpoint this CPF allegedly missed (checkpoints are cumulative
      // snapshots): there is nothing outdated about it.
      if (const auto have = store_.find(msg.ue);
          have != store_.end() && have->second.state &&
          have->second.state->last_completed_proc >= msg.proc_seq) {
        break;
      }
      Entry& entry = store_[msg.ue];
      entry.up_to_date = false;
      entry.required_lclock = msg.lclock;
      // §4.2.4(1c): fetch from a CPF known to be current, if any.
      if (msg.uptodate_cpfs && !msg.uptodate_cpfs->empty()) {
        ++system_->metrics().state_fetches;
        Msg fetch;
        fetch.kind = MsgKind::kStateFetch;
        fetch.ue = msg.ue;
        fetch.proc_seq = msg.proc_seq;
        fetch.region = msg.region;
        fetch.src_cpf = id_;
        system_->cpf_to_cpf(id_, msg.uptodate_cpfs->front(),
                            std::move(fetch));
      }
      break;
    }
    default:
      break;
  }
}

void Cpf::complete_procedure(Msg& msg) {
  procs_.erase(msg.ue);
  const UeId ue = msg.ue;
  switch (system_->policy().sync_mode) {
    case SyncMode::kPerProcedure:
      // §4.2.2: non-blocking per-procedure checkpoint on the sync core.
      sync_pool_.submit(system_->costs().state_serialize_time(
                            system_->policy().wire_format),
                        [this, ue] { send_checkpoint(ue); });
      break;
    case SyncMode::kOnIdle: {
      // SCALE (§3.1): replicas are updated only when the UE goes idle.
      // Schedule the S1 release; it is void if another procedure starts.
      const std::uint64_t completed_seq = msg.proc_seq;
      system_->loop().schedule_after(
          system_->proto().idle_release_after, [this, ue, completed_seq] {
            if (!alive_) return;
            const auto it = store_.find(ue);
            if (it == store_.end() || !it->second.state ||
                it->second.state->last_completed_proc != completed_seq ||
                procs_.contains(ue)) {
              return;  // superseded: the UE stayed active
            }
            UeState& state = mutable_state(ue);
            state.session_active = false;  // bearer released, context kept
            sync_pool_.submit(system_->costs().state_serialize_time(
                                  system_->policy().wire_format),
                              [this, ue] { send_checkpoint(ue); });
          });
      break;
    }
    case SyncMode::kNone:
    case SyncMode::kPerMessage:
      break;  // nothing at completion
  }
}

void Cpf::park_pending_fetch(const Msg& original) {
  pending_handover_[original.ue] = original;
  // Bound the wait: if the fetch holder dies before replying, nothing
  // else unparks this UE — the CTA sees the *routed* CPF alive and never
  // resends, so the UE would hang forever. After the timeout, give up on
  // the fetch and command Re-Attach (§4.2.4 rule 3's fallback).
  const UeId ue = original.ue;
  const std::uint64_t proc_seq = original.proc_seq;
  const std::uint32_t epoch = epoch_;
  system_->loop().schedule_after(
      system_->proto().fetch_timeout, [this, ue, proc_seq, epoch] {
        if (!alive_ || epoch_ != epoch) return;  // crashed meanwhile
        const auto it = pending_handover_.find(ue);
        if (it == pending_handover_.end() ||
            it->second.proc_seq != proc_seq) {
          return;  // resolved or superseded while the timer ran
        }
        const Msg parked = it->second;
        pending_handover_.erase(ue);
        ask_reattach(parked);
      });
}

void Cpf::send_checkpoint(UeId ue) {
  if (!alive_) return;
  const auto it = store_.find(ue);
  if (it == store_.end() || !it->second.state) return;
  const auto& state = it->second.state;
  const auto backups = system_->backups_for(ue, state->serving_region);
  for (const CpfId b : backups) {
    if (b == id_) {
      // This CPF serves the UE *and* sits in its replica set (in-region
      // fallback placement): it trivially holds the state, so ACK
      // directly — otherwise the CTA could never fully ACK and prune the
      // procedure (§4.2.3).
      Msg ack;
      ack.kind = MsgKind::kCheckpointAck;
      ack.ue = ue;
      ack.proc_seq = state->last_completed_proc;
      ack.lclock = state->last_lclock;
      ack.src_cpf = id_;
      ack.sender_epoch = epoch_;
      system_->cpf_to_cta(id_, state->serving_region, std::move(ack));
      continue;
    }
    Msg ckpt;
    ckpt.kind = MsgKind::kStateCheckpoint;
    ckpt.ue = ue;
    ckpt.proc_seq = state->last_completed_proc;
    ckpt.lclock = state->last_lclock;  // §4.2.3(2): end-of-procedure clock
    ckpt.region = state->serving_region;
    ckpt.src_cpf = id_;
    ckpt.state = state;
    ++system_->metrics().checkpoints_sent;
    system_->cpf_to_cpf(id_, b, std::move(ckpt));
  }
}

UeState& Cpf::mutable_state(UeId ue) {
  Entry& entry = store_[ue];
  // Checkpoints share immutable snapshots; copy-on-write before mutating.
  auto owned = std::make_shared<UeState>(entry.state ? *entry.state
                                                     : UeState{});
  owned->ue = ue;
  entry.state = owned;
  return *owned;
}

void Cpf::reply_to_ue(const Msg& request, MsgKind kind) {
  Msg reply = request;
  reply.kind = kind;
  reply.src_cpf = id_;
  reply.state.reset();
  if (const auto it = store_.find(request.ue); it != store_.end() &&
                                               it->second.state) {
    reply.served_proc = it->second.state->last_completed_proc;
  }
  if (FaultInjection& faults = system_->faults();
      faults.cpf_stale_serves > 0 && reply.served_proc > 0) {
    // Planted bug (teeth test): claim the state predates the UE's last
    // write, as a stale replica serving past the up-to-date guard would.
    --faults.cpf_stale_serves;
    --reply.served_proc;
  }
  system_->cpf_to_cta(id_, request.region, std::move(reply));
}

bool Cpf::context_matches(const Msg& request) const {
  // UE-context validation: the stored state must be exactly the version
  // the UE believes in (§4.2.1); serving anything older loses the UE's
  // writes, anything newer cannot exist. Mismatch => Re-Attach, exactly
  // like a failed KSI/S-TMSI check in a real core.
  const auto it = store_.find(request.ue);
  return it != store_.end() && it->second.state &&
         it->second.state->last_completed_proc == request.expected_proc;
}

void Cpf::ask_reattach(const Msg& request) {
#ifdef NEUTRINO_RYW_DEBUG
  const auto it = store_.find(request.ue);
  fprintf(stderr,
          "[REATT] t=%ld cpf=%u ue=%lu kind=%d have=%d utd=%d sp=%lu exp=%lu\n",
          system_->loop().now().ns(), id_.value(), request.ue.value(),
          (int)request.kind, it != store_.end(),
          it != store_.end() && it->second.up_to_date,
          (it != store_.end() && it->second.state)
              ? it->second.state->last_completed_proc
              : 0,
          request.expected_proc);
#endif
  Msg reply = request;
  reply.kind = MsgKind::kReattachCommand;
  reply.src_cpf = id_;
  reply.state.reset();
  system_->cpf_to_cta(id_, request.region, std::move(reply));
}

void Cpf::send_to_upf(const Msg& request, MsgKind kind) {
  Msg out = request;
  out.kind = kind;
  out.src_cpf = id_;
  out.state.reset();
  // The serving region's UPF handles the session (target region during a
  // handover).
  const std::uint32_t upf_region =
      (request.proc_type == ProcedureType::kHandover &&
       kind == MsgKind::kModifyBearer)
          ? request.target_region
          : region_;
  system_->cpf_to_upf(id_, upf_region, std::move(out));
}

void Cpf::crash() {
#ifdef NEUTRINO_RYW_DEBUG
  fprintf(stderr, "[CRASH] t=%ld cpf=%u\n", system_->loop().now().ns(),
          id_.value());
#endif
  alive_ = false;
  ++epoch_;
  ++system_->metrics().registry.counter(
      "cpf.crashes", {{"cpf", std::to_string(id_.value())}});
  request_pool_.reset();
  sync_pool_.reset();
  store_.clear();  // volatile state is gone
  procs_.clear();
  pending_handover_.clear();
}

void Cpf::restore() {
#ifdef NEUTRINO_RYW_DEBUG
  fprintf(stderr, "[RESTORE] t=%ld cpf=%u\n", system_->loop().now().ns(),
          id_.value());
#endif
  alive_ = true;
}

void Cpf::preinstall(std::shared_ptr<const UeState> state, bool /*role*/) {
  const UeId ue = state->ue;
  store_[ue] = Entry{std::move(state), true};
}

bool Cpf::has_up_to_date(UeId ue) const {
  const auto it = store_.find(ue);
  return it != store_.end() && it->second.up_to_date &&
         it->second.state != nullptr;
}

const UeState* Cpf::peek_state(UeId ue) const {
  const auto it = store_.find(ue);
  return it == store_.end() ? nullptr : it->second.state.get();
}

}  // namespace neutrino::core
