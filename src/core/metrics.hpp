// Experiment metrics: PCT distributions and protocol counters.
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.hpp"
#include "core/msg.hpp"

namespace neutrino::core {

struct Metrics {
  static constexpr std::size_t kProcTypes = 7;

  /// Procedure completion time in milliseconds, by procedure type.
  std::array<LatencyRecorder, kProcTypes> pct;
  /// Subset: procedures that hit a failure/recovery path (Fig. 10).
  std::array<LatencyRecorder, kProcTypes> pct_under_failure;

  LatencyRecorder& pct_for(ProcedureType t) {
    return pct[static_cast<std::size_t>(t)];
  }
  LatencyRecorder& pct_failure_for(ProcedureType t) {
    return pct_under_failure[static_cast<std::size_t>(t)];
  }

  // Protocol counters.
  std::uint64_t procedures_started = 0;
  std::uint64_t procedures_completed = 0;
  std::uint64_t reattaches = 0;         // failure scenario 3/4 recoveries
  std::uint64_t replays = 0;            // scenario 2: messages replayed
  std::uint64_t failovers = 0;          // scenario 1: clean backup takeover
  std::uint64_t checkpoints_sent = 0;
  std::uint64_t checkpoint_acks = 0;
  std::uint64_t outdated_notifies = 0;  // §4.2.4 markings
  std::uint64_t state_fetches = 0;
  std::uint64_t fast_handovers = 0;     // proactive hit: no migration needed
  std::uint64_t migrations = 0;         // state shipped at handover time
  std::uint64_t log_appends = 0;
  std::uint64_t log_prunes = 0;
  // Downlink reachability (the §3.1 / Fig. 2 motivating scenario).
  std::uint64_t pagings_sent = 0;
  std::uint64_t downlink_delivered = 0;
  std::uint64_t downlink_undeliverable = 0;

  /// CTA in-memory log accounting (Fig. 17).
  std::size_t cta_log_peak_bytes = 0;

  /// Read-your-Writes violations observed by the frontend. The consistency
  /// protocol's correctness claim is exactly: this stays zero.
  std::uint64_t ryw_violations = 0;
  /// Responses served from provably stale state (subset of the above,
  /// counted at the CPF).
  std::uint64_t stale_serves = 0;
};

}  // namespace neutrino::core
