// Experiment metrics: PCT distributions and protocol counters.
//
// Counters live in an obs::Registry (named "core.<counter>") so the
// structured exporter and ad-hoc tooling can enumerate them; the named
// reference members below keep every existing `++metrics.replays`-style
// call site source-compatible. The registry also receives the labeled
// extras the flat struct could never hold: per-procedure-type completion
// counts, per-CPF crash/recovery counters, the PCT decomposition
// histograms folded in by an attached obs::ProcTracer, and the
// queue-depth / log-occupancy time series pushed by
// System::sample_occupancy().
//
// Metrics is movable (run_experiment moves it into ExperimentResult):
// the references stay valid because registry instruments are std::map
// nodes, whose addresses survive the map move.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "core/msg.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"

namespace neutrino::core {

struct Metrics {
  static constexpr std::size_t kProcTypes = 7;

  // Movable, not copyable: a copy's reference members would alias the
  // source's registry nodes. A move transfers the map nodes, so the
  // references keep pointing at this object's own instruments.
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;
  Metrics(Metrics&&) = default;
  Metrics& operator=(Metrics&&) = delete;

  /// Names every instrument below lives under; benches may add their own.
  obs::Registry registry;

  /// Procedure completion time in milliseconds, by procedure type.
  std::array<LatencyRecorder, kProcTypes> pct;
  /// Subset: procedures that hit a failure/recovery path (Fig. 10).
  std::array<LatencyRecorder, kProcTypes> pct_under_failure;

  LatencyRecorder& pct_for(ProcedureType t) {
    return pct[static_cast<std::size_t>(t)];
  }
  LatencyRecorder& pct_failure_for(ProcedureType t) {
    return pct_under_failure[static_cast<std::size_t>(t)];
  }

  /// Constant-memory PCT accounting for storm-scale benches: per-procedure
  /// latencies feed streaming mean/max accumulators instead of retained
  /// sample vectors (call before the experiment starts).
  void use_streaming_pct() {
    for (auto& r : pct) r.use_streaming_only();
    for (auto& r : pct_under_failure) r.use_streaming_only();
  }

  /// Arm per-procedure SLO tracking (DESIGN.md §15): the frontend scores
  /// every completed procedure against `targets` in sim-time windows of
  /// `window`. Off (null) by default — completion costs one pointer test.
  void arm_slo(SimTime window,
               const std::vector<std::pair<core::ProcedureType,
                                           obs::SloTarget>>& targets) {
    slo_tracker = std::make_unique<obs::SloTracker>(window);
    for (const auto& [type, target] : targets) {
      slo_tracker->set_target(static_cast<std::size_t>(type),
                              std::string{to_string(type)}, target);
    }
  }
  [[nodiscard]] obs::SloTracker* slo() { return slo_tracker.get(); }
  [[nodiscard]] const obs::SloTracker* slo() const {
    return slo_tracker.get();
  }

  /// Merge-on-join for sharded runs: fold one shard's metrics into this
  /// (fresh) aggregate. Counters/histograms/series go via Registry::merge;
  /// the named reference members pick the sums up automatically because
  /// they alias this registry's map nodes.
  void merge_from(const Metrics& other) {
    registry.merge(other.registry);
    for (std::size_t i = 0; i < kProcTypes; ++i) {
      pct[i].merge(other.pct[i]);
      pct_under_failure[i].merge(other.pct_under_failure[i]);
    }
    if (other.slo_tracker) {
      if (!slo_tracker) {
        slo_tracker =
            std::make_unique<obs::SloTracker>(other.slo_tracker->window());
      }
      slo_tracker->merge(*other.slo_tracker);
    }
    cta_log_peak_bytes =
        cta_log_peak_bytes > other.cta_log_peak_bytes
            ? cta_log_peak_bytes
            : other.cta_log_peak_bytes;
  }

  // Protocol counters (registry-backed; see file comment).
  obs::Counter& procedures_started = registry.counter("core.procedures_started");
  obs::Counter& procedures_completed =
      registry.counter("core.procedures_completed");
  /// Failure scenario 3/4 recoveries.
  obs::Counter& reattaches = registry.counter("core.reattaches");
  /// Scenario 2: messages replayed.
  obs::Counter& replays = registry.counter("core.replays");
  /// Scenario 1: clean backup takeover.
  obs::Counter& failovers = registry.counter("core.failovers");
  obs::Counter& checkpoints_sent = registry.counter("core.checkpoints_sent");
  obs::Counter& checkpoint_acks = registry.counter("core.checkpoint_acks");
  /// §4.2.4 markings.
  obs::Counter& outdated_notifies = registry.counter("core.outdated_notifies");
  obs::Counter& state_fetches = registry.counter("core.state_fetches");
  /// Proactive hit: no migration needed.
  obs::Counter& fast_handovers = registry.counter("core.fast_handovers");
  /// State shipped at handover time.
  obs::Counter& migrations = registry.counter("core.migrations");
  obs::Counter& log_appends = registry.counter("core.log_appends");
  obs::Counter& log_prunes = registry.counter("core.log_prunes");
  // Downlink reachability (the §3.1 / Fig. 2 motivating scenario).
  obs::Counter& pagings_sent = registry.counter("core.pagings_sent");
  obs::Counter& downlink_delivered =
      registry.counter("core.downlink_delivered");
  obs::Counter& downlink_undeliverable =
      registry.counter("core.downlink_undeliverable");

  /// CTA in-memory log accounting (Fig. 17).
  std::size_t cta_log_peak_bytes = 0;

  /// Per-procedure SLO burn tracking; null unless arm_slo() ran.
  std::unique_ptr<obs::SloTracker> slo_tracker;

  // Overload control (DESIGN.md §13). All zero unless the ProtocolConfig
  // bounds a queue or enables NAS retransmission.
  /// New attaches shed at a bounded CTA/CPF queue's attach threshold.
  obs::Counter& attach_sheds = registry.counter("core.attach_sheds");
  /// Non-attach jobs rejected at a bounded queue (retransmission re-drives
  /// them).
  obs::Counter& overload_drops = registry.counter("core.overload_drops");
  /// Uplinks re-sent by the frontend's NAS retransmission timer.
  obs::Counter& nas_retransmissions =
      registry.counter("core.nas_retransmissions");
  /// Retry budgets exhausted: the UE gave up and re-attached.
  obs::Counter& retx_exhausted = registry.counter("core.retx_exhausted");

  /// Messages handed to the cross-shard sink (sharded runs; zero in
  /// single-shard mode). Feeds the "ts.cross_posts" windowed series.
  obs::Counter& cross_shard_posts =
      registry.counter("core.cross_shard_posts");

  /// Read-your-Writes violations observed by the frontend. The consistency
  /// protocol's correctness claim is exactly: this stays zero.
  obs::Counter& ryw_violations = registry.counter("core.ryw_violations");
  /// Responses served from provably stale state (subset of the above,
  /// counted at the CPF).
  obs::Counter& stale_serves = registry.counter("core.stale_serves");
};

}  // namespace neutrino::core
