#include "core/sharded_system.hpp"

#include <bit>
#include <cassert>

namespace neutrino::core {

SimTime ShardedSystem::lookahead_for(const TopologyConfig& topo,
                                     std::uint32_t shards) {
  if (shards <= 1) return SimTime::max();
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  const std::uint32_t per_shard = (regions + shards - 1) / shards;
  SimTime min_link = SimTime::max();
  for (std::uint32_t a = 0; a < regions; ++a) {
    for (std::uint32_t b = a + 1; b < regions; ++b) {
      if (a / per_shard == b / per_shard) continue;  // same shard
      min_link = std::min(min_link, topo.cpf_link(a, b));
    }
  }
  // No cross-shard pair (shards ≥ regions never happens — System asserts
  // n_shards ≤ regions — but an all-links-local partition could): max()
  // keeps the single-window behavior.
  if (min_link == SimTime::max()) return min_link;
  // Strictly below the shortest cross link, so arrivals always land
  // *after* the window end (the runtime's post() invariant).
  assert(min_link.ns() > 1);
  return min_link - SimTime::nanoseconds(1);
}

std::vector<SimTime> ShardedSystem::link_floor_for(const TopologyConfig& topo,
                                                   std::uint32_t shards) {
  if (shards <= 1) return {};
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  const std::uint32_t per_shard = (regions + shards - 1) / shards;
  std::vector<SimTime> floor(static_cast<std::size_t>(shards) * shards,
                             SimTime::max());
  // Every cross-shard transport (the five post_remote sites in System)
  // uses cpf_link latency between the endpoint regions, so the cheapest
  // cpf_link between the shards' region blocks is an exact floor.
  for (std::uint32_t a = 0; a < regions; ++a) {
    const std::uint32_t s = a / per_shard;
    for (std::uint32_t b = 0; b < regions; ++b) {
      const std::uint32_t d = b / per_shard;
      if (s == d) continue;
      SimTime& cell = floor[static_cast<std::size_t>(s) * shards + d];
      cell = std::min(cell, topo.cpf_link(a, b));
    }
  }
  return floor;
}

ShardedSystem::Runtime::Config ShardedSystem::runtime_config(
    const Config& config) {
  Runtime::Config rc;
  rc.shards = config.shards;
  rc.threads = config.threads;
  rc.lookahead = lookahead_for(config.topo, config.shards);
  rc.adaptive_lookahead = config.adaptive_lookahead && config.shards > 1;
  if (rc.adaptive_lookahead) {
    rc.link_floor = link_floor_for(config.topo, config.shards);
  }
  rc.drain_batch = config.drain_batch;
  rc.loop = config.loop;
  // Sharding splits the event stream N ways, so each shard's wheel sees
  // ~1/N the event density of the legacy loop. Shrink the SLOT COUNT
  // with the shard count at unchanged tick width: the coordinator
  // rotates through all N wheels every window, so N× the legacy bucket
  // headers is pure cache churn (4096 slots × 24 B × 8 shards ≈ 768 KB
  // touched per rotation vs 96 KB scaled), while widening ticks instead
  // would dump every sub-tick delay — most local hops — onto the slower
  // heap path (CPU-time A/B on the 8-shard storm: tick-width scaling
  // ~+15%, no scaling ~+25%, slot scaling ~±3% vs the same-topology
  // legacy run). The shorter span (512 µs at 8 shards) pushes the few
  // long inter-L2 links to the far-future heap, which is cheaper than
  // thrashing bucket headers on every window. Wheel geometry never
  // affects event ordering — only where an event waits — so this is
  // invisible to determinism and to the 1-shard ≡ legacy equivalence.
  // Applied only when the caller left the loop config at its defaults;
  // explicit geometry is respected.
  const sim::EventLoop::Config defaults;
  if (config.shards > 1 && config.loop.use_timer_wheel &&
      config.loop.wheel_granularity_ns == defaults.wheel_granularity_ns &&
      config.loop.wheel_slots == defaults.wheel_slots) {
    const std::size_t scale = std::bit_ceil(static_cast<std::size_t>(
        config.shards > 16 ? 16 : config.shards));
    rc.loop.wheel_slots = defaults.wheel_slots / scale;
  }
  rc.rng_seed = config.rng_seed;
  rc.channel_capacity = config.channel_capacity;
  return rc;
}

ShardedSystem::ShardedSystem(const Config& config, const CostModel& costs)
    : topo_(config.topo), runtime_(runtime_config(config)) {
  const std::uint32_t n = config.shards == 0 ? 1 : config.shards;
  sinks_.resize(n);
  shards_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sinks_[i].runtime = &runtime_;
    sinks_[i].src = i;
    auto metrics = std::make_unique<Metrics>();
    if (config.streaming_pct) metrics->use_streaming_pct();
    // One shard runs with no sink: every ownership test passes and the
    // construction is bit-identical to the legacy single-threaded System.
    const ShardSpec spec{i, n, n > 1 ? &sinks_[i] : nullptr};
    auto system =
        std::make_unique<System>(runtime_.loop(i), config.policy, topo_,
                                 config.proto, costs, *metrics, spec);
    shards_.push_back(Shard{std::move(metrics), std::move(system)});
  }
}

void ShardedSystem::preattach(UeId ue, std::uint32_t region) {
  System& home = *shards_[shard_of_region(region)].system;
  home.frontend().preattach_context(ue, region);
  const auto state = Frontend::make_preattached_state(ue, region);
  const CpfId primary = home.primary_cpf_for(ue, region);
  system(shard_of_region(topo_.region_of_cpf(primary)))
      .cpf(primary)
      .preinstall(state, /*as_primary=*/true);
  for (const CpfId b : home.backups_for(ue, region)) {
    system(shard_of_region(topo_.region_of_cpf(b)))
        .cpf(b)
        .preinstall(state, /*as_primary=*/false);
  }
  home.upf(region).preinstall(ue);
}

void ShardedSystem::schedule_crash(SimTime at, CpfId id) {
  for (Shard& shard : shards_) {
    System* sys = shard.system.get();
    sys->loop().schedule_at(at, [sys, id] { sys->crash_cpf(id); });
  }
}

void ShardedSystem::schedule_restore(SimTime at, CpfId id) {
  for (Shard& shard : shards_) {
    System* sys = shard.system.get();
    sys->loop().schedule_at(at, [sys, id] { sys->restore_cpf(id); });
  }
}

void ShardedSystem::schedule_cta_crash(SimTime at, std::uint32_t region) {
  for (Shard& shard : shards_) {
    System* sys = shard.system.get();
    sys->loop().schedule_at(at, [sys, region] { sys->crash_cta(region); });
  }
}

void ShardedSystem::run_until(SimTime horizon) {
  runtime_.run_until(horizon, [this](std::size_t dst, SimTime arrival,
                                     ShardEnvelope&& envelope) {
    shards_[dst].system->deliver_envelope(arrival, std::move(envelope));
  });
}

Metrics ShardedSystem::merged_metrics() const {
  Metrics out;
  for (const Shard& shard : shards_) out.merge_from(*shard.metrics);
  return out;
}

}  // namespace neutrino::core
