// Per-message processing costs and encoded sizes.
//
// DESIGN.md §5: a CPF core's service time for a message is
//     service_ns = base_ns + scale * codec_ns(format, kind)
// where codec_ns is *measured on the real codecs* (MeasuredCostModel) or
// injected (FixedCostModel, for deterministic tests). Encoded sizes feed
// the CTA log-size accounting (Fig. 17) and state-migration costs.
#pragma once

#include <array>
#include <cstdint>

#include "common/clock.hpp"
#include "core/msg.hpp"
#include "serialize/codec.hpp"

namespace neutrino::core {

class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Service time to receive/handle/answer one message of this kind at a
  /// control-plane node using `format` on the wire.
  [[nodiscard]] virtual SimTime processing_time(ser::WireFormat format,
                                                MsgKind kind) const = 0;

  /// Encoded size of the message on the wire (log accounting, Fig. 17).
  [[nodiscard]] virtual std::size_t encoded_size(ser::WireFormat format,
                                                 MsgKind kind) const = 0;

  /// Cost of serializing a full UE state checkpoint / migration payload.
  [[nodiscard]] virtual SimTime state_serialize_time(
      ser::WireFormat format) const = 0;
  [[nodiscard]] virtual std::size_t state_encoded_size(
      ser::WireFormat format) const = 0;
};

/// Deterministic costs for unit tests: every message costs the same fixed
/// service time regardless of kind/format (unless overridden).
class FixedCostModel final : public CostModel {
 public:
  explicit FixedCostModel(SimTime per_message = SimTime::microseconds(10),
                          std::size_t size_bytes = 100)
      : per_message_(per_message), size_(size_bytes) {}

  [[nodiscard]] SimTime processing_time(ser::WireFormat,
                                        MsgKind) const override {
    return per_message_;
  }
  [[nodiscard]] std::size_t encoded_size(ser::WireFormat,
                                         MsgKind) const override {
    return size_;
  }
  [[nodiscard]] SimTime state_serialize_time(ser::WireFormat) const override {
    return per_message_;
  }
  [[nodiscard]] std::size_t state_encoded_size(ser::WireFormat) const override {
    return 4 * size_;
  }

 private:
  SimTime per_message_;
  std::size_t size_;
};

/// Measures the real codecs once at construction (representative message
/// per MsgKind), then anchors the service-time scale so that the
/// Existing-EPC attach saturation knee lands near the paper's 60 KPPS
/// (DESIGN.md §5). All other knees/ratios are emergent.
class MeasuredCostModel final : public CostModel {
 public:
  MeasuredCostModel();

  [[nodiscard]] SimTime processing_time(ser::WireFormat format,
                                        MsgKind kind) const override;
  [[nodiscard]] std::size_t encoded_size(ser::WireFormat format,
                                         MsgKind kind) const override;
  [[nodiscard]] SimTime state_serialize_time(
      ser::WireFormat format) const override;
  [[nodiscard]] std::size_t state_encoded_size(
      ser::WireFormat format) const override;

  /// The calibration anchor (exposed for EXPERIMENTS.md reporting).
  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] SimTime base() const { return base_; }

 private:
  static constexpr std::size_t kFormats = ser::kAllWireFormats.size();
  static constexpr std::size_t kKinds =
      static_cast<std::size_t>(MsgKind::kOutdatedNotify) + 1;

  struct Entry {
    double codec_ns = 0;
    std::size_t bytes = 0;
  };

  [[nodiscard]] const Entry& entry(ser::WireFormat f, MsgKind k) const {
    return table_[static_cast<std::size_t>(f)][static_cast<std::size_t>(k)];
  }

  std::array<std::array<Entry, kKinds>, kFormats> table_{};
  std::array<Entry, kFormats> state_entry_{};
  SimTime base_ = SimTime::nanoseconds(4000);
  double scale_ = 1.0;
};

}  // namespace neutrino::core
