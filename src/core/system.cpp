#include "core/system.hpp"

#include "obs/sampler.hpp"

namespace neutrino::core {

// ---------------------------------------------------------------------------
// Upf
// ---------------------------------------------------------------------------

Upf::Upf(System& system, UpfId id, std::uint32_t region)
    : system_(&system),
      id_(id),
      region_(region),
      pool_(system.loop(), system.topo().upf_cores) {}

void Upf::deliver(Msg msg) {
  const SimTime cost = system_->proto().upf_op_cost;
  if (obs::ProcTracer* tr = system_->tracer()) {
    const SimTime now = system_->loop().now();
    const SimTime queued = pool_.backlog();
    tr->hop(msg, obs::HopClass::kQueueing, "upf", region_, now, now + queued);
    tr->hop(msg, obs::HopClass::kService, "upf", region_, now + queued,
            now + queued + cost);
  }
  pool_.submit(cost,
               [this, h = system_->msg_pool().acquire(std::move(msg))]() mutable {
                 handle(h.take());
               });
}

void Upf::handle(Msg msg) {
  Msg reply = msg;
  reply.src_cpf = msg.src_cpf;
  switch (msg.kind) {
    case MsgKind::kCreateSession: {
      auto [it, inserted] = sessions_.try_emplace(msg.ue, Teid(next_teid_));
      if (inserted) ++next_teid_;
      reply.kind = MsgKind::kCreateSessionResponse;
      break;
    }
    case MsgKind::kModifyBearer:
      // Path switch / bearer refresh; idempotent in the model.
      sessions_.try_emplace(msg.ue, Teid(next_teid_++));
      reply.kind = MsgKind::kModifyBearerResponse;
      break;
    case MsgKind::kDeleteSession:
      sessions_.erase(msg.ue);
      reply.kind = MsgKind::kDeleteSessionResponse;
      break;
    default:
      return;  // not a UPF message
  }
  system_->upf_to_cpf(region_, msg.src_cpf, std::move(reply));
}

void Upf::notify_downlink(UeId ue) {
  pool_.submit(system_->proto().upf_op_cost, [this, ue] {
    Msg ddn;
    ddn.kind = MsgKind::kDownlinkDataNotification;
    ddn.ue = ue;
    ddn.region = region_;
    system_->upf_to_cta(region_, std::move(ddn));
  });
}

void Upf::preinstall(UeId ue) {
  sessions_.try_emplace(ue, Teid(next_teid_++));
}

// ---------------------------------------------------------------------------
// System
// ---------------------------------------------------------------------------

System::System(sim::EventLoop& loop, CorePolicy policy, TopologyConfig topo,
               ProtocolConfig proto, const CostModel& costs, Metrics& metrics,
               ShardSpec shard)
    : loop_(&loop),
      policy_(policy),
      topo_(topo),
      proto_(proto),
      costs_(&costs),
      metrics_(&metrics),
      shard_(shard) {
  const int regions = topo_.total_regions();
  assert(shard_.n_shards >= 1 &&
         static_cast<int>(shard_.n_shards) <= regions);
  // Ceiling division: the last shard may own fewer regions.
  regions_per_shard_ = (static_cast<std::uint32_t>(regions) +
                        shard_.n_shards - 1) /
                       shard_.n_shards;
  ctas_.reserve(static_cast<std::size_t>(regions));
  upfs_.reserve(static_cast<std::size_t>(regions));
  cpfs_.reserve(static_cast<std::size_t>(topo_.total_cpfs()));
  for (int cpf = 0; cpf < topo_.total_cpfs(); ++cpf) {
    const auto id = CpfId(static_cast<std::uint32_t>(cpf));
    cpfs_.push_back(
        std::make_unique<Cpf>(*this, id, topo_.region_of_cpf(id)));
  }
  for (int region = 0; region < regions; ++region) {
    const auto r = static_cast<std::uint32_t>(region);
    ctas_.push_back(std::make_unique<Cta>(*this, CtaId(r), r));
    upfs_.push_back(std::make_unique<Upf>(*this, UpfId(r), r));
  }
  frontend_ = std::make_unique<Frontend>(*this);
}

CpfId System::primary_cpf_for(UeId ue, std::uint32_t region) const {
  return ctas_[region]->route(ue);
}

std::vector<CpfId> System::backups_for(UeId ue, std::uint32_t region) const {
  return ctas_[region]->backups(ue);
}

void System::ue_to_cta(std::uint32_t region, Msg msg) {
  // UE↔CTA links (10µs) sit *below* the cross-shard lookahead, so UEs are
  // pinned to the shard owning their home region; scenarios that would
  // re-home a UE across a shard boundary (inter-shard handover, CTA-crash
  // reroute) are unsupported under sharding — see DESIGN.md §11.
  assert(owns_region(region) && "cross-shard UE->CTA is unsupported");
  trace_prop(msg, "ue->cta", region, topo_.latency.ue_to_cta);
  // All transports park the message in the pool so the event captures a
  // handle (inline-schedulable) instead of a full Msg. take() runs first,
  // unconditionally: it must free the slot even when the target is dead.
  loop_->schedule_after(topo_.latency.ue_to_cta,
                        [this, region,
                         h = msg_pool_.acquire(std::move(msg))]() mutable {
                          Msg m = h.take();
                          if (ctas_[region]->alive()) {
                            ctas_[region]->deliver_uplink(std::move(m));
                          }
                        });
}

void System::cta_to_ue(Msg msg) {
  assert(owns_region(msg.region) && "cross-shard CTA->UE is unsupported");
  trace_prop(msg, "cta->ue", msg.region, topo_.latency.ue_to_cta);
  loop_->schedule_after(topo_.latency.ue_to_cta,
                        [this, h = msg_pool_.acquire(std::move(msg))]() mutable {
                          frontend_->deliver(h.take());
                        });
}

void System::cta_to_cpf(std::uint32_t cta_region, CpfId cpf, Msg msg) {
  const std::uint32_t cpf_region = topo_.region_of_cpf(cpf);
  const SimTime latency = cta_region == cpf_region
                              ? topo_.latency.cta_to_cpf
                              : topo_.cpf_link(cta_region, cpf_region);
  trace_prop(msg, "cta->cpf", cpf.value(), latency);
  if (!owns_region(cpf_region)) {
    post_remote(ShardEnvelope::Dest::kCpf, cpf.value(), cpf_region, latency,
                std::move(msg));
    return;
  }
  loop_->schedule_after(
      latency, [this, cpf, h = msg_pool_.acquire(std::move(msg))]() mutable {
        Msg m = h.take();
        if (cpfs_[cpf.value()]->alive()) {
          cpfs_[cpf.value()]->deliver(std::move(m));
        }
      });
}

void System::cpf_to_cta(CpfId from, std::uint32_t cta_region, Msg msg) {
  const std::uint32_t from_region = topo_.region_of_cpf(from);
  const SimTime latency = from_region == cta_region
                              ? topo_.latency.cta_to_cpf
                              : topo_.cpf_link(from_region, cta_region);
  trace_prop(msg, "cpf->cta", cta_region, latency);
  if (!owns_region(cta_region)) {
    post_remote(ShardEnvelope::Dest::kCtaDownlink, cta_region, cta_region,
                latency, std::move(msg));
    return;
  }
  loop_->schedule_after(latency,
                        [this, cta_region,
                         h = msg_pool_.acquire(std::move(msg))]() mutable {
                          Msg m = h.take();
                          if (ctas_[cta_region]->alive()) {
                            ctas_[cta_region]->deliver_downlink(std::move(m));
                          }
                        });
}

void System::cpf_to_cpf(CpfId from, CpfId to, Msg msg) {
  const SimTime latency =
      topo_.cpf_link(topo_.region_of_cpf(from), topo_.region_of_cpf(to));
  trace_prop(msg, "cpf->cpf", to.value(), latency);
  if (const std::uint32_t to_region = topo_.region_of_cpf(to);
      !owns_region(to_region)) {
    post_remote(ShardEnvelope::Dest::kCpf, to.value(), to_region, latency,
                std::move(msg));
    return;
  }
  loop_->schedule_after(
      latency, [this, to, h = msg_pool_.acquire(std::move(msg))]() mutable {
        Msg m = h.take();
        if (cpfs_[to.value()]->alive()) {
          cpfs_[to.value()]->deliver(std::move(m));
        }
      });
}

void System::cpf_to_upf(CpfId from, std::uint32_t upf_region, Msg msg) {
  const std::uint32_t from_region = topo_.region_of_cpf(from);
  const SimTime latency = from_region == upf_region
                              ? topo_.latency.cpf_to_upf
                              : topo_.cpf_link(from_region, upf_region);
  trace_prop(msg, "cpf->upf", upf_region, latency);
  if (!owns_region(upf_region)) {
    post_remote(ShardEnvelope::Dest::kUpf, upf_region, upf_region, latency,
                std::move(msg));
    return;
  }
  loop_->schedule_after(latency,
                        [this, upf_region,
                         h = msg_pool_.acquire(std::move(msg))]() mutable {
                          upfs_[upf_region]->deliver(h.take());
                        });
}

void System::upf_to_cpf(std::uint32_t upf_region, CpfId cpf, Msg msg) {
  const std::uint32_t cpf_region = topo_.region_of_cpf(cpf);
  const SimTime latency = upf_region == cpf_region
                              ? topo_.latency.cpf_to_upf
                              : topo_.cpf_link(upf_region, cpf_region);
  trace_prop(msg, "upf->cpf", cpf.value(), latency);
  if (!owns_region(cpf_region)) {
    post_remote(ShardEnvelope::Dest::kCpf, cpf.value(), cpf_region, latency,
                std::move(msg));
    return;
  }
  loop_->schedule_after(
      latency, [this, cpf, h = msg_pool_.acquire(std::move(msg))]() mutable {
        Msg m = h.take();
        if (cpfs_[cpf.value()]->alive()) {
          cpfs_[cpf.value()]->deliver(std::move(m));
        }
      });
}

void System::trigger_downlink(UeId ue) {
  const std::uint32_t region = frontend_->region_of(ue);
  upfs_[region]->notify_downlink(ue);
}

void System::upf_to_cta(std::uint32_t upf_region, Msg msg) {
  trace_prop(msg, "upf->cta", upf_region, topo_.latency.cpf_to_upf);
  loop_->schedule_after(topo_.latency.cpf_to_upf,
                        [this, upf_region,
                         h = msg_pool_.acquire(std::move(msg))]() mutable {
                          Msg m = h.take();
                          if (ctas_[upf_region]->alive()) {
                            ctas_[upf_region]->deliver_uplink(std::move(m));
                          }
                        });
}

void System::deliver_envelope(SimTime arrival, ShardEnvelope envelope) {
  // The lookahead guarantees arrival > the window this loop just ran to
  // (so the max() below never actually clamps); replay the alive-gating
  // of the local transports at delivery time.
  const SimTime when = std::max(arrival, loop_->now());
  const ShardEnvelope::Dest dest = envelope.dest;
  const std::uint32_t dest_id = envelope.dest_id;
  loop_->schedule_at(
      when, [this, dest, dest_id,
             h = msg_pool_.acquire(std::move(envelope.msg))]() mutable {
        Msg m = h.take();
        switch (dest) {
          case ShardEnvelope::Dest::kCtaUplink:
            if (ctas_[dest_id]->alive()) {
              ctas_[dest_id]->deliver_uplink(std::move(m));
            }
            break;
          case ShardEnvelope::Dest::kCtaDownlink:
            if (ctas_[dest_id]->alive()) {
              ctas_[dest_id]->deliver_downlink(std::move(m));
            }
            break;
          case ShardEnvelope::Dest::kCpf:
            if (cpfs_[dest_id]->alive()) {
              cpfs_[dest_id]->deliver(std::move(m));
            }
            break;
          case ShardEnvelope::Dest::kUpf:
            upfs_[dest_id]->deliver(std::move(m));
            break;
        }
      });
}

void System::crash_cpf(CpfId id) {
  // Crashes are mirrored on every shard; record them only where the node
  // is owned so merged flight dumps carry each crash exactly once.
  if (flight_ && owns_region(cpfs_[id.value()]->region())) {
    flight_->record(loop_->now(), obs::FlightRecorder::Kind::kCrashCpf,
                    id.value(), cpfs_[id.value()]->region());
  }
  cpfs_[id.value()]->crash();
  // Every CTA that might route to this CPF learns after the detection
  // delay (excluded from PCT when zero, per §6.4). Under sharding the
  // crash is mirrored on every shard (shadow liveness stays consistent),
  // but only owned CTAs hold UE records and drive recovery.
  loop_->schedule_after(proto_.failure_detection, [this, id] {
    for (auto& cta : ctas_) {
      if (cta->alive() && owns_region(cta->region())) {
        cta->on_cpf_failure(id);
      }
    }
  });
}

void System::crash_cpf_silently(CpfId id) {
  if (flight_ && owns_region(cpfs_[id.value()]->region())) {
    flight_->record(loop_->now(), obs::FlightRecorder::Kind::kCrashCpf,
                    id.value(), cpfs_[id.value()]->region(), "silent");
  }
  cpfs_[id.value()]->crash();
}

void System::restore_cpf(CpfId id) {
  if (flight_ && owns_region(cpfs_[id.value()]->region())) {
    flight_->record(loop_->now(), obs::FlightRecorder::Kind::kRestoreCpf,
                    id.value(), cpfs_[id.value()]->region());
  }
  cpfs_[id.value()]->restore();
}

void System::crash_cta(std::uint32_t region) {
  if (flight_ && owns_region(region)) {
    flight_->record(loop_->now(), obs::FlightRecorder::Kind::kCrashCta,
                    region);
  }
  ctas_[region]->crash();
  loop_->schedule_after(proto_.failure_detection, [this, region] {
    frontend_->on_cta_failure(region);
  });
}

void System::sample_log_sizes() {
  std::size_t total = 0;
  for (const auto& cta : ctas_) {
    if (owns_region(cta->region())) total += cta->log_bytes();
  }
  metrics_->cta_log_peak_bytes =
      std::max(metrics_->cta_log_peak_bytes, total);
  metrics_->registry.gauge("cta.log_peak_bytes")
      .high_watermark(static_cast<double>(total));
}

void System::sample_occupancy() {
  const SimTime now = loop_->now();
  obs::Registry& reg = metrics_->registry;
  for (std::size_t r = 0; r < ctas_.size(); ++r) {
    // Shadow nodes carry no load; skipping them keeps each label series
    // owned by exactly one shard, so Registry::merge concatenates cleanly.
    if (!owns_region(static_cast<std::uint32_t>(r))) continue;
    const obs::Labels labels{{"region", std::to_string(r)}};
    reg.time_series("cta.log_bytes", labels)
        .push(now, static_cast<double>(ctas_[r]->log_bytes()));
    reg.time_series("cta.log_messages", labels)
        .push(now, static_cast<double>(ctas_[r]->log_messages()));
    const auto cta_occ = ctas_[r]->pool_occupancy();
    reg.time_series("cta.pool_depth", labels)
        .push(now, static_cast<double>(cta_occ.depth));
    reg.histogram("cta.queue_depth", labels)
        .add(static_cast<double>(cta_occ.depth));
    reg.gauge("cta.queue_peak_depth", labels)
        .high_watermark(static_cast<double>(ctas_[r]->pool_peak_depth()));
  }
  for (std::size_t c = 0; c < cpfs_.size(); ++c) {
    if (!owns_region(cpfs_[c]->region())) continue;
    const obs::Labels labels{{"cpf", std::to_string(c)}};
    const auto req = cpfs_[c]->request_occupancy();
    const auto sync = cpfs_[c]->sync_occupancy();
    reg.time_series("cpf.request_depth", labels)
        .push(now, static_cast<double>(req.depth));
    reg.time_series("cpf.request_backlog_us", labels)
        .push(now, static_cast<double>(req.backlog.ns()) / 1e3);
    reg.time_series("cpf.sync_depth", labels)
        .push(now, static_cast<double>(sync.depth));
    reg.time_series("cpf.sync_backlog_us", labels)
        .push(now, static_cast<double>(sync.backlog.ns()) / 1e3);
    reg.histogram("cpf.request_queue_depth", labels)
        .add(static_cast<double>(req.depth));
    reg.gauge("cpf.request_queue_peak_depth", labels)
        .high_watermark(static_cast<double>(cpfs_[c]->request_peak_depth()));
  }
}

void System::arm_telemetry(SimTime window, SimTime until) {
  assert(window.ns() > 0);
  assert(!telemetry_armed() && "telemetry armed twice");
  telemetry_window_ = window;
  telem_prev_ = TelemSnap{};
  telem_prev_.regions.resize(ctas_.size());
  // Ticks are plain sim events scheduled up front: every shard schedules
  // the identical sequence on its own loop, so telemetry never depends on
  // worker-thread interleaving.
  obs::PeriodicSampler::schedule(*loop_, window, until,
                                 [this] { sample_telemetry(); });
}

void System::sample_telemetry() {
  const SimTime now = loop_->now();
  const SimTime window = telemetry_window_;
  obs::Registry& reg = metrics_->registry;
  const std::string shard_label = std::to_string(shard_.shard);
  const obs::Labels by_shard{{"shard", shard_label}};

  // Per-shard per-window deltas. `delta` advances the snapshot in place.
  const auto delta = [](std::uint64_t& prev, std::uint64_t now_v) {
    const std::uint64_t d = now_v - prev;
    prev = now_v;
    return static_cast<double>(d);
  };
  reg.windowed("ts.events", window, obs::WindowAgg::kSum, by_shard)
      .record(now, delta(telem_prev_.executed, loop_->executed()));
  reg.windowed("ts.completions", window, obs::WindowAgg::kSum, by_shard)
      .record(now, delta(telem_prev_.completed,
                         metrics_->procedures_completed.value()));
  reg.windowed("ts.cross_posts", window, obs::WindowAgg::kSum, by_shard)
      .record(now, delta(telem_prev_.cross_posts,
                         metrics_->cross_shard_posts.value()));
  reg.windowed("ts.attach_sheds", window, obs::WindowAgg::kSum, by_shard)
      .record(now, delta(telem_prev_.attach_sheds,
                         metrics_->attach_sheds.value()));
  reg.windowed("ts.overload_drops", window, obs::WindowAgg::kSum, by_shard)
      .record(now, delta(telem_prev_.overload_drops,
                         metrics_->overload_drops.value()));
  reg.windowed("ts.nas_retx", window, obs::WindowAgg::kSum, by_shard)
      .record(now, delta(telem_prev_.nas_retx,
                         metrics_->nas_retransmissions.value()));
  reg.windowed("ts.retx_exhausted", window, obs::WindowAgg::kSum, by_shard)
      .record(now, delta(telem_prev_.retx_exhausted,
                         metrics_->retx_exhausted.value()));

  // Per owned region: point samples + per-class shed deltas. Shadow
  // regions are skipped so each label set stays owned by one shard.
  static constexpr std::array<const char*, sim::kJobClasses> kClassNames{
      "control", "handover", "service", "attach"};
  for (std::size_t r = 0; r < ctas_.size(); ++r) {
    if (!owns_region(static_cast<std::uint32_t>(r))) continue;
    RegionTelemSnap& snap = telem_prev_.regions[r];
    const obs::Labels by_region{{"region", std::to_string(r)}};
    reg.windowed("ts.cta_queue_depth", window, obs::WindowAgg::kLast,
                 by_region)
        .record(now, static_cast<double>(ctas_[r]->pool_occupancy().depth));
    // Busy fraction of this window: service-time delta over core-time.
    const std::int64_t cta_busy = ctas_[r]->pool_busy_time().ns();
    const double cta_frac =
        static_cast<double>(cta_busy - snap.cta_busy_ns) /
        (static_cast<double>(window.ns()) * ctas_[r]->pool_cores());
    snap.cta_busy_ns = cta_busy;
    reg.windowed("ts.cta_busy_frac", window, obs::WindowAgg::kLast, by_region)
        .record(now, cta_frac);

    std::size_t cpf_depth = 0;
    std::int64_t cpf_busy = 0;
    std::int64_t cpf_core_ns = 0;
    std::array<std::uint64_t, sim::kJobClasses> drops{};
    for (const auto& cpf : cpfs_) {
      if (cpf->region() != r) continue;
      cpf_depth += cpf->request_occupancy().depth;
      cpf_busy += cpf->request_busy_time().ns();
      cpf_core_ns += window.ns() * cpf->request_cores();
      for (std::size_t cls = 0; cls < sim::kJobClasses; ++cls) {
        drops[cls] += cpf->request_drops(static_cast<sim::JobClass>(cls));
      }
    }
    for (std::size_t cls = 0; cls < sim::kJobClasses; ++cls) {
      drops[cls] += ctas_[r]->pool_drops(static_cast<sim::JobClass>(cls));
    }
    reg.windowed("ts.cpf_req_depth", window, obs::WindowAgg::kLast, by_region)
        .record(now, static_cast<double>(cpf_depth));
    const double cpf_frac =
        cpf_core_ns > 0 ? static_cast<double>(cpf_busy - snap.cpf_busy_ns) /
                              static_cast<double>(cpf_core_ns)
                        : 0.0;
    snap.cpf_busy_ns = cpf_busy;
    reg.windowed("ts.cpf_busy_frac", window, obs::WindowAgg::kLast, by_region)
        .record(now, cpf_frac);
    for (std::size_t cls = 0; cls < sim::kJobClasses; ++cls) {
      const obs::Labels by_class{{"region", std::to_string(r)},
                                 {"class", kClassNames[cls]}};
      reg.windowed("ts.shed", window, obs::WindowAgg::kSum, by_class)
          .record(now, delta(snap.drops[cls], drops[cls]));
    }
  }
}

}  // namespace neutrino::core
