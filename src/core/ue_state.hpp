// The replicated UE control state (§4.2: "BS ID, data plane endpoint
// identifiers, and user tracking area").
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace neutrino::core {

struct UeState {
  UeId ue;
  std::uint64_t imsi = 0;
  std::uint32_t m_tmsi = 0;

  bool attached = false;
  bool session_active = false;  // data bearer established at the UPF
  std::uint32_t serving_region = 0;
  BsId serving_bs;
  UpfId upf;
  Teid upf_teid;  // data-plane endpoint
  std::uint16_t tracking_area = 0;

  /// Number of the last control procedure that completed for this UE.
  /// RYW (§4.2.1) reduces to: a CPF serving the UE must hold state with
  /// last_completed_proc equal to the UE's own completed-procedure count.
  std::uint64_t last_completed_proc = 0;
  /// Logical clock of the final message of that procedure (§4.2.3 step 2).
  LogicalClock::Value last_lclock = 0;
};

}  // namespace neutrino::core
