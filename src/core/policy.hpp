// Control-plane policy knobs.
//
// The paper's four evaluated systems (§6.2) are all "modified versions of
// the existing EPC", differing along a few orthogonal axes. Expressing each
// baseline as a policy vector over one code base mirrors that and keeps the
// comparison honest: every system shares the same simulator, procedures and
// topology, differing only in the knobs below.
#pragma once

#include <string_view>

#include "serialize/codec.hpp"

namespace neutrino::core {

/// When UE state is pushed from the primary CPF to its backups (§6.7.1).
enum class SyncMode {
  kNone,          // no replication (existing EPC, DPCM)
  kPerMessage,    // checkpoint after every control message (SkyCore)
  kPerProcedure,  // checkpoint on procedure completion (Neutrino)
  kOnIdle,        // checkpoint only on connected->idle transition (SCALE)
};

/// What happens to a UE whose primary CPF fails (§4.2.5).
enum class RecoveryMode {
  kReattach,  // UE re-executes Attach from scratch (existing EPC, DPCM)
  kFailover,  // an always-synced backup takes over directly (SkyCore)
  kReplay,    // CTA replays logged messages onto a backup (Neutrino)
};

/// Inter-CPF handover strategy (§4.3).
enum class HandoverMode {
  kMigrate,    // synchronous state migration to the target CPF (4G/LTE)
  kProactive,  // target already holds state via level-2 geo-replication
};

struct CorePolicy {
  std::string_view name;
  ser::WireFormat wire_format = ser::WireFormat::kAsn1Per;
  SyncMode sync_mode = SyncMode::kNone;
  RecoveryMode recovery = RecoveryMode::kReattach;
  HandoverMode handover = HandoverMode::kMigrate;
  bool cta_message_logging = false;  // the §4.2.3 in-memory log
  /// DPCM [61]: the device supplies cached state, letting the attach and
  /// service-request flows skip the authentication and security-mode round
  /// trips (client-side parallelism).
  bool dpcm_device_state = false;
  int num_backups = 2;  // N replica CPFs
};

/// §6.2 baseline: OpenAirInterface-derived EPC over DPDK, ASN.1, UE
/// re-attaches on CPF failure, no replication.
constexpr CorePolicy existing_epc_policy() {
  return {.name = "ExistingEPC",
          .wire_format = ser::WireFormat::kAsn1Per,
          .sync_mode = SyncMode::kNone,
          .recovery = RecoveryMode::kReattach,
          .handover = HandoverMode::kMigrate,
          .cta_message_logging = false,
          .dpcm_device_state = false,
          .num_backups = 0};
}

/// §6.2: Neutrino = optimized FlatBuffers + per-procedure checkpointing +
/// message-log replay recovery + proactive geo-replication.
constexpr CorePolicy neutrino_policy() {
  return {.name = "Neutrino",
          .wire_format = ser::WireFormat::kOptimizedFlatBuffers,
          .sync_mode = SyncMode::kPerProcedure,
          .recovery = RecoveryMode::kReplay,
          .handover = HandoverMode::kProactive,
          .cta_message_logging = true,
          .dpcm_device_state = false,
          .num_backups = 2};
}

/// §6.2: SkyCore synchronizes user state on each control message.
constexpr CorePolicy skycore_policy() {
  return {.name = "SkyCore",
          .wire_format = ser::WireFormat::kAsn1Per,
          .sync_mode = SyncMode::kPerMessage,
          .recovery = RecoveryMode::kFailover,
          .handover = HandoverMode::kMigrate,
          .cta_message_logging = false,
          .dpcm_device_state = false,
          .num_backups = 2};
}

/// §3.1: SCALE updates replicas asynchronously, *only when a UE
/// transitions from connected to idle* — between transitions the replicas
/// can be arbitrarily stale, which is the UE-Core inconsistency example
/// of Fig. 2. Not part of the paper's plotted baselines; included because
/// §3.1 analyzes it.
constexpr CorePolicy scale_policy() {
  return {.name = "SCALE",
          .wire_format = ser::WireFormat::kAsn1Per,
          .sync_mode = SyncMode::kOnIdle,
          .recovery = RecoveryMode::kFailover,
          .handover = HandoverMode::kMigrate,
          .cta_message_logging = false,
          .dpcm_device_state = false,
          .num_backups = 2};
}

/// §6.2: DPCM modifies the control procedures (BS receives state from the
/// UE), otherwise identical to existing EPC.
constexpr CorePolicy dpcm_policy() {
  return {.name = "DPCM",
          .wire_format = ser::WireFormat::kAsn1Per,
          .sync_mode = SyncMode::kNone,
          .recovery = RecoveryMode::kReattach,
          .handover = HandoverMode::kMigrate,
          .cta_message_logging = false,
          .dpcm_device_state = true,
          .num_backups = 0};
}

}  // namespace neutrino::core
