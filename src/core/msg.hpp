// Control-plane messages and procedures as carried by the simulator.
//
// Each simulated message names the S1AP/NAS/GTP-C wire message it stands
// for (MsgKind); the cost model maps that kind to a real measured
// en/decode cost and encoded size for the active wire format, so the
// simulator's service times and log sizes are grounded in the real codecs.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace neutrino::core {

enum class MsgKind : std::uint8_t {
  // UE/BS originated
  kAttachRequest,
  kAuthResponse,
  kSecurityModeComplete,
  kAttachComplete,
  kServiceRequest,
  kIcsResponse,          // InitialContextSetupResponse from BS
  kHandoverRequired,
  kHandoverNotify,
  kTrackingAreaUpdate,
  // CPF originated toward UE/BS
  kAuthRequest,
  kSecurityModeCommand,
  kAttachAccept,         // rides InitialContextSetupRequest
  kServiceAccept,        // InitialContextSetupRequest for service request
  kHandoverCommand,
  kHandoverComplete,     // final confirmation closing a handover
  kReattachCommand,      // UEContextReleaseCommand: UE must re-attach
  // CPF <-> CPF
  kHandoverRequest,      // may carry migrated state (HandoverMode::kMigrate)
  kHandoverRequestAck,
  kStateCheckpoint,
  kStateFetch,
  kStateFetchResponse,
  // CPF <-> UPF (S11)
  kCreateSession,
  kCreateSessionResponse,
  kModifyBearer,
  kModifyBearerResponse,
  kDeleteSession,
  kDeleteSessionResponse,
  // Idle-mode and session-release extensions
  kDetachRequest,        // UE-initiated detach
  kDetachAccept,
  kTauAccept,            // tracking-area-update accept
  kDownlinkDataNotification,  // UPF -> CPF: data waiting for an idle UE
  kPaging,               // CPF -> UE via the tracking area
  // CPF/replica <-> CTA
  kCheckpointAck,
  kOutdatedNotify,
};

constexpr std::string_view to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kAttachRequest: return "AttachRequest";
    case MsgKind::kAuthResponse: return "AuthResponse";
    case MsgKind::kSecurityModeComplete: return "SecurityModeComplete";
    case MsgKind::kAttachComplete: return "AttachComplete";
    case MsgKind::kServiceRequest: return "ServiceRequest";
    case MsgKind::kIcsResponse: return "ICSResponse";
    case MsgKind::kHandoverRequired: return "HandoverRequired";
    case MsgKind::kHandoverNotify: return "HandoverNotify";
    case MsgKind::kTrackingAreaUpdate: return "TrackingAreaUpdate";
    case MsgKind::kAuthRequest: return "AuthRequest";
    case MsgKind::kSecurityModeCommand: return "SecurityModeCommand";
    case MsgKind::kAttachAccept: return "AttachAccept";
    case MsgKind::kServiceAccept: return "ServiceAccept";
    case MsgKind::kHandoverCommand: return "HandoverCommand";
    case MsgKind::kHandoverComplete: return "HandoverComplete";
    case MsgKind::kReattachCommand: return "ReattachCommand";
    case MsgKind::kHandoverRequest: return "HandoverRequest";
    case MsgKind::kHandoverRequestAck: return "HandoverRequestAck";
    case MsgKind::kStateCheckpoint: return "StateCheckpoint";
    case MsgKind::kStateFetch: return "StateFetch";
    case MsgKind::kStateFetchResponse: return "StateFetchResponse";
    case MsgKind::kCreateSession: return "CreateSession";
    case MsgKind::kCreateSessionResponse: return "CreateSessionResponse";
    case MsgKind::kModifyBearer: return "ModifyBearer";
    case MsgKind::kModifyBearerResponse: return "ModifyBearerResponse";
    case MsgKind::kDeleteSession: return "DeleteSession";
    case MsgKind::kDeleteSessionResponse: return "DeleteSessionResponse";
    case MsgKind::kDetachRequest: return "DetachRequest";
    case MsgKind::kDetachAccept: return "DetachAccept";
    case MsgKind::kTauAccept: return "TAUAccept";
    case MsgKind::kDownlinkDataNotification: return "DownlinkDataNotification";
    case MsgKind::kPaging: return "Paging";
    case MsgKind::kCheckpointAck: return "CheckpointAck";
    case MsgKind::kOutdatedNotify: return "OutdatedNotify";
  }
  return "?";
}

/// True for the messages the CTA logs (§4.2.3): control traffic between
/// UE/BS and CPF, not replication chatter.
constexpr bool is_ue_control_message(MsgKind k) {
  switch (k) {
    case MsgKind::kAttachRequest:
    case MsgKind::kAuthResponse:
    case MsgKind::kSecurityModeComplete:
    case MsgKind::kAttachComplete:
    case MsgKind::kServiceRequest:
    case MsgKind::kIcsResponse:
    case MsgKind::kHandoverRequired:
    case MsgKind::kHandoverNotify:
    case MsgKind::kTrackingAreaUpdate:
    case MsgKind::kDetachRequest:
      return true;
    default:
      return false;
  }
}

enum class ProcedureType : std::uint8_t {
  kAttach,
  kServiceRequest,
  kHandover,      // inter-CPF handover
  kIntraHandover, // BS change within a region, no CPF change
  kReattach,      // recovery path: release + full attach
  kDetach,        // UE-initiated session release
  kTau,           // tracking area update (idle-mode mobility)
};

constexpr std::string_view to_string(ProcedureType p) {
  switch (p) {
    case ProcedureType::kAttach: return "attach";
    case ProcedureType::kServiceRequest: return "service_request";
    case ProcedureType::kHandover: return "handover";
    case ProcedureType::kIntraHandover: return "intra_handover";
    case ProcedureType::kReattach: return "reattach";
    case ProcedureType::kDetach: return "detach";
    case ProcedureType::kTau: return "tau";
  }
  return "?";
}

struct UeState;  // core/ue_state.hpp

/// One simulated control message.
struct Msg {
  MsgKind kind = MsgKind::kAttachRequest;
  UeId ue;
  ProcedureType proc_type = ProcedureType::kAttach;
  std::uint64_t proc_seq = 0;  // per-UE procedure number
  LogicalClock::Value lclock = 0;  // stamped by the CTA (§4.2.3)
  CpfId src_cpf;                   // sender, for CPF<->CPF traffic
  /// Sender's crash incarnation, stamped on checkpoint ACKs: an ACK from a
  /// previous incarnation vouches for state that died with the crash and
  /// must be ignored by the CTA.
  std::uint32_t sender_epoch = 0;
  std::uint32_t region = 0;        // level-1 region the UE currently uses
  std::uint32_t target_region = 0; // handover destination region
  /// Region the UE was homed in before this message (a handover target
  /// derives the level-2 replica placement from the *source* region).
  std::uint32_t prev_region = 0;
  bool is_replay = false;          // re-injected from the CTA log
  /// last_completed_proc of the state the CPF served from; the frontend
  /// compares it against the UE's own completed count — the executable
  /// Read-your-Writes check (§4.2.1).
  std::uint64_t served_proc = 0;
  /// The UE's own context version (its last completed procedure), stamped
  /// on procedure-initiating messages. A CPF whose stored state disagrees
  /// must reject and demand Re-Attach — the UE-side context validation
  /// (KSI/S-TMSI checks) that §3.1 builds on.
  std::uint64_t expected_proc = 0;
  /// Replication payload (kStateCheckpoint / kStateFetchResponse /
  /// kHandoverRequest with migration).
  std::shared_ptr<const UeState> state;
  /// kOutdatedNotify: CPFs known to hold up-to-date state (§4.2.4 1a-i).
  std::shared_ptr<const std::vector<CpfId>> uptodate_cpfs;
};

}  // namespace neutrino::core
