#include "core/cost_model.hpp"

#include <chrono>

#include "s1ap/samples.hpp"
#include "serialize/flatbuf.hpp"

namespace neutrino::core {
namespace {

using WallClock = std::chrono::steady_clock;
namespace samples = s1ap::samples;

/// Encode + decode one message the way an application using that format
/// would: sequential formats parse into a struct; FlatBuffers is consumed
/// through accessors without materialization (see FlatBufAccessor).
template <ser::FieldStruct M>
double measure_codec_ns(ser::WireFormat format, const M& msg) {
  std::uint64_t sink = 0;
  auto one_pass = [&] {
    const Bytes encoded = ser::encode(format, msg);
    sink += encoded.size();
    if (format == ser::WireFormat::kFlatBuffers ||
        format == ser::WireFormat::kOptimizedFlatBuffers) {
      auto checksum = ser::FlatBufAccessor::access_all<M>(
          encoded, format == ser::WireFormat::kFlatBuffers
                       ? ser::FlatBufMode::kStandard
                       : ser::FlatBufMode::kOptimized);
      sink += checksum.is_ok() ? *checksum : 0;
    } else {
      auto decoded = ser::decode<M>(format, encoded);
      sink += decoded.is_ok() ? 1 : 0;
    }
  };
  constexpr int kWarmup = 200;
  constexpr int kIters = 1200;
  for (int i = 0; i < kWarmup; ++i) one_pass();
  // Best-of-3 batches rejects scheduler noise without undercounting.
  double best = 1e18;
  for (int batch = 0; batch < 3; ++batch) {
    const auto t0 = WallClock::now();
    for (int i = 0; i < kIters; ++i) one_pass();
    const auto t1 = WallClock::now();
    best = std::min(
        best, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                  kIters);
  }
  // Fold the sink into the result imperceptibly so the loop cannot be
  // optimized away.
  return best + static_cast<double>(sink % 2) * 1e-9;
}

template <ser::FieldStruct M>
std::size_t measure_size(ser::WireFormat format, const M& msg) {
  return ser::encode(format, msg).size();
}

/// The distinct sample messages; MsgKind values map onto these.
enum class Sample : std::uint8_t {
  kInitialUe,        // AttachRequest / ServiceRequest carrier
  kDownlinkNas,      // AuthRequest / SecurityModeCommand
  kUplinkNas,        // AuthResponse / SecurityModeComplete / AttachComplete
  kIcs,              // InitialContextSetupRequest (AttachAccept/ServiceAccept)
  kIcsResponse,      // InitialContextSetupResponse
  kHandoverRequired,
  kHandoverRequest,
  kHandoverRequestAck,
  kHandoverCommand,
  kHandoverNotify,
  kReleaseCommand,   // ReattachCommand / OutdatedNotify carrier
  kReleaseComplete,  // small acks (CheckpointAck, HandoverComplete, fetch)
  kCreateSession,
  kCreateSessionResponse,
  kModifyBearer,
  kModifyBearerResponse,
  kTau,
  kPaging,
  kCheckpoint,       // UeContextCheckpoint
  kCount,
};

constexpr Sample sample_for(MsgKind kind) {
  switch (kind) {
    case MsgKind::kAttachRequest:
    case MsgKind::kServiceRequest: return Sample::kInitialUe;
    case MsgKind::kAuthRequest:
    case MsgKind::kSecurityModeCommand: return Sample::kDownlinkNas;
    case MsgKind::kAuthResponse:
    case MsgKind::kSecurityModeComplete:
    case MsgKind::kAttachComplete: return Sample::kUplinkNas;
    case MsgKind::kAttachAccept:
    case MsgKind::kServiceAccept: return Sample::kIcs;
    case MsgKind::kIcsResponse: return Sample::kIcsResponse;
    case MsgKind::kHandoverRequired: return Sample::kHandoverRequired;
    case MsgKind::kHandoverRequest: return Sample::kHandoverRequest;
    case MsgKind::kHandoverRequestAck: return Sample::kHandoverRequestAck;
    case MsgKind::kHandoverCommand: return Sample::kHandoverCommand;
    case MsgKind::kHandoverNotify: return Sample::kHandoverNotify;
    case MsgKind::kHandoverComplete: return Sample::kReleaseComplete;
    case MsgKind::kReattachCommand:
    case MsgKind::kOutdatedNotify: return Sample::kReleaseCommand;
    case MsgKind::kStateCheckpoint:
    case MsgKind::kStateFetchResponse: return Sample::kCheckpoint;
    case MsgKind::kStateFetch:
    case MsgKind::kCheckpointAck: return Sample::kReleaseComplete;
    case MsgKind::kCreateSession: return Sample::kCreateSession;
    case MsgKind::kCreateSessionResponse:
      return Sample::kCreateSessionResponse;
    case MsgKind::kModifyBearer: return Sample::kModifyBearer;
    case MsgKind::kModifyBearerResponse: return Sample::kModifyBearerResponse;
    case MsgKind::kTrackingAreaUpdate: return Sample::kTau;
    case MsgKind::kTauAccept: return Sample::kDownlinkNas;
    case MsgKind::kDetachRequest: return Sample::kUplinkNas;
    case MsgKind::kDetachAccept: return Sample::kDownlinkNas;
    case MsgKind::kDeleteSession:
    case MsgKind::kDeleteSessionResponse: return Sample::kReleaseComplete;
    case MsgKind::kDownlinkDataNotification: return Sample::kReleaseComplete;
    case MsgKind::kPaging: return Sample::kPaging;
  }
  return Sample::kReleaseComplete;
}

/// Measure one sample across all formats.
struct SampleCosts {
  double ns[ser::kAllWireFormats.size()];
  std::size_t bytes[ser::kAllWireFormats.size()];
};

template <ser::FieldStruct M>
SampleCosts measure_all_formats(const M& msg) {
  SampleCosts out{};
  for (std::size_t i = 0; i < ser::kAllWireFormats.size(); ++i) {
    out.ns[i] = measure_codec_ns(ser::kAllWireFormats[i], msg);
    out.bytes[i] = measure_size(ser::kAllWireFormats[i], msg);
  }
  return out;
}

/// Messages a CPF handles per attach procedure — the calibration anchor
/// (DESIGN.md §5): 5 CPFs x 1 request core saturating at the paper's
/// 60 KPPS gives each attach a 5/60K s service budget per CPF.
constexpr MsgKind kAttachCpfInbound[] = {
    MsgKind::kAttachRequest, MsgKind::kAuthResponse,
    MsgKind::kSecurityModeComplete, MsgKind::kCreateSessionResponse,
    MsgKind::kAttachComplete};

constexpr double kEpcAttachBudgetNs = 5.0 / 60'000 * 1e9;  // 83.3 us

}  // namespace

MeasuredCostModel::MeasuredCostModel() {
  std::array<SampleCosts, static_cast<std::size_t>(Sample::kCount)> costs{};
  auto put = [&](Sample s, SampleCosts c) {
    costs[static_cast<std::size_t>(s)] = c;
  };
  put(Sample::kInitialUe, measure_all_formats(samples::initial_ue_message()));
  put(Sample::kDownlinkNas, measure_all_formats(samples::downlink_nas()));
  put(Sample::kUplinkNas, measure_all_formats(samples::uplink_nas()));
  put(Sample::kIcs, measure_all_formats(samples::initial_context_setup()));
  put(Sample::kIcsResponse,
      measure_all_formats(samples::initial_context_setup_response()));
  put(Sample::kHandoverRequired,
      measure_all_formats(samples::handover_required()));
  put(Sample::kHandoverRequest,
      measure_all_formats(samples::handover_request()));
  put(Sample::kHandoverRequestAck,
      measure_all_formats(samples::handover_request_ack()));
  put(Sample::kHandoverCommand,
      measure_all_formats(samples::handover_command()));
  put(Sample::kHandoverNotify,
      measure_all_formats(samples::handover_notify()));
  put(Sample::kReleaseCommand,
      measure_all_formats(samples::ue_context_release_command()));
  put(Sample::kReleaseComplete,
      measure_all_formats(samples::ue_context_release_complete()));
  put(Sample::kCreateSession,
      measure_all_formats(samples::create_session_request()));
  put(Sample::kCreateSessionResponse,
      measure_all_formats(samples::create_session_response()));
  put(Sample::kModifyBearer,
      measure_all_formats(samples::modify_bearer_request()));
  put(Sample::kModifyBearerResponse,
      measure_all_formats(samples::modify_bearer_response()));
  put(Sample::kTau, measure_all_formats(samples::tracking_area_update()));
  put(Sample::kPaging, measure_all_formats(samples::paging()));
  put(Sample::kCheckpoint,
      measure_all_formats(samples::ue_context_checkpoint()));

  for (std::size_t f = 0; f < kFormats; ++f) {
    for (std::size_t k = 0; k < kKinds; ++k) {
      const auto s = static_cast<std::size_t>(
          sample_for(static_cast<MsgKind>(k)));
      table_[f][k] = {costs[s].ns[f], costs[s].bytes[f]};
    }
    const auto ckpt = static_cast<std::size_t>(Sample::kCheckpoint);
    state_entry_[f] = {costs[ckpt].ns[f], costs[ckpt].bytes[f]};
  }

  // Anchor the scale: Existing-EPC (ASN.1) attach work per CPF ==
  // kEpcAttachBudgetNs (DESIGN.md §5). Everything else is emergent.
  const auto asn1 = static_cast<std::size_t>(ser::WireFormat::kAsn1Per);
  double asn1_attach_ns = 0;
  for (MsgKind kind : kAttachCpfInbound) {
    asn1_attach_ns += table_[asn1][static_cast<std::size_t>(kind)].codec_ns;
  }
  const double n_msgs = static_cast<double>(std::size(kAttachCpfInbound));
  base_ = SimTime::nanoseconds(1500);
  scale_ = (kEpcAttachBudgetNs - n_msgs * static_cast<double>(base_.ns())) /
           asn1_attach_ns;
  if (scale_ < 1.0) scale_ = 1.0;  // degenerate only on absurdly slow hosts
}

SimTime MeasuredCostModel::processing_time(ser::WireFormat format,
                                           MsgKind kind) const {
  const double ns =
      static_cast<double>(base_.ns()) + scale_ * entry(format, kind).codec_ns;
  return SimTime::nanoseconds(static_cast<std::int64_t>(ns));
}

std::size_t MeasuredCostModel::encoded_size(ser::WireFormat format,
                                            MsgKind kind) const {
  return entry(format, kind).bytes;
}

SimTime MeasuredCostModel::state_serialize_time(ser::WireFormat format) const {
  const double ns =
      scale_ * state_entry_[static_cast<std::size_t>(format)].codec_ns;
  return SimTime::nanoseconds(static_cast<std::int64_t>(ns));
}

std::size_t MeasuredCostModel::state_encoded_size(
    ser::WireFormat format) const {
  return state_entry_[static_cast<std::size_t>(format)].bytes;
}

}  // namespace neutrino::core
