// Deployment topology: level-1 / level-2 regions, node placement, link
// latencies (Fig. 6 deployment model; CTA co-located with its region's CPF
// pool, per §4.3 "this option simplifies deployment").
#pragma once

#include <cassert>
#include <cstdint>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace neutrino::core {

struct LatencyConfig {
  /// UE/BS emulator to the region's CTA (the paper's two directly-cabled
  /// DPDK servers: tens of microseconds end to end).
  SimTime ue_to_cta = SimTime::microseconds(10);
  SimTime cta_to_cpf = SimTime::microseconds(5);
  SimTime cpf_to_upf = SimTime::microseconds(5);
  SimTime intra_region = SimTime::microseconds(5);   // CPF<->CPF, same region
  SimTime intra_l2 = SimTime::microseconds(400);     // across level-1 regions
  SimTime inter_l2 = SimTime::milliseconds(3);       // across level-2 regions
};

struct TopologyConfig {
  int l2_regions = 1;
  int l1_per_l2 = 1;
  int cpfs_per_region = 5;  // the paper's five CPF instances
  int cpf_request_cores = 1;  // §5: one core processing requests...
  int cpf_sync_cores = 1;     // ...one for state synchronization
  int cta_cores = 2;
  int upf_cores = 4;
  int ring_vnodes = 32;
  LatencyConfig latency;

  [[nodiscard]] int total_regions() const { return l2_regions * l1_per_l2; }
  [[nodiscard]] int total_cpfs() const {
    return total_regions() * cpfs_per_region;
  }
  [[nodiscard]] std::uint32_t l2_of(std::uint32_t region) const {
    return region / static_cast<std::uint32_t>(l1_per_l2);
  }
  [[nodiscard]] std::uint32_t region_of_cpf(CpfId cpf) const {
    return cpf.value() / static_cast<std::uint32_t>(cpfs_per_region);
  }
  [[nodiscard]] CpfId cpf_at(std::uint32_t region, int index) const {
    return CpfId(region * static_cast<std::uint32_t>(cpfs_per_region) +
                 static_cast<std::uint32_t>(index));
  }

  /// CPF<->CPF (or CTA<->remote CPF) propagation latency by region pair.
  [[nodiscard]] SimTime cpf_link(std::uint32_t region_a,
                                 std::uint32_t region_b) const {
    if (region_a == region_b) return latency.intra_region;
    if (l2_of(region_a) == l2_of(region_b)) return latency.intra_l2;
    return latency.inter_l2;
  }
};

/// Protocol timing knobs (paper values; tests shrink them).
struct ProtocolConfig {
  SimTime ack_timeout = SimTime::seconds(30);      // §4.2.4: 30 s
  SimTime log_scan_interval = SimTime::seconds(1);  // CTA periodic scan
  /// Failure detection time: excluded from PCT per §6.4 ("PCT does not
  /// include failure detection time"), so zero by default.
  SimTime failure_detection = SimTime::nanoseconds(0);
  /// CTA per-message forwarding cost (DPDK ring + consistent-hash lookup).
  SimTime cta_forward_cost = SimTime::nanoseconds(700);
  /// CTA in-memory log append (std::map insert, §5).
  SimTime cta_log_cost = SimTime::nanoseconds(250);
  /// UPF session-table operation.
  SimTime upf_op_cost = SimTime::microseconds(2);
  /// Inactivity window after which the CPF releases the UE's S1 context
  /// (connected -> idle). Drives SyncMode::kOnIdle checkpointing (§3.1's
  /// SCALE behaviour).
  SimTime idle_release_after = SimTime::milliseconds(100);
  /// §4.2.4(4) refinement: only treat a replica as outdated when the
  /// previous procedure's ACKs have been missing longer than the normal
  /// synchronization delay. Firing the notify instantly turns transient
  /// checkpoint lag into a metastable notify storm on the sync cores
  /// (observed under overload); correctness does not depend on it — the
  /// UE-context version check rejects stale replicas regardless.
  SimTime rule4_grace = SimTime::milliseconds(10);
  /// Radio-coverage grace during an inter-CPF handover: a moving UE keeps
  /// the source cell for at most this long after the crossing; if the
  /// control plane has not commanded the handover by then, the link drops
  /// and the data-path outage starts (§3.3: "up to 90% of the application
  /// deadlines can be missed" during slow control handovers).
  SimTime ho_coverage_grace = SimTime::milliseconds(500);
  /// How long a CPF waits on a parked StateFetch (TAU / FastHandover
  /// arrival) before giving up and commanding Re-Attach. Without a bound
  /// the UE hangs forever if the fetch holder crashes while the request
  /// is in flight: the CTA will not resend (the *routed* CPF is alive)
  /// and the holder's reply never comes.
  SimTime fetch_timeout = SimTime::seconds(2);

  // --- Overload control (DESIGN.md §13) -----------------------------------
  // The paper evaluates PCT up to the saturation knee (§6.3); these knobs
  // model what a production control plane does past it. All default to
  // "off" so the pre-overload behaviour (unbounded queues, no
  // retransmission) stays bit-identical for every existing experiment.

  /// Bounded ingress queue at the CTA's forwarding pool (jobs queued + in
  /// service). 0 = unbounded. When bounded, new attaches are admitted only
  /// while the pool is below attach_admission_fraction of this.
  std::size_t cta_queue_capacity = 0;
  /// Same bound for each CPF's request pool (the sync pool stays
  /// unbounded: replication completes work already admitted upstream).
  std::size_t cpf_queue_capacity = 0;
  /// Fraction of a bounded queue NEW attaches may fill before being shed;
  /// handover / service-request / in-flight traffic gets the full queue
  /// (§3's outage-sensitivity ordering).
  double attach_admission_fraction = 0.75;
  /// NAS-level retransmission timer at the UE/BS frontend: how long the UE
  /// waits for the next response of an in-flight procedure before
  /// re-sending its last uplink. 0 = retransmission disabled. The timeout
  /// doubles per attempt (exponential backoff), which is what turns a
  /// dropped/shed message into adaptive backpressure instead of a stall.
  SimTime nas_retx_timeout = SimTime::nanoseconds(0);
  /// Retransmissions of one uplink before the UE gives up and re-attaches
  /// (3GPP NAS timers expire into a fresh registration the same way).
  int nas_retx_budget = 4;
};

}  // namespace neutrino::core
