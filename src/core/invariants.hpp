// Chaos-harness hook points (DESIGN.md §12): an observer interface the
// online invariant checker attaches to a System, and the deliberate
// fault-injection knobs the checker's "teeth" tests flip to prove a
// planted bug is caught. Both are inert by default — an unattached
// observer costs one pointer test per hook site, and zero-valued fault
// counters leave every code path untouched.
#pragma once

#include <cstdint>

#include "core/msg.hpp"

namespace neutrino::core {

/// Observer of UE-visible protocol milestones. The chaos invariant
/// checker implements this to track, independently of the Frontend's own
/// bookkeeping, what each UE has completed and what the core served it.
class InvariantObserver {
 public:
  virtual ~InvariantObserver() = default;

  /// A read-carrying final response reached the UE. `served_proc` is the
  /// serving CPF's claim of the last procedure reflected in the state it
  /// served; fires before the completion below (so the checker's own
  /// last-completed watermark is still the pre-completion value).
  virtual void on_final_response(UeId ue, ProcedureType type,
                                 std::uint64_t served_proc) = 0;

  /// A procedure completed at the UE (the Frontend advanced its
  /// last-completed watermark to `proc_seq`).
  virtual void on_procedure_complete(UeId ue, std::uint64_t proc_seq,
                                     ProcedureType type) = 0;
};

/// Deliberate bugs, armed per-System by the teeth tests (each counter is
/// "break the next N occurrences"). Production runs leave them zero.
struct FaultInjection {
  /// CPF replies report a served_proc one procedure behind the truth —
  /// models serving from a stale replica past the up-to-date guard. The
  /// checker must flag each as a Read-your-Writes violation.
  std::uint32_t cpf_stale_serves = 0;
  /// CTA log prunes skip the byte/message accounting — models the
  /// accounting drift the audit's recomputation must catch.
  std::uint32_t cta_unaccounted_prunes = 0;
};

}  // namespace neutrino::core
