// The simulated cellular core: CTAs, CPFs, UPFs and the UE/BS frontend,
// wired per the Fig. 6 deployment model and driven by one policy vector
// (core/policy.hpp) so Neutrino and every baseline share this code.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/flat_hash_map.hpp"
#include "common/hashing.hpp"
#include "core/cost_model.hpp"
#include "core/invariants.hpp"
#include "core/metrics.hpp"
#include "core/msg.hpp"
#include "core/msg_pool.hpp"
#include "core/policy.hpp"
#include "core/shard_link.hpp"
#include "core/topology.hpp"
#include "core/ue_state.hpp"
#include "geo/hash_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "sim/server_pool.hpp"

namespace neutrino::core {

class System;

/// Admission class of an uplink offered to a bounded service pool
/// (DESIGN.md §13). Only a brand-new attach — not a recovery re-attach,
/// not a replay, not a mid-attach message — is sheddable; everything
/// carrying an in-flight procedure keeps the full queue, with handover
/// and service-request called out per §3's outage sensitivity.
inline sim::JobClass job_class_of(const Msg& msg) {
  if (msg.kind == MsgKind::kAttachRequest &&
      msg.proc_type == ProcedureType::kAttach && !msg.is_replay) {
    return sim::JobClass::kAttach;
  }
  switch (msg.proc_type) {
    case ProcedureType::kHandover:
    case ProcedureType::kIntraHandover:
      return sim::JobClass::kHandover;
    case ProcedureType::kServiceRequest:
      return sim::JobClass::kService;
    default:
      return sim::JobClass::kControl;
  }
}

// ---------------------------------------------------------------------------
// UPF: data-plane session endpoint (S11 server), one per region.
// ---------------------------------------------------------------------------
class Upf {
 public:
  Upf(System& system, UpfId id, std::uint32_t region);

  void deliver(Msg msg);  // network-level delivery (latency already applied)

  /// Downlink data arrived for an (idle) UE: raise a Downlink Data
  /// Notification toward the control plane (the Fig. 2 scenario).
  void notify_downlink(UeId ue);
  /// Bench/test hook: install a session for a pre-attached UE.
  void preinstall(UeId ue);

  [[nodiscard]] UpfId id() const { return id_; }
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] bool has_session(UeId ue) const {
    return sessions_.contains(ue);
  }

 private:
  void handle(Msg msg);

  System* system_;
  UpfId id_;
  std::uint32_t region_;
  sim::ServerPool pool_;
  FlatHashMap<UeId, Teid> sessions_;
  std::uint32_t next_teid_ = 0x1000;
};

// ---------------------------------------------------------------------------
// CPF: the control-plane function (AMF/SMF analog).
// ---------------------------------------------------------------------------
class Cpf {
 public:
  Cpf(System& system, CpfId id, std::uint32_t region);

  void deliver(Msg msg);

  void crash();
  void restore();
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] CpfId id() const { return id_; }
  [[nodiscard]] std::uint32_t region() const { return region_; }
  /// Crash incarnation (see Msg::sender_epoch).
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Test/bench hook: install state directly (pre-attached UE population).
  void preinstall(std::shared_ptr<const UeState> state, bool as_primary);

  [[nodiscard]] bool has_up_to_date(UeId ue) const;
  [[nodiscard]] const UeState* peek_state(UeId ue) const;
  /// Diagnostics: worst queueing delay seen by each service pool.
  [[nodiscard]] SimTime max_request_backlog() const {
    return request_pool_.max_backlog();
  }
  [[nodiscard]] SimTime max_sync_backlog() const {
    return sync_pool_.max_backlog();
  }
  /// Instantaneous pool occupancy (System::sample_occupancy).
  [[nodiscard]] sim::ServerPool::Occupancy request_occupancy() const {
    return request_pool_.occupancy();
  }
  [[nodiscard]] sim::ServerPool::Occupancy sync_occupancy() const {
    return sync_pool_.occupancy();
  }
  /// Exact high-watermark of the request queue (overload reporting).
  [[nodiscard]] std::size_t request_peak_depth() const {
    return request_pool_.peak_depth();
  }
  /// Cumulative request-pool service demand (saturation-knee calibration).
  [[nodiscard]] SimTime request_busy_time() const {
    return request_pool_.busy_time();
  }
  /// Per-class admission rejections (windowed shed telemetry).
  [[nodiscard]] std::uint64_t request_drops(sim::JobClass cls) const {
    return request_pool_.drops(cls);
  }
  [[nodiscard]] int request_cores() const { return request_pool_.cores(); }

 private:
  struct Entry {
    std::shared_ptr<const UeState> state;
    bool up_to_date = true;
    /// §4.2.4(1a-ii): once marked outdated, only a state update carrying at
    /// least this logical clock makes the replica current again.
    LogicalClock::Value required_lclock = 0;
  };

  /// Per-UE progress of the procedure this CPF is currently executing.
  struct ProcCtx {
    ProcedureType type = ProcedureType::kAttach;
    std::uint64_t proc_seq = 0;
    std::uint32_t source_region = 0;  // handover: where the UE came from
    std::uint32_t target_region = 0;
    bool relocating = false;   // 4G relocation: session being re-created
    CpfId source_cpf;          // relocation: who to acknowledge
    LogicalClock::Value last_lclock = 0;  // clock of latest message seen
  };

  void handle(Msg msg);  // runs after the request-core service time
  void handle_ue_message(Msg& msg);
  void handle_attach_flow(Msg& msg);
  void handle_service_flow(Msg& msg);
  void handle_handover_source(Msg& msg);
  void handle_handover_target(Msg& msg);
  void handle_handover_notify(Msg& msg);
  void handle_tau(Msg& msg);
  void handle_detach_flow(Msg& msg);
  void handle_downlink_notification(Msg& msg);
  void handle_upf_response(Msg& msg);
  void handle_replication(Msg& msg);

  void complete_procedure(Msg& msg);
  void park_pending_fetch(const Msg& original);
  void send_checkpoint(UeId ue);
  [[nodiscard]] bool context_matches(const Msg& request) const;
  UeState& mutable_state(UeId ue);
  void reply_to_ue(const Msg& request, MsgKind kind);
  void ask_reattach(const Msg& request);
  void send_to_upf(const Msg& request, MsgKind kind);

  System* system_;
  CpfId id_;
  std::uint32_t region_;
  bool alive_ = true;
  std::uint32_t epoch_ = 0;
  sim::ServerPool request_pool_;
  sim::ServerPool sync_pool_;
  FlatHashMap<UeId, Entry> store_;
  FlatHashMap<UeId, ProcCtx> procs_;
  /// Handover requests parked while fetching the UE state (§4.3 slow path).
  FlatHashMap<UeId, Msg> pending_handover_;
};

// ---------------------------------------------------------------------------
// CTA: control traffic aggregator (§4.2.3) — front-end load balancer,
// logical-clock message log, ACK tracking, failure recovery driver.
// ---------------------------------------------------------------------------
class Cta {
 public:
  Cta(System& system, CtaId id, std::uint32_t region);

  /// From the UE/BS side.
  void deliver_uplink(Msg msg);
  /// From CPFs: responses toward the UE, checkpoint ACKs.
  void deliver_downlink(Msg msg);

  void on_cpf_failure(CpfId cpf);
  /// §4.1: the CTA performs CPF failure detection. Arms a periodic
  /// heartbeat probe of every CPF this CTA can route to; `misses`
  /// consecutive unanswered probes declare the CPF failed and drive
  /// recovery — no oracle notification needed (use System::crash_cpf_silently
  /// with this).
  void start_failure_detector(SimTime probe_interval, int misses = 3);
  void crash();
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] std::uint32_t region() const { return region_; }

  /// Primary CPF this CTA routes the UE to (hash + failover overrides).
  [[nodiscard]] CpfId route(UeId ue) const;
  /// Level-2 backup set for a UE homed in this CTA's region (§4.3).
  [[nodiscard]] std::vector<CpfId> backups(UeId ue) const;

  [[nodiscard]] std::size_t log_bytes() const { return log_bytes_; }
  [[nodiscard]] std::size_t log_messages() const { return log_messages_; }
  /// Chaos audit (DESIGN.md §12): appends a description of every violated
  /// log invariant — retained entries below first_seq_logged or beyond
  /// last_seq_logged, empty or fully-ACKed-but-unpruned procedure logs,
  /// and byte/message accounting that disagrees with a recount.
  void audit_log_invariants(std::vector<std::string>& out) const;
  [[nodiscard]] sim::ServerPool::Occupancy pool_occupancy() const {
    return pool_.occupancy();
  }
  /// Exact high-watermark of the consumer pool (overload reporting).
  [[nodiscard]] std::size_t pool_peak_depth() const {
    return pool_.peak_depth();
  }
  /// Cumulative service demand placed on this CTA (saturation-knee
  /// calibration: busy seconds per completed procedure bound the
  /// sustainable arrival rate).
  [[nodiscard]] SimTime pool_busy_time() const { return pool_.busy_time(); }
  [[nodiscard]] std::uint64_t pool_jobs_served() const {
    return pool_.jobs_served();
  }
  /// Per-class admission rejections (windowed shed telemetry).
  [[nodiscard]] std::uint64_t pool_drops(sim::JobClass cls) const {
    return pool_.drops(cls);
  }
  [[nodiscard]] int pool_cores() const { return pool_.cores(); }

 private:
  struct LogEntry {
    Msg msg;
    std::size_t bytes = 0;
  };
  struct ProcedureLog {
    std::vector<LogEntry> entries;
    LogicalClock::Value end_lclock = 0;  // set by the checkpoint broadcast
    std::unordered_set<std::uint32_t> acked_by;  // replica CPF ids
    SimTime first_logged;
  };
  struct UeRecord {
    std::map<std::uint64_t, ProcedureLog> procedures;  // by proc_seq
    /// Highest procedure each replica has ACKed a checkpoint for (a
    /// checkpoint is a full-state snapshot, so ACKing k vouches for
    /// everything <= k). Entries are erased when the replica crashes: its
    /// volatile state — and the vouching — died with it.
    FlatHashMap<std::uint32_t, std::uint64_t> acked_through;
    std::uint64_t first_seq_logged = 0;
    std::uint64_t last_seq_logged = 0;
    std::optional<Msg> pending_request;  // in-flight, awaiting CPF response
    std::optional<CpfId> override_route; // failover target
  };

  void forward_uplink(Msg msg);  // after CTA service time
  void handle_ack(const Msg& msg);
  void arm_scan();               // schedule the next §4.2.4 timeout scan
  void scan_log();
  void recover_ue(UeId ue, UeRecord& rec, CpfId failed);
  void account_log(std::ptrdiff_t delta_bytes, std::ptrdiff_t delta_msgs);
  void prune_procedure(UeRecord& rec, std::uint64_t proc_seq);
  void notify_outdated(UeId ue, const ProcedureLog& plog,
                       std::uint64_t proc_seq);

  System* system_;
  CtaId id_;
  std::uint32_t region_;
  bool alive_ = true;
  sim::ServerPool pool_;
  LogicalClock lclock_;
  geo::ConsistentHashRing<CpfId> level1_ring_;
  geo::ConsistentHashRing<CpfId> level2_ring_;  // excludes level-1 members
  FlatHashMap<UeId, UeRecord> ues_;
  std::size_t log_bytes_ = 0;
  std::size_t log_messages_ = 0;
  bool scan_armed_ = false;
  // Heartbeat failure detector state.
  SimTime probe_interval_;
  int probe_miss_limit_ = 3;
  FlatHashMap<std::uint32_t, int> missed_probes_;
  std::unordered_set<std::uint32_t> declared_failed_;
  void probe_round();
};

// ---------------------------------------------------------------------------
// Frontend: trace-driven UE + BS emulator (the paper's DPDK generator).
// ---------------------------------------------------------------------------
class Frontend {
 public:
  explicit Frontend(System& system);

  /// Kick off a control procedure for a UE. For handovers, `target_region`
  /// names the destination level-1 region (== current region for
  /// kIntraHandover).
  void start_procedure(UeId ue, ProcedureType type,
                       std::uint32_t target_region = 0);

  /// Create a UE that is already attached with state installed at its
  /// primary and backups (bench populations skip millions of attaches).
  void preattach(UeId ue, std::uint32_t region);
  /// Sharded building blocks of preattach(): the home shard installs the
  /// UE context, while each replica's *owning* shard runs the
  /// Cpf::preinstall calls (ShardedSystem::preattach drives both).
  void preattach_context(UeId ue, std::uint32_t region);
  [[nodiscard]] static std::shared_ptr<UeState> make_preattached_state(
      UeId ue, std::uint32_t region);

  /// Idle-mode mobility: the UE silently moves to another region; its next
  /// procedure (typically a kTau) runs through the new region's CTA.
  void idle_move(UeId ue, std::uint32_t new_region);

  void deliver(Msg msg);  // responses from the core (via CTA)
  void on_cta_failure(std::uint32_t region);

  [[nodiscard]] std::uint64_t completed(UeId ue) const;
  [[nodiscard]] bool is_attached(UeId ue) const;
  [[nodiscard]] std::uint32_t region_of(UeId ue) const;
  /// True while a control procedure is outstanding for the UE — a UE
  /// still in flight at the end of a chaos run counts as "lost".
  [[nodiscard]] bool in_flight(UeId ue) const;

  /// Data-plane outage accounting for the application studies (§6.6):
  /// [start, end) intervals during which the UE had no usable data path.
  struct Outage {
    SimTime start;
    SimTime end;
  };
  [[nodiscard]] const std::vector<Outage>& outages(UeId ue) const;

 private:
  struct UeCtx {
    std::uint32_t region = 0;
    std::uint32_t prev_region = 0;  // before the last move (replica lookup)
    bool paging_response = false;   // current procedure answers a page
    bool attached = false;
    std::uint64_t completed_procs = 0;
    /// proc_seq of the last procedure this UE saw complete: the RYW ground
    /// truth the core's served_proc is checked against.
    std::uint64_t last_completed_seq = 0;
    std::uint64_t next_proc_seq = 1;
    // In-flight procedure, if any.
    bool in_flight = false;
    ProcedureType proc_type = ProcedureType::kAttach;
    ProcedureType reported_type = ProcedureType::kAttach;  // original type
    std::uint64_t proc_seq = 0;
    MsgKind awaiting = MsgKind::kAttachAccept;
    SimTime start_time;
    bool under_failure = false;
    std::uint32_t ho_target = 0;
    // NAS retransmission (DESIGN.md §13): the last uplink sent and how
    // often it has been re-sent. A pending retx timer is stale unless
    // (proc_seq, last_uplink, retx_attempt) all still match.
    MsgKind last_uplink = MsgKind::kAttachRequest;
    std::uint32_t retx_attempt = 0;
    // Data-path outage tracking.
    SimTime outage_start;
    bool in_outage = false;
    std::vector<Outage> outages;
  };

  void send_uplink(UeCtx& ctx, UeId ue, MsgKind kind);
  /// Arm the NAS retransmission timer for the uplink just sent (no-op when
  /// proto().nas_retx_timeout is zero or the uplink expects no response).
  void arm_retx(UeCtx& ctx, UeId ue, MsgKind kind);
  void complete(UeCtx& ctx, UeId ue, const Msg& final_msg);
  void begin_reattach(UeCtx& ctx, UeId ue);
  void begin_outage(UeCtx& ctx);
  void end_outage(UeCtx& ctx);
  void check_ryw(UeCtx& ctx, const Msg& msg);

  System* system_;
  FlatHashMap<UeId, UeCtx> ues_;
  std::vector<Outage> no_outages_;  // empty result for unknown UEs
  /// Cached "frontend.completions{proc=..}" registry handles, by type.
  std::array<obs::Counter*, Metrics::kProcTypes> completion_counters_{};
};

// ---------------------------------------------------------------------------
// System: owns every node, routes messages with link latencies.
// ---------------------------------------------------------------------------
class System {
 public:
  System(sim::EventLoop& loop, CorePolicy policy, TopologyConfig topo,
         ProtocolConfig proto, const CostModel& costs, Metrics& metrics,
         ShardSpec shard = {});

  // Accessors used by the actors.
  [[nodiscard]] sim::EventLoop& loop() { return *loop_; }
  [[nodiscard]] const CorePolicy& policy() const { return policy_; }
  [[nodiscard]] const TopologyConfig& topo() const { return topo_; }
  [[nodiscard]] const ProtocolConfig& proto() const { return proto_; }
  [[nodiscard]] const CostModel& costs() const { return *costs_; }
  [[nodiscard]] Metrics& metrics() { return *metrics_; }
  /// Recycler for in-flight Msg slots: every transport hop and service-pool
  /// submission parks its message here so the scheduled event captures a
  /// 16-byte handle instead of a full Msg (see core/msg_pool.hpp).
  [[nodiscard]] MsgPool& msg_pool() { return msg_pool_; }

  /// Procedure tracing is off (and costs one null test per site) until a
  /// tracer is attached. The tracer must outlive the attachment.
  void attach_tracer(obs::ProcTracer& tracer) { tracer_ = &tracer; }
  void detach_tracer() { tracer_ = nullptr; }
  [[nodiscard]] obs::ProcTracer* tracer() { return tracer_; }

  /// Flight recording is off (one null test per site) until a recorder is
  /// attached; one recorder per System (per shard). The recorder must
  /// outlive the attachment.
  void attach_flight_recorder(obs::FlightRecorder& flight) {
    flight_ = &flight;
  }
  void detach_flight_recorder() { flight_ = nullptr; }
  [[nodiscard]] obs::FlightRecorder* flight() { return flight_; }

  /// Chaos-harness attachment points (DESIGN.md §12): the online
  /// invariant checker observes UE-visible milestones; the fault knobs
  /// plant deliberate bugs for the checker's teeth tests. Both are inert
  /// until used; the observer must outlive the attachment.
  void attach_invariant_observer(InvariantObserver& obs) {
    invariant_observer_ = &obs;
  }
  void detach_invariant_observer() { invariant_observer_ = nullptr; }
  [[nodiscard]] InvariantObserver* invariant_observer() {
    return invariant_observer_;
  }
  [[nodiscard]] FaultInjection& faults() { return faults_; }

  [[nodiscard]] Frontend& frontend() { return *frontend_; }
  [[nodiscard]] Cta& cta(std::uint32_t region) { return *ctas_[region]; }
  [[nodiscard]] Cpf& cpf(CpfId id) { return *cpfs_[id.value()]; }
  [[nodiscard]] Upf& upf(std::uint32_t region) { return *upfs_[region]; }
  [[nodiscard]] bool cta_alive(std::uint32_t region) const {
    return ctas_[region]->alive();
  }
  [[nodiscard]] bool cpf_alive(CpfId id) const {
    return cpfs_[id.value()]->alive();
  }

  // -- sharding (see core/shard_link.hpp; identity in single-shard mode) ----
  /// Owning shard for a level-1 region: contiguous blocks, so intra-block
  /// links (the short ones) stay shard-local and the lookahead is bounded
  /// by the cheaper *inter*-block latencies.
  [[nodiscard]] std::uint32_t shard_of_region(std::uint32_t region) const {
    return region / regions_per_shard_;
  }
  /// True when this System instance executes the region's node logic
  /// (always true without a sink — the legacy single-threaded mode).
  [[nodiscard]] bool owns_region(std::uint32_t region) const {
    return shard_.sink == nullptr ||
           shard_of_region(region) == shard_.shard;
  }
  [[nodiscard]] const ShardSpec& shard() const { return shard_; }
  /// Re-entry point for cross-shard messages: schedules the envelope's
  /// message onto this shard's loop at the precomputed arrival time.
  void deliver_envelope(SimTime arrival, ShardEnvelope envelope);

  /// Stable key a UE hashes to on every ring (M-TMSI/S1AP id, §4.3 fn15).
  [[nodiscard]] static std::uint64_t ue_key(UeId ue) {
    return mix64(ue.value() * 0x9e3779b97f4a7c15ULL + 1);
  }

  /// Primary CPF for a UE homed in `region` (ignores liveness/overrides;
  /// the CTA applies those).
  [[nodiscard]] CpfId primary_cpf_for(UeId ue, std::uint32_t region) const;
  /// Level-2 backup set for a UE homed in `region`.
  [[nodiscard]] std::vector<CpfId> backups_for(UeId ue,
                                               std::uint32_t region) const;

  // -- message transport (applies link latency, drops to dead nodes) -------
  void ue_to_cta(std::uint32_t region, Msg msg);
  void cta_to_ue(Msg msg);
  void cta_to_cpf(std::uint32_t cta_region, CpfId cpf, Msg msg);
  void cpf_to_cta(CpfId from, std::uint32_t cta_region, Msg msg);
  void cpf_to_cpf(CpfId from, CpfId to, Msg msg);
  void cpf_to_upf(CpfId from, std::uint32_t upf_region, Msg msg);
  void upf_to_cpf(std::uint32_t upf_region, CpfId cpf, Msg msg);

  /// Inject downlink data for a UE at its serving region's UPF (drives the
  /// paging path; Fig. 2 scenario).
  void trigger_downlink(UeId ue);

  void upf_to_cta(std::uint32_t upf_region, Msg msg);

  // -- failure injection ----------------------------------------------------
  void crash_cpf(CpfId id);
  /// Crash without notifying anyone: detection is left to the CTAs'
  /// heartbeat monitors (Cta::start_failure_detector).
  void crash_cpf_silently(CpfId id);
  void restore_cpf(CpfId id);
  void crash_cta(std::uint32_t region);

  /// Peak log usage across CTAs, folded into metrics.
  void sample_log_sizes();

  /// Push per-CTA log occupancy and per-CPF pool depth/backlog samples
  /// into the metrics registry time series ("cta.log_bytes{region=..}",
  /// "cpf.request_depth{cpf=..}", ...). Call from a bounded sampler
  /// (obs::PeriodicSampler); nothing is scheduled here.
  void sample_occupancy();

  /// Windowed telemetry (DESIGN.md §15): schedules a sample_telemetry()
  /// tick every `window` of sim-time up to `until` on this System's loop.
  /// Off by default; each tick records per-window counter deltas (sheds,
  /// drops, retransmissions, events, cross-shard posts) and point samples
  /// (queue depth, busy fraction) into the registry's windowed series,
  /// labeled by shard/region so sharded merges stay deterministic.
  void arm_telemetry(SimTime window, SimTime until);
  [[nodiscard]] bool telemetry_armed() const {
    return telemetry_window_.ns() > 0;
  }
  /// One telemetry tick (called by the armed sampler; tests may call it
  /// directly). Skips regions this shard does not own.
  void sample_telemetry();

 private:
  /// Record a propagation hop for `msg` departing now over a link of the
  /// given latency (no-op unless a tracer is attached).
  void trace_prop(const Msg& msg, const char* link, std::uint32_t node_id,
                  SimTime latency) {
    if (tracer_) {
      tracer_->hop(msg, obs::HopClass::kPropagation, link, node_id,
                   loop_->now(), loop_->now() + latency);
    }
  }

  /// Hand a message bound for a non-owned region to the cross-shard sink
  /// (arrival = now + latency, already past the current window's end).
  void post_remote(ShardEnvelope::Dest dest, std::uint32_t dest_id,
                   std::uint32_t dest_region, SimTime latency, Msg msg) {
    ++metrics_->cross_shard_posts;
    shard_.sink->post(shard_of_region(dest_region), loop_->now() + latency,
                      ShardEnvelope{dest, dest_id, std::move(msg)});
  }

  sim::EventLoop* loop_;
  CorePolicy policy_;
  TopologyConfig topo_;
  ProtocolConfig proto_;
  const CostModel* costs_;
  Metrics* metrics_;
  ShardSpec shard_;
  std::uint32_t regions_per_shard_ = 1;
  obs::ProcTracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  InvariantObserver* invariant_observer_ = nullptr;
  FaultInjection faults_;
  MsgPool msg_pool_;

  // Windowed-telemetry state (arm_telemetry): previous-tick counter
  // snapshots so each tick records per-window deltas. Sim-time only.
  SimTime telemetry_window_;  ///< zero = off
  struct RegionTelemSnap {
    std::int64_t cta_busy_ns = 0;
    std::int64_t cpf_busy_ns = 0;
    std::array<std::uint64_t, sim::kJobClasses> drops{};
  };
  struct TelemSnap {
    std::uint64_t executed = 0;
    std::uint64_t completed = 0;
    std::uint64_t cross_posts = 0;
    std::uint64_t attach_sheds = 0;
    std::uint64_t overload_drops = 0;
    std::uint64_t nas_retx = 0;
    std::uint64_t retx_exhausted = 0;
    std::vector<RegionTelemSnap> regions;
  };
  TelemSnap telem_prev_;

  std::vector<std::unique_ptr<Cta>> ctas_;
  std::vector<std::unique_ptr<Cpf>> cpfs_;
  std::vector<std::unique_ptr<Upf>> upfs_;
  std::unique_ptr<Frontend> frontend_;
};

}  // namespace neutrino::core
