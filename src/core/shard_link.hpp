// Cross-shard transport contract between core::System and the sharded
// runtime (sim/parallel/runtime.hpp).
//
// Under sharding, every shard constructs the *full* System object graph
// (a few hundred nodes — negligible), but only executes the logic of the
// nodes in the regions it owns; the rest are shadows that answer cheap
// liveness/epoch queries and are kept consistent by mirroring failure
// injections on every shard (ShardedSystem::schedule_crash). When a
// transport method targets a region another shard owns, it computes the
// link latency as usual and hands the message to the CrossShardSink as a
// ShardEnvelope instead of scheduling locally; the runtime ferries it
// through an SPSC channel and the owning shard's System re-schedules it
// at the precomputed arrival time (System::deliver_envelope).
//
// Messages cross by value (the Msg, including its shared_ptr snapshot
// fields) — MsgPool handles never leave their shard. The shared_ptr
// control blocks use atomic refcounts and UeState snapshots are immutable
// after publication (Cpf::mutable_state clones before writing), so the
// barrier's happens-before edge makes this race-free.
#pragma once

#include <cstdint>

#include "common/clock.hpp"
#include "core/msg.hpp"

namespace neutrino::core {

struct ShardEnvelope {
  /// Which delivery path the message re-enters on the owning shard; the
  /// alive-gating of the local transports is replayed at delivery.
  enum class Dest : std::uint8_t {
    kCtaUplink,    // → Cta::deliver_uplink   (dest_id = region)
    kCtaDownlink,  // → Cta::deliver_downlink (dest_id = region)
    kCpf,          // → Cpf::deliver          (dest_id = CpfId value)
    kUpf,          // → Upf::deliver          (dest_id = region)
  };
  Dest dest = Dest::kCpf;
  std::uint32_t dest_id = 0;
  Msg msg;
};

/// Implemented by ShardedSystem; posts into the runtime's SPSC channels.
class CrossShardSink {
 public:
  virtual ~CrossShardSink() = default;
  /// Takes the envelope by rvalue: the transports always hand over a
  /// freshly built prvalue, and the hot path (one post per cross-shard
  /// message in the scale storm) shouldn't pay an extra Msg move for a
  /// by-value parameter.
  virtual void post(std::uint32_t dest_shard, SimTime arrival,
                    ShardEnvelope&& envelope) = 0;
};

/// Identifies which slice of the topology a System instance owns. The
/// default (single shard, no sink) is the legacy single-threaded mode:
/// every ownership test passes and no transport ever posts an envelope.
struct ShardSpec {
  std::uint32_t shard = 0;
  std::uint32_t n_shards = 1;
  CrossShardSink* sink = nullptr;
};

}  // namespace neutrino::core
