// Control Traffic Aggregator: logical-clock message log, ACK tracking,
// out-of-date marking and the two-level failure recovery driver (§4.2).
#include "core/system.hpp"

namespace neutrino::core {

Cta::Cta(System& system, CtaId id, std::uint32_t region)
    : system_(&system),
      id_(id),
      region_(region),
      pool_(system.loop(), system.topo().cta_cores),
      level1_ring_(system.topo().ring_vnodes),
      level2_ring_(system.topo().ring_vnodes) {
  if (const std::size_t cap = system.proto().cta_queue_capacity; cap > 0) {
    pool_.set_capacity(
        cap, static_cast<std::size_t>(
                 static_cast<double>(cap) *
                 system.proto().attach_admission_fraction));
  }
  const auto& topo = system.topo();
  // Level-1 ring: the CPFs of this region (primary selection).
  for (int i = 0; i < topo.cpfs_per_region; ++i) {
    const CpfId cpf = topo.cpf_at(region, i);
    level1_ring_.add(cpf, 0x5a5a0000ULL + cpf.value());
  }
  // Level-2 ring: CPFs of the *other* level-1 regions in the same level-2
  // region — backups are placed outside the primary's region (§4.3:
  // "N consecutive replicas on a level-2 ring (not included in the level-1
  // ring)"), so a region-wide failure mode cannot take out all copies.
  const std::uint32_t my_l2 = topo.l2_of(region);
  for (std::uint32_t r = 0;
       r < static_cast<std::uint32_t>(topo.total_regions()); ++r) {
    if (r == region || topo.l2_of(r) != my_l2) continue;
    for (int i = 0; i < topo.cpfs_per_region; ++i) {
      const CpfId cpf = topo.cpf_at(r, i);
      level2_ring_.add(cpf, 0x5a5a0000ULL + cpf.value());
    }
  }
}

CpfId Cta::route(UeId ue) const {
  if (const auto it = ues_.find(ue); it != ues_.end()) {
    if (it->second.override_route &&
        system_->cpf_alive(*it->second.override_route)) {
      return *it->second.override_route;
    }
  }
  const CpfId primary = level1_ring_.lookup(System::ue_key(ue));
  if (system_->cpf_alive(primary)) return primary;
  // Primary down: "an up-to-date CPF replica becomes primary" (§4.1) — the
  // replica set is where the state lives, so prefer it over ring walking.
  for (const CpfId b : backups(ue)) {
    if (system_->cpf_alive(b)) return b;
  }
  // No replicas (EPC) or all dead: consistent hashing walks to the next
  // live CPF of the level-1 ring (which will demand a Re-Attach).
  for (const CpfId candidate :
       level1_ring_.successors(System::ue_key(ue),
                               level1_ring_.node_count())) {
    if (system_->cpf_alive(candidate)) return candidate;
  }
  return primary;  // all dead: the send will be dropped
}

std::vector<CpfId> Cta::backups(UeId ue) const {
  const auto n = static_cast<std::size_t>(system_->policy().num_backups);
  if (n == 0) return {};
  if (!level2_ring_.empty()) {
    return level2_ring_.successors(System::ue_key(ue), n);
  }
  // Single-region deployment (the paper's 5-instance testbed): no level-2
  // ring exists, so backups are the primary's ring successors in-region.
  auto chain = level1_ring_.successors(System::ue_key(ue), n + 1);
  chain.erase(chain.begin());  // drop the primary itself
  return chain;
}

void Cta::deliver_uplink(Msg msg) {
  if (!alive_) return;
  SimTime cost = system_->proto().cta_forward_cost;
  if (system_->policy().cta_message_logging &&
      is_ue_control_message(msg.kind)) {
    cost += system_->proto().cta_log_cost;
  }
  // Bounded ingress (DESIGN.md §13): admission happens before the log and
  // before pending-request tracking, so to the protocol a shed message
  // never arrived — the UE's NAS retransmission re-drives it with backoff.
  const sim::JobClass cls = job_class_of(msg);
  if (!pool_.admits(cls)) {
    pool_.count_drop(cls);
    if (obs::FlightRecorder* fl = system_->flight()) {
      fl->record(system_->loop().now(),
                 cls == sim::JobClass::kAttach
                     ? obs::FlightRecorder::Kind::kAttachShed
                     : obs::FlightRecorder::Kind::kOverloadDrop,
                 static_cast<std::int64_t>(msg.ue.value()), region_, "cta");
    }
    if (cls == sim::JobClass::kAttach) {
      ++system_->metrics().attach_sheds;
    } else {
      ++system_->metrics().overload_drops;
    }
    return;
  }
  if (obs::ProcTracer* tr = system_->tracer()) {
    const SimTime now = system_->loop().now();
    const SimTime queued = pool_.backlog();
    tr->hop(msg, obs::HopClass::kQueueing, "cta", region_, now, now + queued);
    tr->hop(msg, obs::HopClass::kService, "cta", region_, now + queued,
            now + queued + cost);
  }
  pool_.submit(cost,
               [this, h = system_->msg_pool().acquire(std::move(msg))]() mutable {
                 forward_uplink(h.take());
               });
}

void Cta::forward_uplink(Msg msg) {
  // §4.2.3(1): associate a logical clock with every control message.
  msg.lclock = lclock_.tick();

  const bool logging = system_->policy().cta_message_logging &&
                       is_ue_control_message(msg.kind);
  // Fire-and-forget procedure-final messages (AttachComplete, ICSResponse)
  // produce no response; tracking them as pending would leak records.
  const bool expects_response = msg.kind != MsgKind::kAttachComplete &&
                                msg.kind != MsgKind::kIcsResponse;
  if (is_ue_control_message(msg.kind) && (logging || expects_response)) {
    UeRecord& rec = ues_[msg.ue];

    if (logging) {
      // A sequence gap means procedures ran through another CTA (control
      // handover away and back): everything this CTA remembers about the
      // UE — ACK watermarks, log, failover route — is stale. Start over.
      if (rec.last_seq_logged != 0 &&
          msg.proc_seq > rec.last_seq_logged + 1) {
        for (auto it = rec.procedures.begin();
             it != rec.procedures.end();) {
          const std::uint64_t seq = it->first;
          ++it;
          prune_procedure(rec, seq);
        }
        rec.acked_through.clear();
        rec.override_route.reset();
        rec.first_seq_logged = 0;
        rec.last_seq_logged = 0;
      }
      if (rec.first_seq_logged == 0) rec.first_seq_logged = msg.proc_seq;
      rec.last_seq_logged = std::max(rec.last_seq_logged, msg.proc_seq);
      ProcedureLog& plog = rec.procedures[msg.proc_seq];
      if (plog.entries.empty()) {
        // One procedure logs a handful of messages (attach: 4); reserve
        // once instead of growing the vector message-by-message.
        plog.entries.reserve(8);
        plog.first_logged = system_->loop().now();
        arm_scan();
        // §4.2.4(4): a second procedure starting while the previous one
        // still has missing ACKs triggers an immediate outdated notify, so
        // a lagging replica cannot be mistaken for current by the new
        // procedure (e.g. a FastHandover target).
        if (const auto prev = rec.procedures.find(msg.proc_seq - 1);
            prev != rec.procedures.end() && !prev->second.entries.empty() &&
            system_->loop().now() - prev->second.first_logged >
                system_->proto().rule4_grace) {
          notify_outdated(msg.ue, prev->second, prev->first);
        }
      }
      const std::size_t bytes = system_->costs().encoded_size(
          system_->policy().wire_format, msg.kind);
      plog.entries.push_back({msg, bytes});
      account_log(static_cast<std::ptrdiff_t>(bytes), 1);
      ++system_->metrics().log_appends;
    }

    if (expects_response) rec.pending_request = msg;
  }

  system_->cta_to_cpf(region_, route(msg.ue), std::move(msg));
}

void Cta::deliver_downlink(Msg msg) {
  if (!alive_) return;
  if (obs::ProcTracer* tr = system_->tracer()) {
    const SimTime now = system_->loop().now();
    const SimTime queued = pool_.backlog();
    const SimTime cost = system_->proto().cta_forward_cost;
    tr->hop(msg, obs::HopClass::kQueueing, "cta", region_, now, now + queued);
    tr->hop(msg, obs::HopClass::kService, "cta", region_, now + queued,
            now + queued + cost);
  }
  pool_.submit(system_->proto().cta_forward_cost,
               [this, h = system_->msg_pool().acquire(std::move(msg))]() mutable {
    Msg msg = h.take();
    if (msg.kind == MsgKind::kCheckpointAck) {
      handle_ack(msg);
      return;
    }
    // Response toward the UE: the in-flight request is answered.
    if (const auto it = ues_.find(msg.ue); it != ues_.end()) {
      it->second.pending_request.reset();
      if (msg.kind == MsgKind::kHandoverCommand &&
          msg.target_region != region_) {
        // Control handover away: from here on the UE's messages flow
        // through the target region's CTA, which will also receive the
        // checkpoint ACKs. This CTA's log and watermarks for the UE are
        // ownerless — drop them (the target CTA rebuilds its own record
        // from the HandoverNotify onward).
        UeRecord& rec = it->second;
        while (!rec.procedures.empty()) {
          prune_procedure(rec, rec.procedures.begin()->first);
        }
        ues_.erase(it);
      } else if (it->second.procedures.empty() &&
                 !it->second.override_route) {
        ues_.erase(it);  // nothing left to remember for this UE
      }
    }
    system_->cta_to_ue(std::move(msg));
  });
}

void Cta::handle_ack(const Msg& msg) {
  ++system_->metrics().checkpoint_acks;
  // Reject ACKs from a previous incarnation of the replica: the state they
  // vouch for died in the crash.
  if (msg.sender_epoch != system_->cpf(msg.src_cpf).epoch()) return;
  const auto rec_it = ues_.find(msg.ue);
  if (rec_it == ues_.end()) return;  // record already fully pruned
  UeRecord& rec = rec_it->second;
  auto& through = rec.acked_through[msg.src_cpf.value()];
  through = std::max(through, msg.proc_seq);

  const auto it = rec.procedures.find(msg.proc_seq);
  if (it == rec.procedures.end()) {
    // Already pruned (late duplicate ACK) or logging disabled.
    return;
  }
  ProcedureLog& plog = it->second;
  plog.end_lclock = msg.lclock;  // §4.2.3(2): end-of-procedure marker
  plog.acked_by.insert(msg.src_cpf.value());
  if (plog.acked_by.size() >=
      static_cast<std::size_t>(system_->policy().num_backups)) {
    // §4.2.3: all backups are current; the log entries are garbage.
    prune_procedure(rec, msg.proc_seq);
    ++system_->metrics().log_prunes;
    if (rec.procedures.empty() && !rec.pending_request &&
        !rec.override_route) {
      ues_.erase(msg.ue);
    }
  }
}

void Cta::prune_procedure(UeRecord& rec, std::uint64_t proc_seq) {
  const auto it = rec.procedures.find(proc_seq);
  if (it == rec.procedures.end()) return;
  if (FaultInjection& faults = system_->faults();
      faults.cta_unaccounted_prunes > 0) {
    // Planted bug (teeth test): drop the entries without adjusting the
    // byte/message accounting — the audit's recount must catch it.
    --faults.cta_unaccounted_prunes;
    rec.procedures.erase(it);
    return;
  }
  std::size_t bytes = 0;
  for (const auto& entry : it->second.entries) bytes += entry.bytes;
  account_log(-static_cast<std::ptrdiff_t>(bytes),
              -static_cast<std::ptrdiff_t>(it->second.entries.size()));
  rec.procedures.erase(it);
}

void Cta::account_log(std::ptrdiff_t delta_bytes, std::ptrdiff_t delta_msgs) {
  log_bytes_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(log_bytes_) + delta_bytes);
  log_messages_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(log_messages_) + delta_msgs);
}

void Cta::arm_scan() {
  if (scan_armed_ || !alive_) return;
  scan_armed_ = true;
  system_->loop().schedule_after(system_->proto().log_scan_interval, [this] {
    scan_armed_ = false;
    if (alive_) scan_log();
  });
}

void Cta::scan_log() {
  // §4.2.4(1): procedures whose ACKs are overdue — tell the lagging
  // replicas their copy is outdated, then drop the messages.
  const SimTime now = system_->loop().now();
  const SimTime timeout = system_->proto().ack_timeout;
  for (auto ue_it = ues_.begin(); ue_it != ues_.end();) {
    UeRecord& rec = ue_it->second;
    for (auto proc_it = rec.procedures.begin();
         proc_it != rec.procedures.end();) {
      ProcedureLog& plog = proc_it->second;
      if (now - plog.first_logged > timeout) {
        notify_outdated(ue_it->first, plog, proc_it->first);
        std::size_t bytes = 0;
        for (const auto& e : plog.entries) bytes += e.bytes;
        account_log(-static_cast<std::ptrdiff_t>(bytes),
                    -static_cast<std::ptrdiff_t>(plog.entries.size()));
        proc_it = rec.procedures.erase(proc_it);
      } else {
        ++proc_it;
      }
    }
    if (rec.procedures.empty() && !rec.pending_request &&
        !rec.override_route) {
      ue_it = ues_.erase(ue_it);
    } else {
      ++ue_it;
    }
  }
  if (log_messages_ > 0) arm_scan();
}

void Cta::notify_outdated(UeId ue, const ProcedureLog& plog,
                          std::uint64_t proc_seq) {
  // End-of-procedure clock: from the checkpoint broadcast if one was ACKed,
  // otherwise the last message logged so far.
  const LogicalClock::Value marker =
      plog.end_lclock != 0
          ? plog.end_lclock
          : (plog.entries.empty() ? 0 : plog.entries.back().msg.lclock);
  const auto replica_set = backups(ue);
  auto uptodate = std::make_shared<std::vector<CpfId>>();
  for (const CpfId b : replica_set) {
    if (plog.acked_by.contains(b.value())) uptodate->push_back(b);
  }
  for (const CpfId b : replica_set) {
    if (plog.acked_by.contains(b.value())) continue;
    Msg notify;
    notify.kind = MsgKind::kOutdatedNotify;
    notify.ue = ue;
    notify.proc_seq = proc_seq;
    notify.lclock = marker;  // ignore older state updates (§4.2.4)
    notify.region = region_;
    notify.uptodate_cpfs = uptodate;
    ++system_->metrics().outdated_notifies;
    system_->cta_to_cpf(region_, b, std::move(notify));
  }
}

void Cta::on_cpf_failure(CpfId failed) {
  std::vector<UeId> affected;
  for (auto& [ue, rec] : ues_) {
    // The failed CPF's volatile state is gone: whatever it ACKed no longer
    // exists, so its vouchers are void.
    rec.acked_through.erase(failed.value());
    for (auto& [proc, plog] : rec.procedures) {
      plog.acked_by.erase(failed.value());
    }
    const CpfId hashed = level1_ring_.lookup(System::ue_key(ue));
    const bool routed_here =
        (rec.override_route && *rec.override_route == failed) ||
        (!rec.override_route && hashed == failed);
    if (routed_here && (rec.pending_request || !rec.procedures.empty())) {
      affected.push_back(ue);
    }
  }
  // Drive recovery for every UE this CTA was routing to the failed CPF.
  for (const UeId ue : affected) recover_ue(ue, ues_[ue], failed);
}

void Cta::recover_ue(UeId ue, UeRecord& rec, CpfId failed) {
#ifdef NEUTRINO_RYW_DEBUG
  fprintf(stderr, "[REC] t=%ld ue=%lu failed=%u nprocs=%zu pending=%d\n",
          system_->loop().now().ns(), ue.value(), failed.value(),
          rec.procedures.size(), rec.pending_request.has_value());
#else
  (void)failed;
#endif
  Metrics& metrics = system_->metrics();
  const CorePolicy& policy = system_->policy();
  // Which recovery scenario actually fired, labeled per region — recovery
  // is rare, so the registry lookup cost here is irrelevant.
  auto count_recovery = [&](const char* scenario) {
    ++metrics.registry.counter("cta.recoveries",
                               {{"region", std::to_string(region_)},
                                {"scenario", scenario}});
  };

  auto command_reattach = [&](const char* scenario) {
    // Failure scenario 3/4: no usable replica — the UE rebuilds a
    // consistent state from scratch (§4.2.5), preserving RYW by never
    // serving it stale data. `scenario` distinguishes *why* no replica was
    // usable: "reattach" (no live backup at all) vs "hole" (live backups
    // existed but a pruned/dropped log hole made every one unreplayable).
    Msg cmd;
    cmd.kind = MsgKind::kReattachCommand;
    cmd.ue = ue;
    cmd.proc_seq =
        rec.pending_request ? rec.pending_request->proc_seq : 0;
    cmd.region = region_;
    cmd.is_replay = true;  // recovery-origin: the UE was hit by the crash
    rec.pending_request.reset();
    rec.override_route.reset();
    count_recovery(scenario);
    system_->cta_to_ue(std::move(cmd));
  };

  switch (policy.recovery) {
    case RecoveryMode::kReattach:
      command_reattach("reattach");
      return;

    case RecoveryMode::kFailover: {
      // SkyCore: state was synced per message; promote a live backup and
      // resend the in-flight request.
      for (const CpfId b : backups(ue)) {
        if (!system_->cpf_alive(b)) continue;
        rec.override_route = b;
        ++metrics.failovers;
        count_recovery("failover");
        if (rec.pending_request) {
          Msg resend = *rec.pending_request;
          resend.is_replay = true;
          system_->cta_to_cpf(region_, b, std::move(resend));
        }
        return;
      }
      command_reattach("reattach");
      return;
    }

    case RecoveryMode::kReplay: {
      // Neutrino: pick the first live backup whose state can be brought
      // current from the log, replaying what it is missing (§4.2.5,
      // scenarios 1 and 2).
      bool skipped_hole = false;
      for (const CpfId b : backups(ue)) {
        if (!system_->cpf_alive(b)) continue;
        // A checkpoint ACK vouches for the full state through that
        // procedure, so the backup needs exactly the procedures after its
        // acked-through watermark. Every one of them must still be in the
        // log, completely — a hole (pruned on an ACK that later died with
        // a replica crash, or dropped by the §4.2.4(1d) timeout) makes
        // this backup unrecoverable from the log.
        const auto through_it = rec.acked_through.find(b.value());
        const std::uint64_t b_has =
            through_it != rec.acked_through.end() ? through_it->second : 0;
        const std::uint64_t replay_from =
            std::max(b_has + 1, rec.first_seq_logged);
        std::vector<const Msg*> to_replay;
        bool replayable = rec.first_seq_logged != 0;
        for (std::uint64_t p = replay_from;
             p <= rec.last_seq_logged && replayable; ++p) {
          const auto it = rec.procedures.find(p);
          if (it == rec.procedures.end() || it->second.entries.empty()) {
            replayable = false;
            break;
          }
          for (const auto& entry : it->second.entries) {
            to_replay.push_back(&entry.msg);
          }
        }
        if (!replayable) {
          skipped_hole = true;  // a live backup lost to a log hole
          continue;            // try another backup
        }
        rec.override_route = b;
#ifdef NEUTRINO_RYW_DEBUG
        fprintf(stderr, "[REC] t=%ld ue=%lu -> backup=%u replay=%zu\n",
                system_->loop().now().ns(), ue.value(), b.value(),
                to_replay.size());
#endif
        if (to_replay.empty()) {
          // Scenario 1: the backup already holds the full state — nothing
          // to replay, so nothing regenerates a response. Promote it and
          // resend the in-flight request (the per-message failover path);
          // the pending request stays pending because the resend, not a
          // replay, produces the response.
          ++metrics.failovers;
          count_recovery("failover");
          if (rec.pending_request) {
            Msg resend = *rec.pending_request;
            resend.is_replay = true;
            system_->cta_to_cpf(region_, b, std::move(resend));
          }
        } else {
          metrics.replays += to_replay.size();
          count_recovery("replay");
          for (const Msg* original : to_replay) {
            Msg replay = *original;
            replay.is_replay = true;
            system_->cta_to_cpf(region_, b, std::move(replay));
          }
          rec.pending_request.reset();  // the replay regenerates the response
        }
        return;
      }
      // Every live backup was disqualified by a pruned/dropped log hole
      // (or no backup is alive at all): fall back to Re-Attach. The
      // pending request is void either way — the Re-Attach supersedes it —
      // but it must still be pending when the command is stamped: the
      // frontend matches the command against the in-flight proc_seq and
      // discards a zero-stamped one as stale, stranding the UE.
      command_reattach(skipped_hole ? "hole" : "reattach");
      return;
    }
  }
}

void Cta::start_failure_detector(SimTime probe_interval, int misses) {
  probe_interval_ = probe_interval;
  probe_miss_limit_ = misses;
  system_->loop().schedule_after(probe_interval_, [this] { probe_round(); });
}

void Cta::probe_round() {
  if (!alive_) return;
  // Probe every CPF this CTA can route to: its level-1 pool and the
  // level-2 replica candidates. A live CPF answers instantly in the model
  // (the probe RTT is far below the interval); a dead one accumulates
  // misses until declared failed, which triggers the same recovery as an
  // operator notification would (§4.1).
  auto probe_set = level1_ring_.nodes();
  const auto& l2 = level2_ring_.nodes();
  probe_set.insert(probe_set.end(), l2.begin(), l2.end());
  for (const CpfId cpf : probe_set) {
    if (system_->cpf_alive(cpf)) {
      missed_probes_[cpf.value()] = 0;
      if (declared_failed_.erase(cpf.value()) > 0) {
        // Restarted (empty) instance: back in rotation.
      }
      continue;
    }
    if (declared_failed_.contains(cpf.value())) continue;
    if (++missed_probes_[cpf.value()] >= probe_miss_limit_) {
      declared_failed_.insert(cpf.value());
      on_cpf_failure(cpf);
    }
  }
  system_->loop().schedule_after(probe_interval_, [this] { probe_round(); });
}

void Cta::crash() {
  alive_ = false;
  // Jobs queued or in service die with the process: without this they
  // would still fire and forward/log through the dead CTA.
  pool_.reset();
  // The CTA log is volatile (§4.2.3): everything is lost.
  ues_.clear();
  log_bytes_ = 0;
  log_messages_ = 0;
}

void Cta::audit_log_invariants(std::vector<std::string>& out) const {
  const auto tag = [this](std::string what) {
    return "cta[" + std::to_string(region_) + "] " + std::move(what);
  };
  const auto backups_needed =
      static_cast<std::size_t>(system_->policy().num_backups);
  std::size_t bytes = 0;
  std::size_t messages = 0;
  for (const auto& [ue, rec] : ues_) {
    if (rec.first_seq_logged == 0 && !rec.procedures.empty()) {
      out.push_back(tag("ue " + std::to_string(ue.value()) +
                        ": log entries retained with first_seq_logged=0"));
    }
    for (const auto& [seq, plog] : rec.procedures) {
      if (rec.first_seq_logged != 0 && seq < rec.first_seq_logged) {
        // An entry below the low-water mark is an un-pruned hole: the
        // replay path starts at first_seq_logged and would never find it.
        out.push_back(tag("ue " + std::to_string(ue.value()) + ": proc " +
                          std::to_string(seq) + " below first_seq_logged " +
                          std::to_string(rec.first_seq_logged)));
      }
      if (seq > rec.last_seq_logged) {
        out.push_back(tag("ue " + std::to_string(ue.value()) + ": proc " +
                          std::to_string(seq) + " beyond last_seq_logged " +
                          std::to_string(rec.last_seq_logged)));
      }
      if (plog.entries.empty()) {
        out.push_back(tag("ue " + std::to_string(ue.value()) + ": proc " +
                          std::to_string(seq) + " retained with no entries"));
      }
      if (backups_needed > 0 && plog.acked_by.size() >= backups_needed) {
        // handle_ack prunes at the threshold, so a surviving fully-ACKed
        // procedure means a completed procedure could replay twice.
        out.push_back(tag("ue " + std::to_string(ue.value()) + ": proc " +
                          std::to_string(seq) +
                          " fully ACKed but not pruned"));
      }
      for (const auto& entry : plog.entries) {
        bytes += entry.bytes;
        ++messages;
      }
    }
  }
  if (bytes != log_bytes_ || messages != log_messages_) {
    out.push_back(tag("log accounting drift: counted " +
                      std::to_string(bytes) + "B/" +
                      std::to_string(messages) + "msgs, recorded " +
                      std::to_string(log_bytes_) + "B/" +
                      std::to_string(log_messages_) + "msgs"));
  }
}

}  // namespace neutrino::core
