// Free-list recycler for in-flight Msg objects.
//
// Every transport hop used to copy a ~136-byte Msg (two shared_ptr
// refcount bumps included) into a lambda capture, blowing past any
// small-buffer optimization and forcing a heap allocation per scheduled
// delivery. The pool hands out stable Msg* slots from 256-element blocks;
// the event captures a 16-byte Handle instead, which fits the event
// loop's inline buffer together with the destination pointer.
//
// Lifetime contract: delivery callbacks should call `take()` FIRST,
// before any branch (dead-node drops included). A Handle destroyed
// without take() consults the live-pool registry: if its pool still
// exists (a crashed node's ServerPool dropping queued jobs mid-run), the
// slot goes back on the free list — otherwise the pool died first (an
// event still pending when the loop outlives the System in bench
// scaffolding) and the slot is abandoned; the block storage itself is
// always reclaimed by ~MsgPool. The registry is only touched by pool
// construction/destruction and by drop-without-take, never on the
// per-hop fast path.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/msg.hpp"

namespace neutrino::core {

class MsgPool {
 public:
  /// Move-only ticket for one pooled Msg. 16 bytes, nothrow-movable, so
  /// transport lambdas capturing {node*, Handle} stay inline-schedulable.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          msg_(std::exchange(other.msg_, nullptr)) {}
    Handle& operator=(Handle&& other) noexcept {
      drop();
      pool_ = std::exchange(other.pool_, nullptr);
      msg_ = std::exchange(other.msg_, nullptr);
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    // Releases the slot iff the pool is still alive (see file header).
    ~Handle() { drop(); }

    [[nodiscard]] explicit operator bool() const { return msg_ != nullptr; }
    Msg& operator*() const { return *msg_; }
    Msg* operator->() const { return msg_; }

    /// Move the message out and return the slot to the free list. Only
    /// legal while the owning pool is alive (i.e. during event dispatch).
    Msg take() {
      assert(msg_ != nullptr);
      Msg out = std::move(*msg_);
      pool_->release(msg_);
      msg_ = nullptr;
      pool_ = nullptr;
      return out;
    }

   private:
    friend class MsgPool;
    Handle(MsgPool* pool, Msg* msg) : pool_(pool), msg_(msg) {}

    /// Slow path for a Handle destroyed without take(): a crashed node's
    /// ServerPool dropping its queue must not strand the slot forever.
    void drop() {
      if (msg_ != nullptr) MsgPool::release_if_alive(pool_, msg_);
      pool_ = nullptr;
      msg_ = nullptr;
    }

    MsgPool* pool_ = nullptr;
    Msg* msg_ = nullptr;
  };

  MsgPool() {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(this);
  }
  ~MsgPool() {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    auto& pools = registry();
    pools.erase(std::remove(pools.begin(), pools.end(), this), pools.end());
  }
  MsgPool(const MsgPool&) = delete;
  MsgPool& operator=(const MsgPool&) = delete;

  /// Park a message in a pooled slot for the duration of one hop.
  Handle acquire(Msg msg) {
    if (free_.empty()) {
      grow();
    } else {
      ++reused_;
    }
    Msg* slot = free_.back();
    free_.pop_back();
    *slot = std::move(msg);
    ++acquired_;
    return Handle{this, slot};
  }

  [[nodiscard]] std::uint64_t acquired() const { return acquired_; }
  [[nodiscard]] std::uint64_t reused() const { return reused_; }
  [[nodiscard]] std::size_t capacity() const {
    return blocks_.size() * kBlockSize;
  }
  /// Slots currently held by live Handles (plus any abandoned ones).
  [[nodiscard]] std::size_t outstanding() const {
    return capacity() - free_.size();
  }

 private:
  static constexpr std::size_t kBlockSize = 256;

  // Live-pool registry: lets an abandoned Handle tell "my pool's node
  // crashed but the pool object lives" (release the slot) apart from "the
  // pool itself is gone" (leave it). Shards each own a pool but only the
  // owning thread drops handles into it; the mutex guards just the
  // registry vector, whose mutations happen outside the parallel phase.
  static std::mutex& registry_mutex() {
    static std::mutex m;
    return m;
  }
  static std::vector<MsgPool*>& registry() {
    static std::vector<MsgPool*> pools;
    return pools;
  }
  static void release_if_alive(MsgPool* pool, Msg* slot) {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    const auto& pools = registry();
    if (std::find(pools.begin(), pools.end(), pool) != pools.end()) {
      pool->release(slot);
    }
  }

  void grow() {
    blocks_.push_back(std::make_unique<Block>());
    Msg* base = blocks_.back()->slots;
    free_.reserve(free_.size() + kBlockSize);
    for (std::size_t i = kBlockSize; i > 0; --i) free_.push_back(base + i - 1);
  }

  void release(Msg* slot) {
    *slot = Msg{};  // drop shared_ptr payloads now, not at reuse time
    free_.push_back(slot);
  }

  // Cache-line-anchored slab: the first slot of every block starts on a
  // line boundary, so the Msg stride never begins mid-line and the free
  // list hands back slots with predictable line splits.
  struct alignas(64) Block {
    Msg slots[kBlockSize];
  };

  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<Msg*> free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace neutrino::core
