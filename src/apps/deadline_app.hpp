// Latency-sensitive application models for §6.6: deadline-driven sensor
// streams (self-driving cars, VR) and startup-latency applications (video,
// web browsing).
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "core/system.hpp"

namespace neutrino::apps {

/// A periodic uplink stream with a hard per-packet deadline.
///
/// §6.6: "we generate sensor data at a frequency of 1 KHz in the uplink
/// direction ... we note the number of packets which missed their
/// application-specific deadline". During a control-plane outage (handover
/// gap, failure recovery) packets are buffered; a packet misses when its
/// wait until the data path returns exceeds the deadline budget.
struct DeadlineApp {
  double packet_rate_hz = 1000.0;         // 1 kHz sensor stream
  SimTime deadline = SimTime::milliseconds(100);  // self-driving budget [55]
  /// Radio-link interruption added to every control outage: the UE must
  /// retune and synchronize to the target cell regardless of how fast the
  /// core completes the handover (~10-50 ms in LTE measurements; 0 isolates
  /// the control-plane contribution).
  SimTime radio_gap;

  static constexpr SimTime kSelfDrivingDeadline() {
    return SimTime::milliseconds(100);  // [55]
  }
  static constexpr SimTime kVrDeadline() {
    return SimTime::milliseconds(16);  // <16 ms for perceptual stability [53]
  }

  /// Packets that miss their deadline across the given outage windows:
  /// every packet generated in [start, end - deadline) waits longer than
  /// the budget.
  [[nodiscard]] std::uint64_t missed_deadlines(
      const std::vector<core::Frontend::Outage>& outages) const {
    std::uint64_t missed = 0;
    for (const auto& outage : outages) {
      const SimTime length = outage.end - outage.start + radio_gap;
      if (length <= deadline) continue;
      const double exposed_sec = (length - deadline).sec();
      missed += static_cast<std::uint64_t>(exposed_sec * packet_rate_hz);
    }
    return missed;
  }
};

/// §6.6: "Application startup latency in this scenario is a function of
/// service request PCT": video startup = service-request PCT + first
/// segment fetch; page load = service-request PCT + replayed page time.
struct StartupModel {
  /// DASH player buffering a locally-replayed video (no network variance).
  SimTime video_fetch = SimTime::milliseconds(120);
  /// Mean load time of the top-10 Alexa pages replayed via MITM proxy.
  SimTime page_fetch = SimTime::milliseconds(450);

  [[nodiscard]] double video_startup_ms(double service_request_pct_ms) const {
    return service_request_pct_ms + video_fetch.ms();
  }
  [[nodiscard]] double page_load_ms(double service_request_pct_ms) const {
    return service_request_pct_ms + page_fetch.ms();
  }
};

}  // namespace neutrino::apps
