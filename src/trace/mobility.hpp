// Mobility schedule for the application studies (§6.6, Fig. 12): a vehicle
// driving past base stations, triggering handovers at cell boundaries.
#pragma once

#include <vector>

#include "common/clock.hpp"

namespace neutrino::trace {

struct MobilityEvent {
  SimTime at;
  bool crosses_region;  // inter-CPF handover (different level-1 region)
};

/// Fig. 12's scenario: BS spacing alternating 700 m / 1000 m, core-network
/// boundary between them; a 60 mph (26.8 m/s) drive for `duration`.
class DriveModel {
 public:
  struct Params {
    double speed_mps = 26.8;         // 60 mph
    double bs_spacing_a_m = 700.0;   // Fig. 12 left gap
    double bs_spacing_b_m = 1000.0;  // Fig. 12 right gap
    int bs_per_region = 4;           // BSs between region boundaries
  };

  DriveModel() : params_(Params{}) {}
  explicit DriveModel(Params params) : params_(params) {}

  /// Handover instants over the drive; every bs_per_region-th crossing
  /// changes the serving region (inter-CPF handover).
  [[nodiscard]] std::vector<MobilityEvent> handovers(SimTime duration) const {
    std::vector<MobilityEvent> out;
    double position_m = 0.0;
    int crossing = 0;
    while (true) {
      const double gap = (crossing % 2 == 0) ? params_.bs_spacing_a_m
                                             : params_.bs_spacing_b_m;
      position_m += gap;
      const double t_sec = position_m / params_.speed_mps;
      const auto at =
          SimTime::nanoseconds(static_cast<std::int64_t>(t_sec * 1e9));
      if (at > duration) break;
      ++crossing;
      out.push_back({at, crossing % params_.bs_per_region == 0});
    }
    return out;
  }

 private:
  Params params_;
};

}  // namespace neutrino::trace
