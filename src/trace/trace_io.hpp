// Trace-file I/O: save and replay workloads as CSV.
//
// The paper replays the commercial ng4T traces; this module makes our
// synthesized equivalents first-class artifacts — write one once, inspect
// it, and replay the identical workload across systems and machines.
//
// Format (header line, then one record per line):
//   time_ns,ue,type,target_region
#pragma once

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>

#include "common/result.hpp"
#include "trace/workload.hpp"

namespace neutrino::trace {

inline Status save_trace(const std::vector<TraceRecord>& records,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(StatusCode::kUnavailable, "cannot open " + path);
  }
  out << "time_ns,ue,type,target_region\n";
  for (const TraceRecord& rec : records) {
    out << rec.at.ns() << ',' << rec.ue.value() << ','
        << static_cast<int>(rec.type) << ',' << rec.target_region << '\n';
  }
  return out ? Status::ok()
             : make_error(StatusCode::kUnavailable, "write failed");
}

inline Result<std::vector<TraceRecord>> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(StatusCode::kNotFound, "cannot open " + path);
  }
  std::vector<TraceRecord> records;
  std::string line;
  std::getline(in, line);  // header
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    TraceRecord rec;
    std::int64_t time_ns = 0;
    std::uint64_t ue = 0;
    int type = 0;
    std::uint32_t target = 0;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    auto field = [&](auto& value) -> bool {
      auto [next, ec] = std::from_chars(p, end, value);
      if (ec != std::errc{}) return false;
      p = next < end && *next == ',' ? next + 1 : next;
      return true;
    };
    if (!field(time_ns) || !field(ue) || !field(type) || !field(target) ||
        type < 0 ||
        type > static_cast<int>(core::ProcedureType::kTau)) {
      return make_error(StatusCode::kMalformed,
                        "bad trace record at line " + std::to_string(line_no));
    }
    rec.at = SimTime::nanoseconds(time_ns);
    rec.ue = UeId(ue);
    rec.type = static_cast<core::ProcedureType>(type);
    rec.target_region = target;
    records.push_back(rec);
  }
  return records;
}

/// Aggregate statistics of a trace (for `tracegen --describe`).
struct TraceSummary {
  std::size_t records = 0;
  std::size_t distinct_ues = 0;
  SimTime span;
  double rate_pps = 0;
  std::array<std::size_t, 7> by_type{};
};

inline TraceSummary summarize(const std::vector<TraceRecord>& records) {
  TraceSummary s;
  s.records = records.size();
  std::unordered_set<std::uint64_t> ues;
  for (const TraceRecord& rec : records) {
    ues.insert(rec.ue.value());
    s.by_type[static_cast<std::size_t>(rec.type)]++;
  }
  s.distinct_ues = ues.size();
  if (!records.empty()) {
    s.span = records.back().at - records.front().at;
    if (s.span.ns() > 0) {
      s.rate_pps =
          static_cast<double>(records.size()) / s.span.sec();
    }
  }
  return s;
}

}  // namespace neutrino::trace
