// Synthetic control-traffic workloads standing in for the ng4T traces [45]
// (DESIGN.md §2): the paper uses the commercial traces as (a) an arrival
// process and (b) a procedure mix; both are published properties that these
// generators reproduce.
#pragma once

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"

namespace neutrino::trace {

/// One control-procedure arrival.
struct TraceRecord {
  SimTime at;
  UeId ue;
  core::ProcedureType type = core::ProcedureType::kAttach;
  std::uint32_t target_region = 0;  // handovers
};

/// The documented total order over trace records: (at, ue, type). Streams
/// produced by independent generators (one per device class, one per
/// shard, ...) merge deterministically under this order regardless of
/// generation order — the same construction as the flight recorder's
/// (time, shard, seq) merge. Records identical in all three keys are
/// interchangeable arrivals, so any tie-break among them is immaterial.
inline bool record_before(const TraceRecord& a, const TraceRecord& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.ue.value() != b.ue.value()) return a.ue.value() < b.ue.value();
  return static_cast<int>(a.type) < static_cast<int>(b.type);
}

/// Sort a record stream into the (at, ue, type) total order.
inline void sort_records(std::vector<TraceRecord>& records) {
  std::sort(records.begin(), records.end(), record_before);
}

/// K-way merge of streams each already sorted by record_before; the
/// result is the (at, ue, type)-sorted concatenation. Pairwise std::merge
/// keeps this O(n log k) without a heap.
inline std::vector<TraceRecord> merge_sorted_records(
    std::vector<std::vector<TraceRecord>> streams) {
  while (streams.size() > 1) {
    std::vector<std::vector<TraceRecord>> next;
    next.reserve(streams.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < streams.size(); i += 2) {
      std::vector<TraceRecord> merged;
      merged.reserve(streams[i].size() + streams[i + 1].size());
      std::merge(streams[i].begin(), streams[i].end(),
                 streams[i + 1].begin(), streams[i + 1].end(),
                 std::back_inserter(merged), record_before);
      next.push_back(std::move(merged));
    }
    if (streams.size() % 2 == 1) next.push_back(std::move(streams.back()));
    streams = std::move(next);
  }
  return streams.empty() ? std::vector<TraceRecord>{} : std::move(streams[0]);
}

/// Procedure mix (fractions; attach gets the remainder).
struct ProcedureMix {
  double service_request = 0.0;
  double handover = 0.0;
  double intra_handover = 0.0;
};

/// §6.1 "uniform traffic to emulate a pre-specified number of control
/// procedure requests per second": Poisson arrivals at `rate_pps`, each
/// from a distinct UE of a cycling population.
///
/// Mix contract: the fractions apply as configured whenever the topology
/// can express them. Inter-region handover needs `regions > 1`; on a
/// single-region topology the handover mass is *renormalized into
/// intra-handover* (the nearest expressible procedure) rather than
/// silently falling through to whatever branch the dice land in — the
/// effective mix is therefore {service_request, 0, handover +
/// intra_handover} with attach keeping exactly its configured remainder.
class UniformWorkload {
 public:
  UniformWorkload(double rate_pps, SimTime duration, ProcedureMix mix,
                  std::uint64_t seed = 1)
      : rate_pps_(rate_pps), duration_(duration), mix_(mix), rng_(seed) {}

  std::vector<TraceRecord> generate(std::uint64_t ue_population,
                                    int regions) {
    // Renormalize the mix for the topology (see the class comment).
    ProcedureMix mix = mix_;
    if (regions <= 1) {
      mix.intra_handover += mix.handover;
      mix.handover = 0.0;
    }
    std::vector<TraceRecord> out;
    out.reserve(static_cast<std::size_t>(rate_pps_ * duration_.sec() * 1.1));
    double t = 0.0;
    std::uint64_t next_ue = 0;
    while (true) {
      t += rng_.next_exponential(1.0 / rate_pps_);
      const auto at = SimTime::nanoseconds(static_cast<std::int64_t>(t * 1e9));
      if (at > duration_) break;
      TraceRecord rec;
      rec.at = at;
      rec.ue = UeId(next_ue);
      next_ue = (next_ue + 1) % ue_population;
      const double dice = rng_.next_double();
      const auto r = static_cast<std::uint32_t>(regions);
      const auto home = static_cast<std::uint32_t>(rec.ue.value() % r);
      if (dice < mix.service_request) {
        rec.type = core::ProcedureType::kServiceRequest;
      } else if (dice < mix.service_request + mix.handover) {
        rec.type = core::ProcedureType::kHandover;
        rec.target_region = (home + 1) % r;
      } else if (dice < mix.service_request + mix.handover +
                            mix.intra_handover) {
        rec.type = core::ProcedureType::kIntraHandover;
        rec.target_region = home;
      } else {
        rec.type = core::ProcedureType::kAttach;
      }
      out.push_back(rec);
    }
    return out;
  }

 private:
  double rate_pps_;
  SimTime duration_;
  ProcedureMix mix_;
  Rng rng_;
};

/// §6.1 "bursty traffic to emulate a large number of IoT devices sending
/// requests in a synchronized pattern": `n_users` distinct UEs all issue an
/// attach within a short window (e.g. a power-restoration or periodic
/// report synchronization event).
class BurstyWorkload {
 public:
  BurstyWorkload(std::uint64_t n_users, SimTime window,
                 std::uint64_t seed = 1)
      : n_users_(n_users), window_(window), rng_(seed) {}

  std::vector<TraceRecord> generate() {
    std::vector<TraceRecord> out;
    out.reserve(n_users_);
    for (std::uint64_t ue = 0; ue < n_users_; ++ue) {
      TraceRecord rec;
      rec.at = SimTime::nanoseconds(static_cast<std::int64_t>(
          rng_.next_double() * static_cast<double>(window_.ns())));
      rec.ue = UeId(ue);
      rec.type = core::ProcedureType::kAttach;
      out.push_back(rec);
    }
    // Total (at, ue, type) order, not a bare non-stable sort on `at`:
    // equal-timestamp records must land in a deterministic order for the
    // bitwise-determinism contract to hold.
    sort_records(out);
    return out;
  }

 private:
  std::uint64_t n_users_;
  SimTime window_;
  Rng rng_;
};

/// Per-device behaviour over a long horizon, following the §2.2 statistics:
/// a device issues a session establishment (service request) every 106.9 s
/// on average, with attaches and mobility events mixed in.
class DeviceModelWorkload {
 public:
  DeviceModelWorkload(std::uint64_t n_devices, SimTime horizon,
                      std::uint64_t seed = 7)
      : n_devices_(n_devices), horizon_(horizon), rng_(seed) {}

  static constexpr double kMeanSessionGapSec = 106.9;  // §2.2 [37]

  std::vector<TraceRecord> generate(int regions) {
    std::vector<TraceRecord> out;
    for (std::uint64_t d = 0; d < n_devices_; ++d) {
      Rng dev_rng(rng_.next_u64());
      double t = dev_rng.next_double() * kMeanSessionGapSec;
      const auto home = static_cast<std::uint32_t>(
          d % static_cast<std::uint64_t>(regions));
      while (t * 1e9 < static_cast<double>(horizon_.ns())) {
        TraceRecord rec;
        rec.at = SimTime::nanoseconds(static_cast<std::int64_t>(t * 1e9));
        rec.ue = UeId(d);
        const double dice = dev_rng.next_double();
        if (dice < 0.85) {
          rec.type = core::ProcedureType::kServiceRequest;
        } else if (dice < 0.95 && regions > 1) {
          rec.type = core::ProcedureType::kHandover;
          rec.target_region =
              (home + 1) % static_cast<std::uint32_t>(regions);
        } else {
          rec.type = core::ProcedureType::kAttach;
        }
        out.push_back(rec);
        t += dev_rng.next_exponential(kMeanSessionGapSec);
      }
    }
    sort_records(out);
    return out;
  }

 private:
  std::uint64_t n_devices_;
  SimTime horizon_;
  Rng rng_;
};

/// Replay a trace into the system: schedules every record on the event
/// loop. Pre-attached UEs are the caller's responsibility.
inline void replay(core::System& system, const std::vector<TraceRecord>& trace) {
  for (const TraceRecord& rec : trace) {
    system.loop().schedule_at(rec.at, [&system, rec] {
      system.frontend().start_procedure(rec.ue, rec.type, rec.target_region);
    });
  }
}

}  // namespace neutrino::trace
