// Synthetic control-traffic workloads standing in for the ng4T traces [45]
// (DESIGN.md §2): the paper uses the commercial traces as (a) an arrival
// process and (b) a procedure mix; both are published properties that these
// generators reproduce.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"

namespace neutrino::trace {

/// One control-procedure arrival.
struct TraceRecord {
  SimTime at;
  UeId ue;
  core::ProcedureType type = core::ProcedureType::kAttach;
  std::uint32_t target_region = 0;  // handovers
};

/// Procedure mix (fractions; attach gets the remainder).
struct ProcedureMix {
  double service_request = 0.0;
  double handover = 0.0;
  double intra_handover = 0.0;
};

/// §6.1 "uniform traffic to emulate a pre-specified number of control
/// procedure requests per second": Poisson arrivals at `rate_pps`, each
/// from a distinct UE of a cycling population.
class UniformWorkload {
 public:
  UniformWorkload(double rate_pps, SimTime duration, ProcedureMix mix,
                  std::uint64_t seed = 1)
      : rate_pps_(rate_pps), duration_(duration), mix_(mix), rng_(seed) {}

  std::vector<TraceRecord> generate(std::uint64_t ue_population,
                                    int regions) {
    std::vector<TraceRecord> out;
    out.reserve(static_cast<std::size_t>(rate_pps_ * duration_.sec() * 1.1));
    double t = 0.0;
    std::uint64_t next_ue = 0;
    while (true) {
      t += rng_.next_exponential(1.0 / rate_pps_);
      const auto at = SimTime::nanoseconds(static_cast<std::int64_t>(t * 1e9));
      if (at > duration_) break;
      TraceRecord rec;
      rec.at = at;
      rec.ue = UeId(next_ue);
      next_ue = (next_ue + 1) % ue_population;
      const double dice = rng_.next_double();
      const auto r = static_cast<std::uint32_t>(regions);
      const auto home = static_cast<std::uint32_t>(rec.ue.value() % r);
      if (dice < mix_.service_request) {
        rec.type = core::ProcedureType::kServiceRequest;
      } else if (dice < mix_.service_request + mix_.handover && regions > 1) {
        rec.type = core::ProcedureType::kHandover;
        rec.target_region = (home + 1) % r;
      } else if (dice < mix_.service_request + mix_.handover +
                            mix_.intra_handover) {
        rec.type = core::ProcedureType::kIntraHandover;
        rec.target_region = home;
      } else {
        rec.type = core::ProcedureType::kAttach;
      }
      out.push_back(rec);
    }
    return out;
  }

 private:
  double rate_pps_;
  SimTime duration_;
  ProcedureMix mix_;
  Rng rng_;
};

/// §6.1 "bursty traffic to emulate a large number of IoT devices sending
/// requests in a synchronized pattern": `n_users` distinct UEs all issue an
/// attach within a short window (e.g. a power-restoration or periodic
/// report synchronization event).
class BurstyWorkload {
 public:
  BurstyWorkload(std::uint64_t n_users, SimTime window,
                 std::uint64_t seed = 1)
      : n_users_(n_users), window_(window), rng_(seed) {}

  std::vector<TraceRecord> generate() {
    std::vector<TraceRecord> out;
    out.reserve(n_users_);
    for (std::uint64_t ue = 0; ue < n_users_; ++ue) {
      TraceRecord rec;
      rec.at = SimTime::nanoseconds(static_cast<std::int64_t>(
          rng_.next_double() * static_cast<double>(window_.ns())));
      rec.ue = UeId(ue);
      rec.type = core::ProcedureType::kAttach;
      out.push_back(rec);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceRecord& a, const TraceRecord& b) {
                return a.at < b.at;
              });
    return out;
  }

 private:
  std::uint64_t n_users_;
  SimTime window_;
  Rng rng_;
};

/// Per-device behaviour over a long horizon, following the §2.2 statistics:
/// a device issues a session establishment (service request) every 106.9 s
/// on average, with attaches and mobility events mixed in.
class DeviceModelWorkload {
 public:
  DeviceModelWorkload(std::uint64_t n_devices, SimTime horizon,
                      std::uint64_t seed = 7)
      : n_devices_(n_devices), horizon_(horizon), rng_(seed) {}

  static constexpr double kMeanSessionGapSec = 106.9;  // §2.2 [37]

  std::vector<TraceRecord> generate(int regions) {
    std::vector<TraceRecord> out;
    for (std::uint64_t d = 0; d < n_devices_; ++d) {
      Rng dev_rng(rng_.next_u64());
      double t = dev_rng.next_double() * kMeanSessionGapSec;
      const auto home = static_cast<std::uint32_t>(
          d % static_cast<std::uint64_t>(regions));
      while (t * 1e9 < static_cast<double>(horizon_.ns())) {
        TraceRecord rec;
        rec.at = SimTime::nanoseconds(static_cast<std::int64_t>(t * 1e9));
        rec.ue = UeId(d);
        const double dice = dev_rng.next_double();
        if (dice < 0.85) {
          rec.type = core::ProcedureType::kServiceRequest;
        } else if (dice < 0.95 && regions > 1) {
          rec.type = core::ProcedureType::kHandover;
          rec.target_region =
              (home + 1) % static_cast<std::uint32_t>(regions);
        } else {
          rec.type = core::ProcedureType::kAttach;
        }
        out.push_back(rec);
        t += dev_rng.next_exponential(kMeanSessionGapSec);
      }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceRecord& a, const TraceRecord& b) {
                return a.at < b.at;
              });
    return out;
  }

 private:
  std::uint64_t n_devices_;
  SimTime horizon_;
  Rng rng_;
};

/// Replay a trace into the system: schedules every record on the event
/// loop. Pre-attached UEs are the caller's responsibility.
inline void replay(core::System& system, const std::vector<TraceRecord>& trace) {
  for (const TraceRecord& rec : trace) {
    system.loop().schedule_at(rec.at, [&system, rec] {
      system.frontend().start_procedure(rec.ue, rec.type, rec.target_region);
    });
  }
}

}  // namespace neutrino::trace
