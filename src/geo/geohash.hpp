// 2-bits-per-character geohash, as used by Neutrino (§5 "we implemented
// 2 bits per character version of the Geo Hashing ... causing a four-fold
// increase/decrease in the region size with each character").
//
// Each character interleaves one longitude bit and one latitude bit, drawn
// from the alphabet '0'..'3'. Dropping the last character therefore widens
// the region 4x: exactly the level-1 -> level-2 relationship of Fig. 6.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace neutrino::geo {

struct LatLon {
  double lat = 0.0;  // [-90, 90]
  double lon = 0.0;  // [-180, 180]
};

/// Encode a position to `precision` characters (2 bits each).
inline std::string geohash_encode(LatLon p, int precision) {
  assert(precision > 0 && precision <= 30);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  std::string out;
  out.reserve(static_cast<std::size_t>(precision));
  for (int i = 0; i < precision; ++i) {
    int symbol = 0;
    const double lon_mid = (lon_lo + lon_hi) / 2;
    if (p.lon >= lon_mid) {
      symbol |= 2;
      lon_lo = lon_mid;
    } else {
      lon_hi = lon_mid;
    }
    const double lat_mid = (lat_lo + lat_hi) / 2;
    if (p.lat >= lat_mid) {
      symbol |= 1;
      lat_lo = lat_mid;
    } else {
      lat_hi = lat_mid;
    }
    out.push_back(static_cast<char>('0' + symbol));
  }
  return out;
}

struct GeoCell {
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;

  [[nodiscard]] LatLon center() const {
    return {(lat_lo + lat_hi) / 2, (lon_lo + lon_hi) / 2};
  }
  [[nodiscard]] bool contains(LatLon p) const {
    return p.lat >= lat_lo && p.lat < lat_hi && p.lon >= lon_lo &&
           p.lon < lon_hi;
  }
};

/// Decode a geohash back to its cell bounds.
inline GeoCell geohash_decode(std::string_view hash) {
  GeoCell cell;
  for (const char c : hash) {
    const int symbol = c - '0';
    assert(symbol >= 0 && symbol <= 3);
    const double lon_mid = (cell.lon_lo + cell.lon_hi) / 2;
    if (symbol & 2) {
      cell.lon_lo = lon_mid;
    } else {
      cell.lon_hi = lon_mid;
    }
    const double lat_mid = (cell.lat_lo + cell.lat_hi) / 2;
    if (symbol & 1) {
      cell.lat_lo = lat_mid;
    } else {
      cell.lat_hi = lat_mid;
    }
  }
  return cell;
}

/// The enclosing region one level up: drop the last character (4x area).
inline std::string_view parent_region(std::string_view hash) {
  assert(!hash.empty());
  return hash.substr(0, hash.size() - 1);
}

/// The same-precision cell `dlat` cell-pitches north and `dlon` pitches
/// east of `hash`, or nullopt past the world bounds (a bounded service
/// area: no pole or antimeridian wraparound). Every cell boundary at a
/// given precision is a dyadic fraction of the world box, so stepping the
/// decoded center by whole pitches is exact in double arithmetic and the
/// re-encode cannot land on the wrong side of a bisection line.
inline std::optional<std::string> geohash_neighbor(std::string_view hash,
                                                   int dlat, int dlon) {
  assert(!hash.empty());
  const GeoCell cell = geohash_decode(hash);
  LatLon p = cell.center();
  p.lat += static_cast<double>(dlat) * (cell.lat_hi - cell.lat_lo);
  p.lon += static_cast<double>(dlon) * (cell.lon_hi - cell.lon_lo);
  if (p.lat <= -90.0 || p.lat >= 90.0 || p.lon < -180.0 || p.lon >= 180.0) {
    return std::nullopt;
  }
  return geohash_encode(p, static_cast<int>(hash.size()));
}

/// The level-1 ring around a cell: its (up to 8) same-precision neighbors.
/// Interior cells get 8, world-edge cells 5, world-corner cells 3 — and
/// membership is symmetric (b in ring(a) iff a in ring(b)), which is the
/// premise FastHandover's "state is already replicated nearby" rests on.
inline std::vector<std::string> neighbor_ring(std::string_view hash) {
  std::vector<std::string> out;
  out.reserve(8);
  for (int dlat = -1; dlat <= 1; ++dlat) {
    for (int dlon = -1; dlon <= 1; ++dlon) {
      if (dlat == 0 && dlon == 0) continue;
      if (auto n = geohash_neighbor(hash, dlat, dlon)) {
        out.push_back(std::move(*n));
      }
    }
  }
  return out;
}

}  // namespace neutrino::geo
