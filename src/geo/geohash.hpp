// 2-bits-per-character geohash, as used by Neutrino (§5 "we implemented
// 2 bits per character version of the Geo Hashing ... causing a four-fold
// increase/decrease in the region size with each character").
//
// Each character interleaves one longitude bit and one latitude bit, drawn
// from the alphabet '0'..'3'. Dropping the last character therefore widens
// the region 4x: exactly the level-1 -> level-2 relationship of Fig. 6.
#pragma once

#include <cassert>
#include <string>
#include <string_view>

namespace neutrino::geo {

struct LatLon {
  double lat = 0.0;  // [-90, 90]
  double lon = 0.0;  // [-180, 180]
};

/// Encode a position to `precision` characters (2 bits each).
inline std::string geohash_encode(LatLon p, int precision) {
  assert(precision > 0 && precision <= 30);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  std::string out;
  out.reserve(static_cast<std::size_t>(precision));
  for (int i = 0; i < precision; ++i) {
    int symbol = 0;
    const double lon_mid = (lon_lo + lon_hi) / 2;
    if (p.lon >= lon_mid) {
      symbol |= 2;
      lon_lo = lon_mid;
    } else {
      lon_hi = lon_mid;
    }
    const double lat_mid = (lat_lo + lat_hi) / 2;
    if (p.lat >= lat_mid) {
      symbol |= 1;
      lat_lo = lat_mid;
    } else {
      lat_hi = lat_mid;
    }
    out.push_back(static_cast<char>('0' + symbol));
  }
  return out;
}

struct GeoCell {
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;

  [[nodiscard]] LatLon center() const {
    return {(lat_lo + lat_hi) / 2, (lon_lo + lon_hi) / 2};
  }
  [[nodiscard]] bool contains(LatLon p) const {
    return p.lat >= lat_lo && p.lat < lat_hi && p.lon >= lon_lo &&
           p.lon < lon_hi;
  }
};

/// Decode a geohash back to its cell bounds.
inline GeoCell geohash_decode(std::string_view hash) {
  GeoCell cell;
  for (const char c : hash) {
    const int symbol = c - '0';
    assert(symbol >= 0 && symbol <= 3);
    const double lon_mid = (cell.lon_lo + cell.lon_hi) / 2;
    if (symbol & 2) {
      cell.lon_lo = lon_mid;
    } else {
      cell.lon_hi = lon_mid;
    }
    const double lat_mid = (cell.lat_lo + cell.lat_hi) / 2;
    if (symbol & 1) {
      cell.lat_lo = lat_mid;
    } else {
      cell.lat_hi = lat_mid;
    }
  }
  return cell;
}

/// The enclosing region one level up: drop the last character (4x area).
inline std::string_view parent_region(std::string_view hash) {
  assert(!hash.empty());
  return hash.substr(0, hash.size() - 1);
}

}  // namespace neutrino::geo
