// Consistent hash ring with virtual nodes.
//
// Each CTA keeps two of these (§4.3): the level-1 ring over the CPFs of its
// own region (primary selection) and the level-2 ring over the CPFs of the
// enclosing region (backup placement). Virtual nodes smooth the key
// distribution; ring positions use a stable hash so placement is identical
// across runs and standard libraries.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/hashing.hpp"

namespace neutrino::geo {

template <typename NodeT>
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int vnodes_per_node = 32)
      : vnodes_per_node_(vnodes_per_node) {}

  void add(NodeT node, std::uint64_t node_seed) {
    for (int replica = 0; replica < vnodes_per_node_; ++replica) {
      const std::uint64_t pos =
          hash_combine(mix64(node_seed), static_cast<std::uint64_t>(replica));
      ring_.push_back({pos, node});
    }
    std::sort(ring_.begin(), ring_.end());
    nodes_.push_back(node);
  }

  void remove(NodeT node) {
    std::erase_if(ring_, [&](const Entry& e) { return e.node == node; });
    std::erase(nodes_, node);
  }

  [[nodiscard]] bool empty() const { return ring_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<NodeT>& nodes() const { return nodes_; }

  /// Owner of a key: first virtual node clockwise from the key's position.
  [[nodiscard]] NodeT lookup(std::uint64_t key) const {
    assert(!ring_.empty());
    return walk(key).node;
  }

  /// The first `n` *distinct* nodes clockwise from the key — the placement
  /// used for "N consecutive replicas on a level-2 ring" (§4.3).
  [[nodiscard]] std::vector<NodeT> successors(std::uint64_t key,
                                              std::size_t n) const {
    std::vector<NodeT> out;
    if (ring_.empty()) return out;
    const std::uint64_t pos = mix64(key);
    auto it = std::lower_bound(ring_.begin(), ring_.end(), pos,
                               [](const Entry& e, std::uint64_t p) {
                                 return e.position < p;
                               });
    for (std::size_t hops = 0; hops < ring_.size() && out.size() < n;
         ++hops) {
      if (it == ring_.end()) it = ring_.begin();
      if (std::find(out.begin(), out.end(), it->node) == out.end()) {
        out.push_back(it->node);
      }
      ++it;
    }
    return out;
  }

 private:
  struct Entry {
    std::uint64_t position;
    NodeT node;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.position != b.position) return a.position < b.position;
      return a.node < b.node;
    }
  };

  [[nodiscard]] const Entry& walk(std::uint64_t key) const {
    const std::uint64_t pos = mix64(key);
    auto it = std::lower_bound(ring_.begin(), ring_.end(), pos,
                               [](const Entry& e, std::uint64_t p) {
                                 return e.position < p;
                               });
    if (it == ring_.end()) it = ring_.begin();
    return *it;
  }

  int vnodes_per_node_;
  std::vector<Entry> ring_;
  std::vector<NodeT> nodes_;
};

}  // namespace neutrino::geo
