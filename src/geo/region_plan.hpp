// Deployment planning from geography (Fig. 6): carve a service area into
// level-1 regions via geohashing and derive the level-2 grouping from the
// geohash parent relation.
//
// With 2 bits per character (§5), truncating one character widens a cell
// exactly 4x — so every level-2 region contains exactly four level-1
// regions, which is what TopologyConfig's uniform l1_per_l2 expresses.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "core/topology.hpp"
#include "geo/geohash.hpp"

namespace neutrino::geo {

struct PlannedRegion {
  std::string geohash;         // level-1 cell (deployment unit: CTA + CPFs)
  std::string parent_geohash;  // level-2 cell (replication domain)
  GeoCell cell;
  std::uint32_t region_index = 0;  // index used by core::TopologyConfig
};

class RegionPlan {
 public:
  /// Carve `area` into the level-1 cells of the given geohash precision
  /// that intersect it. Regions are ordered by parent so that
  /// TopologyConfig::l2_of(index) == index / 4 matches the geography.
  static RegionPlan from_area(const GeoCell& area, int l1_precision) {
    RegionPlan plan;
    plan.l1_precision_ = l1_precision;
    // Enumerate candidate cells by stepping through the area at the cell
    // pitch and hashing the sample points (grid-aligned by construction).
    const GeoCell probe_cell =
        geohash_decode(geohash_encode(area.center(), l1_precision));
    const double dlat = probe_cell.lat_hi - probe_cell.lat_lo;
    const double dlon = probe_cell.lon_hi - probe_cell.lon_lo;
    std::vector<std::string> hashes;
    for (double lat = area.lat_lo + dlat / 2; lat < area.lat_hi;
         lat += dlat) {
      for (double lon = area.lon_lo + dlon / 2; lon < area.lon_hi;
           lon += dlon) {
        hashes.push_back(geohash_encode({lat, lon}, l1_precision));
      }
    }
    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
    // Group by parent: lexicographic order on the hash already clusters
    // siblings (the parent is a strict prefix).
    for (const std::string& hash : hashes) {
      PlannedRegion region;
      region.geohash = hash;
      region.parent_geohash = std::string(parent_region(hash));
      region.cell = geohash_decode(hash);
      region.region_index =
          static_cast<std::uint32_t>(plan.regions_.size());
      plan.regions_.push_back(std::move(region));
    }
    return plan;
  }

  [[nodiscard]] const std::vector<PlannedRegion>& regions() const {
    return regions_;
  }

  /// The level-1 region serving a position, if the plan covers it.
  [[nodiscard]] const PlannedRegion* locate(LatLon position) const {
    const std::string hash = geohash_encode(position, l1_precision_);
    const auto it =
        std::find_if(regions_.begin(), regions_.end(),
                     [&](const PlannedRegion& r) { return r.geohash == hash; });
    return it == regions_.end() ? nullptr : &*it;
  }

  [[nodiscard]] int l1_precision() const { return l1_precision_; }

  /// Index of a level-1 geohash in the plan. regions_ is sorted by hash
  /// (from_area sorts before assigning indices), so this is a binary
  /// search, not a scan.
  [[nodiscard]] std::optional<std::uint32_t> index_of(
      std::string_view hash) const {
    const auto it = std::lower_bound(
        regions_.begin(), regions_.end(), hash,
        [](const PlannedRegion& r, std::string_view h) {
          return std::string_view{r.geohash} < h;
        });
    if (it == regions_.end() || it->geohash != hash) return std::nullopt;
    return it->region_index;
  }

  /// The in-plan members of a region's level-1 ring (§4.3): the adjacent
  /// level-1 cells this plan actually deploys. Plan-edge regions simply
  /// have smaller rings; membership stays symmetric because adjacency is.
  [[nodiscard]] std::vector<std::uint32_t> ring_neighbors(
      std::uint32_t region_index) const {
    std::vector<std::uint32_t> out;
    for (const std::string& hash :
         neighbor_ring(regions_[region_index].geohash)) {
      if (const auto idx = index_of(hash)) out.push_back(*idx);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Regions sharing a level-2 parent with `region` (its replication
  /// domain, §4.3) — where that UE population's backups may live.
  [[nodiscard]] std::vector<std::uint32_t> replication_domain(
      std::uint32_t region_index) const {
    std::vector<std::uint32_t> out;
    const auto& parent = regions_[region_index].parent_geohash;
    for (const PlannedRegion& r : regions_) {
      if (r.parent_geohash == parent) out.push_back(r.region_index);
    }
    return out;
  }

  /// Express the plan as a core topology. Requires full level-2 quads
  /// (true whenever the area is a union of level-2 cells; the geohash
  /// split guarantees exactly four level-1 children per parent).
  [[nodiscard]] Result<core::TopologyConfig> to_topology(
      int cpfs_per_region) const {
    core::TopologyConfig topo;
    topo.cpfs_per_region = cpfs_per_region;
    topo.l1_per_l2 = 4;
    if (regions_.empty() || regions_.size() % 4 != 0) {
      return make_error(StatusCode::kFailedPrecondition,
                        "area is not a union of level-2 quads");
    }
    for (std::size_t i = 0; i < regions_.size(); i += 4) {
      const auto& parent = regions_[i].parent_geohash;
      for (std::size_t j = i; j < i + 4; ++j) {
        if (regions_[j].parent_geohash != parent) {
          return make_error(StatusCode::kFailedPrecondition,
                            "area is not a union of level-2 quads");
        }
      }
    }
    topo.l2_regions = static_cast<int>(regions_.size() / 4);
    return topo;
  }

 private:
  int l1_precision_ = 8;
  std::vector<PlannedRegion> regions_;
};

}  // namespace neutrino::geo
