# Empty compiler generated dependencies file for core_idle_mobility_test.
# This may be replaced when dependencies are built.
