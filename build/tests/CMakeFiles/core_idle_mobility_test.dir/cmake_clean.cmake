file(REMOVE_RECURSE
  "CMakeFiles/core_idle_mobility_test.dir/core_idle_mobility_test.cpp.o"
  "CMakeFiles/core_idle_mobility_test.dir/core_idle_mobility_test.cpp.o.d"
  "core_idle_mobility_test"
  "core_idle_mobility_test.pdb"
  "core_idle_mobility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_idle_mobility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
