# Empty compiler generated dependencies file for core_procedures_test.
# This may be replaced when dependencies are built.
