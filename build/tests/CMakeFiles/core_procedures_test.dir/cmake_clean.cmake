file(REMOVE_RECURSE
  "CMakeFiles/core_procedures_test.dir/core_procedures_test.cpp.o"
  "CMakeFiles/core_procedures_test.dir/core_procedures_test.cpp.o.d"
  "core_procedures_test"
  "core_procedures_test.pdb"
  "core_procedures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_procedures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
