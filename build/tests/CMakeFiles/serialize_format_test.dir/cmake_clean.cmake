file(REMOVE_RECURSE
  "CMakeFiles/serialize_format_test.dir/serialize_format_test.cpp.o"
  "CMakeFiles/serialize_format_test.dir/serialize_format_test.cpp.o.d"
  "serialize_format_test"
  "serialize_format_test.pdb"
  "serialize_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
