# Empty compiler generated dependencies file for serialize_format_test.
# This may be replaced when dependencies are built.
