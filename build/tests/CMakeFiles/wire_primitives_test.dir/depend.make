# Empty dependencies file for wire_primitives_test.
# This may be replaced when dependencies are built.
