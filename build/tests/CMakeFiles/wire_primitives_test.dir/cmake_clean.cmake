file(REMOVE_RECURSE
  "CMakeFiles/wire_primitives_test.dir/wire_primitives_test.cpp.o"
  "CMakeFiles/wire_primitives_test.dir/wire_primitives_test.cpp.o.d"
  "wire_primitives_test"
  "wire_primitives_test.pdb"
  "wire_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
