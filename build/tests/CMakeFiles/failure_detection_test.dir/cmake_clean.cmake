file(REMOVE_RECURSE
  "CMakeFiles/failure_detection_test.dir/failure_detection_test.cpp.o"
  "CMakeFiles/failure_detection_test.dir/failure_detection_test.cpp.o.d"
  "failure_detection_test"
  "failure_detection_test.pdb"
  "failure_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
