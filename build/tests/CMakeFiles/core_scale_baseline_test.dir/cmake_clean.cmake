file(REMOVE_RECURSE
  "CMakeFiles/core_scale_baseline_test.dir/core_scale_baseline_test.cpp.o"
  "CMakeFiles/core_scale_baseline_test.dir/core_scale_baseline_test.cpp.o.d"
  "core_scale_baseline_test"
  "core_scale_baseline_test.pdb"
  "core_scale_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scale_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
