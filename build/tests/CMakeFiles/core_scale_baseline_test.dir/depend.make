# Empty dependencies file for core_scale_baseline_test.
# This may be replaced when dependencies are built.
