file(REMOVE_RECURSE
  "CMakeFiles/codec_differential_test.dir/codec_differential_test.cpp.o"
  "CMakeFiles/codec_differential_test.dir/codec_differential_test.cpp.o.d"
  "codec_differential_test"
  "codec_differential_test.pdb"
  "codec_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
