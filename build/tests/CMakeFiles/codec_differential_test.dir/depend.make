# Empty dependencies file for codec_differential_test.
# This may be replaced when dependencies are built.
