# Empty dependencies file for serialize_roundtrip_test.
# This may be replaced when dependencies are built.
