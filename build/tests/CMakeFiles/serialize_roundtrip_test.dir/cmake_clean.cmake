file(REMOVE_RECURSE
  "CMakeFiles/serialize_roundtrip_test.dir/serialize_roundtrip_test.cpp.o"
  "CMakeFiles/serialize_roundtrip_test.dir/serialize_roundtrip_test.cpp.o.d"
  "serialize_roundtrip_test"
  "serialize_roundtrip_test.pdb"
  "serialize_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
