# Empty compiler generated dependencies file for region_plan_test.
# This may be replaced when dependencies are built.
