file(REMOVE_RECURSE
  "CMakeFiles/region_plan_test.dir/region_plan_test.cpp.o"
  "CMakeFiles/region_plan_test.dir/region_plan_test.cpp.o.d"
  "region_plan_test"
  "region_plan_test.pdb"
  "region_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
