# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/serialize_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/core_procedures_test[1]_include.cmake")
include("/root/repo/build/tests/core_failure_test[1]_include.cmake")
include("/root/repo/build/tests/wire_primitives_test[1]_include.cmake")
include("/root/repo/build/tests/codec_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_idle_mobility_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_format_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/common_types_test[1]_include.cmake")
include("/root/repo/build/tests/failure_detection_test[1]_include.cmake")
include("/root/repo/build/tests/core_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/core_policy_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/codec_differential_test[1]_include.cmake")
include("/root/repo/build/tests/region_plan_test[1]_include.cmake")
include("/root/repo/build/tests/core_scale_baseline_test[1]_include.cmake")
