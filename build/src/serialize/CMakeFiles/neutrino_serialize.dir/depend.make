# Empty dependencies file for neutrino_serialize.
# This may be replaced when dependencies are built.
