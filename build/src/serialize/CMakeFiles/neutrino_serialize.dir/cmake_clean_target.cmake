file(REMOVE_RECURSE
  "libneutrino_serialize.a"
)
