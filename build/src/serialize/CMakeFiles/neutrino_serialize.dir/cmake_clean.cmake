file(REMOVE_RECURSE
  "CMakeFiles/neutrino_serialize.dir/asn1_runtime.cpp.o"
  "CMakeFiles/neutrino_serialize.dir/asn1_runtime.cpp.o.d"
  "libneutrino_serialize.a"
  "libneutrino_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neutrino_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
