# CMake generated Testfile for 
# Source directory: /root/repo/src/s1ap
# Build directory: /root/repo/build/src/s1ap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
