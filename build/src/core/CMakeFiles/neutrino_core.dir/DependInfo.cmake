
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/neutrino_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/neutrino_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/cpf.cpp" "src/core/CMakeFiles/neutrino_core.dir/cpf.cpp.o" "gcc" "src/core/CMakeFiles/neutrino_core.dir/cpf.cpp.o.d"
  "/root/repo/src/core/cta.cpp" "src/core/CMakeFiles/neutrino_core.dir/cta.cpp.o" "gcc" "src/core/CMakeFiles/neutrino_core.dir/cta.cpp.o.d"
  "/root/repo/src/core/frontend.cpp" "src/core/CMakeFiles/neutrino_core.dir/frontend.cpp.o" "gcc" "src/core/CMakeFiles/neutrino_core.dir/frontend.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/neutrino_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/neutrino_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serialize/CMakeFiles/neutrino_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
