file(REMOVE_RECURSE
  "libneutrino_core.a"
)
