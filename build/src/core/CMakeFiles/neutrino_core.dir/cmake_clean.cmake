file(REMOVE_RECURSE
  "CMakeFiles/neutrino_core.dir/cost_model.cpp.o"
  "CMakeFiles/neutrino_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/neutrino_core.dir/cpf.cpp.o"
  "CMakeFiles/neutrino_core.dir/cpf.cpp.o.d"
  "CMakeFiles/neutrino_core.dir/cta.cpp.o"
  "CMakeFiles/neutrino_core.dir/cta.cpp.o.d"
  "CMakeFiles/neutrino_core.dir/frontend.cpp.o"
  "CMakeFiles/neutrino_core.dir/frontend.cpp.o.d"
  "CMakeFiles/neutrino_core.dir/system.cpp.o"
  "CMakeFiles/neutrino_core.dir/system.cpp.o.d"
  "libneutrino_core.a"
  "libneutrino_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neutrino_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
