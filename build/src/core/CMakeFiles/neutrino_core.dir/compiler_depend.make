# Empty compiler generated dependencies file for neutrino_core.
# This may be replaced when dependencies are built.
