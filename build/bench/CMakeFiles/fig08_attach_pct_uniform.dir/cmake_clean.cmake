file(REMOVE_RECURSE
  "CMakeFiles/fig08_attach_pct_uniform.dir/fig08_attach_pct_uniform.cpp.o"
  "CMakeFiles/fig08_attach_pct_uniform.dir/fig08_attach_pct_uniform.cpp.o.d"
  "fig08_attach_pct_uniform"
  "fig08_attach_pct_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_attach_pct_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
