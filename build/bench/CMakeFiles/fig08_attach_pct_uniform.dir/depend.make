# Empty dependencies file for fig08_attach_pct_uniform.
# This may be replaced when dependencies are built.
