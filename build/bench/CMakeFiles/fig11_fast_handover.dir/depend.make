# Empty dependencies file for fig11_fast_handover.
# This may be replaced when dependencies are built.
