file(REMOVE_RECURSE
  "CMakeFiles/fig11_fast_handover.dir/fig11_fast_handover.cpp.o"
  "CMakeFiles/fig11_fast_handover.dir/fig11_fast_handover.cpp.o.d"
  "fig11_fast_handover"
  "fig11_fast_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fast_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
