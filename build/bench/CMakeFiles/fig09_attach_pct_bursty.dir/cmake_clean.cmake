file(REMOVE_RECURSE
  "CMakeFiles/fig09_attach_pct_bursty.dir/fig09_attach_pct_bursty.cpp.o"
  "CMakeFiles/fig09_attach_pct_bursty.dir/fig09_attach_pct_bursty.cpp.o.d"
  "fig09_attach_pct_bursty"
  "fig09_attach_pct_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_attach_pct_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
