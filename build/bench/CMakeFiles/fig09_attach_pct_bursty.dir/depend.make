# Empty dependencies file for fig09_attach_pct_bursty.
# This may be replaced when dependencies are built.
