# Empty dependencies file for fig14_vr.
# This may be replaced when dependencies are built.
