file(REMOVE_RECURSE
  "CMakeFiles/fig14_vr.dir/fig14_vr.cpp.o"
  "CMakeFiles/fig14_vr.dir/fig14_vr.cpp.o.d"
  "fig14_vr"
  "fig14_vr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
