# Empty compiler generated dependencies file for fig16_logging_overhead.
# This may be replaced when dependencies are built.
