# Empty dependencies file for fig18_serialization_speedup.
# This may be replaced when dependencies are built.
