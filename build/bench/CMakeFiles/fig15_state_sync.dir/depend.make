# Empty dependencies file for fig15_state_sync.
# This may be replaced when dependencies are built.
