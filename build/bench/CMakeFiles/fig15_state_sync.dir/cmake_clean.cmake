file(REMOVE_RECURSE
  "CMakeFiles/fig15_state_sync.dir/fig15_state_sync.cpp.o"
  "CMakeFiles/fig15_state_sync.dir/fig15_state_sync.cpp.o.d"
  "fig15_state_sync"
  "fig15_state_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_state_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
