# Empty dependencies file for fig07_service_request_pct.
# This may be replaced when dependencies are built.
