file(REMOVE_RECURSE
  "CMakeFiles/fig07_service_request_pct.dir/fig07_service_request_pct.cpp.o"
  "CMakeFiles/fig07_service_request_pct.dir/fig07_service_request_pct.cpp.o.d"
  "fig07_service_request_pct"
  "fig07_service_request_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_service_request_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
