
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_service_request_pct.cpp" "bench/CMakeFiles/fig07_service_request_pct.dir/fig07_service_request_pct.cpp.o" "gcc" "bench/CMakeFiles/fig07_service_request_pct.dir/fig07_service_request_pct.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/neutrino_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/neutrino_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
