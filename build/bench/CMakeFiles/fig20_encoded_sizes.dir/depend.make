# Empty dependencies file for fig20_encoded_sizes.
# This may be replaced when dependencies are built.
