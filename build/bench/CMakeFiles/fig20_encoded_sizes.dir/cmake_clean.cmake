file(REMOVE_RECURSE
  "CMakeFiles/fig20_encoded_sizes.dir/fig20_encoded_sizes.cpp.o"
  "CMakeFiles/fig20_encoded_sizes.dir/fig20_encoded_sizes.cpp.o.d"
  "fig20_encoded_sizes"
  "fig20_encoded_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_encoded_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
