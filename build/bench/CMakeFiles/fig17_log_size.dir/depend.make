# Empty dependencies file for fig17_log_size.
# This may be replaced when dependencies are built.
