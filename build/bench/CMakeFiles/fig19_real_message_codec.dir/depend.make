# Empty dependencies file for fig19_real_message_codec.
# This may be replaced when dependencies are built.
