file(REMOVE_RECURSE
  "CMakeFiles/fig19_real_message_codec.dir/fig19_real_message_codec.cpp.o"
  "CMakeFiles/fig19_real_message_codec.dir/fig19_real_message_codec.cpp.o.d"
  "fig19_real_message_codec"
  "fig19_real_message_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_real_message_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
