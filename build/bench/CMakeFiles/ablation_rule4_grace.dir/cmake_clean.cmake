file(REMOVE_RECURSE
  "CMakeFiles/ablation_rule4_grace.dir/ablation_rule4_grace.cpp.o"
  "CMakeFiles/ablation_rule4_grace.dir/ablation_rule4_grace.cpp.o.d"
  "ablation_rule4_grace"
  "ablation_rule4_grace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rule4_grace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
