# Empty dependencies file for ablation_rule4_grace.
# This may be replaced when dependencies are built.
