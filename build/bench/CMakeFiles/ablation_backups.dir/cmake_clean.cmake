file(REMOVE_RECURSE
  "CMakeFiles/ablation_backups.dir/ablation_backups.cpp.o"
  "CMakeFiles/ablation_backups.dir/ablation_backups.cpp.o.d"
  "ablation_backups"
  "ablation_backups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
