# Empty dependencies file for ablation_backups.
# This may be replaced when dependencies are built.
