file(REMOVE_RECURSE
  "CMakeFiles/fig13_selfdriving.dir/fig13_selfdriving.cpp.o"
  "CMakeFiles/fig13_selfdriving.dir/fig13_selfdriving.cpp.o.d"
  "fig13_selfdriving"
  "fig13_selfdriving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_selfdriving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
