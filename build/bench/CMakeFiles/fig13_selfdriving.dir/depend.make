# Empty dependencies file for fig13_selfdriving.
# This may be replaced when dependencies are built.
