# Empty dependencies file for micro_codecs_gbench.
# This may be replaced when dependencies are built.
