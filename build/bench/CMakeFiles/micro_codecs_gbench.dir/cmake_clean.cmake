file(REMOVE_RECURSE
  "CMakeFiles/micro_codecs_gbench.dir/micro_codecs_gbench.cpp.o"
  "CMakeFiles/micro_codecs_gbench.dir/micro_codecs_gbench.cpp.o.d"
  "micro_codecs_gbench"
  "micro_codecs_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_codecs_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
