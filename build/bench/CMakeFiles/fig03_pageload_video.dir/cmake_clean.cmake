file(REMOVE_RECURSE
  "CMakeFiles/fig03_pageload_video.dir/fig03_pageload_video.cpp.o"
  "CMakeFiles/fig03_pageload_video.dir/fig03_pageload_video.cpp.o.d"
  "fig03_pageload_video"
  "fig03_pageload_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pageload_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
