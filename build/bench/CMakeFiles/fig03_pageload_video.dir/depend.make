# Empty dependencies file for fig03_pageload_video.
# This may be replaced when dependencies are built.
