file(REMOVE_RECURSE
  "CMakeFiles/fig10_handover_failure.dir/fig10_handover_failure.cpp.o"
  "CMakeFiles/fig10_handover_failure.dir/fig10_handover_failure.cpp.o.d"
  "fig10_handover_failure"
  "fig10_handover_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_handover_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
