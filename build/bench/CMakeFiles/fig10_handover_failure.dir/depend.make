# Empty dependencies file for fig10_handover_failure.
# This may be replaced when dependencies are built.
