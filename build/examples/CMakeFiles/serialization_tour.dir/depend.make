# Empty dependencies file for serialization_tour.
# This may be replaced when dependencies are built.
