file(REMOVE_RECURSE
  "CMakeFiles/serialization_tour.dir/serialization_tour.cpp.o"
  "CMakeFiles/serialization_tour.dir/serialization_tour.cpp.o.d"
  "serialization_tour"
  "serialization_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialization_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
