file(REMOVE_RECURSE
  "CMakeFiles/edge_drive.dir/edge_drive.cpp.o"
  "CMakeFiles/edge_drive.dir/edge_drive.cpp.o.d"
  "edge_drive"
  "edge_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
