# Empty compiler generated dependencies file for edge_drive.
# This may be replaced when dependencies are built.
