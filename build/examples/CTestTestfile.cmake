# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failover_demo "/root/repo/build/examples/failover_demo")
set_tests_properties(example_failover_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_serialization_tour "/root/repo/build/examples/serialization_tour")
set_tests_properties(example_serialization_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tracegen "/root/repo/build/examples/tracegen" "bursty" "1000" "100" "/root/repo/build/examples/smoke_trace.csv")
set_tests_properties(example_tracegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
