// Foundation types: strong ids, SimTime, Result/Status, TaggedUnion.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/clock.hpp"
#include "common/hashing.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "serialize/schema.hpp"

namespace neutrino {
namespace {

TEST(StrongId, DistinctTypesDistinctValues) {
  const UeId ue{7};
  const CpfId cpf{7};
  EXPECT_EQ(ue.value(), cpf.value());
  static_assert(!std::is_same_v<UeId, CpfId>);
  static_assert(!std::is_convertible_v<UeId, CpfId>);
}

TEST(StrongId, OrderingAndHashing) {
  EXPECT_LT(UeId{1}, UeId{2});
  std::unordered_map<UeId, int> map;
  map[UeId{5}] = 42;
  EXPECT_EQ(map.at(UeId{5}), 42);
  EXPECT_FALSE(map.contains(UeId{6}));
}

TEST(SimTime, UnitsAndArithmetic) {
  EXPECT_EQ(SimTime::seconds(1), SimTime::milliseconds(1000));
  EXPECT_EQ(SimTime::milliseconds(1), SimTime::microseconds(1000));
  EXPECT_EQ((SimTime::seconds(2) - SimTime::milliseconds(500)).ms(), 1500.0);
  EXPECT_EQ((SimTime::microseconds(3) * 4).us(), 12.0);
  EXPECT_LT(SimTime::nanoseconds(1), SimTime::microseconds(1));
}

TEST(LogicalClock, StrictlyIncreasing) {
  LogicalClock clock;
  auto a = clock.tick();
  auto b = clock.tick();
  EXPECT_LT(a, b);
  EXPECT_EQ(clock.last(), b);
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(*ok, 7);

  Result<int> bad(make_error(StatusCode::kNotFound, "nope"));
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.status().message(), "nope");
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.is_ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 9);
}

TEST(Hashing, StableAcrossCalls) {
  EXPECT_EQ(fnv1a64("neutrino"), fnv1a64("neutrino"));
  EXPECT_NE(fnv1a64("neutrino"), fnv1a64("neutrinO"));
  EXPECT_NE(mix64(1), mix64(2));
  // Known FNV-1a vector: empty string hashes to the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(TaggedUnion, IndexAndAccess) {
  ser::TaggedUnion<std::uint32_t, std::string> u;
  EXPECT_FALSE(u.has_value());
  EXPECT_EQ(u.index(), decltype(u)::npos);

  u = std::uint32_t{42};
  EXPECT_EQ(u.index(), 0u);
  EXPECT_TRUE(u.holds<std::uint32_t>());
  EXPECT_EQ(u.get<std::uint32_t>(), 42u);

  u = std::string("hello");
  EXPECT_EQ(u.index(), 1u);
  EXPECT_EQ(u.get<std::string>(), "hello");
}

TEST(TaggedUnion, VisitActiveAndEmplaceByIndex) {
  ser::TaggedUnion<std::uint32_t, std::string> u;
  bool visited = false;
  u.visit_active([&](auto&) { visited = true; });
  EXPECT_FALSE(visited);  // empty union: no visit

  ASSERT_TRUE(u.emplace_by_index(1, [](auto& alt) {
    if constexpr (std::is_same_v<std::decay_t<decltype(alt)>, std::string>) {
      alt = "via-index";
    }
  }));
  EXPECT_EQ(u.get<std::string>(), "via-index");
  EXPECT_FALSE(u.emplace_by_index(5, [](auto&) {}));  // out of range
}

TEST(TaggedUnion, EqualityIncludesAlternative) {
  using U = ser::TaggedUnion<std::uint32_t, std::uint16_t>;
  EXPECT_EQ(U(std::uint32_t{1}), U(std::uint32_t{1}));
  EXPECT_FALSE(U(std::uint32_t{1}) == U(std::uint16_t{1}));
  EXPECT_FALSE(U(std::uint32_t{1}) == U(std::uint32_t{2}));
}

TEST(NaturalBounds, MatchTypeWidths) {
  constexpr auto b8 = ser::natural_bounds<std::uint8_t>();
  EXPECT_EQ(b8.lo, 0);
  EXPECT_EQ(b8.hi, 255);
  constexpr auto b16 = ser::natural_bounds<std::uint16_t>();
  EXPECT_EQ(b16.hi, 65535);
  constexpr auto b64 = ser::natural_bounds<std::uint64_t>();
  EXPECT_EQ(b64.hi, std::numeric_limits<std::int64_t>::max());
}

}  // namespace
}  // namespace neutrino
