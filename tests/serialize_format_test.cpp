// Wire-format-level properties: FlatBuffers buffer mechanics (vtable
// sharing, alignment, svtable layout), the asn1c-style runtime descriptors,
// and the top-level PDU envelope.
#include <gtest/gtest.h>

#include <cstring>

#include "s1ap/samples.hpp"
#include "serialize/asn1_interp.hpp"
#include "serialize/codec.hpp"

namespace neutrino {
namespace {

// ---- FlatBuffers buffer mechanics -----------------------------------------

TEST(FlatBufFormat, RootOffsetPointsToTable) {
  const auto buf =
      ser::encode(ser::WireFormat::kFlatBuffers, s1ap::samples::tai());
  ASSERT_GE(buf.size(), 8u);
  std::uint32_t root;
  std::memcpy(&root, buf.data(), 4);
  ASSERT_LT(root, buf.size());
  // The table begins with an soffset to a vtable whose first u16 is the
  // vtable's own size (>= 4, even).
  std::int32_t soffset;
  std::memcpy(&soffset, buf.data() + root, 4);
  const auto vt_pos = static_cast<std::int64_t>(root) - soffset;
  ASSERT_GE(vt_pos, 0);
  ASSERT_LT(vt_pos, static_cast<std::int64_t>(buf.size()));
  std::uint16_t vt_size;
  std::memcpy(&vt_size, buf.data() + vt_pos, 2);
  EXPECT_GE(vt_size, 4u);
  EXPECT_EQ(vt_size % 2, 0u);
}

TEST(FlatBufFormat, ScalarFieldsAreNaturallyAligned) {
  // Walk the root table of a message with u64 fields and check alignment.
  const auto msg = s1ap::samples::initial_context_setup();
  const auto buf = ser::encode(ser::WireFormat::kFlatBuffers, msg);
  auto root = ser::FlatTableRef::root(BytesView(buf));
  ASSERT_TRUE(root.is_ok());
  // Slot 2/3 belong to the nested AMBR table (u64s); find the AMBR table.
  const std::uint32_t ambr_field = root->field_pos(2);
  ASSERT_NE(ambr_field, 0u);
  const std::uint32_t ambr_pos = root->indirect(ambr_field);
  auto ambr = root->table_at(ambr_pos);
  const std::uint32_t dl_pos = ambr.field_pos(0);
  ASSERT_NE(dl_pos, 0u);
  EXPECT_EQ(dl_pos % 8, 0u) << "u64 field must be 8-byte aligned";
  EXPECT_EQ(ser::FlatTableRef::read_scalar<std::uint64_t>(BytesView(buf),
                                                          dl_pos),
            msg.ambr.dl_bps);
}

TEST(FlatBufFormat, IdenticalTablesShareOneVtable) {
  // Three identical-shape E-RAB items: their tables must reference the
  // same vtable position (dedup), so size grows by data only.
  s1ap::ErabSetupResponse two;
  two.mme_ue_s1ap_id = 1;
  two.enb_ue_s1ap_id = 2;
  two.erabs_setup = {{.erab_id = 1, .transport = s1ap::samples::tunnel(1)},
                     {.erab_id = 2, .transport = s1ap::samples::tunnel(2)}};
  const auto buf = ser::encode(ser::WireFormat::kFlatBuffers, two);
  auto root = ser::FlatTableRef::root(BytesView(buf));
  ASSERT_TRUE(root.is_ok());
  const std::uint32_t vec_field = root->field_pos(2);
  ASSERT_NE(vec_field, 0u);
  const std::uint32_t vec_pos = root->indirect(vec_field);
  const auto count =
      ser::FlatTableRef::read_scalar<std::uint32_t>(BytesView(buf), vec_pos);
  ASSERT_EQ(count, 2u);
  std::int64_t vtables[2];
  for (std::uint32_t i = 0; i < 2; ++i) {
    const std::uint32_t slot = vec_pos + 4 + i * 4;
    const std::uint32_t table_pos = root->indirect(slot);
    std::int32_t soffset;
    std::memcpy(&soffset, buf.data() + table_pos, 4);
    vtables[i] = static_cast<std::int64_t>(table_pos) - soffset;
  }
  EXPECT_EQ(vtables[0], vtables[1]);
}

TEST(FlatBufFormat, AbsentOptionalHasZeroSlot) {
  s1ap::InitialUeMessage msg = s1ap::samples::initial_ue_message();
  msg.s_tmsi.reset();
  const auto buf = ser::encode(ser::WireFormat::kFlatBuffers, msg);
  auto root = ser::FlatTableRef::root(BytesView(buf));
  ASSERT_TRUE(root.is_ok());
  EXPECT_EQ(root->field_pos(5), 0u);  // s_tmsi slot
  EXPECT_NE(root->field_pos(1), 0u);  // nas_pdu present
}

TEST(FlatBufFormat, SvtableSavingsAreExactlyVtablePlusSoffset) {
  // Single-scalar union member: the wrapper table costs a 6-byte vtable +
  // 4-byte soffset (+ padding); svtable removes all of it.
  s1ap::GtpTunnel tunnel = s1ap::samples::tunnel(1);
  const auto standard = ser::encode(ser::WireFormat::kFlatBuffers, tunnel);
  const auto optimized =
      ser::encode(ser::WireFormat::kOptimizedFlatBuffers, tunnel);
  EXPECT_GE(standard.size() - optimized.size(), 10u);
  // Both decode to the same message.
  auto a = ser::decode<s1ap::GtpTunnel>(ser::WireFormat::kFlatBuffers,
                                        standard);
  auto b = ser::decode<s1ap::GtpTunnel>(
      ser::WireFormat::kOptimizedFlatBuffers, optimized);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(*a, *b);
}

TEST(FlatBufFormat, AccessorChecksumStableAcrossModes) {
  const auto msg = s1ap::samples::initial_context_setup();
  const auto std_buf = ser::encode(ser::WireFormat::kFlatBuffers, msg);
  const auto opt_buf =
      ser::encode(ser::WireFormat::kOptimizedFlatBuffers, msg);
  const auto a = ser::FlatBufAccessor::access_all<
      s1ap::InitialContextSetupRequest>(std_buf, ser::FlatBufMode::kStandard);
  const auto b = ser::FlatBufAccessor::access_all<
      s1ap::InitialContextSetupRequest>(opt_buf, ser::FlatBufMode::kOptimized);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  // Same logical content: the checksum over all fields must agree.
  EXPECT_EQ(*a, *b);
}

// ---- asn1c-style runtime descriptors ---------------------------------------

TEST(Asn1Interp, DescriptorMirrorsSchema) {
  const auto& type = ser::asn1i::rt_type<s1ap::InitialUeMessage>();
  ASSERT_EQ(type.fields.size(), 6u);
  EXPECT_EQ(type.fields[0].kind, ser::asn1i::Kind::kInt);
  EXPECT_EQ(type.fields[1].kind, ser::asn1i::Kind::kBytes);
  EXPECT_EQ(type.fields[2].kind, ser::asn1i::Kind::kStruct);
  ASSERT_NE(type.fields[2].nested, nullptr);
  EXPECT_EQ(type.fields[2].nested->name, "TAI");
  EXPECT_EQ(type.fields[5].kind, ser::asn1i::Kind::kOptional);
  ASSERT_NE(type.fields[5].element, nullptr);
  EXPECT_EQ(type.fields[5].element->kind, ser::asn1i::Kind::kStruct);
}

TEST(Asn1Interp, DescriptorIsBuiltOnce) {
  const auto& a = ser::asn1i::rt_type<s1ap::Tai>();
  const auto& b = ser::asn1i::rt_type<s1ap::Tai>();
  EXPECT_EQ(&a, &b);
}

TEST(Asn1Interp, ChoiceDescriptorsEnumerateAlternatives) {
  const auto& type = ser::asn1i::rt_type<s1ap::GtpTunnel>();
  ASSERT_EQ(type.fields.size(), 2u);
  EXPECT_EQ(type.fields[0].kind, ser::asn1i::Kind::kChoice);
  EXPECT_EQ(type.fields[0].alternatives.size(), 2u);
  EXPECT_EQ(type.fields[0].alternatives[0].kind, ser::asn1i::Kind::kInt);
  EXPECT_EQ(type.fields[0].alternatives[1].kind, ser::asn1i::Kind::kBytes);
}

// ---- PDU envelope -----------------------------------------------------------

TEST(S1apPdu, NamesAndDispatch) {
  s1ap::S1apPdu pdu(s1ap::samples::service_request());
  EXPECT_EQ(s1ap::message_name(pdu), "ServiceRequest");
  EXPECT_TRUE(pdu.is<s1ap::ServiceRequest>());
  EXPECT_FALSE(pdu.is<s1ap::AttachRequest>());
  EXPECT_EQ(pdu.get<s1ap::ServiceRequest>().s_tmsi.m_tmsi, 0xdeadbeefu);
}

TEST(S1apPdu, EmptyEnvelopeNamed) {
  s1ap::S1apPdu pdu;
  EXPECT_EQ(s1ap::message_name(pdu), "empty");
}

}  // namespace
}  // namespace neutrino
