// Application models (§6.6): deadline streams and startup latency.
#include <gtest/gtest.h>

#include "apps/deadline_app.hpp"

namespace neutrino::apps {
namespace {

using Outage = core::Frontend::Outage;

TEST(DeadlineApp, NoOutagesNoMisses) {
  DeadlineApp app;
  EXPECT_EQ(app.missed_deadlines({}), 0u);
}

TEST(DeadlineApp, OutageShorterThanBudgetIsFree) {
  DeadlineApp app;  // 100 ms budget
  const std::vector<Outage> outages = {
      {SimTime::seconds(1), SimTime::seconds(1) + SimTime::milliseconds(99)}};
  EXPECT_EQ(app.missed_deadlines(outages), 0u);
}

TEST(DeadlineApp, MissesScaleWithExposure) {
  DeadlineApp app;  // 1 kHz, 100 ms budget
  // 600 ms outage: packets in the first 500 ms wait > 100 ms.
  const std::vector<Outage> outages = {
      {SimTime::seconds(1), SimTime::seconds(1) + SimTime::milliseconds(600)}};
  EXPECT_EQ(app.missed_deadlines(outages), 500u);
}

TEST(DeadlineApp, VrBudgetIsTighter) {
  DeadlineApp car{.deadline = DeadlineApp::kSelfDrivingDeadline(),
                  .radio_gap = {}};
  DeadlineApp vr{.deadline = DeadlineApp::kVrDeadline(), .radio_gap = {}};
  const std::vector<Outage> outages = {
      {SimTime::seconds(0), SimTime::milliseconds(50)}};
  EXPECT_EQ(car.missed_deadlines(outages), 0u);   // 50 ms < 100 ms budget
  EXPECT_EQ(vr.missed_deadlines(outages), 34u);   // (50-16) ms at 1 kHz
}

TEST(DeadlineApp, MultipleOutagesAccumulate) {
  DeadlineApp app;
  std::vector<Outage> outages;
  for (int i = 0; i < 5; ++i) {
    const SimTime start = SimTime::seconds(i);
    outages.push_back({start, start + SimTime::milliseconds(300)});
  }
  EXPECT_EQ(app.missed_deadlines(outages), 5u * 200u);
}

TEST(StartupModel, AddsFixedFetchOnTopOfPct) {
  StartupModel model;
  EXPECT_DOUBLE_EQ(model.video_startup_ms(10.0), 130.0);
  EXPECT_DOUBLE_EQ(model.page_load_ms(10.0), 460.0);
  // The control-plane term dominates under saturation — the Fig. 3 effect.
  EXPECT_GT(model.video_startup_ms(5000.0) / model.video_startup_ms(1.0),
            30.0);
}

}  // namespace
}  // namespace neutrino::apps
