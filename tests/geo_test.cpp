// Geohash and consistent-hash-ring properties.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "common/rng.hpp"
#include "geo/geohash.hpp"
#include "geo/hash_ring.hpp"
#include "geo/region_plan.hpp"

namespace neutrino::geo {
namespace {

TEST(Geohash, EncodeDecodeRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const LatLon p{rng.next_double() * 180.0 - 90.0,
                   rng.next_double() * 360.0 - 180.0};
    const std::string hash = geohash_encode(p, 12);
    EXPECT_TRUE(geohash_decode(hash).contains(p)) << hash;
  }
}

TEST(Geohash, ParentRegionIsFourTimesLarger) {
  const LatLon p{31.47, 74.41};  // Lahore
  const std::string h = geohash_encode(p, 8);
  const GeoCell child = geohash_decode(h);
  const GeoCell parent = geohash_decode(parent_region(h));
  const double child_area = (child.lat_hi - child.lat_lo) *
                            (child.lon_hi - child.lon_lo);
  const double parent_area = (parent.lat_hi - parent.lat_lo) *
                             (parent.lon_hi - parent.lon_lo);
  EXPECT_DOUBLE_EQ(parent_area, 4.0 * child_area);
  EXPECT_TRUE(parent.contains(p));
}

TEST(Geohash, SiblingsShareParent) {
  // Four points in the four quadrants of one parent cell must agree on
  // every prefix character.
  const std::string parent = "120311";
  const GeoCell cell = geohash_decode(parent);
  const double lat_q = (cell.lat_hi - cell.lat_lo) / 4;
  const double lon_q = (cell.lon_hi - cell.lon_lo) / 4;
  std::set<std::string> child_hashes;
  for (int dx = 0; dx < 2; ++dx) {
    for (int dy = 0; dy < 2; ++dy) {
      const LatLon p{cell.lat_lo + lat_q * (1 + 2 * dy),
                     cell.lon_lo + lon_q * (1 + 2 * dx)};
      EXPECT_EQ(geohash_encode(p, 6), parent);
      child_hashes.insert(geohash_encode(p, 7));
      EXPECT_EQ(std::string(parent_region(geohash_encode(p, 7))), parent);
    }
  }
  EXPECT_EQ(child_hashes.size(), 4u);  // the four distinct sub-quadrants
}

TEST(Geohash, PrecisionPrefixStability) {
  // A longer hash always extends the shorter hash of the same point.
  const LatLon p{-33.86, 151.21};  // Sydney
  std::string previous;
  for (int precision = 1; precision <= 15; ++precision) {
    const std::string h = geohash_encode(p, precision);
    EXPECT_TRUE(h.starts_with(previous));
    previous = h;
  }
}

TEST(Geohash, NeighborStepsExactlyOnePitch) {
  // Stepping one cell in each compass direction lands on a cell that
  // shares the edge exactly (the pitch is a dyadic fraction of the
  // lat/lon span, so center + pitch is representable without drift).
  const std::string h = geohash_encode({31.47, 74.41}, 8);
  const GeoCell cell = geohash_decode(h);
  const auto east = geohash_neighbor(h, 0, 1);
  ASSERT_TRUE(east.has_value());
  const GeoCell east_cell = geohash_decode(*east);
  EXPECT_DOUBLE_EQ(east_cell.lon_lo, cell.lon_hi);
  EXPECT_DOUBLE_EQ(east_cell.lat_lo, cell.lat_lo);
  const auto north = geohash_neighbor(h, 1, 0);
  ASSERT_TRUE(north.has_value());
  const GeoCell north_cell = geohash_decode(*north);
  EXPECT_DOUBLE_EQ(north_cell.lat_lo, cell.lat_hi);
  // Inverse steps round-trip to the original hash.
  EXPECT_EQ(geohash_neighbor(*east, 0, -1).value(), h);
  EXPECT_EQ(geohash_neighbor(*north, -1, 0).value(), h);
}

TEST(Geohash, NeighborRingSymmetryOverFullGrid) {
  // Property over every cell of the full precision-3 world grid (8x8):
  // ring membership is symmetric (b in ring(a) <=> a in ring(b)) — the
  // premise of FastHandover's ring replication — and ring sizes are
  // exactly 8 / 5 / 3 for interior / world-edge / world-corner cells.
  std::vector<std::string> all;
  for (char a = '0'; a <= '3'; ++a)
    for (char b = '0'; b <= '3'; ++b)
      for (char c = '0'; c <= '3'; ++c) all.push_back({a, b, c});
  ASSERT_EQ(all.size(), 64u);
  std::map<std::string, std::set<std::string>> rings;
  for (const std::string& h : all) {
    const auto ring = neighbor_ring(h);
    rings[h] = std::set<std::string>(ring.begin(), ring.end());
    ASSERT_EQ(rings[h].size(), ring.size()) << "duplicate neighbor of " << h;
    const GeoCell cell = geohash_decode(h);
    const int lat_edges =
        (cell.lat_lo == -90.0 ? 1 : 0) + (cell.lat_hi == 90.0 ? 1 : 0);
    const int lon_edges =
        (cell.lon_lo == -180.0 ? 1 : 0) + (cell.lon_hi == 180.0 ? 1 : 0);
    const std::size_t expect =
        static_cast<std::size_t>((3 - lat_edges) * (3 - lon_edges) - 1);
    EXPECT_EQ(ring.size(), expect) << h;
  }
  for (const std::string& a : all) {
    for (const std::string& b : rings[a]) {
      EXPECT_TRUE(rings[b].contains(a))
          << a << " lists " << b << " but not vice versa";
    }
  }
}

TEST(RegionPlan, RingNeighborsSymmetricWithCornerEdgeCounts) {
  // One level-2 quad's grandparent area carves into a 4x4 level-1 grid;
  // in-plan rings must be symmetric with 3/5/8 members at plan corners /
  // edges / interior.
  const GeoCell area = geohash_decode("01");
  const RegionPlan plan = RegionPlan::from_area(area, 4);
  ASSERT_EQ(plan.regions().size(), 16u);
  std::map<std::size_t, int> size_histogram;
  for (const PlannedRegion& r : plan.regions()) {
    EXPECT_EQ(plan.index_of(r.geohash), std::optional{r.region_index});
    const auto ring = plan.ring_neighbors(r.region_index);
    ++size_histogram[ring.size()];
    for (const std::uint32_t n : ring) {
      const auto back = plan.ring_neighbors(n);
      EXPECT_TRUE(std::find(back.begin(), back.end(), r.region_index) !=
                  back.end())
          << r.geohash << " -> " << n << " not symmetric";
      // Neighbors are geometrically adjacent: centers one pitch apart.
      const GeoCell& a = r.cell;
      const GeoCell& b = plan.regions()[n].cell;
      EXPECT_LE(std::abs(a.center().lat - b.center().lat),
                (a.lat_hi - a.lat_lo) * 1.0001);
      EXPECT_LE(std::abs(a.center().lon - b.center().lon),
                (a.lon_hi - a.lon_lo) * 1.0001);
    }
  }
  EXPECT_EQ(size_histogram[3], 4);  // corners
  EXPECT_EQ(size_histogram[5], 8);  // edges
  EXPECT_EQ(size_histogram[8], 4);  // interior
  EXPECT_FALSE(plan.index_of("0000").has_value());  // not in this plan
}

TEST(HashRing, LookupIsDeterministic) {
  ConsistentHashRing<int> ring;
  for (int node = 0; node < 5; ++node) {
    ring.add(node, static_cast<std::uint64_t>(node) + 1000);
  }
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(ring.lookup(key), ring.lookup(key));
  }
}

TEST(HashRing, DistributionIsRoughlyBalanced) {
  ConsistentHashRing<int> ring(64);
  constexpr int kNodes = 5;
  for (int node = 0; node < kNodes; ++node) {
    ring.add(node, static_cast<std::uint64_t>(node) + 1000);
  }
  std::array<int, kNodes> counts{};
  constexpr int kKeys = 20000;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    counts[static_cast<std::size_t>(ring.lookup(key))]++;
  }
  for (const int c : counts) {
    EXPECT_GT(c, kKeys / kNodes / 2);
    EXPECT_LT(c, kKeys / kNodes * 2);
  }
}

TEST(HashRing, RemovalOnlyRemapsRemovedNodesKeys) {
  // Consistent hashing's defining property: removing one node must not
  // move keys between surviving nodes.
  ConsistentHashRing<int> ring(32);
  for (int node = 0; node < 6; ++node) {
    ring.add(node, static_cast<std::uint64_t>(node) + 77);
  }
  std::vector<int> before(5000);
  for (std::uint64_t key = 0; key < before.size(); ++key) {
    before[key] = ring.lookup(key);
  }
  ring.remove(3);
  for (std::uint64_t key = 0; key < before.size(); ++key) {
    const int now = ring.lookup(key);
    if (before[key] != 3) {
      EXPECT_EQ(now, before[key]) << "key " << key << " moved needlessly";
    } else {
      EXPECT_NE(now, 3);
    }
  }
}

TEST(HashRing, SuccessorsAreDistinctAndStartAtOwner) {
  ConsistentHashRing<int> ring;
  for (int node = 0; node < 8; ++node) {
    ring.add(node, static_cast<std::uint64_t>(node) * 13 + 5);
  }
  for (std::uint64_t key = 0; key < 200; ++key) {
    const auto succ = ring.successors(key, 3);
    ASSERT_EQ(succ.size(), 3u);
    EXPECT_EQ(succ[0], ring.lookup(key));
    const std::set<int> distinct(succ.begin(), succ.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

TEST(HashRing, SuccessorsCappedByNodeCount) {
  ConsistentHashRing<int> ring;
  ring.add(1, 100);
  ring.add(2, 200);
  const auto succ = ring.successors(42, 5);
  EXPECT_EQ(succ.size(), 2u);
}

}  // namespace
}  // namespace neutrino::geo
