// Geohash and consistent-hash-ring properties.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "geo/geohash.hpp"
#include "geo/hash_ring.hpp"

namespace neutrino::geo {
namespace {

TEST(Geohash, EncodeDecodeRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const LatLon p{rng.next_double() * 180.0 - 90.0,
                   rng.next_double() * 360.0 - 180.0};
    const std::string hash = geohash_encode(p, 12);
    EXPECT_TRUE(geohash_decode(hash).contains(p)) << hash;
  }
}

TEST(Geohash, ParentRegionIsFourTimesLarger) {
  const LatLon p{31.47, 74.41};  // Lahore
  const std::string h = geohash_encode(p, 8);
  const GeoCell child = geohash_decode(h);
  const GeoCell parent = geohash_decode(parent_region(h));
  const double child_area = (child.lat_hi - child.lat_lo) *
                            (child.lon_hi - child.lon_lo);
  const double parent_area = (parent.lat_hi - parent.lat_lo) *
                             (parent.lon_hi - parent.lon_lo);
  EXPECT_DOUBLE_EQ(parent_area, 4.0 * child_area);
  EXPECT_TRUE(parent.contains(p));
}

TEST(Geohash, SiblingsShareParent) {
  // Four points in the four quadrants of one parent cell must agree on
  // every prefix character.
  const std::string parent = "120311";
  const GeoCell cell = geohash_decode(parent);
  const double lat_q = (cell.lat_hi - cell.lat_lo) / 4;
  const double lon_q = (cell.lon_hi - cell.lon_lo) / 4;
  std::set<std::string> child_hashes;
  for (int dx = 0; dx < 2; ++dx) {
    for (int dy = 0; dy < 2; ++dy) {
      const LatLon p{cell.lat_lo + lat_q * (1 + 2 * dy),
                     cell.lon_lo + lon_q * (1 + 2 * dx)};
      EXPECT_EQ(geohash_encode(p, 6), parent);
      child_hashes.insert(geohash_encode(p, 7));
      EXPECT_EQ(std::string(parent_region(geohash_encode(p, 7))), parent);
    }
  }
  EXPECT_EQ(child_hashes.size(), 4u);  // the four distinct sub-quadrants
}

TEST(Geohash, PrecisionPrefixStability) {
  // A longer hash always extends the shorter hash of the same point.
  const LatLon p{-33.86, 151.21};  // Sydney
  std::string previous;
  for (int precision = 1; precision <= 15; ++precision) {
    const std::string h = geohash_encode(p, precision);
    EXPECT_TRUE(h.starts_with(previous));
    previous = h;
  }
}

TEST(HashRing, LookupIsDeterministic) {
  ConsistentHashRing<int> ring;
  for (int node = 0; node < 5; ++node) {
    ring.add(node, static_cast<std::uint64_t>(node) + 1000);
  }
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(ring.lookup(key), ring.lookup(key));
  }
}

TEST(HashRing, DistributionIsRoughlyBalanced) {
  ConsistentHashRing<int> ring(64);
  constexpr int kNodes = 5;
  for (int node = 0; node < kNodes; ++node) {
    ring.add(node, static_cast<std::uint64_t>(node) + 1000);
  }
  std::array<int, kNodes> counts{};
  constexpr int kKeys = 20000;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    counts[static_cast<std::size_t>(ring.lookup(key))]++;
  }
  for (const int c : counts) {
    EXPECT_GT(c, kKeys / kNodes / 2);
    EXPECT_LT(c, kKeys / kNodes * 2);
  }
}

TEST(HashRing, RemovalOnlyRemapsRemovedNodesKeys) {
  // Consistent hashing's defining property: removing one node must not
  // move keys between surviving nodes.
  ConsistentHashRing<int> ring(32);
  for (int node = 0; node < 6; ++node) {
    ring.add(node, static_cast<std::uint64_t>(node) + 77);
  }
  std::vector<int> before(5000);
  for (std::uint64_t key = 0; key < before.size(); ++key) {
    before[key] = ring.lookup(key);
  }
  ring.remove(3);
  for (std::uint64_t key = 0; key < before.size(); ++key) {
    const int now = ring.lookup(key);
    if (before[key] != 3) {
      EXPECT_EQ(now, before[key]) << "key " << key << " moved needlessly";
    } else {
      EXPECT_NE(now, 3);
    }
  }
}

TEST(HashRing, SuccessorsAreDistinctAndStartAtOwner) {
  ConsistentHashRing<int> ring;
  for (int node = 0; node < 8; ++node) {
    ring.add(node, static_cast<std::uint64_t>(node) * 13 + 5);
  }
  for (std::uint64_t key = 0; key < 200; ++key) {
    const auto succ = ring.successors(key, 3);
    ASSERT_EQ(succ.size(), 3u);
    EXPECT_EQ(succ[0], ring.lookup(key));
    const std::set<int> distinct(succ.begin(), succ.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

TEST(HashRing, SuccessorsCappedByNodeCount) {
  ConsistentHashRing<int> ring;
  ring.add(1, 100);
  ring.add(2, 200);
  const auto succ = ring.successors(42, 5);
  EXPECT_EQ(succ.size(), 2u);
}

}  // namespace
}  // namespace neutrino::geo
