// Structure-aware codec fuzzing: random schema-valid messages built
// through the field visitor itself (every field, optional, vector, and
// CHOICE alternative reachable from S1AP-PDU gets exercised), checked for
//
//   * roundtrip identity on every wire format,
//   * cross-codec agreement (asn1per vs flatbuf vs svtable decode to the
//     same logical value),
//   * clean failure on truncated and bit-flipped buffers for the formats
//     that bounds-check their input.
//
// The ctest run uses a small deterministic corpus; check.sh raises
// NEUTRINO_FUZZ_ITERS in the ASan stage where memory errors surface.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <type_traits>

#include "common/rng.hpp"
#include "s1ap/pdu.hpp"
#include "s1ap/samples.hpp"
#include "serialize/codec.hpp"

namespace neutrino {
namespace {

int fuzz_iters(int dflt) {
  if (const char* s = std::getenv("NEUTRINO_FUZZ_ITERS")) {
    const int n = std::atoi(s);
    if (n > 0) return n;
  }
  return dflt;
}

/// visit_fields visitor that fills a message with random but schema-valid
/// content. Bounded scalars draw inside their IntBounds (with the bounds
/// themselves over-sampled — that is where length determinants and varint
/// widths flip); unions pick a uniformly random alternative.
class RandomFiller {
 public:
  explicit RandomFiller(Rng& rng) : rng_(&rng) {}

  template <typename T>
  void operator()(int /*id*/, std::string_view /*name*/, T& value) {
    fill(value);
  }
  template <typename T>
  void operator()(int /*id*/, std::string_view /*name*/, T& value,
                  ser::IntBounds bounds) {
    fill_scalar(value, bounds);
  }

  template <typename T>
  void fill(T& value) {
    if constexpr (ser::is_optional<T>::value) {
      if (rng_->next_bool(0.25)) {
        value.reset();
      } else {
        value.emplace();
        fill(*value);
      }
    } else if constexpr (ser::is_tagged_union<T>::value) {
      value.emplace_by_index(rng_->next_below(T::kAlternativeCount),
                             [&](auto& alt) { fill(alt); });
    } else if constexpr (ser::is_std_vector<T>::value) {
      value.clear();
      value.resize(rng_->next_below(4));
      for (auto& elem : value) fill(elem);
    } else if constexpr (ser::BytesField<T>) {
      value.resize(rng_->next_below(25));
      for (auto& b : value) b = static_cast<Byte>(rng_->next_u64());
    } else if constexpr (ser::StringField<T>) {
      value.resize(rng_->next_below(13));
      for (auto& c : value) {
        c = static_cast<char>('a' + rng_->next_below(26));
      }
    } else if constexpr (ser::FieldStruct<T>) {
      value.visit_fields(*this);
    } else {
      fill_scalar(value, ser::natural_bounds<T>());
    }
  }

 private:
  template <typename T>
  void fill_scalar(T& value, ser::IntBounds bounds) {
    if constexpr (std::is_same_v<T, bool>) {
      value = rng_->next_bool(0.5);
    } else {
      const double sel = rng_->next_double();
      std::int64_t v;
      if (sel < 0.1) {
        v = bounds.lo;
      } else if (sel < 0.2) {
        v = bounds.hi;
      } else {
        v = bounds.lo +
            static_cast<std::int64_t>(rng_->next_below(bounds.range()));
      }
      value = static_cast<T>(v);
    }
  }

  Rng* rng_;
};

s1ap::S1apPdu random_pdu(Rng& rng) {
  s1ap::S1apPdu pdu;
  RandomFiller filler(rng);
  pdu.visit_fields(filler);
  return pdu;
}

// Bounds-checking formats, mirrored from codec_robustness_test: the
// FlatBuffers family trusts its input by design, so corruption runs only
// cover the sequential decoders.
constexpr ser::WireFormat kCheckedFormats[] = {
    ser::WireFormat::kAsn1Per, ser::WireFormat::kProtobuf,
    ser::WireFormat::kFastCdr, ser::WireFormat::kLcm,
    ser::WireFormat::kFlexBuffers,
};

TEST(CodecFuzz, RandomPdusRoundtripOnEveryFormat) {
  Rng rng(0x5eed0001);
  const int iters = fuzz_iters(150);
  for (int i = 0; i < iters; ++i) {
    const auto pdu = random_pdu(rng);
    for (const auto format : ser::kAllWireFormats) {
      const Bytes wire = ser::encode(format, pdu);
      auto decoded = ser::decode<s1ap::S1apPdu>(format, wire);
      ASSERT_TRUE(decoded.is_ok())
          << ser::to_string(format) << " iter " << i;
      ASSERT_EQ(*decoded, pdu) << ser::to_string(format) << " iter " << i;
    }
  }
}

TEST(CodecFuzz, CrossCodecDecodesAgree) {
  // The paper's apples-to-apples size comparison (Fig. 19) only holds if
  // every codec carries the *same* logical value: decode asn1per, flatbuf,
  // and the svtable variant and require field-level agreement.
  Rng rng(0x5eed0002);
  const int iters = fuzz_iters(150);
  for (int i = 0; i < iters; ++i) {
    const auto pdu = random_pdu(rng);
    auto per = ser::decode<s1ap::S1apPdu>(
        ser::WireFormat::kAsn1Per,
        ser::encode(ser::WireFormat::kAsn1Per, pdu));
    auto fb = ser::decode<s1ap::S1apPdu>(
        ser::WireFormat::kFlatBuffers,
        ser::encode(ser::WireFormat::kFlatBuffers, pdu));
    auto svt = ser::decode<s1ap::S1apPdu>(
        ser::WireFormat::kOptimizedFlatBuffers,
        ser::encode(ser::WireFormat::kOptimizedFlatBuffers, pdu));
    ASSERT_TRUE(per.is_ok() && fb.is_ok() && svt.is_ok()) << "iter " << i;
    ASSERT_EQ(*per, *fb) << "iter " << i;
    ASSERT_EQ(*fb, *svt) << "iter " << i;
  }
}

TEST(CodecFuzz, TruncatedRandomPdusFailCleanly) {
  Rng rng(0x5eed0003);
  const int iters = fuzz_iters(150);
  for (int i = 0; i < iters; ++i) {
    const auto pdu = random_pdu(rng);
    for (const auto format : kCheckedFormats) {
      const Bytes wire = ser::encode(format, pdu);
      if (wire.empty()) continue;
      const std::size_t keep = rng.next_below(wire.size());
      auto result = ser::decode<s1ap::S1apPdu>(
          format, BytesView(wire.data(), keep));
      // Termination without a crash or OOB read is the contract (run
      // under ASan); a prefix that parses must not masquerade as the
      // whole original message.
      if (result.is_ok()) {
        EXPECT_NE(*result, pdu)
            << ser::to_string(format) << " iter " << i << " keep " << keep;
      }
    }
  }
}

TEST(CodecFuzz, BitFlippedRandomPdusNeverCrash) {
  Rng rng(0x5eed0004);
  const int iters = fuzz_iters(150);
  for (int i = 0; i < iters; ++i) {
    const auto pdu = random_pdu(rng);
    for (const auto format : kCheckedFormats) {
      Bytes wire = ser::encode(format, pdu);
      if (wire.empty()) continue;
      const std::size_t pos = rng.next_below(wire.size());
      wire[pos] ^= static_cast<Byte>(1u << rng.next_below(8));
      auto result = ser::decode<s1ap::S1apPdu>(format, wire);
      (void)result;  // any terminating outcome is fine; ASan judges memory
    }
  }
}

TEST(CodecFuzz, FillerReachesEveryUnionAlternative) {
  // Guard the generator itself: across the corpus every S1AP-PDU body
  // alternative must appear, otherwise the fuzzer silently lost coverage.
  Rng rng(0x5eed0005);
  std::vector<int> seen(s1ap::MessageBody::kAlternativeCount, 0);
  const int iters = fuzz_iters(150) * 4;
  for (int i = 0; i < iters; ++i) {
    const auto pdu = random_pdu(rng);
    ASSERT_TRUE(pdu.body.has_value());
    ++seen[pdu.body.index()];
  }
  for (std::size_t alt = 0; alt < seen.size(); ++alt) {
    EXPECT_GT(seen[alt], 0) << "alternative " << alt << " never generated";
  }
}

}  // namespace
}  // namespace neutrino
