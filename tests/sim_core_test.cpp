// Simulation-core primitives: InlineTask small-buffer behaviour, the
// event loop's allocation profile on the hot path, and MsgPool recycling.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/msg_pool.hpp"
#include "sim/event_loop.hpp"

// Global allocation counter for the zero-allocation guarantees. The
// default operator new[] forwards here, so array news are counted too.
namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

// GCC can't see that this new/delete pair is internally consistent
// (malloc in, free out) and warns at inlined call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace neutrino {
namespace {

// --- InlineTask -------------------------------------------------------------

TEST(InlineTask, SmallCapturesStoreInline) {
  int hits = 0;
  std::uint64_t pad[4] = {1, 2, 3, 4};  // 8 + 32 = 40 bytes, under the 48 cap
  sim::InlineTask t([&hits, pad] { hits += static_cast<int>(pad[0]); });
  EXPECT_TRUE(t.stores_inline());
  EXPECT_TRUE(static_cast<bool>(t));
  t();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, OversizedCapturesFallBackToHeap) {
  int hits = 0;
  std::uint64_t pad[8] = {};  // 64-byte capture: over the inline cap
  sim::InlineTask t([&hits, pad] { hits += 1 + static_cast<int>(pad[0]); });
  EXPECT_FALSE(t.stores_inline());
  t();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTask, MoveTransfersOwnershipAndDestroysCapture) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  {
    sim::InlineTask a([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(alive.expired());  // capture holds the last reference
    sim::InlineTask b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_FALSE(alive.expired());
    sim::InlineTask c;
    c = std::move(b);
    c();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());  // destructor ran exactly once
}

TEST(InlineTask, SizeBudget) {
  static_assert(sizeof(sim::InlineTask) <= 64);
  static_assert(sim::InlineTask::kInlineCapacity == 48);
}

// --- EventLoop allocation profile -------------------------------------------

// The ISSUE acceptance bar: zero heap allocations per event for callbacks
// within the 48-byte inline capacity, once the loop's own vectors have
// warmed up. Heap-only config makes the steady state exact (the wheel's
// per-bucket vectors warm per bucket index, which depends on the time
// pattern; the 4-ary heap's storage is a single vector).
TEST(EventLoopAlloc, SteadyStateScheduleDispatchIsAllocationFree) {
  sim::EventLoop::Config cfg;
  cfg.use_timer_wheel = false;
  sim::EventLoop loop(cfg);
  std::uint64_t sink = 0;
  std::uint64_t pad[3] = {1, 2, 3};  // 32-byte capture, inline

  constexpr int kBatch = 512;
  const auto round = [&](std::int64_t base) {
    for (int i = 0; i < kBatch; ++i) {
      loop.schedule_at(SimTime::nanoseconds(base + kBatch - i),
                       [&sink, pad] { sink += pad[0]; });
    }
    loop.run();
  };

  round(0);  // warm-up: grows the heap vector to kBatch capacity
  const std::uint64_t before = g_alloc_count;
  round(1'000'000);
  EXPECT_EQ(g_alloc_count, before);
  EXPECT_EQ(sink, 2u * kBatch);
  EXPECT_EQ(loop.executed(), 2u * kBatch);
}

TEST(EventLoopAlloc, MsgPoolSteadyStateIsAllocationFree) {
  core::MsgPool pool;
  {
    auto warm = pool.acquire(core::Msg{});
    (void)warm.take();
  }
  const std::uint64_t before = g_alloc_count;
  for (int i = 0; i < 1000; ++i) {
    core::Msg m;
    m.proc_seq = static_cast<std::uint64_t>(i);
    auto h = pool.acquire(std::move(m));
    core::Msg back = h.take();
    ASSERT_EQ(back.proc_seq, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(g_alloc_count, before);
  EXPECT_EQ(pool.reused(), 1000u);
}

// --- EventLoop semantics ----------------------------------------------------

TEST(EventLoopCore, EqualTimesDispatchInScheduleOrder) {
  for (const bool wheel : {false, true}) {
    sim::EventLoop::Config cfg;
    cfg.use_timer_wheel = wheel;
    sim::EventLoop loop(cfg);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      loop.schedule_at(SimTime::microseconds(5), [&order, i] {
        order.push_back(i);
      });
    }
    loop.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopCore, RunUntilStopsAtHorizonAndAdvancesNow) {
  sim::EventLoop loop;
  int ran = 0;
  loop.schedule_at(SimTime::milliseconds(1), [&ran] { ++ran; });
  loop.schedule_at(SimTime::milliseconds(2), [&ran] { ++ran; });  // boundary
  loop.schedule_at(SimTime::milliseconds(3), [&ran] { ++ran; });  // beyond
  loop.run_until(SimTime::milliseconds(2));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.now().ns(), SimTime::milliseconds(2).ns());
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(ran, 3);
}

TEST(EventLoopCore, CallbacksCanScheduleIntoPastTicksOfTheWheel) {
  // An event that schedules another event at its own timestamp: the tick
  // was already drained, so the insert must route to the heap and still
  // run before anything later.
  sim::EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime::microseconds(10), [&] {
    order.push_back(0);
    loop.schedule_at(SimTime::microseconds(10), [&] { order.push_back(1); });
  });
  loop.schedule_at(SimTime::microseconds(500), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventLoopCore, FarFutureEventsBeyondWheelSpanStillOrder) {
  sim::EventLoop::Config cfg;
  cfg.wheel_granularity_ns = 1'000;
  cfg.wheel_slots = 4;  // 4 us span: almost everything overflows to heap
  sim::EventLoop loop(cfg);
  std::vector<int> order;
  loop.schedule_at(SimTime::milliseconds(10), [&] { order.push_back(2); });
  loop.schedule_at(SimTime::microseconds(2), [&] { order.push_back(0); });
  loop.schedule_at(SimTime::microseconds(100), [&] { order.push_back(1); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// --- MsgPool ----------------------------------------------------------------

TEST(MsgPool, RoundTripPreservesMessage) {
  core::MsgPool pool;
  core::Msg m;
  m.kind = core::MsgKind::kAttachRequest;
  m.ue = UeId{42};
  m.proc_seq = 9;
  auto h = pool.acquire(std::move(m));
  ASSERT_TRUE(static_cast<bool>(h));
  EXPECT_EQ(h->proc_seq, 9u);
  core::Msg back = h.take();
  EXPECT_FALSE(static_cast<bool>(h));
  EXPECT_EQ(back.kind, core::MsgKind::kAttachRequest);
  EXPECT_EQ(back.ue.value(), 42u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(MsgPool, SlotsAreRecycledWithinOneBlock) {
  core::MsgPool pool;
  for (int i = 0; i < 10'000; ++i) {
    auto h = pool.acquire(core::Msg{});
    (void)h.take();
  }
  EXPECT_EQ(pool.capacity(), 256u);  // one block serves sequential traffic
  EXPECT_EQ(pool.acquired(), 10'000u);
  EXPECT_EQ(pool.reused(), 9'999u);
}

TEST(MsgPool, GrowsByBlocksUnderConcurrentHandles) {
  core::MsgPool pool;
  std::vector<core::MsgPool::Handle> held;
  for (int i = 0; i < 600; ++i) held.push_back(pool.acquire(core::Msg{}));
  EXPECT_EQ(pool.capacity(), 768u);  // three 256-slot blocks
  EXPECT_EQ(pool.outstanding(), 600u);
  for (auto& h : held) (void)h.take();
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(MsgPool, DroppedHandleReturnsSlotWhilePoolLives) {
  // A Handle destroyed without take() while its pool is still alive — a
  // crashed node's ServerPool dropping queued jobs — returns the slot:
  // without this, every crash permanently leaked the in-service messages
  // (caught by the chaos checker's pool-conservation invariant).
  core::MsgPool pool;
  {
    auto h = pool.acquire(core::Msg{});
  }  // dropped without take(), pool alive
  EXPECT_EQ(pool.outstanding(), 0u);
  auto h2 = pool.acquire(core::Msg{});
  (void)h2.take();
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.reused(), 1u);  // the dropped slot went back on the list
}

TEST(MsgPool, HandleOutlivingPoolAbandonsSafely) {
  // The bench-teardown ordering: the pool dies while an undelivered event
  // still holds a Handle. The destructor must not touch the dead pool.
  auto pool = std::make_unique<core::MsgPool>();
  auto h = pool->acquire(core::Msg{});
  pool.reset();  // pool gone first
}  // h destroyed here: must not crash

TEST(MsgPool, MoveAssignReleasesOverwrittenSlot) {
  core::MsgPool pool;
  auto a = pool.acquire(core::Msg{});
  auto b = pool.acquire(core::Msg{});
  EXPECT_EQ(pool.outstanding(), 2u);
  a = std::move(b);  // a's original slot is released, not stranded
  EXPECT_EQ(pool.outstanding(), 1u);
  (void)a.take();
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(MsgPool, HandleMoveTransfersSlot) {
  core::MsgPool pool;
  auto a = pool.acquire(core::Msg{});
  auto b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  (void)b.take();
  EXPECT_EQ(pool.outstanding(), 0u);
}

}  // namespace
}  // namespace neutrino
