// System-level invariants: replica placement, log boundedness, and
// end-to-end determinism of the simulation.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "trace/workload.hpp"

namespace neutrino::core {
namespace {

struct Harness {
  explicit Harness(CorePolicy policy, TopologyConfig topo = {}) {
    proto.ack_timeout = SimTime::milliseconds(500);
    proto.log_scan_interval = SimTime::milliseconds(100);
    system =
        std::make_unique<System>(loop, policy, topo, proto, costs, metrics);
  }
  sim::EventLoop loop;
  FixedCostModel costs{SimTime::microseconds(10)};
  ProtocolConfig proto;
  Metrics metrics;
  std::unique_ptr<System> system;
};

TEST(Placement, BackupsLiveOutsideThePrimarysRegion) {
  // §4.3: replicas are taken from the level-2 ring, which excludes the
  // level-1 members — a region-wide failure cannot take out every copy.
  TopologyConfig topo;
  topo.l1_per_l2 = 4;
  Harness h(neutrino_policy(), topo);
  for (std::uint64_t u = 0; u < 500; ++u) {
    const UeId ue{u};
    const auto home = static_cast<std::uint32_t>(u % 4);
    const CpfId primary = h.system->primary_cpf_for(ue, home);
    EXPECT_EQ(topo.region_of_cpf(primary), home);
    const auto backups = h.system->backups_for(ue, home);
    ASSERT_EQ(backups.size(), 2u);
    for (const CpfId b : backups) {
      EXPECT_NE(topo.region_of_cpf(b), home) << "ue " << u;
      EXPECT_NE(b, primary);
    }
  }
}

TEST(Placement, SingleRegionFallbackExcludesPrimary) {
  Harness h(neutrino_policy());
  for (std::uint64_t u = 0; u < 500; ++u) {
    const UeId ue{u};
    const CpfId primary = h.system->primary_cpf_for(ue, 0);
    for (const CpfId b : h.system->backups_for(ue, 0)) {
      EXPECT_NE(b, primary) << "ue " << u;
    }
  }
}

TEST(Placement, StableAcrossSystemInstances) {
  // preattach() in one process run must agree with routing in another:
  // placement may depend only on ids and topology.
  TopologyConfig topo;
  topo.l1_per_l2 = 2;
  Harness a(neutrino_policy(), topo);
  Harness b(neutrino_policy(), topo);
  for (std::uint64_t u = 0; u < 200; ++u) {
    EXPECT_EQ(a.system->primary_cpf_for(UeId{u}, 1),
              b.system->primary_cpf_for(UeId{u}, 1));
    EXPECT_EQ(a.system->backups_for(UeId{u}, 1),
              b.system->backups_for(UeId{u}, 1));
  }
}

TEST(LogBoundedness, DrainedSystemHasEmptyLogs) {
  // §4.2.3: every fully-ACKed procedure is pruned; once the workload
  // drains, nothing may linger in any CTA log.
  TopologyConfig topo;
  topo.l1_per_l2 = 2;
  Harness h(neutrino_policy(), topo);
  trace::ProcedureMix mix{.service_request = 0.5, .handover = 0.2};
  trace::UniformWorkload w(5'000.0, SimTime::milliseconds(500), mix, 11);
  const auto t = w.generate(2'000, topo.total_regions());
  for (std::uint64_t u = 0; u < 2'000; ++u) {
    h.system->frontend().preattach(UeId{u},
                                   static_cast<std::uint32_t>(u % 2));
  }
  trace::replay(*h.system, t);
  h.loop.run_until(SimTime::seconds(30));

  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  for (int r = 0; r < topo.total_regions(); ++r) {
    EXPECT_EQ(h.system->cta(static_cast<std::uint32_t>(r)).log_messages(), 0u)
        << "region " << r;
    EXPECT_EQ(h.system->cta(static_cast<std::uint32_t>(r)).log_bytes(), 0u);
  }
}

TEST(Determinism, IdenticalRunsProduceIdenticalMetrics) {
  auto run = [] {
    TopologyConfig topo;
    topo.l1_per_l2 = 2;
    Harness h(neutrino_policy(), topo);
    trace::ProcedureMix mix{.service_request = 0.6, .handover = 0.2};
    trace::UniformWorkload w(8'000.0, SimTime::milliseconds(400), mix, 3);
    const auto t = w.generate(3'000, topo.total_regions());
    for (std::uint64_t u = 0; u < 3'000; ++u) {
      h.system->frontend().preattach(UeId{u},
                                     static_cast<std::uint32_t>(u % 2));
    }
    h.loop.schedule_at(SimTime::milliseconds(200),
                       [&] { h.system->crash_cpf(CpfId{3}); });
    trace::replay(*h.system, t);
    h.loop.run_until(SimTime::seconds(20));
    return std::tuple{h.metrics.procedures_completed, h.metrics.reattaches,
                      h.metrics.replays, h.metrics.checkpoints_sent,
                      h.metrics.checkpoint_acks, h.metrics.log_appends,
                      h.metrics.log_prunes,
                      h.metrics.pct_for(ProcedureType::kServiceRequest)
                          .mean()};
  };
  EXPECT_EQ(run(), run());
}

TEST(Saturation, OfferedLoadBeyondCapacityStillCompletesEventually) {
  // Liveness under a finite overload burst: everything completes once the
  // arrivals stop, and consistency holds throughout.
  Harness h(neutrino_policy());
  trace::BurstyWorkload w(5'000, SimTime::milliseconds(10), 5);
  trace::replay(*h.system, w.generate());
  h.loop.run_until(SimTime::seconds(120));
  EXPECT_EQ(h.metrics.procedures_completed, 5'000u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  EXPECT_TRUE(h.loop.empty());
}

}  // namespace
}  // namespace neutrino::core
