// Chaos harness: the four Fig. 5 recovery scenarios expressed as chaos
// Schedules and checked by the online invariant checker on the legacy
// and 2-shard runtimes; generator/shrinker/artifact unit coverage; and a
// teeth check proving a planted bug is caught and shrunk to a minimal
// reproducer.
#include <gtest/gtest.h>

#include "chaos/generator.hpp"
#include "chaos/json_reader.hpp"
#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"
#include "core/system.hpp"

namespace neutrino::chaos {
namespace {

const core::FixedCostModel& costs() {
  static const core::FixedCostModel model{SimTime::microseconds(10)};
  return model;
}

/// Placement oracle over the scenario topology (4 regions x 5 CPFs).
core::System& oracle() {
  static sim::EventLoop loop;
  static core::Metrics metrics;
  static Schedule shape = [] {
    Schedule s;
    s.regions = 4;
    return s;
  }();
  static core::System system(loop, core::neutrino_policy(),
                             make_topology(shape), chaos_proto(), costs(),
                             metrics);
  return system;
}

Schedule base_schedule() {
  Schedule s;
  s.regions = 4;
  s.cpfs_per_region = 5;
  s.ues = 4;  // one per region
  s.horizon = SimTime::seconds(4);
  return s;
}

Event proc_event(SimTime at, std::uint64_t ue, core::ProcedureType type,
                 std::uint32_t target = 0) {
  Event e;
  e.at = at;
  e.kind = EventKind::kProcedure;
  e.ue = ue;
  e.proc = type;
  e.target_region = target;
  return e;
}

Event crash_event(SimTime at, CpfId cpf) {
  Event e;
  e.at = at;
  e.kind = EventKind::kCrashCpf;
  e.cpf = cpf.value();
  return e;
}

/// Run on legacy, sharded-2x1 and sharded-2x2; assert zero violations
/// everywhere and bit-identical outcomes across thread counts.
RunOutcome run_everywhere(const Schedule& s) {
  RunConfig legacy;
  RunOutcome lo = run_schedule(s, legacy, costs());
  EXPECT_EQ(lo.violation_count, 0u)
      << (lo.violations.empty() ? "" : lo.violations.front());

  RunConfig two;
  two.use_sharded = true;
  two.shards = 2;
  two.threads = 1;
  RunOutcome t1 = run_schedule(s, two, costs());
  EXPECT_EQ(t1.violation_count, 0u)
      << (t1.violations.empty() ? "" : t1.violations.front());

  two.threads = 2;
  RunOutcome t2 = run_schedule(s, two, costs());
  EXPECT_EQ(t2.violation_count, 0u)
      << (t2.violations.empty() ? "" : t2.violations.front());

  // Fixed shard count => bit-identical regardless of worker threads.
  EXPECT_EQ(t1.started, t2.started);
  EXPECT_EQ(t1.completed, t2.completed);
  EXPECT_EQ(t1.lost, t2.lost);
  EXPECT_EQ(t1.recoveries, t2.recoveries);
  EXPECT_EQ(t1.fast_handovers, t2.fast_handovers);
  EXPECT_EQ(t1.state_fetches, t2.state_fetches);

  // 2-shard partitioning must not change what happened, only where.
  EXPECT_EQ(lo.started, t1.started);
  EXPECT_EQ(lo.completed, t1.completed);
  EXPECT_EQ(lo.recoveries, t1.recoveries);
  EXPECT_EQ(lo.fast_handovers, t1.fast_handovers);
  EXPECT_EQ(lo.state_fetches, t1.state_fetches);
  return lo;
}

// --- Fig. 5 scenario 1: primary fails between procedures; the promoted
// replica already holds the full state --------------------------------------
TEST(ChaosScenarios, BackupUpToDate) {
  Schedule s = base_schedule();
  const CpfId primary = oracle().primary_cpf_for(UeId{0}, 0);
  s.events.push_back(crash_event(SimTime::milliseconds(10), primary));
  s.events.push_back(proc_event(SimTime::milliseconds(100), 0,
                                core::ProcedureType::kServiceRequest));
  const RunOutcome out = run_everywhere(s);
  EXPECT_GE(out.completed, 1u);
  EXPECT_EQ(out.lost, 0u);
}

// --- Fig. 5 scenario 2: primary dies mid-procedure; the CTA replays the
// logged messages on a promoted backup ---------------------------------------
TEST(ChaosScenarios, MidProcedureReplay) {
  Schedule s = base_schedule();
  const CpfId primary = oracle().primary_cpf_for(UeId{0}, 0);
  s.events.push_back(proc_event(SimTime::milliseconds(10), 0,
                                core::ProcedureType::kServiceRequest));
  s.events.push_back(crash_event(
      SimTime::milliseconds(10) + SimTime::microseconds(40), primary));
  const RunOutcome out = run_everywhere(s);
  std::uint64_t recovered = 0;
  for (const auto& [k, v] : out.recoveries) recovered += v;
  EXPECT_GE(recovered, 1u);  // the crash hit an in-flight procedure
  EXPECT_EQ(out.lost, 0u);
}

// --- Fig. 5 scenario 3: the whole replica set dies mid-procedure; no
// usable replica remains, the CTA commands Re-Attach -------------------------
TEST(ChaosScenarios, WholeReplicaSetLost) {
  Schedule s = base_schedule();
  const SimTime hit = SimTime::milliseconds(10) + SimTime::microseconds(40);
  s.events.push_back(proc_event(SimTime::milliseconds(10), 0,
                                core::ProcedureType::kServiceRequest));
  s.events.push_back(crash_event(hit, oracle().primary_cpf_for(UeId{0}, 0)));
  for (const CpfId b : oracle().backups_for(UeId{0}, 0)) {
    s.events.push_back(crash_event(hit, b));
  }
  const RunOutcome out = run_everywhere(s);
  EXPECT_GE(out.recoveries.count("reattach") + out.recoveries.count("hole"),
            1u);
  EXPECT_EQ(out.lost, 0u);  // the re-attach completes within the drain
}

// --- Fig. 5 scenario 4: the CTA itself dies; UEs re-attach through the
// sibling region's CTA (same shard block, so valid under 2 shards) ----------
TEST(ChaosScenarios, CtaCrashReroutes) {
  Schedule s = base_schedule();
  s.events.push_back(proc_event(SimTime::milliseconds(10), 0,
                                core::ProcedureType::kServiceRequest));
  Event cta;
  cta.at = SimTime::milliseconds(10) + SimTime::microseconds(12);
  cta.kind = EventKind::kCrashCta;
  cta.region = 0;  // reroute target 1 shares the {0,1} shard block
  s.events.push_back(cta);
  const RunOutcome out = run_everywhere(s);
  EXPECT_GE(out.completed, 1u);
  EXPECT_EQ(out.lost, 0u);
}

// --- pending_handover_ (§4.3 slow path) across crash windows ----------------
// A FastHandover arrival whose target replica is stale parks in the CPF's
// pending_handover_ map while a StateFetch runs (§4.2.4 rule 3). These
// regressions collide crash windows with that park/fetch window and pin
// the accounting: a leaked park leaves the UE mid-procedure forever
// (lost > 0 at the horizon); a stale unpark after a crash (the epoch
// guard on the fetch-timeout timer) would serve from dead state.

Event restore_event(SimTime at, CpfId cpf) {
  Event e;
  e.at = at;
  e.kind = EventKind::kRestoreCpf;
  e.cpf = cpf.value();
  return e;
}

/// Crash the target-region primary before the UE's service request (so it
/// misses the checkpoint), restore it empty, then hand the UE over to it:
/// the arrival cannot match the context and must park + fetch.
Schedule stale_target_handover() {
  Schedule s = base_schedule();
  const CpfId target = oracle().primary_cpf_for(UeId{0}, 1);
  s.events.push_back(crash_event(SimTime::milliseconds(5), target));
  s.events.push_back(proc_event(SimTime::milliseconds(10), 0,
                                core::ProcedureType::kServiceRequest));
  s.events.push_back(restore_event(SimTime::milliseconds(100), target));
  s.events.push_back(proc_event(SimTime::milliseconds(200), 0,
                                core::ProcedureType::kHandover, 1));
  return s;
}

TEST(ChaosPendingHandover, StaleTargetParksThenFetchCompletes) {
  const RunOutcome out = run_everywhere(stale_target_handover());
  EXPECT_GT(out.state_fetches, 0u) << "handover never took the slow path";
  EXPECT_GE(out.completed, 2u);  // the service request and the handover
  EXPECT_EQ(out.lost, 0u);
}

// Every CPF the parked fetch could be waiting on dies inside the window
// (swept across offsets to hit in-flight-fetch and parked interleavings):
// the fetch-timeout fallback must unpark the UE into a Re-Attach rather
// than leak it.
TEST(ChaosPendingHandover, FetchHolderDiesWhileParked) {
  const CpfId target = oracle().primary_cpf_for(UeId{0}, 1);
  const CpfId source = oracle().primary_cpf_for(UeId{0}, 0);
  for (const std::int64_t offset_us : {20ll, 120ll, 400ll}) {
    Schedule s = stale_target_handover();
    const SimTime hit =
        SimTime::milliseconds(200) + SimTime::microseconds(offset_us);
    if (source != target) s.events.push_back(crash_event(hit, source));
    for (const CpfId b : oracle().backups_for(UeId{0}, 0)) {
      if (b != target && b != source) s.events.push_back(crash_event(hit, b));
    }
    const RunOutcome out = run_everywhere(s);
    EXPECT_EQ(out.lost, 0u) << "leaked park at offset " << offset_us << "us";
  }
}

// The parked CPF itself dies inside the window: the crash clears the park
// and the CTA's failure handling recovers the in-flight handover; the
// already-armed fetch-timeout timer must notice the epoch bump and stay
// quiet instead of commanding a bogus Re-Attach after recovery.
TEST(ChaosPendingHandover, TargetCrashWhileParked) {
  const CpfId target = oracle().primary_cpf_for(UeId{0}, 1);
  for (const std::int64_t offset_us : {20ll, 120ll, 400ll}) {
    Schedule s = stale_target_handover();
    s.events.push_back(crash_event(
        SimTime::milliseconds(200) + SimTime::microseconds(offset_us),
        target));
    const RunOutcome out = run_everywhere(s);
    EXPECT_EQ(out.lost, 0u) << "leaked park at offset " << offset_us << "us";
  }
}

// --- Randomized schedules: fixed seeds, all runtimes clean ------------------
TEST(ChaosGenerator, FixedSeedsCleanOnAllRuntimes) {
  GeneratorConfig gen;
  gen.regions = 4;
  gen.ues = 12;
  gen.shards = 2;
  gen.actions = 60;
  gen.failure_bursts = 4;
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const Schedule s = generate(gen, seed, &oracle());
    EXPECT_FALSE(s.events.empty());
    run_everywhere(s);
  }
}

TEST(ChaosGenerator, DeterministicForSeed) {
  GeneratorConfig gen;
  gen.regions = 4;
  gen.shards = 2;
  const Schedule a = generate(gen, 99, &oracle());
  const Schedule b = generate(gen, 99, &oracle());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].ue, b.events[i].ue);
    EXPECT_EQ(a.events[i].cpf, b.events[i].cpf);
  }
}

TEST(ChaosGenerator, RespectsShardBlocks) {
  GeneratorConfig gen;
  gen.regions = 4;
  gen.shards = 2;  // blocks {0,1} and {2,3}
  gen.actions = 400;
  for (const std::uint64_t seed : {3ull, 4ull, 5ull}) {
    const Schedule s = generate(gen, seed, &oracle());
    for (const Event& e : s.events) {
      if (e.kind == EventKind::kProcedure &&
          e.proc == core::ProcedureType::kHandover) {
        const std::uint32_t home = static_cast<std::uint32_t>(e.ue) % 4;
        EXPECT_EQ(home / 2, e.target_region / 2)
            << "handover crosses a shard block";
      }
      if (e.kind == EventKind::kIdleMove) {
        const std::uint32_t home = static_cast<std::uint32_t>(e.ue) % 4;
        EXPECT_EQ(home / 2, e.target_region / 2);
      }
      if (e.kind == EventKind::kCrashCta) {
        EXPECT_EQ(e.region / 2, ((e.region + 1) % 4) / 2)
            << "CTA reroute crosses a shard block";
      }
    }
  }
}

// --- Artifact round-trip ----------------------------------------------------
TEST(ChaosArtifact, JsonRoundTrip) {
  Schedule s = base_schedule();
  s.seed = 1234;
  s.events.push_back(proc_event(SimTime::microseconds(5), 3,
                                core::ProcedureType::kHandover, 2));
  Event move;
  move.at = SimTime::microseconds(7);
  move.kind = EventKind::kIdleMove;
  move.ue = 1;
  move.target_region = 1;
  s.events.push_back(move);
  Event ddn;
  ddn.at = SimTime::microseconds(9);
  ddn.kind = EventKind::kTriggerDownlink;
  ddn.ue = 2;
  s.events.push_back(ddn);
  s.events.push_back(crash_event(SimTime::microseconds(11), CpfId{17}));
  Event restore;
  restore.at = SimTime::milliseconds(90);
  restore.kind = EventKind::kRestoreCpf;
  restore.cpf = 17;
  s.events.push_back(restore);
  Event cta;
  cta.at = SimTime::milliseconds(100);
  cta.kind = EventKind::kCrashCta;
  cta.region = 2;
  s.events.push_back(cta);

  core::FaultInjection faults;
  faults.cpf_stale_serves = 3;
  const std::string text = to_json({s, faults}).dump(2);
  const auto back = artifact_from_string(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->schedule.seed, s.seed);
  EXPECT_EQ(back->schedule.regions, s.regions);
  EXPECT_EQ(back->schedule.ues, s.ues);
  EXPECT_EQ(back->schedule.horizon, s.horizon);
  EXPECT_EQ(back->faults.cpf_stale_serves, 3u);
  ASSERT_EQ(back->schedule.events.size(), s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(back->schedule.events[i].at, s.events[i].at);
    EXPECT_EQ(back->schedule.events[i].kind, s.events[i].kind);
    EXPECT_EQ(back->schedule.events[i].ue, s.events[i].ue);
    EXPECT_EQ(back->schedule.events[i].proc, s.events[i].proc);
    EXPECT_EQ(back->schedule.events[i].target_region,
              s.events[i].target_region);
    EXPECT_EQ(back->schedule.events[i].cpf, s.events[i].cpf);
    EXPECT_EQ(back->schedule.events[i].region, s.events[i].region);
  }
}

TEST(ChaosArtifact, ParserRejectsGarbage) {
  EXPECT_FALSE(artifact_from_string("not json").has_value());
  EXPECT_FALSE(artifact_from_string("{\"schema\":\"other\"}").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1,}").has_value());
  EXPECT_FALSE(parse_json("[1,2").has_value());
  EXPECT_FALSE(parse_json("{} trailing").has_value());
  const auto num = parse_json("8000000000");
  ASSERT_TRUE(num.has_value());
  EXPECT_TRUE(num->is_integer);
  EXPECT_EQ(num->integer, 8000000000LL);
}

// --- Shrinker ---------------------------------------------------------------
TEST(ChaosShrink, MinimizesToCulpritEvent) {
  Schedule s = base_schedule();
  for (int i = 0; i < 30; ++i) {
    s.events.push_back(proc_event(SimTime::milliseconds(1 + i), i % 4,
                                  core::ProcedureType::kServiceRequest));
  }
  Event culprit;
  culprit.at = SimTime::milliseconds(40);
  culprit.kind = EventKind::kCrashCta;
  culprit.region = 2;
  s.events.push_back(culprit);
  const auto fails = [](const Schedule& trial) {
    for (const Event& e : trial.events) {
      if (e.kind == EventKind::kCrashCta) return true;
    }
    return false;
  };
  ShrinkStats st;
  const Schedule min = shrink_schedule(s, fails, 400, &st);
  ASSERT_EQ(min.events.size(), 1u);
  EXPECT_EQ(min.events[0].kind, EventKind::kCrashCta);
  EXPECT_GT(st.removed, 0u);
}

// --- Teeth: planted bugs are caught and shrink small ------------------------
TEST(ChaosTeeth, StaleServeCaughtAndShrunk) {
  GeneratorConfig gen;
  gen.regions = 4;
  gen.ues = 8;
  gen.actions = 30;
  gen.failure_bursts = 0;
  gen.cta_crash_prob = 0.0;
  RunConfig rc;
  rc.faults.cpf_stale_serves = 3;
  const auto fails = [&rc](const Schedule& trial) {
    return run_schedule(trial, rc, costs()).violation_count > 0;
  };
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 5 && !caught; ++seed) {
    Schedule s = generate(gen, seed);
    if (!fails(s)) continue;
    caught = true;
    const Schedule min = shrink_schedule(s, fails, 300);
    EXPECT_LE(min.events.size(), 10u);
    EXPECT_GE(min.events.size(), 1u);
  }
  EXPECT_TRUE(caught) << "planted stale-serve bug survived 5 seeds";
}

TEST(ChaosTeeth, UnaccountedPruneCaughtByAudit) {
  GeneratorConfig gen;
  gen.regions = 4;
  gen.ues = 8;
  gen.actions = 30;
  gen.failure_bursts = 0;
  gen.cta_crash_prob = 0.0;
  RunConfig rc;
  rc.faults.cta_unaccounted_prunes = 3;
  const auto fails = [&rc](const Schedule& trial) {
    return run_schedule(trial, rc, costs()).violation_count > 0;
  };
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 5 && !caught; ++seed) {
    Schedule s = generate(gen, seed);
    if (!fails(s)) continue;
    caught = true;
    const Schedule min = shrink_schedule(s, fails, 300);
    EXPECT_LE(min.events.size(), 10u);
  }
  EXPECT_TRUE(caught) << "planted prune-accounting bug survived 5 seeds";
}

}  // namespace
}  // namespace neutrino::chaos
