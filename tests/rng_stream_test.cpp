// xoshiro256** jump()/long_jump(): per-shard stream independence.
//
// The sharded runtime hands shard i the base seed jumped i times; these
// tests pin the properties that makes that sound: jumps are deterministic,
// commute with stepping (the state transition is linear — the jump is a
// fixed polynomial in it), and produce streams with no early overlap.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

namespace neutrino {
namespace {

TEST(RngJump, Deterministic) {
  Rng a(42);
  Rng b(42);
  a.jump();
  b.jump();
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at output " << i;
  }
}

TEST(RngJump, ChangesTheStream) {
  Rng base(42);
  Rng jumped(42);
  jumped.jump();
  int equal = 0;
  for (int i = 0; i < 1024; ++i) {
    if (base.next_u64() == jumped.next_u64()) ++equal;
  }
  // Coincidental 64-bit collisions are ~2^-64 per draw; any equality at
  // all would mean the jump left the stream in place.
  EXPECT_EQ(equal, 0);
}

TEST(RngJump, CommutesWithStepping) {
  // jump() advances the linear state map by a fixed 2^128 steps, so it
  // commutes with ordinary stepping: (jump ∘ step^k) == (step^k ∘ jump).
  for (const int k : {1, 7, 64}) {
    Rng jump_first(7);
    jump_first.jump();
    for (int i = 0; i < k; ++i) jump_first.next_u64();

    Rng step_first(7);
    for (int i = 0; i < k; ++i) step_first.next_u64();
    step_first.jump();

    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(jump_first.next_u64(), step_first.next_u64())
          << "k=" << k << " output " << i;
    }
  }
}

TEST(RngJump, LongJumpDistinctFromJump) {
  Rng jumped(99);
  jumped.jump();
  Rng long_jumped(99);
  long_jumped.long_jump();
  int equal = 0;
  for (int i = 0; i < 1024; ++i) {
    if (jumped.next_u64() == long_jumped.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngJump, ShardStreamsShareNoValues) {
  // The runtime's construction: stream i = seed jumped i times. Jumped
  // streams are 2^128 draws apart, so 10k-draw prefixes are disjoint;
  // with 8 shards × 10k draws a single shared 64-bit value would be a
  // ~3e-10 accident — and the fixed seed makes this fully deterministic.
  constexpr int kShards = 8;
  constexpr int kDraws = 10'000;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(kShards * kDraws);
  Rng stream(12345);
  for (int s = 0; s < kShards; ++s) {
    Rng shard = stream;
    for (int i = 0; i < kDraws; ++i) {
      const auto [it, inserted] = seen.insert(shard.next_u64());
      ASSERT_TRUE(inserted) << "shard " << s << " draw " << i
                            << " repeated an earlier value";
    }
    stream.jump();
  }
}

TEST(RngJump, JumpedStreamStillUniformish) {
  // Smoke-check the scrambled output of a jumped state: bounded draws
  // stay in range and both halves of [0, 1000) are hit.
  Rng rng(3);
  rng.jump();
  int low = 0;
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t v = rng.next_below(1000);
    ASSERT_LT(v, 1000u);
    if (v < 500) ++low;
  }
  EXPECT_GT(low, 4096 / 4);
  EXPECT_LT(low, 3 * 4096 / 4);
}

}  // namespace
}  // namespace neutrino
