#!/usr/bin/env bash
# Regenerate the pinned golden vectors from the current codecs.
#
# Run this ONLY after an intentional wire-format change, then review the
# diff: each changed file is one message x codec whose bytes moved.
#
# Usage: tests/golden/regen.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/../.."
BUILD="${1:-build}"
BIN="$BUILD/tests/golden_vector_test"
[ -x "$BIN" ] || {
  echo "error: $BIN not built (cmake --build $BUILD --target golden_vector_test)" >&2
  exit 1
}
NEUTRINO_GOLDEN_REGEN=1 "$BIN" \
  --gtest_filter='GoldenVectors.EncodedBytesMatchPinnedVectors'
echo "regenerated $(ls tests/golden/*.hex | wc -l) vectors under tests/golden/"
