// Streaming statistics used by every bench.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace neutrino {
namespace {

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MatchesTwoPassComputation) {
  Rng rng(5);
  OnlineStats s;
  std::vector<double> values;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double() * 100 - 50;
    values.push_back(v);
    s.add(v);
  }
  double mean = 0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(LatencyRecorder, ExactPercentiles) {
  LatencyRecorder r;
  for (int i = 100; i >= 1; --i) r.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(r.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.max(), 100.0);
  EXPECT_NEAR(r.median(), 50.5, 1e-9);
  EXPECT_NEAR(r.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(r.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(r.p99(), 99.01, 0.2);
}

TEST(LatencyRecorder, MergeCombinesSamples) {
  LatencyRecorder a;
  LatencyRecorder b;
  for (int i = 0; i < 50; ++i) a.add(1.0);
  for (int i = 0; i < 50; ++i) b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(OnlineStats, EmptyMergeIsIdentityBothDirections) {
  OnlineStats filled;
  for (int i = 1; i <= 5; ++i) filled.add(static_cast<double>(i));
  const double mean = filled.mean();
  const double var = filled.variance();

  OnlineStats empty;
  filled.merge(empty);  // merging an empty source changes nothing
  EXPECT_EQ(filled.count(), 5u);
  EXPECT_DOUBLE_EQ(filled.mean(), mean);
  EXPECT_DOUBLE_EQ(filled.variance(), var);
  EXPECT_DOUBLE_EQ(filled.min(), 1.0);
  EXPECT_DOUBLE_EQ(filled.max(), 5.0);

  OnlineStats fresh;
  fresh.merge(filled);  // empty target adopts the source exactly
  EXPECT_EQ(fresh.count(), 5u);
  EXPECT_DOUBLE_EQ(fresh.mean(), mean);
  EXPECT_DOUBLE_EQ(fresh.variance(), var);
  EXPECT_DOUBLE_EQ(fresh.min(), 1.0);
  EXPECT_DOUBLE_EQ(fresh.max(), 5.0);

  OnlineStats both;
  both.merge(OnlineStats{});  // empty-into-empty stays empty, min/max sane
  EXPECT_EQ(both.count(), 0u);
  EXPECT_DOUBLE_EQ(both.min(), 0.0);
  EXPECT_DOUBLE_EQ(both.max(), 0.0);
}

TEST(LatencyRecorder, EmptyMergeIsIdentityBothDirections) {
  LatencyRecorder filled;
  filled.add(2.0);
  filled.add(4.0);
  LatencyRecorder empty;
  filled.merge(empty);
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.median(), 3.0);  // percentiles still valid

  LatencyRecorder fresh;
  fresh.merge(filled);
  EXPECT_EQ(fresh.count(), 2u);
  EXPECT_DOUBLE_EQ(fresh.median(), 3.0);

  // An empty streaming-only source (a shard that crashed before recording)
  // must not flip a populated exact-mode target into streaming mode.
  LatencyRecorder crashed_shard;
  crashed_shard.use_streaming_only();
  filled.merge(crashed_shard);
  EXPECT_FALSE(filled.streaming_only());
  EXPECT_DOUBLE_EQ(filled.median(), 3.0);

  // ...and an empty exact-mode target adopts the source's streaming mode.
  LatencyRecorder stream;
  stream.use_streaming_only();
  stream.add(7.0);
  LatencyRecorder target;
  target.merge(stream);
  EXPECT_TRUE(target.streaming_only());
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.mean(), 7.0);
}

TEST(LatencyRecorder, MixedModeMergePreservesAllSamples) {
  // Exact target absorbs a streaming source: the retained samples fold
  // into the stream instead of being dropped.
  LatencyRecorder exact;
  for (int i = 1; i <= 4; ++i) exact.add(static_cast<double>(i));
  LatencyRecorder streaming;
  streaming.use_streaming_only();
  for (int i = 5; i <= 8; ++i) streaming.add(static_cast<double>(i));
  exact.merge(streaming);
  EXPECT_TRUE(exact.streaming_only());
  EXPECT_EQ(exact.count(), 8u);
  EXPECT_DOUBLE_EQ(exact.mean(), 4.5);
  EXPECT_DOUBLE_EQ(exact.min(), 1.0);
  EXPECT_DOUBLE_EQ(exact.max(), 8.0);

  // Streaming target absorbs an exact source.
  LatencyRecorder stream2;
  stream2.use_streaming_only();
  stream2.add(10.0);
  LatencyRecorder exact2;
  exact2.add(20.0);
  exact2.add(30.0);
  stream2.merge(exact2);
  EXPECT_TRUE(stream2.streaming_only());
  EXPECT_EQ(stream2.count(), 3u);
  EXPECT_DOUBLE_EQ(stream2.mean(), 20.0);
  EXPECT_DOUBLE_EQ(stream2.max(), 30.0);
}

TEST(LatencyRecorder, MergeAfterCrashMatchesSingleRecorder) {
  // The sharded join after a mid-run crash: samples recorded on three
  // shards (one of them empty) must summarize identically to one recorder
  // that saw every sample, regardless of merge order.
  Rng rng(7);
  std::vector<double> all;
  for (int i = 0; i < 1000; ++i) all.push_back(rng.next_double() * 100.0);

  LatencyRecorder whole;
  for (const double v : all) whole.add(v);

  LatencyRecorder s0, s1, s2;  // s1 "crashed" before recording anything
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? s0 : s2).add(all[i]);
  }
  LatencyRecorder joined;
  joined.merge(s0);
  joined.merge(s1);
  joined.merge(s2);
  const auto a = whole.summary();
  const auto b = joined.summary();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
  EXPECT_DOUBLE_EQ(a.max, b.max);

  // Streaming-only shards joined the same way agree on count/mean/max.
  LatencyRecorder w2;
  w2.use_streaming_only();
  for (const double v : all) w2.add(v);
  LatencyRecorder t0, t1;
  t0.use_streaming_only();
  t1.use_streaming_only();
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? t0 : t1).add(all[i]);
  }
  LatencyRecorder j2;
  j2.merge(t0);
  j2.merge(LatencyRecorder{});  // crashed shard
  j2.merge(t1);
  EXPECT_EQ(j2.count(), w2.count());
  EXPECT_NEAR(j2.mean(), w2.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(j2.max(), w2.max());
}

TEST(LatencyRecorder, InterleavedAddAndQuery) {
  // Queries sort lazily; later adds must re-sort correctly.
  LatencyRecorder r;
  r.add(5.0);
  r.add(1.0);
  EXPECT_DOUBLE_EQ(r.median(), 3.0);
  r.add(100.0);
  EXPECT_DOUBLE_EQ(r.median(), 5.0);
  EXPECT_DOUBLE_EQ(r.max(), 100.0);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(106.9);
  EXPECT_NEAR(sum / kN, 106.9, 1.5);
}

}  // namespace
}  // namespace neutrino
