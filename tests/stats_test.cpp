// Streaming statistics used by every bench.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace neutrino {
namespace {

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MatchesTwoPassComputation) {
  Rng rng(5);
  OnlineStats s;
  std::vector<double> values;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double() * 100 - 50;
    values.push_back(v);
    s.add(v);
  }
  double mean = 0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (const double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(LatencyRecorder, ExactPercentiles) {
  LatencyRecorder r;
  for (int i = 100; i >= 1; --i) r.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(r.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.max(), 100.0);
  EXPECT_NEAR(r.median(), 50.5, 1e-9);
  EXPECT_NEAR(r.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(r.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(r.p99(), 99.01, 0.2);
}

TEST(LatencyRecorder, MergeCombinesSamples) {
  LatencyRecorder a;
  LatencyRecorder b;
  for (int i = 0; i < 50; ++i) a.add(1.0);
  for (int i = 0; i < 50; ++i) b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(LatencyRecorder, InterleavedAddAndQuery) {
  // Queries sort lazily; later adds must re-sort correctly.
  LatencyRecorder r;
  r.add(5.0);
  r.add(1.0);
  EXPECT_DOUBLE_EQ(r.median(), 3.0);
  r.add(100.0);
  EXPECT_DOUBLE_EQ(r.median(), 5.0);
  EXPECT_DOUBLE_EQ(r.max(), 100.0);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(106.9);
  EXPECT_NEAR(sum / kN, 106.9, 1.5);
}

}  // namespace
}  // namespace neutrino
