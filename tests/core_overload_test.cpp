// Overload control end-to-end (DESIGN.md §13): bounded CTA/CPF queues
// shed new attaches first, NAS retransmission re-drives dropped uplinks
// with exponential backoff, budget exhaustion falls back to Re-Attach,
// and none of it may cost a Read-your-Writes violation or a stuck UE.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/system.hpp"

namespace neutrino::core {
namespace {

struct Harness {
  explicit Harness(ProtocolConfig p, CorePolicy policy = neutrino_policy(),
                   TopologyConfig topo = {}) {
    proto = p;
    proto.ack_timeout = SimTime::milliseconds(500);
    proto.log_scan_interval = SimTime::milliseconds(100);
    system =
        std::make_unique<System>(loop, policy, topo, proto, costs, metrics);
  }

  void run_to(SimTime horizon) { loop.run_until(horizon); }

  sim::EventLoop loop;
  FixedCostModel costs{SimTime::microseconds(10)};
  ProtocolConfig proto;
  Metrics metrics;
  std::unique_ptr<System> system;
};

ProtocolConfig overload_proto(std::size_t cta_cap, std::size_t cpf_cap,
                              double attach_fraction = 0.75) {
  ProtocolConfig p;
  p.cta_queue_capacity = cta_cap;
  p.cpf_queue_capacity = cpf_cap;
  p.attach_admission_fraction = attach_fraction;
  p.nas_retx_timeout = SimTime::milliseconds(20);
  p.nas_retx_budget = 8;
  return p;
}

TEST(CoreOverload, ShedAttachStormIsRedrivenToCompletion) {
  // Six simultaneous attaches against a CTA queue that admits one new
  // attach at a time: most first sends are shed, and every UE must still
  // end up attached via retransmission (or budget-exhaustion re-attach).
  Harness h(overload_proto(/*cta_cap=*/2, /*cpf_cap=*/0,
                           /*attach_fraction=*/0.5));
  constexpr int kUes = 6;
  for (int u = 0; u < kUes; ++u) {
    h.system->frontend().start_procedure(UeId{static_cast<std::uint64_t>(u)},
                                         ProcedureType::kAttach);
  }
  h.run_to(SimTime::seconds(30));
  for (int u = 0; u < kUes; ++u) {
    EXPECT_TRUE(h.system->frontend().is_attached(
        UeId{static_cast<std::uint64_t>(u)}))
        << "ue " << u;
  }
  EXPECT_GT(h.metrics.attach_sheds, 0u);
  EXPECT_GT(h.metrics.nas_retransmissions, 0u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  EXPECT_EQ(h.metrics.stale_serves, 0u);
}

TEST(CoreOverload, BoundedCpfQueueAlsoRecovers) {
  Harness h(overload_proto(/*cta_cap=*/0, /*cpf_cap=*/1));
  constexpr int kUes = 4;
  for (int u = 0; u < kUes; ++u) {
    h.system->frontend().start_procedure(UeId{static_cast<std::uint64_t>(u)},
                                         ProcedureType::kAttach);
  }
  h.run_to(SimTime::seconds(30));
  for (int u = 0; u < kUes; ++u) {
    EXPECT_TRUE(h.system->frontend().is_attached(
        UeId{static_cast<std::uint64_t>(u)}))
        << "ue " << u;
  }
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(CoreOverload, ZeroAttachHeadroomExhaustsBudgetAndReattaches) {
  // attach_fraction 0 starves the initial attach completely: the retx
  // budget must run out and the UE fall back to Re-Attach. Recovery
  // traffic is deliberately not attach-class (Fig. 5 guarantees survive
  // overload), so the Re-Attach is admitted past the closed gate and the
  // UE still ends up attached — liveness over latency.
  Harness h(overload_proto(/*cta_cap=*/2, /*cpf_cap=*/0,
                           /*attach_fraction=*/0.0));
  h.system->frontend().start_procedure(UeId{7}, ProcedureType::kAttach);
  h.run_to(SimTime::seconds(12));
  EXPECT_GE(h.metrics.retx_exhausted, 1u);
  EXPECT_GT(h.metrics.attach_sheds, 0u);
  EXPECT_GT(h.metrics.nas_retransmissions, 0u);
  EXPECT_TRUE(h.system->frontend().is_attached(UeId{7}));
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(CoreOverload, InFlightServiceRequestsSurviveAttachStorm) {
  // §3's sensitivity ordering: with the queue full of a new-attach storm,
  // service requests from already-attached UEs keep their headroom and
  // complete promptly.
  Harness h(overload_proto(/*cta_cap=*/4, /*cpf_cap=*/0,
                           /*attach_fraction=*/0.25));
  constexpr int kAttached = 3;
  for (int u = 0; u < kAttached; ++u) {
    h.system->frontend().preattach(UeId{static_cast<std::uint64_t>(100 + u)},
                                   0);
  }
  constexpr int kStorm = 20;
  for (int u = 0; u < kStorm; ++u) {
    h.system->frontend().start_procedure(UeId{static_cast<std::uint64_t>(u)},
                                         ProcedureType::kAttach);
  }
  for (int u = 0; u < kAttached; ++u) {
    h.system->frontend().start_procedure(
        UeId{static_cast<std::uint64_t>(100 + u)},
        ProcedureType::kServiceRequest);
  }
  h.run_to(SimTime::seconds(30));
  EXPECT_EQ(h.metrics.pct_for(ProcedureType::kServiceRequest).count(),
            static_cast<std::size_t>(kAttached));
  EXPECT_GT(h.metrics.attach_sheds, 0u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(CoreOverload, CrashDuringRetransmitRecoversExactlyOnce) {
  // The overload path's scariest interleaving: the primary dies while a
  // shed uplink is waiting on its retransmission timer. The re-driven
  // message must land on the recovered serving CPF without double
  // completion (the per-UE monotonicity guard absorbs duplicates).
  Harness h(overload_proto(/*cta_cap=*/2, /*cpf_cap=*/0,
                           /*attach_fraction=*/0.5));
  const UeId ue{42};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  h.loop.schedule_at(SimTime::microseconds(40),
                     [&] { h.system->crash_cpf(primary); });
  h.run_to(SimTime::seconds(30));
  EXPECT_TRUE(h.system->frontend().is_attached(ue));
  EXPECT_EQ(h.metrics.pct_for(ProcedureType::kAttach).count(), 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(CoreOverload, KnobsOffChangesNothing) {
  // Guard the default path: with every overload knob at its default the
  // new counters stay zero and a batch of procedures behaves as before.
  Harness h(ProtocolConfig{});
  for (int u = 0; u < 4; ++u) {
    h.system->frontend().start_procedure(UeId{static_cast<std::uint64_t>(u)},
                                         ProcedureType::kAttach);
  }
  h.run_to(SimTime::seconds(5));
  EXPECT_EQ(h.metrics.procedures_completed, 4u);
  EXPECT_EQ(h.metrics.attach_sheds, 0u);
  EXPECT_EQ(h.metrics.overload_drops, 0u);
  EXPECT_EQ(h.metrics.nas_retransmissions, 0u);
  EXPECT_EQ(h.metrics.retx_exhausted, 0u);
}

}  // namespace
}  // namespace neutrino::core
