// Replayable chaos reproducer corpus: every artifact under tests/repros/
// is a "neutrino.chaos-repro" JSON that once characterized an interesting
// interleaving (recovery scenarios, overload storms, crash-during-
// retransmit). Each is replayed through the legacy System and a 2-shard
// runtime on every ctest run; the corpus must stay parseable, violation-
// free, and runtime-agreeing forever — a decoder or protocol regression
// breaks this suite before it breaks a 500-seed campaign.
//
// NEUTRINO_REPRO_REGEN=1 rewrites the corpus from its fixed recipes
// (generator seeds + handcrafted schedules); review the diff like any
// golden update.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/generator.hpp"
#include "chaos/runner.hpp"
#include "chaos/schedule.hpp"
#include "core/system.hpp"

#ifndef NEUTRINO_REPRO_DIR
#error "NEUTRINO_REPRO_DIR must point at tests/repros"
#endif

namespace neutrino::chaos {
namespace {

const core::FixedCostModel& costs() {
  static const core::FixedCostModel model{SimTime::microseconds(10)};
  return model;
}

/// Placement oracle over the corpus topology (4 regions x 5 CPFs).
core::System& oracle() {
  static sim::EventLoop loop;
  static core::Metrics metrics;
  static Schedule shape = [] {
    Schedule s;
    s.regions = 4;
    return s;
  }();
  static core::System system(loop, core::neutrino_policy(),
                             make_topology(shape), chaos_proto(), costs(),
                             metrics);
  return system;
}

GeneratorConfig corpus_gen() {
  GeneratorConfig gen;
  gen.regions = 4;
  gen.cpfs_per_region = 5;
  gen.ues = 24;  // 6 per region: a one-region storm overflows capacity 4
  gen.shards = 2;
  gen.actions = 60;
  gen.failure_bursts = 4;
  return gen;
}

/// Handcrafted crash-during-retransmit schedule: an overload storm floods
/// region 0's bounded queues, then the region's primary CPF dies while
/// shed uplinks sit on their retransmission timers.
Schedule crash_during_retransmit() {
  Schedule s;
  s.seed = 9001;
  s.regions = 4;
  s.cpfs_per_region = 5;
  s.ues = 24;
  s.horizon = SimTime::seconds(8);
  Event storm;
  storm.at = SimTime::milliseconds(10);
  storm.kind = EventKind::kOverload;
  storm.region = 0;
  storm.ue = 0;
  s.events.push_back(storm);
  Event crash;
  crash.at = SimTime::milliseconds(10) + SimTime::microseconds(60);
  crash.kind = EventKind::kCrashCpf;
  crash.cpf = oracle().primary_cpf_for(UeId{0}, 0).value();
  s.events.push_back(crash);
  Event restore;
  restore.at = SimTime::milliseconds(400);
  restore.kind = EventKind::kRestoreCpf;
  restore.cpf = crash.cpf;
  s.events.push_back(restore);
  Event second_storm;  // shed-then-reattach pressure on the recovered node
  second_storm.at = SimTime::milliseconds(500);
  second_storm.kind = EventKind::kOverload;
  second_storm.region = 0;
  second_storm.ue = 0;
  s.events.push_back(second_storm);
  return s;
}

/// The corpus recipes, by artifact filename (stable — they ARE the corpus).
std::vector<std::pair<std::string, Schedule>> corpus_recipes() {
  std::vector<std::pair<std::string, Schedule>> out;
  out.emplace_back("failures_seed7.json", generate(corpus_gen(), 7, &oracle()));
  GeneratorConfig overload = corpus_gen();
  overload.overload_bursts = 3;
  out.emplace_back("overload_seed11.json",
                   generate(overload, 11, &oracle()));
  GeneratorConfig mixed = corpus_gen();
  mixed.overload_bursts = 2;
  mixed.failure_bursts = 6;
  out.emplace_back("overload_failures_seed42.json",
                   generate(mixed, 42, &oracle()));
  out.emplace_back("crash_during_retransmit.json", crash_during_retransmit());
  return out;
}

std::filesystem::path repro_dir() { return NEUTRINO_REPRO_DIR; }

TEST(ChaosReproCorpus, CorpusMatchesRecipes) {
  // The artifacts are derived files; this test regenerates them in memory
  // and (a) rewrites them under NEUTRINO_REPRO_REGEN=1, (b) otherwise
  // checks byte equality, so corpus drift is always intentional.
  const bool regen = std::getenv("NEUTRINO_REPRO_REGEN") != nullptr;
  if (regen) std::filesystem::create_directories(repro_dir());
  for (const auto& [name, schedule] : corpus_recipes()) {
    const std::string text =
        to_json({schedule, core::FaultInjection{}}).dump(2);
    const auto path = repro_dir() / name;
    if (regen) {
      std::ofstream out(path);
      out << text << "\n";
      continue;
    }
    ASSERT_TRUE(std::filesystem::exists(path))
        << path << " missing — run with NEUTRINO_REPRO_REGEN=1";
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string stored = buf.str();
    if (!stored.empty() && stored.back() == '\n') stored.pop_back();
    EXPECT_EQ(stored, text) << name << " drifted from its recipe";
  }
}

TEST(ChaosReproCorpus, EveryArtifactReplaysCleanOnBothRuntimes) {
  if (std::getenv("NEUTRINO_REPRO_REGEN") != nullptr) {
    GTEST_SKIP() << "regenerating corpus";
  }
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(repro_dir())) {
    if (entry.path().extension() != ".json") continue;
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    const auto art = artifact_from_string(buf.str());
    ASSERT_TRUE(art.has_value()) << entry.path() << " failed to parse";
    ++replayed;

    RunConfig legacy;
    legacy.faults = art->faults;
    const RunOutcome lo = run_schedule(art->schedule, legacy, costs());
    EXPECT_EQ(lo.violation_count, 0u)
        << entry.path() << ": "
        << (lo.violations.empty() ? "" : lo.violations.front());

    RunConfig two = legacy;
    two.use_sharded = true;
    two.shards = 2;
    two.threads = 2;
    const RunOutcome t2 = run_schedule(art->schedule, two, costs());
    EXPECT_EQ(t2.violation_count, 0u)
        << entry.path() << ": "
        << (t2.violations.empty() ? "" : t2.violations.front());

    // Partitioning may not change what happened, only where it ran.
    EXPECT_EQ(lo.started, t2.started) << entry.path();
    EXPECT_EQ(lo.completed, t2.completed) << entry.path();
    EXPECT_EQ(lo.recoveries, t2.recoveries) << entry.path();
  }
  EXPECT_GE(replayed, 4u) << "corpus unexpectedly small";
}

TEST(ChaosReproCorpus, OverloadArtifactsActuallyOverload) {
  if (std::getenv("NEUTRINO_REPRO_REGEN") != nullptr) {
    GTEST_SKIP() << "regenerating corpus";
  }
  // Teeth for the corpus itself: the overload artifacts must really drive
  // the bounded queues past capacity (otherwise they regress into plain
  // failure schedules as protocol costs drift).
  for (const auto& [name, schedule] : corpus_recipes()) {
    if (!schedule_has_overload(schedule)) continue;
    RunConfig legacy;
    const RunOutcome out = run_schedule(schedule, legacy, costs());
    EXPECT_EQ(out.violation_count, 0u) << name;
    EXPECT_GT(out.attach_sheds + out.overload_drops, 0u)
        << name << ": storm no longer overflows the bounded queues";
    EXPECT_GT(out.nas_retransmissions, 0u)
        << name << ": nothing was re-driven, retx path untested";
  }
}

TEST(ChaosReproCorpus, FlightDumpsAreReplayableAndDeterministic) {
  if (std::getenv("NEUTRINO_REPRO_REGEN") != nullptr) {
    GTEST_SKIP() << "regenerating corpus";
  }
  // The campaign writes a merged flight-recorder dump next to every
  // `.chaos-repro` artifact. That dump is only useful if replaying the
  // artifact reproduces it: same schedule, same history — byte for byte,
  // on both runtimes, at any worker-thread count.
  for (const auto& [name, schedule] : corpus_recipes()) {
    RunConfig rc;
    rc.record_flight = true;
    rc.flight_capacity = 4096;  // large enough that nothing is evicted
    const RunOutcome a = run_schedule(schedule, rc, costs());
    EXPECT_GT(a.flight_events, 0u) << name;
    EXPECT_NE(a.flight_json.find("neutrino.flight-recorder"),
              std::string::npos)
        << name;
    EXPECT_NE(a.flight_json.find("\"events\""), std::string::npos) << name;
    // The dump corroborates the outcome counters.
    if (a.attach_sheds > 0) {
      EXPECT_NE(a.flight_json.find("attach_shed"), std::string::npos) << name;
    }
    if (a.nas_retransmissions > 0) {
      EXPECT_NE(a.flight_json.find("nas_retx"), std::string::npos) << name;
    }

    // Replay round-trip: a second run reproduces the dump exactly.
    const RunOutcome b = run_schedule(schedule, rc, costs());
    EXPECT_EQ(a.flight_json, b.flight_json) << name;

    // Sharded merge is worker-thread-count independent.
    RunConfig sharded = rc;
    sharded.use_sharded = true;
    sharded.shards = 2;
    sharded.threads = 1;
    const RunOutcome s1 = run_schedule(schedule, sharded, costs());
    sharded.threads = 2;
    const RunOutcome s2 = run_schedule(schedule, sharded, costs());
    EXPECT_GT(s1.flight_events, 0u) << name;
    EXPECT_EQ(s1.flight_json, s2.flight_json) << name;
  }
}

}  // namespace
}  // namespace neutrino::chaos
