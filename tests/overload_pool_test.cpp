// Bounded-admission ServerPool semantics (DESIGN.md §13): capacity and
// per-class attach limits, drop accounting, peak-depth tracking, and the
// crash/retry interaction — a job lost to reset() and re-driven by the
// caller must deliver exactly once, with stale completions from the old
// incarnation fenced off by the generation counter.
#include <gtest/gtest.h>

#include <memory>

#include "common/clock.hpp"
#include "sim/event_loop.hpp"
#include "sim/server_pool.hpp"

namespace neutrino {
namespace {

using sim::EventLoop;
using sim::JobClass;
using sim::ServerPool;

const SimTime kService = SimTime::microseconds(10);

TEST(OverloadPool, UnboundedByDefault) {
  EventLoop loop;
  ServerPool pool(loop, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.admits(JobClass::kAttach));
    EXPECT_TRUE(pool.try_submit(kService, JobClass::kAttach, [] {}));
  }
  EXPECT_EQ(pool.dropped_total(), 0u);
  EXPECT_EQ(pool.queue_depth(), 100u);
  loop.run();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(OverloadPool, CapacityBoundsAdmissionPerClass) {
  EventLoop loop;
  ServerPool pool(loop, 1);
  pool.set_capacity(4, 2);  // attaches shed once 2 jobs are in flight
  int done = 0;
  auto submit = [&](JobClass cls) {
    return pool.try_submit(kService, cls, [&] { ++done; });
  };
  ASSERT_TRUE(submit(JobClass::kAttach));
  ASSERT_TRUE(submit(JobClass::kAttach));
  // Attach headroom exhausted; outage-sensitive classes still admitted.
  EXPECT_FALSE(pool.admits(JobClass::kAttach));
  EXPECT_FALSE(submit(JobClass::kAttach));
  EXPECT_TRUE(submit(JobClass::kHandover));
  EXPECT_TRUE(submit(JobClass::kService));
  // Now at full capacity: everything is refused.
  EXPECT_FALSE(submit(JobClass::kHandover));
  EXPECT_FALSE(submit(JobClass::kControl));
  EXPECT_EQ(pool.drops(JobClass::kAttach), 1u);
  EXPECT_EQ(pool.drops(JobClass::kHandover), 1u);
  EXPECT_EQ(pool.drops(JobClass::kControl), 1u);
  EXPECT_EQ(pool.dropped_total(), 3u);
  EXPECT_EQ(pool.peak_depth(), 4u);
  loop.run();
  EXPECT_EQ(done, 4);
  // Draining frees headroom for every class again.
  EXPECT_TRUE(pool.admits(JobClass::kAttach));
}

TEST(OverloadPool, AttachLimitClampedToCapacity) {
  EventLoop loop;
  ServerPool pool(loop, 1);
  pool.set_capacity(2, 10);  // limit above capacity is meaningless
  EXPECT_TRUE(pool.try_submit(kService, JobClass::kAttach, [] {}));
  EXPECT_TRUE(pool.try_submit(kService, JobClass::kAttach, [] {}));
  EXPECT_FALSE(pool.try_submit(kService, JobClass::kAttach, [] {}));
  loop.run();
}

TEST(OverloadPool, RetryAfterCrashDeliversExactlyOnce) {
  // Regression for the reset()/retry interaction documented in submit():
  // a completion scheduled before the crash must not fire, and the
  // caller's re-driven copy of the job must fire exactly once even though
  // the stale completion event is still sitting in the event loop.
  EventLoop loop;
  ServerPool pool(loop, 1);
  int delivered = 0;
  pool.submit(kService, [&] { ++delivered; });
  loop.run_until(SimTime::microseconds(2));  // crash mid-service
  pool.reset();
  // Re-drive the lost job (what the NAS retransmission path does). The
  // stale pre-crash completion event still fires first in the loop, and
  // the generation fence must turn it into a no-op.
  pool.submit(kService, [&] { ++delivered; });
  loop.run();
  EXPECT_EQ(delivered, 1);
}

TEST(OverloadPool, StatsSurviveCrashButWorkDies) {
  EventLoop loop;
  ServerPool pool(loop, 1);
  pool.set_capacity(2, 1);
  int done = 0;
  ASSERT_TRUE(pool.try_submit(kService, JobClass::kAttach, [&] { ++done; }));
  ASSERT_TRUE(pool.try_submit(kService, JobClass::kControl, [&] { ++done; }));
  ASSERT_FALSE(pool.try_submit(kService, JobClass::kAttach, [&] { ++done; }));
  EXPECT_EQ(pool.peak_depth(), 2u);
  pool.reset();
  // Queued work died with the crash...
  loop.run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(pool.queue_depth(), 0u);
  // ...but the capacity config and drop/peak statistics did not.
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool.drops(JobClass::kAttach), 1u);
  EXPECT_EQ(pool.peak_depth(), 2u);
  // The new incarnation admits work under the same bounds.
  EXPECT_TRUE(pool.try_submit(kService, JobClass::kAttach, [&] { ++done; }));
  loop.run();
  EXPECT_EQ(done, 1);
}

TEST(OverloadPool, RejectedCallbackIsDestroyedNotLeaked) {
  // try_submit must destroy the rejected callback so anything it owns
  // (e.g. a MsgPool handle) is released immediately.
  EventLoop loop;
  ServerPool pool(loop, 1);
  pool.set_capacity(1, 1);
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  ASSERT_TRUE(pool.try_submit(kService, JobClass::kControl, [] {}));
  ASSERT_FALSE(pool.try_submit(kService, JobClass::kControl,
                               [token = std::move(token)] { (void)*token; }));
  EXPECT_TRUE(watch.expired());
  loop.run();
}

}  // namespace
}  // namespace neutrino
