// Failure recovery: the four §4.2.5 scenarios, out-of-date marking
// (§4.2.4), and a randomized Read-your-Writes property sweep.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/system.hpp"

namespace neutrino::core {
namespace {

struct Harness {
  explicit Harness(CorePolicy policy, TopologyConfig topo = {}) {
    proto.ack_timeout = SimTime::milliseconds(500);
    proto.log_scan_interval = SimTime::milliseconds(100);
    system =
        std::make_unique<System>(loop, policy, topo, proto, costs, metrics);
  }

  void run_to(SimTime horizon) { loop.run_until(horizon); }

  sim::EventLoop loop;
  FixedCostModel costs{SimTime::microseconds(10)};
  ProtocolConfig proto;
  Metrics metrics;
  std::unique_ptr<System> system;
};

// --- Scenario 1: primary fails, backup is up to date ------------------------

TEST(FailureScenario1, BackupServesWithoutReattach) {
  Harness h(neutrino_policy());
  const UeId ue{42};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run_to(SimTime::seconds(1));  // attach + checkpoints + ACKs done
  ASSERT_EQ(h.metrics.procedures_completed, 1u);

  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  h.system->crash_cpf(primary);
  h.run_to(SimTime::seconds(2));

  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.run_to(SimTime::seconds(4));

  EXPECT_EQ(h.metrics.procedures_completed, 2u);
  EXPECT_EQ(h.metrics.reattaches, 0u);  // failure fully masked (§4.2.5)
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

// --- Scenario 2: primary fails mid-procedure, log replay on backup ---------

TEST(FailureScenario2, ReplayReconstructsInFlightProcedure) {
  Harness h(neutrino_policy());
  const UeId ue{42};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  // Crash the primary while the attach is still in flight (an attach takes
  // several round trips of ~100 us each here).
  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  h.loop.schedule_at(SimTime::microseconds(40),
                     [&] { h.system->crash_cpf(primary); });
  h.run_to(SimTime::seconds(5));

  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_GT(h.metrics.replays, 0u);      // messages re-driven from the log
  EXPECT_EQ(h.metrics.reattaches, 0u);   // no Re-Attach needed
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  EXPECT_TRUE(h.system->frontend().is_attached(ue));

  // The recovered procedure's state must have landed on the new serving
  // CPF exactly as if the failure never happened.
  bool someone_has_final_state = false;
  for (int cpf = 0; cpf < h.system->topo().total_cpfs(); ++cpf) {
    const auto* state = h.system->cpf(CpfId(static_cast<std::uint32_t>(cpf)))
                            .peek_state(ue);
    if (state != nullptr && state->attached &&
        state->last_completed_proc == 1) {
      someone_has_final_state = true;
    }
  }
  EXPECT_TRUE(someone_has_final_state);
}

TEST(FailureScenario2, ReplayedRecoveryIsFasterThanReattach) {
  // The paper's Fig. 10 claim in miniature: Neutrino's replay beats the
  // EPC's re-attach for the same failure point.
  double pct[2];
  int idx = 0;
  for (const auto& policy : {neutrino_policy(), existing_epc_policy()}) {
    Harness h(policy);
    const UeId ue{42};
    h.system->frontend().preattach(ue, 0);
    h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
    const CpfId primary = h.system->primary_cpf_for(ue, 0);
    h.loop.schedule_at(SimTime::microseconds(25),
                       [&] { h.system->crash_cpf(primary); });
    h.run_to(SimTime::seconds(5));
    ASSERT_EQ(h.metrics.procedures_completed, 1u) << policy.name;
    EXPECT_EQ(h.metrics.ryw_violations, 0u);
    pct[idx++] =
        h.metrics.pct_for(ProcedureType::kServiceRequest).median();
  }
  EXPECT_LT(pct[0], pct[1]);  // Neutrino < EPC
}

// --- Scenario 3: all replicas out of sync -> Re-Attach ----------------------

TEST(FailureScenario3, AllReplicasDeadForcesReattach) {
  Harness h(neutrino_policy());
  const UeId ue{42};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run_to(SimTime::seconds(1));
  ASSERT_EQ(h.metrics.procedures_completed, 1u);

  // Kill the primary *and* every backup: no usable replica remains.
  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  for (const CpfId b : h.system->backups_for(ue, 0)) {
    h.system->crash_cpf(b);
  }
  h.system->crash_cpf(primary);
  h.run_to(SimTime::seconds(2));

  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.run_to(SimTime::seconds(6));

  EXPECT_GE(h.metrics.reattaches, 1u);
  EXPECT_EQ(h.metrics.procedures_completed, 2u);  // completed via Re-Attach
  EXPECT_EQ(h.metrics.ryw_violations, 0u);        // never served stale
  EXPECT_TRUE(h.system->frontend().is_attached(ue));
}

TEST(FailureScenario3, EpcAlwaysReattaches) {
  Harness h(existing_epc_policy());
  const UeId ue{42};
  h.system->frontend().preattach(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  h.loop.schedule_at(SimTime::microseconds(25),
                     [&] { h.system->crash_cpf(primary); });
  h.run_to(SimTime::seconds(5));
  EXPECT_GE(h.metrics.reattaches, 1u);
  EXPECT_EQ(h.metrics.replays, 0u);
  EXPECT_EQ(h.metrics.procedures_completed, 1u);
}

// --- Scenario 4: CTA fails --------------------------------------------------

TEST(FailureScenario4, CtaFailureReattachesThroughNewCta) {
  TopologyConfig topo;
  topo.l1_per_l2 = 2;  // a sibling region provides the "new CTA"
  Harness h(neutrino_policy(), topo);
  const UeId ue{42};
  h.system->frontend().preattach(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.loop.schedule_at(SimTime::microseconds(12),
                     [&] { h.system->crash_cta(0); });
  h.run_to(SimTime::seconds(5));

  EXPECT_GE(h.metrics.reattaches, 1u);
  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  // The UE now lives in the sibling region.
  EXPECT_EQ(h.system->frontend().region_of(ue), 1u);
}

// --- SkyCore-style failover -------------------------------------------------

TEST(Failover, SkyCoreResumesOnBackupWithoutReattach) {
  Harness h(skycore_policy());
  const UeId ue{42};
  h.system->frontend().preattach(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  h.loop.schedule_at(SimTime::microseconds(25),
                     [&] { h.system->crash_cpf(primary); });
  h.run_to(SimTime::seconds(5));
  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_GE(h.metrics.failovers, 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

// --- §4.2.4 out-of-date marking ---------------------------------------------

TEST(OutdatedMarking, AckTimeoutMarksLaggingReplicaAndPrunesLog) {
  Harness h(neutrino_policy());
  const UeId ue{42};
  // Kill one designated backup *before* the attach so its ACK never comes.
  const auto backups = h.system->backups_for(ue, 0);
  ASSERT_EQ(backups.size(), 2u);
  h.system->crash_cpf(backups[1]);

  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run_to(SimTime::seconds(5));  // well past ack_timeout (500 ms)

  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  // The scan fired, told the laggard (delivery dropped: it is dead), and
  // dropped the log entries (§4.2.4 1d).
  EXPECT_GE(h.metrics.outdated_notifies, 1u);
  EXPECT_EQ(h.system->cta(0).log_messages(), 0u);
  // The surviving backup is current and can still mask a primary failure.
  EXPECT_TRUE(h.system->cpf(backups[0]).has_up_to_date(ue));
}

TEST(OutdatedMarking, LateReplicaRefusesToServeStaleState) {
  Harness h(neutrino_policy());
  const UeId ue{42};
  const auto backups = h.system->backups_for(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run_to(SimTime::seconds(1));

  // Second procedure: crash backup[0] before it can ACK, let the timeout
  // mark it outdated, then restore it and fail everyone else over to it.
  h.system->crash_cpf(backups[0]);
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.run_to(SimTime::seconds(3));
  h.system->restore_cpf(backups[0]);

  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  h.system->crash_cpf(primary);
  h.system->crash_cpf(backups[1]);
  h.run_to(SimTime::seconds(4));

  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.run_to(SimTime::seconds(8));

  // The restored replica lost its state in the crash; it must force a
  // Re-Attach rather than serve anything stale.
  EXPECT_GE(h.metrics.reattaches, 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  EXPECT_EQ(h.metrics.procedures_completed, 3u);
}

// --- Randomized property sweep ----------------------------------------------

struct PropertyParams {
  std::uint64_t seed;
  int regions;
  bool crash_ctas;
};

class RandomizedFailures : public ::testing::TestWithParam<PropertyParams> {};

TEST_P(RandomizedFailures, RywHoldsAndSystemConverges) {
  const auto params = GetParam();
  TopologyConfig topo;
  topo.l1_per_l2 = params.regions;
  Harness h(neutrino_policy(), topo);
  Rng rng(params.seed);

  constexpr int kUes = 40;
  for (int i = 0; i < kUes; ++i) {
    h.system->frontend().preattach(
        UeId{static_cast<std::uint64_t>(i)},
        static_cast<std::uint32_t>(
            i % h.system->topo().total_regions()));
  }

  // Random procedures over 2 simulated seconds...
  SimTime t;
  for (int step = 0; step < 400; ++step) {
    t += SimTime::microseconds(
        static_cast<std::int64_t>(rng.next_below(5000)));
    const UeId ue{rng.next_below(kUes)};
    const double dice = rng.next_double();
    h.loop.schedule_at(t, [&h, ue, dice] {
      const std::uint32_t cur = h.system->frontend().region_of(ue);
      const auto regions = static_cast<std::uint32_t>(
          h.system->topo().total_regions());
      if (dice < 0.40) {
        h.system->frontend().start_procedure(ue,
                                             ProcedureType::kServiceRequest);
      } else if (dice < 0.55 && regions > 1) {
        h.system->frontend().start_procedure(ue, ProcedureType::kHandover,
                                             (cur + 1) % regions);
      } else if (dice < 0.65 && regions > 1) {
        h.system->frontend().idle_move(ue, (cur + 1) % regions);
        h.system->frontend().start_procedure(ue, ProcedureType::kTau);
      } else if (dice < 0.72) {
        h.system->frontend().start_procedure(ue, ProcedureType::kDetach);
      } else if (dice < 0.80) {
        h.system->trigger_downlink(ue);  // paging path (Fig. 2 scenario)
      } else {
        h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
      }
    });
  }
  // ...interleaved with random CPF crashes and restores.
  SimTime ft;
  for (int f = 0; f < 12; ++f) {
    ft += SimTime::microseconds(
        static_cast<std::int64_t>(rng.next_below(150'000)));
    const auto victim = CpfId(static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint64_t>(
            h.system->topo().total_cpfs()))));
    h.loop.schedule_at(ft, [&h, victim] {
      if (h.system->cpf_alive(victim)) {
        h.system->crash_cpf(victim);
      } else {
        h.system->restore_cpf(victim);
      }
    });
    if (params.crash_ctas && f == 5 && params.regions > 1) {
      h.loop.schedule_at(ft + SimTime::milliseconds(1),
                         [&h] { h.system->crash_cta(0); });
    }
  }

  h.run_to(SimTime::seconds(60));

  // The invariant the whole design exists for:
  EXPECT_EQ(h.metrics.ryw_violations, 0u) << "seed " << params.seed;
  // Liveness: the system converged (work drained) and made progress.
  EXPECT_TRUE(h.loop.empty());
  EXPECT_GT(h.metrics.procedures_completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomizedFailures,
    ::testing::Values(PropertyParams{1, 1, false}, PropertyParams{2, 1, false},
                      PropertyParams{3, 4, false}, PropertyParams{4, 4, false},
                      PropertyParams{5, 4, true}, PropertyParams{6, 2, true},
                      PropertyParams{7, 4, false}, PropertyParams{8, 2, false},
                      PropertyParams{9, 4, true},
                      PropertyParams{10, 1, false}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_r" +
             std::to_string(info.param.regions) +
             (info.param.crash_ctas ? "_cta" : "");
    });

}  // namespace
}  // namespace neutrino::core
