// Decoder robustness: random mutations and truncations of valid buffers
// must produce errors or different messages — never crashes, hangs, or
// out-of-bounds reads (run these under ASan to get the full value).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "s1ap/samples.hpp"
#include "serialize/codec.hpp"

namespace neutrino {
namespace {

using ser::WireFormat;

// The sequential formats fully bounds-check their input. (FlatBuffers
// readers trust their buffers by design — the real library ships a
// separate verifier — so they are exercised only with well-formed input.)
constexpr WireFormat kCheckedFormats[] = {
    WireFormat::kAsn1Per, WireFormat::kProtobuf, WireFormat::kFastCdr,
    WireFormat::kLcm,     WireFormat::kFlexBuffers,
};

class CheckedFormats : public ::testing::TestWithParam<WireFormat> {};

INSTANTIATE_TEST_SUITE_P(Formats, CheckedFormats,
                         ::testing::ValuesIn(kCheckedFormats),
                         [](const auto& info) {
                           std::string name(ser::to_string(info.param));
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(c);
                           });
                           return name;
                         });

TEST_P(CheckedFormats, SingleByteMutationsNeverCrash) {
  const auto msg = s1ap::samples::initial_context_setup();
  const Bytes valid = ser::encode(GetParam(), msg);
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes corrupt = valid;
    const std::size_t pos = rng.next_below(corrupt.size());
    corrupt[pos] ^= static_cast<Byte>(1 + rng.next_below(255));
    // Must terminate and either fail or decode to *something*; the only
    // forbidden outcomes are crashes and unbounded work.
    auto result = ser::decode<s1ap::InitialContextSetupRequest>(
        GetParam(), corrupt);
    (void)result;
  }
}

TEST_P(CheckedFormats, EveryPrefixFailsCleanly) {
  const auto msg = s1ap::samples::handover_request();
  const Bytes valid = ser::encode(GetParam(), msg);
  for (std::size_t keep = 0; keep < valid.size(); ++keep) {
    auto result = ser::decode<s1ap::HandoverRequest>(
        GetParam(), BytesView(valid.data(), keep));
    if (result.is_ok()) {
      EXPECT_NE(*result, msg) << "prefix " << keep << " decoded as original";
    }
  }
}

TEST_P(CheckedFormats, RandomGarbageNeverCrashes) {
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes garbage(rng.next_below(200));
    for (auto& b : garbage) b = static_cast<Byte>(rng.next_u64());
    auto result = ser::decode<s1ap::AttachRequest>(GetParam(), garbage);
    (void)result;
  }
}

TEST_P(CheckedFormats, EmptyInputIsAnErrorOrEmptyMessage) {
  auto result =
      ser::decode<s1ap::InitialContextSetupRequest>(GetParam(), BytesView{});
  if (result.is_ok()) {
    // Formats where absent fields default (protobuf) may accept it.
    EXPECT_EQ(result->erabs.size(), 0u);
  }
}

TEST(CodecDeterminism, EncodingIsStable) {
  // Identical input must produce identical bytes (golden-stability: log
  // sizes and replay behaviour depend on it).
  for (const auto format : ser::kAllWireFormats) {
    const auto a = ser::encode(format, s1ap::samples::attach_accept());
    const auto b = ser::encode(format, s1ap::samples::attach_accept());
    EXPECT_EQ(to_hex(a), to_hex(b)) << ser::to_string(format);
  }
}

TEST(CodecGolden, Asn1PerBytesPinned) {
  // Pin the PER encoding of a tiny message: any unintended wire-format
  // change (field order, preamble, length determinants) breaks this.
  s1ap::STmsi tmsi{.mme_code = 2, .m_tmsi = 0xdeadbeef};
  const auto encoded = ser::encode(ser::WireFormat::kAsn1Per, tmsi);
  EXPECT_EQ(to_hex(encoded), "02deadbeef");
}

TEST(CodecGolden, ProtobufBytesPinned) {
  s1ap::STmsi tmsi{.mme_code = 2, .m_tmsi = 0xdeadbeef};
  const auto encoded = ser::encode(ser::WireFormat::kProtobuf, tmsi);
  // field 1 varint 2; field 2 varint 0xdeadbeef.
  EXPECT_EQ(to_hex(encoded), "080210effdb6f50d");
}

TEST(CodecGolden, FlatBuffersBytesPinned) {
  // [root uoffset][table: soffset, u8 mme_code pad.., u32 m_tmsi][vtable].
  s1ap::STmsi tmsi{.mme_code = 2, .m_tmsi = 0xdeadbeef};
  const auto encoded = ser::encode(ser::WireFormat::kFlatBuffers, tmsi);
  EXPECT_EQ(to_hex(encoded),
            "04000000f4ffffff02000000efbeadde08000c0004000800");
}

TEST(CodecGolden, CdrBytesPinned) {
  // u8 + 3 pad + u32 little-endian, no tags.
  s1ap::STmsi tmsi{.mme_code = 2, .m_tmsi = 0xdeadbeef};
  EXPECT_EQ(to_hex(ser::encode(ser::WireFormat::kFastCdr, tmsi)),
            "02000000efbeadde");
}

TEST(CodecGolden, LcmBytesPinned) {
  // Big-endian sequential: LCM's wire coincides with PER here (no
  // optionals to bit-pack).
  s1ap::STmsi tmsi{.mme_code = 2, .m_tmsi = 0xdeadbeef};
  EXPECT_EQ(to_hex(ser::encode(ser::WireFormat::kLcm, tmsi)), "02deadbeef");
}

TEST(CodecGolden, FlexBuffersCarriesKeysOnTheWire) {
  // The defining overhead: field names travel in the buffer.
  s1ap::STmsi tmsi{.mme_code = 2, .m_tmsi = 0xdeadbeef};
  const auto encoded = ser::encode(ser::WireFormat::kFlexBuffers, tmsi);
  const std::string hex = to_hex(encoded);
  EXPECT_NE(hex.find("6d6d655f636f6465"), std::string::npos);  // "mme_code"
  EXPECT_NE(hex.find("6d5f746d7369"), std::string::npos);      // "m_tmsi"
}

}  // namespace
}  // namespace neutrino
