// FlatHashMap: growth, tombstone deletion, erase-during-iteration, and
// the iterator-free lookup path the simulator's hot paths use.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "common/flat_hash_map.hpp"

namespace neutrino {
namespace {

TEST(FlatHashMap, InsertLookupGrowth) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    const auto [it, inserted] = m.try_emplace(k, k * 3);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(it->first, k);
  }
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t* v = m.lookup(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k * 3);
  }
  EXPECT_EQ(m.lookup(kN + 1), nullptr);
  EXPECT_FALSE(m.contains(kN + 1));
  // Load factor stays under 7/8 through every doubling.
  EXPECT_GE(m.capacity() * 7, m.size() * 8);
}

TEST(FlatHashMap, TryEmplaceDoesNotOverwrite) {
  FlatHashMap<int, std::string> m;
  m.try_emplace(1, "first");
  const auto [it, inserted] = m.try_emplace(1, "second");
  EXPECT_FALSE(inserted);
  EXPECT_EQ(it->second, "first");
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, OperatorIndexDefaultConstructs) {
  FlatHashMap<int, int> m;
  EXPECT_EQ(m[7], 0);
  m[7] = 42;
  EXPECT_EQ(m[7], 42);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, EraseAndReinsertReusesTombstones) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.try_emplace(k, 1);
  for (std::uint64_t k = 0; k < 100; k += 2) EXPECT_TRUE(m.erase(k));
  EXPECT_FALSE(m.erase(0));  // already gone
  EXPECT_EQ(m.size(), 50u);
  for (std::uint64_t k = 0; k < 100; k += 2) {
    EXPECT_FALSE(m.contains(k));
    m.try_emplace(k, 2);
  }
  EXPECT_EQ(m.size(), 100u);
  for (std::uint64_t k = 1; k < 100; k += 2) {
    ASSERT_TRUE(m.contains(k));  // odd keys survived the churn
    EXPECT_EQ(*m.lookup(k), 1);
  }
}

TEST(FlatHashMap, ChurnDoesNotGrowCapacityUnbounded) {
  // Steady-state insert/erase over a tiny live set: same-size rehashes
  // must purge tombstones instead of doubling forever.
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    m.try_emplace(i, 1);
    m.erase(i - (i >= 8 ? 8 : i));  // keep ~8 live
  }
  EXPECT_LE(m.size(), 9u);
  EXPECT_LE(m.capacity(), 64u);
}

TEST(FlatHashMap, ChurnKeepsProbeLengthsBounded) {
  // Regression for tombstone-occupancy drift: a steady working set under
  // heavy erase/insert churn used to accumulate tombstones between
  // rehashes, stretching probe chains toward the load-factor ceiling.
  // With trailing-tombstone reclamation and same-size purge rehashes,
  // chains stay near what a fresh table of this size would produce.
  FlatHashMap<std::uint64_t, int> m;
  constexpr std::uint64_t kLive = 256;
  for (std::uint64_t k = 0; k < kLive; ++k) m.try_emplace(k, 1);
  const std::size_t cap = m.capacity();
  for (std::uint64_t i = 0; i < 200'000; ++i) {
    ASSERT_TRUE(m.erase(i));
    m.try_emplace(i + kLive, 1);
    if (i % 4096 == 0) {
      ASSERT_LE(m.max_probe_length(), 32u) << "after " << i << " cycles";
    }
  }
  EXPECT_EQ(m.size(), kLive);
  EXPECT_LE(m.capacity(), cap * 2);
  EXPECT_LE(m.max_probe_length(), 32u);
}

TEST(FlatHashMap, IterationSeesExactlyLiveKeys) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  std::set<std::uint64_t> expect;
  for (std::uint64_t k = 0; k < 500; ++k) {
    m.try_emplace(k, k);
    expect.insert(k);
  }
  for (std::uint64_t k = 0; k < 500; k += 3) {
    m.erase(k);
    expect.erase(k);
  }
  std::set<std::uint64_t> seen;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, v);
    EXPECT_TRUE(seen.insert(k).second) << "duplicate key " << k;
  }
  EXPECT_EQ(seen, expect);
}

TEST(FlatHashMap, EraseDuringIterationReturnsNextLive) {
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 200; ++k) m.try_emplace(k, k % 2 == 0);
  // The CTA failure-sweep idiom: erase matching entries while walking.
  for (auto it = m.begin(); it != m.end();) {
    if (it->second != 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(m.size(), 100u);
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(m.contains(k), k % 2 != 0);
  }
}

TEST(FlatHashMap, FindReturnsEndForMissing) {
  FlatHashMap<int, int> m;
  EXPECT_TRUE(m.find(1) == m.end());  // pre-allocation
  m.try_emplace(1, 10);
  auto it = m.find(1);
  ASSERT_TRUE(it != m.end());
  EXPECT_EQ(it->second, 10);
  EXPECT_TRUE(m.find(2) == m.end());
}

TEST(FlatHashMap, ClearKeepsAllocationAndDropsValues) {
  FlatHashMap<int, std::shared_ptr<int>> m;
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  m.try_emplace(1, std::move(token));
  for (int k = 2; k < 100; ++k) m.try_emplace(k, nullptr);
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_TRUE(alive.expired());  // held resources released on clear
  m.try_emplace(1, nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, MoveOnlyValues) {
  FlatHashMap<int, std::unique_ptr<int>> m;
  for (int k = 0; k < 300; ++k) {  // enough to force rehashes
    m.try_emplace(k, std::make_unique<int>(k));
  }
  for (int k = 0; k < 300; ++k) {
    auto* v = m.lookup(k);
    ASSERT_NE(v, nullptr);
    ASSERT_NE(v->get(), nullptr);
    EXPECT_EQ(**v, k);
  }
  EXPECT_TRUE(m.erase(7));
  EXPECT_EQ(m.lookup(7), nullptr);
}

TEST(FlatHashMap, ReservePreventsRehash) {
  FlatHashMap<std::uint64_t, int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  EXPECT_GE(cap * 7, 1000u * 8);
  int* first = nullptr;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    m.try_emplace(k, 5);
    if (k == 0) first = m.lookup(0);
  }
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.lookup(0), first);  // no rehash => pointers stayed stable
}

TEST(FlatHashMap, SequentialIdsDoNotCluster) {
  // StrongId keys hash as identity via std::hash; the mix64 finalizer must
  // spread them so sequential UE ids don't form one long probe chain.
  // Smoke-check: a full sequential fill still answers misses fast (probe
  // chains terminate at empties well before a full-table scan).
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < (1u << 14); ++k) m.try_emplace(k, 1);
  for (std::uint64_t k = 1u << 20; k < (1u << 20) + 1000; ++k) {
    EXPECT_FALSE(m.contains(k));
  }
}

}  // namespace
}  // namespace neutrino
