// Property sweep across every evaluated system (§6.2): whatever the
// policy vector — replication scheme, recovery mode, serialization,
// handover strategy — Read-your-Writes must hold and the system must
// converge under random failures. The baselines keep it by Re-Attaching;
// Neutrino by masking; nobody may serve stale state.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/system.hpp"

namespace neutrino::core {
namespace {

struct SweepParams {
  CorePolicy policy;
  std::uint64_t seed;
  int regions;
};

class PolicySweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(PolicySweep, RywHoldsUnderRandomFailures) {
  const auto& params = GetParam();
  sim::EventLoop loop;
  FixedCostModel costs{SimTime::microseconds(10)};
  ProtocolConfig proto;
  proto.ack_timeout = SimTime::milliseconds(500);
  proto.log_scan_interval = SimTime::milliseconds(100);
  TopologyConfig topo;
  topo.l1_per_l2 = params.regions;
  Metrics metrics;
  System system(loop, params.policy, topo, proto, costs, metrics);
  Rng rng(params.seed);

  constexpr int kUes = 30;
  for (int i = 0; i < kUes; ++i) {
    system.frontend().preattach(
        UeId{static_cast<std::uint64_t>(i)},
        static_cast<std::uint32_t>(i % topo.total_regions()));
  }
  SimTime t;
  for (int step = 0; step < 300; ++step) {
    t += SimTime::microseconds(
        static_cast<std::int64_t>(rng.next_below(6'000)));
    const UeId ue{rng.next_below(kUes)};
    const double dice = rng.next_double();
    loop.schedule_at(t, [&system, ue, dice, &topo] {
      const auto regions =
          static_cast<std::uint32_t>(topo.total_regions());
      const std::uint32_t cur = system.frontend().region_of(ue);
      if (dice < 0.55) {
        system.frontend().start_procedure(ue,
                                          ProcedureType::kServiceRequest);
      } else if (dice < 0.75 && regions > 1) {
        system.frontend().start_procedure(ue, ProcedureType::kHandover,
                                          (cur + 1) % regions);
      } else {
        system.frontend().start_procedure(ue, ProcedureType::kAttach);
      }
    });
  }
  SimTime ft;
  for (int f = 0; f < 8; ++f) {
    ft += SimTime::microseconds(
        static_cast<std::int64_t>(rng.next_below(200'000)));
    const auto victim = CpfId(static_cast<std::uint32_t>(rng.next_below(
        static_cast<std::uint64_t>(topo.total_cpfs()))));
    loop.schedule_at(ft, [&system, victim] {
      if (system.cpf_alive(victim)) {
        system.crash_cpf(victim);
      } else {
        system.restore_cpf(victim);
      }
    });
  }
  loop.run_until(SimTime::seconds(60));

  EXPECT_EQ(metrics.ryw_violations, 0u)
      << params.policy.name << " seed " << params.seed;
  EXPECT_TRUE(loop.empty());
  EXPECT_GT(metrics.procedures_completed, 0u);
}

std::vector<SweepParams> sweep_matrix() {
  std::vector<SweepParams> out;
  for (const auto& policy :
       {existing_epc_policy(), dpcm_policy(), skycore_policy(),
        scale_policy(), neutrino_policy()}) {
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
      for (const int regions : {1, 4}) {
        out.push_back({policy, seed, regions});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep, ::testing::ValuesIn(sweep_matrix()),
    [](const auto& info) {
      return std::string(info.param.policy.name) + "_s" +
             std::to_string(info.param.seed) + "_r" +
             std::to_string(info.param.regions);
    });

}  // namespace
}  // namespace neutrino::core
