// Event-loop timer edge cases that the overload path leans on: NAS
// retransmission timers are plain schedule_after events whose "cancel" is
// an epoch guard in the callback, backoff pushes later attempts past the
// timer-wheel horizon into the heap, and a timer scheduled at `now` (zero
// backoff on a hot retry) must still fire inside the current run_until
// window. Each property is pinned here at the loop level so a wheel or
// heap regression shows up as a one-liner instead of a chaos-campaign
// divergence.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/clock.hpp"
#include "sim/event_loop.hpp"
#include "sim/server_pool.hpp"

namespace neutrino {
namespace {

using sim::EventLoop;

EventLoop::Config tiny_wheel() {
  // 4 slots x 100ns: horizon 400ns, so "far future" is cheap to reach.
  EventLoop::Config cfg;
  cfg.use_timer_wheel = true;
  cfg.wheel_granularity_ns = 100;
  cfg.wheel_slots = 4;
  return cfg;
}

TEST(TimerEdge, TimerScheduledAtNowFiresInCurrentWindow) {
  EventLoop loop(tiny_wheel());
  loop.run_until(SimTime::nanoseconds(250));  // advance cursor mid-tick
  bool fired = false;
  loop.schedule_at(loop.now(), [&] { fired = true; });
  loop.run_until(loop.now());  // horizon == now; events at horizon run
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), SimTime::nanoseconds(250));
}

TEST(TimerEdge, ZeroDelayRetriesPreserveFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(SimTime::nanoseconds(0), [&] {
    order.push_back(0);
    // A zero-backoff rearm from inside a callback lands at the same
    // timestamp; seq tie-break must run it after already-pending peers.
    loop.schedule_after(SimTime::nanoseconds(0), [&] { order.push_back(2); });
  });
  loop.schedule_after(SimTime::nanoseconds(0), [&] { order.push_back(1); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(TimerEdge, FarFutureTimersCrossWheelHorizon) {
  // Interleave wheel-window and beyond-horizon schedules; firing order
  // must be exactly (when, seq) regardless of which structure each event
  // landed in. A heap-only loop is the oracle.
  const std::vector<std::int64_t> whens = {
      50, 4450, 150, 399, 400, 401, 12'000, 350, 4450, 50,
  };
  auto run = [&](const EventLoop::Config& cfg) {
    EventLoop loop(cfg);
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < whens.size(); ++i) {
      loop.schedule_at(SimTime::nanoseconds(whens[i]),
                       [&order, i] { order.push_back(i); });
    }
    loop.run();
    return order;
  };
  EventLoop::Config no_wheel;
  no_wheel.use_timer_wheel = false;
  const auto wheeled = run(tiny_wheel());
  const auto heap_only = run(no_wheel);
  EXPECT_EQ(wheeled, heap_only);
  EXPECT_EQ(wheeled,
            (std::vector<std::size_t>{0, 9, 2, 7, 3, 4, 5, 1, 8, 6}));
}

TEST(TimerEdge, ExponentialBackoffWalksOutOfTheWheel) {
  // The retransmission pattern: each rearm doubles the delay, so attempts
  // start inside the wheel window and later ones go to the heap. All must
  // fire, each at the exact doubled timestamp.
  EventLoop loop(tiny_wheel());
  std::vector<std::int64_t> fired_at;
  const SimTime base = SimTime::nanoseconds(60);
  std::function<void(int)> rearm = [&](int attempt) {
    loop.schedule_after(base * (std::int64_t{1} << attempt), [&, attempt] {
      fired_at.push_back(loop.now().ns());
      if (attempt < 7) rearm(attempt + 1);
    });
  };
  rearm(0);
  loop.run();
  ASSERT_EQ(fired_at.size(), 8u);
  std::int64_t expect = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    expect += base.ns() << attempt;
    EXPECT_EQ(fired_at[static_cast<std::size_t>(attempt)], expect)
        << "attempt " << attempt;
  }
}

TEST(TimerEdge, EpochGuardCancelAfterFireIsInert) {
  // The loop has no cancellation API by design: callers fence callbacks
  // with an epoch. Bumping the epoch *after* the timer fired must neither
  // re-fire it nor disturb a newly armed timer under the new epoch.
  EventLoop loop;
  std::uint64_t epoch = 0;
  int fires = 0;
  auto arm = [&](SimTime delay) {
    const std::uint64_t my_epoch = epoch;
    loop.schedule_after(delay, [&, my_epoch] {
      if (my_epoch != epoch) return;  // canceled
      ++fires;
    });
  };
  arm(SimTime::nanoseconds(10));
  loop.run_until(SimTime::nanoseconds(20));
  EXPECT_EQ(fires, 1);
  ++epoch;  // cancel-after-fire: nothing pending, must be a no-op
  arm(SimTime::nanoseconds(10));
  loop.run();
  EXPECT_EQ(fires, 2);
}

TEST(TimerEdge, EpochGuardCancelBeforeFireSuppresses) {
  EventLoop loop;
  std::uint64_t epoch = 0;
  int fires = 0;
  const std::uint64_t armed_epoch = epoch;
  loop.schedule_after(SimTime::nanoseconds(10), [&, armed_epoch] {
    if (armed_epoch != epoch) return;
    ++fires;
  });
  ++epoch;  // cancel while still pending
  loop.run();
  EXPECT_EQ(fires, 0);
  EXPECT_TRUE(loop.empty());
}

TEST(TimerEdge, RunUntilHorizonIsInclusiveAcrossWheelBoundary) {
  // An event exactly at the horizon runs even when the horizon coincides
  // with a wheel-tick boundary (400ns = slots * granularity here).
  EventLoop loop(tiny_wheel());
  bool at_horizon = false;
  bool beyond = false;
  loop.schedule_at(SimTime::nanoseconds(400), [&] { at_horizon = true; });
  loop.schedule_at(SimTime::nanoseconds(401), [&] { beyond = true; });
  loop.run_until(SimTime::nanoseconds(400));
  EXPECT_TRUE(at_horizon);
  EXPECT_FALSE(beyond);
  EXPECT_EQ(loop.pending(), 1u);
}

}  // namespace
}  // namespace neutrino
