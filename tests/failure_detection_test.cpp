// Heartbeat-based CPF failure detection at the CTA (§4.1: "CPF failure
// detection and recovery" is a CTA responsibility).
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace neutrino::core {
namespace {

struct Harness {
  explicit Harness(CorePolicy policy) {
    proto.ack_timeout = SimTime::milliseconds(500);
    proto.log_scan_interval = SimTime::milliseconds(100);
    system = std::make_unique<System>(loop, policy, TopologyConfig{}, proto,
                                      costs, metrics);
  }
  sim::EventLoop loop;
  FixedCostModel costs{SimTime::microseconds(10)};
  ProtocolConfig proto;
  Metrics metrics;
  std::unique_ptr<System> system;
};

TEST(FailureDetection, SilentCrashGoesUnnoticedWithoutDetector) {
  Harness h(neutrino_policy());
  const UeId ue{42};
  h.system->frontend().preattach(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.loop.schedule_at(SimTime::microseconds(25), [&] {
    h.system->crash_cpf_silently(h.system->primary_cpf_for(ue, 0));
  });
  h.loop.run_until(SimTime::seconds(5));
  // Nobody drove recovery: the in-flight procedure is stuck forever.
  EXPECT_EQ(h.metrics.procedures_completed, 0u);
}

TEST(FailureDetection, HeartbeatsDetectAndRecover) {
  Harness h(neutrino_policy());
  h.system->cta(0).start_failure_detector(SimTime::milliseconds(10));
  const UeId ue{42};
  h.system->frontend().preattach(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  h.loop.schedule_at(SimTime::microseconds(25),
                     [&] { h.system->crash_cpf_silently(primary); });
  h.loop.run_until(SimTime::seconds(5));

  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  // Detection cost ~3 probe intervals: PCT reflects it (this is exactly
  // the time the paper's §6.4 excludes).
  const double pct =
      h.metrics.pct_for(ProcedureType::kServiceRequest).median();
  EXPECT_GE(pct, 20.0);   // at least 2 intervals
  EXPECT_LE(pct, 200.0);  // but bounded
}

TEST(FailureDetection, FasterProbingRecoversSooner) {
  double pct[2];
  int idx = 0;
  for (const auto interval :
       {SimTime::milliseconds(50), SimTime::milliseconds(5)}) {
    Harness h(neutrino_policy());
    h.system->cta(0).start_failure_detector(interval);
    const UeId ue{42};
    h.system->frontend().preattach(ue, 0);
    h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
    h.loop.schedule_at(SimTime::microseconds(25), [&] {
      h.system->crash_cpf_silently(h.system->primary_cpf_for(ue, 0));
    });
    h.loop.run_until(SimTime::seconds(10));
    ASSERT_EQ(h.metrics.procedures_completed, 1u);
    pct[idx++] = h.metrics.pct_for(ProcedureType::kServiceRequest).median();
  }
  EXPECT_LT(pct[1], pct[0]);
}

TEST(FailureDetection, LiveCpfsNeverDeclaredFailed) {
  Harness h(neutrino_policy());
  h.system->cta(0).start_failure_detector(SimTime::milliseconds(5));
  for (int i = 0; i < 50; ++i) {
    h.system->frontend().start_procedure(UeId{static_cast<std::uint64_t>(i)},
                                         ProcedureType::kAttach);
  }
  h.loop.run_until(SimTime::seconds(3));
  EXPECT_EQ(h.metrics.procedures_completed, 50u);
  EXPECT_EQ(h.metrics.reattaches, 0u);  // no false positives
}

}  // namespace
}  // namespace neutrino::core
