// Byte/bit cursor primitives underlying every codec.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "serialize/wire.hpp"

namespace neutrino::wire {
namespace {

TEST(ByteWriter, LittleAndBigEndian) {
  ByteWriter w;
  w.put_le<std::uint32_t>(0x01020304);
  w.put_be<std::uint32_t>(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
  EXPECT_EQ(b[4], 0x01);
  EXPECT_EQ(b[7], 0x04);
}

TEST(ByteWriter, AlignPads) {
  ByteWriter w;
  w.put_u8(1);
  w.align_to(4);
  EXPECT_EQ(w.size(), 4u);
  w.align_to(4);
  EXPECT_EQ(w.size(), 4u);  // already aligned: no-op
}

TEST(ByteWriter, PatchLe32) {
  ByteWriter w;
  w.put_le<std::uint32_t>(0);
  w.put_u8(0xaa);
  w.patch_le32(0, 0xdeadbeef);
  EXPECT_EQ(w.bytes()[0], 0xef);
  EXPECT_EQ(w.bytes()[3], 0xde);
  EXPECT_EQ(w.bytes()[4], 0xaa);
}

TEST(ByteReader, RoundTripsAndBoundsChecks) {
  ByteWriter w;
  w.put_le<std::uint64_t>(0x1122334455667788ULL);
  w.put_be<std::uint16_t>(0xcafe);
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.get_le<std::uint64_t>(), 0x1122334455667788ULL);
  EXPECT_EQ(*r.get_be<std::uint16_t>(), 0xcafe);
  EXPECT_FALSE(r.get_u8().is_ok());  // exhausted
}

TEST(ByteReader, SkipAndAlign) {
  Bytes data(10, 0x55);
  ByteReader r{BytesView(data)};
  EXPECT_TRUE(r.skip(3).is_ok());
  EXPECT_TRUE(r.align_to(4).is_ok());
  EXPECT_EQ(r.position(), 4u);
  EXPECT_FALSE(r.skip(100).is_ok());
}

TEST(BitWriter, MsbFirstPacking) {
  BitWriter w;
  w.put_bit(true);
  w.put_bit(false);
  w.put_bit(true);
  w.align();
  ASSERT_EQ(w.size_bytes(), 1u);
  EXPECT_EQ(w.bytes()[0], 0b1010'0000);
}

TEST(BitWriter, PutBitsWritesExactWidth) {
  BitWriter w;
  w.put_bits(0b101, 3);
  w.put_bits(0b11, 2);
  w.align();
  EXPECT_EQ(w.bytes()[0], 0b1011'1000);
}

TEST(BitRoundTrip, RandomBitPatterns) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> values;
    for (int i = 0; i < 20; ++i) {
      const unsigned nbits = 1 + static_cast<unsigned>(rng.next_below(24));
      const std::uint64_t v = rng.next_u64() & ((1ULL << nbits) - 1);
      values.emplace_back(v, nbits);
      w.put_bits(v, nbits);
    }
    BitReader r(w.bytes());
    for (const auto& [v, nbits] : values) {
      auto got = r.get_bits(nbits);
      ASSERT_TRUE(got.is_ok());
      EXPECT_EQ(*got, v);
    }
  }
}

TEST(BitReader, AlignedBytesAfterBits) {
  BitWriter w;
  w.put_bits(0b11, 2);
  const Bytes payload = {0xde, 0xad};
  w.put_aligned_bytes(BytesView(payload));
  BitReader r(w.bytes());
  EXPECT_EQ(*r.get_bits(2), 0b11u);
  auto bytes = r.get_aligned_bytes(2);
  ASSERT_TRUE(bytes.is_ok());
  EXPECT_EQ((*bytes)[0], 0xde);
  EXPECT_EQ((*bytes)[1], 0xad);
}

TEST(BitReader, TruncationReported) {
  BitWriter w;
  w.put_bits(0xff, 8);
  BitReader r(w.bytes());
  EXPECT_TRUE(r.get_bits(8).is_ok());
  EXPECT_FALSE(r.get_bit().is_ok());
  EXPECT_FALSE(r.get_aligned_bytes(1).is_ok());
}

}  // namespace
}  // namespace neutrino::wire
