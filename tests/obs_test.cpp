// Observability subsystem: JSON writer, metrics registry, periodic
// sampler, pool occupancy, and the procedure tracer driven end-to-end
// through an attach + handover + CPF-crash scenario.
#include <gtest/gtest.h>

#include <utility>

#include "common/stats.hpp"
#include "core/cost_model.hpp"
#include "core/system.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "sim/server_pool.hpp"

namespace neutrino {
namespace {

// ---------------------------------------------------------------- Json --

TEST(Json, ScalarsAndNesting) {
  obs::Json doc;
  doc["schema"] = "test";
  doc["version"] = 1;
  doc["ratio"] = 0.5;
  doc["on"] = true;
  doc["nothing"] = nullptr;
  doc["nested"]["list"].push_back(1);
  doc["nested"]["list"].push_back(2);
  EXPECT_EQ(doc.dump(0),
            R"({"schema":"test","version":1,"ratio":0.5,"on":true,)"
            R"("nothing":null,"nested":{"list":[1,2]}})");
}

TEST(Json, KeysKeepInsertionOrder) {
  obs::Json doc;
  doc["z"] = 1;
  doc["a"] = 2;
  doc["z"] = 3;  // re-assign must not re-order or duplicate
  EXPECT_EQ(doc.dump(0), R"({"z":3,"a":2})");
}

TEST(Json, EscapesStrings) {
  obs::Json doc;
  doc["s"] = "a\"b\\c\nd\te";
  EXPECT_EQ(doc.dump(0), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, EmptyContainersAndNonFinite) {
  obs::Json doc;
  doc["arr"].make_array();
  doc["obj"].make_object();
  doc["inf"] = 1.0 / 0.0;  // JSON has no inf: becomes null
  EXPECT_EQ(doc.dump(0), R"({"arr":[],"obj":{},"inf":null})");
}

// ------------------------------------------------------------ Registry --

TEST(Registry, SameNameAndLabelsYieldSameInstrument) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.count", {{"k", "v"}, {"a", "b"}});
  // Label order must not matter: keys sort labels.
  obs::Counter& b = reg.counter("x.count", {{"a", "b"}, {"k", "v"}});
  EXPECT_EQ(&a, &b);
  ++a;
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(obs::Registry::key("x.count", {{"k", "v"}, {"a", "b"}}),
            "x.count{a=b,k=v}");
}

TEST(Registry, FindDoesNotCreate) {
  obs::Registry reg;
  EXPECT_EQ(reg.find_counter("untouched"), nullptr);
  reg.counter("touched") += 3;
  ASSERT_NE(reg.find_counter("touched"), nullptr);
  EXPECT_EQ(reg.find_counter("touched")->value(), 3u);
}

TEST(Registry, ReferencesSurviveRegistryMove) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("stable");
  obs::Registry moved = std::move(reg);
  ++c;
  ASSERT_NE(moved.find_counter("stable"), nullptr);
  EXPECT_EQ(moved.find_counter("stable")->value(), 1u);
}

TEST(Registry, GaugeHighWatermarkAndTimeSeries) {
  obs::Registry reg;
  reg.gauge("g").high_watermark(5);
  reg.gauge("g").high_watermark(3);  // lower value must not win
  EXPECT_EQ(reg.gauge("g").value(), 5.0);
  reg.time_series("t").push(SimTime::milliseconds(1), 7.0);
  reg.time_series("t").push(SimTime::milliseconds(2), 4.0);
  EXPECT_EQ(reg.time_series("t").points().size(), 2u);
  EXPECT_EQ(reg.time_series("t").max(), 7.0);
}

TEST(Registry, VisitorsIterateInKeyOrder) {
  obs::Registry reg;
  reg.counter("b");
  reg.counter("a", {{"z", "1"}});
  reg.counter("a");
  std::vector<std::string> keys;
  reg.for_each_counter(
      [&](const std::string& k, const obs::Counter&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "a{z=1}", "b"}));
}

// ----------------------------------------------------- stats::summary --

TEST(StatsSummary, MatchesPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(i);
  const auto s = rec.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, rec.mean());
  EXPECT_DOUBLE_EQ(s.p50, rec.percentile(0.5));
  EXPECT_DOUBLE_EQ(s.p99, rec.percentile(0.99));
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_EQ(LatencyRecorder{}.summary().count, 0u);
}

// -------------------------------------------- ServerPool + sampler ----

TEST(ServerPoolOccupancy, TracksDepthAndBacklog) {
  sim::EventLoop loop;
  sim::ServerPool pool(loop, 1);
  int done = 0;
  pool.submit(SimTime::microseconds(10), [&] { ++done; });
  pool.submit(SimTime::microseconds(10), [&] { ++done; });
  EXPECT_EQ(pool.queue_depth(), 2u);
  EXPECT_EQ(pool.occupancy().backlog, SimTime::microseconds(20));
  loop.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.occupancy().backlog, SimTime{});
}

TEST(ServerPoolOccupancy, ResetDropsInflight) {
  sim::EventLoop loop;
  sim::ServerPool pool(loop, 1);
  int done = 0;
  pool.submit(SimTime::microseconds(10), [&] { ++done; });
  pool.reset();
  EXPECT_EQ(pool.queue_depth(), 0u);
  loop.run();
  EXPECT_EQ(done, 0);  // crashed work never completes
}

TEST(PeriodicSampler, BoundedTickChain) {
  sim::EventLoop loop;
  int ticks = 0;
  obs::PeriodicSampler::schedule(loop, SimTime::milliseconds(1),
                                 SimTime::milliseconds(10),
                                 [&] { ++ticks; });
  loop.run();  // a bounded chain must drain — this returning is the test
  EXPECT_EQ(ticks, 10);
}

// ------------------------------------------------------- ProcTracer ----

// Attach + inter-region handover + a service request whose primary CPF
// crashes mid-flight (Neutrino replays it onto a backup).
struct TracedScenario : ::testing::Test {
  void SetUp() override {
    core::TopologyConfig topo;
    topo.l1_per_l2 = 2;
    system = std::make_unique<core::System>(
        loop, core::neutrino_policy(), topo, core::ProtocolConfig{}, costs,
        metrics);
    obs::TracerConfig tc;
    tc.record_events = true;
    tc.keep_all = true;
    tracer = std::make_unique<obs::ProcTracer>(tc, &metrics.registry);
    system->attach_tracer(*tracer);

    system->frontend().start_procedure(attacher,
                                       core::ProcedureType::kAttach);
    system->frontend().preattach(walker, 0);
    loop.schedule_at(SimTime::milliseconds(1), [&] {
      system->frontend().start_procedure(
          walker, core::ProcedureType::kHandover, /*target_region=*/1);
    });
    system->frontend().preattach(victim, 0);
    loop.schedule_at(SimTime::milliseconds(2), [&] {
      system->frontend().start_procedure(
          victim, core::ProcedureType::kServiceRequest);
    });
    const CpfId doomed = system->primary_cpf_for(victim, 0);
    loop.schedule_at(SimTime::milliseconds(2) + SimTime::microseconds(25),
                     [&, doomed] { system->crash_cpf(doomed); });
    loop.run_until(SimTime::seconds(10));
  }

  sim::EventLoop loop;
  core::FixedCostModel costs{SimTime::microseconds(10)};
  core::Metrics metrics;
  std::unique_ptr<core::System> system;
  std::unique_ptr<obs::ProcTracer> tracer;
  const UeId attacher{1};
  const UeId walker{2};
  const UeId victim{7};
};

TEST_F(TracedScenario, AllProceduresComplete) {
  EXPECT_EQ(metrics.procedures_completed, 3u);
  EXPECT_EQ(tracer->spans_completed(), 3u);
  EXPECT_EQ(tracer->active_spans(), 0u);
  EXPECT_EQ(tracer->all().size(), 3u);
}

TEST_F(TracedScenario, TimelinesAreMonotoneAndComplete) {
  for (const obs::Span& s : tracer->all()) {
    EXPECT_TRUE(s.completed);
    EXPECT_GT(s.end, s.start) << "ue " << s.ue.value();
    ASSERT_FALSE(s.events.empty()) << "ue " << s.ue.value();
    // First hop is the UE's uplink leaving at procedure start.
    EXPECT_EQ(s.events.front().start, s.start);
    SimTime prev = s.start;
    for (const obs::HopEvent& e : s.events) {
      EXPECT_GE(e.start, prev) << "hops must be recorded in time order";
      EXPECT_GE(e.end, e.start);
      prev = e.start;
    }
  }
}

TEST_F(TracedScenario, DecompositionTilesThePct) {
  for (const obs::Span& s : tracer->all()) {
    // Charged-to-kOther remainder makes the components exact.
    EXPECT_EQ(s.attributed_ns(), s.duration().ns())
        << "ue " << s.ue.value();
  }
  // And the folded registry histograms agree: per proc type, the mean
  // components sum to the mean total.
  for (const auto type :
       {core::ProcedureType::kAttach, core::ProcedureType::kHandover,
        core::ProcedureType::kServiceRequest}) {
    const std::string proc{core::to_string(type)};
    const LatencyRecorder* total = metrics.registry.find_histogram(
        "core.pct_decomp_ms", {{"proc", proc}, {"component", "total"}});
    ASSERT_NE(total, nullptr) << proc;
    double component_sum = 0;
    for (std::size_t c = 0; c < obs::kHopClasses; ++c) {
      const LatencyRecorder* h = metrics.registry.find_histogram(
          "core.pct_decomp_ms",
          {{"proc", proc},
           {"component",
            std::string{to_string(static_cast<obs::HopClass>(c))}}});
      ASSERT_NE(h, nullptr) << proc;
      component_sum += h->mean();
    }
    EXPECT_NEAR(component_sum, total->mean(), total->mean() * 0.01) << proc;
  }
}

TEST_F(TracedScenario, CrashCrossingSpanIsRetainedAsFailed) {
  ASSERT_EQ(tracer->failed().size(), 1u);
  const obs::Span& s = tracer->failed().front();
  EXPECT_EQ(s.ue, victim);
  EXPECT_TRUE(s.under_failure);
  EXPECT_TRUE(s.completed);
  // Its timeline crosses two CPFs: the doomed primary and the backup the
  // CTA replayed onto.
  bool saw_second_cpf = false;
  const CpfId doomed = system->primary_cpf_for(victim, 0);
  for (const obs::HopEvent& e : s.events) {
    if (std::string_view{e.node} == "cpf" && e.node_id != doomed.value()) {
      saw_second_cpf = true;
    }
  }
  EXPECT_TRUE(saw_second_cpf);
  EXPECT_GE(metrics.replays.value(), 1u);
}

TEST_F(TracedScenario, RegistryCountersMatchLegacyMetrics) {
  const obs::Registry& reg = metrics.registry;
  const auto expect_matches = [&](const char* name, const obs::Counter& c) {
    const obs::Counter* found = reg.find_counter(name);
    ASSERT_NE(found, nullptr) << name;
    EXPECT_EQ(found->value(), c.value()) << name;
  };
  expect_matches("core.procedures_started", metrics.procedures_started);
  expect_matches("core.procedures_completed", metrics.procedures_completed);
  expect_matches("core.replays", metrics.replays);
  expect_matches("core.checkpoints_sent", metrics.checkpoints_sent);
  expect_matches("core.ryw_violations", metrics.ryw_violations);

  // Per-proc completion counters sum to the flat total.
  std::uint64_t completions = 0;
  reg.for_each_counter([&](const std::string& k, const obs::Counter& c) {
    if (k.rfind("frontend.completions", 0) == 0) completions += c.value();
  });
  EXPECT_EQ(completions, metrics.procedures_completed.value());

  // The crash and its recovery were counted with labels.
  std::uint64_t crashes = 0, recoveries = 0;
  reg.for_each_counter([&](const std::string& k, const obs::Counter& c) {
    if (k.rfind("cpf.crashes", 0) == 0) crashes += c.value();
    if (k.rfind("cta.recoveries", 0) == 0) recoveries += c.value();
  });
  EXPECT_EQ(crashes, 1u);
  EXPECT_GE(recoveries, 1u);
}

TEST_F(TracedScenario, DumpJsonCarriesTimelines) {
  const obs::Json dump = tracer->dump_json();
  const std::string out = dump.dump(0);
  EXPECT_NE(out.find("\"schema\":\"neutrino.trace-dump\""), std::string::npos);
  EXPECT_NE(out.find("\"hops\""), std::string::npos);
  EXPECT_NE(out.find("service_request"), std::string::npos);
}

TEST(TracerDisabled, SystemRunsWithoutTracer) {
  sim::EventLoop loop;
  core::FixedCostModel costs{SimTime::microseconds(10)};
  core::Metrics metrics;
  core::System system(loop, core::neutrino_policy(), {}, {}, costs, metrics);
  system.frontend().start_procedure(UeId{1}, core::ProcedureType::kAttach);
  loop.run_until(SimTime::seconds(5));
  EXPECT_EQ(metrics.procedures_completed, 1u);
}

}  // namespace
}  // namespace neutrino
