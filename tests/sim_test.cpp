// Event loop and server pool semantics.
#include <gtest/gtest.h>

#include "sim/event_loop.hpp"
#include "sim/server_pool.hpp"

namespace neutrino::sim {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime::microseconds(30), [&] { order.push_back(3); });
  loop.schedule_at(SimTime::microseconds(10), [&] { order.push_back(1); });
  loop.schedule_at(SimTime::microseconds(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime::microseconds(30));
}

TEST(EventLoop, StableFifoAtEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(SimTime::microseconds(5), [&, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, NestedSchedulingFromCallbacks) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(SimTime::microseconds(1), [&] {
    loop.schedule_after(SimTime::microseconds(1), [&] { ++fired; });
  });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), SimTime::microseconds(2));
}

TEST(EventLoop, RunUntilHorizonLeavesLaterEvents) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(SimTime::milliseconds(1), [&] { ++fired; });
  loop.schedule_at(SimTime::milliseconds(5), [&] { ++fired; });
  loop.run_until(SimTime::milliseconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), SimTime::milliseconds(2));
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(ServerPool, SingleCoreQueues) {
  EventLoop loop;
  ServerPool pool(loop, 1);
  std::vector<SimTime> completions;
  // Two 10us jobs submitted together on one core: second waits.
  pool.submit(SimTime::microseconds(10),
              [&] { completions.push_back(loop.now()); });
  pool.submit(SimTime::microseconds(10),
              [&] { completions.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], SimTime::microseconds(10));
  EXPECT_EQ(completions[1], SimTime::microseconds(20));
}

TEST(ServerPool, TwoCoresRunInParallel) {
  EventLoop loop;
  ServerPool pool(loop, 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    pool.submit(SimTime::microseconds(10),
                [&] { completions.push_back(loop.now()); });
  }
  loop.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], SimTime::microseconds(10));
  EXPECT_EQ(completions[1], SimTime::microseconds(10));
  EXPECT_EQ(completions[2], SimTime::microseconds(20));
  EXPECT_EQ(completions[3], SimTime::microseconds(20));
}

TEST(ServerPool, BacklogReflectsQueueing) {
  EventLoop loop;
  ServerPool pool(loop, 1);
  EXPECT_EQ(pool.backlog(), SimTime{});
  pool.submit(SimTime::microseconds(50), [] {});
  EXPECT_EQ(pool.backlog(), SimTime::microseconds(50));
}

TEST(ServerPool, ResetDropsInFlightWork) {
  EventLoop loop;
  ServerPool pool(loop, 1);
  int completed = 0;
  pool.submit(SimTime::microseconds(10), [&] { ++completed; });
  pool.reset();  // crash before the job finishes
  pool.submit(SimTime::microseconds(10), [&] { ++completed; });
  loop.run();
  EXPECT_EQ(completed, 1);
}

TEST(ServerPool, SaturationKneeAppears) {
  // Offered load beyond capacity must grow the backlog roughly linearly:
  // the mechanism behind every "saturation region" in the paper's figures.
  EventLoop loop;
  ServerPool pool(loop, 1);
  // 1 job per 10us, each requiring 15us: 50% overload.
  SimTime last_completion;
  for (int i = 0; i < 100; ++i) {
    loop.schedule_at(SimTime::microseconds(10 * i), [&] {
      pool.submit(SimTime::microseconds(15),
                  [&] { last_completion = loop.now(); });
    });
  }
  loop.run();
  // 100 jobs x 15us = 1500us of work arriving over ~1000us.
  EXPECT_EQ(last_completion, SimTime::microseconds(10 + 1500 - 10));
}

}  // namespace
}  // namespace neutrino::sim
