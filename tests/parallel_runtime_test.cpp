// sim/parallel: SPSC channel semantics and ShardedRuntime window
// scheduling/determinism, independent of the core model.
#include "sim/parallel/runtime.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/parallel/spsc_queue.hpp"

namespace neutrino::sim::parallel {
namespace {

TEST(SpscChannel, FifoWithinRing) {
  SpscChannel<int> ch(8);
  for (int i = 0; i < 6; ++i) ch.push(i);
  std::vector<int> got;
  const std::size_t n = ch.drain([&](int&& v) { got.push_back(v); });
  EXPECT_EQ(n, 6u);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_TRUE(ch.empty());
}

TEST(SpscChannel, OverflowPreservesFifo) {
  SpscChannel<int> ch(4);
  for (int i = 0; i < 100; ++i) ch.push(i);  // 96 land in the spill
  std::vector<int> got;
  ch.drain([&](int&& v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
  // After a full drain the ring is usable again.
  ch.push(7);
  int last = -1;
  EXPECT_EQ(ch.drain([&](int&& v) { last = v; }), 1u);
  EXPECT_EQ(last, 7);
}

// ---------------------------------------------------------------------------
// ShardedRuntime: a ring of shards passing a hop counter around. The link
// latency is 1ms and the lookahead 1ms − 1ns, so every hop crosses a
// window boundary.
// ---------------------------------------------------------------------------

struct HopPayload {
  int hops_left = 0;
};

struct RingRun {
  // Per shard: (sim time ns, hops_left, rng draw) for every hop executed.
  std::vector<std::vector<std::tuple<std::int64_t, int, std::uint64_t>>> logs;
  std::uint64_t windows = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t events = 0;
};

RingRun run_ring(std::size_t shards, std::size_t threads, int hops) {
  using Runtime = ShardedRuntime<HopPayload>;
  Runtime::Config config;
  config.shards = shards;
  config.threads = threads;
  config.lookahead = SimTime::milliseconds(1) - SimTime::nanoseconds(1);
  config.rng_seed = 7;
  Runtime rt(config);

  RingRun run;
  run.logs.resize(shards);
  const SimTime link = SimTime::milliseconds(1);

  // The hop body: log, then forward to the next shard in the ring.
  auto hop = [&](std::size_t shard, int hops_left, auto&& self) -> void {
    run.logs[shard].emplace_back(rt.loop(shard).now().ns(), hops_left,
                                 rt.rng(shard).next_u64());
    if (hops_left > 0) {
      rt.post(shard, (shard + 1) % shards, rt.loop(shard).now() + link,
              HopPayload{hops_left - 1});
    }
    (void)self;
  };

  // Every shard starts one token at a slightly different time.
  for (std::size_t s = 0; s < shards; ++s) {
    rt.loop(s).schedule_at(
        SimTime::microseconds(static_cast<std::int64_t>(10 * s)),
        [&, s] { hop(s, hops, hop); });
  }

  rt.run_until(SimTime::seconds(60), [&](std::size_t dst, SimTime arrival,
                                         HopPayload&& p) {
    const int hops_left = p.hops_left;
    rt.loop(dst).schedule_at(arrival, [&, dst, hops_left] {
      hop(dst, hops_left, hop);
    });
  });

  run.windows = rt.stats().windows;
  run.cross_messages = rt.stats().cross_messages;
  run.events = rt.events_executed();
  return run;
}

TEST(ShardedRuntime, RingCompletesAndCrosses) {
  const RingRun run = run_ring(/*shards=*/4, /*threads=*/2, /*hops=*/16);
  // 4 tokens × 17 hop executions (16 forwards each).
  EXPECT_EQ(run.events, 4u * 17u);
  EXPECT_EQ(run.cross_messages, 4u * 16u);
  EXPECT_GT(run.windows, 0u);
  for (const auto& log : run.logs) EXPECT_EQ(log.size(), 17u);
}

TEST(ShardedRuntime, BitIdenticalAcrossThreadCounts) {
  const RingRun one = run_ring(4, 1, 32);
  const RingRun two = run_ring(4, 2, 32);
  const RingRun four = run_ring(4, 4, 32);
  const RingRun eight = run_ring(4, 8, 32);  // oversubscribed on purpose
  EXPECT_EQ(one.logs, two.logs);
  EXPECT_EQ(one.logs, four.logs);
  EXPECT_EQ(one.logs, eight.logs);
  EXPECT_EQ(one.windows, two.windows);
  EXPECT_EQ(one.windows, four.windows);
  EXPECT_EQ(one.cross_messages, four.cross_messages);
  EXPECT_EQ(one.events, four.events);
}

TEST(ShardedRuntime, SingleShardRunsOneWindow) {
  // lookahead = max() (no cross traffic possible): the whole horizon is
  // one window — the legacy single-threaded loop with extra bookkeeping.
  using Runtime = ShardedRuntime<int>;
  Runtime::Config config;  // shards = threads = 1, lookahead = max
  Runtime rt(config);
  std::vector<int> order;
  rt.loop(0).schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  rt.loop(0).schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  rt.run_until(SimTime::seconds(10),
               [](std::size_t, SimTime, int&&) { FAIL(); });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(rt.stats().windows, 1u);
  EXPECT_EQ(rt.stats().cross_messages, 0u);
  EXPECT_EQ(rt.loop(0).now(), SimTime::seconds(10));
}

TEST(ShardedRuntime, FastForwardSkipsIdleGaps) {
  // Two event clusters 10s apart with a 1ms lookahead: the window start
  // fast-forwards over the gap instead of stepping 10,000 empty windows.
  using Runtime = ShardedRuntime<int>;
  Runtime::Config config;
  config.shards = 2;
  config.lookahead = SimTime::milliseconds(1);
  Runtime rt(config);
  int ran = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    rt.loop(s).schedule_at(SimTime::nanoseconds(0), [&] { ++ran; });
    rt.loop(s).schedule_at(SimTime::seconds(10), [&] { ++ran; });
  }
  rt.run_until(SimTime::seconds(20),
               [](std::size_t, SimTime, int&&) { FAIL(); });
  EXPECT_EQ(ran, 4);
  EXPECT_EQ(rt.stats().windows, 2u);
}

TEST(ShardedRuntime, ChannelOverflowBurstStaysOrdered) {
  // One event posts a burst far beyond the ring capacity; delivery must
  // preserve push order (ring prefix, then spill, FIFO).
  using Runtime = ShardedRuntime<int>;
  Runtime::Config config;
  config.shards = 2;
  config.threads = 2;
  config.lookahead = SimTime::milliseconds(1) - SimTime::nanoseconds(1);
  config.channel_capacity = 4;
  Runtime rt(config);
  constexpr int kBurst = 1000;
  rt.loop(0).schedule_at(SimTime::nanoseconds(0), [&] {
    for (int i = 0; i < kBurst; ++i) {
      rt.post(0, 1, rt.loop(0).now() + SimTime::milliseconds(1), int{i});
    }
  });
  std::vector<int> delivered;
  rt.run_until(SimTime::seconds(1),
               [&](std::size_t dst, SimTime arrival, int&& v) {
                 EXPECT_EQ(dst, 1u);
                 delivered.push_back(v);
                 rt.loop(dst).schedule_at(arrival, [] {});
               });
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(delivered[i], i);
}

TEST(ShardedRuntime, PerShardRngStreamsAreJumps) {
  using Runtime = ShardedRuntime<int>;
  Runtime::Config config;
  config.shards = 3;
  config.rng_seed = 123;
  Runtime rt(config);
  Rng expect(123);
  for (std::size_t s = 0; s < 3; ++s) {
    Rng copy = expect;
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(rt.rng(s).next_u64(), copy.next_u64());
    }
    expect.jump();
  }
}

}  // namespace
}  // namespace neutrino::sim::parallel
