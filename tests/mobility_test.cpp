// City-scale mobility engine (DESIGN.md §18): trajectory determinism,
// crossing→record correctness against hand-computed geometry, ping-pong
// hysteresis, the rate-vs-density validation (arXiv 1607.06439 with the
// finite-block correction), shard-block confinement, the scenario/overlay
// wiring, and bitwise determinism of a commuter-crossing replay across
// worker-thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/sharded_system.hpp"
#include "geo/region_plan.hpp"
#include "traffic/mobility.hpp"
#include "traffic/scenario.hpp"

namespace neutrino::traffic {
namespace {

// ---------------------------------------------------------------------------
// Grid geometry
// ---------------------------------------------------------------------------

TEST(MobilityGrid, MakeAcceptsOnlyPowerOfFourGrids) {
  EXPECT_EQ(MobilityGrid::make(16, 1000.0).dim, 4u);
  EXPECT_EQ(MobilityGrid::make(64, 1000.0).dim, 8u);
  EXPECT_EQ(MobilityGrid::make(4, 1000.0).dim, 2u);
  EXPECT_EQ(MobilityGrid::make(1, 1000.0).dim, 0u);
  EXPECT_EQ(MobilityGrid::make(8, 1000.0).dim, 0u);
  EXPECT_EQ(MobilityGrid::make(12, 1000.0).dim, 0u);
}

TEST(MobilityGrid, MortonRoundTripCoversGrid) {
  const MobilityGrid g = MobilityGrid::make(64, 500.0);
  std::set<std::uint32_t> seen;
  for (std::uint32_t row = 0; row < g.dim; ++row) {
    for (std::uint32_t col = 0; col < g.dim; ++col) {
      const std::uint32_t idx = g.index_of(row, col);
      EXPECT_LT(idx, 64u);
      seen.insert(idx);
      std::uint32_t r = 0, c = 0;
      g.cell_of(idx, r, c);
      EXPECT_EQ(r, row);
      EXPECT_EQ(c, col);
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

// The tentpole's coordinate contract: the Morton grid's region indices are
// exactly RegionPlan::from_area's lexicographic geohash indices, so
// trajectories, the topology's l2_of(i) == i/4 grouping and the sharded
// runtime's contiguous blocks all describe the same geography.
TEST(MobilityGrid, MortonIndicesMatchRegionPlan) {
  const geo::GeoCell area = geo::geohash_decode("01");
  const geo::RegionPlan plan = geo::RegionPlan::from_area(area, 4);
  ASSERT_EQ(plan.regions().size(), 16u);
  const MobilityGrid grid = MobilityGrid::make(16, 1000.0);
  for (const geo::PlannedRegion& r : plan.regions()) {
    const double dlat = r.cell.lat_hi - r.cell.lat_lo;
    const double dlon = r.cell.lon_hi - r.cell.lon_lo;
    const auto row = static_cast<std::uint32_t>(
        std::lround((r.cell.lat_lo - area.lat_lo) / dlat));
    const auto col = static_cast<std::uint32_t>(
        std::lround((r.cell.lon_lo - area.lon_lo) / dlon));
    EXPECT_EQ(grid.index_of(row, col), r.region_index) << r.geohash;
  }
}

// ---------------------------------------------------------------------------
// Walker: crossing geometry, hysteresis, ping-pong
// ---------------------------------------------------------------------------

struct WalkerHarness {
  MobilityGrid grid = MobilityGrid::make(16, 1000.0);
  std::vector<trace::TraceRecord> records;
  detail::MobilityWalker walker;
  explicit WalkerHarness(double h, double duration_s = 1000.0,
                         double pingpong_s = 20.0)
      : walker(grid, h, duration_s, pingpong_s, UeId{7}, records) {}
};

TEST(MobilityWalker, StraightEastLegEmitsHysteresisShiftedCrossings) {
  WalkerHarness hz(/*h=*/25.0);
  hz.walker.start_at(500.0, 500.0);
  hz.walker.leg_to(3500.0, 500.0, /*v=*/10.0, /*t0=*/0.0);
  ASSERT_EQ(hz.records.size(), 3u);
  // Crossing fires at penetration h into the neighbor (A3 offset): x =
  // 1025, 2025, 3025 at 10 m/s. Morton targets for row 0: col 1 -> 2,
  // col 2 -> 8, col 3 -> 10.
  const std::uint32_t targets[3] = {2, 8, 10};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(hz.records[i].target_region, targets[i]) << i;
    EXPECT_EQ(hz.records[i].type, core::ProcedureType::kHandover);
    EXPECT_EQ(hz.records[i].ue, UeId{7});
    const double expect_s = (1000.0 * (i + 1) + 25.0 - 500.0) / 10.0;
    EXPECT_NEAR(hz.records[i].at.sec(), expect_s, 1e-6) << i;
  }
  EXPECT_EQ(hz.walker.crossings(), 3u);
  EXPECT_EQ(hz.walker.pingpongs(), 0u);
}

TEST(MobilityWalker, ShallowExcursionAbsorbedByHysteresis) {
  WalkerHarness hz(/*h=*/25.0);
  hz.walker.start_at(500.0, 500.0);
  // Peaks 15 m past the boundary: inside the 25 m band, no handover.
  double t = hz.walker.leg_to(1015.0, 500.0, 100.0, 0.0);
  hz.walker.leg_to(500.0, 500.0, 100.0, t);
  EXPECT_EQ(hz.walker.crossings(), 0u);
  EXPECT_TRUE(hz.records.empty());
}

TEST(MobilityWalker, DeepExcursionMakesAPingpongPair) {
  WalkerHarness hz(/*h=*/25.0);
  hz.walker.start_at(500.0, 500.0);
  double t = hz.walker.leg_to(1100.0, 500.0, 100.0, 0.0);
  hz.walker.leg_to(500.0, 500.0, 100.0, t);
  ASSERT_EQ(hz.records.size(), 2u);
  EXPECT_EQ(hz.records[0].target_region, 2u);  // out into (row 0, col 1)
  EXPECT_EQ(hz.records[1].target_region, 0u);  // and back within the window
  EXPECT_EQ(hz.walker.pingpongs(), 1u);
}

TEST(MobilityWalker, ReturnOutsideWindowIsNotAPingpong) {
  // Same round trip at walking pace: the return lands > 20 s after the
  // outbound crossing, outside the 3GPP time-of-stay window.
  WalkerHarness hz(/*h=*/25.0, /*duration_s=*/10000.0, /*pingpong_s=*/20.0);
  hz.walker.start_at(500.0, 500.0);
  double t = hz.walker.leg_to(1100.0, 500.0, 1.4, 0.0);
  hz.walker.leg_to(500.0, 500.0, 1.4, t);
  EXPECT_EQ(hz.walker.crossings(), 2u);
  EXPECT_EQ(hz.walker.pingpongs(), 0u);
}

// ---------------------------------------------------------------------------
// Stream generation: determinism, confinement, rate validation
// ---------------------------------------------------------------------------

MobilityConfig small_config() {
  MobilityConfig m;
  m.regions = 16;
  m.shard_blocks = 2;
  m.population = 2'000;
  m.duration = SimTime::seconds(120);
  m.seed = 5;
  return m;
}

TEST(MobilityStream, DeterministicAndSeedSensitive) {
  const MobilityTraffic a = generate_mobility(small_config());
  const MobilityTraffic b = generate_mobility(small_config());
  ASSERT_FALSE(a.records.empty());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].at, b.records[i].at) << i;
    EXPECT_EQ(a.records[i].ue, b.records[i].ue) << i;
    EXPECT_EQ(a.records[i].target_region, b.records[i].target_region) << i;
  }
  EXPECT_TRUE(std::is_sorted(a.records.begin(), a.records.end(),
                             trace::record_before));
  MobilityConfig other = small_config();
  other.seed = 6;
  const MobilityTraffic c = generate_mobility(other);
  EXPECT_TRUE(c.records.size() != a.records.size() ||
              !std::equal(a.records.begin(), a.records.end(),
                          c.records.begin(),
                          [](const trace::TraceRecord& x,
                             const trace::TraceRecord& y) {
                            return x.at == y.at && x.ue == y.ue &&
                                   x.target_region == y.target_region;
                          }));
}

TEST(MobilityStream, TrajectoriesConfinedToShardBlocks) {
  const MobilityTraffic t = generate_mobility(small_config());
  ASSERT_FALSE(t.records.empty());
  for (const trace::TraceRecord& rec : t.records) {
    const std::uint32_t home =
        static_cast<std::uint32_t>(rec.ue.value() % 16);
    EXPECT_EQ(home / 8, rec.target_region / 8)
        << "ue " << rec.ue.value() << " crossed its shard block";
    EXPECT_EQ(rec.type, core::ProcedureType::kHandover);
  }
}

TEST(MobilityStream, NonPowerOfFourGridYieldsEmptyStream) {
  MobilityConfig m = small_config();
  m.regions = 12;
  const MobilityTraffic t = generate_mobility(m);
  EXPECT_TRUE(t.records.empty());
  EXPECT_EQ(t.stats.moving_ues, 0u);
}

TEST(MobilityStream, MeasuredRateMatchesCorrectedClosedForm) {
  // The headline validation (DESIGN.md §18): over a 2x4 km shard block the
  // vehicular class's measured crossing rate must land within the
  // documented 10% of (4/pi) v/L times the analytic finite-block
  // correction. 120 s at 20k UEs is already deep inside the regime.
  MobilityConfig m;
  m.regions = 16;
  m.shard_blocks = 2;
  m.population = 20'000;
  m.duration = SimTime::seconds(120);
  m.oscillator_fraction = 0.0;
  const MobilityTraffic t = generate_mobility(m);
  ASSERT_EQ(t.stats.classes.size(), 3u);
  const MobilityClassStats& veh = t.stats.classes[1];
  EXPECT_EQ(veh.name, "vehicular");
  ASSERT_TRUE(veh.validate_rate) << "vehicular run left the regime";
  EXPECT_GT(t.stats.block_correction, 0.5);
  EXPECT_LT(t.stats.block_correction, 1.0);
  EXPECT_LE(t.stats.worst_rate_deviation(), 0.10)
      << "measured " << veh.measured_rate_hz() << " vs corrected "
      << veh.predicted_rate_hz * t.stats.block_correction;
  // Pedestrians average barely one walked leg in 120 s — the convergence
  // gate must keep them out of the check instead of failing it.
  EXPECT_FALSE(t.stats.classes[0].validate_rate);
}

TEST(MobilityStream, OscillatorsPingpongAndGetSuppressed) {
  MobilityConfig m = small_config();
  m.oscillator_fraction = 1.0;
  m.duration = SimTime::seconds(60);
  const MobilityTraffic t = generate_mobility(m);
  EXPECT_GT(t.stats.pingpong_pairs, 0u);
  EXPECT_GT(t.stats.suppressed_excursions, 0u);
  EXPECT_EQ(t.stats.classes[2].ues, t.stats.moving_ues);
  EXPECT_FALSE(t.stats.classes[2].validate_rate);
}

// ---------------------------------------------------------------------------
// Scenario library wiring
// ---------------------------------------------------------------------------

ScenarioRequest scenario_request() {
  ScenarioRequest req;
  req.target_pps = 400.0;
  req.duration = SimTime::seconds(20);
  req.population = 1'000;
  req.regions = 16;
  req.shard_blocks = 2;
  req.seed = 9;
  return req;
}

TEST(MobilityScenario, CommuterCrossingMergesMovementIntoBackground) {
  MobilityStats stats;
  const auto gen =
      generate_scenario("commuter-crossing", scenario_request(), &stats);
  ASSERT_TRUE(gen.has_value());
  ASSERT_FALSE(gen->records.empty());
  EXPECT_TRUE(std::is_sorted(gen->records.begin(), gen->records.end(),
                             trace::record_before));
  EXPECT_GT(stats.moving_ues, 0u);
  EXPECT_GT(stats.crossings, 0u);
  const auto mobility_class = std::find_if(
      gen->per_class.begin(), gen->per_class.end(),
      [](const ClassArrivals& c) { return c.name == "mobility"; });
  ASSERT_NE(mobility_class, gen->per_class.end());
  EXPECT_EQ(mobility_class->count, stats.crossings);
  const auto handovers = std::count_if(
      gen->records.begin(), gen->records.end(),
      [](const trace::TraceRecord& r) {
        return r.type == core::ProcedureType::kHandover;
      });
  EXPECT_GE(static_cast<std::uint64_t>(handovers), stats.crossings);
}

TEST(MobilityScenario, EdgePingpongProducesPingpongPairs) {
  MobilityStats stats;
  const auto gen =
      generate_scenario("edge-pingpong", scenario_request(), &stats);
  ASSERT_TRUE(gen.has_value());
  EXPECT_GT(stats.pingpong_pairs, 0u);
  EXPECT_GT(stats.suppressed_excursions, 0u);
}

TEST(MobilityScenario, OverlayRidesOnNamedScenarioOnlyOnValidGrids) {
  ScenarioRequest req = scenario_request();
  req.mobility_overlay = true;
  MobilityStats stats;
  const auto with = generate_scenario("commuter-morning", req, &stats);
  ASSERT_TRUE(with.has_value());
  EXPECT_GT(stats.moving_ues, 0u);
  EXPECT_LE(stats.moving_ues, req.population / 5 + 1);  // the 20% slice
  const bool has_mobility_class =
      std::any_of(with->per_class.begin(), with->per_class.end(),
                  [](const ClassArrivals& c) { return c.name == "mobility"; });
  EXPECT_TRUE(has_mobility_class);

  // A 6-region topology has no 4^k grid: the overlay must quietly leave
  // the base scenario unchanged rather than emit illegal targets.
  req.regions = 6;
  MobilityStats none;
  const auto flat = generate_scenario("commuter-morning", req, &none);
  ASSERT_TRUE(flat.has_value());
  EXPECT_EQ(none.moving_ues, 0u);
  EXPECT_FALSE(
      std::any_of(flat->per_class.begin(), flat->per_class.end(),
                  [](const ClassArrivals& c) { return c.name == "mobility"; }));
}

// ---------------------------------------------------------------------------
// Replay determinism: commuter-crossing through the sharded runtime must
// not observe the worker-thread count (ISSUE acceptance: threads 1/2/4/8).
// ---------------------------------------------------------------------------

struct ReplayResult {
  core::Metrics metrics;
  std::uint64_t events = 0;
};

ReplayResult replay_commuter_crossing(std::uint32_t threads) {
  ScenarioRequest req = scenario_request();
  const auto gen = generate_scenario("commuter-crossing", req);
  EXPECT_TRUE(gen.has_value());

  const core::FixedCostModel costs{SimTime::microseconds(10)};
  core::ShardedSystem::Config cfg;
  cfg.policy = core::neutrino_policy();
  cfg.topo.l2_regions = 4;
  cfg.topo.l1_per_l2 = 4;
  cfg.shards = 2;
  cfg.threads = threads;
  core::ShardedSystem sys(cfg, costs);
  for (std::uint64_t ue = 0; ue < req.population; ++ue) {
    sys.preattach(UeId(ue), static_cast<std::uint32_t>(ue % 16));
  }
  sys.replay(gen->records);
  sys.run_until(req.duration + SimTime::seconds(2));
  return {sys.merged_metrics(), sys.events_executed()};
}

TEST(MobilityScenario, CommuterCrossingReplayIdenticalAcrossThreads) {
  const ReplayResult t1 = replay_commuter_crossing(1);
  EXPECT_GT(t1.metrics.procedures_completed, 0u);
  EXPECT_GT(t1.metrics.fast_handovers + t1.metrics.state_fetches, 0u);
  EXPECT_EQ(t1.metrics.ryw_violations, 0u);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const ReplayResult tn = replay_commuter_crossing(threads);
    EXPECT_EQ(t1.events, tn.events) << threads << " threads";
    t1.metrics.registry.for_each_counter(
        [&](const std::string& key, const obs::Counter& counter) {
          const obs::Counter* other = tn.metrics.registry.find_counter(key);
          ASSERT_NE(other, nullptr) << key << " @ " << threads;
          EXPECT_EQ(counter.value(), other->value())
              << key << " @ " << threads << " threads";
        });
  }
}

}  // namespace
}  // namespace neutrino::traffic
