// Traffic engine and named scenario library (DESIGN.md §17): statistical
// shape of the generators (heavy tail, diurnal envelope, Markov chain,
// duty cycling), bitwise determinism, and the scenario name registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <set>
#include <string>
#include <vector>

#include "traffic/engine.hpp"
#include "traffic/scenario.hpp"

namespace neutrino::traffic {
namespace {

bool records_equal(const trace::TraceRecord& a, const trace::TraceRecord& b) {
  return a.at == b.at && a.ue.value() == b.ue.value() && a.type == b.type &&
         a.target_region == b.target_region;
}

bool streams_equal(const std::vector<trace::TraceRecord>& a,
                   const std::vector<trace::TraceRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!records_equal(a[i], b[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Think-time distribution: calibration and tail shape.
// ---------------------------------------------------------------------------

TEST(ThinkTime, MeanMatchesCalibrationConstant) {
  // Finite-variance configuration (tail_alpha > 2) so the sample mean
  // concentrates: the empirical mean over many draws must match
  // median * think_mean_multiplier, which is what the engine relies on to
  // hit a class's target rate.
  ThinkTimeConfig c;
  c.sigma = 1.0;
  c.tail_weight = 0.05;
  c.tail_alpha = 2.5;
  c.tail_xm_mult = 4.0;
  Rng rng(42);
  const int n = 200'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += sample_think(c, /*median=*/1.0, rng);
  const double expected = think_mean_multiplier(c);
  EXPECT_NEAR(sum / n, expected, expected * 0.05);
}

TEST(ThinkTime, HillEstimatorRecoversParetoTailExponent) {
  // Tail-dominant configuration: at the top-0.5% threshold the log-normal
  // body's contribution is negligible, so the Hill estimator over the top
  // order statistics must recover tail_alpha.
  ThinkTimeConfig c;
  c.sigma = 0.7;
  c.tail_weight = 0.3;
  c.tail_alpha = 1.5;
  c.tail_xm_mult = 4.0;
  Rng rng(7);
  const std::size_t n = 300'000;
  std::vector<double> x(n);
  for (double& v : x) v = sample_think(c, 1.0, rng);
  std::sort(x.begin(), x.end(), std::greater<>());
  const std::size_t k = n / 200;  // top 0.5%
  double hill = 0.0;
  for (std::size_t i = 0; i < k; ++i) hill += std::log(x[i] / x[k]);
  hill /= static_cast<double>(k);
  const double alpha_hat = 1.0 / hill;
  EXPECT_NEAR(alpha_hat, c.tail_alpha, 0.3);
}

TEST(ThinkTime, DefaultConfigIsHeavierThanExponential) {
  // Default mixture: P(X > 20·median) must carry Pareto-scale mass. An
  // exponential with the same mean (~1.86) would put ~2e-5 there; the
  // mixture's tail component alone contributes 0.05·(4/20)^1.5 ≈ 4.5e-3.
  ThinkTimeConfig c;
  Rng rng(11);
  const int n = 300'000;
  int exceed = 0;
  for (int i = 0; i < n; ++i) {
    if (sample_think(c, 1.0, rng) > 20.0) ++exceed;
  }
  const double frac = static_cast<double>(exceed) / n;
  EXPECT_GT(frac, 0.003);
  EXPECT_LT(frac, 0.012);
}

// ---------------------------------------------------------------------------
// Markov chain over procedure states.
// ---------------------------------------------------------------------------

TEST(MarkovChain, TransitionFrequenciesMatchRow) {
  const MarkovChain c = detail::smartphone_chain();
  Rng rng(5);
  const int n = 100'000;
  std::array<int, kProcStates> counts{};
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(
        c.next(ProcState::kServiceRequest, rng))]++;
  }
  // smartphone_chain kServiceRequest row: {0.03, 0.52, 0.08, 0.22, 0.15}.
  const double expected[kProcStates] = {0.03, 0.52, 0.08, 0.22, 0.15};
  for (std::size_t j = 0; j < kProcStates; ++j) {
    EXPECT_NEAR(static_cast<double>(counts[j]) / n, expected[j], 0.02)
        << "state " << j;
  }
}

TEST(MarkovChain, RowsAreNormalizedBySum) {
  // A row summing to 2.0 must behave exactly like the same row halved.
  MarkovChain c;
  c.set_row(ProcState::kAttach, 1.0, 0.6, 0.0, 0.4, 0.0);
  Rng rng(9);
  const int n = 50'000;
  std::array<int, kProcStates> counts{};
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(c.next(ProcState::kAttach, rng))]++;
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.2, 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[4], 0);
}

TEST(MarkovChain, ZeroRowIsAbsorbing) {
  MarkovChain c;  // all-zero rows
  Rng rng(1);
  EXPECT_EQ(c.next(ProcState::kTau, rng), ProcState::kTau);
  EXPECT_EQ(c.next(ProcState::kAttach, rng), ProcState::kAttach);
}

// ---------------------------------------------------------------------------
// Diurnal envelope: volume preservation and shape.
// ---------------------------------------------------------------------------

TEST(Envelope, FlatWarpIsIdentity) {
  const detail::BakedEnvelope baked(DiurnalEnvelope::flat(), 10.0);
  for (double s = 0.0; s < 10.0; s += 0.37) {
    EXPECT_NEAR(baked.warp(s), s, 0.02) << s;
  }
  EXPECT_EQ(baked.warp(10.0), 10.0);
  EXPECT_EQ(baked.warp(25.0), 10.0);
}

TEST(Envelope, WarpIsMonotoneAndSkipsZeroRateOutage) {
  DiurnalEnvelope env;
  env.points = {{0.0, 0.0}, {0.35, 0.0}, {0.40, 4.0}, {0.60, 1.3},
                {1.0, 0.8}};
  const double duration = 100.0;
  const detail::BakedEnvelope baked(env, duration);
  // No activity maps into the outage: the earliest warped instant is the
  // first positive-rate cell after the 35% mark.
  EXPECT_GE(baked.warp(0.0), 0.34 * duration);
  double prev = -1.0;
  for (double s = 0.0; s < duration; s += 1.7) {
    const double t = baked.warp(s);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Engine, DiurnalVolumeAndShape) {
  // target_pps · duration arrivals regardless of the envelope (mean level
  // is normalized to 1), distributed with the envelope's shape.
  EngineConfig cfg;
  cfg.target_pps = 400.0;
  cfg.duration = SimTime::seconds(20);
  cfg.population = 200;
  cfg.seed = 3;
  cfg.envelope.points = {{0.0, 0.3}, {0.7, 1.7}, {1.0, 1.5}};  // commuter
  const GeneratedTraffic out = generate(cfg);
  const double expected = cfg.target_pps * cfg.duration.sec();
  EXPECT_NEAR(static_cast<double>(out.records.size()), expected,
              expected * 0.15);
  // Shape: the ramp's analytic mass split is 0.40 (first half) vs 0.78
  // (second half) → second/first ≈ 1.95.
  const SimTime half = SimTime::seconds(10);
  std::uint64_t first = 0, second = 0;
  for (const auto& rec : out.records) {
    (rec.at <= half ? first : second)++;
  }
  ASSERT_GT(first, 0u);
  const double ratio =
      static_cast<double>(second) / static_cast<double>(first);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.5);
}

// ---------------------------------------------------------------------------
// Engine determinism and structural validity.
// ---------------------------------------------------------------------------

EngineConfig two_class_config(std::uint64_t seed) {
  EngineConfig cfg;
  cfg.target_pps = 2'000.0;
  cfg.duration = SimTime::seconds(4);
  cfg.population = 1'000;
  cfg.regions = 4;
  cfg.seed = seed;
  cfg.classes.clear();
  DeviceClassConfig phones;
  phones.name = "smartphone";
  phones.population_share = 0.3;
  phones.chain = detail::smartphone_chain();
  cfg.classes.push_back(std::move(phones));
  DeviceClassConfig iot;
  iot.name = "massive-iot";
  iot.population_share = 0.7;
  iot.chain = detail::iot_chain();
  iot.duty_period = SimTime::milliseconds(500);
  cfg.classes.push_back(std::move(iot));
  return cfg;
}

TEST(Engine, GenerationIsBitwiseDeterministic) {
  const GeneratedTraffic a = generate(two_class_config(77));
  const GeneratedTraffic b = generate(two_class_config(77));
  ASSERT_FALSE(a.records.empty());
  EXPECT_TRUE(streams_equal(a.records, b.records));
  ASSERT_EQ(a.per_class.size(), b.per_class.size());
  for (std::size_t i = 0; i < a.per_class.size(); ++i) {
    EXPECT_EQ(a.per_class[i].count, b.per_class[i].count);
    EXPECT_EQ(a.per_class[i].ue_base, b.per_class[i].ue_base);
    EXPECT_EQ(a.per_class[i].ue_count, b.per_class[i].ue_count);
  }
}

TEST(Engine, DifferentSeedsDiverge) {
  const GeneratedTraffic a = generate(two_class_config(77));
  const GeneratedTraffic b = generate(two_class_config(78));
  EXPECT_FALSE(streams_equal(a.records, b.records));
}

TEST(Engine, RecordsValidAndSortedAndClassesTilePopulation) {
  const EngineConfig cfg = two_class_config(13);
  const GeneratedTraffic out = generate(cfg);
  ASSERT_FALSE(out.records.empty());
  EXPECT_EQ(out.total(), out.records.size());
  // UE ranges tile [0, population) in class order.
  std::uint64_t next_base = 0;
  for (const ClassArrivals& c : out.per_class) {
    EXPECT_EQ(c.ue_base, next_base) << c.name;
    next_base += c.ue_count;
  }
  EXPECT_EQ(next_base, cfg.population);
  for (std::size_t i = 0; i < out.records.size(); ++i) {
    const auto& rec = out.records[i];
    EXPECT_LT(rec.ue.value(), cfg.population);
    EXPECT_GT(rec.at, SimTime{});
    EXPECT_LE(rec.at, cfg.duration);
    // allow_inter_region is false: handover demotes to intra at home.
    EXPECT_NE(rec.type, core::ProcedureType::kHandover);
    if (rec.type == core::ProcedureType::kIntraHandover) {
      EXPECT_EQ(rec.target_region,
                rec.ue.value() % static_cast<std::uint64_t>(cfg.regions));
    }
    if (i > 0) {
      EXPECT_FALSE(trace::record_before(rec, out.records[i - 1])) << i;
    }
  }
}

TEST(Engine, DutyCycledClassSnapsToSharedWakeupSlots) {
  ScenarioRequest req;
  req.target_pps = 2'000.0;
  req.duration = SimTime::seconds(8);
  req.population = 1'000;
  req.regions = 1;
  req.seed = 9;
  const auto out = generate_scenario("iot-firmware-push", req);
  ASSERT_TRUE(out.has_value());
  // Classes: 20% smartphone then 80% massive-iot absorbing the remainder.
  ASSERT_EQ(out->per_class.size(), 2u);
  EXPECT_EQ(out->per_class[0].name, "smartphone");
  EXPECT_EQ(out->per_class[1].name, "massive-iot");
  const std::uint64_t iot_base = out->per_class[1].ue_base;
  EXPECT_EQ(iot_base, 200u);
  EXPECT_EQ(out->per_class[1].ue_count, 800u);
  // Every IoT arrival lands on one of the 8 shared wakeup instants, at
  // most once per device per slot — the synchronized-spike construction.
  std::set<std::int64_t> slots;
  std::set<std::pair<std::uint64_t, std::int64_t>> per_device;
  std::map<std::int64_t, std::uint64_t> slot_sizes;
  for (const auto& rec : out->records) {
    if (rec.ue.value() < iot_base) continue;
    slots.insert(rec.at.ns());
    EXPECT_TRUE(per_device.insert({rec.ue.value(), rec.at.ns()}).second)
        << "device " << rec.ue.value() << " woke twice in one slot";
    slot_sizes[rec.at.ns()]++;
  }
  EXPECT_GE(slots.size(), 6u);
  EXPECT_LE(slots.size(), 8u);
  // The slots are genuine population-wide spikes, not stragglers.
  for (const auto& [at, count] : slot_sizes) {
    EXPECT_GT(count, 100u) << "slot at " << at;
  }
}

// ---------------------------------------------------------------------------
// Record ordering helpers (the documented (at, ue, type) total order).
// ---------------------------------------------------------------------------

TEST(RecordOrder, MergeSortedEqualsGlobalSort) {
  Rng rng(21);
  std::vector<std::vector<trace::TraceRecord>> streams(3);
  std::vector<trace::TraceRecord> all;
  for (auto& stream : streams) {
    for (int i = 0; i < 500; ++i) {
      trace::TraceRecord rec;
      rec.at = SimTime::nanoseconds(
          static_cast<std::int64_t>(rng.next_double() * 1e9));
      rec.ue = UeId(rng.next_u64() % 64);
      rec.type = static_cast<core::ProcedureType>(rng.next_u64() % 4);
      stream.push_back(rec);
    }
    trace::sort_records(stream);
    all.insert(all.end(), stream.begin(), stream.end());
  }
  trace::sort_records(all);
  const auto merged = trace::merge_sorted_records(std::move(streams));
  ASSERT_EQ(merged.size(), all.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    // Keys equal position by position; ties in all three keys are
    // documented as interchangeable, so compare keys rather than bytes.
    EXPECT_FALSE(trace::record_before(merged[i], all[i])) << i;
    EXPECT_FALSE(trace::record_before(all[i], merged[i])) << i;
  }
}

// ---------------------------------------------------------------------------
// Scenario registry: round-trip, determinism, and the hard-error message.
// ---------------------------------------------------------------------------

TEST(Scenarios, EveryNamedScenarioGeneratesValidTraffic) {
  ScenarioRequest req;
  req.target_pps = 1'000.0;
  req.duration = SimTime::seconds(2);
  req.population = 500;
  req.regions = 4;
  req.seed = 31;
  for (const ScenarioInfo& info : scenarios()) {
    SCOPED_TRACE(std::string(info.name));
    EXPECT_NE(find_scenario(info.name), nullptr);
    const auto out = generate_scenario(info.name, req);
    ASSERT_TRUE(out.has_value());
    EXPECT_FALSE(out->records.empty());
    EXPECT_EQ(out->total(), out->records.size());
    for (std::size_t i = 1; i < out->records.size(); ++i) {
      ASSERT_FALSE(
          trace::record_before(out->records[i], out->records[i - 1]))
          << i;
    }
    // Same request → byte-identical stream (what the benches' fixed-seed
    // determinism gate rests on).
    const auto again = generate_scenario(info.name, req);
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(streams_equal(out->records, again->records));
  }
}

TEST(Scenarios, ColdStartScenariosBeginWithAttach) {
  // preattach=false scenarios must register devices before anything else
  // reaches them: each device's first record is an attach.
  ScenarioRequest req;
  req.target_pps = 1'000.0;
  req.duration = SimTime::seconds(2);
  req.population = 300;
  req.seed = 5;
  for (const ScenarioInfo& info : scenarios()) {
    if (info.preattach) continue;
    SCOPED_TRACE(std::string(info.name));
    const auto out = generate_scenario(info.name, req);
    ASSERT_TRUE(out.has_value());
    std::set<std::uint64_t> seen;
    for (const auto& rec : out->records) {
      if (seen.insert(rec.ue.value()).second) {
        EXPECT_EQ(rec.type, core::ProcedureType::kAttach)
            << "ue " << rec.ue.value();
      }
    }
  }
}

TEST(Scenarios, UnknownNameIsHardErrorListingAllNames) {
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  EXPECT_FALSE(generate_scenario("no-such-scenario", {}).has_value());
  const std::string err = unknown_scenario_error("no-such-scenario");
  EXPECT_NE(err.find("no-such-scenario"), std::string::npos);
  for (const ScenarioInfo& info : scenarios()) {
    EXPECT_NE(err.find(std::string(info.name)), std::string::npos)
        << info.name;
  }
}

}  // namespace
}  // namespace neutrino::traffic
