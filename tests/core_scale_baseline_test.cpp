// SCALE baseline (§3.1): replicas synchronized only on connected->idle
// transitions — consistent exactly when the UE has been idle, stale
// whenever it has been recently active. These tests make the paper's
// Fig. 2 analysis executable.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace neutrino::core {
namespace {

struct Harness {
  explicit Harness(CorePolicy policy) {
    proto.ack_timeout = SimTime::milliseconds(500);
    proto.log_scan_interval = SimTime::milliseconds(100);
    proto.idle_release_after = SimTime::milliseconds(50);
    system = std::make_unique<System>(loop, policy, TopologyConfig{}, proto,
                                      costs, metrics);
  }
  sim::EventLoop loop;
  FixedCostModel costs{SimTime::microseconds(10)};
  ProtocolConfig proto;
  Metrics metrics;
  std::unique_ptr<System> system;
};

TEST(ScaleBaseline, SyncsOnIdleTransitionOnly) {
  Harness h(scale_policy());
  const UeId ue{3};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  // Before the idle timer fires, replicas are untouched.
  h.loop.run_until(SimTime::milliseconds(20));
  for (const CpfId b : h.system->backups_for(ue, 0)) {
    EXPECT_EQ(h.system->cpf(b).peek_state(ue), nullptr);
  }
  EXPECT_EQ(h.metrics.checkpoints_sent, 0u);
  // After the inactivity window, the idle transition pushes the state.
  h.loop.run_until(SimTime::seconds(1));
  EXPECT_EQ(h.metrics.checkpoints_sent, 2u);
  for (const CpfId b : h.system->backups_for(ue, 0)) {
    const UeState* replica = h.system->cpf(b).peek_state(ue);
    ASSERT_NE(replica, nullptr);
    EXPECT_FALSE(replica->session_active);  // idle: bearer released
    EXPECT_TRUE(replica->attached);
  }
}

TEST(ScaleBaseline, ActivityDefersTheIdleSync) {
  Harness h(scale_policy());
  const UeId ue{3};
  h.system->frontend().preattach(ue, 0);
  // A new procedure every 20 ms keeps the UE connected: no sync happens.
  for (int i = 0; i < 10; ++i) {
    h.loop.schedule_at(SimTime::milliseconds(20 * i), [&] {
      h.system->frontend().start_procedure(ue,
                                           ProcedureType::kServiceRequest);
    });
  }
  h.loop.run_until(SimTime::milliseconds(205));
  EXPECT_EQ(h.metrics.checkpoints_sent, 0u);
  // Once the UE quiesces, exactly one idle sync goes out (per backup).
  h.loop.run_until(SimTime::seconds(1));
  EXPECT_EQ(h.metrics.checkpoints_sent, 2u);
}

TEST(ScaleBaseline, FailureWhileConnectedLosesRecentState) {
  // The §3.1 scenario: the UE completed procedures after its last idle
  // transition; the primary fails; the replicas are stale. SCALE must not
  // serve the stale copy — with the context check it degrades to
  // Re-Attach (prolonged disruption), it does not violate RYW.
  Harness h(scale_policy());
  const UeId ue{3};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.loop.run_until(SimTime::seconds(1));  // attach synced at idle
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.loop.run_until(SimTime::seconds(1) + SimTime::milliseconds(10));
  ASSERT_EQ(h.metrics.procedures_completed, 2u);

  // Crash before the idle window elapses: replicas still hold proc 1.
  h.system->crash_cpf(h.system->primary_cpf_for(ue, 0));
  h.loop.run_until(SimTime::seconds(2));
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.loop.run_until(SimTime::seconds(4));

  EXPECT_GE(h.metrics.reattaches, 1u);      // §3.1's disruption
  EXPECT_EQ(h.metrics.ryw_violations, 0u);  // but never stale service
  EXPECT_EQ(h.metrics.procedures_completed, 3u);
}

TEST(ScaleBaseline, FailureWhileIdleIsMasked) {
  // After an idle transition the replicas are current: failover works and
  // the UE never notices — SCALE's good case.
  Harness h(scale_policy());
  const UeId ue{3};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.loop.run_until(SimTime::seconds(1));  // idle sync done

  h.system->crash_cpf(h.system->primary_cpf_for(ue, 0));
  h.loop.run_until(SimTime::seconds(2));
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.loop.run_until(SimTime::seconds(4));

  EXPECT_EQ(h.metrics.reattaches, 0u);
  EXPECT_EQ(h.metrics.procedures_completed, 2u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(ScaleBaseline, NeutrinoMasksTheConnectedFailureScaleCannot) {
  // Same §3.1 timing as FailureWhileConnectedLosesRecentState, but under
  // Neutrino: the per-procedure checkpoint + log replay mask it.
  Harness h(neutrino_policy());
  const UeId ue{3};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.loop.run_until(SimTime::seconds(1));
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.loop.run_until(SimTime::seconds(1) + SimTime::milliseconds(10));

  h.system->crash_cpf(h.system->primary_cpf_for(ue, 0));
  h.loop.run_until(SimTime::seconds(2));
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.loop.run_until(SimTime::seconds(4));

  EXPECT_EQ(h.metrics.reattaches, 0u);
  EXPECT_EQ(h.metrics.procedures_completed, 3u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

}  // namespace
}  // namespace neutrino::core
