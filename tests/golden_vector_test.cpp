// Golden-vector regression layer: the canonical wire bytes of the five
// paper messages (Figs. 19-20) are pinned under tests/golden/ for every
// codec, including the svtable (OptimizedFlatBuffers) mode. Two directions
// are locked:
//
//   * encoder stability — today's encoder must reproduce the pinned bytes
//     bit-for-bit (log sizes, replay artifacts, and the Fig. 19/20 size
//     curves all depend on encoding determinism across versions);
//   * decoder compatibility — the pinned bytes must still decode to the
//     original message, so buffers written by an old build stay readable.
//
// An intentional wire-format change regenerates the vectors with
// tests/golden/regen.sh (sets NEUTRINO_GOLDEN_REGEN=1); the diff then
// shows exactly which message x format pairs changed shape.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/bytes.hpp"
#include "s1ap/samples.hpp"
#include "serialize/codec.hpp"

#ifndef NEUTRINO_GOLDEN_DIR
#error "NEUTRINO_GOLDEN_DIR must point at tests/golden"
#endif

namespace neutrino {
namespace {

/// Filename-safe codec tag (stable — these name the pinned files).
constexpr std::string_view slug(ser::WireFormat f) {
  switch (f) {
    case ser::WireFormat::kAsn1Per: return "asn1per";
    case ser::WireFormat::kFlatBuffers: return "flatbuf";
    case ser::WireFormat::kOptimizedFlatBuffers: return "flatbuf_opt";
    case ser::WireFormat::kProtobuf: return "protobuf";
    case ser::WireFormat::kFastCdr: return "fastcdr";
    case ser::WireFormat::kLcm: return "lcm";
    case ser::WireFormat::kFlexBuffers: return "flexbuf";
  }
  return "unknown";
}

std::filesystem::path golden_path(std::string_view message,
                                  ser::WireFormat format) {
  return std::filesystem::path(NEUTRINO_GOLDEN_DIR) /
         (std::string(message) + "." + std::string(slug(format)) + ".hex");
}

bool regen_requested() {
  return std::getenv("NEUTRINO_GOLDEN_REGEN") != nullptr;
}

/// Read a pinned vector; returns empty on missing file (asserted upstream).
std::string read_hex(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::string hex;
  in >> hex;  // single whitespace-delimited token of lowercase hex
  return hex;
}

Bytes from_hex(std::string_view hex) {
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    auto nibble = [](char c) -> Byte {
      return static_cast<Byte>(c <= '9' ? c - '0' : c - 'a' + 10);
    };
    out.push_back(static_cast<Byte>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

TEST(GoldenVectors, EncodedBytesMatchPinnedVectors) {
  const bool regen = regen_requested();
  if (regen) {
    std::filesystem::create_directories(NEUTRINO_GOLDEN_DIR);
  }
  for (const auto& named : s1ap::samples::figure19_messages()) {
    for (const auto format : ser::kAllWireFormats) {
      const std::string hex = to_hex(ser::encode(format, named.pdu));
      const auto path = golden_path(named.name, format);
      if (regen) {
        std::ofstream out(path);
        out << hex << "\n";
        continue;
      }
      ASSERT_TRUE(std::filesystem::exists(path))
          << path << " missing — run tests/golden/regen.sh";
      EXPECT_EQ(hex, read_hex(path))
          << named.name << " x " << ser::to_string(format)
          << ": encoder output diverged from the pinned vector; if the "
             "wire-format change is intentional run tests/golden/regen.sh";
    }
  }
}

TEST(GoldenVectors, PinnedBytesStillDecodeToOriginal) {
  if (regen_requested()) GTEST_SKIP() << "regenerating, nothing to check";
  for (const auto& named : s1ap::samples::figure19_messages()) {
    for (const auto format : ser::kAllWireFormats) {
      const auto path = golden_path(named.name, format);
      ASSERT_TRUE(std::filesystem::exists(path))
          << path << " missing — run tests/golden/regen.sh";
      const Bytes wire = from_hex(read_hex(path));
      auto decoded = ser::decode<s1ap::S1apPdu>(format, wire);
      ASSERT_TRUE(decoded.is_ok())
          << named.name << " x " << ser::to_string(format) << ": "
          << "pinned bytes no longer decode";
      EXPECT_EQ(*decoded, named.pdu)
          << named.name << " x " << ser::to_string(format)
          << ": decoder no longer reconstructs the original message";
    }
  }
}

TEST(GoldenVectors, SvtablePinnedNoLargerThanStandardFlatBuffers) {
  if (regen_requested()) GTEST_SKIP() << "regenerating, nothing to check";
  // The svtable optimization's whole claim (§4.4) is smaller tables; the
  // pinned vectors must preserve that relation for every figure message.
  for (const auto& named : s1ap::samples::figure19_messages()) {
    const auto opt = read_hex(
        golden_path(named.name, ser::WireFormat::kOptimizedFlatBuffers));
    const auto std_fb =
        read_hex(golden_path(named.name, ser::WireFormat::kFlatBuffers));
    ASSERT_FALSE(opt.empty());
    ASSERT_FALSE(std_fb.empty());
    EXPECT_LE(opt.size(), std_fb.size()) << named.name;
  }
}

}  // namespace
}  // namespace neutrino
