// Trace file round trips and summaries.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/trace_io.hpp"

namespace neutrino::trace {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TraceIo, SaveLoadRoundTrip) {
  trace::ProcedureMix mix{.service_request = 0.5, .handover = 0.2};
  UniformWorkload w(5'000.0, SimTime::seconds(1), mix, 3);
  const auto original = w.generate(100'000, 4);
  const std::string path = temp_path("neutrino_trace_roundtrip.csv");

  ASSERT_TRUE(save_trace(original, path).is_ok());
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].at, original[i].at);
    EXPECT_EQ((*loaded)[i].ue, original[i].ue);
    EXPECT_EQ((*loaded)[i].type, original[i].type);
    EXPECT_EQ((*loaded)[i].target_region, original[i].target_region);
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileReported) {
  auto r = load_trace("/nonexistent/definitely/missing.csv");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TraceIo, MalformedLineReported) {
  const std::string path = temp_path("neutrino_trace_bad.csv");
  {
    std::ofstream out(path);
    out << "time_ns,ue,type,target_region\n";
    out << "100,5,0,0\n";
    out << "not-a-number,5,0,0\n";
  }
  auto r = load_trace(path);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kMalformed);
  std::filesystem::remove(path);
}

TEST(TraceIo, OutOfRangeTypeRejected) {
  const std::string path = temp_path("neutrino_trace_type.csv");
  {
    std::ofstream out(path);
    out << "time_ns,ue,type,target_region\n";
    out << "100,5,99,0\n";
  }
  auto r = load_trace(path);
  EXPECT_FALSE(r.is_ok());
  std::filesystem::remove(path);
}

TEST(TraceIo, SummaryStatistics) {
  BurstyWorkload w(2'000, SimTime::milliseconds(500), 9);
  const auto records = w.generate();
  const auto s = summarize(records);
  EXPECT_EQ(s.records, 2'000u);
  EXPECT_EQ(s.distinct_ues, 2'000u);
  EXPECT_LE(s.span, SimTime::milliseconds(500));
  EXPECT_EQ(s.by_type[static_cast<std::size_t>(core::ProcedureType::kAttach)],
            2'000u);
}

}  // namespace
}  // namespace neutrino::trace
