// Workload generators and the mobility model.
#include <gtest/gtest.h>

#include <set>

#include "trace/mobility.hpp"
#include "trace/workload.hpp"

namespace neutrino::trace {
namespace {

TEST(UniformWorkload, RateAndOrdering) {
  UniformWorkload w(50'000.0, SimTime::seconds(1), {}, 5);
  const auto t = w.generate(1'000'000, 1);
  // Poisson with lambda=50K over 1s: within 5%.
  EXPECT_NEAR(static_cast<double>(t.size()), 50'000.0, 2'500.0);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i - 1].at, t[i].at);
  }
}

TEST(UniformWorkload, MixFractionsRespected) {
  ProcedureMix mix{.service_request = 0.6, .handover = 0.2,
                   .intra_handover = 0.1};
  UniformWorkload w(20'000.0, SimTime::seconds(1), mix, 5);
  const auto t = w.generate(1'000'000, 4);
  std::size_t sr = 0, ho = 0, intra = 0, attach = 0;
  for (const auto& rec : t) {
    switch (rec.type) {
      case core::ProcedureType::kServiceRequest: ++sr; break;
      case core::ProcedureType::kHandover: ++ho; break;
      case core::ProcedureType::kIntraHandover: ++intra; break;
      default: ++attach; break;
    }
  }
  const auto n = static_cast<double>(t.size());
  EXPECT_NEAR(static_cast<double>(sr) / n, 0.6, 0.03);
  EXPECT_NEAR(static_cast<double>(ho) / n, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(intra) / n, 0.1, 0.03);
  EXPECT_NEAR(static_cast<double>(attach) / n, 0.1, 0.03);
}

TEST(UniformWorkload, SingleRegionRenormalizesHandoverIntoIntra) {
  // Mix contract (workload.hpp): on a single-region topology the
  // inter-region handover mass folds into intra-handover — it must not
  // fall through to attach, and attach keeps exactly its configured
  // remainder (0.2 here).
  ProcedureMix mix{.service_request = 0.5, .handover = 0.2,
                   .intra_handover = 0.1};
  UniformWorkload w(20'000.0, SimTime::seconds(1), mix, 5);
  const auto t = w.generate(1'000'000, 1);
  std::size_t sr = 0, ho = 0, intra = 0, attach = 0;
  for (const auto& rec : t) {
    switch (rec.type) {
      case core::ProcedureType::kServiceRequest: ++sr; break;
      case core::ProcedureType::kHandover: ++ho; break;
      case core::ProcedureType::kIntraHandover: ++intra; break;
      default: ++attach; break;
    }
  }
  EXPECT_EQ(ho, 0u);
  const auto n = static_cast<double>(t.size());
  EXPECT_NEAR(static_cast<double>(sr) / n, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(intra) / n, 0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(attach) / n, 0.2, 0.03);
}

TEST(UniformWorkload, HandoverTargetsDifferFromHome) {
  ProcedureMix mix{.handover = 1.0};
  UniformWorkload w(5'000.0, SimTime::seconds(1), mix, 9);
  for (const auto& rec : w.generate(100'000, 4)) {
    if (rec.type == core::ProcedureType::kHandover) {
      EXPECT_NE(rec.target_region, rec.ue.value() % 4);
    }
  }
}

TEST(BurstyWorkload, AllUsersWithinWindowOnce) {
  BurstyWorkload w(10'000, SimTime::milliseconds(100), 3);
  const auto t = w.generate();
  ASSERT_EQ(t.size(), 10'000u);
  std::set<std::uint64_t> distinct;
  for (const auto& rec : t) {
    EXPECT_LE(rec.at, SimTime::milliseconds(100));
    EXPECT_EQ(rec.type, core::ProcedureType::kAttach);
    distinct.insert(rec.ue.value());
  }
  EXPECT_EQ(distinct.size(), 10'000u);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i - 1].at, t[i].at);
  }
}

TEST(DeviceModelWorkload, MeanSessionGapMatchesPaper) {
  // §2.2: a device issues a session establishment every 106.9 s on
  // average. Measure over a long horizon.
  DeviceModelWorkload w(200, SimTime::seconds(20'000), 7);
  const auto t = w.generate(1);
  // 200 devices x 20000s / 106.9s ~ 37,400 events.
  const double expected = 200.0 * 20'000.0 / 106.9;
  EXPECT_NEAR(static_cast<double>(t.size()), expected, expected * 0.05);
}

TEST(DriveModel, SixtyMphSpacingMatchesFig12) {
  DriveModel drive;
  const auto events = drive.handovers(SimTime::seconds(120));
  ASSERT_GE(events.size(), 3u);
  // First crossing: 700 m at 26.8 m/s ~ 26.1 s.
  EXPECT_NEAR(events[0].at.sec(), 700.0 / 26.8, 0.1);
  // Second: +1000 m.
  EXPECT_NEAR(events[1].at.sec(), 1700.0 / 26.8, 0.1);
  // Every fourth crossing changes region.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].crosses_region, (i + 1) % 4 == 0) << i;
  }
}

TEST(DriveModel, FiveMinuteDriveHandoverCount) {
  // 5 min at 26.8 m/s = 8040 m; alternating 700/1000 m cells ~ 9 HOs.
  DriveModel drive;
  const auto events = drive.handovers(SimTime::seconds(300));
  EXPECT_GE(events.size(), 8u);
  EXPECT_LE(events.size(), 11u);
}

}  // namespace
}  // namespace neutrino::trace
