// Round-trip correctness for every wire format over every control message.
#include <gtest/gtest.h>

#include "s1ap/custom_message.hpp"
#include "s1ap/samples.hpp"
#include "serialize/codec.hpp"

namespace neutrino {
namespace {

using ser::WireFormat;
namespace samples = s1ap::samples;

class AllFormats : public ::testing::TestWithParam<WireFormat> {};

INSTANTIATE_TEST_SUITE_P(
    Formats, AllFormats, ::testing::ValuesIn(ser::kAllWireFormats),
    [](const auto& info) {
      std::string name(ser::to_string(info.param));
      std::erase_if(name, [](char c) { return !std::isalnum(c); });
      return name;
    });

template <ser::FieldStruct M>
void expect_roundtrip(WireFormat format, const M& msg) {
  const Bytes encoded = ser::encode(format, msg);
  ASSERT_FALSE(encoded.empty()) << M::kTypeName;
  auto decoded = ser::decode<M>(format, encoded);
  ASSERT_TRUE(decoded.is_ok())
      << M::kTypeName << " via " << ser::to_string(format) << ": "
      << decoded.status().message();
  EXPECT_EQ(*decoded, msg)
      << M::kTypeName << " via " << ser::to_string(format);
}

TEST_P(AllFormats, InitialUeMessage) {
  expect_roundtrip(GetParam(), samples::initial_ue_message());
}

TEST_P(AllFormats, InitialContextSetupRequest) {
  expect_roundtrip(GetParam(), samples::initial_context_setup());
}

TEST_P(AllFormats, InitialContextSetupResponse) {
  expect_roundtrip(GetParam(), samples::initial_context_setup_response());
}

TEST_P(AllFormats, ErabSetupRequest) {
  expect_roundtrip(GetParam(), samples::erab_setup_request());
}

TEST_P(AllFormats, ErabSetupResponse) {
  expect_roundtrip(GetParam(), samples::erab_setup_response());
}

TEST_P(AllFormats, AttachRequest) {
  expect_roundtrip(GetParam(), samples::attach_request());
}

TEST_P(AllFormats, AttachAccept) {
  expect_roundtrip(GetParam(), samples::attach_accept());
}

TEST_P(AllFormats, ServiceRequest) {
  expect_roundtrip(GetParam(), samples::service_request());
}

TEST_P(AllFormats, HandoverRequired) {
  expect_roundtrip(GetParam(), samples::handover_required());
}

TEST_P(AllFormats, HandoverRequest) {
  expect_roundtrip(GetParam(), samples::handover_request());
}

TEST_P(AllFormats, PagingWithUnionIdentity) {
  expect_roundtrip(GetParam(), samples::paging());
}

TEST_P(AllFormats, CreateSessionRequest) {
  expect_roundtrip(GetParam(), samples::create_session_request());
}

TEST_P(AllFormats, EmptyOptionalsOmitted) {
  s1ap::InitialUeMessage m = samples::initial_ue_message();
  m.s_tmsi.reset();
  expect_roundtrip(GetParam(), m);
}

TEST_P(AllFormats, EmptyVectors) {
  s1ap::InitialContextSetupResponse m;
  m.mme_ue_s1ap_id = 1;
  m.enb_ue_s1ap_id = 2;
  expect_roundtrip(GetParam(), m);
}

TEST_P(AllFormats, UnionAlternativeSelection) {
  // IPv4 vs IPv6 transport address (single-element union).
  s1ap::GtpTunnel t4 = samples::tunnel(42);
  expect_roundtrip(GetParam(), t4);

  s1ap::GtpTunnel t6;
  t6.address = samples::pattern_bytes(16, 0x99);
  t6.teid = 43;
  expect_roundtrip(GetParam(), t6);
}

TEST_P(AllFormats, CauseFamilies) {
  s1ap::UeContextReleaseCommand m;
  m.ids = s1ap::UeS1apIdPair{.mme_ue_s1ap_id = 901, .enb_ue_s1ap_id = 77};
  m.cause = std::uint8_t{20};
  expect_roundtrip(GetParam(), m);

  m.ids = std::uint32_t{901};
  m.cause = std::string{"operator-initiated"};
  expect_roundtrip(GetParam(), m);
}

TEST_P(AllFormats, TopLevelPduEnvelope) {
  for (auto& named : samples::figure19_messages()) {
    expect_roundtrip(GetParam(), named.pdu);
  }
}

TEST_P(AllFormats, CustomMessageSmallAndLarge) {
  s1ap::CustomMessage<1> m1;
  m1.fill(7);
  expect_roundtrip(GetParam(), m1);

  s1ap::CustomMessage<7> m7;
  m7.fill(7);
  expect_roundtrip(GetParam(), m7);

  s1ap::CustomMessage<35> m35;
  m35.fill(7);
  expect_roundtrip(GetParam(), m35);
}

TEST_P(AllFormats, ManySeedsPropertySweep) {
  // Property: round-trip identity over varied field contents.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    s1ap::CustomMessage<12> m;
    m.fill(seed);
    expect_roundtrip(GetParam(), m);

    auto icsr = samples::initial_context_setup(
        static_cast<std::uint32_t>(seed * 13 + 1),
        static_cast<std::uint32_t>(seed * 7 + 2));
    expect_roundtrip(GetParam(), icsr);
  }
}

TEST_P(AllFormats, DecodeTruncatedFailsCleanly) {
  const auto msg = samples::initial_context_setup();
  const Bytes encoded = ser::encode(GetParam(), msg);
  // Chopping the buffer must yield an error or a non-equal message,
  // never a crash. (FlatBuffers readers trust their input per the real
  // library's contract, so only prefix-truncation short of the root is
  // exercised for them.)
  const bool offset_based = GetParam() == WireFormat::kFlatBuffers ||
                            GetParam() == WireFormat::kOptimizedFlatBuffers;
  if (offset_based) {
    auto r = ser::decode<s1ap::InitialContextSetupRequest>(
        GetParam(), BytesView(encoded.data(), 3));
    EXPECT_FALSE(r.is_ok());
    return;
  }
  for (std::size_t keep : {std::size_t{0}, std::size_t{1}, encoded.size() / 2,
                           encoded.size() - 1}) {
    auto r = ser::decode<s1ap::InitialContextSetupRequest>(
        GetParam(), BytesView(encoded.data(), keep));
    if (r.is_ok()) {
      EXPECT_NE(*r, msg) << "keep=" << keep;
    }
  }
}

// --- format-specific size properties --------------------------------------

TEST(FlatBufSvtable, SavesTenBytesForScalarUnion) {
  // §4.4: "reduces 10 bytes for single scalar fields in unions".
  s1ap::GtpTunnel t;
  t.address = std::uint32_t{0x0a000001};
  t.teid = 7;
  const auto standard = ser::encode(WireFormat::kFlatBuffers, t);
  const auto optimized = ser::encode(WireFormat::kOptimizedFlatBuffers, t);
  EXPECT_GE(standard.size(), optimized.size() + 10);
}

TEST(FlatBufSvtable, SavesForVarLengthUnion) {
  // §4.4: "14 bytes for single variable length fields".
  s1ap::UeContextReleaseCommand m;
  m.ids = std::uint32_t{901};
  m.cause = std::string{"misc-cause-string"};
  const auto standard = ser::encode(WireFormat::kFlatBuffers, m);
  const auto optimized = ser::encode(WireFormat::kOptimizedFlatBuffers, m);
  EXPECT_GE(standard.size(), optimized.size() + 14);
}

TEST(EncodedSizes, Asn1SmallerThanFlatBuffers) {
  // Fig. 20: PER length-value coding beats vtable metadata on size.
  for (auto& named : s1ap::samples::figure19_messages()) {
    const auto per = ser::encode(WireFormat::kAsn1Per, named.pdu);
    const auto fbs = ser::encode(WireFormat::kFlatBuffers, named.pdu);
    EXPECT_LT(per.size(), fbs.size()) << named.name;
  }
}

TEST(EncodedSizes, FlatBufOverheadWithinPaperBand) {
  // Fig. 20: FBs adds up to ~300 bytes of metadata over ASN.1.
  for (auto& named : s1ap::samples::figure19_messages()) {
    const auto per = ser::encode(WireFormat::kAsn1Per, named.pdu);
    const auto fbs = ser::encode(WireFormat::kFlatBuffers, named.pdu);
    EXPECT_LE(fbs.size() - per.size(), 400u) << named.name;
  }
}

TEST(VtableDedup, RepeatedTablesShareVtables) {
  // Two E-RAB items share one vtable: size must grow sublinearly.
  s1ap::ErabSetupRequest one = s1ap::samples::erab_setup_request();
  one.erabs = {s1ap::samples::erab_to_setup(1)};
  s1ap::ErabSetupRequest three = one;
  three.erabs = {s1ap::samples::erab_to_setup(1),
                 s1ap::samples::erab_to_setup(2),
                 s1ap::samples::erab_to_setup(3)};
  const auto size1 = ser::encode(WireFormat::kFlatBuffers, one).size();
  const auto size3 = ser::encode(WireFormat::kFlatBuffers, three).size();
  const auto per_item = ser::encode(WireFormat::kFlatBuffers,
                                    s1ap::samples::erab_to_setup(2))
                            .size();
  // Adding two more items must cost less than two standalone encodings
  // (vtables deduplicated, no root/padding overhead repeated).
  EXPECT_LT(size3 - size1, 2 * per_item);
}

}  // namespace
}  // namespace neutrino
