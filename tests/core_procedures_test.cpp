// End-to-end control procedures on the simulated core, no failures.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace neutrino::core {
namespace {

struct Harness {
  explicit Harness(CorePolicy policy, TopologyConfig topo = {}) {
    ProtocolConfig proto;
    proto.ack_timeout = SimTime::milliseconds(500);
    proto.log_scan_interval = SimTime::milliseconds(100);
    system = std::make_unique<System>(loop, policy, topo, proto, costs,
                                      metrics);
  }

  void run(SimTime horizon = SimTime::seconds(10)) {
    loop.run_until(horizon);
  }

  sim::EventLoop loop;
  FixedCostModel costs{SimTime::microseconds(10)};
  Metrics metrics;
  std::unique_ptr<System> system;
};

TEST(Attach, CompletesAndInstallsState) {
  Harness h(neutrino_policy());
  const UeId ue{42};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run();

  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_TRUE(h.system->frontend().is_attached(ue));
  EXPECT_EQ(h.metrics.pct_for(ProcedureType::kAttach).count(), 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);

  // State must be at the primary, attached and procedure-complete.
  const CpfId primary = h.system->primary_cpf_for(ue, 0);
  const UeState* state = h.system->cpf(primary).peek_state(ue);
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->attached);
  EXPECT_TRUE(state->session_active);
  EXPECT_EQ(state->last_completed_proc, 1u);

  // A UPF session exists.
  EXPECT_TRUE(h.system->upf(0).has_session(ue));
}

TEST(Attach, CheckpointsReachAllBackups) {
  Harness h(neutrino_policy());
  const UeId ue{42};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run();

  const auto backups = h.system->backups_for(ue, 0);
  ASSERT_EQ(backups.size(), 2u);
  for (const CpfId b : backups) {
    EXPECT_TRUE(h.system->cpf(b).has_up_to_date(ue)) << b.value();
    const UeState* replica = h.system->cpf(b).peek_state(ue);
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->last_completed_proc, 1u);
  }
  EXPECT_EQ(h.metrics.checkpoints_sent, 2u);
  EXPECT_EQ(h.metrics.checkpoint_acks, 2u);
}

TEST(Attach, LogIsPrunedAfterAllAcks) {
  Harness h(neutrino_policy());
  h.system->frontend().start_procedure(UeId{42}, ProcedureType::kAttach);
  h.run();
  EXPECT_GT(h.metrics.log_appends, 0u);
  EXPECT_EQ(h.metrics.log_prunes, 1u);
  EXPECT_EQ(h.system->cta(0).log_bytes(), 0u);
  EXPECT_EQ(h.system->cta(0).log_messages(), 0u);
}

TEST(Attach, NoReplicationUnderEpcPolicy) {
  Harness h(existing_epc_policy());
  h.system->frontend().start_procedure(UeId{42}, ProcedureType::kAttach);
  h.run();
  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_EQ(h.metrics.checkpoints_sent, 0u);
  EXPECT_EQ(h.metrics.log_appends, 0u);
}

TEST(Attach, DpcmSkipsAuthRoundTrips) {
  Harness epc(existing_epc_policy());
  Harness dpcm(dpcm_policy());
  epc.system->frontend().start_procedure(UeId{1}, ProcedureType::kAttach);
  dpcm.system->frontend().start_procedure(UeId{1}, ProcedureType::kAttach);
  epc.run();
  dpcm.run();
  const double epc_pct = epc.metrics.pct_for(ProcedureType::kAttach).median();
  const double dpcm_pct =
      dpcm.metrics.pct_for(ProcedureType::kAttach).median();
  EXPECT_LT(dpcm_pct, epc_pct);  // two round trips elided
}

TEST(ServiceRequest, ServesPreattachedUe) {
  Harness h(neutrino_policy());
  const UeId ue{7};
  h.system->frontend().preattach(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.run();
  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  EXPECT_EQ(h.metrics.reattaches, 0u);
}

TEST(ServiceRequest, UnknownUeIsToldToReattach) {
  Harness h(neutrino_policy());
  const UeId ue{7};  // never attached: CPF has no state (§4.2.4 rule 3)
  h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
  h.run();
  EXPECT_GE(h.metrics.reattaches, 1u);
  EXPECT_EQ(h.metrics.procedures_completed, 1u);  // via Re-Attach
  EXPECT_TRUE(h.system->frontend().is_attached(ue));
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(ServiceRequest, SequentialProceduresKeepRywAndPrune) {
  Harness h(neutrino_policy());
  const UeId ue{9};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run(SimTime::seconds(2));
  for (int i = 0; i < 5; ++i) {
    h.system->frontend().start_procedure(ue, ProcedureType::kServiceRequest);
    h.run(SimTime::seconds(3 + i));
  }
  EXPECT_EQ(h.metrics.procedures_completed, 6u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  EXPECT_EQ(h.system->cta(0).log_messages(), 0u);
}

struct MultiRegionHarness : Harness {
  MultiRegionHarness(CorePolicy policy)
      : Harness(policy, [] {
          TopologyConfig topo;
          topo.l2_regions = 1;
          topo.l1_per_l2 = 4;  // four level-1 regions in one level-2
          topo.cpfs_per_region = 5;
          return topo;
        }()) {}
};

TEST(Handover, IntraRegionNeedsNoCpfChange) {
  MultiRegionHarness h(neutrino_policy());
  const UeId ue{11};
  h.system->frontend().preattach(ue, 1);
  h.system->frontend().start_procedure(ue, ProcedureType::kIntraHandover, 1);
  h.run();
  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_EQ(h.metrics.migrations, 0u);
  EXPECT_EQ(h.metrics.state_fetches, 0u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(Handover, InterRegionProactiveAvoidsMigration) {
  MultiRegionHarness h(neutrino_policy());
  const UeId ue{11};
  h.system->frontend().preattach(ue, 1);
  h.system->frontend().start_procedure(ue, ProcedureType::kHandover, 2);
  h.run();
  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_EQ(h.metrics.migrations, 0u);  // the point of §4.3
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  // Either the target CPF was already a replica (fast) or it fetched the
  // state from one within the level-2 region.
  EXPECT_GE(h.metrics.fast_handovers + h.metrics.state_fetches, 1u);
  EXPECT_EQ(h.system->frontend().region_of(ue), 2u);
}

TEST(Handover, InterRegionMigrationUnderEpcPolicy) {
  MultiRegionHarness h(existing_epc_policy());
  const UeId ue{11};
  h.system->frontend().preattach(ue, 1);
  h.system->frontend().start_procedure(ue, ProcedureType::kHandover, 2);
  h.run();
  EXPECT_EQ(h.metrics.procedures_completed, 1u);
  EXPECT_EQ(h.metrics.migrations, 1u);
  EXPECT_EQ(h.metrics.fast_handovers, 0u);
}

TEST(Handover, ProactiveBeatsMigrationOnPct) {
  MultiRegionHarness fast(neutrino_policy());
  auto slow_policy = neutrino_policy();
  slow_policy.handover = HandoverMode::kMigrate;
  MultiRegionHarness slow(slow_policy);
  const UeId ue{11};
  for (auto* h : {&fast, &slow}) {
    h->system->frontend().preattach(ue, 1);
    h->system->frontend().start_procedure(ue, ProcedureType::kHandover, 2);
    h->run();
  }
  ASSERT_EQ(fast.metrics.procedures_completed, 1u);
  ASSERT_EQ(slow.metrics.procedures_completed, 1u);
  EXPECT_LT(fast.metrics.pct_for(ProcedureType::kHandover).median(),
            slow.metrics.pct_for(ProcedureType::kHandover).median());
}

TEST(Handover, HandoverOutageIsRecorded) {
  MultiRegionHarness h(neutrino_policy());
  const UeId ue{11};
  h.system->frontend().preattach(ue, 1);
  h.system->frontend().start_procedure(ue, ProcedureType::kHandover, 2);
  h.run();
  const auto& outages = h.system->frontend().outages(ue);
  ASSERT_EQ(outages.size(), 1u);
  EXPECT_GT((outages[0].end - outages[0].start).ns(), 0);
}

TEST(Load, ManyUesAcrossRegionsAllComplete) {
  MultiRegionHarness h(neutrino_policy());
  constexpr int kUes = 200;
  for (int i = 0; i < kUes; ++i) {
    h.system->frontend().start_procedure(UeId{static_cast<std::uint64_t>(i)},
                                         ProcedureType::kAttach);
  }
  h.run(SimTime::seconds(30));
  EXPECT_EQ(h.metrics.procedures_completed, static_cast<std::uint64_t>(kUes));
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  EXPECT_EQ(h.metrics.procedures_started, static_cast<std::uint64_t>(kUes));
}

TEST(SyncModes, PerMessageCostsMoreThanPerProcedure) {
  auto per_msg = skycore_policy();
  auto per_proc = neutrino_policy();
  per_proc.wire_format = per_msg.wire_format;  // isolate the sync axis
  per_proc.handover = per_msg.handover;

  double medians[2];
  int idx = 0;
  for (const auto& policy : {per_msg, per_proc}) {
    Harness h(policy);
    for (int i = 0; i < 100; ++i) {
      h.system->frontend().start_procedure(
          UeId{static_cast<std::uint64_t>(i)}, ProcedureType::kAttach);
    }
    h.run(SimTime::seconds(30));
    EXPECT_EQ(h.metrics.ryw_violations, 0u);
    medians[idx++] = h.metrics.pct_for(ProcedureType::kAttach).median();
  }
  EXPECT_GT(medians[0], medians[1]);  // Fig. 15's ordering
}

}  // namespace
}  // namespace neutrino::core
