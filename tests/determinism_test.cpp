// Differential determinism proof for the event-loop rewrite: the 4-ary
// heap + timer wheel must dispatch in the exact (when, seq) order the
// seed's std::priority_queue produced — first on adversarial synthetic
// schedules, then on a full core workload with crash + replay, where any
// ordering divergence would surface as different counters, latency
// distributions, or trace hop timelines.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "trace/workload.hpp"

namespace neutrino {
namespace {

/// The seed's event loop, reproduced as the ordering oracle.
class LegacyLoop {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_at(SimTime when, std::function<void()> cb) {
    queue_.push(Event{when, next_seq_++, std::move(cb)});
  }
  void schedule_after(SimTime delay, std::function<void()> cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  void run() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.when;
      ev.callback();
    }
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> callback;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
};

struct Plan {
  std::int64_t at_ns;
  int id;
};

/// Adversarial schedule: times quantized to force ties (seq tie-breaks),
/// clustered near zero (wheel buckets) with a far-future tail (heap
/// overflow), plus callback-scheduled children landing on already-drained
/// ticks.
std::vector<Plan> make_plans(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Plan> plans;
  plans.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::int64_t at;
    const double dice = rng.next_double();
    if (dice < 0.6) {  // dense near-future cluster, 500ns quanta
      at = static_cast<std::int64_t>(rng.next_below(4'000)) * 500;
    } else if (dice < 0.9) {  // mid-range, still inside the wheel span
      at = static_cast<std::int64_t>(rng.next_below(4'000'000));
    } else {  // beyond the default wheel horizon: heap path
      at = static_cast<std::int64_t>(rng.next_below(400'000'000));
    }
    plans.push_back({at, i});
  }
  return plans;
}

template <typename Loop>
std::vector<int> dispatch_order(Loop& loop, const std::vector<Plan>& plans,
                                const std::vector<std::int64_t>& child_delay) {
  std::vector<int> order;
  order.reserve(plans.size() * 2);
  for (const Plan& p : plans) {
    loop.schedule_at(SimTime::nanoseconds(p.at_ns), [&loop, &order,
                                                     &child_delay, p] {
      order.push_back(p.id);
      if (p.id % 5 == 0) {
        const std::int64_t d =
            child_delay[static_cast<std::size_t>(p.id) % child_delay.size()];
        loop.schedule_after(SimTime::nanoseconds(d),
                            [&order, cid = p.id + 1'000'000] {
                              order.push_back(cid);
                            });
      }
    });
  }
  loop.run();
  return order;
}

TEST(DeterminismPureLoop, MatchesLegacyPriorityQueueOrder) {
  // Child delays include 0 (same-timestamp reschedule onto a drained
  // tick) and assorted magnitudes spanning wheel and heap placement.
  const std::vector<std::int64_t> child_delay = {0,     1,       499,
                                                 500,   12'345,  1'000'000,
                                                 3'000, 900'000, 50'000'000};
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    const std::vector<Plan> plans = make_plans(seed, 4000);

    LegacyLoop legacy;
    const std::vector<int> want =
        dispatch_order(legacy, plans, child_delay);
    ASSERT_GT(want.size(), plans.size());  // children actually ran

    for (const bool wheel : {true, false}) {
      sim::EventLoop::Config cfg;
      cfg.use_timer_wheel = wheel;
      sim::EventLoop loop(cfg);
      const std::vector<int> got = dispatch_order(loop, plans, child_delay);
      ASSERT_EQ(got, want) << "seed " << seed << " wheel " << wheel;
    }
  }
}

TEST(DeterminismPureLoop, CoarseWheelGranularityPreservesOrder) {
  // 64us ticks put many distinct timestamps in one bucket: the sorted
  // drain must still interleave them with heap events exactly.
  const std::vector<std::int64_t> child_delay = {0, 100, 64'000, 7'777'777};
  const std::vector<Plan> plans = make_plans(99, 3000);
  LegacyLoop legacy;
  const std::vector<int> want = dispatch_order(legacy, plans, child_delay);

  sim::EventLoop::Config cfg;
  cfg.wheel_granularity_ns = 64'000;
  cfg.wheel_slots = 64;
  sim::EventLoop loop(cfg);
  EXPECT_EQ(dispatch_order(loop, plans, child_delay), want);
}

// ---------------------------------------------------------------------------
// Core workload differential: wheel on vs off across a crash + replay
// scenario. The wheel is a pure optimization; if it reordered anything,
// the protocol's message interleaving — and with it the counters, the
// latency distributions, and each procedure's hop timeline — would drift.

struct CoreRun {
  core::Metrics metrics;
  std::string trace_dump;
};

CoreRun run_core_workload(bool use_wheel) {
  sim::EventLoop::Config cfg;
  cfg.use_timer_wheel = use_wheel;
  sim::EventLoop loop(cfg);
  core::Metrics metrics;
  core::FixedCostModel costs{SimTime::microseconds(10)};
  core::TopologyConfig topo;
  topo.l1_per_l2 = 2;  // two regions: handovers are part of the mix
  core::ProtocolConfig proto;
  proto.ack_timeout = SimTime::milliseconds(500);
  proto.log_scan_interval = SimTime::milliseconds(100);
  core::System system(loop, core::neutrino_policy(), topo, proto, costs,
                      metrics);

  obs::TracerConfig tc;
  tc.record_events = true;
  tc.keep_all = true;
  obs::ProcTracer tracer(tc, &metrics.registry);
  system.attach_tracer(tracer);

  trace::ProcedureMix mix;
  mix.service_request = 0.5;
  mix.handover = 0.1;
  trace::UniformWorkload workload(/*rate_pps=*/1000,
                                  SimTime::milliseconds(500), mix,
                                  /*seed=*/11);
  const auto t = workload.generate(/*ue_population=*/120, /*regions=*/2);
  trace::replay(system, t);

  // Mid-storm crash of a loaded CPF, restored shortly after: exercises
  // replay recovery and checkpoint retransmission under both loops.
  const CpfId doomed = system.primary_cpf_for(UeId{0}, 0);
  loop.schedule_at(SimTime::milliseconds(120),
                   [&system, doomed] { system.crash_cpf(doomed); });
  loop.schedule_at(SimTime::milliseconds(320),
                   [&system, doomed] { system.restore_cpf(doomed); });

  loop.run_until(SimTime::seconds(5));
  return {std::move(metrics), tracer.dump_json().dump(0)};
}

TEST(DeterminismCoreWorkload, WheelOnAndOffProduceIdenticalRuns) {
  CoreRun wheel = run_core_workload(true);
  CoreRun heap = run_core_workload(false);

  // Sanity: the scenario actually exercised the interesting paths.
  EXPECT_GT(wheel.metrics.procedures_completed, 400u);
  EXPECT_GT(wheel.metrics.replays + wheel.metrics.failovers +
                wheel.metrics.reattaches,
            0u);
  EXPECT_EQ(wheel.metrics.ryw_violations, 0u);

  EXPECT_EQ(wheel.metrics.procedures_started,
            heap.metrics.procedures_started);
  EXPECT_EQ(wheel.metrics.procedures_completed,
            heap.metrics.procedures_completed);
  EXPECT_EQ(wheel.metrics.replays, heap.metrics.replays);
  EXPECT_EQ(wheel.metrics.failovers, heap.metrics.failovers);
  EXPECT_EQ(wheel.metrics.reattaches, heap.metrics.reattaches);
  EXPECT_EQ(wheel.metrics.checkpoints_sent, heap.metrics.checkpoints_sent);
  EXPECT_EQ(wheel.metrics.checkpoint_acks, heap.metrics.checkpoint_acks);
  EXPECT_EQ(wheel.metrics.log_appends, heap.metrics.log_appends);
  EXPECT_EQ(wheel.metrics.ryw_violations, heap.metrics.ryw_violations);

  // Latency distributions must match to the last bit: same samples in
  // the same order.
  for (std::size_t i = 0; i < core::Metrics::kProcTypes; ++i) {
    const auto a = wheel.metrics.pct[i].summary();
    const auto b = heap.metrics.pct[i].summary();
    EXPECT_EQ(a.count, b.count) << "proc " << i;
    EXPECT_EQ(a.mean, b.mean) << "proc " << i;
    EXPECT_EQ(a.p50, b.p50) << "proc " << i;
    EXPECT_EQ(a.p99, b.p99) << "proc " << i;
    EXPECT_EQ(a.max, b.max) << "proc " << i;
  }

  // And every traced procedure's hop-by-hop timeline is identical.
  EXPECT_EQ(wheel.trace_dump, heap.trace_dump);
}

}  // namespace
}  // namespace neutrino
