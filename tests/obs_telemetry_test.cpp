// Unit tests for the deep-telemetry layer (DESIGN.md §15): windowed
// series rollover and merge identities, flight-recorder ring semantics
// and cross-shard merge ordering, SLO burn-rate math, the phase
// profiler's accounting, and Perfetto trace-export well-formedness.
//
// Note on string assertions: Json::dump(0) emits one line with no space
// after ':' ("key":value), and doubles print via %.9g.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_export.hpp"

namespace neutrino {
namespace {

constexpr SimTime kWin = SimTime::milliseconds(10);

SimTime ms(std::int64_t v) { return SimTime::milliseconds(v); }

// ---------------------------------------------------------------------------
// WindowedSeries
// ---------------------------------------------------------------------------

TEST(WindowedSeries, RolloverBucketsByWindowIndex) {
  obs::WindowedSeries s(kWin, obs::WindowAgg::kSum);
  s.record(ms(1), 2.0);
  s.record(ms(9), 3.0);   // same window: combines
  s.record(ms(10), 7.0);  // next window boundary: new bucket
  s.record(ms(35), 1.0);  // gap: indices need not be contiguous
  ASSERT_EQ(s.buckets().size(), 3u);
  EXPECT_EQ(s.buckets()[0].index, 0);
  EXPECT_EQ(s.buckets()[0].value, 5.0);
  EXPECT_EQ(s.buckets()[1].index, 1);
  EXPECT_EQ(s.buckets()[1].value, 7.0);
  EXPECT_EQ(s.buckets()[2].index, 3);
  EXPECT_EQ(s.bucket_start(s.buckets()[2]), ms(30));
  EXPECT_EQ(s.max(), 7.0);
}

TEST(WindowedSeries, AggregationKindsWithinAWindow) {
  obs::WindowedSeries sum(kWin, obs::WindowAgg::kSum);
  obs::WindowedSeries mx(kWin, obs::WindowAgg::kMax);
  obs::WindowedSeries last(kWin, obs::WindowAgg::kLast);
  for (const double v : {4.0, 9.0, 2.0}) {
    sum.record(ms(1), v);
    mx.record(ms(1), v);
    last.record(ms(1), v);
  }
  EXPECT_EQ(sum.buckets()[0].value, 15.0);
  EXPECT_EQ(mx.buckets()[0].value, 9.0);
  EXPECT_EQ(last.buckets()[0].value, 2.0);
}

TEST(WindowedSeries, MergeInterleavesAndCombines) {
  obs::WindowedSeries a(kWin, obs::WindowAgg::kSum);
  a.record(ms(5), 1.0);
  a.record(ms(25), 2.0);
  obs::WindowedSeries b(kWin, obs::WindowAgg::kSum);
  b.record(ms(15), 10.0);
  b.record(ms(25), 20.0);

  a.merge(b);
  ASSERT_EQ(a.buckets().size(), 3u);
  EXPECT_EQ(a.buckets()[0].index, 0);
  EXPECT_EQ(a.buckets()[0].value, 1.0);
  EXPECT_EQ(a.buckets()[1].index, 1);
  EXPECT_EQ(a.buckets()[1].value, 10.0);
  EXPECT_EQ(a.buckets()[2].index, 2);
  EXPECT_EQ(a.buckets()[2].value, 22.0);  // same index: kSum adds
}

TEST(WindowedSeries, MergeIdentities) {
  obs::WindowedSeries a(kWin, obs::WindowAgg::kMax);
  a.record(ms(5), 3.0);

  // Merging an empty series is the identity.
  obs::WindowedSeries empty;
  a.merge(empty);
  ASSERT_EQ(a.buckets().size(), 1u);
  EXPECT_EQ(a.buckets()[0].value, 3.0);

  // Merging into an unconfigured series adopts window and agg — the
  // merged-metrics aggregate starts blank.
  obs::WindowedSeries fresh;
  fresh.merge(a);
  EXPECT_TRUE(fresh.configured());
  EXPECT_EQ(fresh.window(), kWin);
  EXPECT_EQ(fresh.agg(), obs::WindowAgg::kMax);
  ASSERT_EQ(fresh.buckets().size(), 1u);
  EXPECT_EQ(fresh.buckets()[0].value, 3.0);
}

TEST(WindowedSeries, RegistryMergeFoldsWindowedSeries) {
  obs::Registry r1;
  r1.windowed("ts.events", kWin, obs::WindowAgg::kSum, {{"shard", "0"}})
      .record(ms(5), 4.0);
  obs::Registry r2;
  r2.windowed("ts.events", kWin, obs::WindowAgg::kSum, {{"shard", "1"}})
      .record(ms(5), 6.0);

  obs::Registry merged;
  merged.merge(r1);
  merged.merge(r2);
  // Distinct labels stay distinct series (per-shard ownership).
  const obs::WindowedSeries* s0 =
      merged.find_windowed("ts.events", {{"shard", "0"}});
  const obs::WindowedSeries* s1 =
      merged.find_windowed("ts.events", {{"shard", "1"}});
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s0->buckets()[0].value, 4.0);
  EXPECT_EQ(s1->buckets()[0].value, 6.0);

  const obs::Json doc = obs::windowed_series_json(merged);
  const std::string text = doc.dump(0);
  EXPECT_NE(text.find("ts.events{shard=0}"), std::string::npos);
  EXPECT_NE(text.find("ts.events{shard=1}"), std::string::npos);
  EXPECT_NE(text.find("\"window_ms\":10"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingWrapsAndCountsDropped) {
  obs::FlightRecorder fr(/*capacity=*/4);
  for (std::int64_t i = 0; i < 10; ++i) {
    fr.record(ms(i), obs::FlightRecorder::Kind::kNasRetx, i);
  }
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.total(), 10u);
  EXPECT_EQ(fr.dropped(), 6u);
  const auto recent = fr.recent();
  ASSERT_EQ(recent.size(), 4u);
  // Oldest-first: events 6..9 survived.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recent[i].a, static_cast<std::int64_t>(6 + i));
    EXPECT_EQ(recent[i].seq, 6 + i);
  }
}

TEST(FlightRecorder, MergeOrdersByTimeShardSeq) {
  obs::FlightRecorder s0;
  obs::FlightRecorder s1;
  s1.record(ms(1), obs::FlightRecorder::Kind::kCrashCpf, 7, 1);
  s0.record(ms(1), obs::FlightRecorder::Kind::kAttachShed, 3, 0);
  s0.record(ms(2), obs::FlightRecorder::Kind::kReattach, 3);

  const obs::Json doc = obs::FlightRecorder::merge_flight({&s0, &s1});
  const std::string text = doc.dump(0);
  EXPECT_NE(text.find("neutrino.flight-recorder"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\":0"), std::string::npos);
  // Same time: shard 0 sorts before shard 1; later time last.
  const std::size_t shed = text.find("attach_shed");
  const std::size_t crash = text.find("crash_cpf");
  const std::size_t reattach = text.find("reattach");
  ASSERT_NE(shed, std::string::npos);
  ASSERT_NE(crash, std::string::npos);
  ASSERT_NE(reattach, std::string::npos);
  EXPECT_LT(shed, crash);
  EXPECT_LT(crash, reattach);

  // Null recorders are skipped, not dereferenced. (Trailing: the shard
  // tag is the vector index, so a hole in the middle would renumber.)
  const obs::Json doc2 =
      obs::FlightRecorder::merge_flight({&s0, &s1, nullptr});
  EXPECT_EQ(doc2.dump(0), text);
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

TEST(SloTracker, BurnRateMath) {
  // 1% of samples above the p99 bound = burn 1.0 (exactly on target).
  EXPECT_NEAR(obs::SloTracker::burn_rate(1, 100, 0.99), 1.0, 1e-9);
  EXPECT_NEAR(obs::SloTracker::burn_rate(2, 100, 0.99), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(obs::SloTracker::burn_rate(50, 100, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(obs::SloTracker::burn_rate(0, 100, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(obs::SloTracker::burn_rate(0, 0, 0.99), 0.0);
}

TEST(SloTracker, RecordsViolationsPerWindow) {
  obs::SloTracker slo(kWin);
  slo.set_target(0, "attach", {1.0, 2.0, 4.0});
  slo.record(ms(1), 0, 0.5);   // under every bound
  slo.record(ms(2), 0, 3.0);   // violates p50 + p95
  slo.record(ms(12), 0, 5.0);  // next window; violates all three
  slo.record(ms(3), 1, 99.0);  // index without a target: ignored

  EXPECT_TRUE(slo.any_samples());
  const std::string text = slo.json().dump(0);
  EXPECT_NE(text.find("\"attach\""), std::string::npos);
  EXPECT_NE(text.find("\"count\":3"), std::string::npos);

  obs::SloTracker other(kWin);
  other.set_target(0, "attach", {1.0, 2.0, 4.0});
  other.record(ms(12), 0, 9.0);  // same window as the third sample

  slo.merge(other);
  // 4 samples, 2 of them above p99=4ms: burn_p99 = (2/4)/0.01 = 50.
  const std::string merged = slo.json().dump(0);
  EXPECT_NE(merged.find("\"count\":4"), std::string::npos);
  EXPECT_NE(merged.find("\"p99\":2"), std::string::npos);   // violations
  EXPECT_NE(merged.find("\"p99\":50"), std::string::npos);  // burn (%.9g)
}

// ---------------------------------------------------------------------------
// PhaseProfiler
// ---------------------------------------------------------------------------

TEST(PhaseProfiler, AttributesPerLaneAndPhase) {
  obs::PhaseProfiler prof(/*lanes=*/2);
  prof.add(0, obs::Phase::kDispatch, 300);
  prof.add(1, obs::Phase::kDispatch, 100);
  prof.add(0, obs::Phase::kBarrierWait, 600);

  EXPECT_EQ(prof.total_ns(obs::Phase::kDispatch), 400u);
  EXPECT_EQ(prof.lane_ns(1, obs::Phase::kDispatch), 100u);
  EXPECT_EQ(prof.total_ns(obs::Phase::kBarrierWait), 600u);
  EXPECT_EQ(prof.total_ns(obs::Phase::kCodec), 0u);

  const std::string text = prof.json().dump(0);
  EXPECT_NE(text.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(text.find("\"barrier_wait\""), std::string::npos);
  EXPECT_NE(text.find("\"lane_ns\""), std::string::npos);
  // Phases with zero calls are omitted from the shares table.
  EXPECT_EQ(text.find("\"codec\""), std::string::npos);
  // share(dispatch) = 400 / 1000.
  EXPECT_NE(text.find("\"share\":0.4"), std::string::npos);
}

TEST(PhaseProfiler, NullScopeIsANoop) {
  // Must not crash; the disabled path is a single branch.
  auto scope = obs::PhaseProfiler::scoped(nullptr, 3, obs::Phase::kOther);
  obs::PhaseProfiler prof(1);
  {
    auto s = obs::PhaseProfiler::scoped(&prof, 0, obs::Phase::kOther);
  }
  EXPECT_EQ(prof.json()["phases"]["other"]["calls"].dump(0), "1");
}

// ---------------------------------------------------------------------------
// Perfetto trace export
// ---------------------------------------------------------------------------

TEST(TraceExport, ShardWindowsProduceWellFormedTrace) {
  std::vector<obs::ShardWindowRecord> windows;
  windows.push_back({ms(0), ms(1), 0, {10, 0}});   // shard 1 idle: skipped
  windows.push_back({ms(1), ms(2), 5, {7, 3}});

  const obs::Json doc = obs::perfetto_trace(nullptr, windows);
  const std::string text = doc.dump(0);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("sharded runtime"), std::string::npos);
  EXPECT_NE(text.find("\"shard 0\""), std::string::npos);
  EXPECT_NE(text.find("\"shard 1\""), std::string::npos);
  EXPECT_NE(text.find("cross-shard messages"), std::string::npos);
  // Complete events carry ts + dur in sim-time microseconds: window 2
  // starts at 1 ms = 1000 us and lasts 1000 us.
  EXPECT_NE(text.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":1000"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);

  // No spans, no windows: still a well-formed (empty) trace.
  const obs::Json empty = obs::perfetto_trace(nullptr, {});
  EXPECT_NE(empty.dump(0).find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace neutrino
