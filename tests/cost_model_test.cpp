// Cost model: calibration anchoring and measured-cost sanity.
#include <gtest/gtest.h>

#include "core/cost_model.hpp"

namespace neutrino::core {
namespace {

// One shared instance: construction measures the real codecs (~1 s).
const MeasuredCostModel& model() {
  static const MeasuredCostModel m;
  return m;
}

TEST(MeasuredCostModel, FasterSerializationGivesLowerServiceTimes) {
  // The headline ordering §3.2 rests on.
  const MsgKind kinds[] = {MsgKind::kAttachRequest, MsgKind::kAttachAccept,
                           MsgKind::kServiceRequest, MsgKind::kIcsResponse};
  for (const MsgKind kind : kinds) {
    const auto asn1 =
        model().processing_time(ser::WireFormat::kAsn1Per, kind);
    const auto fbs = model().processing_time(
        ser::WireFormat::kOptimizedFlatBuffers, kind);
    EXPECT_LT(fbs.ns(), asn1.ns()) << to_string(kind);
  }
}

TEST(MeasuredCostModel, AttachBudgetAnchored) {
  // DESIGN.md §5: EPC attach work per CPF ~= 5/60K s. The model clamps
  // scale at 1.0 when the measured codecs alone exceed the budget — the
  // documented degenerate case for slow/loaded hosts — and in that
  // regime the anchor is unattainable by design, not broken.
  if (model().scale() <= 1.0) {
    GTEST_SKIP() << "calibration clamped (host too slow or loaded for "
                    "the 60 KPPS anchor)";
  }
  const MsgKind attach_kinds[] = {
      MsgKind::kAttachRequest, MsgKind::kAuthResponse,
      MsgKind::kSecurityModeComplete, MsgKind::kCreateSessionResponse,
      MsgKind::kAttachComplete};
  std::int64_t total_ns = 0;
  for (const MsgKind kind : attach_kinds) {
    total_ns += model().processing_time(ser::WireFormat::kAsn1Per, kind).ns();
  }
  EXPECT_NEAR(static_cast<double>(total_ns), 5.0 / 60'000 * 1e9,
              5.0 / 60'000 * 1e9 * 0.02);
}

TEST(MeasuredCostModel, SizesMatchRealEncodings) {
  EXPECT_GT(model().encoded_size(ser::WireFormat::kFlatBuffers,
                                 MsgKind::kAttachAccept),
            model().encoded_size(ser::WireFormat::kAsn1Per,
                                 MsgKind::kAttachAccept));
  EXPECT_GT(model().state_encoded_size(ser::WireFormat::kAsn1Per), 0u);
}

TEST(MeasuredCostModel, StateSerializationCostPositive) {
  for (const auto format : ser::kAllWireFormats) {
    EXPECT_GT(model().state_serialize_time(format).ns(), 0);
  }
}

TEST(FixedCostModel, UniformAndDeterministic) {
  FixedCostModel fixed(SimTime::microseconds(7), 42);
  EXPECT_EQ(fixed.processing_time(ser::WireFormat::kAsn1Per,
                                  MsgKind::kAttachRequest),
            SimTime::microseconds(7));
  EXPECT_EQ(fixed.encoded_size(ser::WireFormat::kLcm, MsgKind::kTrackingAreaUpdate), 42u);
}

}  // namespace
}  // namespace neutrino::core
