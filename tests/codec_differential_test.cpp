// Differential property: for any message, every wire format must decode
// back to the *same* logical value — cross-format disagreement means one
// codec silently drops or distorts a field.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "s1ap/samples.hpp"
#include "serialize/codec.hpp"

namespace neutrino {
namespace {

/// Randomized message content, well-formed by construction.
s1ap::InitialContextSetupRequest random_ics(Rng& rng) {
  auto msg = s1ap::samples::initial_context_setup(
      static_cast<std::uint32_t>(rng.next_below(1u << 24)),
      static_cast<std::uint32_t>(rng.next_below(1u << 20)));
  msg.ambr.dl_bps = rng.next_below(10'000'000'000ULL);
  msg.ambr.ul_bps = rng.next_below(10'000'000'000ULL);
  msg.erabs.clear();
  const auto n_erabs = rng.next_below(4);
  for (std::uint64_t i = 0; i < n_erabs; ++i) {
    auto erab = s1ap::samples::erab_to_setup(
        static_cast<std::uint8_t>(rng.next_below(16)));
    if (rng.next_bool(0.3)) erab.nas_pdu.reset();
    if (rng.next_bool(0.5)) {
      erab.transport.address =
          s1ap::samples::pattern_bytes(16, static_cast<std::uint8_t>(i));
    }
    msg.erabs.push_back(std::move(erab));
  }
  if (rng.next_bool(0.5)) msg.ue_radio_capability.reset();
  if (rng.next_bool(0.5)) msg.csg_membership_status.reset();
  msg.security_key =
      s1ap::samples::pattern_bytes(32, static_cast<std::uint8_t>(
                                           rng.next_below(256)));
  return msg;
}

TEST(CodecDifferential, AllFormatsAgreeOnRandomMessages) {
  Rng rng(2026);
  for (int trial = 0; trial < 100; ++trial) {
    const auto original = random_ics(rng);
    for (const auto format : ser::kAllWireFormats) {
      const Bytes encoded = ser::encode(format, original);
      auto decoded =
          ser::decode<s1ap::InitialContextSetupRequest>(format, encoded);
      ASSERT_TRUE(decoded.is_ok())
          << ser::to_string(format) << " trial " << trial;
      EXPECT_EQ(*decoded, original)
          << ser::to_string(format) << " trial " << trial;
    }
  }
}

TEST(CodecDifferential, SizeOrderingIsStable) {
  // ASN.1 PER must be the most compact and FlexBuffers (keys on the wire)
  // the least, for any content — a structural property of the formats.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto msg = random_ics(rng);
    const auto per = ser::encode(ser::WireFormat::kAsn1Per, msg).size();
    const auto flex = ser::encode(ser::WireFormat::kFlexBuffers, msg).size();
    for (const auto format : ser::kAllWireFormats) {
      const auto size = ser::encode(format, msg).size();
      EXPECT_GE(size, per) << ser::to_string(format);
      EXPECT_LE(size, flex) << ser::to_string(format);
    }
  }
}

TEST(CodecDifferential, OptimizedNeverLargerThanStandardFlatBuffers) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const auto msg = random_ics(rng);
    EXPECT_LE(
        ser::encode(ser::WireFormat::kOptimizedFlatBuffers, msg).size(),
        ser::encode(ser::WireFormat::kFlatBuffers, msg).size());
  }
}

}  // namespace
}  // namespace neutrino
