// Idle-mode extensions: paging / downlink-data notification (the paper's
// Fig. 2 motivating scenario), UE-initiated detach, and tracking-area
// updates served from geo-replicated state.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace neutrino::core {
namespace {

struct Harness {
  explicit Harness(CorePolicy policy, TopologyConfig topo = {}) {
    proto.ack_timeout = SimTime::milliseconds(500);
    proto.log_scan_interval = SimTime::milliseconds(100);
    system =
        std::make_unique<System>(loop, policy, topo, proto, costs, metrics);
  }
  void run_to(SimTime horizon) { loop.run_until(horizon); }

  sim::EventLoop loop;
  FixedCostModel costs{SimTime::microseconds(10)};
  ProtocolConfig proto;
  Metrics metrics;
  std::unique_ptr<System> system;
};

// --- paging / downlink data (§3.1, Fig. 2) ----------------------------------

TEST(Paging, DownlinkDataPagesIdleUeAndDelivers) {
  Harness h(neutrino_policy());
  const UeId ue{5};
  h.system->frontend().preattach(ue, 0);
  h.system->trigger_downlink(ue);
  h.run_to(SimTime::seconds(2));

  EXPECT_EQ(h.metrics.pagings_sent, 1u);
  EXPECT_EQ(h.metrics.downlink_delivered, 1u);
  EXPECT_EQ(h.metrics.downlink_undeliverable, 0u);
  // The page triggered a service request.
  EXPECT_EQ(h.metrics.pct_for(ProcedureType::kServiceRequest).count(), 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(Paging, Fig2ScenarioEpcLosesReachabilityAfterCpfFailure) {
  // The paper's motivating example: the CPF fails after attach; without
  // replication the core no longer knows the UE is attached, so downlink
  // data cannot be delivered.
  Harness h(existing_epc_policy());
  const UeId ue{5};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run_to(SimTime::seconds(1));
  ASSERT_TRUE(h.system->frontend().is_attached(ue));

  h.system->crash_cpf(h.system->primary_cpf_for(ue, 0));
  h.run_to(SimTime::seconds(2));
  h.system->trigger_downlink(ue);
  h.run_to(SimTime::seconds(3));

  EXPECT_EQ(h.metrics.downlink_undeliverable, 1u);
  EXPECT_EQ(h.metrics.downlink_delivered, 0u);
}

TEST(Paging, NeutrinoStaysReachableAfterCpfFailure) {
  // Same failure, Neutrino: the replica holds the attached context and the
  // page goes out — the disruption of Fig. 2 is masked.
  Harness h(neutrino_policy());
  const UeId ue{5};
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run_to(SimTime::seconds(1));
  ASSERT_TRUE(h.system->frontend().is_attached(ue));

  h.system->crash_cpf(h.system->primary_cpf_for(ue, 0));
  h.run_to(SimTime::seconds(2));
  h.system->trigger_downlink(ue);
  h.run_to(SimTime::seconds(4));

  EXPECT_EQ(h.metrics.pagings_sent, 1u);
  EXPECT_EQ(h.metrics.downlink_delivered, 1u);
  EXPECT_EQ(h.metrics.downlink_undeliverable, 0u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

TEST(Paging, DetachedUeIsNotPaged) {
  Harness h(neutrino_policy());
  const UeId ue{5};
  h.system->frontend().preattach(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kDetach);
  h.run_to(SimTime::seconds(1));
  ASSERT_FALSE(h.system->frontend().is_attached(ue));

  h.system->trigger_downlink(ue);
  h.run_to(SimTime::seconds(2));
  EXPECT_EQ(h.metrics.pagings_sent, 0u);
  EXPECT_EQ(h.metrics.downlink_undeliverable, 1u);
}

// --- detach ------------------------------------------------------------------

TEST(Detach, TearsDownSessionEverywhere) {
  Harness h(neutrino_policy());
  const UeId ue{9};
  h.system->frontend().preattach(ue, 0);
  ASSERT_TRUE(h.system->upf(0).has_session(ue));

  h.system->frontend().start_procedure(ue, ProcedureType::kDetach);
  h.run_to(SimTime::seconds(2));

  EXPECT_FALSE(h.system->frontend().is_attached(ue));
  EXPECT_FALSE(h.system->upf(0).has_session(ue));
  EXPECT_EQ(h.metrics.pct_for(ProcedureType::kDetach).count(), 1u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);

  // The tombstone reached the replicas: they know the UE is gone.
  for (const CpfId b : h.system->backups_for(ue, 0)) {
    const UeState* replica = h.system->cpf(b).peek_state(ue);
    ASSERT_NE(replica, nullptr);
    EXPECT_FALSE(replica->attached);
  }
}

TEST(Detach, ReattachAfterDetachWorks) {
  Harness h(neutrino_policy());
  const UeId ue{9};
  h.system->frontend().preattach(ue, 0);
  h.system->frontend().start_procedure(ue, ProcedureType::kDetach);
  h.run_to(SimTime::seconds(1));
  h.system->frontend().start_procedure(ue, ProcedureType::kAttach);
  h.run_to(SimTime::seconds(2));
  EXPECT_TRUE(h.system->frontend().is_attached(ue));
  EXPECT_EQ(h.metrics.procedures_completed, 2u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
}

// --- tracking area update (idle-mode mobility) -------------------------------

struct MultiRegion : Harness {
  MultiRegion(CorePolicy policy)
      : Harness(policy, [] {
          TopologyConfig topo;
          topo.l1_per_l2 = 4;
          return topo;
        }()) {}
};

TEST(Tau, IdleMoveServedFromGeoReplicatedState) {
  MultiRegion h(neutrino_policy());
  const UeId ue{21};
  h.system->frontend().preattach(ue, 1);
  h.system->frontend().idle_move(ue, 2);
  h.system->frontend().start_procedure(ue, ProcedureType::kTau);
  h.run_to(SimTime::seconds(2));

  EXPECT_EQ(h.metrics.pct_for(ProcedureType::kTau).count(), 1u);
  // Served either directly from a level-2 replica on the new primary or
  // after one fetch — never via Re-Attach.
  EXPECT_EQ(h.metrics.reattaches, 0u);
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  // The new region's primary now holds the updated context.
  const CpfId new_primary = h.system->primary_cpf_for(ue, 2);
  const UeState* state = h.system->cpf(new_primary).peek_state(ue);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->serving_region, 2u);
}

TEST(Tau, EpcIdleMoveForcesReattach) {
  // Without geo-replication the new region has no state at all: the
  // location update fails into a Re-Attach (the §2.2 "control handover"
  // cost for idle UEs).
  MultiRegion h(existing_epc_policy());
  const UeId ue{21};
  h.system->frontend().preattach(ue, 1);
  h.system->frontend().idle_move(ue, 2);
  h.system->frontend().start_procedure(ue, ProcedureType::kTau);
  h.run_to(SimTime::seconds(2));

  EXPECT_GE(h.metrics.reattaches, 1u);
  EXPECT_EQ(h.metrics.procedures_completed, 1u);  // completed as Re-Attach
  EXPECT_TRUE(h.system->frontend().is_attached(ue));
}

TEST(Tau, SequentialIdleMovesKeepConsistency) {
  MultiRegion h(neutrino_policy());
  const UeId ue{21};
  h.system->frontend().preattach(ue, 0);
  for (std::uint32_t hop = 1; hop <= 6; ++hop) {
    h.system->frontend().idle_move(ue, hop % 4);
    h.system->frontend().start_procedure(ue, ProcedureType::kTau);
    h.run_to(SimTime::seconds(hop));
  }
  EXPECT_EQ(h.metrics.ryw_violations, 0u);
  EXPECT_EQ(h.metrics.procedures_completed, 6u);
}

}  // namespace
}  // namespace neutrino::core
