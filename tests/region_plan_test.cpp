// Geography-driven deployment planning (Fig. 6 / §4.3).
#include <gtest/gtest.h>

#include "geo/region_plan.hpp"

namespace neutrino::geo {
namespace {

GeoCell metro_area() {
  // One level-2 cell at precision 5, i.e. a 4-region metro: derive its
  // exact bounds from a hash so the area is a clean union of quads.
  return geohash_decode(geohash_encode({31.5, 74.3}, 5));
}

TEST(RegionPlan, CarvesAreaIntoLevel1Quads) {
  const auto plan = RegionPlan::from_area(metro_area(), 6);
  ASSERT_EQ(plan.regions().size(), 4u);
  const std::string parent = plan.regions()[0].parent_geohash;
  for (const auto& region : plan.regions()) {
    EXPECT_EQ(region.geohash.size(), 6u);
    EXPECT_EQ(region.parent_geohash, parent);
    EXPECT_TRUE(metro_area().contains(region.cell.center()));
  }
}

TEST(RegionPlan, LocateMapsPositionsToRegions) {
  const auto plan = RegionPlan::from_area(metro_area(), 6);
  for (const auto& region : plan.regions()) {
    const auto* located = plan.locate(region.cell.center());
    ASSERT_NE(located, nullptr);
    EXPECT_EQ(located->region_index, region.region_index);
  }
  // A point outside the plan is not covered.
  EXPECT_EQ(plan.locate({-80.0, 10.0}), nullptr);
}

TEST(RegionPlan, ReplicationDomainIsTheLevel2Quad) {
  const auto area = geohash_decode(geohash_encode({40.7, -74.0}, 4));
  const auto plan = RegionPlan::from_area(area, 6);  // 16 level-1 regions
  ASSERT_EQ(plan.regions().size(), 16u);
  for (const auto& region : plan.regions()) {
    const auto domain = plan.replication_domain(region.region_index);
    EXPECT_EQ(domain.size(), 4u);
    EXPECT_TRUE(std::find(domain.begin(), domain.end(),
                          region.region_index) != domain.end());
    for (const auto other : domain) {
      EXPECT_EQ(plan.regions()[other].parent_geohash,
                region.parent_geohash);
    }
  }
}

TEST(RegionPlan, ToTopologyMatchesGeography) {
  const auto area = geohash_decode(geohash_encode({40.7, -74.0}, 4));
  const auto plan = RegionPlan::from_area(area, 6);
  auto topo = plan.to_topology(5);
  ASSERT_TRUE(topo.is_ok()) << topo.status().message();
  EXPECT_EQ(topo->total_regions(), 16);
  EXPECT_EQ(topo->l1_per_l2, 4);
  EXPECT_EQ(topo->l2_regions, 4);
  // The index-based level-2 grouping must agree with the geohash parents.
  for (const auto& region : plan.regions()) {
    for (const auto other : plan.replication_domain(region.region_index)) {
      EXPECT_EQ(topo->l2_of(region.region_index),
                topo->l2_of(other));
    }
  }
}

TEST(RegionPlan, RejectsPartialQuads) {
  // An area covering 2 level-1 cells cannot form level-2 domains.
  GeoCell half = metro_area();
  half.lon_hi = (half.lon_lo + half.lon_hi) / 2;
  const auto plan = RegionPlan::from_area(half, 6);
  ASSERT_EQ(plan.regions().size(), 2u);
  EXPECT_FALSE(plan.to_topology(5).is_ok());
}

}  // namespace
}  // namespace neutrino::geo
