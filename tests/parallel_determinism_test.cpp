// Differential determinism proof for the sharded runtime (DESIGN.md §11):
//
//  1. one shard ≡ the legacy single-threaded System, bit for bit —
//     counters, PCT sample order, and every traced hop timeline;
//  2. for a fixed shard count, results are bit-identical across worker
//     thread counts (1, 2, N, and oversubscribed) and across runs,
//     including a crash + replay recovery scenario with genuine
//     cross-shard checkpoint traffic;
//  3. the consistency guarantee survives sharding: 0 RYW violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/sharded_system.hpp"
#include "core/system.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "trace/workload.hpp"
#include "traffic/scenario.hpp"

namespace neutrino {
namespace {

core::TopologyConfig four_region_topo() {
  core::TopologyConfig topo;
  topo.l1_per_l2 = 4;  // one shard per region at shards=4
  return topo;
}

core::ProtocolConfig test_proto() {
  core::ProtocolConfig proto;
  proto.ack_timeout = SimTime::milliseconds(500);
  proto.log_scan_interval = SimTime::milliseconds(100);
  return proto;
}

/// Overload-control knobs armed (DESIGN.md §13): queues small enough that
/// the 1000pps storm overflows them, attach admission throttled, and NAS
/// retransmission re-driving everything that was shed or dropped.
core::ProtocolConfig overload_test_proto() {
  core::ProtocolConfig proto = test_proto();
  proto.cta_queue_capacity = 6;
  proto.cpf_queue_capacity = 6;
  proto.attach_admission_fraction = 0.5;
  proto.nas_retx_timeout = SimTime::milliseconds(20);
  proto.nas_retx_budget = 6;
  return proto;
}

/// The shared scenario: a 500ms, 1000pps storm over `regions` regions
/// with a mid-storm crash + restore of UE 0's primary CPF. Inter-region
/// handovers are excluded (unsupported across shards — UE↔CTA links sit
/// below the lookahead); intra-region handovers stay in the mix.
std::vector<trace::TraceRecord> make_trace(int regions) {
  trace::ProcedureMix mix;
  mix.service_request = 0.5;
  mix.intra_handover = 0.1;
  trace::UniformWorkload workload(/*rate_pps=*/1000,
                                  SimTime::milliseconds(500), mix,
                                  /*seed=*/11);
  return workload.generate(/*ue_population=*/200,
                           /*regions=*/regions);
}

/// The overload scenario: the same mixed storm plus a synchronized
/// IoT-style attach burst (§6.1 "bursty") of 80 fresh UEs at one instant,
/// landing inside the crash window — the bounded queues must overflow and
/// the shed uplinks retransmit across a failover.
std::vector<trace::TraceRecord> make_storm_trace(int regions) {
  std::vector<trace::TraceRecord> recs = make_trace(regions);
  for (std::uint64_t u = 0; u < 80; ++u) {
    trace::TraceRecord rec;
    rec.at = SimTime::milliseconds(150);
    rec.ue = UeId(300 + u);
    rec.type = core::ProcedureType::kAttach;
    recs.push_back(rec);
  }
  return recs;
}

/// Telemetry cadence and horizon every run (legacy and sharded) arms, so
/// the serialized telemetry below is comparable byte for byte.
constexpr SimTime kTelemetryWindow = SimTime::milliseconds(50);
constexpr SimTime kHorizon = SimTime::seconds(5);

std::vector<std::pair<core::ProcedureType, obs::SloTarget>> slo_targets() {
  using PT = core::ProcedureType;
  return {
      {PT::kAttach, {1.0, 2.0, 4.0}},
      {PT::kServiceRequest, {0.5, 1.0, 2.0}},
      {PT::kReattach, {2.0, 4.0, 8.0}},
      {PT::kTau, {0.5, 1.0, 2.0}},
  };
}

struct ShardRun {
  core::Metrics metrics;              // merged across shards
  std::vector<std::string> dumps;     // per-shard tracer timelines
  std::uint64_t windows = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t events = 0;
  // Deep-telemetry layer, serialized (DESIGN.md §15): all three must be
  // byte-identical across worker-thread counts.
  std::string telemetry_json;         // merged windowed series
  std::string slo_json;               // merged SLO burn tracker
  std::string flight_json;            // merged flight recorders
};

ShardRun run_sharded(std::uint32_t shards, std::uint32_t threads,
                bool with_crash, std::uint64_t preattached,
                const core::ProtocolConfig& proto = test_proto(),
                bool storm = false, bool adaptive = false,
                std::size_t drain_batch = 64,
                const std::vector<trace::TraceRecord>* custom_trace =
                    nullptr) {
  const core::FixedCostModel costs{SimTime::microseconds(10)};
  core::ShardedSystem::Config cfg;
  cfg.policy = core::neutrino_policy();
  cfg.topo = four_region_topo();
  cfg.proto = proto;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.adaptive_lookahead = adaptive;
  cfg.drain_batch = drain_batch;
  core::ShardedSystem sys(cfg, costs);

  obs::TracerConfig tc;
  tc.record_events = true;
  tc.keep_all = true;
  std::vector<std::unique_ptr<obs::ProcTracer>> tracers;
  std::vector<obs::FlightRecorder> flights;
  flights.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    tracers.push_back(std::make_unique<obs::ProcTracer>(
        tc, &sys.metrics(s).registry));
    sys.attach_tracer(s, *tracers.back());
    flights.emplace_back(/*capacity=*/128);
    sys.attach_flight_recorder(s, flights.back());
  }
  sys.arm_telemetry(kTelemetryWindow, kHorizon);
  sys.arm_slo(kTelemetryWindow, slo_targets());

  const auto regions =
      static_cast<std::uint32_t>(cfg.topo.total_regions());
  for (std::uint64_t ue = 0; ue < preattached; ++ue) {
    sys.preattach(UeId(ue), static_cast<std::uint32_t>(ue % regions));
  }

  if (custom_trace != nullptr) {
    sys.replay(*custom_trace);
  } else {
    sys.replay(storm ? make_storm_trace(static_cast<int>(regions))
                     : make_trace(static_cast<int>(regions)));
  }
  if (with_crash) {
    const CpfId doomed =
        sys.system(0).primary_cpf_for(UeId{0}, /*region=*/0);
    sys.schedule_crash(SimTime::milliseconds(120), doomed);
    sys.schedule_restore(SimTime::milliseconds(320), doomed);
  }
  sys.run_until(kHorizon);

  ShardRun run{sys.merged_metrics(), {}, sys.stats().windows,
          sys.stats().cross_messages, sys.events_executed()};
  for (auto& tracer : tracers) {
    run.dumps.push_back(tracer->dump_json().dump(0));
  }
  run.telemetry_json =
      obs::windowed_series_json(run.metrics.registry).dump(0);
  if (const obs::SloTracker* slo = run.metrics.slo()) {
    run.slo_json = slo->json().dump(0);
  }
  std::vector<const obs::FlightRecorder*> flight_ptrs;
  for (const obs::FlightRecorder& f : flights) flight_ptrs.push_back(&f);
  run.flight_json = obs::FlightRecorder::merge_flight(flight_ptrs).dump(0);
  return run;
}

void expect_identical(const ShardRun& a, const ShardRun& b, const char* label) {
  EXPECT_EQ(a.windows, b.windows) << label;
  EXPECT_EQ(a.cross_messages, b.cross_messages) << label;
  EXPECT_EQ(a.events, b.events) << label;
  a.metrics.registry.for_each_counter(
      [&](const std::string& key, const obs::Counter& counter) {
        const obs::Counter* other = b.metrics.registry.find_counter(key);
        ASSERT_NE(other, nullptr) << label << ": missing " << key;
        EXPECT_EQ(counter.value(), other->value()) << label << ": " << key;
      });
  for (std::size_t i = 0; i < core::Metrics::kProcTypes; ++i) {
    const auto sa = a.metrics.pct[i].summary();
    const auto sb = b.metrics.pct[i].summary();
    EXPECT_EQ(sa.count, sb.count) << label << " proc " << i;
    EXPECT_EQ(sa.mean, sb.mean) << label << " proc " << i;
    EXPECT_EQ(sa.p50, sb.p50) << label << " proc " << i;
    EXPECT_EQ(sa.p99, sb.p99) << label << " proc " << i;
    EXPECT_EQ(sa.max, sb.max) << label << " proc " << i;
  }
  ASSERT_EQ(a.dumps.size(), b.dumps.size()) << label;
  for (std::size_t s = 0; s < a.dumps.size(); ++s) {
    EXPECT_EQ(a.dumps[s], b.dumps[s]) << label << " shard " << s;
  }
  // Deep telemetry must not observe the thread count: series, SLO burn
  // windows and the merged flight timeline are compared as serialized
  // bytes, the strictest equality available.
  EXPECT_EQ(a.telemetry_json, b.telemetry_json) << label << " telemetry";
  EXPECT_EQ(a.slo_json, b.slo_json) << label << " slo";
  EXPECT_EQ(a.flight_json, b.flight_json) << label << " flight";
}

// ---------------------------------------------------------------------------
// 1-shard parallel == legacy single-threaded System, bit for bit.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, OneShardMatchesLegacySystem) {
  // Legacy: the exact pattern every bench uses today.
  const core::FixedCostModel costs{SimTime::microseconds(10)};
  sim::EventLoop loop;
  core::Metrics legacy_metrics;
  core::System legacy(loop, core::neutrino_policy(), four_region_topo(),
                      test_proto(), costs, legacy_metrics);
  obs::TracerConfig tc;
  tc.record_events = true;
  tc.keep_all = true;
  obs::ProcTracer legacy_tracer(tc, &legacy_metrics.registry);
  legacy.attach_tracer(legacy_tracer);
  obs::FlightRecorder legacy_flight(/*capacity=*/128);
  legacy.attach_flight_recorder(legacy_flight);
  legacy.arm_telemetry(kTelemetryWindow, kHorizon);
  legacy_metrics.arm_slo(kTelemetryWindow, slo_targets());
  trace::replay(legacy, make_trace(4));
  const CpfId doomed = legacy.primary_cpf_for(UeId{0}, 0);
  loop.schedule_at(SimTime::milliseconds(120),
                   [&legacy, doomed] { legacy.crash_cpf(doomed); });
  loop.schedule_at(SimTime::milliseconds(320),
                   [&legacy, doomed] { legacy.restore_cpf(doomed); });
  loop.run_until(kHorizon);

  const ShardRun sharded = run_sharded(/*shards=*/1, /*threads=*/1,
                                  /*with_crash=*/true, /*preattached=*/0);

  // Sanity: the scenario exercised attach, recovery and replay paths.
  EXPECT_GT(legacy_metrics.procedures_completed, 400u);
  EXPECT_GT(legacy_metrics.replays + legacy_metrics.failovers +
                legacy_metrics.reattaches,
            0u);
  EXPECT_EQ(legacy_metrics.ryw_violations, 0u);

  EXPECT_EQ(sharded.events, loop.executed());
  EXPECT_EQ(sharded.cross_messages, 0u);
  legacy_metrics.registry.for_each_counter(
      [&](const std::string& key, const obs::Counter& counter) {
        const obs::Counter* other =
            sharded.metrics.registry.find_counter(key);
        ASSERT_NE(other, nullptr) << key;
        EXPECT_EQ(counter.value(), other->value()) << key;
      });
  for (std::size_t i = 0; i < core::Metrics::kProcTypes; ++i) {
    const auto sl = legacy_metrics.pct[i].summary();
    const auto ss = sharded.metrics.pct[i].summary();
    EXPECT_EQ(sl.count, ss.count) << "proc " << i;
    EXPECT_EQ(sl.mean, ss.mean) << "proc " << i;
    EXPECT_EQ(sl.p50, ss.p50) << "proc " << i;
    EXPECT_EQ(sl.p99, ss.p99) << "proc " << i;
    EXPECT_EQ(sl.max, ss.max) << "proc " << i;
  }
  ASSERT_EQ(sharded.dumps.size(), 1u);
  EXPECT_EQ(legacy_tracer.dump_json().dump(0), sharded.dumps[0]);

  // Telemetry parity: the legacy System with telemetry armed produces the
  // same windowed series, SLO windows and flight timeline as the 1-shard
  // runtime, byte for byte.
  EXPECT_EQ(obs::windowed_series_json(legacy_metrics.registry).dump(0),
            sharded.telemetry_json);
  ASSERT_NE(legacy_metrics.slo(), nullptr);
  EXPECT_EQ(legacy_metrics.slo()->json().dump(0), sharded.slo_json);
  EXPECT_EQ(obs::FlightRecorder::merge_flight({&legacy_flight}).dump(0),
            sharded.flight_json);
}

// ---------------------------------------------------------------------------
// Fixed shard count: identical across worker-thread counts and runs,
// through crash + replay, with real cross-shard traffic.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, FourShardsIdenticalAcrossThreadCounts) {
  const ShardRun t1 = run_sharded(4, 1, /*with_crash=*/true, 0);

  // Sanity: cross-shard channels actually carried the checkpoint/ack and
  // recovery traffic (Neutrino's level-2 backups live on other shards).
  EXPECT_GT(t1.cross_messages, 0u);
  EXPECT_GT(t1.windows, 0u);
  EXPECT_GT(t1.metrics.procedures_completed, 400u);
  EXPECT_GT(t1.metrics.checkpoints_sent, 0u);
  EXPECT_GT(t1.metrics.replays + t1.metrics.failovers +
                t1.metrics.reattaches,
            0u);
  EXPECT_EQ(t1.metrics.ryw_violations, 0u);
  // Telemetry really sampled: windowed series exist, the SLO tracker saw
  // completions, and the crash/restore injections hit the flight ring.
  EXPECT_NE(t1.telemetry_json.find("ts.events"), std::string::npos);
  EXPECT_FALSE(t1.slo_json.empty());
  EXPECT_NE(t1.flight_json.find("crash_cpf"), std::string::npos);
  EXPECT_NE(t1.flight_json.find("restore_cpf"), std::string::npos);

  const ShardRun t2 = run_sharded(4, 2, true, 0);
  const ShardRun t4 = run_sharded(4, 4, true, 0);
  const ShardRun t8 = run_sharded(4, 8, true, 0);  // oversubscribed
  const ShardRun t2_again = run_sharded(4, 2, true, 0);
  expect_identical(t1, t2, "threads 1 vs 2");
  expect_identical(t1, t4, "threads 1 vs 4");
  expect_identical(t1, t8, "threads 1 vs 8");
  expect_identical(t2, t2_again, "run-to-run at threads=2");
}

// ---------------------------------------------------------------------------
// Overload control armed: shedding, bounded-queue drops and NAS
// retransmission (including retransmits racing a crash + replay) stay
// bit-identical across worker-thread counts. Retx timers are scheduled on
// each shard's own loop, so this is the guarantee that backpressure does
// not leak wall-clock nondeterminism into the simulation.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, OverloadBackpressureIdenticalAcrossThreadCounts) {
  const ShardRun t1 = run_sharded(4, 1, /*with_crash=*/true, 0,
                                  overload_test_proto(), /*storm=*/true);

  // Sanity: the bounded queues really pushed back and the retx path
  // really re-drove work — otherwise this sweep proves nothing.
  EXPECT_GT(t1.metrics.attach_sheds + t1.metrics.overload_drops, 0u);
  EXPECT_GT(t1.metrics.nas_retransmissions, 0u);
  EXPECT_GT(t1.metrics.procedures_completed, 200u);
  EXPECT_EQ(t1.metrics.ryw_violations, 0u);
  // The overload machinery shows up in the flight timeline and the shed
  // series — the dumps chaos ships with a reproducer carry real signal.
  EXPECT_NE(t1.flight_json.find("nas_retx"), std::string::npos);
  EXPECT_NE(t1.telemetry_json.find("ts.shed"), std::string::npos);

  const ShardRun t2 = run_sharded(4, 2, true, 0, overload_test_proto(), true);
  const ShardRun t4 = run_sharded(4, 4, true, 0, overload_test_proto(), true);
  const ShardRun t8 = run_sharded(4, 8, true, 0, overload_test_proto(), true);
  const ShardRun t4_again =
      run_sharded(4, 4, true, 0, overload_test_proto(), true);
  expect_identical(t1, t2, "overload threads 1 vs 2");
  expect_identical(t1, t4, "overload threads 1 vs 4");
  expect_identical(t1, t8, "overload threads 1 vs 8");
  expect_identical(t4, t4_again, "overload run-to-run at threads=4");
}

// ---------------------------------------------------------------------------
// Adaptive lookahead (DESIGN.md §16) armed over the full chaos + overload
// scenario: crash + replay, bounded queues, NAS retransmission. Identical
// window *schedules* are not required versus the static runs above —
// identical event outcomes and byte-identical telemetry ARE, across
// worker-thread counts {1, 2, 4, 8} and across runs.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, AdaptiveLookaheadIdenticalAcrossThreadCounts) {
  const ShardRun t1 = run_sharded(4, 1, /*with_crash=*/true, 0,
                                  overload_test_proto(), /*storm=*/true,
                                  /*adaptive=*/true);

  // Sanity: the scenario still exercises every order-sensitive path —
  // shedding, retransmission, crash recovery — with adaptation on.
  EXPECT_GT(t1.metrics.attach_sheds + t1.metrics.overload_drops, 0u);
  EXPECT_GT(t1.metrics.nas_retransmissions, 0u);
  EXPECT_GT(t1.metrics.procedures_completed, 200u);
  EXPECT_EQ(t1.metrics.ryw_violations, 0u);
  EXPECT_GT(t1.cross_messages, 0u);

  const ShardRun t2 = run_sharded(4, 2, true, 0, overload_test_proto(),
                                  true, true);
  const ShardRun t4 = run_sharded(4, 4, true, 0, overload_test_proto(),
                                  true, true);
  const ShardRun t8 = run_sharded(4, 8, true, 0, overload_test_proto(),
                                  true, true);  // oversubscribed
  const ShardRun t4_again = run_sharded(4, 4, true, 0,
                                        overload_test_proto(), true, true);
  expect_identical(t1, t2, "adaptive threads 1 vs 2");
  expect_identical(t1, t4, "adaptive threads 1 vs 4");
  expect_identical(t1, t8, "adaptive threads 1 vs 8");
  expect_identical(t4, t4_again, "adaptive run-to-run at threads=4");
}

// ---------------------------------------------------------------------------
// Batched boundary drains are pure staging at the system layer too:
// direct delivery (batch 0), a degenerate batch of 1 and the default all
// produce the same outcomes and telemetry bytes.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, DrainBatchSizeInvisibleToOutcomes) {
  const ShardRun direct = run_sharded(4, 2, /*with_crash=*/true, 0,
                                      overload_test_proto(), /*storm=*/true,
                                      /*adaptive=*/false, /*drain_batch=*/0);
  const ShardRun tiny = run_sharded(4, 2, true, 0, overload_test_proto(),
                                    true, false, 1);
  const ShardRun deflt = run_sharded(4, 2, true, 0, overload_test_proto(),
                                     true, false, 64);
  expect_identical(direct, tiny, "drain batch 0 vs 1");
  expect_identical(direct, deflt, "drain batch 0 vs 64");
}

// ---------------------------------------------------------------------------
// The link-floor matrix handed to the adaptive runtime must be an exact
// per-shard-pair minimum of cpf_link over the block partition — the bound
// the soundness argument in sim/parallel/runtime.hpp relies on.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, LinkFloorMatrixMatchesTopology) {
  const core::TopologyConfig topo = four_region_topo();
  const auto regions = static_cast<std::uint32_t>(topo.total_regions());
  constexpr std::uint32_t kShards = 4;
  const std::vector<SimTime> floor =
      core::ShardedSystem::link_floor_for(topo, kShards);
  ASSERT_EQ(floor.size(), static_cast<std::size_t>(kShards) * kShards);

  const std::uint32_t per_shard = (regions + kShards - 1) / kShards;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (std::uint32_t d = 0; d < kShards; ++d) {
      if (s == d) continue;  // diagonal unused by the runtime
      SimTime expect = SimTime::max();
      for (std::uint32_t a = 0; a < regions; ++a) {
        for (std::uint32_t b = 0; b < regions; ++b) {
          if (a / per_shard != s || b / per_shard != d) continue;
          expect = std::min(expect, topo.cpf_link(a, b));
        }
      }
      EXPECT_EQ(floor[s * kShards + d], expect) << s << "->" << d;
      // Soundness: every floor is at least the static lookahead + 1ns.
      EXPECT_GT(floor[s * kShards + d],
                core::ShardedSystem::lookahead_for(topo, kShards))
          << s << "->" << d;
    }
  }
  // Single shard: no matrix at all (the runtime runs one window).
  EXPECT_TRUE(core::ShardedSystem::link_floor_for(topo, 1).empty());
}

// ---------------------------------------------------------------------------
// Traffic-engine scenario (DESIGN.md §17) as the replayed workload: the
// generator is a pure function of its request (bitwise run-to-run), and
// replaying the generated stream stays bit-identical across worker-thread
// counts {1, 2, 4, 8} and across runs — the guarantee the benches'
// --scenario= mode rests on. iot-firmware-push exercises the engine's
// hardest structure: two device classes, a mid-run envelope wave and
// synchronized duty-cycle wakeup spikes.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, ScenarioTrafficIdenticalAcrossThreadCounts) {
  traffic::ScenarioRequest req;
  req.target_pps = 2'000.0;
  req.duration = SimTime::milliseconds(500);
  req.population = 200;
  req.regions = 4;
  req.seed = 17;
  const auto gen = traffic::generate_scenario("iot-firmware-push", req);
  ASSERT_TRUE(gen.has_value());
  ASSERT_FALSE(gen->records.empty());
  // The generator itself is deterministic: a second call with the same
  // request yields the identical stream, record for record.
  const auto gen_again =
      traffic::generate_scenario("iot-firmware-push", req);
  ASSERT_TRUE(gen_again.has_value());
  ASSERT_EQ(gen->records.size(), gen_again->records.size());
  for (std::size_t i = 0; i < gen->records.size(); ++i) {
    ASSERT_EQ(gen->records[i].at, gen_again->records[i].at) << i;
    ASSERT_EQ(gen->records[i].ue.value(),
              gen_again->records[i].ue.value()) << i;
    ASSERT_EQ(gen->records[i].type, gen_again->records[i].type) << i;
  }

  const ShardRun t1 =
      run_sharded(4, 1, /*with_crash=*/false, /*preattached=*/200,
                  test_proto(), /*storm=*/false, /*adaptive=*/false,
                  /*drain_batch=*/64, &gen->records);
  EXPECT_EQ(t1.metrics.ryw_violations, 0u);
  EXPECT_GT(t1.metrics.procedures_completed, 100u);
  EXPECT_EQ(t1.metrics.procedures_completed, t1.metrics.procedures_started);

  const ShardRun t2 = run_sharded(4, 2, false, 200, test_proto(), false,
                                  false, 64, &gen->records);
  const ShardRun t4 = run_sharded(4, 4, false, 200, test_proto(), false,
                                  false, 64, &gen->records);
  const ShardRun t8 = run_sharded(4, 8, false, 200, test_proto(), false,
                                  false, 64, &gen->records);  // oversubscribed
  const ShardRun t2_again = run_sharded(4, 2, false, 200, test_proto(),
                                        false, false, 64, &gen->records);
  expect_identical(t1, t2, "scenario threads 1 vs 2");
  expect_identical(t1, t4, "scenario threads 1 vs 4");
  expect_identical(t1, t8, "scenario threads 1 vs 8");
  expect_identical(t2, t2_again, "scenario run-to-run at threads=2");
}

// ---------------------------------------------------------------------------
// Sharded preattach: replica state installed across shard boundaries
// serves reads with zero RYW violations.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminism, ShardedPreattachServesConsistentReads) {
  const ShardRun t1 = run_sharded(4, 1, /*with_crash=*/false,
                             /*preattached=*/200);
  EXPECT_EQ(t1.metrics.ryw_violations, 0u);
  EXPECT_EQ(t1.metrics.reattaches, 0u);  // preinstalled state was found
  EXPECT_EQ(t1.metrics.procedures_completed,
            t1.metrics.procedures_started);
  EXPECT_GT(t1.metrics.procedures_completed, 400u);
  EXPECT_GT(t1.cross_messages, 0u);

  const ShardRun t4 = run_sharded(4, 4, false, 200);
  expect_identical(t1, t4, "preattached threads 1 vs 4");
}

}  // namespace
}  // namespace neutrino
