// Adaptive lookahead window math (DESIGN.md §16), at the bare runtime
// layer: horizon clamping, quiet-channel widening, overflow saturation
// near SimTime::max(), and thread-count independence with adaptation on.
//
// The contract under test: adaptive windows are never narrower than the
// static schedule, never admit a cross-shard message at or before a
// shard's horizon, and are a pure function of sim state — so outcomes
// (not just aggregates) are bit-identical across worker-thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "sim/parallel/runtime.hpp"

namespace neutrino::sim::parallel {
namespace {

using Runtime = ShardedRuntime<int>;

Runtime::Config two_shard_config(bool adaptive) {
  Runtime::Config config;
  config.shards = 2;
  config.lookahead = SimTime::milliseconds(1) - SimTime::nanoseconds(1);
  config.adaptive_lookahead = adaptive;
  return config;
}

// ---------------------------------------------------------------------------
// Quiet-channel widening: when the only other shard has no pending work,
// the adaptive bound disappears and the whole horizon collapses into one
// window. The static schedule pays one window per event cluster.
// ---------------------------------------------------------------------------

TEST(AdaptiveLookahead, QuietShardCollapsesWindows) {
  constexpr int kClusters = 50;
  auto run = [&](bool adaptive) {
    Runtime rt(two_shard_config(adaptive));
    std::vector<std::int64_t> fired;
    for (int i = 0; i < kClusters; ++i) {
      // Clusters 10ms apart, far beyond the 1ms static lookahead.
      rt.loop(0).schedule_at(SimTime::milliseconds(10 * i), [&] {
        fired.push_back(rt.loop(0).now().ns());
      });
    }
    rt.run_until(SimTime::seconds(1),
                 [](std::size_t, SimTime, int&&) { FAIL(); });
    return std::pair{fired, rt.stats()};
  };
  const auto [static_fired, static_stats] = run(false);
  const auto [adaptive_fired, adaptive_stats] = run(true);

  EXPECT_EQ(static_fired, adaptive_fired);  // same events, same times
  EXPECT_EQ(static_stats.windows, static_cast<std::uint64_t>(kClusters));
  // Shard 1 is empty for the whole run: no arrival bound, one window.
  EXPECT_EQ(adaptive_stats.windows, 1u);
  EXPECT_GT(adaptive_stats.adaptive_extensions, 0u);
  // The empty shard never dispatches.
  EXPECT_GT(adaptive_stats.dispatches_skipped, 0u);
}

// ---------------------------------------------------------------------------
// The adaptive end is clamped to the horizon even when the bound computes
// past it: events beyond run_until()'s horizon stay pending.
// ---------------------------------------------------------------------------

TEST(AdaptiveLookahead, ClampsToHorizon) {
  Runtime rt(two_shard_config(true));
  int ran = 0;
  rt.loop(0).schedule_at(SimTime::milliseconds(5), [&] { ++ran; });
  rt.loop(0).schedule_at(SimTime::milliseconds(500), [&] { ++ran; });
  rt.run_until(SimTime::milliseconds(100),
               [](std::size_t, SimTime, int&&) { FAIL(); });
  EXPECT_EQ(ran, 1);  // the 500ms event sits past the horizon
  EXPECT_EQ(rt.stats().windows, 1u);
  EXPECT_EQ(rt.loop(0).now(), SimTime::milliseconds(100));
}

// ---------------------------------------------------------------------------
// Overflow: next_time near SimTime::max() must saturate in the arrival
// floor instead of wrapping into a bound in the past.
// ---------------------------------------------------------------------------

TEST(AdaptiveLookahead, SaturatesNearMaxSimTime) {
  Runtime rt(two_shard_config(true));
  const SimTime late = SimTime::max() - SimTime::nanoseconds(1);
  int ran = 0;
  rt.loop(0).schedule_at(late, [&] { ++ran; });
  rt.loop(1).schedule_at(late, [&] { ++ran; });
  rt.run_until(SimTime::max(), [](std::size_t, SimTime, int&&) { FAIL(); });
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(rt.stats().windows, 1u);
}

// ---------------------------------------------------------------------------
// A caller-supplied link_floor below lookahead + 1ns must not narrow the
// window below the static contract (the max() guard in run_until).
// ---------------------------------------------------------------------------

TEST(AdaptiveLookahead, FloorNeverNarrowsBelowStatic) {
  Runtime::Config config = two_shard_config(true);
  // Degenerate floor: 1ns everywhere — tighter than the static contract
  // allows, so the guard must win.
  config.link_floor.assign(4, SimTime::nanoseconds(1));
  Runtime rt(config);
  Runtime rt_static(two_shard_config(false));
  for (auto* r : {&rt, &rt_static}) {
    for (int i = 0; i < 20; ++i) {
      r->loop(0).schedule_at(SimTime::microseconds(100 * i), [] {});
      r->loop(1).schedule_at(SimTime::microseconds(100 * i + 50), [] {});
    }
    r->run_until(SimTime::milliseconds(100),
                 [](std::size_t, SimTime, int&&) { FAIL(); });
  }
  // Both shards stay busy inside one static window, so the degenerate
  // floor cannot shrink anything: same schedule as static.
  EXPECT_EQ(rt.stats().windows, rt_static.stats().windows);
  EXPECT_EQ(rt.events_executed(), rt_static.events_executed());
}

// ---------------------------------------------------------------------------
// Cross-traffic with adaptation on: the ring workload from
// parallel_runtime_test, with per-hop logs compared across thread counts
// {1, 2, 4, 8}. Window schedules may differ from static — outcomes, hop
// times and RNG draws may not differ across threads.
// ---------------------------------------------------------------------------

struct HopPayload {
  int hops_left = 0;
};

using HopLog = std::vector<std::vector<std::tuple<std::int64_t, int,
                                                  std::uint64_t>>>;

std::pair<HopLog, std::uint64_t> run_adaptive_ring(std::size_t threads) {
  using RingRuntime = ShardedRuntime<HopPayload>;
  RingRuntime::Config config;
  config.shards = 4;
  config.threads = threads;
  config.lookahead = SimTime::milliseconds(1) - SimTime::nanoseconds(1);
  config.adaptive_lookahead = true;
  // Uniform floor at the true link latency: every hop is exactly 1ms.
  config.link_floor.assign(16, SimTime::milliseconds(1));
  config.rng_seed = 7;
  RingRuntime rt(config);

  HopLog logs(4);
  const SimTime link = SimTime::milliseconds(1);
  auto hop = [&](std::size_t shard, int hops_left, auto&& self) -> void {
    logs[shard].emplace_back(rt.loop(shard).now().ns(), hops_left,
                             rt.rng(shard).next_u64());
    if (hops_left > 0) {
      rt.post(shard, (shard + 1) % 4, rt.loop(shard).now() + link,
              HopPayload{hops_left - 1});
    }
    (void)self;
  };
  for (std::size_t s = 0; s < 4; ++s) {
    rt.loop(s).schedule_at(
        SimTime::microseconds(static_cast<std::int64_t>(10 * s)),
        [&, s] { hop(s, 32, hop); });
  }
  rt.run_until(SimTime::seconds(60), [&](std::size_t dst, SimTime arrival,
                                         HopPayload&& p) {
    const int hops_left = p.hops_left;
    rt.loop(dst).schedule_at(arrival, [&, dst, hops_left] {
      hop(dst, hops_left, hop);
    });
  });
  return {logs, rt.stats().windows};
}

TEST(AdaptiveLookahead, RingIdenticalAcrossThreadCounts) {
  const auto [one, w1] = run_adaptive_ring(1);
  const auto [two, w2] = run_adaptive_ring(2);
  const auto [four, w4] = run_adaptive_ring(4);
  const auto [eight, w8] = run_adaptive_ring(8);  // oversubscribed
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
  // The window schedule itself is sim-state-only, hence also identical.
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w4);
  EXPECT_EQ(w1, w8);
  for (const auto& log : one) EXPECT_EQ(log.size(), 33u);
}

// ---------------------------------------------------------------------------
// Batched drains are pure staging: batch sizes 0 (direct deliver), 1
// (flush per entry) and the default produce identical delivery order.
// ---------------------------------------------------------------------------

TEST(AdaptiveLookahead, DrainBatchSizeInvisibleToDeliveryOrder) {
  auto run = [](std::size_t drain_batch) {
    Runtime::Config config;
    config.shards = 2;
    config.threads = 2;
    config.lookahead = SimTime::milliseconds(1) - SimTime::nanoseconds(1);
    config.drain_batch = drain_batch;
    config.channel_capacity = 4;  // force ring + spill traversal
    Runtime rt(config);
    rt.loop(0).schedule_at(SimTime::nanoseconds(0), [&] {
      for (int i = 0; i < 300; ++i) {
        rt.post(0, 1, rt.loop(0).now() + SimTime::milliseconds(1), int{i});
      }
    });
    std::vector<int> delivered;
    rt.run_until(SimTime::seconds(1),
                 [&](std::size_t dst, SimTime arrival, int&& v) {
                   delivered.push_back(v);
                   rt.loop(dst).schedule_at(arrival, [] {});
                 });
    return delivered;
  };
  const std::vector<int> direct = run(0);
  const std::vector<int> tiny = run(1);
  const std::vector<int> deflt = run(64);
  ASSERT_EQ(direct.size(), 300u);
  EXPECT_EQ(direct, tiny);
  EXPECT_EQ(direct, deflt);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(direct[i], i);
}

}  // namespace
}  // namespace neutrino::sim::parallel
