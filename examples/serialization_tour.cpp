// Serialization tour: one real S1AP message through all seven wire
// formats — sizes, round trips, and the svtable optimization at work.
#include <cstdio>

#include "s1ap/samples.hpp"
#include "serialize/codec.hpp"

using namespace neutrino;

int main() {
  const auto message = s1ap::samples::initial_context_setup();
  std::printf("InitialContextSetupRequest through every wire format:\n\n");
  std::printf("%-22s %8s  %s\n", "format", "bytes", "first bytes");
  for (const auto format : ser::kAllWireFormats) {
    const Bytes encoded = ser::encode(format, message);
    auto decoded =
        ser::decode<s1ap::InitialContextSetupRequest>(format, encoded);
    const bool ok = decoded.is_ok() && *decoded == message;
    const std::string prefix = to_hex(
        BytesView(encoded.data(), std::min<std::size_t>(12, encoded.size())));
    std::printf("%-22s %8zu  %s...  round-trip %s\n",
                std::string(ser::to_string(format)).c_str(), encoded.size(),
                prefix.c_str(), ok ? "ok" : "FAILED");
  }

  // The svtable optimization (§4.4): a GTP tunnel's transport address is a
  // union holding a single scalar — standard FlatBuffers must wrap it in a
  // one-field table (6-byte vtable + 4-byte soffset); Neutrino's svtable
  // points at the bare value.
  const auto tunnel = s1ap::samples::tunnel(7);
  const auto standard =
      ser::encode(ser::WireFormat::kFlatBuffers, tunnel).size();
  const auto optimized =
      ser::encode(ser::WireFormat::kOptimizedFlatBuffers, tunnel).size();
  std::printf(
      "\nsvtable on a single-scalar union (GTP tunnel address):\n"
      "  standard FlatBuffers: %zu bytes, optimized: %zu bytes "
      "(saves %zu — the paper's 10-byte scalar saving plus padding)\n",
      standard, optimized, standard - optimized);
  return 0;
}
