// Quickstart: bring up a Neutrino edge core, attach a UE, run a service
// request, and watch the consistency machinery work.
//
//   $ ./quickstart
//
// Shows the three public-API layers: policy/topology configuration, the
// simulated System with its frontend, and the metrics the protocol emits.
#include <cstdio>

#include "core/cost_model.hpp"
#include "core/system.hpp"

using namespace neutrino;

int main() {
  // 1. Pick a control-plane design. neutrino_policy() = optimized
  //    FlatBuffers + per-procedure checkpointing + replay recovery +
  //    proactive geo-replication. existing_epc_policy() etc. are the
  //    paper's baselines.
  const core::CorePolicy policy = core::neutrino_policy();

  // 2. Describe the deployment: one level-2 region of four level-1
  //    regions, five CPFs each (Fig. 6 of the paper).
  core::TopologyConfig topo;
  topo.l1_per_l2 = 4;

  // 3. Wire up the simulated core. MeasuredCostModel times the real wire
  //    codecs so every simulated service time is grounded in measurement.
  sim::EventLoop loop;
  core::Metrics metrics;
  core::MeasuredCostModel costs;
  core::ProtocolConfig proto;
  core::System system(loop, policy, topo, proto, costs, metrics);

  // 4. Drive control procedures through the UE/BS frontend.
  const UeId alice{1001};
  system.frontend().start_procedure(alice, core::ProcedureType::kAttach);
  loop.run_until(SimTime::seconds(1));
  std::printf("attach completed: %s (PCT %.3f ms)\n",
              system.frontend().is_attached(alice) ? "yes" : "no",
              metrics.pct_for(core::ProcedureType::kAttach).median());

  system.frontend().start_procedure(alice,
                                    core::ProcedureType::kServiceRequest);
  loop.run_until(SimTime::seconds(2));
  std::printf("service request PCT: %.3f ms\n",
              metrics.pct_for(core::ProcedureType::kServiceRequest).median());

  // 5. Inspect the replication state: the UE's context now lives on its
  //    primary CPF and N=2 backups in sibling regions.
  const std::uint32_t home = system.frontend().region_of(alice);
  const CpfId primary = system.primary_cpf_for(alice, home);
  std::printf("primary CPF: %u (region %u)\n", primary.value(),
              system.topo().region_of_cpf(primary));
  for (const CpfId b : system.backups_for(alice, home)) {
    std::printf("backup  CPF: %u (region %u, up-to-date: %s)\n", b.value(),
                system.topo().region_of_cpf(b),
                system.cpf(b).has_up_to_date(alice) ? "yes" : "no");
  }
  std::printf(
      "protocol counters: %llu checkpoints, %llu ACKs, log pruned %llu "
      "times, %llu RYW violations\n",
      static_cast<unsigned long long>(metrics.checkpoints_sent),
      static_cast<unsigned long long>(metrics.checkpoint_acks),
      static_cast<unsigned long long>(metrics.log_prunes),
      static_cast<unsigned long long>(metrics.ryw_violations));
  return 0;
}
