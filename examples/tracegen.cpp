// tracegen: synthesize, inspect, and replay control-traffic trace files.
//
//   tracegen uniform <rate_pps> <seconds> <out.csv>   # Poisson mix
//   tracegen bursty <users> <window_ms> <out.csv>     # synchronized IoT
//   tracegen devices <n> <seconds> <out.csv>          # §2.2 per-device model
//   tracegen describe <trace.csv>                     # summary statistics
//   tracegen replay <trace.csv> [epc|neutrino]        # run it, print PCTs
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/cost_model.hpp"
#include "core/system.hpp"
#include "trace/trace_io.hpp"

using namespace neutrino;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tracegen uniform <rate_pps> <seconds> <out.csv>\n"
               "  tracegen bursty <users> <window_ms> <out.csv>\n"
               "  tracegen devices <n> <seconds> <out.csv>\n"
               "  tracegen describe <trace.csv>\n"
               "  tracegen replay <trace.csv> [epc|neutrino]\n");
  return 2;
}

int describe(const char* path) {
  auto records = trace::load_trace(path);
  if (!records) {
    std::fprintf(stderr, "error: %s\n", records.status().message().c_str());
    return 1;
  }
  const auto s = trace::summarize(*records);
  std::printf("records:      %zu\n", s.records);
  std::printf("distinct UEs: %zu\n", s.distinct_ues);
  std::printf("span:         %.3f s\n", s.span.sec());
  std::printf("rate:         %.0f procedures/s\n", s.rate_pps);
  for (std::size_t i = 0; i < s.by_type.size(); ++i) {
    if (s.by_type[i] == 0) continue;
    std::printf("  %-16s %zu\n",
                std::string(core::to_string(
                                static_cast<core::ProcedureType>(i)))
                    .c_str(),
                s.by_type[i]);
  }
  return 0;
}

int replay(const char* path, const char* which) {
  auto records = trace::load_trace(path);
  if (!records) {
    std::fprintf(stderr, "error: %s\n", records.status().message().c_str());
    return 1;
  }
  const core::CorePolicy policy = (which != nullptr && which[0] == 'e')
                                      ? core::existing_epc_policy()
                                      : core::neutrino_policy();
  sim::EventLoop loop;
  core::Metrics metrics;
  core::MeasuredCostModel costs;
  core::TopologyConfig topo;
  topo.l1_per_l2 = 4;
  core::System system(loop, policy, topo, {}, costs, metrics);
  // Pre-attach every UE so non-attach procedures can run.
  for (const auto& rec : *records) {
    system.frontend().preattach(
        rec.ue, static_cast<std::uint32_t>(
                    rec.ue.value() % static_cast<std::uint64_t>(
                                         topo.total_regions())));
  }
  trace::replay(system, *records);
  loop.run_until(records->back().at + SimTime::seconds(30));

  std::printf("%s: %llu/%llu procedures completed, %llu RYW violations\n",
              std::string(policy.name).c_str(),
              static_cast<unsigned long long>(metrics.procedures_completed),
              static_cast<unsigned long long>(metrics.procedures_started),
              static_cast<unsigned long long>(metrics.ryw_violations));
  for (std::size_t i = 0; i < core::Metrics::kProcTypes; ++i) {
    const auto& pct = metrics.pct[i];
    if (pct.empty()) continue;
    std::printf("  %-16s n=%zu p50=%.3fms p99=%.3fms\n",
                std::string(core::to_string(
                                static_cast<core::ProcedureType>(i)))
                    .c_str(),
                pct.count(), pct.median(), pct.p99());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "describe") return describe(argv[2]);
  if (cmd == "replay") return replay(argv[2], argc > 3 ? argv[3] : nullptr);
  if (argc < 5 && cmd != "describe") return usage();

  std::vector<trace::TraceRecord> records;
  if (cmd == "uniform") {
    trace::ProcedureMix mix{.service_request = 0.7, .handover = 0.1,
                            .intra_handover = 0.1};
    trace::UniformWorkload w(std::atof(argv[2]),
                             SimTime::seconds(std::atoll(argv[3])), mix);
    records = w.generate(10'000'000, 4);
  } else if (cmd == "bursty") {
    trace::BurstyWorkload w(std::strtoull(argv[2], nullptr, 10),
                            SimTime::milliseconds(std::atoll(argv[3])));
    records = w.generate();
  } else if (cmd == "devices") {
    trace::DeviceModelWorkload w(std::strtoull(argv[2], nullptr, 10),
                                 SimTime::seconds(std::atoll(argv[3])));
    records = w.generate(4);
  } else {
    return usage();
  }
  if (auto st = trace::save_trace(records, argv[4]); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.message().c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n", records.size(), argv[4]);
  return 0;
}
