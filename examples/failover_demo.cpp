// Failover demo: crash a UE's primary CPF mid-procedure and compare how
// the existing EPC and Neutrino recover (§4.2.5 failure scenario 2).
//
// EPC must tell the UE to Re-Attach (a full authentication + session
// rebuild); Neutrino's CTA replays the logged messages onto a backup and
// the UE never notices.
#include <cstdio>

#include "core/cost_model.hpp"
#include "core/system.hpp"

using namespace neutrino;

namespace {

void run(const core::CorePolicy& policy) {
  sim::EventLoop loop;
  core::Metrics metrics;
  core::FixedCostModel costs(SimTime::microseconds(10));
  core::System system(loop, policy, {}, {}, costs, metrics);

  const UeId ue{7};
  system.frontend().preattach(ue, 0);
  system.frontend().start_procedure(ue, core::ProcedureType::kServiceRequest);

  // Crash the primary while the request is in flight.
  const CpfId primary = system.primary_cpf_for(ue, 0);
  loop.schedule_at(SimTime::microseconds(25),
                   [&] { system.crash_cpf(primary); });
  loop.run_until(SimTime::seconds(10));

  const auto& pct =
      metrics.pct_for(core::ProcedureType::kServiceRequest);
  std::printf("%-12s crashed CPF %u mid-request:\n",
              std::string(policy.name).c_str(), primary.value());
  std::printf("  completed=%llu  PCT=%.3f ms  reattaches=%llu  "
              "replayed_msgs=%llu  ryw_violations=%llu\n",
              static_cast<unsigned long long>(metrics.procedures_completed),
              pct.empty() ? -1.0 : pct.median(),
              static_cast<unsigned long long>(metrics.reattaches),
              static_cast<unsigned long long>(metrics.replays),
              static_cast<unsigned long long>(metrics.ryw_violations));
}

}  // namespace

int main() {
  std::printf("Recovering a service request from a CPF crash:\n\n");
  run(core::existing_epc_policy());
  run(core::neutrino_policy());
  std::printf(
      "\nNeutrino completes the interrupted procedure by replaying the\n"
      "CTA's message log onto a backup CPF — no Re-Attach, far lower PCT,\n"
      "and Read-your-Writes consistency holds in both designs (the EPC\n"
      "preserves it by forcing the Re-Attach).\n");
  return 0;
}
