// Edge drive: a self-driving car crosses region boundaries while 100K
// users load the control plane (the paper's §6.6 scenario, Fig. 12).
//
// Prints the car's data-path outages per handover and the resulting
// missed 100 ms deadlines, for the existing EPC and Neutrino.
#include <cstdio>

#include "apps/deadline_app.hpp"
#include "core/cost_model.hpp"
#include "core/system.hpp"
#include "geo/region_plan.hpp"
#include "trace/mobility.hpp"
#include "trace/workload.hpp"

using namespace neutrino;

namespace {

/// The metro deployment: one level-2 geohash cell split into its four
/// level-1 regions (Fig. 6), each hosting a CTA and a CPF pool.
core::TopologyConfig plan_metro() {
  const geo::GeoCell metro =
      geo::geohash_decode(geo::geohash_encode({31.52, 74.35}, 5));  // Lahore
  const auto plan = geo::RegionPlan::from_area(metro, 6);
  std::printf("deployment plan (level-2 cell %s):\n",
              std::string(geo::parent_region(plan.regions()[0].geohash))
                  .c_str());
  for (const auto& region : plan.regions()) {
    std::printf("  region %u: geohash %s, center (%.3f, %.3f)\n",
                region.region_index, region.geohash.c_str(),
                region.cell.center().lat, region.cell.center().lon);
  }
  auto topo = plan.to_topology(/*cpfs_per_region=*/5);
  std::printf("\n");
  return topo.is_ok() ? *topo : core::TopologyConfig{};
}

void run(const core::CorePolicy& policy, const core::MeasuredCostModel& costs,
         const core::TopologyConfig& planned) {
  core::TopologyConfig topo = planned;
  sim::EventLoop loop;
  core::Metrics metrics;
  core::System system(loop, policy, topo, {}, costs, metrics);

  // Background signaling load: 100K users issuing service requests.
  constexpr std::uint64_t kUsers = 100'000;
  for (std::uint64_t ue = 0; ue <= kUsers; ++ue) {
    system.frontend().preattach(
        UeId(ue),
        static_cast<std::uint32_t>(ue % static_cast<std::uint64_t>(
                                            topo.total_regions())));
  }
  trace::ProcedureMix mix{.service_request = 1.0};
  trace::UniformWorkload background(kUsers, SimTime::milliseconds(1500), mix,
                                    42);
  trace::replay(system, background.generate(kUsers, topo.total_regions()));

  // The car: five region-crossing handovers, one every 200 ms
  // (time-compressed from the Fig. 12 drive).
  const UeId car{kUsers};
  for (int hop = 1; hop <= 5; ++hop) {
    const auto at = SimTime::milliseconds(200) * hop;
    loop.schedule_at(at, [&system, car, hop, &topo] {
      system.frontend().start_procedure(
          car, core::ProcedureType::kHandover,
          static_cast<std::uint32_t>(hop % topo.total_regions()));
    });
  }
  loop.run_until(SimTime::seconds(30));

  apps::DeadlineApp sensor_stream;  // 1 kHz, 100 ms budget
  const auto& outages = system.frontend().outages(car);
  std::printf("%s:\n", std::string(policy.name).c_str());
  for (std::size_t i = 0; i < outages.size(); ++i) {
    std::printf("  handover %zu: data path down %.3f ms\n", i + 1,
                (outages[i].end - outages[i].start).ms());
  }
  std::printf("  missed deadlines: %llu\n\n",
              static_cast<unsigned long long>(
                  sensor_stream.missed_deadlines(outages)));
}

}  // namespace

int main() {
  std::printf("A car driving across edge regions under 100K-user load:\n\n");
  const core::TopologyConfig planned = plan_metro();
  const core::MeasuredCostModel costs;
  run(core::existing_epc_policy(), costs, planned);
  run(core::neutrino_policy(), costs, planned);
  return 0;
}
